package unijoin

import (
	"context"
	"fmt"

	"unijoin/internal/core"
	"unijoin/internal/geom"
	"unijoin/internal/ingest"
	"unijoin/internal/parallel"
	"unijoin/internal/stream"
)

// Query is a composable spatial join: a pair of relations plus the
// knobs that shape the run. Build one with Workspace.Query, configure
// it with chained builder methods (or the equivalent With* functional
// options), and execute it with Run:
//
//	res, err := ws.Query(roads, hydro).
//		Algorithm(unijoin.AlgPQ).
//		Window(r).
//		Run(ctx)
//
// A Query value is single-shot and not safe for concurrent use; build
// a fresh one per run. The zero algorithm is AlgPQ, the paper's
// unified join.
type Query struct {
	ws        *Workspace
	a, b      *Relation
	alg       Algorithm
	opts      JoinOptions
	countOnly bool
}

// Query starts a join of a and b on the workspace. Options may be
// supplied here (the one-shot style), added with With via functional
// options, or set with the chainable builder methods — all three
// spellings configure the same Query.
func (w *Workspace) Query(a, b *Relation, opts ...Option) *Query {
	q := &Query{ws: w, a: a, b: b, alg: AlgPQ}
	return q.With(opts...)
}

// With applies functional options to the query.
func (q *Query) With(opts ...Option) *Query {
	for _, opt := range opts {
		opt(q)
	}
	return q
}

// Algorithm selects the join strategy (default AlgPQ).
func (q *Query) Algorithm(alg Algorithm) *Query { q.alg = alg; return q }

// Window restricts the join to pairs of records that both intersect r.
func (q *Query) Window(r Rect) *Query { q.opts.Window = &r; return q }

// Parallelism sets the worker count for AlgParallel (default
// GOMAXPROCS). Other algorithms ignore it.
func (q *Query) Parallelism(n int) *Query { q.opts.Parallelism = n; return q }

// Partitions overrides the parallel engine's stripe count.
func (q *Query) Partitions(n int) *Query { q.opts.ParallelPartitions = n; return q }

// Memory sets the simulated internal-memory budget in bytes.
func (q *Query) Memory(bytes int) *Query { q.opts.MemoryBytes = bytes; return q }

// BufferPool sets ST's LRU buffer pool size in bytes.
func (q *Query) BufferPool(bytes int) *Query { q.opts.BufferPoolBytes = bytes; return q }

// Machine selects the simulated platform AlgAuto's cost model plans
// for (default Machine3).
func (q *Query) Machine(m Machine) *Query { q.opts.Machine = m; return q }

// ForwardSweep switches the sweep kernel to the Forward-Sweep
// structure (the ablation of the paper's Striped-Sweep).
func (q *Query) ForwardSweep() *Query { q.opts.UseForwardSweep = true; return q }

// PBSMTiles overrides PBSM's tile grid resolution (default 128).
func (q *Query) PBSMTiles(n int) *Query { q.opts.PBSMTilesPerAxis = n; return q }

// Emit streams each result pair to fn as (or, for AlgParallel, after)
// it is found. A query with an Emit callback does not buffer pairs,
// so Results.Pairs yields nothing.
func (q *Query) Emit(fn func(Pair)) *Query { q.opts.Emit = fn; return q }

// EmitBatch streams result pairs to fn in pooled batches — the fast
// path that amortizes the per-pair callback indirection over
// thousands of pairs. The slice is reused after fn returns; copy
// pairs that must outlive the call. Mutually exclusive with Emit.
func (q *Query) EmitBatch(fn func([]Pair)) *Query { q.opts.EmitBatch = fn; return q }

// CountOnly disables the default buffering of result pairs for
// Results.Pairs, keeping only the accounting — the paper's own
// methodology (its cost model excludes output writing) and the
// cheapest mode: the sweep kernel counts matches with no per-pair
// callback at all. It is a no-op when an Emit or EmitBatch callback
// is set (those queries already stream instead of buffering).
func (q *Query) CountOnly() *Query { q.countOnly = true; return q }

// Option is a functional query option, the one-shot spelling of the
// builder methods: ws.Query(a, b, unijoin.WithWindow(r)).Run(ctx).
type Option func(*Query)

// WithAlgorithm selects the join strategy.
func WithAlgorithm(alg Algorithm) Option { return func(q *Query) { q.Algorithm(alg) } }

// WithWindow restricts the join to pairs intersecting r.
func WithWindow(r Rect) Option { return func(q *Query) { q.Window(r) } }

// WithParallelism sets the AlgParallel worker count.
func WithParallelism(n int) Option { return func(q *Query) { q.Parallelism(n) } }

// WithPartitions overrides the parallel engine's stripe count.
func WithPartitions(n int) Option { return func(q *Query) { q.Partitions(n) } }

// WithMemory sets the simulated internal-memory budget in bytes.
func WithMemory(bytes int) Option { return func(q *Query) { q.Memory(bytes) } }

// WithBufferPool sets ST's LRU buffer pool size in bytes.
func WithBufferPool(bytes int) Option { return func(q *Query) { q.BufferPool(bytes) } }

// WithMachine selects the platform for AlgAuto's cost model.
func WithMachine(m Machine) Option { return func(q *Query) { q.Machine(m) } }

// WithForwardSweep switches the kernel to the Forward-Sweep structure.
func WithForwardSweep() Option { return func(q *Query) { q.ForwardSweep() } }

// WithPBSMTiles overrides PBSM's tile grid resolution.
func WithPBSMTiles(n int) Option { return func(q *Query) { q.PBSMTiles(n) } }

// WithEmit streams each result pair to fn.
func WithEmit(fn func(Pair)) Option { return func(q *Query) { q.Emit(fn) } }

// WithEmitBatch streams result pairs to fn in pooled batches.
func WithEmitBatch(fn func([]Pair)) Option { return func(q *Query) { q.EmitBatch(fn) } }

// WithCountOnly drops result pairs, keeping only the accounting.
func WithCountOnly() Option { return func(q *Query) { q.CountOnly() } }

// Run executes the query under ctx and returns its Results. The
// context is honored through every phase — sorting, partitioning,
// index traversal, and the sweep loops poll it — so canceling ctx (or
// hitting its deadline) aborts the join and returns an error matching
// errors.Is(err, ErrCanceled).
//
// Result pairs go to exactly one place: the Emit callback, the
// EmitBatch callback, nowhere (CountOnly), or — the default when none
// of those was configured — an internal buffer exposed by
// Results.Pairs.
func (q *Query) Run(ctx context.Context) (*Results, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if q.a == nil || q.b == nil {
		return nil, fmt.Errorf("%w: Query needs two relations", ErrNilRelation)
	}
	if q.opts.Emit != nil && q.opts.EmitBatch != nil {
		return nil, fmt.Errorf("unijoin: Emit and EmitBatch are mutually exclusive")
	}

	res := &Results{}
	opts := q.opts
	if !q.countOnly && opts.Emit == nil && opts.EmitBatch == nil {
		// Default: collect pairs for Results.Pairs. Collection rides
		// the batch path, so the per-pair cost is one append.
		res.collected = true
		opts.EmitBatch = func(batch []Pair) { res.pairs = append(res.pairs, batch...) }
	}

	// Pin both relations' versions here, before any work: the join
	// runs entirely against these two immutable snapshots, so records
	// appended while it streams are never observed (they land in later
	// epochs), and records appended before Run are all observed.
	va, vb := q.a.snapshot(), q.b.snapshot()
	jr, err := q.ws.dispatch(ctx, q.alg, va, vb, &opts, res)
	if err != nil {
		return nil, err
	}
	res.JoinResult = jr
	return res, nil
}

// dispatch runs one algorithm with fully-resolved options against two
// pinned relation versions, filling engine-specific extras (the
// parallel report) into res.
func (w *Workspace) dispatch(ctx context.Context, alg Algorithm, a, b *ingest.Version, opts *JoinOptions, res *Results) (JoinResult, error) {
	o, err := w.coreOptionsFor(a, b, opts)
	if err != nil {
		return JoinResult{}, err
	}
	switch alg {
	case AlgSSSJ:
		r, err := core.SSSJ(ctx, o, a.File, b.File)
		return JoinResult{Result: r}, err
	case AlgPBSM:
		r, err := core.PBSM(ctx, o, a.File, b.File)
		return JoinResult{Result: r}, err
	case AlgST:
		if a.Tree == nil || b.Tree == nil {
			return JoinResult{}, fmt.Errorf("%w: ST requires both relations indexed", ErrNeedsIndex)
		}
		r, err := core.ST(ctx, o, a.Tree, b.Tree)
		return JoinResult{Result: r}, err
	case AlgPQ:
		r, err := core.PQ(ctx, o, versionInput(a), versionInput(b))
		return JoinResult{Result: r}, err
	case AlgBFRJ:
		if a.Tree == nil || b.Tree == nil {
			return JoinResult{}, fmt.Errorf("%w: BFRJ requires both relations indexed", ErrNeedsIndex)
		}
		r, err := core.BFRJ(ctx, o, a.Tree, b.Tree)
		return JoinResult{Result: r}, err
	case AlgAuto:
		m := Machine3
		if opts.Machine.Name != "" {
			m = opts.Machine
		}
		p := core.Planner{Machine: m}
		d, r, err := p.Join(ctx, o, versionInput(a), versionInput(b))
		return JoinResult{Result: r, Decision: &d}, err
	case AlgParallel:
		rep, r, err := w.runParallel(ctx, a, b, opts)
		if err != nil {
			return JoinResult{}, err
		}
		res.Parallel = rep
		return JoinResult{Result: r}, nil
	default:
		return JoinResult{}, fmt.Errorf("unijoin: unknown algorithm %v", alg)
	}
}

// runParallel loads both pinned record streams from the workspace
// (the one read pass is charged to the simulated-I/O counters like
// any other scan) and runs the multicore in-memory engine.
func (w *Workspace) runParallel(ctx context.Context, a, b *ingest.Version, opts *JoinOptions) (*parallel.Report, core.Result, error) {
	po := parallel.Options{Universe: w.universeFor(a.MBR.Union(b.MBR))}
	po.Workers = opts.Parallelism
	po.Partitions = opts.ParallelPartitions
	po.UseForwardSweep = opts.UseForwardSweep
	po.Window = opts.Window
	po.Emit = opts.Emit
	po.EmitBatch = opts.EmitBatch
	before := w.store.Counters()
	beforeDirect := w.store.DirectCounters()
	recsA, err := stream.ReadAll(a.File, stream.Records)
	if err != nil {
		return nil, core.Result{}, err
	}
	recsB, err := stream.ReadAll(b.File, stream.Records)
	if err != nil {
		return nil, core.Result{}, err
	}
	if po.Window == nil {
		// Reuse each version's cached x-center sample so repeated
		// queries on a stable catalog skip the serial quantile sample
		// sort of the partitioning prefix. Windowed joins sample only
		// the qualifying records, which the whole-relation cache
		// cannot provide.
		sa, err := sampleFor(a, recsA)
		if err != nil {
			return nil, core.Result{}, err
		}
		sb, err := sampleFor(b, recsB)
		if err != nil {
			return nil, core.Result{}, err
		}
		po.SortedSamples = [][]geom.Coord{sa, sb}
	}
	rep, err := parallel.Join(ctx, recsA, recsB, po)
	if err != nil {
		return nil, core.Result{}, core.WrapCanceled(err)
	}
	r := core.Result{
		Algorithm:     "parallel",
		Pairs:         rep.Pairs,
		Sweep:         rep.Sweep,
		SweepMaxBytes: rep.Sweep.MaxBytes,
		HostCPU:       rep.Wall,
		PartitionWall: rep.PartitionWall,
		SweepWall:     rep.SweepWall,
		IO:            w.store.Counters().Sub(before),
		IODirect:      w.store.DirectCounters().Sub(beforeDirect),
	}
	return &rep, r, nil
}

// coreOptionsFor maps the public JoinOptions onto the core layer's,
// for two pinned relation versions.
func (w *Workspace) coreOptionsFor(a, b *ingest.Version, opts *JoinOptions) (core.Options, error) {
	if a == nil || b == nil {
		return core.Options{}, fmt.Errorf("%w: join needs two relations", ErrNilRelation)
	}
	u := w.universeFor(a.MBR.Union(b.MBR))
	o := core.Options{Store: w.store, Universe: u}
	if opts != nil {
		o.MemoryBytes = opts.MemoryBytes
		o.BufferPoolBytes = opts.BufferPoolBytes
		o.UseForwardSweep = opts.UseForwardSweep
		o.PBSMTilesPerAxis = opts.PBSMTilesPerAxis
		o.Window = opts.Window
		o.Emit = opts.Emit
		o.EmitBatch = opts.EmitBatch
	}
	return o, nil
}
