// Example sharded walks through stripe-sharded serving in one
// process: it plans shard boundaries from a catalog, boots three
// striped shard servers plus a scatter-gather router over them, and
// runs joins and window queries through the router, cross-checking
// every count against a single-process run — the distributed answer
// must be exact, not approximate. Run it from the repository root:
//
//	go run ./examples/sharded
//
// For a real multi-process fleet, see cmd/sjrouter and the README's
// "Sharded serving" walkthrough.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"

	"unijoin"
	"unijoin/client"
	"unijoin/internal/datagen"
	"unijoin/internal/server"
	"unijoin/internal/shard"
)

func main() {
	ctx := context.Background()
	universe := unijoin.NewRect(0, 0, 1000, 1000)
	roads := datagen.Uniform(1, 60_000, universe, 25)
	hydro := datagen.Uniform(2, 40_000, universe, 25)

	// 1. Plan the stripes. Boundaries are quantiles of sampled record
	// x-centers — the same sample-balanced cuts the parallel engine
	// sweeps, here lifted to process granularity. (A catalog exports
	// the same boundaries via Catalog.StripeBoundaries, with the
	// sample cached across queries.)
	plan := shard.NewPlan(universe, 3, roads, hydro)
	fmt.Printf("plan: %d shards, boundaries %v\n", plan.Shards(), plan.Boundaries())

	// 2. Boot one striped server per shard. Each loads only the
	// records overlapping its stripe (boundary-crossing records are
	// replicated) and filters every answer by its ownership interval
	// — exactly what `sjserved -stripe lo:hi` does.
	urls := make([]string, plan.Shards())
	for i := range urls {
		iv := plan.Interval(i)
		cat := unijoin.NewCatalogOn(workspaceOn(universe))
		mustLoad(cat, "roads", iv.Slice(roads))
		mustLoad(cat, "hydro", iv.Slice(hydro))
		srv := server.New(server.Config{Catalog: cat, Stripe: &iv, Logger: quiet()})
		urls[i] = serve(srv.Handler())
		r, _ := cat.Get("roads")
		h, _ := cat.Get("hydro")
		fmt.Printf("shard %d  stripe %-12s  roads %6d  hydro %6d\n",
			i, iv.String(), r.Len(), h.Len())
	}

	// 3. The router: verifies the fleet tiles the x-axis, then serves
	// the identical sjserved API — `cmd/sjrouter` wraps exactly this.
	router, err := shard.NewRouter(urls, nil)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := router.Verify(ctx); err != nil {
		log.Fatal(err)
	}
	svc := shard.NewService(shard.ServiceConfig{Router: router, Logger: quiet()})
	cl := client.New(serve(svc.Handler()), nil)

	// 4. Joins through the router: every shard joins its slice, the
	// router sums the counts. The merged answer equals a
	// single-process join bit for bit.
	single := unijoin.NewCatalogOn(workspaceOn(universe))
	mustLoad(single, "roads", roads)
	mustLoad(single, "hydro", hydro)
	sr, _ := single.Get("roads")
	sh, _ := single.Get("hydro")
	for _, alg := range []string{"PQ", "SSSJ", "parallel"} {
		sum, err := cl.JoinCount(ctx, client.JoinRequest{Left: "roads", Right: "hydro", Algorithm: alg})
		if err != nil {
			log.Fatal(err)
		}
		a, _ := unijoin.ParseAlgorithm(alg)
		res, err := single.Workspace().Query(sr, sh).Algorithm(a).CountOnly().Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("join %-8s routed=%8d  single-process=%8d  match=%v  (%.1fms via %d shards)\n",
			alg, sum.Pairs, res.Count(), sum.Pairs == res.Count(), sum.ElapsedMillis, router.Shards())
	}

	// 5. A streamed windowed join and a window query, also exact:
	// shards drop replicated boundary records and foreign pairs, so
	// the merged streams carry no duplicates.
	win := client.Rect{XLo: 100, YLo: 100, XHi: 400, YHi: 400}
	streamed := 0
	wsum, err := cl.Join(ctx, client.JoinRequest{Left: "roads", Right: "hydro", Window: &win},
		func(l, r uint32) { streamed++ })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("windowed join via router -> %d pairs (%d streamed)\n", wsum.Pairs, streamed)
	rsum, err := cl.Window(ctx, client.WindowRequest{Relation: "roads", Window: &win}, nil)
	if err != nil {
		log.Fatal(err)
	}
	n, err := sr.WindowQuery(ctx, unijoin.NewRect(100, 100, 400, 400), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("window via router        -> %d records, single-process %d, match=%v\n",
		rsum.Records, n, rsum.Records == n)

	// 6. Fleet-wide stats, aggregated by the router.
	stats, err := cl.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet stats: %d shards, %d requests, %d joins, %d pairs streamed\n",
		stats.Shards, stats.Requests, stats.Joins, stats.PairsStreamed)
}

func workspaceOn(u unijoin.Rect) *unijoin.Workspace {
	ws := unijoin.NewWorkspace()
	ws.SetUniverse(u)
	return ws
}

func mustLoad(cat *unijoin.Catalog, name string, recs []unijoin.Record) {
	if _, err := cat.Load(name, recs, true); err != nil {
		log.Fatal(err)
	}
}

// serve exposes a handler on an ephemeral local port.
func serve(h http.Handler) string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, h)
	return "http://" + ln.Addr().String()
}

func quiet() *slog.Logger { return slog.New(slog.NewTextHandler(io.Discard, nil)) }
