// Quickstart: load two small relations, index one, and run the unified
// PQ join through the Query API — the minimal end-to-end use of the
// library, including the range-over-func pair iterator.
package main

import (
	"context"
	"fmt"
	"log"

	"unijoin"
)

func main() {
	ctx := context.Background()

	// A workspace is a simulated disk; all join I/O is counted on it.
	ws := unijoin.NewWorkspace()
	ws.SetUniverse(unijoin.NewRect(0, 0, 100, 100))

	// Two tiny relations: some parcels and some zones.
	parcels := []unijoin.Record{
		{Rect: unijoin.NewRect(10, 10, 20, 20), ID: 1},
		{Rect: unijoin.NewRect(30, 30, 35, 40), ID: 2},
		{Rect: unijoin.NewRect(60, 60, 70, 65), ID: 3},
		{Rect: unijoin.NewRect(80, 10, 90, 18), ID: 4},
	}
	zones := []unijoin.Record{
		{Rect: unijoin.NewRect(0, 0, 32, 32), ID: 100},   // overlaps parcels 1 and 2
		{Rect: unijoin.NewRect(55, 55, 75, 75), ID: 200}, // overlaps parcel 3
		{Rect: unijoin.NewRect(95, 95, 99, 99), ID: 300}, // overlaps nothing
	}

	a, err := ws.AddNamedRelation("parcels", parcels)
	if err != nil {
		log.Fatal(err)
	}
	b, err := ws.AddNamedRelation("zones", zones)
	if err != nil {
		log.Fatal(err)
	}

	// Index the parcels; zones stay non-indexed. The PQ join handles
	// the mixed case natively — that is the point of the paper.
	if err := a.BuildIndex(); err != nil {
		log.Fatal(err)
	}

	// Run the query. With no Emit/EmitBatch callback the result pairs
	// are collected, so res.Pairs() iterates them afterwards.
	res, err := ws.Query(a, b).Algorithm(unijoin.AlgPQ).Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("parcel/zone overlaps:")
	for p := range res.Pairs() {
		fmt.Printf("  parcel %d intersects zone %d\n", p.Left, p.Right)
	}
	fmt.Printf("total: %d pairs\n\n", res.Count())

	// The same join priced on the paper's three machines.
	for _, m := range unijoin.Machines {
		fmt.Printf("%-28s total %v\n", m.Name+":", res.ObservedTotal(m).Round(1000))
	}
}
