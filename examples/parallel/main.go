// Parallel: the two performance paths of the library side by side on
// one TIGER-like workload — the paper's simulated-I/O accounting
// (SSSJ priced on the Table 1 machines) and the multicore in-memory
// engine measured in wall-clock time on the real host. Both run
// through the same Query API; only the Algorithm differs.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"

	"unijoin"
	"unijoin/internal/datagen"
)

func main() {
	ctx := context.Background()

	// A clustered, TIGER-like workload: roads and hydro features
	// sampling the same population terrain, as in the paper's data.
	universe := unijoin.NewRect(0, 0, 100_000, 100_000)
	terrain := datagen.NewTerrain(1997, universe, 30)
	roads := datagen.Roads(terrain, 1, 60_000, datagen.RoadParams{})
	hydro := datagen.Hydro(terrain, 2, 30_000, datagen.HydroParams{})

	ws := unijoin.NewWorkspace()
	ws.SetUniverse(universe)
	a, err := ws.AddNamedRelation("roads", roads)
	if err != nil {
		log.Fatal(err)
	}
	b, err := ws.AddNamedRelation("hydro", hydro)
	if err != nil {
		log.Fatal(err)
	}

	// Path 1: the paper's apparatus. The join runs over the simulated
	// disk and is priced in simulated seconds on the Table 1 machines.
	serial, err := ws.Query(a, b).Algorithm(unijoin.AlgSSSJ).CountOnly().Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated-I/O path (SSSJ): %d pairs\n", serial.Count())
	for _, m := range unijoin.Machines {
		fmt.Printf("  %-26s total %v (simulated)\n", m.Name+":", serial.ObservedTotal(m).Round(1000))
	}

	// Path 2: the wall-clock path. The same relations are joined by
	// the partition-parallel in-memory engine; time here is real time
	// on this host's cores.
	fmt.Printf("\nwall-clock path (parallel engine, GOMAXPROCS=%d):\n", runtime.GOMAXPROCS(0))
	// Powers of two up to GOMAXPROCS, always ending at GOMAXPROCS
	// itself (which a doubling loop would skip on e.g. a 6-core host).
	var ladder []int
	for w := 1; w < runtime.GOMAXPROCS(0); w *= 2 {
		ladder = append(ladder, w)
	}
	ladder = append(ladder, runtime.GOMAXPROCS(0))
	for _, workers := range ladder {
		res, err := ws.Query(a, b).
			Algorithm(unijoin.AlgParallel).
			Parallelism(workers).
			CountOnly().
			Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		if res.Count() != serial.Count() {
			log.Fatalf("parallel join disagrees with SSSJ: %d vs %d pairs", res.Count(), serial.Count())
		}
		p := res.Parallel
		fmt.Printf("  workers=%-2d partitions=%-3d wall %8v  (partition %v, sweep %v, replication %.3f)\n",
			p.Workers, p.Partitions, p.Wall.Round(1000), p.PartitionWall.Round(1000),
			p.SweepWall.Round(1000), p.Replication)
		fmt.Printf("    two-layer: %d local / %d boundary records; %.1f%% of pairs skipped the ownership test\n",
			p.LocalRecords, p.BoundaryRecords, 100*p.NoTestFraction())
		for i, w := range p.PerWorker {
			fmt.Printf("    worker %d: %3d partitions, %7d records, %7d pairs, busy %v\n",
				i, w.Partitions, w.Records, w.Pairs, w.Busy.Round(1000))
		}
	}
	fmt.Println("\nboth paths agree on the result; only the cost models differ.")
}
