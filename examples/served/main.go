// Example served boots the spatial-join query service in-process —
// catalog, HTTP server, and Go client in one program — and walks
// through every endpoint: it loads two synthetic relations (one
// indexed), joins them indexed and non-indexed over HTTP, streams a
// windowed join, runs a window query, and reads back the server's
// stats, cross-checking each HTTP result against the in-process
// Query API. Run it from the repository root:
//
//	go run ./examples/served
//
// For the real long-lived binary, see cmd/sjserved.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"

	"unijoin"
	"unijoin/client"
	"unijoin/internal/datagen"
	"unijoin/internal/server"
)

func main() {
	ctx := context.Background()

	// 1. The catalog: named relations loaded once, resident across
	// requests. "roads" gets an R-tree; "hydro" stays non-indexed.
	universe := unijoin.NewRect(0, 0, 1000, 1000)
	cat := unijoin.NewCatalog()
	cat.Workspace().SetUniverse(universe)
	mustLoad(cat, "roads", datagen.Uniform(1, 40_000, universe, 30), true)
	mustLoad(cat, "hydro", datagen.Uniform(2, 25_000, universe, 30), false)

	// 2. The service, on an ephemeral port. cmd/sjserved wraps exactly
	// this with flags and graceful shutdown.
	srv := server.New(server.Config{
		Catalog: cat,
		Logger:  slog.New(slog.NewTextHandler(io.Discard, nil)), // keep the demo output clean
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("serving on", base)

	// 3. The client. Everything below goes over real HTTP.
	cl := client.New(base, nil)
	if err := cl.Health(ctx); err != nil {
		log.Fatal(err)
	}

	rels, err := cl.Relations(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rels {
		fmt.Printf("relation %-6s %6d records  indexed=%-5v  %d data bytes\n",
			r.Name, r.Records, r.Indexed, r.DataBytes)
	}

	// 4. Joins: the paper's unified PQ join uses the R-tree on roads;
	// SSSJ ignores indexes and sorts both sides. Same answer, twice.
	for _, alg := range []string{"PQ", "SSSJ"} {
		sum, err := cl.JoinCount(ctx, client.JoinRequest{Left: "roads", Right: "hydro", Algorithm: alg})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("join %-4s -> %d pairs in %.1fms\n", alg, sum.Pairs, sum.ElapsedMillis)
	}

	// 5. A windowed join, streaming pairs as they arrive.
	var streamed int
	win := client.Rect{XLo: 100, YLo: 100, XHi: 350, YHi: 350}
	sum, err := cl.Join(ctx, client.JoinRequest{
		Left: "roads", Right: "hydro", Algorithm: "parallel", Window: &win,
	}, func(l, r uint32) { streamed++ })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("windowed parallel join -> %d pairs (%d streamed) in %.1fms\n",
		sum.Pairs, streamed, sum.ElapsedMillis)

	// Cross-check against the in-process Query API: the service is a
	// transport, not a different engine.
	roads, _ := cat.Get("roads")
	hydro, _ := cat.Get("hydro")
	res, err := cat.Workspace().Query(roads, hydro).
		Window(unijoin.NewRect(100, 100, 350, 350)).CountOnly().Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same join in-process     -> %d pairs (match=%v)\n", res.Count(), res.Count() == sum.Pairs)

	// 6. A window query: which roads intersect this rectangle?
	wsum, err := cl.Window(ctx, client.WindowRequest{Relation: "roads", Window: &win}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("window over roads        -> %d records (via %s) in %.2fms\n",
		wsum.Records, map[bool]string{true: "R-tree", false: "scan"}[wsum.Indexed], wsum.ElapsedMillis)

	// 7. The server kept count of all of it.
	stats, err := cl.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stats: %d requests, %d joins, %d windows, %d pairs streamed\n",
		stats.Requests, stats.Joins, stats.Windows, stats.PairsStreamed)
}

func mustLoad(cat *unijoin.Catalog, name string, recs []unijoin.Record, index bool) {
	if _, err := cat.Load(name, recs, index); err != nil {
		log.Fatal(err)
	}
}
