// Costplan: the Section 6.3 cost model in action. Having an index does
// not mean the index should be used — it wins only when the join
// touches a small fraction of it. This example runs the same pair of
// relations through the planner at several selectivities and shows the
// decision flipping at the machine's break-even threshold.
package main

import (
	"context"
	"fmt"
	"log"

	"unijoin"
	"unijoin/internal/datagen"
)

func main() {
	ctx := context.Background()
	universe := unijoin.NewRect(0, 0, 1000, 1000)
	terrain := datagen.NewTerrain(5, universe, 25)

	// A country-wide indexed road relation.
	roads := datagen.Roads(terrain, 31, 60000, datagen.RoadParams{})
	ws := unijoin.NewWorkspace()
	ws.SetUniverse(universe)
	r, err := ws.AddNamedRelation("roads", roads)
	if err != nil {
		log.Fatal(err)
	}
	if err := r.BuildIndex(); err != nil {
		log.Fatal(err)
	}

	for _, m := range unijoin.Machines {
		d, err := ws.Plan(ctx, m, r, r, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s break-even leaf fraction: %.0f%%\n", m.Name+":", d.Threshold*100)
	}
	fmt.Println("\n(Machine 1's ~60% is the figure quoted in the paper; faster transfer")
	fmt.Println("rates with unchanged seek times push the threshold down.)")

	// Hydro relations of growing footprint: from one river basin to the
	// whole country.
	fmt.Printf("\n%-22s %12s %10s %s\n", "hydro footprint", "est. frac", "pairs", "plan")
	for _, frac := range []float64{0.05, 0.2, 0.5, 1.0} {
		region := unijoin.NewRect(0, 0,
			unijoin.Coord(1000*frac), unijoin.Coord(1000*frac))
		if frac >= 1 {
			region = universe
		}
		sub := datagen.NewTerrain(6, region, 8)
		hydro := datagen.Hydro(sub, 41, 5000, datagen.HydroParams{})
		h, err := ws.AddNamedRelation(fmt.Sprintf("hydro-%.0f%%", frac*100), hydro)
		if err != nil {
			log.Fatal(err)
		}
		// AlgAuto plans with the cost model, then executes the chosen
		// representations through the unified PQ join.
		res, err := ws.Query(r, h).
			Algorithm(unijoin.AlgAuto).
			Machine(unijoin.Machine1).
			CountOnly().
			Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %11.0f%% %10d %s\n",
			h.Name(), res.Decision.FracA*100, res.Count(), res.Decision)
	}
	fmt.Println("\nThe planner reads the road index only while the hydro footprint is")
	fmt.Println("local; once the join would touch most leaves, it sorts instead.")
}
