// Multiway: the Section 4 extension — a 3-way intersection join,
// feeding the output of one PQ join directly into another, run under a
// context like every other query.
//
// Scenario: find every (road, water, wetland-zone) triple with a common
// intersection — candidate bridge sites needing environmental review.
package main

import (
	"context"
	"fmt"
	"log"

	"unijoin"
	"unijoin/internal/datagen"
)

func main() {
	ctx := context.Background()
	universe := unijoin.NewRect(0, 0, 1000, 1000)
	terrain := datagen.NewTerrain(3, universe, 15)

	roads := datagen.Roads(terrain, 21, 12000, datagen.RoadParams{})
	hydro := datagen.Hydro(terrain, 22, 3000, datagen.HydroParams{})
	// Wetland review zones: larger, scattered boxes.
	zones := datagen.Uniform(23, 400, universe, 60)

	ws := unijoin.NewWorkspace()
	ws.SetUniverse(universe)
	r, err := ws.AddNamedRelation("roads", roads)
	if err != nil {
		log.Fatal(err)
	}
	h, err := ws.AddNamedRelation("hydro", hydro)
	if err != nil {
		log.Fatal(err)
	}
	z, err := ws.AddNamedRelation("zones", zones)
	if err != nil {
		log.Fatal(err)
	}
	// Mixed representations: roads indexed, the others not. The
	// pipeline handles any combination.
	if err := r.BuildIndex(); err != nil {
		log.Fatal(err)
	}

	var shown int
	res, err := ws.MultiwayJoin(ctx, []*unijoin.Relation{r, h, z}, nil, func(ids []unijoin.ID) {
		if shown < 5 {
			fmt.Printf("  road %d x water %d x zone %d\n", ids[0], ids[1], ids[2])
			shown++
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ... and %d more\n\n", res.Tuples-int64(shown))

	fmt.Printf("3-way intersections: %d\n", res.Tuples)
	for i, n := range res.Intermediate {
		fmt.Printf("after stage %d: %d tuples\n", i+1, n)
	}
	fmt.Println("\nEach pairwise stage emits its output already sorted by the")
	fmt.Println("intersection's lower y, so it streams straight into the next")
	fmt.Println("plane sweep with no intermediate sort (Section 4 of the paper).")
}
