// Overlay: the paper's motivating GIS workload — join the road network
// of a region against its hydrography to find every road/water
// crossing, comparing all four algorithms on the same data through the
// Query API.
//
// This is the Figure 3 experiment in miniature: generate the synthetic
// NY data set, build indexes, run SSSJ, PBSM, PQ, and ST, and report
// pair counts, page traffic, and simulated running times.
package main

import (
	"context"
	"fmt"
	"log"

	"unijoin"
	"unijoin/internal/datagen"
)

func main() {
	ctx := context.Background()
	universe := unijoin.NewRect(0, 0, 2000, 1400)
	terrain := datagen.NewTerrain(7, universe, 30)
	roads := datagen.Roads(terrain, 11, 40000, datagen.RoadParams{})
	hydro := datagen.Hydro(terrain, 12, 8000, datagen.HydroParams{})

	ws := unijoin.NewWorkspace()
	ws.SetUniverse(universe)
	r, err := ws.AddNamedRelation("roads", roads)
	if err != nil {
		log.Fatal(err)
	}
	h, err := ws.AddNamedRelation("hydro", hydro)
	if err != nil {
		log.Fatal(err)
	}
	if err := r.BuildIndex(); err != nil {
		log.Fatal(err)
	}
	if err := h.BuildIndex(); err != nil {
		log.Fatal(err)
	}
	rp, hp := r.Pin(), h.Pin()
	fmt.Printf("roads: %d records, %d index pages; hydro: %d records, %d index pages\n\n",
		rp.Len(), rp.IndexNodes(), hp.Len(), hp.IndexNodes())

	// The shared knobs, as one-shot functional options.
	opts := []unijoin.Option{
		unijoin.WithMemory(1 << 20), // scale memory with the data
		unijoin.WithBufferPool(900 << 10),
		unijoin.WithCountOnly(),
	}
	fmt.Printf("%-6s %10s %10s %12s %12s %12s\n",
		"alg", "pairs", "pages", "machine1", "machine2", "machine3")
	for _, alg := range []unijoin.Algorithm{unijoin.AlgSSSJ, unijoin.AlgPBSM, unijoin.AlgPQ, unijoin.AlgST} {
		res, err := ws.Query(r, h, opts...).Algorithm(alg).Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %10d %10d %11.2fs %11.2fs %11.2fs\n",
			alg, res.Count(), res.IO.Total(),
			res.ObservedTotal(unijoin.Machine1).Seconds(),
			res.ObservedTotal(unijoin.Machine2).Seconds(),
			res.ObservedTotal(unijoin.Machine3).Seconds())
	}
	fmt.Println("\nNote the paper's Figure 3 shape: the sort-based join moves the most")
	fmt.Println("pages but its I/O is sequential; the index traversals touch far fewer")
	fmt.Println("pages but pay a seek for most of them.")
}
