package unijoin

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestCatalogLoadGetDrop(t *testing.T) {
	u := NewRect(0, 0, 1000, 1000)
	c := NewCatalog()
	c.Workspace().SetUniverse(u)

	if _, err := c.Load("", demoRecords(1, 10, u), false); err == nil {
		t.Fatal("empty name must be rejected")
	}
	a, err := c.Load("roads", demoRecords(1, 400, u), true)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Indexed() {
		t.Fatal("Load(index=true) did not build the R-tree")
	}
	if _, err := c.Load("roads", demoRecords(2, 10, u), false); err == nil {
		t.Fatal("duplicate name must be rejected")
	}
	b, err := c.Load("hydro", demoRecords(2, 300, u), false)
	if err != nil {
		t.Fatal(err)
	}
	if b.Indexed() {
		t.Fatal("Load(index=false) built an index")
	}

	if got, ok := c.Get("roads"); !ok || got != a {
		t.Fatal("Get(roads) did not return the loaded relation")
	}
	if _, ok := c.Get("nope"); ok {
		t.Fatal("Get of unknown name succeeded")
	}
	if names := c.Names(); !reflect.DeepEqual(names, []string{"hydro", "roads"}) {
		t.Fatalf("Names() = %v", names)
	}
	if c.Len() != 2 {
		t.Fatalf("Len() = %d", c.Len())
	}

	// Cataloged relations join directly on the shared workspace.
	res, err := c.Workspace().Query(a, b).CountOnly().Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() == 0 {
		t.Fatal("join of cataloged relations found no pairs")
	}

	if !c.Drop("roads") || c.Drop("roads") {
		t.Fatal("Drop must report presence exactly once")
	}
	if _, err := c.Load("roads", demoRecords(3, 50, u), false); err != nil {
		t.Fatalf("reload after drop: %v", err)
	}
}

// TestCatalogConcurrentLoadAndQuery exercises the single-writer /
// many-reader contract under the race detector: loads publish new
// relations while other goroutines look up and join existing ones.
func TestCatalogConcurrentLoadAndQuery(t *testing.T) {
	u := NewRect(0, 0, 1000, 1000)
	c := NewCatalog()
	c.Workspace().SetUniverse(u)
	a, err := c.Load("a", demoRecords(1, 300, u), true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Load("b", demoRecords(2, 300, u), false)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			_, err := c.Load(fmt.Sprintf("extra-%d", i), demoRecords(int64(10+i), 100, u), i%2 == 0)
			errs <- err
		}(i)
		go func() {
			defer wg.Done()
			if _, ok := c.Get("a"); !ok {
				errs <- errors.New("relation a disappeared")
				return
			}
			res, err := c.Workspace().Query(a, b).CountOnly().Run(context.Background())
			if err == nil && res.Count() == 0 {
				err = errors.New("concurrent join found no pairs")
			}
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 6 {
		t.Fatalf("Len() = %d after concurrent loads", c.Len())
	}
}

func TestWindowQueryBothPaths(t *testing.T) {
	u := NewRect(0, 0, 1000, 1000)
	ws := NewWorkspace()
	ws.SetUniverse(u)
	recs := demoRecords(7, 900, u)
	win := NewRect(200, 150, 600, 500)

	want := map[ID]Rect{}
	for _, r := range recs {
		if r.Rect.Intersects(win) {
			want[r.ID] = r.Rect
		}
	}
	if len(want) == 0 {
		t.Fatal("test window selects nothing")
	}

	for _, indexed := range []bool{false, true} {
		name := map[bool]string{false: "scan", true: "rtree"}[indexed]
		t.Run(name, func(t *testing.T) {
			rel, err := ws.AddNamedRelation(name, recs)
			if err != nil {
				t.Fatal(err)
			}
			if indexed {
				if err := rel.BuildIndex(); err != nil {
					t.Fatal(err)
				}
			}
			got := map[ID]Rect{}
			n, err := rel.WindowQuery(context.Background(), win, func(r Record) {
				got[r.ID] = r.Rect
			})
			if err != nil {
				t.Fatal(err)
			}
			if int(n) != len(want) || !reflect.DeepEqual(got, want) {
				t.Fatalf("window query returned %d records, want %d", n, len(want))
			}
			// Count-only spelling (nil emit) agrees.
			n2, err := rel.WindowQuery(context.Background(), win, nil)
			if err != nil || n2 != n {
				t.Fatalf("count-only window query: n=%d err=%v", n2, err)
			}
		})
	}
}

func TestWindowQueryDisjointAndNil(t *testing.T) {
	u := NewRect(0, 0, 1000, 1000)
	ws := NewWorkspace()
	rel, err := ws.AddRelation(demoRecords(3, 50, u))
	if err != nil {
		t.Fatal(err)
	}
	n, err := rel.WindowQuery(context.Background(), NewRect(5000, 5000, 6000, 6000), nil)
	if err != nil || n != 0 {
		t.Fatalf("disjoint window: n=%d err=%v", n, err)
	}
	var nilRel *Relation
	if _, err := nilRel.WindowQuery(context.Background(), u, nil); !errors.Is(err, ErrNilRelation) {
		t.Fatalf("nil relation error = %v", err)
	}
}

func TestWindowQueryCancel(t *testing.T) {
	u := NewRect(0, 0, 1000, 1000)
	ws := NewWorkspace()
	rel, err := ws.AddRelation(demoRecords(4, 5000, u))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := rel.WindowQuery(ctx, u, nil); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled scan error = %v", err)
	}
	if err := rel.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if _, err := rel.WindowQuery(ctx, u, nil); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled tree query error = %v", err)
	}
}

func TestParseAlgorithm(t *testing.T) {
	cases := map[string]Algorithm{
		"PQ": AlgPQ, "pq": AlgPQ, "": AlgPQ,
		"sssj": AlgSSSJ, "PBSM": AlgPBSM, "st": AlgST,
		"Auto": AlgAuto, "bfrj": AlgBFRJ, "Parallel": AlgParallel,
	}
	for in, want := range cases {
		got, err := ParseAlgorithm(in)
		if err != nil || got != want {
			t.Fatalf("ParseAlgorithm(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	// Round trip: every algorithm's String parses back to itself.
	for _, alg := range []Algorithm{AlgPQ, AlgSSSJ, AlgPBSM, AlgST, AlgAuto, AlgBFRJ, AlgParallel} {
		got, err := ParseAlgorithm(alg.String())
		if err != nil || got != alg {
			t.Fatalf("round trip %v: got %v, %v", alg, got, err)
		}
	}
}
