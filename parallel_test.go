package unijoin

// Cross-validation of the parallel in-memory engine against the serial
// algorithms: identical pair sets on uniform and clustered inputs, for
// several partition counts, with and without Window restriction.

import (
	"math/rand"
	"runtime"
	"testing"

	"unijoin/internal/datagen"
)

// clusteredWorkspace builds a workspace over TIGER-like skewed inputs.
func clusteredWorkspace(t *testing.T, seed int64, nRoads, nHydro int) (*Workspace, *Relation, *Relation) {
	t.Helper()
	u := NewRect(0, 0, 1000, 1000)
	terr := datagen.NewTerrain(seed, u, 15)
	ws := NewWorkspace()
	ws.SetUniverse(u)
	a, err := ws.AddNamedRelation("roads", datagen.Roads(terr, seed+1, nRoads, datagen.RoadParams{}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ws.AddNamedRelation("hydro", datagen.Hydro(terr, seed+2, nHydro, datagen.HydroParams{}))
	if err != nil {
		t.Fatal(err)
	}
	return ws, a, b
}

// joinPairs runs one algorithm and returns its emitted pair set.
func joinPairs(t *testing.T, ws *Workspace, alg Algorithm, a, b *Relation, opts JoinOptions) (JoinResult, map[Pair]bool) {
	t.Helper()
	got := map[Pair]bool{}
	opts.Emit = func(p Pair) {
		if got[p] {
			t.Fatalf("%v: pair %v emitted twice", alg, p)
		}
		got[p] = true
	}
	res, err := ws.Join(alg, a, b, &opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs != int64(len(got)) {
		t.Fatalf("%v: count %d but %d pairs emitted", alg, res.Pairs, len(got))
	}
	return res, got
}

func TestParallelMatchesSerialAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 3; trial++ {
		seed := rng.Int63()
		workspaces := map[string]func() (*Workspace, *Relation, *Relation){
			"uniform": func() (*Workspace, *Relation, *Relation) {
				u := NewRect(0, 0, 1000, 1000)
				ws := NewWorkspace()
				ws.SetUniverse(u)
				a, _ := ws.AddRelation(demoRecords(seed, 800, u))
				b, _ := ws.AddRelation(demoRecords(seed+1, 600, u))
				return ws, a, b
			},
			"clustered": func() (*Workspace, *Relation, *Relation) {
				ws, a, b := clusteredWorkspace(t, seed, 800, 500)
				return ws, a, b
			},
		}
		for name, mk := range workspaces {
			ws, a, b := mk()
			_, wantSSSJ := joinPairs(t, ws, AlgSSSJ, a, b, JoinOptions{})
			_, wantPQ := joinPairs(t, ws, AlgPQ, a, b, JoinOptions{})
			if len(wantSSSJ) != len(wantPQ) {
				t.Fatalf("%s: serial algorithms disagree: SSSJ %d, PQ %d", name, len(wantSSSJ), len(wantPQ))
			}
			for _, k := range []int{1, 2, 8} {
				res, got := joinPairs(t, ws, AlgParallel, a, b,
					JoinOptions{Parallelism: 4, ParallelPartitions: k})
				if len(got) != len(wantSSSJ) {
					t.Fatalf("%s k=%d: parallel %d pairs, serial %d", name, k, len(got), len(wantSSSJ))
				}
				for p := range wantSSSJ {
					if !got[p] {
						t.Fatalf("%s k=%d: missing pair %v", name, k, p)
					}
				}
				if res.Algorithm != "parallel" {
					t.Fatalf("algorithm label = %q", res.Algorithm)
				}
			}
		}
	}
}

func TestParallelWindowMatchesPQ(t *testing.T) {
	ws, a, b := clusteredWorkspace(t, 77, 900, 600)
	w := NewRect(150, 150, 450, 450)
	_, want := joinPairs(t, ws, AlgPQ, a, b, JoinOptions{Window: &w})
	for _, k := range []int{1, 2, 8} {
		_, got := joinPairs(t, ws, AlgParallel, a, b,
			JoinOptions{Window: &w, Parallelism: 2, ParallelPartitions: k})
		if len(got) != len(want) {
			t.Fatalf("k=%d: windowed parallel %d pairs, PQ %d", k, len(got), len(want))
		}
		for p := range want {
			if !got[p] {
				t.Fatalf("k=%d: missing windowed pair %v", k, p)
			}
		}
	}
}

func TestParallelJoinReport(t *testing.T) {
	ws, a, b := clusteredWorkspace(t, 99, 1000, 700)
	res, err := ws.ParallelJoin(a, b, &JoinOptions{Parallelism: 3, ParallelPartitions: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs == 0 {
		t.Fatal("clustered join should produce pairs")
	}
	if res.Parallel.Workers != 3 || res.Parallel.Partitions != 9 {
		t.Fatalf("resolved %d workers x %d partitions", res.Parallel.Workers, res.Parallel.Partitions)
	}
	if res.Parallel.Wall <= 0 || res.HostCPU != res.Parallel.Wall {
		t.Fatalf("wall-clock accounting: HostCPU %v, Wall %v", res.HostCPU, res.Parallel.Wall)
	}
	if res.Parallel.Replication < 1 {
		t.Fatalf("replication = %f", res.Parallel.Replication)
	}
	// Loading the two record streams is charged to the simulated disk.
	if res.IO.Total() == 0 {
		t.Fatal("record loading should be charged to the store counters")
	}
	if _, err := ws.ParallelJoin(nil, b, nil); err == nil {
		t.Fatal("nil relation must error")
	}
	// Defaulted options: workers fall back to GOMAXPROCS.
	res2, err := ws.ParallelJoin(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Pairs != res.Pairs {
		t.Fatalf("default options changed the result: %d vs %d", res2.Pairs, res.Pairs)
	}
	if want := runtime.GOMAXPROCS(0); res2.Parallel.Workers > want*parallelDefaultPartitionFactor {
		t.Fatalf("default workers = %d", res2.Parallel.Workers)
	}
}

// parallelDefaultPartitionFactor mirrors the engine's oversubscription
// default for the bound check above (workers are capped at the
// partition count, which defaults to 4 per worker).
const parallelDefaultPartitionFactor = 4

func TestAlgParallelString(t *testing.T) {
	if AlgParallel.String() != "parallel" {
		t.Fatalf("AlgParallel.String() = %q", AlgParallel.String())
	}
}
