// Package unijoin is a Go reproduction of "A Unified Approach for
// Indexed and Non-Indexed Spatial Joins" (Arge, Procopiuc, Ramaswamy,
// Suel, Vahrenhold, Vitter — EDBT 2000).
//
// The library computes the filter step of spatial overlay joins —
// all pairs of intersecting minimal bounding rectangles (MBRs) between
// two relations — with the four algorithms the paper studies:
//
//   - AlgSSSJ: sort both inputs by lower y and plane-sweep (the
//     Scalable Sweeping-based Spatial Join of Arge et al.).
//   - AlgPBSM: Patel and DeWitt's Partition-Based Spatial Merge join.
//   - AlgST: Brinkhoff, Kriegel and Seeger's synchronized R-tree
//     traversal over two indexes.
//   - AlgPQ: the paper's unified Priority-Queue-driven join, which
//     accepts any mix of indexed and non-indexed inputs, extends to
//     multi-way joins, and degenerates to SSSJ on non-indexed inputs.
//
// Everything runs over a simulated disk (Workspace) that counts
// sequential and random page accesses separately, so the library also
// reproduces the paper's experimental apparatus: per-machine simulated
// running times (Machine1..Machine3 from Table 1), the page-request
// accounting of Table 4, the memory profiles of Table 3, and the
// cost-model planner of Section 6.3 that picks between the index and
// sort paths.
//
// Quick start:
//
//	ws := unijoin.NewWorkspace()
//	roads, _ := ws.AddRelation(roadRecords)
//	hydro, _ := ws.AddRelation(hydroRecords)
//	_ = roads.BuildIndex()
//	res, _ := ws.Join(unijoin.AlgPQ, roads, hydro, nil)
//	fmt.Println(res.Pairs, "intersecting pairs")
//
// # Parallel in-memory execution
//
// Alongside the simulated-I/O algorithms, AlgParallel runs the filter
// step on a multicore, in-memory engine (internal/parallel): the
// universe is split into sample-balanced stripes, records are
// replicated into every stripe they overlap, and a worker pool sweeps
// the stripes concurrently with reference-point duplicate avoidance so
// each pair is reported exactly once. Its results are measured in
// wall-clock time rather than simulated page accesses — the
// benchmarking path for real hardware:
//
//	res, _ := ws.ParallelJoin(roads, hydro, &unijoin.JoinOptions{Parallelism: 8})
//	fmt.Println(res.Pairs, "pairs in", res.Parallel.Wall)
//
// ws.Join(unijoin.AlgParallel, ...) runs the same engine with
// JoinOptions.Parallelism workers (default GOMAXPROCS) when only the
// JoinResult is needed. See examples/parallel for the two paths side
// by side, and `go run ./cmd/sjbench -parallel N` for the wall-clock
// scaling table.
//
// See examples/ for complete programs and EXPERIMENTS.md for the
// paper-vs-measured record of every table and figure plus the
// wall-clock results of the parallel engine.
package unijoin

import (
	"fmt"

	"unijoin/internal/core"
	"unijoin/internal/geom"
	"unijoin/internal/iosim"
	"unijoin/internal/parallel"
	"unijoin/internal/rtree"
	"unijoin/internal/stream"
)

// Geometry and record types, re-exported from the geometry layer.
type (
	// Coord is the coordinate type (float32, as in the paper's 20-byte
	// records).
	Coord = geom.Coord
	// Point is a location in the plane.
	Point = geom.Point
	// Rect is an axis-parallel rectangle (an MBR).
	Rect = geom.Rect
	// Record is one spatial object: MBR plus object ID.
	Record = geom.Record
	// Pair is one join result: the two intersecting objects' IDs.
	Pair = geom.Pair
	// ID identifies an object within a relation.
	ID = geom.ID
)

// NewRect builds a normalized rectangle from two corners.
func NewRect(x1, y1, x2, y2 Coord) Rect { return geom.NewRect(x1, y1, x2, y2) }

// Machine is a simulated hardware platform (CPU clock plus disk model).
type Machine = iosim.Machine

// The three platforms of Table 1.
var (
	Machine1 = iosim.Machine1 // SUN Sparc 20: slow CPU, fast disk
	Machine2 = iosim.Machine2 // SUN Ultra 10: fast CPU, slow-access disk
	Machine3 = iosim.Machine3 // DEC Alpha 500: fast CPU, fast disk
	Machines = iosim.Machines
)

// Algorithm selects a join strategy.
type Algorithm int

const (
	// AlgPQ is the paper's unified priority-queue join (works with any
	// mix of indexed and non-indexed relations).
	AlgPQ Algorithm = iota
	// AlgSSSJ is the sort-and-sweep join (non-indexed inputs).
	AlgSSSJ
	// AlgPBSM is the partition-based spatial merge join (non-indexed
	// inputs).
	AlgPBSM
	// AlgST is the synchronized R-tree traversal (both inputs must be
	// indexed).
	AlgST
	// AlgAuto plans with the Section 6.3 cost model: each side's index
	// is used only when the estimated fraction of leaves touched is
	// below the machine's random-vs-sequential break-even point.
	AlgAuto
	// AlgBFRJ is the breadth-first R-tree join of Huang, Jing and
	// Rundensteiner, the near-I/O-optimal index join the paper cites
	// alongside ST (both inputs must be indexed).
	AlgBFRJ
	// AlgParallel is the multicore in-memory engine: partition-parallel
	// plane sweep with reference-point duplicate avoidance, measured in
	// wall-clock time (JoinOptions.Parallelism sets the worker count).
	AlgParallel
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case AlgPQ:
		return "PQ"
	case AlgSSSJ:
		return "SSSJ"
	case AlgPBSM:
		return "PBSM"
	case AlgST:
		return "ST"
	case AlgAuto:
		return "auto"
	case AlgBFRJ:
		return "BFRJ"
	case AlgParallel:
		return "parallel"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Workspace is a simulated disk holding relations and indexes. All
// I/O performed by joins is counted on it; Counters and per-machine
// cost reports are derived from those counts.
type Workspace struct {
	store    *iosim.Store
	universe Rect
	haveUniv bool
}

// NewWorkspace creates a workspace with the paper's 8 KB pages.
func NewWorkspace() *Workspace {
	return &Workspace{store: iosim.NewStore(iosim.DefaultPageSize)}
}

// SetUniverse fixes the workspace universe (the bounding region used
// to size sweep strips, tiles, and Hilbert curves). If unset, it is
// the union of all relations' MBRs at join time.
func (w *Workspace) SetUniverse(u Rect) {
	w.universe = u
	w.haveUniv = true
}

// Store exposes the underlying simulated disk for advanced use
// (counter snapshots, custom experiments).
func (w *Workspace) Store() *iosim.Store { return w.store }

// Relation is one spatial relation in a workspace: a record stream and
// optionally a bulk-loaded R-tree over it.
type Relation struct {
	ws   *Workspace
	name string
	file *iosim.File
	tree *rtree.Tree
	mbr  Rect
	n    int64
}

// AddRelation writes records to the workspace as a new non-indexed
// relation.
func (w *Workspace) AddRelation(recs []Record) (*Relation, error) {
	return w.AddNamedRelation("", recs)
}

// AddNamedRelation is AddRelation with a label used in diagnostics.
func (w *Workspace) AddNamedRelation(name string, recs []Record) (*Relation, error) {
	f, err := stream.WriteAll(w.store, stream.Records, recs)
	if err != nil {
		return nil, err
	}
	mbr := geom.EmptyRect()
	for _, r := range recs {
		mbr = mbr.Union(r.Rect)
	}
	return &Relation{ws: w, name: name, file: f, mbr: mbr, n: int64(len(recs))}, nil
}

// Name returns the relation's label.
func (r *Relation) Name() string { return r.name }

// Len returns the number of records.
func (r *Relation) Len() int64 { return r.n }

// MBR returns the bounding rectangle of the relation (invalid for an
// empty relation).
func (r *Relation) MBR() Rect { return r.mbr }

// Indexed reports whether BuildIndex has been called.
func (r *Relation) Indexed() bool { return r.tree != nil }

// DataBytes returns the size of the record stream on disk.
func (r *Relation) DataBytes() int64 { return r.file.Size() }

// IndexBytes returns the on-disk size of the R-tree (0 if not built).
func (r *Relation) IndexBytes() int64 {
	if r.tree == nil {
		return 0
	}
	return r.tree.SizeBytes()
}

// IndexNodes returns the R-tree page count (0 if not built) — the
// "lower bound" of Table 4.
func (r *Relation) IndexNodes() int {
	if r.tree == nil {
		return 0
	}
	return r.tree.NumNodes()
}

// BuildIndex bulk-loads a packed R-tree over the relation with the
// paper's configuration (Hilbert order, fanout 400, 75% fill with 20%
// area slack). The sorting and node writes are charged to the
// workspace's counters, as index construction is in Section 6.3's
// discussion.
func (r *Relation) BuildIndex() error {
	return r.BuildIndexOptions(rtree.DefaultBuildOptions())
}

// BuildIndexOptions bulk-loads with explicit options (used by the
// packing-policy ablation).
func (r *Relation) BuildIndexOptions(opts rtree.BuildOptions) error {
	t, err := rtree.Build(r.ws.store, r.file, r.ws.universeFor(r.mbr), opts)
	if err != nil {
		return err
	}
	r.tree = t
	return nil
}

// universeFor resolves the workspace universe, defaulting to the
// given fallback rectangle.
func (w *Workspace) universeFor(fallback Rect) Rect {
	if w.haveUniv {
		return w.universe
	}
	if fallback.Valid() {
		return fallback
	}
	return NewRect(0, 0, 1, 1)
}

// JoinOptions tunes a join; nil means defaults. Fields mirror the
// paper's experimental knobs.
type JoinOptions struct {
	// MemoryBytes is the simulated internal memory (default 24 MB).
	MemoryBytes int
	// BufferPoolBytes is ST's LRU pool (default 22 MB).
	BufferPoolBytes int
	// Machine selects the platform for AlgAuto's cost model (default
	// Machine3).
	Machine Machine
	// Window restricts the join to pairs intersecting this rectangle.
	Window *Rect
	// UseForwardSweep switches the sweep kernel to the Forward-Sweep
	// structure (ablation).
	UseForwardSweep bool
	// PBSMTilesPerAxis overrides PBSM's tile resolution (default 128).
	PBSMTilesPerAxis int
	// Parallelism is the worker count for AlgParallel/ParallelJoin
	// (default GOMAXPROCS). Other algorithms ignore it.
	Parallelism int
	// ParallelPartitions overrides the parallel engine's stripe count
	// (default: several stripes per worker for load balancing).
	ParallelPartitions int
	// Emit receives each result pair; nil counts only (the paper's
	// accounting excludes output writing). AlgParallel calls Emit on
	// the caller's goroutine in deterministic partition order after
	// the concurrent phase, so the callback need not be thread-safe.
	Emit func(Pair)
}

// JoinResult is the outcome of a join: pair count, I/O and memory
// accounting, and per-machine cost reports.
type JoinResult struct {
	core.Result
	// Decision is set for AlgAuto: what the planner chose and why.
	Decision *core.Decision
}

// Join runs the selected algorithm on two relations. Requirements:
// AlgST needs both relations indexed; AlgSSSJ/AlgPBSM ignore indexes;
// AlgPQ uses an index when present; AlgAuto decides per side.
func (w *Workspace) Join(alg Algorithm, a, b *Relation, opts *JoinOptions) (JoinResult, error) {
	o, err := w.coreOptions(a, b, opts)
	if err != nil {
		return JoinResult{}, err
	}
	switch alg {
	case AlgSSSJ:
		res, err := core.SSSJ(o, a.file, b.file)
		return JoinResult{Result: res}, err
	case AlgPBSM:
		res, err := core.PBSM(o, a.file, b.file)
		return JoinResult{Result: res}, err
	case AlgST:
		if a.tree == nil || b.tree == nil {
			return JoinResult{}, fmt.Errorf("unijoin: ST requires both relations indexed")
		}
		res, err := core.ST(o, a.tree, b.tree)
		return JoinResult{Result: res}, err
	case AlgPQ:
		res, err := core.PQ(o, a.input(), b.input())
		return JoinResult{Result: res}, err
	case AlgBFRJ:
		if a.tree == nil || b.tree == nil {
			return JoinResult{}, fmt.Errorf("unijoin: BFRJ requires both relations indexed")
		}
		res, err := core.BFRJ(o, a.tree, b.tree)
		return JoinResult{Result: res}, err
	case AlgAuto:
		m := Machine3
		if opts != nil && opts.Machine.Name != "" {
			m = opts.Machine
		}
		p := core.Planner{Machine: m}
		d, res, err := p.Join(o, a.input(), b.input())
		return JoinResult{Result: res, Decision: &d}, err
	case AlgParallel:
		pr, err := w.ParallelJoin(a, b, opts)
		return pr.JoinResult, err
	default:
		return JoinResult{}, fmt.Errorf("unijoin: unknown algorithm %v", alg)
	}
}

// ParallelResult extends JoinResult with the parallel engine's
// wall-clock report: partition/worker breakdown, replication factor,
// and per-phase times.
type ParallelResult struct {
	JoinResult
	// Parallel is the engine's full report (wall-clock phases,
	// per-worker statistics, replication).
	Parallel parallel.Report
}

// ParallelJoin runs the multicore in-memory engine on two relations:
// both record streams are loaded from the workspace (the one read pass
// is charged to the simulated-I/O counters like any other scan), then
// partitioned into sample-balanced stripes and swept concurrently by
// opts.Parallelism workers. The JoinResult mirrors the serial
// algorithms' report — HostCPU is the engine's wall-clock time — and
// the Parallel field carries the detailed scaling statistics. Indexes
// are ignored; Window and Emit behave as in the serial joins.
func (w *Workspace) ParallelJoin(a, b *Relation, opts *JoinOptions) (ParallelResult, error) {
	if a == nil || b == nil {
		return ParallelResult{}, fmt.Errorf("unijoin: nil relation")
	}
	po := parallel.Options{Universe: w.universeFor(a.mbr.Union(b.mbr))}
	if opts != nil {
		po.Workers = opts.Parallelism
		po.Partitions = opts.ParallelPartitions
		po.UseForwardSweep = opts.UseForwardSweep
		po.Window = opts.Window
		po.Emit = opts.Emit
	}
	before := w.store.Counters()
	beforeDirect := w.store.DirectCounters()
	recsA, err := stream.ReadAll(a.file, stream.Records)
	if err != nil {
		return ParallelResult{}, err
	}
	recsB, err := stream.ReadAll(b.file, stream.Records)
	if err != nil {
		return ParallelResult{}, err
	}
	rep, err := parallel.Join(recsA, recsB, po)
	if err != nil {
		return ParallelResult{}, err
	}
	res := core.Result{
		Algorithm:     "parallel",
		Pairs:         rep.Pairs,
		Sweep:         rep.Sweep,
		SweepMaxBytes: rep.Sweep.MaxBytes,
		HostCPU:       rep.Wall,
		IO:            w.store.Counters().Sub(before),
		IODirect:      w.store.DirectCounters().Sub(beforeDirect),
	}
	return ParallelResult{JoinResult: JoinResult{Result: res}, Parallel: rep}, nil
}

// MultiwayJoin computes the k-way intersection join of the relations
// (k >= 2) with the pipelined PQ strategy of Section 4. emit receives
// the IDs of each result tuple in input order.
func (w *Workspace) MultiwayJoin(rels []*Relation, opts *JoinOptions, emit func(ids []ID)) (core.MultiwayResult, error) {
	if len(rels) < 2 {
		return core.MultiwayResult{}, fmt.Errorf("unijoin: multiway join needs >= 2 relations")
	}
	o, err := w.coreOptions(rels[0], rels[1], opts)
	if err != nil {
		return core.MultiwayResult{}, err
	}
	mbr := geom.EmptyRect()
	for _, r := range rels {
		mbr = mbr.Union(r.mbr)
	}
	o.Universe = w.universeFor(mbr)
	inputs := make([]core.Input, len(rels))
	for i, r := range rels {
		inputs[i] = r.input()
	}
	return core.MultiwayPQ(o, inputs, emit)
}

// Plan runs only the cost model, without executing the join.
func (w *Workspace) Plan(m Machine, a, b *Relation, opts *JoinOptions) (core.Decision, error) {
	o, err := w.coreOptions(a, b, opts)
	if err != nil {
		return core.Decision{}, err
	}
	p := core.Planner{Machine: m}
	return p.Plan(o, a.input(), b.input())
}

func (r *Relation) input() core.Input {
	return core.Input{File: r.file, Tree: r.tree}
}

func (w *Workspace) coreOptions(a, b *Relation, opts *JoinOptions) (core.Options, error) {
	if a == nil || b == nil {
		return core.Options{}, fmt.Errorf("unijoin: nil relation")
	}
	u := w.universeFor(a.mbr.Union(b.mbr))
	o := core.Options{Store: w.store, Universe: u}
	if opts != nil {
		o.MemoryBytes = opts.MemoryBytes
		o.BufferPoolBytes = opts.BufferPoolBytes
		o.UseForwardSweep = opts.UseForwardSweep
		o.PBSMTilesPerAxis = opts.PBSMTilesPerAxis
		o.Window = opts.Window
		o.Emit = opts.Emit
	}
	return o, nil
}
