// Package unijoin is a Go reproduction of "A Unified Approach for
// Indexed and Non-Indexed Spatial Joins" (Arge, Procopiuc, Ramaswamy,
// Suel, Vahrenhold, Vitter — EDBT 2000).
//
// The library computes the filter step of spatial overlay joins —
// all pairs of intersecting minimal bounding rectangles (MBRs) between
// two relations — with the four algorithms the paper studies:
//
//   - AlgSSSJ: sort both inputs by lower y and plane-sweep (the
//     Scalable Sweeping-based Spatial Join of Arge et al.).
//   - AlgPBSM: Patel and DeWitt's Partition-Based Spatial Merge join.
//   - AlgST: Brinkhoff, Kriegel and Seeger's synchronized R-tree
//     traversal over two indexes.
//   - AlgPQ: the paper's unified Priority-Queue-driven join, which
//     accepts any mix of indexed and non-indexed inputs, extends to
//     multi-way joins, and degenerates to SSSJ on non-indexed inputs.
//
// Everything runs over a simulated disk (Workspace) that counts
// sequential and random page accesses separately, so the library also
// reproduces the paper's experimental apparatus: per-machine simulated
// running times (Machine1..Machine3 from Table 1), the page-request
// accounting of Table 4, the memory profiles of Table 3, and the
// cost-model planner of Section 6.3 that picks between the index and
// sort paths.
//
// # Quick start
//
// Joins are built with the composable Query API and executed under a
// context.Context:
//
//	ws := unijoin.NewWorkspace()
//	roads, _ := ws.AddRelation(roadRecords)
//	hydro, _ := ws.AddRelation(hydroRecords)
//	_ = roads.BuildIndex()
//
//	res, _ := ws.Query(roads, hydro).Algorithm(unijoin.AlgPQ).Run(ctx)
//	fmt.Println(res.Count(), "intersecting pairs")
//	for p := range res.Pairs() {
//		fmt.Println(p.Left, p.Right)
//	}
//
// Builder methods chain (Algorithm, Window, Parallelism, Memory,
// Emit, ...); the equivalent With* functional options serve one-shot
// calls:
//
//	res, err := ws.Query(roads, hydro,
//		unijoin.WithWindow(r),
//		unijoin.WithParallelism(8),
//	).Run(ctx)
//
// Canceling ctx (or exceeding its deadline) aborts the join mid-run
// with an error matching errors.Is(err, unijoin.ErrCanceled); other
// failure classes carry the ErrNeedsIndex and ErrNilRelation
// sentinels.
//
// Result pairs go to exactly one destination. By default Run buffers
// them for the Results.Pairs iterator; Emit streams them one at a
// time; EmitBatch streams them in pooled slices, amortizing the
// callback cost over thousands of pairs (the fast path for servers);
// CountOnly drops them, keeping only the accounting — the paper's own
// costing, which excludes output writing.
//
// # Parallel in-memory execution
//
// Alongside the simulated-I/O algorithms, AlgParallel runs the filter
// step on a multicore, in-memory engine (internal/parallel): the
// universe is split into sample-balanced stripes and both phases run
// on the worker pool. Distribution is chunked and two-layer — each
// worker filters and classifies its private chunk, tagging records
// contained in one stripe as local and replicating only
// boundary-crossing records — and the concurrent sweep emits
// local-member pairs with no per-pair test while boundary×boundary
// pairs pay the reference-point ownership test, so each pair is
// reported exactly once. Its results are measured in wall-clock time
// rather than simulated page accesses — the benchmarking path for
// real hardware:
//
//	res, _ := ws.Query(roads, hydro).
//		Algorithm(unijoin.AlgParallel).
//		Parallelism(8).
//		Run(ctx)
//	fmt.Println(res.Count(), "pairs in", res.Parallel.Wall)
//
// # Serving queries
//
// A Catalog holds named, optionally indexed relations on one shared
// workspace with single-writer loads and concurrent reads — the
// resident state of a long-lived query process. Relation.WindowQuery
// answers the selection counterpart of a join (all records
// intersecting a rectangle) through the R-tree when one exists.
// cmd/sjserved serves both query classes over HTTP with streaming
// NDJSON responses; the client package is its Go client.
//
// Serving also scales across processes: Catalog.StripeBoundaries
// exports the engine's sample-balanced stripe cuts (the per-relation
// sample is cached across queries), sjserved -stripe lo:hi restricts
// a process to one stripe shard, and cmd/sjrouter scatter-gathers a
// shard fleet behind the identical HTTP API — returning exactly the
// single-process answer for every algorithm (see internal/shard).
//
// See examples/ for complete programs and EXPERIMENTS.md for the
// paper-vs-measured record of every table and figure plus the
// wall-clock results of the parallel engine.
package unijoin

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"

	"unijoin/internal/core"
	"unijoin/internal/geom"
	"unijoin/internal/ingest"
	"unijoin/internal/iosim"
	"unijoin/internal/rtree"
)

// Geometry and record types, re-exported from the geometry layer.
type (
	// Coord is the coordinate type (float32, as in the paper's 20-byte
	// records).
	Coord = geom.Coord
	// Point is a location in the plane.
	Point = geom.Point
	// Rect is an axis-parallel rectangle (an MBR).
	Rect = geom.Rect
	// Record is one spatial object: MBR plus object ID.
	Record = geom.Record
	// Pair is one join result: the two intersecting objects' IDs.
	Pair = geom.Pair
	// ID identifies an object within a relation.
	ID = geom.ID
)

// NewRect builds a normalized rectangle from two corners.
func NewRect(x1, y1, x2, y2 Coord) Rect { return geom.NewRect(x1, y1, x2, y2) }

// ParseRect parses the "x1,y1,x2,y2" rectangle syntax shared by the
// command-line tools' -window and -region flags.
func ParseRect(s string) (Rect, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return Rect{}, fmt.Errorf("unijoin: rectangle needs 4 comma-separated numbers, got %q", s)
	}
	var v [4]float64
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return Rect{}, fmt.Errorf("unijoin: bad rectangle component %q: %w", p, err)
		}
		v[i] = f
	}
	return NewRect(Coord(v[0]), Coord(v[1]), Coord(v[2]), Coord(v[3])), nil
}

// ReadRecordFile loads a real file of the paper's 20-byte MBR records
// (the format sjgen writes) into memory — the loader shared by the
// sjjoin and sjserved commands.
func ReadRecordFile(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data)%geom.RecordSize != 0 {
		return nil, fmt.Errorf("unijoin: %s: %d bytes is not a whole number of %d-byte records",
			path, len(data), geom.RecordSize)
	}
	recs := make([]Record, 0, len(data)/geom.RecordSize)
	for off := 0; off < len(data); off += geom.RecordSize {
		recs = append(recs, geom.DecodeRecord(data[off:]))
	}
	return recs, nil
}

// Machine is a simulated hardware platform (CPU clock plus disk model).
type Machine = iosim.Machine

// The three platforms of Table 1.
var (
	Machine1 = iosim.Machine1 // SUN Sparc 20: slow CPU, fast disk
	Machine2 = iosim.Machine2 // SUN Ultra 10: fast CPU, slow-access disk
	Machine3 = iosim.Machine3 // DEC Alpha 500: fast CPU, fast disk
	Machines = iosim.Machines
)

// Algorithm selects a join strategy.
type Algorithm int

const (
	// AlgPQ is the paper's unified priority-queue join (works with any
	// mix of indexed and non-indexed relations).
	AlgPQ Algorithm = iota
	// AlgSSSJ is the sort-and-sweep join (non-indexed inputs).
	AlgSSSJ
	// AlgPBSM is the partition-based spatial merge join (non-indexed
	// inputs).
	AlgPBSM
	// AlgST is the synchronized R-tree traversal (both inputs must be
	// indexed).
	AlgST
	// AlgAuto plans with the Section 6.3 cost model: each side's index
	// is used only when the estimated fraction of leaves touched is
	// below the machine's random-vs-sequential break-even point.
	AlgAuto
	// AlgBFRJ is the breadth-first R-tree join of Huang, Jing and
	// Rundensteiner, the near-I/O-optimal index join the paper cites
	// alongside ST (both inputs must be indexed).
	AlgBFRJ
	// AlgParallel is the multicore in-memory engine: chunked parallel
	// two-layer distribution followed by a partition-parallel plane
	// sweep, with stripe-local pairs emitted untested and boundary
	// pairs deduplicated by the reference-point test, measured in
	// wall-clock time (Query.Parallelism sets the worker count).
	AlgParallel
)

// ParseAlgorithm maps an algorithm name (case-insensitive: "PQ",
// "SSSJ", "PBSM", "ST", "auto", "BFRJ", "parallel") to its Algorithm
// value — the parser behind sjjoin's -alg flag and the query service's
// request decoding.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "PQ", "":
		return AlgPQ, nil
	case "SSSJ":
		return AlgSSSJ, nil
	case "PBSM":
		return AlgPBSM, nil
	case "ST":
		return AlgST, nil
	case "AUTO":
		return AlgAuto, nil
	case "BFRJ":
		return AlgBFRJ, nil
	case "PARALLEL":
		return AlgParallel, nil
	default:
		return 0, fmt.Errorf("unijoin: unknown algorithm %q", s)
	}
}

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case AlgPQ:
		return "PQ"
	case AlgSSSJ:
		return "SSSJ"
	case AlgPBSM:
		return "PBSM"
	case AlgST:
		return "ST"
	case AlgAuto:
		return "auto"
	case AlgBFRJ:
		return "BFRJ"
	case AlgParallel:
		return "parallel"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Workspace is a simulated disk holding relations and indexes. All
// I/O performed by joins is counted on it; Counters and per-machine
// cost reports are derived from those counts.
//
// Queries may run on one workspace concurrently (the simulated disk
// serializes page access internally, and a query's temporary files
// are its own); the query service does this for every request. The
// shared counters then accumulate across all concurrent queries, so
// per-query I/O deltas are only exact when queries run one at a
// time. Loading relations and building indexes are not synchronized
// with running queries — use a Catalog, which publishes relations
// under a single-writer lock, when loads and queries overlap.
type Workspace struct {
	store    *iosim.Store
	universe Rect
	haveUniv bool
}

// NewWorkspace creates a workspace with the paper's 8 KB pages.
func NewWorkspace() *Workspace {
	return &Workspace{store: iosim.NewStore(iosim.DefaultPageSize)}
}

// SetUniverse fixes the workspace universe (the bounding region used
// to size sweep strips, tiles, and Hilbert curves). If unset, it is
// the union of all relations' MBRs at join time.
func (w *Workspace) SetUniverse(u Rect) {
	w.universe = u
	w.haveUniv = true
}

// Store exposes the underlying simulated disk for advanced use
// (counter snapshots, custom experiments).
func (w *Workspace) Store() *iosim.Store { return w.store }

// Relation is one spatial relation in a workspace: an appendable
// record log with epoch-stamped immutable versions, and optionally an
// R-tree over it (bulk-loaded packed, grown incrementally by appends;
// see internal/ingest). Every query pins one version when it starts —
// Query.Run, WindowQuery, and StripeBoundaries each read the current
// version once, atomically — so a query never observes records
// appended after it began, no matter how long it streams.
type Relation struct {
	ws   *Workspace
	name string
	log  *ingest.Log
}

// AppendResult reports one Relation.Append: how many records were
// accepted, the epoch that makes them visible, the relation's new
// record count, and whether the append triggered a compaction.
type AppendResult = ingest.AppendResult

// AddRelation writes records to the workspace as a new non-indexed
// relation.
func (w *Workspace) AddRelation(recs []Record) (*Relation, error) {
	return w.AddNamedRelation("", recs)
}

// AddNamedRelation is AddRelation with a label used in diagnostics.
func (w *Workspace) AddNamedRelation(name string, recs []Record) (*Relation, error) {
	l, err := ingest.New(ingest.Config{Store: w.store, Universe: w.universeFor}, recs)
	if err != nil {
		return nil, err
	}
	return &Relation{ws: w, name: name, log: l}, nil
}

// snapshot pins the relation's current version: the record prefix,
// tree, MBR, and sample a single query uses throughout its run.
func (r *Relation) snapshot() *ingest.Version { return r.log.Current() }

// Name returns the relation's label.
func (r *Relation) Name() string { return r.name }

// Len returns the number of records.
func (r *Relation) Len() int64 { return r.snapshot().N }

// MBR returns the bounding rectangle of the relation (invalid for an
// empty relation).
func (r *Relation) MBR() Rect { return r.snapshot().MBR }

// Indexed reports whether BuildIndex has been called.
func (r *Relation) Indexed() bool { return r.snapshot().Tree != nil }

// DataBytes returns the size of the record stream on disk.
func (r *Relation) DataBytes() int64 { return r.snapshot().File.Size() }

// IndexBytes returns the on-disk size of the R-tree (0 if not built).
func (r *Relation) IndexBytes() int64 {
	if t := r.snapshot().Tree; t != nil {
		return t.SizeBytes()
	}
	return 0
}

// IndexNodes returns the R-tree page count (0 if not built) — the
// "lower bound" of Table 4.
func (r *Relation) IndexNodes() int {
	if t := r.snapshot().Tree; t != nil {
		return t.NumNodes()
	}
	return 0
}

// Epoch returns the relation's current epoch: it increases by one per
// published mutation (append, index build, compaction), and a query
// pinned at epoch e observes exactly the appends published at or
// before e.
func (r *Relation) Epoch() int64 { return r.log.Epoch() }

// DeltaRecords returns how many records have been appended since the
// last packed index build (0 right after load, BuildIndex, or
// compaction) — the index-degradation measure the planner and the
// serving stats expose.
func (r *Relation) DeltaRecords() int64 { return r.snapshot().Delta() }

// PinnedView is one relation's state pinned at a single epoch: every
// accessor answers from the same immutable version, so a multi-field
// summary (count + MBR + index stats) can never tear across a
// concurrent Append or Compact. Obtain one with Relation.Pin. A view
// stays valid indefinitely — versions are immutable — but goes stale
// as new epochs publish; pin fresh per request, not per process.
type PinnedView struct {
	name string
	v    *ingest.Version
}

// Pin reads the relation's current version exactly once and returns a
// consistent view of it. Use it wherever more than one property of
// the same relation is reported together: each direct accessor call
// (rel.Len(), then rel.MBR()) re-reads the live epoch, and two such
// reads can straddle a concurrent Append and mix epochs.
func (r *Relation) Pin() PinnedView { return PinnedView{name: r.name, v: r.snapshot()} }

// Name returns the relation's label.
func (p PinnedView) Name() string { return p.name }

// Epoch returns the pinned epoch.
func (p PinnedView) Epoch() int64 { return p.v.Epoch }

// Len returns the number of records at the pinned epoch.
func (p PinnedView) Len() int64 { return p.v.N }

// MBR returns the bounding rectangle at the pinned epoch.
func (p PinnedView) MBR() Rect { return p.v.MBR }

// Indexed reports whether the pinned version carries an R-tree.
func (p PinnedView) Indexed() bool { return p.v.Tree != nil }

// DataBytes returns the record-stream size at the pinned epoch.
func (p PinnedView) DataBytes() int64 { return p.v.File.Size() }

// IndexBytes returns the R-tree's on-disk size at the pinned epoch
// (0 if not built).
func (p PinnedView) IndexBytes() int64 {
	if t := p.v.Tree; t != nil {
		return t.SizeBytes()
	}
	return 0
}

// IndexNodes returns the R-tree page count at the pinned epoch (0 if
// not built).
func (p PinnedView) IndexNodes() int {
	if t := p.v.Tree; t != nil {
		return t.NumNodes()
	}
	return 0
}

// DeltaRecords returns the unfolded append delta at the pinned epoch.
func (p PinnedView) DeltaRecords() int64 { return p.v.Delta() }

// Compactions returns how many delta compactions the relation has
// run (automatic and explicit).
func (r *Relation) Compactions() int64 { return r.log.Compactions() }

// Append adds records to the relation and publishes them atomically
// as a new epoch: queries already running never observe them, queries
// started after Append returns observe all of them. The record log
// grows in place, an existing R-tree absorbs the records by
// copy-on-write Guttman insertion (indexed algorithms see them
// without a rebuild), and the cached x-center sample is maintained by
// merge. All records are accepted or none. When the accumulated delta
// crosses the compaction threshold, the packed index layout is
// rebuilt before Append returns.
func (r *Relation) Append(recs []Record) (AppendResult, error) {
	if r == nil || r.log == nil {
		return AppendResult{}, fmt.Errorf("%w: append", ErrNilRelation)
	}
	return r.log.Append(recs)
}

// Compact folds the appended delta into the base segment now: an
// indexed relation gets a fresh packed bulk load over all records, an
// unindexed one resets the delta accounting. It reports whether there
// was a delta to fold. Queries pinned to earlier versions are
// unaffected.
func (r *Relation) Compact() (bool, error) {
	if r == nil || r.log == nil {
		return false, fmt.Errorf("%w: compact", ErrNilRelation)
	}
	return r.log.Compact()
}

// BuildIndex bulk-loads a packed R-tree over the relation with the
// paper's configuration (Hilbert order, fanout 400, 75% fill with 20%
// area slack). The sorting and node writes are charged to the
// workspace's counters, as index construction is in Section 6.3's
// discussion.
func (r *Relation) BuildIndex() error {
	return r.BuildIndexOptions(rtree.DefaultBuildOptions())
}

// BuildIndexOptions bulk-loads with explicit options (used by the
// packing-policy ablation). The options also govern later compaction
// rebuilds of this relation.
func (r *Relation) BuildIndexOptions(opts rtree.BuildOptions) error {
	return r.log.BuildIndex(opts)
}

// universeFor resolves the workspace universe, defaulting to the
// given fallback rectangle.
func (w *Workspace) universeFor(fallback Rect) Rect {
	if w.haveUniv {
		return w.universe
	}
	if fallback.Valid() {
		return fallback
	}
	return NewRect(0, 0, 1, 1)
}

// JoinOptions is the knob block behind a Query: every field has a
// builder method (Query.Window, Query.Parallelism, ...) and a
// functional option (WithWindow, WithParallelism, ...), which are the
// primary ways to set it — build a Query with ws.Query(a, b), not a
// JoinOptions literal. The struct itself survives as the parameter
// block of the deprecated Join/ParallelJoin wrappers. Fields mirror
// the paper's experimental knobs; the zero value means defaults.
type JoinOptions struct {
	// MemoryBytes is the simulated internal memory (default 24 MB).
	MemoryBytes int
	// BufferPoolBytes is ST's LRU pool (default 22 MB).
	BufferPoolBytes int
	// Machine selects the platform for AlgAuto's cost model (default
	// Machine3).
	Machine Machine
	// Window restricts the join to pairs intersecting this rectangle.
	Window *Rect
	// UseForwardSweep switches the sweep kernel to the Forward-Sweep
	// structure (ablation).
	UseForwardSweep bool
	// PBSMTilesPerAxis overrides PBSM's tile resolution (default 128).
	PBSMTilesPerAxis int
	// Parallelism is the worker count for AlgParallel (default
	// GOMAXPROCS). Other algorithms ignore it.
	Parallelism int
	// ParallelPartitions overrides the parallel engine's stripe count
	// (default: several stripes per worker for load balancing).
	ParallelPartitions int
	// Emit receives each result pair as the join finds it; see
	// Query.Emit for where pairs go when it is nil (Query.Run buffers
	// them for Results.Pairs unless CountOnly is set; the deprecated
	// Join wrapper counts only). AlgParallel calls Emit on the
	// caller's goroutine in deterministic partition order after the
	// concurrent phase, so the callback need not be thread-safe.
	Emit func(Pair)
	// EmitBatch receives result pairs in pooled batches; see
	// Query.EmitBatch. Mutually exclusive with Emit.
	EmitBatch func([]Pair)
}

// Join runs the selected algorithm on two relations. Requirements:
// AlgST needs both relations indexed; AlgSSSJ/AlgPBSM ignore indexes;
// AlgPQ uses an index when present; AlgAuto decides per side.
//
// Deprecated: build a Query instead — ws.Query(a, b).Algorithm(alg).
// Run(ctx) — which adds context cancellation, the Pairs iterator, and
// typed errors. Join runs the same code with context.Background() and
// never buffers pairs (CountOnly semantics unless opts.Emit or
// opts.EmitBatch is set).
func (w *Workspace) Join(alg Algorithm, a, b *Relation, opts *JoinOptions) (JoinResult, error) {
	q := w.Query(a, b).Algorithm(alg).CountOnly()
	if opts != nil {
		q.opts = *opts
	}
	res, err := q.Run(context.Background())
	if err != nil {
		return JoinResult{}, err
	}
	return res.JoinResult, nil
}

// ParallelJoin runs the multicore in-memory engine on two relations;
// see AlgParallel. The JoinResult mirrors the serial algorithms'
// report — HostCPU is the engine's wall-clock time — and the Parallel
// field carries the detailed scaling statistics. Indexes are ignored;
// Window and Emit behave as in the serial joins.
//
// Deprecated: build a Query instead — ws.Query(a, b).
// Algorithm(AlgParallel).Parallelism(n).Run(ctx) — and read the
// report from Results.Parallel.
func (w *Workspace) ParallelJoin(a, b *Relation, opts *JoinOptions) (ParallelResult, error) {
	q := w.Query(a, b).Algorithm(AlgParallel).CountOnly()
	if opts != nil {
		q.opts = *opts
	}
	res, err := q.Run(context.Background())
	if err != nil {
		return ParallelResult{}, err
	}
	return ParallelResult{JoinResult: res.JoinResult, Parallel: *res.Parallel}, nil
}

// MultiwayJoin computes the k-way intersection join of the relations
// (k >= 2) with the pipelined PQ strategy of Section 4, under ctx:
// every pipeline stage polls the context, so canceling it aborts the
// whole multiway join with ErrCanceled. emit receives the IDs of each
// result tuple in input order.
func (w *Workspace) MultiwayJoin(ctx context.Context, rels []*Relation, opts *JoinOptions, emit func(ids []ID)) (core.MultiwayResult, error) {
	if len(rels) < 2 {
		return core.MultiwayResult{}, fmt.Errorf("unijoin: multiway join needs >= 2 relations")
	}
	for _, r := range rels {
		if r == nil {
			return core.MultiwayResult{}, fmt.Errorf("%w: multiway join", ErrNilRelation)
		}
	}
	// Pin every relation's version once, before any work: the k-way
	// join then sees one consistent epoch per input for its whole run.
	versions := make([]*ingest.Version, len(rels))
	for i, r := range rels {
		versions[i] = r.snapshot()
	}
	o, err := w.coreOptionsFor(versions[0], versions[1], opts)
	if err != nil {
		return core.MultiwayResult{}, err
	}
	mbr := geom.EmptyRect()
	for _, v := range versions {
		mbr = mbr.Union(v.MBR)
	}
	o.Universe = w.universeFor(mbr)
	inputs := make([]core.Input, len(versions))
	for i, v := range versions {
		inputs[i] = versionInput(v)
	}
	return core.MultiwayPQ(ctx, o, inputs, emit)
}

// Plan runs only the Section 6.3 cost model, without executing the
// join; histogram construction polls ctx.
func (w *Workspace) Plan(ctx context.Context, m Machine, a, b *Relation, opts *JoinOptions) (core.Decision, error) {
	if a == nil || b == nil {
		return core.Decision{}, fmt.Errorf("%w: plan needs two relations", ErrNilRelation)
	}
	va, vb := a.snapshot(), b.snapshot()
	o, err := w.coreOptionsFor(va, vb, opts)
	if err != nil {
		return core.Decision{}, err
	}
	p := core.Planner{Machine: m}
	return p.Plan(ctx, o, versionInput(va), versionInput(vb))
}

// versionInput adapts a pinned relation version to the core layer's
// input shape.
func versionInput(v *ingest.Version) core.Input {
	return core.Input{File: v.File, Tree: v.Tree}
}
