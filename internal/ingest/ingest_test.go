package ingest

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"unijoin/internal/geom"
	"unijoin/internal/iosim"
	"unijoin/internal/parallel"
	"unijoin/internal/rtree"
	"unijoin/internal/stream"
)

var universe = geom.NewRect(0, 0, 1000, 1000)

func fixedUniverse(geom.Rect) geom.Rect { return universe }

func genRecords(rng *rand.Rand, n, idBase int) []geom.Record {
	recs := make([]geom.Record, n)
	for i := range recs {
		x := float32(rng.Float64() * 990)
		y := float32(rng.Float64() * 990)
		recs[i] = geom.Record{
			Rect: geom.NewRect(x, y, x+float32(rng.Float64()*10), y+float32(rng.Float64()*10)),
			ID:   uint32(idBase + i),
		}
	}
	return recs
}

func newLog(t *testing.T, cfg Config, recs []geom.Record) *Log {
	t.Helper()
	if cfg.Store == nil {
		cfg.Store = iosim.NewStore(iosim.DefaultPageSize)
	}
	if cfg.Universe == nil {
		cfg.Universe = fixedUniverse
	}
	l, err := New(cfg, recs)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func readVersion(t *testing.T, v *Version) []geom.Record {
	t.Helper()
	recs, err := stream.ReadAll(v.File, stream.Records)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestAppendPublishesNewEpochAndPinsOld is the core isolation
// property: a version pinned before an append never observes it, the
// version published by the append observes everything.
func TestAppendPublishesNewEpochAndPinsOld(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := genRecords(rng, 500, 0)
	l := newLog(t, Config{DisableAutoCompact: true}, base)

	pinned := l.Current()
	if pinned.Epoch != 0 || pinned.N != 500 {
		t.Fatalf("initial version epoch %d n %d", pinned.Epoch, pinned.N)
	}

	delta := genRecords(rng, 120, 500)
	res, err := l.Append(delta)
	if err != nil {
		t.Fatal(err)
	}
	if res.Appended != 120 || res.Epoch != 1 || res.Total != 620 || res.Compacted {
		t.Fatalf("append result %+v", res)
	}

	// The pinned version still reads exactly the base records.
	got := readVersion(t, pinned)
	if len(got) != 500 {
		t.Fatalf("pinned version reads %d records, want 500", len(got))
	}
	for i, r := range got {
		if r != base[i] {
			t.Fatalf("pinned record %d changed: %v vs %v", i, r, base[i])
		}
	}
	// The new version reads base + delta in order.
	cur := l.Current()
	all := readVersion(t, cur)
	if len(all) != 620 {
		t.Fatalf("current version reads %d records, want 620", len(all))
	}
	for i, r := range delta {
		if all[500+i] != r {
			t.Fatalf("appended record %d: %v vs %v", i, all[500+i], r)
		}
	}
	if cur.Delta() != 120 {
		t.Fatalf("delta %d, want 120", cur.Delta())
	}
}

// TestIndexedAppendGrowsTreeCopyOnWrite: the pinned version's tree
// answers with the old records, the new version's with all, and both
// validate.
func TestIndexedAppendGrowsTreeCopyOnWrite(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	store := iosim.NewStore(iosim.DefaultPageSize)
	base := genRecords(rng, 2000, 0)
	l := newLog(t, Config{Store: store, DisableAutoCompact: true}, base)
	opts := rtree.BuildOptions{Fanout: 16, FillFactor: 0.75, AreaSlack: 0.20, SortMemory: 1 << 20}
	if err := l.BuildIndex(opts); err != nil {
		t.Fatal(err)
	}
	pinned := l.Current()
	if pinned.Tree == nil || pinned.Epoch != 1 {
		t.Fatalf("indexed version: tree=%v epoch=%d", pinned.Tree, pinned.Epoch)
	}

	for batch := 0; batch < 3; batch++ {
		if _, err := l.Append(genRecords(rng, 300, 2000+300*batch)); err != nil {
			t.Fatal(err)
		}
	}
	cur := l.Current()
	pr := rtree.StoreReader{Store: store}
	if err := pinned.Tree.Validate(pr); err != nil {
		t.Fatalf("pinned tree: %v", err)
	}
	if err := cur.Tree.Validate(pr); err != nil {
		t.Fatalf("current tree: %v", err)
	}
	if got := pinned.Tree.NumRecords(); got != 2000 {
		t.Fatalf("pinned tree has %d records, want 2000", got)
	}
	if got := cur.Tree.NumRecords(); got != 2900 {
		t.Fatalf("current tree has %d records, want 2900", got)
	}
	// Tree contents equal a from-scratch build over the same log.
	rebuilt, err := rtree.Build(store, cur.File, universe, opts)
	if err != nil {
		t.Fatal(err)
	}
	count := func(tr *rtree.Tree, win geom.Rect) int {
		n := 0
		if err := tr.Query(pr, win, func(geom.Record) { n++ }); err != nil {
			t.Fatal(err)
		}
		return n
	}
	for probe := 0; probe < 30; probe++ {
		x := float32(rng.Float64() * 900)
		y := float32(rng.Float64() * 900)
		win := geom.NewRect(x, y, x+100, y+100)
		if a, b := count(cur.Tree, win), count(rebuilt, win); a != b {
			t.Fatalf("window %v: incremental tree finds %d, rebuild %d", win, a, b)
		}
	}
}

// TestAutoCompactionTriggersAtThreshold checks the trigger math, the
// delta reset, and that compaction changes nothing a query can see.
func TestAutoCompactionTriggersAtThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	store := iosim.NewStore(iosim.DefaultPageSize)
	base := genRecords(rng, 400, 0)
	l := newLog(t, Config{Store: store, CompactMin: 100, CompactFrac: 0.25}, base)
	opts := rtree.BuildOptions{Fanout: 16, FillFactor: 0.75, AreaSlack: 0.20, SortMemory: 1 << 20}
	if err := l.BuildIndex(opts); err != nil {
		t.Fatal(err)
	}

	// 99 records: below CompactMin, no compaction.
	res, err := l.Append(genRecords(rng, 99, 400))
	if err != nil {
		t.Fatal(err)
	}
	if res.Compacted || l.Compactions() != 0 {
		t.Fatalf("compacted below threshold: %+v", res)
	}
	// One more crosses it (delta 100 >= max(100, 0.25*400)).
	res, err = l.Append(genRecords(rng, 1, 499))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compacted || l.Compactions() != 1 {
		t.Fatalf("no compaction at threshold: %+v, compactions %d", res, l.Compactions())
	}
	cur := l.Current()
	if cur.Delta() != 0 || cur.BaseN != 500 || cur.N != 500 {
		t.Fatalf("post-compaction accounting: base %d delta %d n %d", cur.BaseN, cur.Delta(), cur.N)
	}
	if got := cur.Tree.NumRecords(); got != 500 {
		t.Fatalf("compacted tree has %d records", got)
	}
	if err := cur.Tree.Validate(rtree.StoreReader{Store: store}); err != nil {
		t.Fatal(err)
	}
	if got := readVersion(t, cur); len(got) != 500 {
		t.Fatalf("compacted version reads %d records", len(got))
	}
}

// TestManualCompactUnindexed: an unindexed relation's compaction is
// pure accounting.
func TestManualCompactUnindexed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := newLog(t, Config{DisableAutoCompact: true}, genRecords(rng, 50, 0))
	if _, err := l.Append(genRecords(rng, 30, 50)); err != nil {
		t.Fatal(err)
	}
	did, err := l.Compact()
	if err != nil || !did {
		t.Fatalf("compact: did=%v err=%v", did, err)
	}
	cur := l.Current()
	if cur.Delta() != 0 || cur.N != 80 || cur.Tree != nil {
		t.Fatalf("post-compaction: %+v", cur)
	}
	// Nothing to fold: reports false without bumping the counter.
	did, err = l.Compact()
	if err != nil || did {
		t.Fatalf("empty compact: did=%v err=%v", did, err)
	}
	if l.Compactions() != 1 {
		t.Fatalf("compactions %d, want 1", l.Compactions())
	}
}

// TestSampleMergedOnAppendAndDroppedOnCompaction pins the sample
// maintenance contract of the stripe planner.
func TestSampleMergedOnAppendAndDroppedOnCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := genRecords(rng, 1000, 0)
	l := newLog(t, Config{DisableAutoCompact: true}, base)

	// Warm the sample on the current version.
	v0 := l.Current()
	s0, err := v0.Sample(func() ([]geom.Coord, error) {
		return parallel.SortedCenterSample(base), nil
	})
	if err != nil || len(s0) == 0 {
		t.Fatalf("warm sample: %v len %d", err, len(s0))
	}

	// An append must carry the sample forward, merged, without the
	// compute callback firing.
	delta := genRecords(rng, 200, 1000)
	if _, err := l.Append(delta); err != nil {
		t.Fatal(err)
	}
	v1 := l.Current()
	s1, err := v1.Sample(func() ([]geom.Coord, error) {
		t.Fatal("append should have carried the warm sample forward")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) <= len(s0) {
		t.Fatalf("merged sample has %d centers, base had %d", len(s1), len(s0))
	}
	for i := 1; i < len(s1); i++ {
		if s1[i-1] > s1[i] {
			t.Fatalf("merged sample unsorted at %d", i)
		}
	}

	// A compaction must drop it: the next version recomputes.
	if _, err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	recomputed := false
	_, err = l.Current().Sample(func() ([]geom.Coord, error) {
		recomputed = true
		return nil, nil
	})
	if err != nil || !recomputed {
		t.Fatalf("compaction kept a stale sample (recomputed=%v err=%v)", recomputed, err)
	}
}

// TestEmptyAppendIsANoOp: no epoch bump, no error.
func TestEmptyAppendIsANoOp(t *testing.T) {
	l := newLog(t, Config{}, nil)
	res, err := l.Append(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 0 || res.Appended != 0 || l.Epoch() != 0 {
		t.Fatalf("empty append moved the log: %+v epoch %d", res, l.Epoch())
	}
}

// TestAppendRejectsInvalidRectAtomically: one bad record rejects the
// whole batch and nothing is published.
func TestAppendRejectsInvalidRectAtomically(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := newLog(t, Config{}, genRecords(rng, 10, 0))
	batch := genRecords(rng, 5, 10)
	batch[3].Rect = geom.Rect{XLo: 9, XHi: 1, YLo: 0, YHi: 1}
	if _, err := l.Append(batch); err == nil {
		t.Fatal("invalid rectangle accepted")
	}
	cur := l.Current()
	if cur.Epoch != 0 || cur.N != 10 {
		t.Fatalf("failed append published: epoch %d n %d", cur.Epoch, cur.N)
	}
	// The log still works.
	if _, err := l.Append(genRecords(rng, 5, 10)); err != nil {
		t.Fatal(err)
	}
	if l.Current().N != 15 {
		t.Fatalf("n %d after recovery append", l.Current().N)
	}
}

// TestConcurrentAppendersAndReaders is the package's race test:
// several goroutines append batches while others continuously pin
// versions and verify their invariants (record count matches the
// pinned N exactly, tree accounting matches). Run under -race.
func TestConcurrentAppendersAndReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	store := iosim.NewStore(iosim.DefaultPageSize)
	base := genRecords(rng, 1000, 0)
	l := newLog(t, Config{Store: store, CompactMin: 600, CompactFrac: 0.1}, base)
	opts := rtree.BuildOptions{Fanout: 32, FillFactor: 0.75, AreaSlack: 0.20, SortMemory: 1 << 20}
	if err := l.BuildIndex(opts); err != nil {
		t.Fatal(err)
	}

	const appenders = 4
	const batches = 10
	const batchSize = 50

	// Pre-generate batches so appenders do no shared rng work.
	work := make([][]geom.Record, appenders*batches)
	for i := range work {
		work[i] = genRecords(rng, batchSize, 1000+i*batchSize)
	}

	var wg sync.WaitGroup
	errs := make(chan error, appenders+4)
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				if _, err := l.Append(work[a*batches+b]); err != nil {
					errs <- fmt.Errorf("appender %d: %w", a, err)
					return
				}
			}
		}(a)
	}
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			pr := rtree.StoreReader{Store: store}
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := l.Current()
				recs, err := stream.ReadAll(v.File, stream.Records)
				if err != nil {
					errs <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				if int64(len(recs)) != v.N {
					errs <- fmt.Errorf("reader %d: version n=%d but file holds %d", r, v.N, len(recs))
					return
				}
				if v.Tree != nil && v.Tree.NumRecords() != v.N {
					errs <- fmt.Errorf("reader %d: tree has %d records, version %d", r, v.Tree.NumRecords(), v.N)
					return
				}
				n := 0
				if err := v.Tree.Query(pr, universe, func(geom.Record) { n++ }); err != nil {
					errs <- fmt.Errorf("reader %d query: %w", r, err)
					return
				}
				if int64(n) != v.N {
					errs <- fmt.Errorf("reader %d: query found %d records in a version of %d", r, n, v.N)
					return
				}
			}
		}(r)
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Appenders finish first; then stop the readers.
	for {
		select {
		case err := <-errs:
			t.Fatal(err)
		case <-done:
			goto finished
		default:
			if l.Current().N == int64(1000+appenders*batches*batchSize) {
				close(stop)
				<-done
				goto finished
			}
		}
	}
finished:
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	cur := l.Current()
	want := int64(1000 + appenders*batches*batchSize)
	if cur.N != want {
		t.Fatalf("final n %d, want %d", cur.N, want)
	}
	if err := cur.Tree.Validate(rtree.StoreReader{Store: store}); err != nil {
		t.Fatal(err)
	}
	if l.Compactions() == 0 {
		t.Fatal("expected at least one auto-compaction during the run")
	}
}
