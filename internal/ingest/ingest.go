// Package ingest makes relations mutable without making queries
// unstable: each relation's records live in one append-only log on
// the simulated disk, and every mutation publishes a new immutable
// epoch-stamped Version — a pinned prefix view of the log
// (iosim.File.Snapshot), the R-tree covering exactly those records,
// the bounding rectangle, and the maintained x-center sample. Readers
// load the current Version once, atomically, and keep a consistent
// view no matter how many appends land while they stream; writers
// serialize on the log's mutex and never modify anything a published
// Version references (appends write bytes past every pinned size;
// index growth is copy-on-write path insertion, rtree.WithInserted).
//
// The index follows the paper's lifecycle rather than fighting it: a
// relation's tree is born packed (Hilbert bulk load, Section 3.3) and
// degrades under Guttman insertion as the delta grows, which is
// precisely the indexed-but-aging input the Section 6.3 cost model
// arbitrates. A threshold-triggered compaction — delta at least
// CompactMin records and CompactFrac of the base — rebuilds the
// packed layout over the whole log and republishes, resetting the
// delta accounting; the superseded pages stay allocated for the
// benefit of still-pinned readers (the Catalog.Drop policy).
package ingest

import (
	"fmt"
	"sync"
	"sync/atomic"

	"unijoin/internal/geom"
	"unijoin/internal/iosim"
	"unijoin/internal/parallel"
	"unijoin/internal/rtree"
	"unijoin/internal/stream"
)

// DefaultCompactMin is the minimum delta size that triggers an
// automatic compaction: below it a rebuild costs more than the
// queries it would speed up.
const DefaultCompactMin = 4096

// DefaultCompactFrac is the delta-to-base ratio that triggers an
// automatic compaction once the minimum is met; 0.25 gives the
// LSM-style amortization where each record is rebuilt O(log n) times
// over the life of the log.
const DefaultCompactFrac = 0.25

// Config configures a Log. Store and Universe are required.
type Config struct {
	// Store is the simulated disk the log and its index live on.
	Store *iosim.Store
	// Universe resolves the bulk-load universe for a given relation
	// MBR (a Workspace's universeFor); compaction rebuilds use it.
	Universe func(mbr geom.Rect) geom.Rect
	// CompactMin is the minimum delta (records since the last packed
	// build) before an append triggers compaction. 0 means
	// DefaultCompactMin.
	CompactMin int
	// CompactFrac is the delta/base fraction that must also be
	// reached. 0 means DefaultCompactFrac.
	CompactFrac float64
	// DisableAutoCompact turns the threshold trigger off; Compact can
	// still be called explicitly. Tests use this to hold a delta open.
	DisableAutoCompact bool
}

// Version is one immutable published state of a relation: everything
// a query needs, pinned at an epoch. Versions are safe for concurrent
// use and stay valid forever — later appends and compactions only
// publish successors.
type Version struct {
	// Epoch increases by one per published mutation (append, index
	// build, compaction). A query pins one Version at start and
	// therefore observes exactly the appends with Epoch <= this one.
	Epoch int64
	// File is the record log pinned at this version's length: reads
	// never observe later appends.
	File *iosim.File
	// Tree indexes exactly this version's records; nil when the
	// relation is unindexed.
	Tree *rtree.Tree
	// N is the number of records this version sees.
	N int64
	// BaseN is how many of them are covered by the last packed bulk
	// load; N - BaseN is the delta absorbed by Guttman insertion.
	BaseN int64
	// MBR bounds this version's records (invalid when N is 0).
	MBR geom.Rect

	// sampleMu guards the lazily-computed sorted x-center sample.
	// Appends carry a warm sample forward by merge (MergeSamples), so
	// a relation that has been sampled once stays sampled across
	// appends without rescanning; compaction deliberately drops it so
	// the next reader resamples the full log.
	sampleMu sync.Mutex
	sample   []geom.Coord
	sampled  bool
}

// Delta returns the records appended since the last packed build.
func (v *Version) Delta() int64 { return v.N - v.BaseN }

// Sample returns the version's sorted x-center sample, calling
// compute to produce it on first use. compute typically scans
// v.File; it runs under the version's sample lock, so concurrent
// callers compute at most once.
func (v *Version) Sample(compute func() ([]geom.Coord, error)) ([]geom.Coord, error) {
	v.sampleMu.Lock()
	defer v.sampleMu.Unlock()
	if !v.sampled {
		s, err := compute()
		if err != nil {
			return nil, err
		}
		v.sample = s
		v.sampled = true
	}
	return v.sample, nil
}

// warmSample returns the sample and whether it has been computed,
// without computing it.
func (v *Version) warmSample() ([]geom.Coord, bool) {
	v.sampleMu.Lock()
	defer v.sampleMu.Unlock()
	return v.sample, v.sampled
}

// AppendResult reports one Append.
type AppendResult struct {
	// Appended is the number of records accepted (all or none).
	Appended int
	// Epoch is the epoch queries must pin to observe them — the
	// post-compaction epoch when the append triggered one.
	Epoch int64
	// Total is the relation's record count at that epoch.
	Total int64
	// Compacted reports whether the append triggered a compaction.
	Compacted bool
}

// Log is the mutable state of one relation: the live append-only
// record file plus the atomically-published current Version. All
// mutations (Append, BuildIndex, Compact) serialize on one mutex;
// Current is wait-free.
type Log struct {
	store       *iosim.Store
	universe    func(geom.Rect) geom.Rect
	compactMin  int64
	compactFrac float64
	autoCompact bool

	cur atomic.Pointer[Version]

	mu      sync.Mutex
	file    *iosim.File // the live log; only mutated under mu
	build   rtree.BuildOptions
	indexed bool
	failed  error // poisoned: a partial low-level append broke the log

	compactions atomic.Int64
}

// New creates a log holding recs as its initial base segment
// (epoch 0, unindexed; call BuildIndex for an index).
func New(cfg Config, recs []geom.Record) (*Log, error) {
	if cfg.Store == nil || cfg.Universe == nil {
		return nil, fmt.Errorf("ingest: Config needs Store and Universe")
	}
	f, err := stream.WriteAll(cfg.Store, stream.Records, recs)
	if err != nil {
		return nil, err
	}
	mbr := geom.EmptyRect()
	for _, r := range recs {
		mbr = mbr.Union(r.Rect)
	}
	l := &Log{
		store:       cfg.Store,
		universe:    cfg.Universe,
		compactMin:  int64(cfg.CompactMin),
		compactFrac: cfg.CompactFrac,
		autoCompact: !cfg.DisableAutoCompact,
		file:        f,
		build:       rtree.DefaultBuildOptions(),
	}
	if l.compactMin <= 0 {
		l.compactMin = DefaultCompactMin
	}
	if l.compactFrac <= 0 {
		l.compactFrac = DefaultCompactFrac
	}
	n := int64(len(recs))
	l.cur.Store(&Version{Epoch: 0, File: f.Snapshot(), N: n, BaseN: n, MBR: mbr})
	return l, nil
}

// Current returns the latest published version. Callers pin it once
// per query and use only that version's File and Tree.
func (l *Log) Current() *Version { return l.cur.Load() }

// Epoch returns the current epoch.
func (l *Log) Epoch() int64 { return l.cur.Load().Epoch }

// Compactions returns how many compactions the log has run.
func (l *Log) Compactions() int64 { return l.compactions.Load() }

// ReleaseInitial hands the log's record pages back to the store.
// Only valid when no version has been published to readers — the
// Catalog.Load error path, undoing a failed load.
func (l *Log) ReleaseInitial() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.file.Release()
	l.failed = fmt.Errorf("ingest: log released")
}

// BuildIndex bulk-loads a packed R-tree over the current records and
// publishes the indexed version. The options are retained for later
// compaction rebuilds, so an ablation's packing policy survives
// ingestion. Appends arriving after the build insert into the tree
// incrementally.
func (l *Log) BuildIndex(opts rtree.BuildOptions) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	old := l.cur.Load()
	tree, err := rtree.Build(l.store, old.File, l.universe(old.MBR), opts)
	if err != nil {
		return err
	}
	l.build = opts
	l.indexed = true
	v := &Version{Epoch: old.Epoch + 1, File: old.File, Tree: tree, N: old.N, BaseN: old.N, MBR: old.MBR}
	if s, ok := old.warmSample(); ok {
		v.sample, v.sampled = s, true
	}
	l.cur.Store(v)
	return nil
}

// Append adds recs to the relation and publishes the new version: the
// log grows, the index (when present) absorbs the records by
// copy-on-write insertion, the x-center sample absorbs their centers
// by merge, and queries pinned to earlier versions remain untouched.
// All records are accepted or none. When the delta crosses the
// compaction threshold the packed layout is rebuilt before returning
// (threshold-triggered compaction; see Config).
func (l *Log) Append(recs []geom.Record) (AppendResult, error) {
	for i, r := range recs {
		if !r.Rect.Valid() {
			return AppendResult{}, fmt.Errorf("ingest: record %d (id %d) has invalid rectangle %v", i, r.ID, r.Rect)
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return AppendResult{}, l.failed
	}
	old := l.cur.Load()
	if len(recs) == 0 {
		return AppendResult{Epoch: old.Epoch, Total: old.N}, nil
	}

	// Grow the index first: a copy-on-write insertion failure leaves
	// only orphan pages, while a failure after the file grew would
	// leave unpublished bytes in the log.
	tree := old.Tree
	if tree != nil {
		grown, err := tree.WithInserted(recs)
		if err != nil {
			return AppendResult{}, err
		}
		tree = grown
	}

	buf := make([]byte, len(recs)*geom.RecordSize)
	for i, r := range recs {
		geom.EncodeRecord(buf[i*geom.RecordSize:], r)
	}
	if err := l.file.Append(buf); err != nil {
		// A partial append leaves the log with bytes no version owns;
		// poison the log rather than publish a corrupt successor.
		l.failed = fmt.Errorf("ingest: append failed, log poisoned: %w", err)
		return AppendResult{}, l.failed
	}

	v := &Version{
		Epoch: old.Epoch + 1,
		File:  l.file.Snapshot(),
		Tree:  tree,
		N:     old.N + int64(len(recs)),
		BaseN: old.BaseN,
		MBR:   old.MBR,
	}
	for _, r := range recs {
		v.MBR = v.MBR.Union(r.Rect)
	}
	// Carry a warm sample forward by merge so stripe planning keeps
	// tracking the data without rescanning the log.
	if s, ok := old.warmSample(); ok {
		v.sample = parallel.MergeSamples(s, parallel.SortedCenterSample(recs))
		v.sampled = true
	}
	l.cur.Store(v)

	res := AppendResult{Appended: len(recs), Epoch: v.Epoch, Total: v.N}
	if l.autoCompact && l.needsCompaction(v) {
		if err := l.compactLocked(); err != nil {
			return res, err
		}
		res.Compacted = true
		res.Epoch = l.cur.Load().Epoch
	}
	return res, nil
}

// needsCompaction applies the threshold: a delta of at least
// CompactMin records that is also at least CompactFrac of the base.
func (l *Log) needsCompaction(v *Version) bool {
	d := v.Delta()
	return d >= l.compactMin && float64(d) >= l.compactFrac*float64(v.BaseN)
}

// Compact folds the delta into the base segment now, regardless of
// thresholds: an indexed relation gets a fresh packed bulk load over
// the whole log, an unindexed one just resets the delta accounting.
// It reports whether there was a delta to fold.
func (l *Log) Compact() (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return false, l.failed
	}
	if l.cur.Load().Delta() == 0 {
		return false, nil
	}
	return true, l.compactLocked()
}

// compactLocked rebuilds under l.mu and publishes the compacted
// version. The sample is dropped, not carried: merged samples drift
// from the exact stride sample as deltas stack, and the rebuild is
// the natural point to resample the full log.
func (l *Log) compactLocked() error {
	old := l.cur.Load()
	v := &Version{Epoch: old.Epoch + 1, File: old.File, N: old.N, BaseN: old.N, MBR: old.MBR}
	if l.indexed {
		tree, err := rtree.Build(l.store, old.File, l.universe(old.MBR), l.build)
		if err != nil {
			return err
		}
		v.Tree = tree
	}
	l.cur.Store(v)
	l.compactions.Add(1)
	return nil
}
