// Package tiger is the catalog of the six TIGER/Line 97 data sets used
// in the paper's evaluation (Table 2), rebuilt synthetically at a
// configurable scale. Each Spec carries the paper's reference numbers
// (object counts, data and R-tree sizes, join output) so the benchmark
// harness can print paper-vs-measured columns, and a geographic region
// within a shared "US" universe so the nesting of the original extracts
// (NJ inside the east coast, DISK1 inside DISK1-3 inside DISK1-6, ...)
// is preserved.
//
// Scaling: object counts shrink by the scale factor; so must the
// memory budgets (internal memory, ST's buffer pool), so every
// "fits in memory / exceeds the buffer pool" relationship from the
// paper carries over. Config.MemoryBytes and Config.BufferPoolBytes
// apply exactly that scaling.
package tiger

import (
	"fmt"
	"math"

	"unijoin/internal/datagen"
	"unijoin/internal/geom"
)

// USUniverse is the synthetic continental universe all regions live in
// (arbitrary units, roughly proportioned like the conterminous US).
var USUniverse = geom.NewRect(0, 0, 10000, 5000)

// Spec describes one data set: its region and the paper's published
// numbers for it.
type Spec struct {
	Name   string
	Region geom.Rect

	// Reference values from Table 2 of the paper (objects and bytes).
	PaperRoadObjects  int64
	PaperHydroObjects int64
	PaperOutputPairs  int64
	PaperRoadMB       float64
	PaperHydroMB      float64
	PaperRoadRTreeMB  float64
	PaperHydroRTreeMB float64

	// ExtentCal is a per-region feature-extent multiplier, calibrated
	// (at reference scale 0.002) so that the synthetic join output
	// cardinality lands near the scaled Table 2 value. See Generate.
	ExtentCal float64
}

// The six data sets of Table 2. Regions nest the way the original
// extracts do: NJ and NY sit on the east coast inside DISK1, DISK1
// is the eastern seaboard inside the eastern half (DISK1-3), DISK4-6
// is the western half, and DISK1-6 is the whole universe.
var (
	NJ = Spec{
		Name:              "NJ",
		Region:            geom.NewRect(8600, 2700, 9000, 3100),
		PaperRoadObjects:  414_442,
		PaperHydroObjects: 50_853,
		PaperOutputPairs:  130_756,
		PaperRoadMB:       7.9,
		PaperHydroMB:      1.0,
		PaperRoadRTreeMB:  8.3,
		PaperHydroRTreeMB: 1.1,
		ExtentCal:         2.29,
	}
	NY = Spec{
		Name:              "NY",
		Region:            geom.NewRect(8300, 3000, 9200, 3700),
		PaperRoadObjects:  870_412,
		PaperHydroObjects: 156_567,
		PaperOutputPairs:  421_110,
		PaperRoadMB:       16.6,
		PaperHydroMB:      3.0,
		PaperRoadRTreeMB:  17.7,
		PaperHydroRTreeMB: 3.3,
		ExtentCal:         1.80,
	}
	Disk1 = Spec{
		Name:              "DISK1",
		Region:            geom.NewRect(7500, 1500, 10000, 4500),
		PaperRoadObjects:  6_030_844,
		PaperHydroObjects: 1_161_906,
		PaperOutputPairs:  3_197_520,
		PaperRoadMB:       115.0,
		PaperHydroMB:      22.1,
		PaperRoadRTreeMB:  122.8,
		PaperHydroRTreeMB: 25.0,
		ExtentCal:         0.39,
	}
	Disk46 = Spec{
		Name:              "DISK4-6",
		Region:            geom.NewRect(0, 0, 5000, 5000),
		PaperRoadObjects:  11_888_474,
		PaperHydroObjects: 3_446_094,
		PaperOutputPairs:  8_554_133,
		PaperRoadMB:       226.7,
		PaperHydroMB:      65.7,
		PaperRoadRTreeMB:  245.8,
		PaperHydroRTreeMB: 74.6,
		ExtentCal:         0.33,
	}
	Disk13 = Spec{
		Name:              "DISK1-3",
		Region:            geom.NewRect(5000, 0, 10000, 5000),
		PaperRoadObjects:  17_199_848,
		PaperHydroObjects: 3_967_649,
		PaperOutputPairs:  9_378_642,
		PaperRoadMB:       328.0,
		PaperHydroMB:      75.6,
		PaperRoadRTreeMB:  352.5,
		PaperHydroRTreeMB: 85.5,
		ExtentCal:         0.20,
	}
	Disk16 = Spec{
		Name:              "DISK1-6",
		Region:            USUniverse,
		PaperRoadObjects:  29_088_173,
		PaperHydroObjects: 7_413_353,
		PaperOutputPairs:  17_938_533,
		PaperRoadMB:       554.8,
		PaperHydroMB:      141.4,
		PaperRoadRTreeMB:  598.4,
		PaperHydroRTreeMB: 160.2,
		ExtentCal:         0.21,
	}

	// Specs lists all data sets in Table 2 order.
	Specs = []Spec{NJ, NY, Disk1, Disk46, Disk13, Disk16}
)

// SpecByName returns the spec with the given name.
func SpecByName(name string) (Spec, error) {
	for _, s := range Specs {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("tiger: unknown data set %q", name)
}

// Config controls generation scale and the correspondingly scaled
// resource budgets.
type Config struct {
	// Scale shrinks the paper's object counts; 0.01 reproduces the
	// experiments at 1/100 size. Must be in (0, 1].
	Scale float64
	// Seed makes generation deterministic; data sets at the same seed
	// and scale are identical across runs.
	Seed int64
	// Clusters is the number of population clusters per data set
	// region (default 40).
	Clusters int
}

// DefaultConfig is the scale used by the benchmark harness.
func DefaultConfig() Config { return Config{Scale: 0.01, Seed: 1997, Clusters: 40} }

// referenceScale is the scale at which ExtentCal was calibrated.
const referenceScale = 0.002

// paperMemoryBytes is the internal memory the paper's machines had
// free for the algorithms (at least 24 MB of the 64 MB installed).
const paperMemoryBytes = 24 << 20

// paperBufferPoolBytes is ST's buffer pool (22 MB of the 24).
const paperBufferPoolBytes = 22 << 20

// MemoryBytes returns the scaled internal-memory budget. A floor of
// 128 KB keeps the sweep structures comfortably inside memory at tiny
// test scales, preserving the paper's "structures always fit" regime.
func (c Config) MemoryBytes() int {
	b := int(float64(paperMemoryBytes) * c.Scale)
	if b < 128<<10 {
		b = 128 << 10
	}
	return b
}

// BufferPoolBytes returns the scaled ST buffer pool size (22/24 of the
// memory floor at tiny scales).
func (c Config) BufferPoolBytes() int {
	b := int(float64(paperBufferPoolBytes) * c.Scale)
	if b < 117<<10 {
		b = 117 << 10
	}
	return b
}

// Counts returns the scaled object counts for a spec.
func (c Config) Counts(s Spec) (roads, hydro int) {
	roads = int(float64(s.PaperRoadObjects) * c.Scale)
	hydro = int(float64(s.PaperHydroObjects) * c.Scale)
	if roads < 1 {
		roads = 1
	}
	if hydro < 1 {
		hydro = 1
	}
	return roads, hydro
}

// Generate produces the road and hydro relations for a spec. The
// terrain seed depends only on the config seed and the spec name, so
// repeated calls are identical.
//
// Feature extents are calibrated per region and grow as 1/sqrt(scale):
// object counts shrink linearly with scale while pair counts shrink
// with density squared, so extents must widen for the output
// cardinality to stay proportional to the scaled Table 2 value.
func (c Config) Generate(s Spec) (roads, hydro []geom.Record) {
	if c.Scale <= 0 || c.Scale > 1 {
		panic(fmt.Sprintf("tiger: scale %g out of (0,1]", c.Scale))
	}
	clusters := c.Clusters
	if clusters == 0 {
		clusters = 40
	}
	terrain := datagen.NewTerrain(c.Seed^hashName(s.Name), s.Region, clusters)
	nr, nh := c.Counts(s)
	m := s.ExtentCal * math.Sqrt(referenceScale/c.Scale)
	roads = datagen.Roads(terrain, c.Seed+1, nr, datagen.RoadParams{MeanLen: 0.004 * m})
	hydro = datagen.Hydro(terrain, c.Seed+2, nh, datagen.HydroParams{MeanSize: 0.008 * m})
	return roads, hydro
}

// hashName folds a data set name into a seed offset.
func hashName(name string) int64 {
	var h int64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= int64(name[i])
		h *= 1099511628211
	}
	return h
}
