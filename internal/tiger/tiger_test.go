package tiger

import (
	"context"
	"sort"
	"testing"

	"unijoin/internal/geom"
	"unijoin/internal/sweep"
)

func TestSpecTable2Transcription(t *testing.T) {
	if len(Specs) != 6 {
		t.Fatalf("expected 6 data sets, got %d", len(Specs))
	}
	// Spot checks against Table 2.
	if NJ.PaperRoadObjects != 414_442 || NJ.PaperOutputPairs != 130_756 {
		t.Fatal("NJ numbers wrong")
	}
	if Disk16.PaperRoadObjects != 29_088_173 || Disk16.PaperHydroObjects != 7_413_353 {
		t.Fatal("DISK1-6 numbers wrong")
	}
	// Monotone growth across the catalog.
	for i := 1; i < len(Specs); i++ {
		if Specs[i].PaperRoadObjects <= Specs[i-1].PaperRoadObjects {
			t.Fatalf("catalog not ordered by size at %s", Specs[i].Name)
		}
	}
}

func TestRegionsNest(t *testing.T) {
	if !USUniverse.Contains(NJ.Region) || !USUniverse.Contains(Disk46.Region) {
		t.Fatal("regions must lie inside the universe")
	}
	if !Disk1.Region.Contains(NJ.Region) {
		t.Fatal("NJ must lie inside DISK1")
	}
	if !Disk13.Region.Contains(Disk1.Region) {
		t.Fatal("DISK1 must lie inside DISK1-3")
	}
	if Disk13.Region.Intersects(Disk46.Region) {
		// They share only the dividing line.
		in, _ := Disk13.Region.Intersection(Disk46.Region)
		if in.Area() != 0 {
			t.Fatal("eastern and western halves must not overlap")
		}
	}
	if Disk16.Region != USUniverse {
		t.Fatal("DISK1-6 must cover the universe")
	}
}

func TestSpecByName(t *testing.T) {
	s, err := SpecByName("DISK4-6")
	if err != nil || s.Name != "DISK4-6" {
		t.Fatalf("lookup failed: %v", err)
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Fatal("unknown name must error")
	}
}

func TestCountsScale(t *testing.T) {
	cfg := Config{Scale: 0.001, Seed: 1}
	r, h := cfg.Counts(NY)
	if r != 870 || h != 156 {
		t.Fatalf("NY at 1/1000: %d roads, %d hydro", r, h)
	}
	tiny := Config{Scale: 0.0000001, Seed: 1}
	r, h = tiny.Counts(NJ)
	if r < 1 || h < 1 {
		t.Fatal("counts must be at least 1")
	}
}

func TestBudgetsScale(t *testing.T) {
	cfg := Config{Scale: 0.01, Seed: 1}
	if cfg.MemoryBytes() != int(float64(24<<20)*cfg.Scale) {
		t.Fatalf("memory = %d", cfg.MemoryBytes())
	}
	if cfg.BufferPoolBytes() != int(float64(22<<20)*cfg.Scale) {
		t.Fatalf("pool = %d", cfg.BufferPoolBytes())
	}
	small := Config{Scale: 0.0001, Seed: 1}
	if small.MemoryBytes() < 128<<10 || small.BufferPoolBytes() < 117<<10 {
		t.Fatal("budgets must respect floors")
	}
}

func TestGenerateDeterministicAndInRegion(t *testing.T) {
	cfg := Config{Scale: 0.001, Seed: 42, Clusters: 20}
	r1, h1 := cfg.Generate(NJ)
	r2, h2 := cfg.Generate(NJ)
	if len(r1) != len(r2) || len(h1) != len(h2) {
		t.Fatal("nondeterministic counts")
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("nondeterministic roads")
		}
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatal("nondeterministic hydro")
		}
	}
	// Features start inside the region (extents may poke slightly out).
	for _, r := range r1 {
		if !NJ.Region.ContainsPoint(geom.Point{X: r.Rect.XLo, Y: r.Rect.YLo}) {
			t.Fatalf("road anchored outside region: %v", r.Rect)
		}
	}
}

func TestGenerateRejectsBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for scale 0")
		}
	}()
	(Config{Scale: 0, Seed: 1}).Generate(NJ)
}

func TestOutputCardinalityNearTable2(t *testing.T) {
	// The generator is calibrated so each data set's join output lands
	// within a factor of 2 of the scaled Table 2 value; that keeps
	// every experiment's CPU/IO balance paper-shaped.
	if testing.Short() {
		t.Skip("calibration check is slow")
	}
	cfg := Config{Scale: 0.002, Seed: 1997, Clusters: 40}
	for _, s := range []Spec{NJ, NY, Disk1} {
		roads, hydro := cfg.Generate(s)
		sort.Slice(roads, func(i, j int) bool { return geom.ByLowerY(roads[i], roads[j]) < 0 })
		sort.Slice(hydro, func(i, j int) bool { return geom.ByLowerY(hydro[i], hydro[j]) < 0 })
		var pairs float64
		_, err := sweep.JoinSlices(context.Background(), roads, hydro, func() sweep.Structure {
			return sweep.NewStripedFor(s.Region, sweep.DefaultStrips)
		}, func(_, _ geom.Record) { pairs++ })
		if err != nil {
			t.Fatal(err)
		}
		want := float64(s.PaperOutputPairs) * cfg.Scale
		if pairs < want/2 || pairs > want*2 {
			t.Errorf("%s: %v pairs, want within 2x of %v", s.Name, pairs, want)
		}
	}
}

func TestSquareRootRuleHolds(t *testing.T) {
	// Table 3's premise: the sweep structure stays tiny relative to the
	// data set (square-root rule of Gueting and Schilling).
	cfg := Config{Scale: 0.002, Seed: 1997, Clusters: 40}
	roads, hydro := cfg.Generate(NY)
	sort.Slice(roads, func(i, j int) bool { return geom.ByLowerY(roads[i], roads[j]) < 0 })
	sort.Slice(hydro, func(i, j int) bool { return geom.ByLowerY(hydro[i], hydro[j]) < 0 })
	stats, err := sweep.JoinSlices(context.Background(), roads, hydro, func() sweep.Structure {
		return sweep.NewStripedFor(NY.Region, sweep.DefaultStrips)
	}, func(_, _ geom.Record) {})
	if err != nil {
		t.Fatal(err)
	}
	n := len(roads) + len(hydro)
	if stats.MaxLen > n/2 {
		t.Fatalf("sweep structure reached %d of %d records", stats.MaxLen, n)
	}
}
