package server

import (
	"context"
	"errors"
	"net/http"
	"testing"

	"unijoin"
	"unijoin/client"
	"unijoin/internal/wire"
)

// TestBinaryJoinMatchesNDJSON pins the server-side transport parity:
// a negotiated binary join must stream exactly the pair set and
// summary of the default NDJSON transport, and the frame metric
// families must account for the stream.
func TestBinaryJoinMatchesNDJSON(t *testing.T) {
	cat := testCatalog(t, 800)
	srv, cl, url := testServer(t, Config{Catalog: cat})
	bcl := client.New(url, nil)
	bcl.PreferBinary = true
	ctx := context.Background()
	req := client.JoinRequest{Left: "roads", Right: "hydro", Algorithm: "PQ"}

	want := map[unijoin.Pair]bool{}
	nsum, err := cl.Join(ctx, req, func(l, r uint32) { want[unijoin.Pair{Left: l, Right: r}] = true })
	if err != nil {
		t.Fatal(err)
	}

	got := map[unijoin.Pair]bool{}
	bsum, err := bcl.Join(ctx, req, func(l, r uint32) { got[unijoin.Pair{Left: l, Right: r}] = true })
	if err != nil {
		t.Fatal(err)
	}
	if bsum.Pairs != nsum.Pairs || int64(len(got)) != nsum.Pairs {
		t.Fatalf("binary summary %d pairs, streamed %d; NDJSON %d", bsum.Pairs, len(got), nsum.Pairs)
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("pair %v missing from the binary stream", p)
		}
	}
	for p := range got {
		if !want[p] {
			t.Fatalf("spurious pair %v in the binary stream", p)
		}
	}

	// The frame families saw the stream: at least one pairs frame, one
	// summary, one end; byte counts at least a header per frame.
	frames := srv.metrics.frames
	for _, typ := range []wire.Type{wire.TypePairs, wire.TypeSummary, wire.TypeEnd} {
		if n := frames.With(typ.String()).Value(); n < 1 {
			t.Fatalf("sj_frames_total{type=%q} = %d, want ≥ 1", typ, n)
		}
		if b := srv.metrics.frameBytes.With(typ.String()).Value(); b < wire.HeaderSize {
			t.Fatalf("sj_frame_bytes_total{type=%q} = %d, want ≥ %d", typ, b, wire.HeaderSize)
		}
	}

	// Count-only over the binary transport: no DATA frames, same count.
	pairsBefore := frames.With(wire.TypePairs.String()).Value()
	csum, err := bcl.JoinCount(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if csum.Pairs != nsum.Pairs {
		t.Fatalf("binary count-only %d, want %d", csum.Pairs, nsum.Pairs)
	}
	if after := frames.With(wire.TypePairs.String()).Value(); after != pairsBefore {
		t.Fatalf("count-only join emitted %d pairs frames", after-pairsBefore)
	}
}

// TestBinaryWindowMatchesNDJSON is the window-query counterpart.
func TestBinaryWindowMatchesNDJSON(t *testing.T) {
	cat := testCatalog(t, 800)
	_, cl, url := testServer(t, Config{Catalog: cat})
	bcl := client.New(url, nil)
	bcl.PreferBinary = true
	ctx := context.Background()
	win := client.Rect{XLo: 100, YLo: 100, XHi: 600, YHi: 600}
	req := client.WindowRequest{Relation: "roads", Window: &win}

	want := map[uint32]client.RecordOut{}
	nsum, err := cl.Window(ctx, req, func(r client.RecordOut) { want[r.ID] = r })
	if err != nil {
		t.Fatal(err)
	}
	got := map[uint32]client.RecordOut{}
	bsum, err := bcl.Window(ctx, req, func(r client.RecordOut) { got[r.ID] = r })
	if err != nil {
		t.Fatal(err)
	}
	if bsum.Records != nsum.Records || int64(len(got)) != nsum.Records {
		t.Fatalf("binary window %d records (summary %d), NDJSON %d", len(got), bsum.Records, nsum.Records)
	}
	for id, w := range want {
		g, ok := got[id]
		if !ok {
			t.Fatalf("record %d missing from the binary stream", id)
		}
		if g.Rect != w.Rect {
			t.Fatalf("record %d rect %+v over binary, %+v over NDJSON", id, g.Rect, w.Rect)
		}
	}
}

// TestBinaryErrorMapping checks both failure modes of a negotiated
// stream: pre-stream failures stay plain HTTP errors (the status line
// is still available), and the typed-error contract holds through the
// binary client exactly as through NDJSON.
func TestBinaryErrorMapping(t *testing.T) {
	cat := testCatalog(t, 200)
	_, _, url := testServer(t, Config{Catalog: cat})
	bcl := client.New(url, nil)
	bcl.PreferBinary = true
	ctx := context.Background()

	if _, err := bcl.JoinCount(ctx, client.JoinRequest{Left: "roads", Right: "nope"}); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("unknown relation over binary: got %v, want ErrNotFound", err)
	}
	// hydro is unindexed, so ST must refuse — before any frame is
	// written, meaning a real HTTP 422 even though the request asked
	// for frames.
	_, err := bcl.JoinCount(ctx, client.JoinRequest{Left: "hydro", Right: "roads", Algorithm: "ST"})
	if !errors.Is(err, client.ErrNeedsIndex) {
		t.Fatalf("ST without index over binary: got %v, want ErrNeedsIndex", err)
	}
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnprocessableEntity {
		t.Fatalf("pre-stream binary failure did not arrive as a plain HTTP error: %v", err)
	}
}
