package server

import (
	"net/http"
	"time"

	"unijoin/internal/httpapi"
	"unijoin/internal/obs"
)

// joinSpan assembles a join request's span tree from the phases the
// engine and the handler measured. Partition leads; the sweep and the
// stream both start when it ends (streaming happens from the sweep's
// emit callbacks, so the two overlap rather than chain).
func joinSpan(start time.Time, elapsed, partition, sweep, stream time.Duration) *obs.Span {
	root := &obs.Span{
		ID: obs.NewSpanID(), Name: "server.join",
		Start: start, Duration: elapsed,
	}
	root.Child("partition", 0, partition)
	root.Child("sweep", partition, sweep)
	root.Child("stream", partition, stream)
	return root
}

// windowSpan assembles a window request's span tree: the scan is
// everything that wasn't spent encoding/flushing, and the stream child
// interleaves it (emit callbacks run inside the scan), so both start
// at the root.
func windowSpan(start time.Time, elapsed, stream time.Duration) *obs.Span {
	root := &obs.Span{
		ID: obs.NewSpanID(), Name: "server.window",
		Start: start, Duration: elapsed,
	}
	scan := elapsed - stream
	if scan < 0 {
		scan = 0
	}
	root.Child("scan", 0, scan)
	root.Child("stream", 0, stream)
	return root
}

// recordTrace stores a completed request's span tree in the trace
// ring, keyed by the request ID the middleware minted (so GET
// /v1/traces/{request-id} finds it), and emits the slow-query line
// when the root crosses the configured threshold.
func (s *Server) recordTrace(r *http.Request, kind string, root *obs.Span) {
	rid := requestIDFrom(r.Context())
	if rid == "" { // not under the instrument middleware (tests)
		rid = obs.NewSpanID()
	}
	s.traces.Add(&obs.Trace{
		ID:         rid,
		Kind:       kind,
		ParentSpan: httpapi.ParentSpan(r),
		Root:       root,
	})
	if s.slow > 0 && root.Duration >= s.slow {
		s.log.Warn("slow query",
			"kind", kind,
			"request_id", rid,
			"elapsed", root.Duration.Round(time.Microsecond).String(),
			"threshold", s.slow.String(),
			"breakdown", root.Breakdown(),
		)
	}
}
