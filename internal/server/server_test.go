package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"unijoin"
	"unijoin/client"
	"unijoin/internal/datagen"
	"unijoin/internal/shard"
)

// testCatalog loads the two synthetic relations the acceptance test
// joins: "roads" indexed, "hydro" not, on a fixed universe.
func testCatalog(t *testing.T, n int) *unijoin.Catalog {
	t.Helper()
	u := unijoin.NewRect(0, 0, 1000, 1000)
	cat := unijoin.NewCatalog()
	cat.Workspace().SetUniverse(u)
	if _, err := cat.Load("roads", datagen.Uniform(1, n, u, 40), true); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Load("hydro", datagen.Uniform(2, n*3/4, u, 40), false); err != nil {
		t.Fatal(err)
	}
	return cat
}

// quietLogger drops request logs so -v output stays readable.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func testServer(t *testing.T, cfg Config) (*Server, *client.Client, string) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, client.New(ts.URL, ts.Client()), ts.URL
}

// TestJoinOverHTTPMatchesInProcess is the end-to-end acceptance test:
// an indexed and a non-indexed join over HTTP must stream the same
// pairs the in-process Query API reports.
func TestJoinOverHTTPMatchesInProcess(t *testing.T) {
	cat := testCatalog(t, 800)
	_, cl, _ := testServer(t, Config{Catalog: cat})
	ctx := context.Background()

	roads, _ := cat.Get("roads")
	hydro, _ := cat.Get("hydro")

	for _, alg := range []unijoin.Algorithm{unijoin.AlgPQ, unijoin.AlgSSSJ, unijoin.AlgParallel} {
		t.Run(alg.String(), func(t *testing.T) {
			res, err := cat.Workspace().Query(roads, hydro).Algorithm(alg).Run(ctx)
			if err != nil {
				t.Fatal(err)
			}
			want := map[unijoin.Pair]bool{}
			for p := range res.Pairs() {
				want[p] = true
			}

			got := map[unijoin.Pair]bool{}
			summary, err := cl.Join(ctx, client.JoinRequest{
				Left: "roads", Right: "hydro", Algorithm: alg.String(),
			}, func(l, r uint32) { got[unijoin.Pair{Left: l, Right: r}] = true })
			if err != nil {
				t.Fatal(err)
			}
			if summary.Pairs != res.Count() {
				t.Fatalf("HTTP count %d, in-process %d", summary.Pairs, res.Count())
			}
			if len(got) != len(want) {
				t.Fatalf("streamed %d distinct pairs, want %d", len(got), len(want))
			}
			for p := range want {
				if !got[p] {
					t.Fatalf("pair %v missing from HTTP stream", p)
				}
			}
			if summary.LeftRecords != roads.Len() || summary.RightRecords != hydro.Len() {
				t.Fatalf("summary records %d/%d", summary.LeftRecords, summary.RightRecords)
			}

			// Count-only agrees and is the same over JoinCount.
			cSum, err := cl.JoinCount(ctx, client.JoinRequest{
				Left: "roads", Right: "hydro", Algorithm: alg.String(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if cSum.Pairs != res.Count() {
				t.Fatalf("count-only %d, want %d", cSum.Pairs, res.Count())
			}
		})
	}
}

func TestJoinWindowed(t *testing.T) {
	cat := testCatalog(t, 600)
	_, cl, _ := testServer(t, Config{Catalog: cat})
	ctx := context.Background()
	roads, _ := cat.Get("roads")
	hydro, _ := cat.Get("hydro")

	win := unijoin.NewRect(100, 100, 400, 500)
	res, err := cat.Workspace().Query(roads, hydro).Window(win).CountOnly().Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := cl.JoinCount(ctx, client.JoinRequest{
		Left: "roads", Right: "hydro",
		Window: &client.Rect{XLo: 100, YLo: 100, XHi: 400, YHi: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Pairs != res.Count() {
		t.Fatalf("windowed HTTP count %d, in-process %d", sum.Pairs, res.Count())
	}
	full, err := cl.JoinCount(ctx, client.JoinRequest{Left: "roads", Right: "hydro"})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Pairs >= full.Pairs {
		t.Fatalf("window did not restrict the join: %d >= %d", sum.Pairs, full.Pairs)
	}
}

func TestWindowEndpoint(t *testing.T) {
	cat := testCatalog(t, 700)
	_, cl, _ := testServer(t, Config{Catalog: cat})
	ctx := context.Background()

	win := client.Rect{XLo: 200, YLo: 200, XHi: 600, YHi: 600}
	for _, rel := range []string{"roads", "hydro"} { // indexed and scan paths
		relation, _ := cat.Get(rel)
		want, err := relation.WindowQuery(ctx, unijoin.NewRect(200, 200, 600, 600), nil)
		if err != nil {
			t.Fatal(err)
		}
		var streamed int64
		sum, err := cl.Window(ctx, client.WindowRequest{Relation: rel, Window: &win},
			func(client.RecordOut) { streamed++ })
		if err != nil {
			t.Fatal(err)
		}
		if sum.Records != want || streamed != want {
			t.Fatalf("%s: HTTP window %d records (streamed %d), want %d", rel, sum.Records, streamed, want)
		}
		if sum.Indexed != relation.Indexed() {
			t.Fatalf("%s: summary indexed=%v", rel, sum.Indexed)
		}
	}
}

// TestServerTimeoutReturnsCancellationStatus is the acceptance
// criterion: a 1ms server-side timeout must produce the cancellation
// status code, not a hang. The join is big enough that 1ms can never
// finish it.
func TestServerTimeoutReturnsCancellationStatus(t *testing.T) {
	cat := testCatalog(t, 60_000)
	_, cl, _ := testServer(t, Config{Catalog: cat, Timeout: time.Millisecond})

	done := make(chan error, 1)
	go func() {
		_, err := cl.JoinCount(context.Background(), client.JoinRequest{
			Left: "roads", Right: "hydro", Algorithm: "SSSJ",
		})
		done <- err
	}()
	select {
	case err := <-done:
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("want *client.APIError, got %v", err)
		}
		if apiErr.Status != http.StatusGatewayTimeout || apiErr.Code != client.CodeCanceled {
			t.Fatalf("status=%d code=%q, want 504 %q", apiErr.Status, apiErr.Code, client.CodeCanceled)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("timed-out request hung")
	}

	// The per-request timeout_ms spelling takes the same path.
	_, cl2, _ := testServer(t, Config{Catalog: cat})
	_, err := cl2.JoinCount(context.Background(), client.JoinRequest{
		Left: "roads", Right: "hydro", Algorithm: "SSSJ", TimeoutMillis: 1,
	})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Code != client.CodeCanceled {
		t.Fatalf("timeout_ms path: %v", err)
	}
}

func TestErrorMapping(t *testing.T) {
	cat := testCatalog(t, 100)
	_, cl, base := testServer(t, Config{Catalog: cat})
	ctx := context.Background()

	check := func(t *testing.T, err error, status int, code string) {
		t.Helper()
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("want *client.APIError, got %v", err)
		}
		if apiErr.Status != status || apiErr.Code != code {
			t.Fatalf("got %d %q, want %d %q", apiErr.Status, apiErr.Code, status, code)
		}
	}

	t.Run("unknown relation is 404", func(t *testing.T) {
		_, err := cl.JoinCount(ctx, client.JoinRequest{Left: "nope", Right: "hydro"})
		check(t, err, http.StatusNotFound, client.CodeNotFound)
	})
	t.Run("ST without indexes is 422", func(t *testing.T) {
		_, err := cl.JoinCount(ctx, client.JoinRequest{Left: "roads", Right: "hydro", Algorithm: "ST"})
		check(t, err, http.StatusUnprocessableEntity, client.CodeNeedsIndex)
	})
	t.Run("unknown algorithm is 400", func(t *testing.T) {
		_, err := cl.JoinCount(ctx, client.JoinRequest{Left: "roads", Right: "hydro", Algorithm: "quantum"})
		check(t, err, http.StatusBadRequest, client.CodeBadRequest)
	})
	t.Run("unknown window relation is 404", func(t *testing.T) {
		_, err := cl.Window(ctx, client.WindowRequest{Relation: "nope"}, nil)
		check(t, err, http.StatusNotFound, client.CodeNotFound)
	})
	t.Run("window without rectangle is 400", func(t *testing.T) {
		_, err := cl.Window(ctx, client.WindowRequest{Relation: "roads"}, nil)
		check(t, err, http.StatusBadRequest, client.CodeBadRequest)
	})
	t.Run("unknown route is 404", func(t *testing.T) {
		if err := cl.Health(ctx); err != nil { // sanity: the real route works
			t.Fatal(err)
		}
		resp, err := http.Get(base + "/v2/nope")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown route status %d", resp.StatusCode)
		}
	})
}

func TestRelationsAndStats(t *testing.T) {
	cat := testCatalog(t, 300)
	srv, cl, _ := testServer(t, Config{Catalog: cat})
	ctx := context.Background()

	rels, err := cl.Relations(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 2 || rels[0].Name != "hydro" || rels[1].Name != "roads" {
		t.Fatalf("relations = %+v", rels)
	}
	if !rels[1].Indexed || rels[1].IndexBytes == 0 {
		t.Fatal("roads must be indexed with a non-empty R-tree")
	}
	if rels[0].Indexed || rels[0].IndexBytes != 0 {
		t.Fatal("hydro must not be indexed")
	}
	if rels[1].Records != 300 || rels[1].DataBytes != 300*20 {
		t.Fatalf("roads info = %+v", rels[1])
	}

	if _, err := cl.JoinCount(ctx, client.JoinRequest{Left: "roads", Right: "hydro"}); err != nil {
		t.Fatal(err)
	}
	var streamed int64
	if _, err := cl.Join(ctx, client.JoinRequest{Left: "roads", Right: "hydro"},
		func(uint32, uint32) { streamed++ }); err != nil {
		t.Fatal(err)
	}

	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Relations != 2 || stats.Joins != 2 || stats.Requests < 4 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.PairsStreamed != streamed || streamed == 0 {
		t.Fatalf("pairs_streamed = %d, streamed %d", stats.PairsStreamed, streamed)
	}
	if got := srv.Stats(); got.Joins != 2 {
		t.Fatalf("in-process Stats() = %+v", got)
	}
}

// TestConcurrentRequests hammers one server with mixed joins and
// window queries; under -race this exercises the catalog's and the
// shared simulated disk's concurrency contract end to end.
func TestConcurrentRequests(t *testing.T) {
	cat := testCatalog(t, 500)
	_, cl, _ := testServer(t, Config{Catalog: cat})
	ctx := context.Background()

	want, err := cl.JoinCount(ctx, client.JoinRequest{Left: "roads", Right: "hydro"})
	if err != nil {
		t.Fatal(err)
	}

	algs := []string{"PQ", "SSSJ", "PBSM", "parallel"}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%4 == 3 {
				_, err := cl.Window(ctx, client.WindowRequest{
					Relation: "roads",
					Window:   &client.Rect{XLo: 0, YLo: 0, XHi: 500, YHi: 500},
				}, nil)
				errs <- err
				return
			}
			sum, err := cl.JoinCount(ctx, client.JoinRequest{
				Left: "roads", Right: "hydro", Algorithm: algs[i%4],
			})
			if err == nil && sum.Pairs != want.Pairs {
				err = fmt.Errorf("%s: got %d pairs, want %d", algs[i%4], sum.Pairs, want.Pairs)
			}
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestParallelismClamped guards the service against a request sizing
// the parallel engine's partition structures with an absurd worker
// count: the handler clamps it, so the join still answers correctly.
func TestParallelismClamped(t *testing.T) {
	cat := testCatalog(t, 300)
	_, cl, _ := testServer(t, Config{Catalog: cat})
	ctx := context.Background()

	want, err := cl.JoinCount(ctx, client.JoinRequest{Left: "roads", Right: "hydro"})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1_000_000_000, -5} {
		sum, err := cl.JoinCount(ctx, client.JoinRequest{
			Left: "roads", Right: "hydro", Algorithm: "parallel", Parallelism: p,
		})
		if err != nil {
			t.Fatalf("parallelism=%d: %v", p, err)
		}
		if sum.Pairs != want.Pairs {
			t.Fatalf("parallelism=%d: got %d pairs, want %d", p, sum.Pairs, want.Pairs)
		}
	}
}

func TestHealthz(t *testing.T) {
	cat := testCatalog(t, 50)
	_, cl, _ := testServer(t, Config{Catalog: cat})
	if err := cl.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestStripeModeFiltersAndEvictsCache covers the -stripe serving
// mode directly: counts come from the ownership-filtered emit path
// (so a stripe server's count is a strict subset of the full join),
// stats/relations expose the stripe, and the per-relation xlo cache
// drops tables for relations that were reloaded out of the catalog.
func TestStripeModeFiltersAndEvictsCache(t *testing.T) {
	cat := testCatalog(t, 800)
	iv, err := shard.ParseInterval(":500")
	if err != nil {
		t.Fatal(err)
	}
	s, cl, _ := testServer(t, Config{Catalog: cat, Stripe: &iv})
	ctx := context.Background()

	full, err := cl.JoinCount(ctx, client.JoinRequest{Left: "roads", Right: "hydro"})
	if err != nil {
		t.Fatal(err)
	}
	// The catalog holds the full relations here, so the stripe filter
	// must report only the pairs whose reference point is below 500 —
	// more than zero, fewer than all.
	if full.Pairs <= 0 {
		t.Fatal("no owned pairs")
	}
	res, err := cat.Workspace().Query(mustGet(t, cat, "roads"), mustGet(t, cat, "hydro")).CountOnly().Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if full.Pairs >= res.Count() {
		t.Fatalf("stripe count %d not below full count %d", full.Pairs, res.Count())
	}
	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Stripe == nil || stats.Stripe.Lo != nil || stats.Stripe.Hi == nil || *stats.Stripe.Hi != 500 {
		t.Fatalf("stats stripe = %+v, want [ , 500)", stats.Stripe)
	}
	infos, err := cl.Relations(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) == 0 || infos[0].Stripe == nil {
		t.Fatal("relations do not expose the stripe")
	}

	// Reload a relation: the next table build must evict the old
	// relation's cached table.
	old := mustGet(t, cat, "hydro")
	if !cat.Drop("hydro") {
		t.Fatal("drop failed")
	}
	u := unijoin.NewRect(0, 0, 1000, 1000)
	if _, err := cat.Load("hydro", datagen.Uniform(9, 400, u, 40), false); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.JoinCount(ctx, client.JoinRequest{Left: "roads", Right: "hydro"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.xlo.Load(old); ok {
		t.Fatal("dropped relation's xlo table still cached")
	}
	entries := 0
	s.xlo.Range(func(_, _ any) bool { entries++; return true })
	if entries != 2 {
		t.Fatalf("xlo cache holds %d tables, want 2 (roads + reloaded hydro)", entries)
	}
}

func mustGet(t *testing.T, cat *unijoin.Catalog, name string) *unijoin.Relation {
	t.Helper()
	rel, ok := cat.Get(name)
	if !ok {
		t.Fatalf("relation %q missing", name)
	}
	return rel
}
