package server

import (
	"unijoin/internal/obs"
)

// metrics is the server's instrumentation: every counter behind
// GET /v1/stats plus the request/join histograms exposed on
// GET /metrics. All handles come from one obs.Registry, so the stats
// endpoint and the Prometheus exposition can never disagree.
type metrics struct {
	reg *obs.Registry

	// requests is labeled by endpoint and status class, so a scrape
	// can tell join 200s from join 504s without a cardinality
	// explosion (status is the three-digit code as text).
	requests *obs.CounterVec
	latency  *obs.HistogramVec // sj_request_seconds{endpoint}
	inFlight *obs.Gauge

	joins           *obs.Counter
	windows         *obs.Counter
	errors          *obs.Counter
	canceled        *obs.Counter
	pairsStreamed   *obs.Counter
	recordsStreamed *obs.Counter

	// Binary-transport families: frames and payload+header bytes
	// written to negotiated frame streams, by frame type
	// (pairs/records/summary/error/end).
	frames     *obs.CounterVec // sj_frames_total{type}
	frameBytes *obs.CounterVec // sj_frame_bytes_total{type}

	// Ingestion families: appends accepted, records written per
	// relation, append wall time, compactions triggered, and the
	// per-relation delta-log depth (distance to the next compaction).
	appends       *obs.Counter
	ingestRecords *obs.CounterVec // sj_ingest_records_total{relation}
	ingestLatency *obs.Histogram  // sj_ingest_seconds
	compactions   *obs.Counter
	deltaRecords  *obs.GaugeVec // sj_delta_records{relation}

	// joinLatency is per-algorithm end-to-end join time; phase splits
	// it into the paper's phases (partition/sweep/stream) across all
	// algorithms.
	joinLatency *obs.HistogramVec
	phase       *obs.HistogramVec

	// joinEWMA is the per-algorithm smoothed latency (milliseconds)
	// surfaced on /v1/stats — the steady-state estimate a planner or
	// rebalancer reads without parsing histogram buckets.
	joinEWMA *obs.EWMASet
}

// joinBuckets widens obs.DefBuckets upward: a cold PBSM join of two
// large relations can run for minutes while an ST probe finishes in
// microseconds, and both must land inside the histogram's range.
var joinBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// newMetrics registers the server's metric families on reg (a nil reg
// gets a fresh registry — the embedded-server case with no scrape
// endpoint wired up).
func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &metrics{
		reg: reg,
		requests: reg.CounterVec("sj_requests_total",
			"HTTP requests served, by endpoint and status code.",
			"endpoint", "status"),
		latency: reg.HistogramVec("sj_request_seconds",
			"HTTP request wall time in seconds, by endpoint.",
			nil, "endpoint"),
		inFlight: reg.Gauge("sj_requests_in_flight",
			"Requests currently being served."),
		joins: reg.Counter("sj_joins_total",
			"Join requests accepted (before validation)."),
		windows: reg.Counter("sj_windows_total",
			"Window requests accepted (before validation)."),
		errors: reg.Counter("sj_errors_total",
			"Failed requests, excluding cancellations."),
		canceled: reg.Counter("sj_canceled_total",
			"Requests canceled by timeout or client disconnect."),
		pairsStreamed: reg.Counter("sj_pairs_streamed_total",
			"Result pairs written to join response streams."),
		recordsStreamed: reg.Counter("sj_records_streamed_total",
			"Records written to window response streams."),
		frames: reg.CounterVec("sj_frames_total",
			"Binary transport frames written, by frame type.",
			"type"),
		frameBytes: reg.CounterVec("sj_frame_bytes_total",
			"Binary transport bytes written (headers included), by frame type.",
			"type"),
		appends: reg.Counter("sj_appends_total",
			"Append requests accepted (before validation)."),
		ingestRecords: reg.CounterVec("sj_ingest_records_total",
			"Records appended to relations, by relation.",
			"relation"),
		ingestLatency: reg.Histogram("sj_ingest_seconds",
			"Append request execution time in seconds, including any compaction it triggers.",
			nil),
		compactions: reg.Counter("sj_compactions_total",
			"Delta-log compactions triggered by appends or requested explicitly."),
		deltaRecords: reg.GaugeVec("sj_delta_records",
			"Records in a relation's delta log past its packed base, by relation.",
			"relation"),
		joinLatency: reg.HistogramVec("sj_join_seconds",
			"Successful join execution time in seconds, by algorithm.",
			joinBuckets, "algorithm"),
		phase: reg.HistogramVec("sj_join_phase_seconds",
			"Join phase wall time in seconds: partition (input preparation), sweep (join kernel), stream (response writing).",
			joinBuckets, "phase"),
		joinEWMA: obs.NewEWMASet(obs.DefaultAlpha),
	}
}

// observeJoin records one successful join: the per-algorithm latency
// histogram and EWMA, and the per-phase breakdown.
func (m *metrics) observeJoin(algorithm string, elapsedSec float64, t phaseSeconds) {
	m.joinLatency.With(algorithm).Observe(elapsedSec)
	m.joinEWMA.Observe(algorithm, elapsedSec*1000)
	m.phase.With("partition").Observe(t.partition)
	m.phase.With("sweep").Observe(t.sweep)
	m.phase.With("stream").Observe(t.stream)
}

// phaseSeconds carries one join's phase wall times, in seconds.
type phaseSeconds struct {
	partition, sweep, stream float64
}

// observeIngest records one successful append against a relation:
// records written, wall time, compactions, and the relation's
// delta-log depth afterwards.
func (m *metrics) observeIngest(relation string, appended int64, elapsedSec float64, compacted bool, delta int64) {
	m.ingestRecords.With(relation).Add(appended)
	m.ingestLatency.Observe(elapsedSec)
	if compacted {
		m.compactions.Inc()
	}
	m.deltaRecords.With(relation).Set(float64(delta))
}
