// Package server implements sjserved's HTTP layer: a long-lived
// spatial-join query service over an in-memory unijoin.Catalog.
//
// The catalog holds named, optionally pre-indexed relations resident
// across requests; handlers execute joins through the public
// Query(...).Run(ctx) API and window queries through
// Relation.WindowQuery, streaming results as NDJSON (the wire types
// live in the client package). Every request runs under a
// context.Context assembled from the client's disconnect signal, the
// server's per-request timeout ceiling, and an optional per-request
// timeout, so an abandoned or over-budget query aborts mid-run with
// ErrCanceled rather than burning the worker. Typed errors map onto
// HTTP status codes: ErrNeedsIndex → 422, unknown relations → 404,
// ErrCanceled → 504, malformed requests → 400.
package server

import (
	"log/slog"
	"net/http"
	"sync"
	"time"

	"unijoin"
	"unijoin/client"
	"unijoin/internal/httpapi"
	"unijoin/internal/obs"
	"unijoin/internal/shard"
)

// DefaultBatchPairs is how many pairs or records one NDJSON batch
// line carries at most.
const DefaultBatchPairs = 1024

// maxBatchPairs caps Config.BatchPairs. Window records are the fat
// case: float32 coordinates marshal as float64 decimals of up to ~18
// characters, so a record line item can reach ~130 JSON bytes; 4096
// of them stay near half of the 1 MB line the bundled client's
// scanner accepts.
const maxBatchPairs = 4096

// Config configures a Server.
type Config struct {
	// Catalog is the relation catalog to serve. Required.
	Catalog *unijoin.Catalog
	// Timeout is the server-side ceiling on each join/window request;
	// a request's own timeout_ms may shorten it but never extend it.
	// Zero means no ceiling.
	Timeout time.Duration
	// Logger receives one line per request; nil uses slog.Default().
	Logger *slog.Logger
	// BatchPairs caps the pairs (or records) per NDJSON line (default
	// DefaultBatchPairs; clamped so every line fits the client
	// package's line scanner).
	BatchPairs int
	// Stripe, when set, makes this process one shard of a fleet: the
	// catalog is expected to hold only records overlapping the
	// stripe (sjserved -stripe slices at load), and every join pair
	// and window record is filtered by the shard ownership rules
	// (see internal/shard), so a router summing the fleet's answers
	// gets exactly the single-process result. The stripe is exposed
	// on /v1/stats and /v1/relations for the router's fleet check.
	Stripe *shard.Interval
	// Registry receives the server's metric families (GET /metrics
	// serves its rendering). Nil gets a private registry, so an
	// embedded server still counts — it just isn't scraped.
	Registry *obs.Registry
	// Traces caps the in-memory ring of recent request traces served
	// on GET /v1/traces (0 = obs.DefaultTraceCapacity). Every join and
	// window request records a span tree there, trace flag or not.
	Traces int
	// SlowQuery, when positive, logs one Warn line with the full span
	// breakdown for every join or window whose wall time reaches it.
	SlowQuery time.Duration
	// WorkloadLo and WorkloadHi bound the query-window x-histogram the
	// workload recorder keeps (Hi ≤ Lo falls back to the default
	// 0..1000 universe). Every shard of a fleet must use the same
	// bounds — sjserved derives them from -region — so a router can
	// sum the histograms index-wise on /v1/stats.
	WorkloadLo, WorkloadHi float64
}

// Server is the HTTP query service. Create with New, expose with
// Handler, and run under any http.Server. All state a request touches
// — the catalog, the metrics — is safe for concurrent use, so the
// standard library's one-goroutine-per-request model needs no extra
// coordination.
type Server struct {
	cat     *unijoin.Catalog
	timeout time.Duration
	log     *slog.Logger
	batch   int
	stripe  *shard.Interval
	start   time.Time
	mux     *http.ServeMux

	// xlo caches each relation's ID → left-edge table, the lookup
	// behind the per-pair shard ownership test (stripe mode only).
	// Keyed by *unijoin.Relation, so a reloaded relation gets a fresh
	// table; each table is epoch-stamped, so an append or compaction
	// invalidates it on the next fetch.
	xlo sync.Map

	metrics  *metrics
	traces   *obs.TraceStore
	workload *obs.Workload
	slow     time.Duration
}

// New builds a Server over cfg.Catalog.
func New(cfg Config) *Server {
	if cfg.Catalog == nil {
		panic("server: Config.Catalog is required")
	}
	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	batch := cfg.BatchPairs
	if batch <= 0 {
		batch = DefaultBatchPairs
	}
	if batch > maxBatchPairs {
		batch = maxBatchPairs
	}
	s := &Server{
		cat:     cfg.Catalog,
		timeout: cfg.Timeout,
		log:     log,
		batch:   batch,
		stripe:  cfg.Stripe,
		start:   time.Now(),
		mux:     http.NewServeMux(),
		metrics: newMetrics(cfg.Registry),
		traces:  obs.NewTraceStore(cfg.Traces),
		slow:    cfg.SlowQuery,
	}
	s.workload = obs.NewWorkload(s.metrics.reg, cfg.WorkloadLo, cfg.WorkloadHi, obs.DefaultWorkloadBuckets)
	// The exposition endpoint is deliberately uninstrumented: scrapes
	// should not move the request counters they report.
	s.mux.Handle("GET /metrics", s.metrics.reg.Handler())
	s.mux.Handle("GET /v1/healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.Handle("GET /v1/relations", s.instrument("relations", s.handleRelations))
	s.mux.Handle("GET /v1/stats", s.instrument("stats", s.handleStats))
	s.mux.Handle("GET /v1/traces", s.instrument("traces", httpapi.TracesHandler(s.traces)))
	s.mux.Handle("GET /v1/traces/{id}", s.instrument("traces", httpapi.TraceByIDHandler(s.traces)))
	s.mux.Handle("POST /v1/join", s.instrument("join", s.withTimeout(s.handleJoin)))
	s.mux.Handle("POST /v1/window", s.instrument("window", s.withTimeout(s.handleWindow)))
	s.mux.Handle("POST /v1/relations/{relation}/records", s.instrument("append", s.withTimeout(s.handleAppend)))
	s.mux.Handle("/", s.instrument("notfound", func(w http.ResponseWriter, r *http.Request) {
		httpapi.WriteError(w, &client.APIError{
			Status: http.StatusNotFound, Code: client.CodeNotFound,
			Message: "no such endpoint: " + r.Method + " " + r.URL.Path,
		})
	}))
	return s
}

// Handler returns the service's HTTP handler, middleware included.
func (s *Server) Handler() http.Handler { return s.mux }

// stripeDTO returns the server's stripe in wire form (nil when the
// process serves the whole universe).
func (s *Server) stripeDTO() *client.Stripe {
	if s.stripe == nil {
		return nil
	}
	return shard.ToStripe(*s.stripe)
}

// Stats snapshots the server's counters (the body of GET /v1/stats).
func (s *Server) Stats() client.Stats {
	// The status-labeled request counter increments when a request
	// completes (its status is unknown before then), so accepted
	// requests — the old entry-time semantics, which count the stats
	// request reading this — are completed + in-flight.
	inFlight := int64(s.metrics.inFlight.Value())
	// The delta gauge is recomputed from the catalog at read time, so
	// it reflects compactions and reloads, not just the last append.
	var delta int64
	for _, name := range s.cat.Names() {
		if rel, ok := s.cat.Get(name); ok {
			delta += rel.DeltaRecords()
		}
	}
	return client.Stats{
		Stripe:                s.stripeDTO(),
		UptimeSeconds:         time.Since(s.start).Seconds(),
		Relations:             s.cat.Len(),
		Requests:              s.metrics.requests.Total() + inFlight,
		InFlight:              inFlight,
		Joins:                 s.metrics.joins.Value(),
		Windows:               s.metrics.windows.Value(),
		Errors:                s.metrics.errors.Value(),
		Canceled:              s.metrics.canceled.Value(),
		PairsStreamed:         s.metrics.pairsStreamed.Value(),
		RecordsStreamed:       s.metrics.recordsStreamed.Value(),
		Appends:               s.metrics.appends.Value(),
		RecordsIngested:       s.metrics.ingestRecords.Total(),
		Compactions:           s.metrics.compactions.Value(),
		DeltaRecords:          delta,
		JoinLatencyEWMAMillis: s.metrics.joinEWMA.Snapshot(),
		Workload:              workloadDTO(s.workload.Snapshot()),
	}
}

// workloadDTO converts the recorder's snapshot to its wire form.
func workloadDTO(w obs.WorkloadSnapshot) *client.WorkloadStats {
	return &client.WorkloadStats{
		XLo: w.XLo, XHi: w.XHi,
		Buckets:    w.Buckets,
		Windowed:   w.Windowed,
		Unwindowed: w.Unwindowed,
		Queries:    w.Queries,
	}
}
