package server

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"unijoin/client"
	"unijoin/internal/httpapi"
	"unijoin/internal/obs"
)

// get issues a plain HTTP request against the test server and returns
// the response status.
func get(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestMiddlewareStatusCounters pins the status → counter mapping: 4xx
// and 5xx responses increment the errors counter, while a 504 (a
// canceled query) increments only the canceled counter — load
// shedding must not page anyone.
func TestMiddlewareStatusCounters(t *testing.T) {
	// Large enough that a 1ms-timeout join reliably trips the
	// cancellation polling mid-sort rather than finishing early.
	cat := testCatalog(t, 30000)
	srv, cl, url := testServer(t, Config{Catalog: cat})
	ctx := context.Background()

	// A 404 and a 400 are errors.
	if got := get(t, url+"/v1/nope"); got != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", got)
	}
	resp, err := http.Post(url+"/v1/join", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if got := srv.metrics.errors.Value(); got != 2 {
		t.Fatalf("errors = %d after a 404 and a 400, want 2", got)
	}
	if got := srv.metrics.canceled.Value(); got != 0 {
		t.Fatalf("canceled = %d, want 0", got)
	}

	// A pre-expired request timeout forces a 504: canceled increments,
	// errors must not. Count-only keeps the response unstarted until
	// the query finishes, so the cancellation is always a status, not
	// a mid-stream error line.
	_, err = cl.JoinCount(ctx, client.JoinRequest{
		Left: "roads", Right: "hydro", TimeoutMillis: 1, Algorithm: "SSSJ",
	})
	if err == nil {
		t.Fatal("want a canceled error from a 1ms join")
	}
	if got := srv.metrics.canceled.Value(); got != 1 {
		t.Fatalf("canceled = %d after a 504, want 1", got)
	}
	if got := srv.metrics.errors.Value(); got != 2 {
		t.Fatalf("errors = %d after a 504, want still 2 (504 is not an error)", got)
	}

	// The per-status counter families carry the same story.
	if got := srv.metrics.requests.With("join", "504").Value(); got != 1 {
		t.Fatalf(`requests{join,504} = %d, want 1`, got)
	}
	if got := srv.metrics.requests.With("notfound", "404").Value(); got != 1 {
		t.Fatalf(`requests{notfound,404} = %d, want 1`, got)
	}
}

// TestMiddlewareHistogramCounts verifies every request is observed by
// the latency histogram exactly once, across concurrent load (run
// with -race this also proves the metrics path is race-clean).
func TestMiddlewareHistogramCounts(t *testing.T) {
	cat := testCatalog(t, 200)
	srv, cl, _ := testServer(t, Config{Catalog: cat})
	ctx := context.Background()

	const workers, perWorker = 8, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := cl.JoinCount(ctx, client.JoinRequest{
					Left: "roads", Right: "hydro", Algorithm: "PQ",
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	const n = workers * perWorker
	if got := srv.metrics.latency.With("join").Count(); got != n {
		t.Fatalf("request histogram observed %d joins, want %d", got, n)
	}
	if got := srv.metrics.requests.With("join", "200").Value(); got != n {
		t.Fatalf(`requests{join,200} = %d, want %d`, got, n)
	}
	if got := srv.metrics.joinLatency.With("PQ").Count(); got != n {
		t.Fatalf("join latency histogram observed %d, want %d", got, n)
	}
	if got := srv.metrics.phase.With("sweep").Count(); got != n {
		t.Fatalf("sweep phase histogram observed %d, want %d", got, n)
	}
	if v := srv.metrics.joinEWMA.Value("PQ"); v <= 0 {
		t.Fatalf("join EWMA = %v, want > 0", v)
	}
	if fl := srv.metrics.inFlight.Value(); fl != 0 {
		t.Fatalf("in-flight gauge = %v after quiesce, want 0", fl)
	}
}

// TestMetricsEndpoint scrapes GET /metrics and checks the exposition
// carries the request series with real observations.
func TestMetricsEndpoint(t *testing.T) {
	cat := testCatalog(t, 200)
	_, cl, url := testServer(t, Config{Catalog: cat})
	ctx := context.Background()

	if _, err := cl.JoinCount(ctx, client.JoinRequest{Left: "roads", Right: "hydro"}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	var body bytes.Buffer
	sc := bufio.NewScanner(resp.Body)
	found := false
	for sc.Scan() {
		line := sc.Text()
		body.WriteString(line + "\n")
		if line == `sj_request_seconds_count{endpoint="join"} 1` {
			found = true
		}
		// Every non-comment line must be "name value".
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if got := len(strings.Fields(line)); got != 2 {
			t.Fatalf("bad exposition line %q: %d fields", line, got)
		}
	}
	if !found {
		t.Fatalf("missing join request histogram count; body:\n%s", body.String())
	}
	for _, want := range []string{"sj_join_seconds_bucket{algorithm=\"PQ\"", "sj_joins_total 1"} {
		if !strings.Contains(body.String(), want) {
			t.Fatalf("exposition missing %q; body:\n%s", want, body.String())
		}
	}
}

// TestRequestIDEcho verifies the middleware echoes a caller's
// X-Request-Id and invents one otherwise.
func TestRequestIDEcho(t *testing.T) {
	cat := testCatalog(t, 10)
	_, _, url := testServer(t, Config{Catalog: cat})

	req, _ := http.NewRequest(http.MethodGet, url+"/v1/healthz", nil)
	req.Header.Set(httpapi.RequestIDHeader, "abc123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(httpapi.RequestIDHeader); got != "abc123" {
		t.Fatalf("echoed request id = %q, want abc123", got)
	}

	resp2, err := http.Get(url + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get(httpapi.RequestIDHeader); len(got) != 16 {
		t.Fatalf("generated request id = %q, want 16 hex chars", got)
	}
}

// TestStatusRecorderUnwrap pins the satellite fix: the recorder must
// expose the underlying writer so http.NewResponseController can
// reach Flush through the wrapper.
func TestStatusRecorderUnwrap(t *testing.T) {
	rr := httptest.NewRecorder()
	rec := &httpapi.StatusRecorder{ResponseWriter: rr}
	rc := http.NewResponseController(rec)
	fmt.Fprint(rec, "hello")
	if err := rc.Flush(); err != nil {
		t.Fatalf("ResponseController.Flush through StatusRecorder: %v", err)
	}
	if !rr.Flushed {
		t.Fatal("flush did not reach the underlying writer")
	}
	if rec.Status() != http.StatusOK {
		t.Fatalf("status = %d, want 200", rec.Status())
	}
}

// TestJoinTrace verifies the per-query phase trace: present (with a
// nonzero sweep) when requested, absent otherwise.
func TestJoinTrace(t *testing.T) {
	cat := testCatalog(t, 400)
	srv, cl, _ := testServer(t, Config{Catalog: cat})
	ctx := context.Background()

	sum, err := cl.JoinCount(ctx, client.JoinRequest{
		Left: "roads", Right: "hydro", Algorithm: "SSSJ", Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Trace == nil {
		t.Fatal("summary.trace missing with trace: true")
	}
	if sum.Trace.SweepMillis <= 0 || sum.Trace.PartitionMillis <= 0 {
		t.Fatalf("SSSJ trace = %+v, want positive partition and sweep", sum.Trace)
	}
	if sum.Trace.PartitionMillis+sum.Trace.SweepMillis > sum.ElapsedMillis+1 {
		t.Fatalf("phases (%v + %v) exceed elapsed %v", sum.Trace.PartitionMillis,
			sum.Trace.SweepMillis, sum.ElapsedMillis)
	}

	sum, err = cl.JoinCount(ctx, client.JoinRequest{Left: "roads", Right: "hydro"})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Trace != nil {
		t.Fatalf("summary.trace = %+v without trace flag, want absent", sum.Trace)
	}

	// Either way the phase histograms observed both joins.
	if got := srv.metrics.phase.With("partition").Count(); got != 2 {
		t.Fatalf("partition phase observations = %d, want 2", got)
	}

	// Stats surfaces the per-algorithm EWMA.
	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.JoinLatencyEWMAMillis["SSSJ"] <= 0 {
		t.Fatalf("stats EWMA = %+v, want SSSJ > 0", stats.JoinLatencyEWMAMillis)
	}
}

// TestSharedRegistry verifies an externally-supplied registry receives
// the server's families — the wiring sjserved-style embedders rely on.
func TestSharedRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	cat := testCatalog(t, 10)
	_, cl, _ := testServer(t, Config{Catalog: cat, Registry: reg})
	if _, err := cl.JoinCount(context.Background(), client.JoinRequest{Left: "roads", Right: "hydro"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for !strings.Contains(reg.Render(), "sj_joins_total 1") {
		if time.Now().After(deadline) {
			t.Fatalf("shared registry missing join counter:\n%s", reg.Render())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
