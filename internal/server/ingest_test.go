package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"unijoin"
	"unijoin/client"
	"unijoin/internal/datagen"
	"unijoin/internal/shard"
)

// recordsIn converts generated records to their wire form.
func recordsIn(recs []unijoin.Record) []client.RecordIn {
	out := make([]client.RecordIn, len(recs))
	for i, r := range recs {
		out[i] = client.RecordIn{ID: uint32(r.ID), Rect: client.Rect{
			XLo: float64(r.Rect.XLo), YLo: float64(r.Rect.YLo),
			XHi: float64(r.Rect.XHi), YHi: float64(r.Rect.YHi),
		}}
	}
	return out
}

// ndjsonBody renders records as the bulk append wire format, one JSON
// object per line — what sjgen -ndjson emits.
func ndjsonBody(recs []client.RecordIn) string {
	var b strings.Builder
	for _, r := range recs {
		fmt.Fprintf(&b, "{\"id\":%d,\"rect\":{\"xlo\":%g,\"ylo\":%g,\"xhi\":%g,\"yhi\":%g}}\n",
			r.ID, r.Rect.XLo, r.Rect.YLo, r.Rect.XHi, r.Rect.YHi)
	}
	return b.String()
}

// TestAppendEndpointFormats drives the append endpoint through all
// three body formats — single object, JSON array, bulk NDJSON — into
// both an indexed and a non-indexed relation, and checks the records
// become visible to queries started after each append.
func TestAppendEndpointFormats(t *testing.T) {
	cat := testCatalog(t, 800) // roads: 800 indexed; hydro: 600 unindexed
	_, cl, _ := testServer(t, Config{Catalog: cat})
	ctx := context.Background()
	u := unijoin.NewRect(0, 0, 1000, 1000)

	// Single object into the indexed relation.
	one := client.RecordIn{ID: 800, Rect: client.Rect{XLo: 10, YLo: 10, XHi: 30, YHi: 30}}
	sum, err := cl.AppendRecords(ctx, "roads", []client.RecordIn{one})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Appended != 1 || sum.Records != 801 || sum.DeltaRecords != 1 {
		t.Fatalf("summary %+v, want appended=1 records=801 delta=1", sum)
	}

	// Array into the indexed relation; epoch must advance by one.
	delta := datagen.Uniform(7, 120, u, 40)
	for i := range delta {
		delta[i].ID = unijoin.ID(801 + i)
	}
	sum2, err := cl.AppendRecords(ctx, "roads", recordsIn(delta))
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Appended != 120 || sum2.Records != 921 || sum2.Epoch != sum.Epoch+1 {
		t.Fatalf("summary %+v, want appended=120 records=921 epoch=%d", sum2, sum.Epoch+1)
	}

	// Bulk NDJSON into the non-indexed relation.
	hydroDelta := datagen.Uniform(8, 200, u, 40)
	for i := range hydroDelta {
		hydroDelta[i].ID = unijoin.ID(600 + i)
	}
	sum3, err := cl.AppendNDJSON(ctx, "hydro", strings.NewReader(ndjsonBody(recordsIn(hydroDelta))))
	if err != nil {
		t.Fatal(err)
	}
	if sum3.Appended != 200 {
		t.Fatalf("ndjson appended %d, want 200", sum3.Appended)
	}

	// Queries started after the appends see every record.
	wsum, err := cl.Window(ctx, client.WindowRequest{Relation: "roads", Window: &client.Rect{XHi: 1000, YHi: 1000}, CountOnly: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if wsum.Records != 921 || !wsum.Indexed {
		t.Fatalf("roads window sees %d records (indexed=%v), want 921 indexed", wsum.Records, wsum.Indexed)
	}
	jsum, err := cl.JoinCount(ctx, client.JoinRequest{Left: "roads", Right: "hydro"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := cat.Workspace().Query(mustGet(t, cat, "roads"), mustGet(t, cat, "hydro")).CountOnly().Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if jsum.Pairs != want.Count() {
		t.Fatalf("joined %d pairs over HTTP, %d in-process", jsum.Pairs, want.Count())
	}

	// Error shapes: unknown relation, malformed body, invalid rect.
	if _, err := cl.AppendRecords(ctx, "nope", []client.RecordIn{one}); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("unknown relation: %v, want not found", err)
	}
	if _, err := cl.AppendNDJSON(ctx, "roads", strings.NewReader("{not json}\n")); !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("bad ndjson: %v, want bad request", err)
	}
	// JSON cannot carry NaN/Inf, so an invalid rectangle has to be
	// injected below the client marshaling layer.
	if _, err := cl.AppendNDJSON(ctx, "roads",
		strings.NewReader(`{"id":1,"rect":{"xlo":1e999,"xhi":1,"yhi":1}}`+"\n")); !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("invalid rect: %v, want bad request", err)
	}
}

// TestAppendStripeFilterAndXloInvalidation is the cache-invalidation
// regression: in stripe mode a join builds the per-relation ID →
// left-edge ownership tables, and an append must invalidate them —
// the dense table would otherwise miss (or worse, misclassify) the
// appended IDs. It also checks a stripe shard accepts only the
// records its stripe loads.
func TestAppendStripeFilterAndXloInvalidation(t *testing.T) {
	cat := testCatalog(t, 800)
	iv, err := shard.ParseInterval(":500")
	if err != nil {
		t.Fatal(err)
	}
	_, cl, _ := testServer(t, Config{Catalog: cat, Stripe: &iv})
	ctx := context.Background()

	// Build the ownership tables.
	before, err := cl.JoinCount(ctx, client.JoinRequest{Left: "roads", Right: "hydro"})
	if err != nil {
		t.Fatal(err)
	}

	// Append records on both sides of the stripe boundary: the shard
	// must keep only those overlapping [.., 500).
	in := []client.RecordIn{
		{ID: 9000, Rect: client.Rect{XLo: 100, YLo: 100, XHi: 140, YHi: 140}}, // inside
		{ID: 9001, Rect: client.Rect{XLo: 480, YLo: 100, XHi: 520, YHi: 140}}, // crossing: loads here
		{ID: 9002, Rect: client.Rect{XLo: 700, YLo: 100, XHi: 740, YHi: 140}}, // outside
	}
	sum, err := cl.AppendRecords(ctx, "roads", in)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Appended != 2 || sum.Records != 802 {
		t.Fatalf("stripe shard appended %d (total %d), want 2 of 3 kept", sum.Appended, sum.Records)
	}

	// Joins after the append must use a fresh table covering the new
	// IDs; the owned-pair count can only grow.
	after, err := cl.JoinCount(ctx, client.JoinRequest{Left: "roads", Right: "hydro"})
	if err != nil {
		t.Fatal(err)
	}
	if after.Pairs < before.Pairs {
		t.Fatalf("owned pairs shrank after append: %d -> %d", before.Pairs, after.Pairs)
	}
	// The in-process reference, filtered by the same ownership rule.
	roads, hydro := mustGet(t, cat, "roads"), mustGet(t, cat, "hydro")
	// Both relations use dense 0..n-1 IDs, so the left-edge lookups
	// must stay per-relation.
	xloFor := func(rel *unijoin.Relation) map[uint32]unijoin.Coord {
		m := map[uint32]unijoin.Coord{}
		if _, err := rel.WindowQuery(ctx, unijoin.NewRect(0, 0, 1000, 1000), func(rec unijoin.Record) {
			m[uint32(rec.ID)] = rec.Rect.XLo
		}); err != nil {
			t.Fatal(err)
		}
		return m
	}
	xloRoads, xloHydro := xloFor(roads), xloFor(hydro)
	var wantOwned int64
	if _, err := cat.Workspace().Query(roads, hydro).EmitBatch(func(batch []unijoin.Pair) {
		for _, p := range batch {
			if iv.OwnsPair(xloRoads[p.Left], xloHydro[p.Right]) {
				wantOwned++
			}
		}
	}).Run(ctx); err != nil {
		t.Fatal(err)
	}
	if after.Pairs != wantOwned {
		t.Fatalf("owned pairs over HTTP %d, reference %d", after.Pairs, wantOwned)
	}
}

// TestIngestStatsAndMetrics checks the observability satellite: the
// ingest counters surface on /v1/stats and the metric families render
// on /metrics, and a large enough append trips auto-compaction.
func TestIngestStatsAndMetrics(t *testing.T) {
	cat := testCatalog(t, 800)
	_, cl, url := testServer(t, Config{Catalog: cat})
	ctx := context.Background()
	u := unijoin.NewRect(0, 0, 1000, 1000)

	small := datagen.Uniform(11, 50, u, 40)
	for i := range small {
		small[i].ID = unijoin.ID(800 + i)
	}
	if _, err := cl.AppendRecords(ctx, "roads", recordsIn(small)); err != nil {
		t.Fatal(err)
	}
	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Appends != 1 || stats.RecordsIngested != 50 || stats.DeltaRecords != 50 {
		t.Fatalf("stats %+v, want appends=1 ingested=50 delta=50", stats)
	}

	// A delta past the compaction threshold (DefaultCompactMin=4096,
	// base 850) folds the log; the gauge drops back to zero.
	big := datagen.Uniform(12, 4100, u, 40)
	for i := range big {
		big[i].ID = unijoin.ID(850 + i)
	}
	sum, err := cl.AppendNDJSON(ctx, "roads", strings.NewReader(ndjsonBody(recordsIn(big))))
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Compacted || sum.DeltaRecords != 0 {
		t.Fatalf("summary %+v, want a compaction and an empty delta", sum)
	}
	stats, err = cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Compactions != 1 || stats.DeltaRecords != 0 {
		t.Fatalf("stats %+v, want compactions=1 delta=0", stats)
	}

	// The exposition endpoint renders the ingest families.
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`sj_ingest_records_total{relation="roads"} 4150`,
		"sj_compactions_total 1",
		"sj_ingest_seconds_count 2",
		`sj_delta_records{relation="roads"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
}
