package server

import (
	"context"
	"errors"
	"testing"

	"unijoin/client"
)

// TestJoinTraceRecorded is the single-process acceptance test for the
// tracing subsystem: a traced join pinned to a known request ID must
// land in GET /v1/traces/{id} as a server.join tree with the
// partition/sweep/stream phase children, the root duration agreeing
// with the summary's elapsed_ms, and the same tree attached to the
// summary.
func TestJoinTraceRecorded(t *testing.T) {
	_, cl, _ := testServer(t, Config{Catalog: testCatalog(t, 500)})
	ctx := client.WithRequestID(context.Background(), "trace-test-join-1")

	sum, err := cl.Join(ctx, client.JoinRequest{
		Left: "roads", Right: "hydro", Algorithm: "PBSM", Trace: true,
	}, func(uint32, uint32) {})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Spans == nil {
		t.Fatal("summary.spans missing with trace: true")
	}
	if sum.Spans.Name != "server.join" {
		t.Fatalf("summary root span = %q, want server.join", sum.Spans.Name)
	}

	det, err := cl.TraceByID(ctx, "trace-test-join-1")
	if err != nil {
		t.Fatalf("GET /v1/traces/{id}: %v", err)
	}
	if det.Kind != "join" || det.Root == nil {
		t.Fatalf("trace detail = %+v, want a join trace with a root", det)
	}
	phases := map[string]bool{}
	for _, c := range det.Root.Children {
		phases[c.Name] = true
		if c.DurationMillis < 0 {
			t.Fatalf("phase %s has negative duration %v", c.Name, c.DurationMillis)
		}
	}
	for _, want := range []string{"partition", "sweep", "stream"} {
		if !phases[want] {
			t.Fatalf("trace children = %v, missing phase %q", phases, want)
		}
	}
	// The root span is created and ended around the same interval the
	// summary's elapsed_ms measures; they must agree.
	diff := det.Root.DurationMillis - sum.ElapsedMillis
	if diff < -1 || diff > 1 {
		t.Fatalf("trace root %vms vs summary elapsed %vms: drifted by %vms",
			det.Root.DurationMillis, sum.ElapsedMillis, diff)
	}
	if det.Root.Attrs["algorithm"] != "PBSM" {
		t.Fatalf("root attrs = %v, want algorithm=PBSM", det.Root.Attrs)
	}

	// Listing includes the trace, newest first.
	sums, err := cl.Traces(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) == 0 || sums[0].ID != "trace-test-join-1" {
		t.Fatalf("Traces(10) = %v, want trace-test-join-1 first", sums)
	}
}

// TestTraceAlwaysOnAndUnknown404: untraced requests still record a
// trace (the flag only controls the summary attachment), and unknown
// IDs 404.
func TestTraceAlwaysOnAndUnknown404(t *testing.T) {
	_, cl, _ := testServer(t, Config{Catalog: testCatalog(t, 200)})
	ctx := client.WithRequestID(context.Background(), "trace-test-untraced")

	sum, err := cl.JoinCount(ctx, client.JoinRequest{Left: "roads", Right: "hydro"})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Spans != nil {
		t.Fatal("summary.spans present without the trace flag")
	}
	if _, err := cl.TraceByID(ctx, "trace-test-untraced"); err != nil {
		t.Fatalf("untraced request did not record a trace: %v", err)
	}

	_, err = cl.TraceByID(ctx, "never-recorded")
	var apiErr *client.APIError
	if err == nil || !errors.As(err, &apiErr) || apiErr.Code != client.CodeNotFound {
		t.Fatalf("TraceByID(never-recorded) = %v, want a not_found APIError", err)
	}
}

// TestWindowTraceRecorded mirrors the join test for window queries:
// the scan/stream tree lands in the store under the request ID.
func TestWindowTraceRecorded(t *testing.T) {
	_, cl, _ := testServer(t, Config{Catalog: testCatalog(t, 300)})
	ctx := client.WithRequestID(context.Background(), "trace-test-window")

	if _, err := cl.Window(ctx, client.WindowRequest{
		Relation: "roads",
		Window:   &client.Rect{XLo: 100, YLo: 100, XHi: 400, YHi: 400},
	}, func(client.RecordOut) {}); err != nil {
		t.Fatal(err)
	}
	det, err := cl.TraceByID(ctx, "trace-test-window")
	if err != nil {
		t.Fatal(err)
	}
	if det.Kind != "window" || det.Root.Name != "server.window" {
		t.Fatalf("window trace = kind %q root %q, want window/server.window", det.Kind, det.Root.Name)
	}
	names := map[string]bool{}
	for _, c := range det.Root.Children {
		names[c.Name] = true
	}
	if !names["scan"] || !names["stream"] {
		t.Fatalf("window trace children = %v, want scan and stream", names)
	}
}

// TestWorkloadInStats drives windowed and unwindowed traffic and
// checks the /v1/stats workload block: the histogram records where
// query windows landed, the per-(relation, algorithm) counters count
// accepted queries, and full scans stay out of the histogram.
func TestWorkloadInStats(t *testing.T) {
	_, cl, _ := testServer(t, Config{
		Catalog:    testCatalog(t, 300),
		WorkloadLo: 0, WorkloadHi: 1000,
	})
	ctx := context.Background()

	// Two windowed joins in the low band, one unwindowed, one window
	// query in the high band.
	low := &client.Rect{XLo: 10, YLo: 10, XHi: 60, YHi: 60}
	for i := 0; i < 2; i++ {
		if _, err := cl.JoinCount(ctx, client.JoinRequest{
			Left: "roads", Right: "hydro", Algorithm: "PQ", Window: low,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.JoinCount(ctx, client.JoinRequest{Left: "roads", Right: "hydro", Algorithm: "PQ"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Window(ctx, client.WindowRequest{
		Relation: "roads", Window: &client.Rect{XLo: 900, YLo: 0, XHi: 990, YHi: 1000},
		CountOnly: true,
	}, func(client.RecordOut) {}); err != nil {
		t.Fatal(err)
	}

	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	w := stats.Workload
	if w == nil {
		t.Fatal("stats.workload missing")
	}
	if w.Windowed != 3 || w.Unwindowed != 1 {
		t.Fatalf("windowed/unwindowed = %d/%d, want 3/1", w.Windowed, w.Unwindowed)
	}
	if len(w.Buckets) == 0 {
		t.Fatal("workload histogram empty")
	}
	// Bucket width is 1000/32 = 31.25: the low-band joins land near the
	// start, the high-band window near the end.
	if w.Buckets[0] != 2 {
		t.Fatalf("bucket 0 = %d, want the 2 low-band joins (buckets: %v)", w.Buckets[0], w.Buckets)
	}
	if w.Buckets[len(w.Buckets)-2]+w.Buckets[len(w.Buckets)-1] == 0 {
		t.Fatalf("high-band window query missing from the tail (buckets: %v)", w.Buckets)
	}
	// Each join counts once per input relation; the window query once.
	if got := w.Queries["roads"]["PQ"]; got != 3 {
		t.Fatalf("roads/PQ = %d, want 3", got)
	}
	if got := w.Queries["hydro"]["PQ"]; got != 3 {
		t.Fatalf("hydro/PQ = %d, want 3", got)
	}
	if got := w.Queries["roads"]["window"]; got != 1 {
		t.Fatalf("roads/window = %d, want 1", got)
	}
}
