package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"unijoin"
	"unijoin/client"
)

// maxBodyBytes bounds request bodies; join/window requests are tiny.
const maxBodyBytes = 1 << 20

// maxParallelism caps the per-request worker count: the parallel
// engine sizes partition structures from it, so an unclamped request
// value would let one client allocate the service to death. 256
// workers is far past any host this serves.
const maxParallelism = 256

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

func (s *Server) handleRelations(w http.ResponseWriter, r *http.Request) {
	names := s.cat.Names()
	out := make([]client.RelationInfo, 0, len(names))
	for _, name := range names {
		rel, ok := s.cat.Get(name)
		if !ok { // dropped between Names and Get
			continue
		}
		out = append(out, relationInfo(name, rel))
	}
	writeJSON(w, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	s.metrics.joins.Add(1)
	var req client.JoinRequest
	if apiErr := decodeBody(w, r, &req); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	left, ok := s.cat.Get(req.Left)
	if !ok {
		writeError(w, notFoundErr("left", req.Left))
		return
	}
	right, ok := s.cat.Get(req.Right)
	if !ok {
		writeError(w, notFoundErr("right", req.Right))
		return
	}
	alg, err := unijoin.ParseAlgorithm(req.Algorithm)
	if err != nil {
		writeError(w, badRequestErr(err))
		return
	}
	ctx, cancel := requestContext(r, req.TimeoutMillis)
	defer cancel()

	parallelism := min(max(req.Parallelism, 0), maxParallelism)
	q := s.cat.Workspace().Query(left, right).Algorithm(alg).Parallelism(parallelism)
	if req.Window != nil {
		q.Window(toRect(*req.Window))
	}
	lw := newLineWriter(w)
	var pairs [][2]uint32
	if req.CountOnly {
		q.CountOnly()
	} else {
		pairs = make([][2]uint32, 0, s.batch)
		q.EmitBatch(func(batch []unijoin.Pair) {
			for len(batch) > 0 {
				n := min(len(batch), s.batch-len(pairs))
				for _, p := range batch[:n] {
					pairs = append(pairs, [2]uint32{p.Left, p.Right})
				}
				batch = batch[n:]
				if len(pairs) == s.batch {
					s.metrics.pairsStreamed.Add(int64(len(pairs)))
					lw.writeLine(client.JoinLine{Pairs: pairs})
					pairs = pairs[:0]
				}
			}
		})
	}
	start := time.Now()
	res, err := q.Run(ctx)
	if err != nil {
		s.finishError(lw, err, func(e *client.APIError) any { return client.JoinLine{Error: e} })
		return
	}
	if len(pairs) > 0 {
		s.metrics.pairsStreamed.Add(int64(len(pairs)))
		lw.writeLine(client.JoinLine{Pairs: pairs})
	}
	lw.writeLine(client.JoinLine{Summary: joinSummary(req, alg, left, right, res, start)})
}

func (s *Server) handleWindow(w http.ResponseWriter, r *http.Request) {
	s.metrics.windows.Add(1)
	var req client.WindowRequest
	if apiErr := decodeBody(w, r, &req); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	rel, ok := s.cat.Get(req.Relation)
	if !ok {
		writeError(w, notFoundErr("relation", req.Relation))
		return
	}
	if req.Window == nil {
		writeError(w, badRequestErr(fmt.Errorf("window query needs a \"window\" rectangle")))
		return
	}
	ctx, cancel := requestContext(r, req.TimeoutMillis)
	defer cancel()

	lw := newLineWriter(w)
	var emit func(unijoin.Record)
	var recs []client.RecordOut
	if !req.CountOnly {
		recs = make([]client.RecordOut, 0, s.batch)
		emit = func(rec unijoin.Record) {
			recs = append(recs, client.RecordOut{ID: rec.ID, Rect: fromRect(rec.Rect)})
			if len(recs) == s.batch {
				s.metrics.recordsStreamed.Add(int64(len(recs)))
				lw.writeLine(client.WindowLine{Records: recs})
				recs = recs[:0]
			}
		}
	}
	start := time.Now()
	n, err := rel.WindowQuery(ctx, toRect(*req.Window), emit)
	if err != nil {
		s.finishError(lw, err, func(e *client.APIError) any { return client.WindowLine{Error: e} })
		return
	}
	if len(recs) > 0 {
		s.metrics.recordsStreamed.Add(int64(len(recs)))
		lw.writeLine(client.WindowLine{Records: recs})
	}
	lw.writeLine(client.WindowLine{Summary: &client.WindowSummary{
		Relation:      req.Relation,
		Records:       n,
		Indexed:       rel.Indexed(),
		ElapsedMillis: float64(time.Since(start).Microseconds()) / 1000,
	}})
}

// requestContext narrows the request's context (which already carries
// the middleware's server-side ceiling and the client-disconnect
// signal) by the request body's own timeout, if any.
func requestContext(r *http.Request, timeoutMillis int64) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if timeoutMillis > 0 {
		return context.WithTimeout(ctx, time.Duration(timeoutMillis)*time.Millisecond)
	}
	return context.WithCancel(ctx)
}

// joinSummary assembles the terminal line of a join response.
func joinSummary(req client.JoinRequest, alg unijoin.Algorithm, left, right *unijoin.Relation, res *unijoin.Results, start time.Time) *client.JoinSummary {
	return &client.JoinSummary{
		Left:          req.Left,
		Right:         req.Right,
		Algorithm:     alg.String(),
		Pairs:         res.Count(),
		LeftRecords:   left.Len(),
		RightRecords:  right.Len(),
		ElapsedMillis: float64(time.Since(start).Microseconds()) / 1000,
	}
}

// relationInfo maps a cataloged relation to its wire description. An
// empty relation's MBR is the invalid ±Inf rectangle, which JSON
// cannot carry — it is reported as the zero rectangle instead.
func relationInfo(name string, rel *unijoin.Relation) client.RelationInfo {
	info := client.RelationInfo{
		Name:       name,
		Records:    rel.Len(),
		Indexed:    rel.Indexed(),
		DataBytes:  rel.DataBytes(),
		IndexBytes: rel.IndexBytes(),
	}
	if mbr := rel.MBR(); mbr.Valid() {
		info.MBR = fromRect(mbr)
	}
	return info
}

// finishError reports a failed query: as a proper HTTP status when
// nothing has been streamed yet, or as a terminal error line when the
// response is already under way (the status line is long gone by
// then). Cancellations are counted separately — they are load
// shedding, not bugs.
func (s *Server) finishError(lw *lineWriter, err error, wrap func(*client.APIError) any) {
	apiErr := errorFor(err)
	if apiErr.Code == client.CodeCanceled {
		s.metrics.canceled.Add(1)
	}
	if !lw.started {
		writeError(lw.w, apiErr) // the middleware counts non-canceled statuses
		return
	}
	if apiErr.Code != client.CodeCanceled {
		s.metrics.errors.Add(1)
	}
	lw.writeLine(wrap(apiErr))
}

// errorFor classifies a query error into the API's error space.
func errorFor(err error) *client.APIError {
	switch {
	case errors.Is(err, unijoin.ErrCanceled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return &client.APIError{
			Status: http.StatusGatewayTimeout, Code: client.CodeCanceled,
			Message: err.Error(),
		}
	case errors.Is(err, unijoin.ErrNeedsIndex):
		return &client.APIError{
			Status: http.StatusUnprocessableEntity, Code: client.CodeNeedsIndex,
			Message: err.Error(),
		}
	case errors.Is(err, unijoin.ErrNilRelation):
		return &client.APIError{
			Status: http.StatusNotFound, Code: client.CodeNotFound,
			Message: err.Error(),
		}
	default:
		return &client.APIError{
			Status: http.StatusInternalServerError, Code: client.CodeInternal,
			Message: err.Error(),
		}
	}
}

// notFoundErr is the unknown-relation error.
func notFoundErr(side, name string) *client.APIError {
	return &client.APIError{
		Status: http.StatusNotFound, Code: client.CodeNotFound,
		Message: fmt.Sprintf("%s relation %q is not in the catalog", side, name),
	}
}

// badRequestErr wraps a request-shape problem.
func badRequestErr(err error) *client.APIError {
	return &client.APIError{
		Status: http.StatusBadRequest, Code: client.CodeBadRequest,
		Message: err.Error(),
	}
}

// decodeBody parses a JSON request body, returning an API error for
// anything malformed.
func decodeBody(w http.ResponseWriter, r *http.Request, into any) *client.APIError {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return badRequestErr(fmt.Errorf("bad request body: %w", err))
	}
	return nil
}

// lineWriter emits NDJSON lines, flushing each one so clients see
// results as they are produced. started flips once any bytes have
// reached the client — the point of no return for the status code.
// Write failures (a vanished client) are swallowed: the query itself
// is aborted separately through the request context.
type lineWriter struct {
	w       http.ResponseWriter
	flusher http.Flusher
	started bool
}

func newLineWriter(w http.ResponseWriter) *lineWriter {
	f, _ := w.(http.Flusher)
	return &lineWriter{w: w, flusher: f}
}

func (lw *lineWriter) writeLine(v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	if !lw.started {
		lw.w.Header().Set("Content-Type", "application/x-ndjson")
		lw.started = true
	}
	lw.w.Write(append(data, '\n'))
	if lw.flusher != nil {
		lw.flusher.Flush()
	}
}

// writeJSON sends a 200 with a plain JSON body, marshaling before any
// byte is written so an unmarshalable value becomes a 500 rather
// than a silently truncated 200.
func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		writeError(w, &client.APIError{
			Status: http.StatusInternalServerError, Code: client.CodeInternal,
			Message: "encoding response: " + err.Error(),
		})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

// writeError sends a non-2xx JSON error body ({"error": {...}}).
func writeError(w http.ResponseWriter, e *client.APIError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.Status)
	json.NewEncoder(w).Encode(map[string]*client.APIError{"error": e})
}

// toRect converts a wire rectangle to a normalized unijoin.Rect.
func toRect(r client.Rect) unijoin.Rect {
	return unijoin.NewRect(
		unijoin.Coord(r.XLo), unijoin.Coord(r.YLo),
		unijoin.Coord(r.XHi), unijoin.Coord(r.YHi),
	)
}

// fromRect converts a unijoin.Rect to its wire form.
func fromRect(r unijoin.Rect) client.Rect {
	return client.Rect{
		XLo: float64(r.XLo), YLo: float64(r.YLo),
		XHi: float64(r.XHi), YHi: float64(r.YHi),
	}
}
