package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"time"

	"unijoin"
	"unijoin/client"
	"unijoin/internal/httpapi"
	"unijoin/internal/wire"
)

// maxParallelism caps the per-request worker count: the parallel
// engine sizes partition structures from it, so an unclamped request
// value would let one client allocate the service to death. 256
// workers is far past any host this serves.
const maxParallelism = 256

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	httpapi.WriteJSON(w, map[string]string{"status": "ok"})
}

func (s *Server) handleRelations(w http.ResponseWriter, r *http.Request) {
	names := s.cat.Names()
	stripe := s.stripeDTO()
	out := make([]client.RelationInfo, 0, len(names))
	for _, name := range names {
		rel, ok := s.cat.Get(name)
		if !ok { // dropped between Names and Get
			continue
		}
		info := relationInfo(name, rel)
		info.Stripe = stripe
		out = append(out, info)
	}
	httpapi.WriteJSON(w, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	httpapi.WriteJSON(w, s.Stats())
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	s.metrics.joins.Inc()
	var req client.JoinRequest
	if apiErr := httpapi.DecodeBody(w, r, &req); apiErr != nil {
		httpapi.WriteError(w, apiErr)
		return
	}
	left, ok := s.cat.Get(req.Left)
	if !ok {
		httpapi.WriteError(w, notFoundErr("left", req.Left))
		return
	}
	right, ok := s.cat.Get(req.Right)
	if !ok {
		httpapi.WriteError(w, notFoundErr("right", req.Right))
		return
	}
	alg, err := unijoin.ParseAlgorithm(req.Algorithm)
	if err != nil {
		httpapi.WriteError(w, badRequestErr(err))
		return
	}
	// The workload recorder sees every accepted query: the relation
	// names are catalog-validated above and the algorithm comes from
	// the parsed set, so both are bounded label values.
	s.workload.ObserveQuery(req.Left, alg.String())
	s.workload.ObserveQuery(req.Right, alg.String())
	if req.Window != nil {
		s.workload.ObserveWindow(req.Window.XLo, req.Window.XHi)
	} else {
		s.workload.ObserveUnwindowed()
	}
	ctx, cancel := requestContext(r, req.TimeoutMillis)
	defer cancel()

	// In stripe mode every emitted pair pays the shard ownership
	// test — the reference-point rule that makes a fleet's summed
	// answers exactly the single-process result — so even count-only
	// joins must see the pairs: kernel counting would count pairs
	// this shard does not own.
	binary := wire.Negotiates(r)
	var lw *httpapi.LineWriter
	var fs *httpapi.FrameWriter
	if binary {
		fs = s.newFrameStream(w)
		defer fs.Close()
	} else {
		lw = httpapi.NewLineWriter(w)
		defer lw.Close()
	}
	// flushPairs streams one batch on whichever transport was
	// negotiated, accumulating the stream phase: wall time spent
	// encoding and flushing (all writes happen on this goroutine —
	// EmitBatch callbacks run synchronously).
	var streamTime time.Duration
	flushPairs := func(batch [][2]uint32) {
		s.metrics.pairsStreamed.Add(int64(len(batch)))
		t0 := time.Now()
		if binary {
			fs.WritePairs(batch)
		} else {
			lw.WriteLine(client.JoinLine{Pairs: batch})
		}
		streamTime += time.Since(t0)
	}
	var ownsPair func(l, rr uint32) bool
	if s.stripe != nil {
		leftXLo, apiErr := s.xloTable(ctx, left)
		if apiErr != nil {
			httpapi.WriteError(w, apiErr)
			return
		}
		rightXLo, apiErr := s.xloTable(ctx, right)
		if apiErr != nil {
			httpapi.WriteError(w, apiErr)
			return
		}
		// A lookup miss means the join pinned an epoch newer than the
		// cached table (records appended between the table fetch and
		// Run). Records are append-only, so rebuilding at the current
		// epoch — a superset of every pinned version — resolves the ID
		// exactly; the EmitBatch callbacks run on this goroutine, so
		// swapping the table handle is race-free.
		lookup := func(table **xloLookup, rel *unijoin.Relation, id uint32) (unijoin.Coord, bool) {
			if x, ok := (*table).get(id); ok {
				return x, true
			}
			fresh, apiErr := s.xloTable(ctx, rel)
			if apiErr != nil {
				return 0, false
			}
			*table = fresh
			return fresh.get(id)
		}
		ownsPair = func(l, rr uint32) bool {
			lx, ok := lookup(&leftXLo, left, l)
			if !ok {
				return false
			}
			rx, ok := lookup(&rightXLo, right, rr)
			if !ok {
				return false
			}
			return s.stripe.OwnsPair(lx, rx)
		}
	}

	parallelism := min(max(req.Parallelism, 0), maxParallelism)
	q := s.cat.Workspace().Query(left, right).Algorithm(alg).Parallelism(parallelism)
	if req.Window != nil {
		q.Window(toRect(*req.Window))
	}
	var owned int64
	var pairs [][2]uint32
	if req.CountOnly && ownsPair == nil {
		q.CountOnly()
	} else {
		if !req.CountOnly {
			pairs = make([][2]uint32, 0, s.batch)
		}
		q.EmitBatch(func(batch []unijoin.Pair) {
			for _, p := range batch {
				if ownsPair != nil && !ownsPair(p.Left, p.Right) {
					continue
				}
				owned++
				if req.CountOnly {
					continue
				}
				pairs = append(pairs, [2]uint32{p.Left, p.Right})
				if len(pairs) == s.batch {
					flushPairs(pairs)
					pairs = pairs[:0]
				}
			}
		})
	}
	start := time.Now()
	res, err := q.Run(ctx)
	if err != nil {
		if binary {
			s.finishErrorFrames(fs, err)
		} else {
			s.finishError(lw, err, func(e *client.APIError) any { return client.JoinLine{Error: e} })
		}
		return
	}
	if len(pairs) > 0 {
		flushPairs(pairs)
	}
	elapsed := time.Since(start)
	count := res.Count()
	if ownsPair != nil {
		count = owned
	}
	phases := phaseSeconds{
		partition: res.PartitionWall.Seconds(),
		sweep:     res.SweepWall.Seconds(),
		stream:    streamTime.Seconds(),
	}
	s.metrics.observeJoin(alg.String(), elapsed.Seconds(), phases)
	sum := joinSummary(req, alg, left, right, count, elapsed)
	root := joinSpan(start, elapsed, res.PartitionWall, res.SweepWall, streamTime)
	root.SetAttr("left", req.Left).SetAttr("right", req.Right).
		SetAttr("algorithm", alg.String())
	s.recordTrace(r, "join", root)
	if req.Trace {
		sum.Trace = &client.PhaseTrace{
			PartitionMillis: phases.partition * 1000,
			SweepMillis:     phases.sweep * 1000,
			StreamMillis:    phases.stream * 1000,
		}
		sum.Spans = httpapi.SpanDTO(root)
	}
	if binary {
		fs.WriteSummary(sum)
		fs.End()
	} else {
		lw.WriteLine(client.JoinLine{Summary: sum})
	}
}

// xloLookup maps record IDs to left edges for the ownership test.
// Every built-in generator and sjgen assigns dense 0..n-1 IDs, so the
// common representation is a slice indexed by ID — two orders cheaper
// per lookup than map hashing in the per-pair hot loop; absent IDs
// hold a NaN marker so a hole reads as a miss, not a zero edge.
// Sparse ID spaces (arbitrary -load files) fall back to a map. The
// table is stamped with the relation's epoch at build time: an append
// or compaction bumps the epoch and so invalidates the cache entry,
// which is how the table tracks a live-ingesting relation.
type xloLookup struct {
	epoch  int64
	dense  []unijoin.Coord
	sparse map[uint32]unijoin.Coord
}

func (l *xloLookup) get(id uint32) (unijoin.Coord, bool) {
	if l.dense != nil {
		if int64(id) < int64(len(l.dense)) {
			x := l.dense[id]
			if x == x { // not the NaN hole marker
				return x, true
			}
		}
		return 0, false
	}
	x, ok := l.sparse[id]
	return x, ok
}

// xloTable returns the relation's ID → left-edge lookup for its
// current epoch, rebuilding when the cached table is stale (the
// relation was appended to or compacted) by scanning the relation.
// The epoch stamp is read before the scan, so it never overstates
// what the table contains. Building a table also evicts cached tables
// whose relation has been dropped or reloaded out of the catalog, so
// repeated Drop+Load cycles on a long-lived embedded server cannot
// accumulate orphaned tables.
func (s *Server) xloTable(ctx context.Context, rel *unijoin.Relation) (*xloLookup, *client.APIError) {
	// One pin serves the epoch stamp, the size hint, and the scan, so
	// the cached table can never mix epochs.
	pv := rel.Pin()
	epoch := pv.Epoch()
	if v, ok := s.xlo.Load(rel); ok {
		if t := v.(*xloLookup); t.epoch == epoch {
			return t, nil
		}
	}
	s.xlo.Range(func(key, _ any) bool {
		old := key.(*unijoin.Relation)
		if cur, ok := s.cat.Get(old.Name()); !ok || cur != old {
			s.xlo.Delete(key)
		}
		return true
	})
	type entry struct {
		id  uint32
		xlo unijoin.Coord
	}
	entries := make([]entry, 0, pv.Len())
	maxID := uint32(0)
	if mbr := pv.MBR(); mbr.Valid() {
		if _, err := pv.WindowQuery(ctx, mbr, func(rec unijoin.Record) {
			entries = append(entries, entry{rec.ID, rec.Rect.XLo})
			if rec.ID > maxID {
				maxID = rec.ID
			}
		}); err != nil {
			return nil, errorFor(err)
		}
	}
	table := &xloLookup{epoch: epoch}
	if len(entries) > 0 && int64(maxID) < 2*int64(len(entries)) {
		table.dense = make([]unijoin.Coord, maxID+1)
		nan := unijoin.Coord(math.NaN())
		for i := range table.dense {
			table.dense[i] = nan
		}
		for _, e := range entries {
			table.dense[e.id] = e.xlo
		}
	} else {
		table.sparse = make(map[uint32]unijoin.Coord, len(entries))
		for _, e := range entries {
			table.sparse[e.id] = e.xlo
		}
	}
	s.xlo.Store(rel, table)
	return table, nil
}

func (s *Server) handleWindow(w http.ResponseWriter, r *http.Request) {
	s.metrics.windows.Inc()
	var req client.WindowRequest
	if apiErr := httpapi.DecodeBody(w, r, &req); apiErr != nil {
		httpapi.WriteError(w, apiErr)
		return
	}
	rel, ok := s.cat.Get(req.Relation)
	if !ok {
		httpapi.WriteError(w, notFoundErr("relation", req.Relation))
		return
	}
	if req.Window == nil {
		httpapi.WriteError(w, badRequestErr(fmt.Errorf("window query needs a \"window\" rectangle")))
		return
	}
	// Window queries always carry a rectangle, so they always feed the
	// x-histogram; the relation name is catalog-validated above.
	s.workload.ObserveQuery(req.Relation, "window")
	s.workload.ObserveWindow(req.Window.XLo, req.Window.XHi)
	ctx, cancel := requestContext(r, req.TimeoutMillis)
	defer cancel()
	// Pin once: the scan and the summary's Indexed field must describe
	// the same epoch.
	pv := rel.Pin()

	// In stripe mode only records whose left edge falls in the
	// stripe are reported — each record is owned by exactly one
	// shard, so a router's merged stream has no replicated
	// boundary-record duplicates — and the count must come from the
	// filtered emit path rather than WindowQuery's total.
	binary := wire.Negotiates(r)
	var lw *httpapi.LineWriter
	var fs *httpapi.FrameWriter
	if binary {
		fs = s.newFrameStream(w)
		defer fs.Close()
	} else {
		lw = httpapi.NewLineWriter(w)
		defer lw.Close()
	}
	var owned int64
	var emit func(unijoin.Record)
	// Records accumulate in the kernel's own representation; the
	// NDJSON transport converts per batch (into a reused buffer), the
	// binary transport packs them directly — no float64 detour.
	var recs []unijoin.Record
	var out []client.RecordOut
	var streamTime time.Duration
	flushRecs := func() {
		s.metrics.recordsStreamed.Add(int64(len(recs)))
		t0 := time.Now()
		if binary {
			fs.WriteRecords(recs)
		} else {
			out = out[:0]
			for _, rec := range recs {
				out = append(out, client.RecordOut{ID: rec.ID, Rect: fromRect(rec.Rect)})
			}
			lw.WriteLine(client.WindowLine{Records: out})
		}
		streamTime += time.Since(t0)
		recs = recs[:0]
	}
	if !req.CountOnly || s.stripe != nil {
		if !req.CountOnly {
			recs = make([]unijoin.Record, 0, s.batch)
		}
		emit = func(rec unijoin.Record) {
			if s.stripe != nil && !s.stripe.OwnsRecord(rec.Rect) {
				return
			}
			owned++
			if req.CountOnly {
				return
			}
			recs = append(recs, rec)
			if len(recs) == s.batch {
				flushRecs()
			}
		}
	}
	start := time.Now()
	n, err := pv.WindowQuery(ctx, toRect(*req.Window), emit)
	if err != nil {
		if binary {
			s.finishErrorFrames(fs, err)
		} else {
			s.finishError(lw, err, func(e *client.APIError) any { return client.WindowLine{Error: e} })
		}
		return
	}
	if len(recs) > 0 {
		flushRecs()
	}
	if s.stripe != nil {
		n = owned
	}
	elapsed := time.Since(start)
	root := windowSpan(start, elapsed, streamTime)
	root.SetAttr("relation", req.Relation)
	s.recordTrace(r, "window", root)
	sum := &client.WindowSummary{
		Relation:      req.Relation,
		Records:       n,
		Indexed:       pv.Indexed(),
		ElapsedMillis: float64(elapsed.Microseconds()) / 1000,
	}
	if binary {
		fs.WriteSummary(sum)
		fs.End()
	} else {
		lw.WriteLine(client.WindowLine{Summary: sum})
	}
}

// requestContext narrows the request's context (which already carries
// the middleware's server-side ceiling and the client-disconnect
// signal) by the request body's own timeout, if any.
func requestContext(r *http.Request, timeoutMillis int64) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if timeoutMillis > 0 {
		return context.WithTimeout(ctx, time.Duration(timeoutMillis)*time.Millisecond)
	}
	return context.WithCancel(ctx)
}

// joinSummary assembles the terminal line of a join response.
func joinSummary(req client.JoinRequest, alg unijoin.Algorithm, left, right *unijoin.Relation, pairs int64, elapsed time.Duration) *client.JoinSummary {
	return &client.JoinSummary{
		Left:          req.Left,
		Right:         req.Right,
		Algorithm:     alg.String(),
		Pairs:         pairs,
		LeftRecords:   left.Len(),
		RightRecords:  right.Len(),
		ElapsedMillis: float64(elapsed.Microseconds()) / 1000,
	}
}

// relationInfo maps a cataloged relation to its wire description. An
// empty relation's MBR is the invalid ±Inf rectangle, which JSON
// cannot carry — it is reported as the zero rectangle instead.
func relationInfo(name string, rel *unijoin.Relation) client.RelationInfo {
	pv := rel.Pin()
	info := client.RelationInfo{
		Name:       name,
		Records:    pv.Len(),
		Indexed:    pv.Indexed(),
		DataBytes:  pv.DataBytes(),
		IndexBytes: pv.IndexBytes(),
	}
	if mbr := pv.MBR(); mbr.Valid() {
		info.MBR = fromRect(mbr)
	}
	return info
}

// finishError reports a failed query: as a proper HTTP status when
// nothing has been streamed yet, or as a terminal error line when the
// response is already under way (the status line is long gone by
// then). Cancellations are counted separately — they are load
// shedding, not bugs.
func (s *Server) finishError(lw *httpapi.LineWriter, err error, wrap func(*client.APIError) any) {
	apiErr := errorFor(err)
	if apiErr.Code == client.CodeCanceled {
		s.metrics.canceled.Inc()
	}
	if !lw.Started() {
		httpapi.WriteError(lw.ResponseWriter(), apiErr) // the middleware counts non-canceled statuses
		return
	}
	if apiErr.Code != client.CodeCanceled {
		s.metrics.errors.Inc()
	}
	lw.WriteLine(wrap(apiErr))
}

// errorFor classifies a query error into the API's error space.
func errorFor(err error) *client.APIError {
	switch {
	case errors.Is(err, unijoin.ErrCanceled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return &client.APIError{
			Status: http.StatusGatewayTimeout, Code: client.CodeCanceled,
			Message: err.Error(),
		}
	case errors.Is(err, unijoin.ErrNeedsIndex):
		return &client.APIError{
			Status: http.StatusUnprocessableEntity, Code: client.CodeNeedsIndex,
			Message: err.Error(),
		}
	case errors.Is(err, unijoin.ErrNilRelation):
		return &client.APIError{
			Status: http.StatusNotFound, Code: client.CodeNotFound,
			Message: err.Error(),
		}
	default:
		return &client.APIError{
			Status: http.StatusInternalServerError, Code: client.CodeInternal,
			Message: err.Error(),
		}
	}
}

// notFoundErr is the unknown-relation error.
func notFoundErr(side, name string) *client.APIError {
	return &client.APIError{
		Status: http.StatusNotFound, Code: client.CodeNotFound,
		Message: fmt.Sprintf("%s relation %q is not in the catalog", side, name),
	}
}

// badRequestErr wraps a request-shape problem.
func badRequestErr(err error) *client.APIError {
	return &client.APIError{
		Status: http.StatusBadRequest, Code: client.CodeBadRequest,
		Message: err.Error(),
	}
}

// toRect converts a wire rectangle to a normalized unijoin.Rect.
func toRect(r client.Rect) unijoin.Rect {
	return unijoin.NewRect(
		unijoin.Coord(r.XLo), unijoin.Coord(r.YLo),
		unijoin.Coord(r.XHi), unijoin.Coord(r.YHi),
	)
}

// fromRect converts a unijoin.Rect to its wire form.
func fromRect(r unijoin.Rect) client.Rect {
	return client.Rect{
		XLo: float64(r.XLo), YLo: float64(r.YLo),
		XHi: float64(r.XHi), YHi: float64(r.YHi),
	}
}
