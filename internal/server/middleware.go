package server

import (
	"context"
	"net/http"
	"time"
)

// statusRecorder captures the status code a handler sends so the
// logging middleware can report it. It forwards Flush so streaming
// handlers keep working through the wrapper.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(p)
}

// Flush implements http.Flusher when the underlying writer does.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument is the logging + metrics middleware: it counts the
// request in and out and logs one line with the endpoint, status, and
// wall time.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.requests.Add(1)
		s.metrics.inFlight.Add(1)
		defer s.metrics.inFlight.Add(-1)
		rec := &statusRecorder{ResponseWriter: w}
		h(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		// Cancellations (504) are tallied in metrics.canceled by the
		// handler — load shedding, not failures — so the errors
		// counter stays alertable.
		if rec.status >= 400 && rec.status != http.StatusGatewayTimeout {
			s.metrics.errors.Add(1)
		}
		s.log.Info("request",
			"endpoint", endpoint,
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"elapsed", time.Since(start).Round(time.Microsecond).String(),
		)
	})
}

// withTimeout applies the server's per-request timeout ceiling to the
// request context. The context already carries the client-disconnect
// signal (net/http cancels it when the peer goes away), so handlers
// see one context covering both ways a request can become pointless.
func (s *Server) withTimeout(h http.HandlerFunc) http.HandlerFunc {
	if s.timeout <= 0 {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()
		h(w, r.WithContext(ctx))
	}
}
