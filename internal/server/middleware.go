package server

import (
	"context"
	"net/http"
	"strconv"
	"time"

	"unijoin/internal/httpapi"
)

// instrument is the logging + metrics middleware: it ensures a
// request ID (honoring one sent by a router upstream), counts the
// request into the per-endpoint/per-status counter and latency
// histogram, and logs one line with the endpoint, status, wall time,
// and request ID.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := httpapi.EnsureRequestID(r)
		w.Header().Set(httpapi.RequestIDHeader, rid)
		s.metrics.inFlight.Add(1)
		defer s.metrics.inFlight.Add(-1)
		rec := &httpapi.StatusRecorder{ResponseWriter: w}
		h(rec, r.WithContext(withRequestID(r.Context(), rid)))
		status := rec.Status()
		elapsed := time.Since(start)
		s.metrics.requests.With(endpoint, strconv.Itoa(status)).Inc()
		s.metrics.latency.With(endpoint).Observe(elapsed.Seconds())
		// Cancellations (504) are tallied in metrics.canceled by the
		// handler — load shedding, not failures — so the errors
		// counter stays alertable.
		if status >= 400 && status != http.StatusGatewayTimeout {
			s.metrics.errors.Inc()
		}
		s.log.Info("request",
			"endpoint", endpoint,
			"method", r.Method,
			"path", r.URL.Path,
			"status", status,
			"elapsed", elapsed.Round(time.Microsecond).String(),
			"request_id", rid,
		)
	})
}

// ridKey carries the request ID through the handler's context, so the
// join path can stamp traces and future log lines with it.
type ridKey struct{}

func withRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ridKey{}, id)
}

// requestIDFrom returns the request ID the middleware stored, or "".
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

// withTimeout applies the server's per-request timeout ceiling to the
// request context. The context already carries the client-disconnect
// signal (net/http cancels it when the peer goes away), so handlers
// see one context covering both ways a request can become pointless.
func (s *Server) withTimeout(h http.HandlerFunc) http.HandlerFunc {
	if s.timeout <= 0 {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()
		h(w, r.WithContext(ctx))
	}
}
