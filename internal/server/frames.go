package server

import (
	"net/http"

	"unijoin/client"
	"unijoin/internal/httpapi"
	"unijoin/internal/wire"
)

// newFrameStream wraps a response writer for binary frame streaming
// with the server's frame metrics attached.
func (s *Server) newFrameStream(w http.ResponseWriter) *httpapi.FrameWriter {
	return httpapi.NewFrameWriter(w, func(t wire.Type, frames, bytes int64) {
		s.metrics.frames.With(t.String()).Add(frames)
		s.metrics.frameBytes.With(t.String()).Add(bytes)
	})
}

// finishErrorFrames is finishError for the binary transport: a proper
// HTTP status while nothing has streamed, a terminal ERROR frame plus
// END once frames are under way.
func (s *Server) finishErrorFrames(fs *httpapi.FrameWriter, err error) {
	apiErr := errorFor(err)
	if apiErr.Code == client.CodeCanceled {
		s.metrics.canceled.Inc()
	}
	if !fs.Started() {
		httpapi.WriteError(fs.ResponseWriter(), apiErr) // the middleware counts non-canceled statuses
		return
	}
	if apiErr.Code != client.CodeCanceled {
		s.metrics.errors.Inc()
	}
	fs.WriteError(apiErr)
	fs.End()
}
