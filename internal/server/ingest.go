package server

import (
	"fmt"
	"net/http"
	"time"

	"unijoin"
	"unijoin/client"
	"unijoin/internal/httpapi"
)

// maxAppendBodyBytes bounds one append request body. Bulk loads
// beyond this stream as several requests; at ~60 bytes per NDJSON
// record line the cap still admits ~4M records per call.
const maxAppendBodyBytes = 256 << 20

// handleAppend serves POST /v1/relations/{relation}/records: append
// records to a cataloged relation. The body is one JSON record
// object, a JSON array of them, or — with an NDJSON content type —
// one record per line (the bulk format sjgen -ndjson emits). The
// append is atomic: all records land in one new epoch, visible to
// every query started after the 200 response, invisible to queries
// already running. In stripe mode the shard keeps only the records
// overlapping its stripe, exactly the slice it would have loaded at
// startup, so a router fanning an append across a fleet reproduces
// the single-process state.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	s.metrics.appends.Inc()
	name := r.PathValue("relation")
	rel, ok := s.cat.Get(name)
	if !ok {
		httpapi.WriteError(w, notFoundErr("append", name))
		return
	}
	ins, err := client.ParseRecords(r.Header.Get("Content-Type"),
		http.MaxBytesReader(w, r.Body, maxAppendBodyBytes))
	if err != nil {
		httpapi.WriteError(w, badRequestErr(err))
		return
	}
	recs := make([]unijoin.Record, 0, len(ins))
	for i, in := range ins {
		rec := unijoin.Record{ID: unijoin.ID(in.ID), Rect: toRect(in.Rect)}
		if !rec.Rect.Valid() {
			httpapi.WriteError(w, badRequestErr(fmt.Errorf("record %d (id %d) has an invalid rectangle", i, in.ID)))
			return
		}
		recs = append(recs, rec)
	}
	if s.stripe != nil {
		kept := recs[:0]
		for _, rec := range recs {
			if s.stripe.Loads(rec.Rect) {
				kept = append(kept, rec)
			}
		}
		recs = kept
	}
	start := time.Now()
	res, aerr := rel.Append(recs)
	if aerr != nil {
		httpapi.WriteError(w, errorFor(aerr))
		return
	}
	delta := rel.DeltaRecords()
	//lint:bounded name is catalog-validated above; cardinality is the relation count
	s.metrics.observeIngest(name, int64(res.Appended), time.Since(start).Seconds(), res.Compacted, delta)
	httpapi.WriteJSON(w, client.AppendSummary{
		Relation:     name,
		Appended:     int64(res.Appended),
		Records:      res.Total,
		Epoch:        res.Epoch,
		DeltaRecords: delta,
		Compacted:    res.Compacted,
	})
}
