package lint

import (
	"go/ast"
	"go/types"
)

// labelSinkFact tags string parameters whose values end up as metric
// label values: the parameters of the exported obs API (CounterVec
// .With, GaugeVec.With, HistogramVec.With, EWMASet observations), and
// — transitively, via a per-package fixpoint over call graphs — the
// parameters of any function that forwards its own string parameter
// into a marked sink (internal/server's observe* helpers).
const labelSinkFact = "metriclabel.sink"

// MetricLabel checks the bounded-cardinality invariant of the
// observability layer (PR 6): every label value that reaches an
// internal/obs counter, gauge, histogram, or EWMA set must come from
// a bounded set — endpoint literals, shard names from static config,
// status-code classes. A label minted from unbounded input (request
// paths, user-supplied relation names, fmt.Sprintf of arbitrary data,
// error text) grows a fresh time series per distinct value and slowly
// OOMs the registry every scrape.
//
// The analyzer flags sink arguments that are tainted: built by
// fmt.Sprint*/fmt.Errorf, derived from *http.Request / url.URL data,
// or carrying err.Error() text. Values that are bounded for reasons
// the analyzer cannot see (a name validated against the catalog
// before use) are annotated at the call site:
//
//	m.ingestRecords.With(relation).Add(n) //lint:bounded relation is catalog-checked
//
// The annotation requires a non-empty justification.
var MetricLabel = &Analyzer{
	Name: "metriclabel",
	Doc: "metric label values must come from bounded sets (observability registry, PR 6)\n" +
		"Labels minted from request input, fmt.Sprintf of unbounded data, or error text\n" +
		"explode time-series cardinality. Annotate deliberate cases //lint:bounded <why>.",
	Run: runMetricLabel,
}

func runMetricLabel(pass *Pass) error {
	if pass.Pkg.Name() == "obs" {
		exportObsSinkFacts(pass)
		return nil
	}
	propagateSinkParams(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			tainted := taintedLocals(pass, fd.Body)
			checkLabelSinkCalls(pass, fd.Body, tainted)
		}
	}
	return nil
}

// obsTraceAPI names obs's tracing surface, excluded from sink
// marking: span names, attribute keys/values, and ring-buffer lookup
// IDs are not metric label values — traces live in a bounded ring
// buffer, so an unbounded string there cannot grow a time series the
// way a label can.
var obsTraceAPI = map[string]bool{
	"Span": true, "Trace": true, "TraceStore": true,
	"StartSpan": true, "NewSpanID": true,
}

// exportObsSinkFacts marks every string (or ...string / []string)
// parameter of obs's exported functions and methods as a label sink.
func exportObsSinkFacts(pass *Pass) {
	markSig := func(fn *types.Func) {
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return
		}
		params := sig.Params()
		for i := 0; i < params.Len(); i++ {
			p := params.At(i)
			if isStringish(p.Type()) {
				pass.Facts.Mark(labelSinkFact, p, "metric label value")
			}
		}
	}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() || obsTraceAPI[name] {
			continue
		}
		switch o := obj.(type) {
		case *types.Func:
			markSig(o)
		case *types.TypeName:
			named, ok := o.Type().(*types.Named)
			if !ok {
				continue
			}
			for i := 0; i < named.NumMethods(); i++ {
				if m := named.Method(i); m.Exported() {
					markSig(m)
				}
			}
		}
	}
}

// propagateSinkParams marks, to a fixpoint, parameters of functions in
// the current package that flow verbatim into an already-marked sink
// parameter — so s.metrics.observeIngest(name) is checked at the
// handler call site where the taint is visible.
func propagateSinkParams(pass *Pass) {
	for changed := true; changed; {
		changed = false
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				params := paramObjects(pass, fd)
				if len(params) == 0 {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					for i, arg := range call.Args {
						sinkParam := sinkParamFor(pass, call, i)
						if sinkParam == nil {
							continue
						}
						id, ok := ast.Unparen(arg).(*ast.Ident)
						if !ok {
							continue
						}
						obj := pass.Info.Uses[id]
						if obj == nil || !params[obj] {
							continue
						}
						if _, done := pass.Facts.Marked(labelSinkFact, obj); !done {
							pass.Facts.Mark(labelSinkFact, obj, "forwarded to a metric label sink")
							changed = true
						}
					}
					return true
				})
			}
		}
	}
}

// checkLabelSinkCalls flags tainted arguments at marked sink
// positions.
func checkLabelSinkCalls(pass *Pass, body *ast.BlockStmt, tainted map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for i, arg := range call.Args {
			if sinkParamFor(pass, call, i) == nil {
				continue
			}
			if isBoundedExpr(pass, arg) {
				continue
			}
			if !isTaintedExpr(pass, arg, tainted) {
				continue
			}
			found, justified := pass.Annotation(call.Pos(), "bounded")
			if found && justified {
				continue
			}
			if found {
				pass.Reportf(call.Pos(), "//lint:bounded annotation needs a justification after the marker")
				continue
			}
			pass.Reportf(arg.Pos(), "metric label value derived from unbounded input; every distinct value becomes a time series — label with a bounded set, or annotate //lint:bounded <why> if the value is validated upstream")
		}
		return true
	})
}

// sinkParamFor maps argument index i of call to the callee parameter
// it binds (variadic tail collapses onto the last parameter) and
// returns that parameter iff it is a marked label sink.
func sinkParamFor(pass *Pass, call *ast.CallExpr, i int) *types.Var {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return nil
	}
	idx := i
	if sig.Variadic() && idx >= sig.Params().Len()-1 {
		idx = sig.Params().Len() - 1
	}
	if idx >= sig.Params().Len() {
		return nil
	}
	p := sig.Params().At(idx)
	if _, marked := pass.Facts.Marked(labelSinkFact, p); !marked {
		return nil
	}
	return p
}

// paramObjects collects the parameter objects of fd.
func paramObjects(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := pass.Info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// taintedLocals runs a small fixpoint over the body's assignments and
// returns locals holding unbounded-input strings.
func taintedLocals(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	tainted := map[types.Object]bool{}
	for changed := true; changed; {
		changed = false
		mark := func(lhs ast.Expr, rhs ast.Expr) {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				return
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj == nil || tainted[obj] {
				return
			}
			if isTaintedExpr(pass, rhs, tainted) {
				tainted[obj] = true
				changed = true
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.AssignStmt:
				if len(stmt.Lhs) == len(stmt.Rhs) {
					for i := range stmt.Lhs {
						mark(stmt.Lhs[i], stmt.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(stmt.Names) == len(stmt.Values) {
					for i := range stmt.Names {
						mark(stmt.Names[i], stmt.Values[i])
					}
				}
			}
			return true
		})
	}
	return tainted
}

// isTaintedExpr reports whether expr carries unbounded input: a
// fmt.Sprint*/Errorf result, err.Error() text, request/URL-derived
// data, or a tainted local.
func isTaintedExpr(pass *Pass, expr ast.Expr, tainted map[types.Object]bool) bool {
	res := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if res {
			return false
		}
		switch e := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(pass, e)
			if fn != nil && fn.Pkg() != nil {
				switch fn.Pkg().Path() {
				case "fmt":
					switch fn.Name() {
					case "Sprint", "Sprintf", "Sprintln", "Errorf":
						res = true
						return false
					}
				case "strconv":
					// Numeric formatting is bounded enough (status codes,
					// shard counts); do not descend into its argument.
					return false
				}
			}
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Error" && len(e.Args) == 0 && isErrorExpr(pass, sel.X) {
				res = true
				return false
			}
		case *ast.Ident:
			obj := pass.Info.Uses[e]
			if obj == nil {
				return true
			}
			if tainted[obj] || isRequestDerivedType(obj.Type()) {
				res = true
				return false
			}
		}
		return true
	})
	return res
}

// isBoundedExpr matches values that are bounded by construction:
// constants and strconv formatting of numbers.
func isBoundedExpr(pass *Pass, expr ast.Expr) bool {
	if tv, ok := pass.Info.Types[expr]; ok && tv.Value != nil {
		return true
	}
	if call, ok := ast.Unparen(expr).(*ast.CallExpr); ok {
		if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "strconv" {
			return true
		}
	}
	return false
}

// isRequestDerivedType matches *http.Request / http.Request and
// url.URL — the roots of request-controlled data.
func isRequestDerivedType(t types.Type) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "net/http.Request", "net/url.URL", "net/http.Header":
		return true
	}
	return false
}

// isStringish matches string, []string, and ...string parameter
// types.
func isStringish(t types.Type) bool {
	if s, ok := t.Underlying().(*types.Slice); ok {
		t = s.Elem()
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
