package lint

import (
	"go/ast"
	"go/types"
)

// PoolReturn checks the pooled-buffer discipline behind the EmitBatch
// fast path (PR 2) and the wire frame encoder (PR 8): every
// pairbuf.Get() / pairbuf.NewBatcher() / wire.NewEncoder() acquisition
// must reach its release (pairbuf.Put, Batcher.Release, Encoder.Close)
// on some path in the acquiring function, or hand the value off —
// return it, store it into a field, slot, or pointer, or send it on a
// channel — to an owner that will. A buffer that is neither released
// nor handed off leaks from the pool and silently regresses the
// steady-state zero-allocation property the long-lived server relies
// on. The analyzer also flags straight-line use of a buffer after its
// Put/Release/Close — the pooled slice belongs to the next borrower
// from that point on.
//
// The pool-owning packages themselves (pairbuf, wire) are exempt.
var PoolReturn = &Analyzer{
	Name: "poolreturn",
	Doc: "pooled buffers must reach Put/Release/Close or escape to an owner (pooled emit path, PR 2/8)\n" +
		"pairbuf.Get/NewBatcher and wire.NewEncoder acquisitions leak from the pool when no path\n" +
		"releases them; using a buffer after returning it races with the next borrower.",
	Run: runPoolReturn,
}

// poolKind tells acquisitions and their release spellings apart.
type poolKind int

const (
	kindPairBuf poolKind = iota // pairbuf.Get -> pairbuf.Put(v)
	kindBatcher                 // pairbuf.NewBatcher -> v.Release()
	kindEncoder                 // wire.NewEncoder -> v.Close()
)

func (k poolKind) what() string {
	switch k {
	case kindPairBuf:
		return "pairbuf.Get buffer"
	case kindBatcher:
		return "pairbuf.Batcher"
	default:
		return "wire.Encoder"
	}
}

func (k poolKind) release() string {
	switch k {
	case kindPairBuf:
		return "pairbuf.Put"
	case kindBatcher:
		return "Release"
	default:
		return "Close"
	}
}

// poolAcq is one tracked acquisition bound to a local variable.
type poolAcq struct {
	kind     poolKind
	obj      types.Object
	call     *ast.CallExpr
	resolved bool // released or escaped somewhere in the body
}

func runPoolReturn(pass *Pass) error {
	switch pass.Pkg.Name() {
	case "pairbuf", "wire":
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkPoolFlow(pass, fd.Body)
			}
		}
	}
	return nil
}

// acquisitionKind matches a call that borrows from a pool.
func acquisitionKind(pass *Pass, call *ast.CallExpr) (poolKind, bool) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return 0, false
	}
	switch {
	case fn.Pkg().Name() == "pairbuf" && fn.Name() == "Get":
		return kindPairBuf, true
	case fn.Pkg().Name() == "pairbuf" && fn.Name() == "NewBatcher":
		return kindBatcher, true
	case fn.Pkg().Name() == "wire" && fn.Name() == "NewEncoder":
		return kindEncoder, true
	}
	return 0, false
}

// calleeFunc resolves a call's target *types.Func (nil for indirect
// calls and conversions).
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// checkPoolFlow analyzes one function body, nested closures included
// — they share the locals and routinely carry the release.
func checkPoolFlow(pass *Pass, body *ast.BlockStmt) {
	var acquisitions []*poolAcq
	byObj := map[types.Object][]*poolAcq{}

	// Pass 1: find acquisitions bound to locals; flag ones whose
	// result is discarded outright.
	ast.Inspect(body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			if call, ok := stmt.X.(*ast.CallExpr); ok {
				if kind, ok := acquisitionKind(pass, call); ok {
					pass.Reportf(call.Pos(), "result of the %s acquisition is discarded; the borrowed %s can never be returned to the pool",
						kind.what(), kind.what())
				}
			}
		case *ast.AssignStmt:
			if len(stmt.Lhs) != len(stmt.Rhs) {
				return true
			}
			for i, rhs := range stmt.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				kind, ok := acquisitionKind(pass, call)
				if !ok {
					continue
				}
				lhs, ok := stmt.Lhs[i].(*ast.Ident)
				if !ok {
					// Acquired straight into a field/slot: that is the
					// handoff form; the owner releases it.
					continue
				}
				if lhs.Name == "_" {
					pass.Reportf(call.Pos(), "%s acquisition assigned to _; the borrowed %s can never be returned to the pool",
						kind.what(), kind.what())
					continue
				}
				obj := pass.Info.Defs[lhs]
				if obj == nil {
					obj = pass.Info.Uses[lhs]
				}
				if obj == nil {
					continue
				}
				t := &poolAcq{kind: kind, obj: obj, call: call}
				acquisitions = append(acquisitions, t)
				byObj[obj] = append(byObj[obj], t)
			}
		}
		return true
	})
	if len(acquisitions) == 0 {
		return
	}

	resolveAs := func(obj types.Object, kinds ...poolKind) {
		for _, t := range byObj[obj] {
			for _, k := range kinds {
				if t.kind == k {
					t.resolved = true
				}
			}
		}
	}
	anyKind := []poolKind{kindPairBuf, kindBatcher, kindEncoder}
	markMentioned := func(expr ast.Expr) {
		ast.Inspect(expr, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil {
					if _, tracked := byObj[obj]; tracked {
						resolveAs(obj, anyKind...)
					}
				}
			}
			return true
		})
	}

	// Pass 2: find releases and escapes.
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if obj, kind, ok := releaseCall(pass, e); ok {
				resolveAs(obj, kind)
			}
		case *ast.ReturnStmt:
			for _, res := range e.Results {
				markMentioned(res)
			}
		case *ast.SendStmt:
			markMentioned(e.Value)
		case *ast.AssignStmt:
			// An assignment whose target is not a plain identifier
			// (field, slot, pointer deref, map entry) hands the value
			// to that owner.
			escapes := false
			for _, lhs := range e.Lhs {
				if _, ok := ast.Unparen(lhs).(*ast.Ident); !ok {
					escapes = true
				}
			}
			if escapes {
				for _, rhs := range e.Rhs {
					markMentioned(rhs)
				}
			}
		case *ast.CompositeLit:
			for _, elt := range e.Elts {
				markMentioned(elt)
			}
		}
		return true
	})

	for _, t := range acquisitions {
		if !t.resolved {
			pass.Reportf(t.call.Pos(), "%s acquired here but no path releases it with %s or hands it off (return/field/slot/channel); the pool leaks one buffer per call",
				t.kind.what(), t.kind.release())
		}
	}

	checkUseAfterRelease(pass, body, byObj)
}

// releaseCall matches `pairbuf.Put(v)` / `v.Release()` / `v.Close()`
// and returns the released object and which kind it releases.
func releaseCall(pass *Pass, call *ast.CallExpr) (types.Object, poolKind, bool) {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return nil, 0, false
	}
	if fn.Pkg() != nil && fn.Pkg().Name() == "pairbuf" && fn.Name() == "Put" && len(call.Args) == 1 {
		if obj := usedObject(pass, call.Args[0]); obj != nil {
			return obj, kindPairBuf, true
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj := usedObject(pass, sel.X); obj != nil {
			switch fn.Name() {
			case "Release":
				return obj, kindBatcher, true
			case "Close":
				return obj, kindEncoder, true
			}
		}
	}
	return nil, 0, false
}

// usedObject resolves an expression to the local object it denotes
// (ident, or &ident), or nil.
func usedObject(pass *Pass, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if obj := pass.Info.Uses[e]; obj != nil {
			return obj
		}
		return pass.Info.Defs[e]
	case *ast.UnaryExpr:
		return usedObject(pass, e.X)
	}
	return nil
}

// checkUseAfterRelease flags straight-line statements that read a
// tracked buffer after the statement that released it, within one
// block, until the variable is rebound.
func checkUseAfterRelease(pass *Pass, body *ast.BlockStmt, byObj map[types.Object][]*poolAcq) {
	var walkBlock func(b *ast.BlockStmt)
	walkBlock = func(b *ast.BlockStmt) {
		released := map[types.Object]poolKind{}
		for _, stmt := range b.List {
			// Nested blocks are their own straight-line sequences.
			ast.Inspect(stmt, func(n ast.Node) bool {
				if nb, ok := n.(*ast.BlockStmt); ok {
					walkBlock(nb)
					return false
				}
				return true
			})
			if len(released) > 0 {
				rebound := reboundObjects(pass, stmt)
				ast.Inspect(stmt, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok {
						return true
					}
					obj := pass.Info.Uses[id]
					if obj == nil {
						return true
					}
					if kind, wasReleased := released[obj]; wasReleased && !rebound[obj] {
						pass.Reportf(id.Pos(), "%q is used after its %s; the pooled %s may already belong to the next borrower",
							id.Name, kind.release(), kind.what())
					}
					return true
				})
				for obj := range rebound {
					delete(released, obj)
				}
			}
			// Only whole-statement releases poison the fall-through;
			// conditional releases inside the statement do not.
			if es, ok := stmt.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if obj, kind, ok := releaseCall(pass, call); ok {
						if _, tracked := byObj[obj]; tracked {
							released[obj] = kind
						}
					}
				}
			}
		}
	}
	walkBlock(body)
}

// reboundObjects returns objects newly assigned by stmt (a rebound
// buffer variable is live again).
func reboundObjects(pass *Pass, stmt ast.Stmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	if as, ok := stmt.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil {
					out[obj] = true
				} else if obj := pass.Info.Defs[id]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	return out
}
