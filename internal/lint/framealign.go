package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FrameAlign checks the binary frame-layout invariants of the wire
// transport (PR 8) wherever frames are built or consumed (the wire
// package and every package importing it):
//
//   - payload-size arithmetic over byte slices (len(p) % n, len(p) / n,
//     len(batch) * n) must use the shared geom.PairSize (8) and
//     geom.RecordSize (20) constants, never the bare literals — the
//     8-/20-byte atoms are a cross-package contract, and a literal
//     silently goes stale if the record layout ever changes;
//   - payload-bound comparisons must use wire.MaxPayload, not an
//     inline 1<<20 / 1048576 expression, for the same reason;
//   - raw frame headers must be indexed through the named offset
//     constants (wire.OffVersion, OffType, OffLen, OffCRC,
//     HeaderSize), not bare numeric offsets.
//
// geom itself (the definition site of the record layout) is exempt,
// as are packages that never touch the wire format.
var FrameAlign = &Analyzer{
	Name: "framealign",
	Doc: "frame-size arithmetic must use the shared wire/geom constants (binary transport, PR 8)\n" +
		"Bare 8/20/1<<20 literals and numeric header offsets drift silently when the layout\n" +
		"changes; PairSize/RecordSize/MaxPayload/Off* are the contract.",
	Run: runFrameAlign,
}

// frameEntrySizes are the packed entry sizes whose literal spellings
// the analyzer rejects in payload arithmetic.
var frameEntrySizes = map[int64]string{
	8:  "PairSize",
	20: "RecordSize",
}

// headerOffsets are the fixed header offsets with named constants.
var headerOffsets = map[int64]string{
	2:  "wire.OffVersion",
	3:  "wire.OffType",
	4:  "wire.OffLen",
	8:  "wire.OffCRC",
	12: "wire.HeaderSize",
}

const maxPayloadValue = 1 << 20

func runFrameAlign(pass *Pass) error {
	if !touchesWire(pass.Pkg) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				checkSizeArithmetic(pass, e)
				checkPayloadBound(pass, e)
			case *ast.IndexExpr:
				checkHeaderOffset(pass, e.Index, e.X)
			case *ast.SliceExpr:
				checkHeaderOffset(pass, e.Low, e.X)
				checkHeaderOffset(pass, e.High, e.X)
			}
			return true
		})
	}
	return nil
}

// touchesWire reports whether pkg is the wire package or imports it.
func touchesWire(pkg *types.Package) bool {
	if pkg.Name() == "wire" {
		return true
	}
	for _, imp := range pkg.Imports() {
		if imp.Name() == "wire" {
			return true
		}
	}
	return false
}

// checkSizeArithmetic flags len/cap-based %, /, * arithmetic against
// the bare entry-size literals.
func checkSizeArithmetic(pass *Pass, e *ast.BinaryExpr) {
	switch e.Op {
	case token.REM, token.QUO, token.MUL:
	default:
		return
	}
	lit, other := literalOperand(pass, e)
	if lit == nil {
		return
	}
	name, sized := frameEntrySizes[lit.value]
	if !sized {
		return
	}
	// Only byte-length arithmetic counts: the sibling operand must
	// involve len or cap of a byte slice (or of the packed batch being
	// framed). Plain integer math with 8 or 20 is not frame layout.
	if !containsByteLen(pass, other) {
		return
	}
	pass.Reportf(lit.expr.Pos(), "frame-size arithmetic with the bare literal %d; use the shared %s constant (wire.%s / geom.%s) so the packed layout stays a single source of truth",
		lit.value, name, name, name)
}

// checkPayloadBound flags ordered comparisons against an inline
// constant expression equal to MaxPayload.
func checkPayloadBound(pass *Pass, e *ast.BinaryExpr) {
	switch e.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ:
	default:
		return
	}
	for _, side := range []ast.Expr{e.X, e.Y} {
		tv, ok := pass.Info.Types[side]
		if !ok || tv.Value == nil {
			continue
		}
		v, ok := constant.Int64Val(constant.ToInt(tv.Value))
		if !ok || v != maxPayloadValue {
			continue
		}
		// A named constant (wire.MaxPayload itself, or a deliberately
		// distinct cap like an NDJSON line bound) is fine; an inline
		// literal expression is the drift hazard.
		switch ast.Unparen(side).(type) {
		case *ast.Ident, *ast.SelectorExpr:
			continue
		}
		pass.Reportf(side.Pos(), "payload bound spelled as an inline constant expression; compare against wire.MaxPayload so every decoder and encoder agrees on the cap")
	}
}

// checkHeaderOffset flags bare numeric header offsets into raw frame
// byte slices inside wire and the frame-relaying layers.
func checkHeaderOffset(pass *Pass, idx ast.Expr, base ast.Expr) {
	if idx == nil {
		return
	}
	lit, ok := ast.Unparen(idx).(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return
	}
	tv, ok := pass.Info.Types[lit]
	if !ok || tv.Value == nil {
		return
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	if !ok {
		return
	}
	name, known := headerOffsets[v]
	if !known {
		return
	}
	if !isByteSlice(pass, base) {
		return
	}
	pass.Reportf(lit.Pos(), "raw frame bytes indexed with the bare offset %d; use %s so the header layout has one definition", v, name)
}

// literal describes a constant integer operand.
type literalInfo struct {
	expr  ast.Expr
	value int64
}

// literalOperand returns the bare-literal side of a binary expression
// and the sibling operand (nil when neither side is a bare literal).
func literalOperand(pass *Pass, e *ast.BinaryExpr) (*literalInfo, ast.Expr) {
	if li := bareIntLiteral(pass, e.Y); li != nil {
		return li, e.X
	}
	if li := bareIntLiteral(pass, e.X); li != nil {
		return li, e.Y
	}
	return nil, nil
}

// bareIntLiteral matches an integer BasicLit (not a named constant).
func bareIntLiteral(pass *Pass, expr ast.Expr) *literalInfo {
	lit, ok := ast.Unparen(expr).(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return nil
	}
	tv, ok := pass.Info.Types[lit]
	if !ok || tv.Value == nil {
		return nil
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	if !ok {
		return nil
	}
	return &literalInfo{expr: lit, value: v}
}

// containsByteLen reports whether expr contains len(x) or cap(x)
// applied to a []byte, or to a packed batch slice ([]Pair-like —
// anything whose element size the frame constants describe).
func containsByteLen(pass *Pass, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || (id.Name != "len" && id.Name != "cap") {
			return true
		}
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		t := pass.Info.TypeOf(call.Args[0])
		if t == nil {
			return true
		}
		if s, ok := t.Underlying().(*types.Slice); ok {
			if isByteElem(s.Elem()) || isPackedBatchElem(s.Elem()) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isByteSlice reports whether expr's type is []byte or [N]byte (raw
// frame headers are fixed-size arrays on the stack).
func isByteSlice(pass *Pass, expr ast.Expr) bool {
	t := pass.Info.TypeOf(expr)
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return isByteElem(u.Elem())
	case *types.Array:
		return isByteElem(u.Elem())
	}
	return false
}

func isByteElem(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// isPackedBatchElem matches the element shapes the frame payloads
// pack: geom.Pair / [2]uint32 batches and geom.Record batches.
func isPackedBatchElem(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Array:
		return u.Len() == 2
	case *types.Struct:
		if named, ok := t.(*types.Named); ok {
			name := named.Obj().Name()
			return name == "Pair" || name == "Record"
		}
	}
	return false
}
