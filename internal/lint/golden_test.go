package lint

import (
	"path/filepath"
	"regexp"
	"testing"
)

// Golden tests: each analyzer runs over a testdata/src package whose
// flagged lines carry `// want "regex"` comments (the analysistest
// convention). Helper packages (pairbuf, wire, obs, rel) mirror the
// real repo surfaces the analyzers key on and must stay clean.

func TestSnapshotPinGolden(t *testing.T) { runGolden(t, SnapshotPin, "snapshotpin_a") }

func TestPoolReturnGolden(t *testing.T) { runGolden(t, PoolReturn, "poolreturn_a") }

func TestFrameAlignGolden(t *testing.T) { runGolden(t, FrameAlign, "framealign_a") }

func TestErrSentinelGolden(t *testing.T) { runGolden(t, ErrSentinel, "errsentinel_a") }

func TestMetricLabelGolden(t *testing.T) { runGolden(t, MetricLabel, "metriclabel_a") }

// wantSpec is one expectation parsed from a `// want "regex"` comment.
type wantSpec struct {
	file string
	line int
	re   *regexp.Regexp
}

// wantQuoted extracts the quoted or backquoted regexes after `want`.
var wantQuoted = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// runGolden loads the named testdata packages (dependencies load
// implicitly), runs one analyzer over everything, and matches the
// findings one-to-one against the want comments.
func runGolden(t *testing.T, a *Analyzer, pkgs ...string) {
	t.Helper()
	extra, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader("golden.invalid/none", extra)
	l.ExtraDir = extra
	for _, p := range pkgs {
		if _, err := l.Load(p); err != nil {
			t.Fatalf("load %s: %v", p, err)
		}
	}
	diags, err := RunAnalyzers(l, []*Analyzer{a}, nil)
	if err != nil {
		t.Fatal(err)
	}

	wants := collectWants(t, l)
	matched := make([]bool, len(diags))
	for _, w := range wants {
		ok := false
		for i, d := range diags {
			if matched[i] {
				continue
			}
			pos := l.Fset.Position(d.Pos)
			if pos.Filename == w.file && pos.Line == w.line && w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s:%d: no diagnostic matching %q", filepath.Base(w.file), w.line, w.re)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			pos := l.Fset.Position(d.Pos)
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
}

// collectWants scans every loaded file for want comments.
func collectWants(t *testing.T, l *Loader) []wantSpec {
	t.Helper()
	var wants []wantSpec
	for _, pkg := range l.Order() {
		for _, f := range pkg.Files {
			tf := l.Fset.File(f.Pos())
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := regexp.MustCompile(`// want `).FindStringIndex(c.Text)
					if idx == nil {
						continue
					}
					line := tf.Line(c.Pos())
					specs := wantQuoted.FindAllStringSubmatch(c.Text[idx[1]:], -1)
					if len(specs) == 0 {
						t.Fatalf("%s:%d: want comment without a quoted regex", tf.Name(), line)
					}
					for _, m := range specs {
						pat := m[1]
						if m[2] != "" {
							pat = m[2]
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want regex %q: %v", tf.Name(), line, pat, err)
						}
						wants = append(wants, wantSpec{file: tf.Name(), line: line, re: re})
					}
				}
			}
		}
	}
	return wants
}
