package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// epochReadFact tags methods that read a relation's *current* epoch
// state: the snapshot()/Current() primitives themselves, and every
// method that reaches one on its own receiver (Relation.Len, .MBR,
// .Indexed, ... — the accessors of unijoin.go). The fact is exported
// while the defining package is analyzed and consumed by its
// importers' passes.
const epochReadFact = "snapshotpin.epochRead"

// epochPrimitives are the method names that read the live epoch
// pointer directly. The convention is repo-wide: ingest.Log publishes
// through Current()/Epoch(), and unijoin.Relation pins through
// snapshot().
var epochPrimitives = map[string]bool{
	"snapshot": true,
	"Current":  true,
	"Epoch":    true,
}

// SnapshotPin checks the epoch-snapshot pinning invariant of the live
// ingestion layer (PR 7): a relation's current version must be pinned
// at most once per query path. Two reads of the live epoch on the
// same receiver inside one function can straddle a concurrent Append
// or Compact and observe two different epochs — the "epoch tear" the
// Version/Log design exists to prevent. The analyzer counts direct
// calls to the snapshot()/Current()/Epoch() primitives and, through
// cross-package facts, calls to any method that transitively reads
// the live epoch on its receiver (Relation.Len, .MBR, .Indexed, ...).
//
// A function that reads the live epoch of one receiver more than once
// — or inside a loop whose receiver does not change per iteration —
// is flagged. Fix by pinning once (Relation.Pin returns a consistent
// single-epoch view) or, when the tear is deliberate and harmless,
// annotate the extra read with a justification:
//
//	n := rel.Len() //lint:pinned stats are advisory; tear is fine
//
// The annotation requires a non-empty justification. Packages under
// internal/ingest (the epoch machinery itself) are exempt.
var SnapshotPin = &Analyzer{
	Name: "snapshotpin",
	Doc: "at most one live-epoch read per relation per function (epoch-snapshot pinning, PR 7)\n" +
		"Two snapshot()/Current()/accessor reads on one receiver can straddle a concurrent\n" +
		"append and tear across epochs. Pin once (Relation.Pin) or annotate //lint:pinned <why>.",
	Run: runSnapshotPin,
}

func runSnapshotPin(pass *Pass) error {
	exportEpochReadFacts(pass)
	if strings.HasSuffix(pass.Pkg.Path(), "internal/ingest") {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					// Nested function literals are analyzed as part of
					// the enclosing body: a closure re-reading an outer
					// receiver's epoch is exactly the tear to catch.
					checkFuncEpochReads(pass, d.Body)
				}
			case *ast.GenDecl:
				ast.Inspect(d, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						checkFuncEpochReads(pass, lit.Body)
						return false
					}
					return true
				})
			}
		}
	}
	return nil
}

// exportEpochReadFacts marks, for the current package, every method
// whose body reads the live epoch on its own receiver — directly via
// a primitive, or via an already-marked same-package method — so
// downstream packages see accessors like Relation.Len for what they
// are. Iterates to a fixpoint for accessor-calls-accessor chains.
func exportEpochReadFacts(pass *Pass) {
	type method struct {
		decl *ast.FuncDecl
		obj  types.Object
		recv *ast.Ident
	}
	var methods []method
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) == 0 {
				continue
			}
			var recv *ast.Ident
			if names := fd.Recv.List[0].Names; len(names) > 0 {
				recv = names[0]
			}
			obj := pass.Info.Defs[fd.Name]
			if obj == nil || recv == nil {
				continue
			}
			methods = append(methods, method{decl: fd, obj: obj, recv: recv})
		}
	}
	for changed := true; changed; {
		changed = false
		for _, m := range methods {
			if _, done := pass.Facts.Marked(epochReadFact, m.obj); done {
				continue
			}
			recvObj := pass.Info.Defs[m.recv]
			if recvObj == nil {
				continue
			}
			reads := false
			ast.Inspect(m.decl.Body, func(n ast.Node) bool {
				if reads {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				// The call must be rooted at the receiver (r.snapshot(),
				// r.log.Current(), r.Len()...).
				root := rootIdent(sel.X)
				if root == nil || pass.Info.Uses[root] != recvObj {
					return true
				}
				if epochPrimitives[sel.Sel.Name] {
					reads = true
					return false
				}
				if callee := pass.Info.Uses[sel.Sel]; callee != nil {
					if _, ok := pass.Facts.Marked(epochReadFact, callee); ok {
						reads = true
						return false
					}
				}
				return true
			})
			if reads {
				pass.Facts.Mark(epochReadFact, m.obj, "reads the live epoch")
				changed = true
			}
		}
	}
}

// epochReadCall matches a call expression that reads the live epoch
// and returns its receiver expression.
func epochReadCall(pass *Pass, call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	if epochPrimitives[sel.Sel.Name] {
		// Primitives are method calls; selecting a field or a
		// package-level function named Current is not a read.
		if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			return sel.X, true
		}
		return nil, false
	}
	callee := pass.Info.Uses[sel.Sel]
	if callee == nil {
		return nil, false
	}
	if _, marked := pass.Facts.Marked(epochReadFact, callee); marked {
		return sel.X, true
	}
	return nil, false
}

// checkFuncEpochReads flags live-epoch reads that can tear within one
// function body: a second read on the same receiver, or a read inside
// a loop whose receiver is loop-invariant.
func checkFuncEpochReads(pass *Pass, body *ast.BlockStmt) {
	// Methods that are themselves epoch accessors (marked) with a
	// single read are the definition sites — they are checked like any
	// other function; a single read never fires.
	type readSite struct {
		call *ast.CallExpr
		recv ast.Expr
	}
	reads := map[string][]readSite{}
	var walk func(n ast.Node, enclosingLoops []ast.Node)
	walk = func(n ast.Node, enclosingLoops []ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch stmt := m.(type) {
			case *ast.ForStmt:
				if m == n {
					return true
				}
				walk(stmt, append(enclosingLoops, stmt))
				return false
			case *ast.RangeStmt:
				if m == n {
					return true
				}
				walk(stmt, append(enclosingLoops, stmt))
				return false
			case *ast.CallExpr:
				recv, ok := epochReadCall(pass, stmt)
				if !ok {
					return true
				}
				key := receiverKey(recv)
				reads[key] = append(reads[key], readSite{call: stmt, recv: recv})
				if len(enclosingLoops) > 0 && !receiverVariesPerIteration(pass, recv, enclosingLoops[len(enclosingLoops)-1]) {
					reportEpochRead(pass, stmt,
						"live-epoch read inside a loop runs once per iteration and can observe a different epoch each time")
				}
				return true
			}
			return true
		})
	}
	walk(body, nil)
	for _, sites := range reads {
		if len(sites) < 2 {
			continue
		}
		for _, site := range sites[1:] {
			reportEpochRead(pass, site.call,
				"second live-epoch read on %q in one function can observe a different epoch than the first; pin once (e.g. Relation.Pin) and read the pinned view",
				receiverKey(site.recv))
		}
	}
}

// reportEpochRead reports unless the site carries a justified
// //lint:pinned annotation; a bare annotation is itself flagged.
func reportEpochRead(pass *Pass, call *ast.CallExpr, format string, args ...any) {
	found, justified := pass.Annotation(call.Pos(), "pinned")
	if found && justified {
		return
	}
	if found {
		pass.Reportf(call.Pos(), "//lint:pinned annotation needs a justification after the marker")
		return
	}
	pass.Reportf(call.Pos(), format, args...)
}

// receiverVariesPerIteration reports whether the receiver expression
// yields a fresh value each iteration — rooted at a variable bound
// inside the loop (a range variable or a loop-body definition), or
// containing a call (ws.Query(a, b).Run(...) builds a new query per
// iteration, and one pin per query is exactly right).
func receiverVariesPerIteration(pass *Pass, recv ast.Expr, loop ast.Node) bool {
	fresh := false
	ast.Inspect(recv, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			fresh = true
			return false
		}
		return true
	})
	if fresh {
		return true
	}
	root := rootIdent(recv)
	if root == nil {
		return false
	}
	obj := pass.Info.Uses[root]
	if obj == nil {
		obj = pass.Info.Defs[root]
	}
	if obj == nil {
		return false
	}
	pos := obj.Pos()
	return pos >= loop.Pos() && pos <= loop.End()
}
