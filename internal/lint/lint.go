// Package lint is the engine's own static-analysis suite: a family
// of analyzers that machine-check the cross-cutting invariants the
// codebase has accumulated PR over PR — epoch-snapshot pinning (PR 7),
// pooled pair/frame buffer discipline (PR 2/8), binary frame layout
// alignment (PR 8), typed error sentinels (PR 2/5), and bounded
// metrics label cardinality (PR 6). None of these are visible to
// go vet or staticcheck; each analyzer here encodes one of them.
//
// The framework mirrors golang.org/x/tools/go/analysis — Analyzer,
// Pass, Diagnostic, per-object facts — but is built entirely on the
// standard library (go/ast, go/types, go list), keeping the root
// module dependency-free and the tool runnable in hermetic build
// environments. Should the x/tools dependency ever become available,
// each analyzer's Run function ports mechanically.
//
// Analyzers run over packages in dependency order, so facts exported
// while analyzing an upstream package (for example, which methods of
// unijoin.Relation read the current epoch) are visible when its
// importers are analyzed.
//
// Suppression annotations: a finding that is deliberate is silenced
// with a justification comment on the flagged line (or the line
// above). Each analyzer documents its annotation; all of them require
// a non-empty justification after the marker:
//
//	v := rel.snapshot() //lint:pinned second pin is deliberate: ...
//	counter.With(name).Inc() //lint:bounded name is catalog-checked
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position and a message, tagged with
// the analyzer that produced it.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Analyzer is one invariant checker. Doc's first line names the
// invariant; the rest states which PR introduced it and how to
// silence deliberate violations.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Facts is shared across every package this run analyzes, in
	// dependency order: facts exported for an object while analyzing
	// its defining package are visible to downstream passes.
	Facts *FactStore

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Annotation looks for a //lint:<marker> suppression comment on the
// line of pos or the line immediately above it, in the file
// containing pos. It reports whether the marker is present and
// whether a non-empty justification follows it.
func (p *Pass) Annotation(pos token.Pos, marker string) (found, justified bool) {
	tf := p.Fset.File(pos)
	if tf == nil {
		return false, false
	}
	line := tf.Line(pos)
	needle := "//lint:" + marker
	for _, f := range p.Files {
		if p.Fset.File(f.Pos()) != tf {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				cl := tf.Line(c.Pos())
				if cl != line && cl != line-1 {
					continue
				}
				idx := strings.Index(c.Text, needle)
				if idx < 0 {
					continue
				}
				rest := strings.TrimSpace(c.Text[idx+len(needle):])
				return true, rest != ""
			}
		}
		break
	}
	return false, false
}

// FactStore is the cross-package fact table: a set of marked
// types.Objects per analyzer-defined key. It is the simplified
// counterpart of x/tools object facts — enough to say "this method
// reads the current epoch" while analyzing unijoin and test for it
// while analyzing internal/server.
type FactStore struct {
	marks map[string]map[types.Object]string
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{marks: make(map[string]map[types.Object]string)}
}

// Mark tags obj under key with a short note (shown in diagnostics).
func (s *FactStore) Mark(key string, obj types.Object, note string) {
	m := s.marks[key]
	if m == nil {
		m = make(map[types.Object]string)
		s.marks[key] = m
	}
	m[obj] = note
}

// Marked reports whether obj is tagged under key.
func (s *FactStore) Marked(key string, obj types.Object) (string, bool) {
	note, ok := s.marks[key][obj]
	return note, ok
}

// SortDiagnostics orders findings by file, line, column, analyzer —
// the stable order both the text and NDJSON outputs use.
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// isErrorType reports whether t implements the error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorInterface) ||
		types.Implements(types.NewPointer(t), errorInterface)
}

var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// receiverKey renders the receiver expression of a selector call as a
// stable string ("rel", "s.cat", ...) for grouping calls that read
// the same value twice. Index expressions with non-literal indexes
// get a unique key per syntax position, so versions[i] in a loop is
// not mistaken for a repeated read of one receiver.
func receiverKey(expr ast.Expr) string {
	var b strings.Builder
	writeExprKey(&b, expr)
	return b.String()
}

func writeExprKey(b *strings.Builder, expr ast.Expr) {
	switch e := expr.(type) {
	case *ast.Ident:
		b.WriteString(e.Name)
	case *ast.SelectorExpr:
		writeExprKey(b, e.X)
		b.WriteByte('.')
		b.WriteString(e.Sel.Name)
	case *ast.ParenExpr:
		writeExprKey(b, e.X)
	case *ast.StarExpr:
		b.WriteByte('*')
		writeExprKey(b, e.X)
	case *ast.IndexExpr:
		writeExprKey(b, e.X)
		b.WriteByte('[')
		if lit, ok := e.Index.(*ast.BasicLit); ok {
			b.WriteString(lit.Value)
		} else {
			fmt.Fprintf(b, "@%d", e.Index.Pos())
		}
		b.WriteByte(']')
	case *ast.CallExpr:
		// A call result is a fresh value each time; key it by position
		// so two calls never collapse into one receiver.
		fmt.Fprintf(b, "call@%d", e.Pos())
	default:
		fmt.Fprintf(b, "expr@%d", expr.Pos())
	}
}

// rootIdent returns the leftmost identifier of a selector/index chain
// (rel in rel.log.Current), or nil.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.CallExpr:
			expr = e.Fun
		default:
			return nil
		}
	}
}
