package lint

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Main is the sjlint entry point (tools/cmd/sjlint is a thin shim
// around it): expand the package patterns with go list, load and
// type-check them plus their in-module dependencies, run the suite in
// dependency order, and print the findings. Exit status: 0 clean,
// 1 findings, 2 usage or load failure.
func Main(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sjlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit one NDJSON object per finding instead of text")
	dir := fs.String("dir", "", "module directory to analyze (default: nearest enclosing engine module)")
	list := fs.Bool("list", false, "list the analyzers and their invariants, then exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: sjlint [-json] [-dir moduledir] packages...\n\n"+
			"sjlint vets the spatial-join engine against its concurrency and wire\n"+
			"invariants. Patterns are go list patterns relative to the module\n"+
			"directory (default ./...).\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *list {
		for _, a := range Suite() {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	moduleDir, modulePath, err := resolveModule(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "sjlint:", err)
		return 2
	}
	targets, err := listPackages(moduleDir, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "sjlint:", err)
		return 2
	}

	loader := NewLoader(modulePath, moduleDir)
	targetSet := make(map[string]bool, len(targets))
	for _, path := range targets {
		targetSet[path] = true
		if _, err := loader.Load(path); err != nil {
			fmt.Fprintln(stderr, "sjlint:", err)
			return 2
		}
	}
	diags, err := RunAnalyzers(loader, Suite(), func(pkgPath string) bool { return targetSet[pkgPath] })
	if err != nil {
		fmt.Fprintln(stderr, "sjlint:", err)
		return 2
	}
	if len(diags) == 0 {
		return 0
	}
	w := bufio.NewWriter(stdout)
	defer w.Flush()
	enc := json.NewEncoder(w)
	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		if *jsonOut {
			// One NDJSON object per finding — the machine-readable
			// surface CI annotations and future tooling consume.
			enc.Encode(struct {
				File     string `json:"file"`
				Line     int    `json:"line"`
				Col      int    `json:"col"`
				Analyzer string `json:"analyzer"`
				Message  string `json:"message"`
			}{relPath(moduleDir, pos.Filename), pos.Line, pos.Column, d.Analyzer, d.Message})
		} else {
			fmt.Fprintf(w, "%s:%d:%d: %s: %s\n",
				relPath(moduleDir, pos.Filename), pos.Line, pos.Column, d.Analyzer, d.Message)
		}
	}
	return 1
}

// relPath renders filename relative to the module directory when
// possible (stable CI output regardless of checkout location).
func relPath(moduleDir, filename string) string {
	if rel, err := filepath.Rel(moduleDir, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filename
}

// resolveModule locates the module to analyze: the explicit -dir, or
// the nearest enclosing go.mod — skipping over the tools module
// itself, so `cd tools && go run ./cmd/sjlint ./...` analyzes the
// engine module, not the tool shim.
func resolveModule(dir string) (moduleDir, modulePath string, err error) {
	start := dir
	if start == "" {
		start, err = os.Getwd()
		if err != nil {
			return "", "", err
		}
	}
	start, err = filepath.Abs(start)
	if err != nil {
		return "", "", err
	}
	for d := start; ; {
		if path, ok := readModulePath(filepath.Join(d, "go.mod")); ok {
			if strings.HasSuffix(path, "/tools") {
				// The sjlint shim module: its subject is the parent.
				parent := filepath.Dir(d)
				if ppath, ok := readModulePath(filepath.Join(parent, "go.mod")); ok {
					return parent, ppath, nil
				}
			}
			return d, path, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found at or above %s", start)
		}
		d = parent
	}
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, bool) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", false
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(strings.Trim(rest, `"`)), true
		}
	}
	return "", false
}

// listPackages expands go list patterns inside moduleDir into import
// paths, skipping packages with no non-test Go files.
func listPackages(moduleDir string, patterns []string) ([]string, error) {
	args := append([]string{"list", "-f", "{{.ImportPath}}\t{{len .GoFiles}}"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	out, err := cmd.Output()
	if err != nil {
		var ee *exec.ExitError
		if errors.As(err, &ee) && len(ee.Stderr) > 0 {
			return nil, fmt.Errorf("go list: %s", strings.TrimSpace(string(ee.Stderr)))
		}
		return nil, fmt.Errorf("go list: %w", err)
	}
	var paths []string
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		path, n, ok := strings.Cut(line, "\t")
		if !ok || n == "0" || path == "" {
			continue
		}
		paths = append(paths, path)
	}
	return paths, nil
}
