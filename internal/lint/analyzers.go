package lint

// Suite returns every analyzer, in the order findings are most useful
// to read: concurrency invariants first, mechanical hygiene last.
func Suite() []*Analyzer {
	return []*Analyzer{
		SnapshotPin,
		PoolReturn,
		FrameAlign,
		ErrSentinel,
		MetricLabel,
	}
}
