package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrSentinel checks the typed-error discipline the engine settled on
// in PR 2 (core sentinels ErrNeedsIndex, ErrNilRelation, ErrCanceled,
// ErrSweepOverflow) and PR 8 (wire.ErrCorrupt family, client.Err*
// with APIError.Is): errors must be tested with errors.Is / errors.As
// against exported sentinels, never by identity comparison, string
// matching, or direct type assertion. Identity and string checks
// break as soon as an error is wrapped with %w anywhere on the path —
// which the router and client layers do.
//
// Flagged forms:
//
//   - err == sentinel / err != sentinel (and switch err { case ... })
//   - err.Error() compared against strings or fed to strings.Contains
//     and friends
//   - err.(*SomeError) type assertions (use errors.As)
//
// Is/As methods themselves — the errors.Is/errors.As protocol hooks,
// which must compare identities — are exempt.
var ErrSentinel = &Analyzer{
	Name: "errsentinel",
	Doc: "errors are matched with errors.Is/errors.As against exported sentinels (typed errors, PR 2/8)\n" +
		"Identity comparison, err.Error() string matching, and direct type assertions all\n" +
		"break under %w wrapping; the router and client wrap routinely.",
	Run: runErrSentinel,
}

// stringsMatchFuncs are the strings-package helpers that turn
// err.Error() output into control flow.
var stringsMatchFuncs = map[string]bool{
	"Contains":  true,
	"HasPrefix": true,
	"HasSuffix": true,
	"EqualFold": true,
	"Index":     true,
}

func runErrSentinel(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// The errors.Is/errors.As protocol methods are where
			// identity comparison is the specified behavior.
			if fd.Recv != nil && (fd.Name.Name == "Is" || fd.Name.Name == "As") {
				continue
			}
			checkErrSentinelBody(pass, fd.Body)
		}
	}
	return nil
}

func checkErrSentinelBody(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.BinaryExpr:
			checkErrComparison(pass, e)
		case *ast.SwitchStmt:
			checkErrSwitch(pass, e)
		case *ast.CallExpr:
			checkErrorStringMatch(pass, e)
		case *ast.TypeAssertExpr:
			checkErrTypeAssert(pass, e)
		}
		return true
	})
}

// checkErrComparison flags ==/!= between two error values (nil
// comparisons are the one legitimate identity test).
func checkErrComparison(pass *Pass, e *ast.BinaryExpr) {
	if e.Op != token.EQL && e.Op != token.NEQ {
		return
	}
	if isNilExpr(pass, e.X) || isNilExpr(pass, e.Y) {
		return
	}
	if !isErrorExpr(pass, e.X) || !isErrorExpr(pass, e.Y) {
		return
	}
	// Comparing two err.Error() strings is reported by the string-match
	// check with a better message; here both operands are error-typed.
	pass.Reportf(e.OpPos, "error compared with %s; use errors.Is so wrapped errors (%%w) still match the sentinel", e.Op)
}

// checkErrSwitch flags `switch err { case sentinel: }`.
func checkErrSwitch(pass *Pass, s *ast.SwitchStmt) {
	if s.Tag == nil || !isErrorExpr(pass, s.Tag) {
		return
	}
	for _, clause := range s.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, expr := range cc.List {
			if isNilExpr(pass, expr) {
				continue
			}
			pass.Reportf(expr.Pos(), "switch on an error value compares by identity; use if/else chains with errors.Is so wrapped errors still match")
		}
	}
}

// checkErrorStringMatch flags err.Error() results used in string
// comparisons or strings.Contains-style matching.
func checkErrorStringMatch(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, _ := pass.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "strings" || !stringsMatchFuncs[fn.Name()] {
		return
	}
	for _, arg := range call.Args {
		if pos, ok := containsErrorCall(pass, arg); ok {
			pass.Reportf(pos, "matching on err.Error() text couples control flow to a message string; compare with errors.Is against an exported sentinel")
			return
		}
	}
}

// checkErrTypeAssert flags err.(*T) on error-typed operands outside
// type switches (whose TypeAssertExpr has a nil Type).
func checkErrTypeAssert(pass *Pass, e *ast.TypeAssertExpr) {
	if e.Type == nil {
		return
	}
	if !isErrorExpr(pass, e.X) {
		return
	}
	pass.Reportf(e.Pos(), "type assertion on an error misses wrapped errors; use errors.As")
}

// isErrorExpr reports whether expr's static type implements error.
// Comparisons of err.Error() strings are also caught here so that
// `a.Error() == b.Error()` gets flagged by checkErrComparison's
// caller via the string-match path.
func isErrorExpr(pass *Pass, expr ast.Expr) bool {
	t := pass.Info.TypeOf(expr)
	return t != nil && isErrorType(t)
}

func isNilExpr(pass *Pass, expr ast.Expr) bool {
	tv, ok := pass.Info.Types[expr]
	return ok && tv.IsNil()
}

// containsErrorCall finds an err.Error() call (zero-arg method named
// Error on an error-typed receiver) inside expr.
func containsErrorCall(pass *Pass, expr ast.Expr) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Error" {
			return true
		}
		if isErrorExpr(pass, sel.X) {
			pos, found = call.Pos(), true
			return false
		}
		return true
	})
	return pos, found
}
