package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one parsed, type-checked package of the analyzed module
// (or of a testdata tree).
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// stdFset and stdImporter type-check standard-library dependencies
// from source, once per process, shared by every Loader (the suite's
// tests would otherwise re-check net/http per analyzer).
var (
	stdFset         = token.NewFileSet()
	stdImporterOnce sync.Once
	stdImporter     types.Importer
)

func sharedStdImporter() types.Importer {
	stdImporterOnce.Do(func() {
		stdImporter = importer.ForCompiler(stdFset, "source", nil)
	})
	return stdImporter
}

// Loader parses and type-checks packages from source. Import paths
// under ModulePath resolve into ModuleDir; paths under an extra root
// (a testdata tree) resolve there; everything else is treated as
// standard library and checked through the shared source importer.
// Load records completion order, which is a topological order of the
// loaded packages — the order analyzers must run in for facts to flow
// from defining packages to their importers.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string
	// ExtraDir, when set, resolves any import path that is neither
	// std nor under ModulePath, rooted at this directory (the
	// testdata/src convention of analyzer golden tests).
	ExtraDir string

	pkgs    map[string]*Package
	order   []*Package
	loading map[string]bool
}

// NewLoader returns a loader for the module rooted at moduleDir.
func NewLoader(modulePath, moduleDir string) *Loader {
	return &Loader{
		Fset:       token.NewFileSet(),
		ModulePath: modulePath,
		ModuleDir:  moduleDir,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}
}

// Order returns every package this loader has loaded, in dependency
// (completion) order.
func (l *Loader) Order() []*Package { return l.order }

// dirFor maps a loadable import path to its directory, or "" when the
// path is standard library.
func (l *Loader) dirFor(path string) string {
	if path == l.ModulePath {
		return l.ModuleDir
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest))
	}
	if l.ExtraDir != "" && !strings.Contains(strings.SplitN(path, "/", 2)[0], ".") {
		// Heuristically local: testdata import paths have no domain
		// dot. Only used when the directory actually exists.
		dir := filepath.Join(l.ExtraDir, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir
		}
	}
	return ""
}

// Import implements types.Importer, so a Loader can be the Importer
// of its own type-checking configuration.
func (l *Loader) Import(path string) (*types.Package, error) {
	dir := l.dirFor(path)
	if dir == "" {
		return sharedStdImporter().Import(path)
	}
	pkg, err := l.Load(path)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

// Load parses and type-checks the package at the given import path
// (which must resolve through the module or extra root), loading its
// non-std dependencies first.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("lint: %q does not resolve inside the module", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := buildContext().ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	l.order = append(l.order, pkg)
	return pkg, nil
}

// buildContext is go/build with tooling defaults: no cgo (the module
// is pure Go; stdlib source-imports are handled separately), and the
// host GOOS/GOARCH.
func buildContext() *build.Context {
	ctx := build.Default
	ctx.CgoEnabled = false
	return &ctx
}

// RunAnalyzers executes every analyzer over every loaded package in
// dependency order, sharing one fact store, and returns the findings
// whose package path satisfies report (nil means report everything).
func RunAnalyzers(l *Loader, analyzers []*Analyzer, report func(pkgPath string) bool) ([]Diagnostic, error) {
	facts := NewFactStore()
	var all []Diagnostic
	for _, pkg := range l.Order() {
		for _, a := range analyzers {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer: a,
				Fset:     l.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Facts:    facts,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
			if report == nil || report(pkg.Path) {
				all = append(all, diags...)
			}
		}
	}
	SortDiagnostics(l.Fset, all)
	return all, nil
}
