// Package obs mirrors the real internal/obs surface the metriclabel
// analyzer keys on: string parameters of its exported API are label
// sinks.
package obs

type CounterVec struct{}

func (c *CounterVec) With(values ...string) *Counter { return &Counter{} }

type Counter struct{}

func (c *Counter) Inc() {}

func (c *Counter) Add(n int64) {}

func RegisterCounterVec(name string, labels ...string) *CounterVec { return &CounterVec{} }
