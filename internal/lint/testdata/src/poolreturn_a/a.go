// Golden cases for the poolreturn analyzer.
package poolreturn_a

import (
	"io"

	"pairbuf"
	"wire"
)

// Acquire and release on every path: the canonical shape.
func balanced() {
	buf := pairbuf.Get()
	defer pairbuf.Put(buf)
	buf = append(buf, [2]uint32{1, 2})
}

// No release and no handoff: the buffer leaks from the pool.
func leak() {
	buf := pairbuf.Get() // want `no path releases it`
	buf = append(buf, [2]uint32{1, 2})
	_ = buf
}

// Discarding the result outright can never be balanced.
func discarded() {
	pairbuf.Get() // want `discarded`
}

func blank() {
	_ = pairbuf.Get() // want `assigned to _`
}

// Returning the buffer hands ownership to the caller.
func handoff() [][2]uint32 {
	buf := pairbuf.Get()
	return buf
}

// Storing into a struct hands ownership to the struct's owner.
type holder struct{ buf [][2]uint32 }

func stored(h *holder) {
	buf := pairbuf.Get()
	h.buf = buf
}

// Batcher acquisitions release via Release.
func batcher(emit func([][2]uint32)) {
	b := pairbuf.NewBatcher(emit)
	b.Emit(1, 2)
	b.Release()
}

func batcherLeak(emit func([][2]uint32)) {
	b := pairbuf.NewBatcher(emit) // want `no path releases it`
	b.Emit(1, 2)
}

// Encoder acquisitions release via Close.
func encoder(w io.Writer) {
	e := wire.NewEncoder(w)
	_ = e.WritePairs(nil)
	e.Close()
}

func encoderLeak(w io.Writer) {
	e := wire.NewEncoder(w) // want `no path releases it`
	_ = e.WritePairs(nil)
}

// After Put the pooled slice belongs to the next borrower.
func useAfterPut() int {
	buf := pairbuf.Get()
	pairbuf.Put(buf)
	n := len(buf) // want `used after its pairbuf.Put`
	return n
}

// Rebinding after Put makes the variable live again.
func reboundAfterPut() int {
	buf := pairbuf.Get()
	pairbuf.Put(buf)
	buf = make([][2]uint32, 0, 4)
	return len(buf)
}
