// Package pairbuf mirrors the real internal/pairbuf surface the
// poolreturn analyzer keys on (package name + function names).
package pairbuf

// Batcher mirrors the pooled emit adapter.
type Batcher struct{ buf [][2]uint32 }

func Get() [][2]uint32 { return make([][2]uint32, 0, 8) }

func Put(buf [][2]uint32) {}

func NewBatcher(fn func([][2]uint32)) *Batcher { return &Batcher{} }

func (b *Batcher) Emit(l, r uint32) {}

func (b *Batcher) Flush() {}

func (b *Batcher) Release() {}
