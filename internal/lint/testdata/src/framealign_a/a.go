// Golden cases for the framealign analyzer.
package framealign_a

import "wire"

// Payload arithmetic with the bare entry-size literals drifts.
func pad(p []byte) int {
	if len(p)%8 != 0 { // want `bare literal 8`
		return 0
	}
	return len(p) / wire.PairSize
}

func records(p []byte) int {
	return len(p) / 20 // want `bare literal 20`
}

func sized(n int) int {
	return n * 8 // plain integer math, not frame layout
}

// Payload bounds must be the named constant.
func bound(p []byte) bool {
	return len(p) > 1<<20 // want `inline constant expression`
}

func boundOK(p []byte) bool {
	return len(p) > wire.MaxPayload
}

// Header offsets must be the named constants, on slices and arrays.
func headerType(raw []byte) byte {
	return raw[3] // want `bare offset 3`
}

func headerCRC(hdr [wire.HeaderSize]byte) []byte {
	return hdr[8:] // want `bare offset 8`
}

func headerOK(raw []byte) byte {
	return raw[wire.OffType]
}

func nonFrameIndex(xs []int) int {
	return xs[3] // not a byte buffer
}
