// Package rel mirrors the epoch-snapshot shape of unijoin.Relation:
// Current() is the live-epoch primitive, and the exported accessors
// reach it through snapshot() on their own receiver — exactly the
// fact chain the snapshotpin analyzer exports for downstream
// packages.
package rel

type Version struct {
	N     int64
	Epoch int64
}

type Log struct{ v *Version }

func (l *Log) Current() *Version { return l.v }

type Relation struct {
	log *Log
}

func New() *Relation { return &Relation{log: &Log{v: &Version{}}} }

func (r *Relation) snapshot() *Version { return r.log.Current() }

func (r *Relation) Len() int64 { return r.snapshot().N }

func (r *Relation) Epoch() int64 { return r.snapshot().Epoch }

func (r *Relation) Indexed() bool { return r.snapshot().N > 0 }
