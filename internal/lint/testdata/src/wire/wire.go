// Package wire mirrors the real internal/wire surface the poolreturn
// and framealign analyzers key on (package name, constants, Encoder).
package wire

import "io"

const (
	HeaderSize = 12
	OffVersion = 2
	OffType    = 3
	OffLen     = 4
	OffCRC     = 8
	MaxPayload = 1 << 20
	PairSize   = 8
	RecordSize = 20
)

type Encoder struct{ w io.Writer }

func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

func (e *Encoder) WritePairs(p [][2]uint32) error { return nil }

func (e *Encoder) Close() {}
