// Golden cases for the metriclabel analyzer.
package metriclabel_a

import (
	"fmt"
	"strconv"

	"obs"
)

var requests = obs.RegisterCounterVec("requests", "endpoint", "status")

// Literals and numeric formatting are bounded.
func literalOK(status int) {
	requests.With("join", strconv.Itoa(status)).Inc()
}

// fmt.Sprintf of arbitrary input mints unbounded label values.
func sprintf(user string) {
	requests.With(fmt.Sprintf("user-%s", user), "200").Inc() // want `unbounded input`
}

// Taint flows through locals.
func taintedLocal(user string) {
	label := fmt.Sprintf("u-%s", user)
	requests.With(label, "200").Inc() // want `unbounded input`
}

// Error text is unbounded.
func errorText(err error) {
	requests.With(err.Error(), "500").Inc() // want `unbounded input`
}

// A justified annotation silences the finding.
func annotated(err error) {
	//lint:bounded error classes are mapped to a fixed set upstream
	requests.With(err.Error(), "500").Inc()
}

// A bare marker is itself a finding.
func bareMarker(err error) {
	//lint:bounded
	requests.With(err.Error(), "500").Inc() // want `needs a justification`
}

// Sink-ness propagates through forwarding helpers: the taint is
// flagged where it enters, at the caller.
func observe(endpoint string, n int64) {
	requests.With(endpoint, "200").Add(n)
}

func caller(user string) {
	observe(fmt.Sprintf("u-%s", user), 1) // want `unbounded input`
}
