// Golden cases for the errsentinel analyzer.
package errsentinel_a

import (
	"errors"
	"io"
	"strings"
)

var ErrThing = errors.New("thing")

type myError struct{ msg string }

func (e *myError) Error() string { return e.msg }

// Identity comparison misses wrapped errors.
func compare(err error) bool {
	return err == io.EOF // want `compared with ==`
}

func compareNeq(err error) bool {
	return err != ErrThing // want `compared with !=`
}

func compareOK(err error) bool {
	return errors.Is(err, io.EOF)
}

func nilOK(err error) bool {
	return err == nil
}

// Switching on an error value is identity comparison per case.
func sw(err error) int {
	switch err {
	case nil:
		return 0
	case ErrThing: // want `switch on an error value`
		return 1
	}
	return 2
}

// Matching on the message text couples control flow to a string.
func stringMatch(err error) bool {
	return strings.Contains(err.Error(), "thing") // want `err.Error\(\) text`
}

func prefixMatch(err error) bool {
	return strings.HasPrefix(err.Error(), "wire:") // want `err.Error\(\) text`
}

// Direct type assertions miss wrapped errors.
func assert(err error) bool {
	_, ok := err.(*myError) // want `errors.As`
	return ok
}

func assertOK(err error) bool {
	var me *myError
	return errors.As(err, &me)
}

// Type switches are not flagged (their assert has no single type).
func typeSwitchOK(err error) bool {
	switch err.(type) {
	case *myError:
		return true
	}
	return false
}

// Is methods are the errors.Is protocol: identity comparison is the
// specified behavior there.
func (e *myError) Is(target error) bool {
	return target == ErrThing
}
