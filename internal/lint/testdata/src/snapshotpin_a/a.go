// Golden cases for the snapshotpin analyzer.
package snapshotpin_a

import "rel"

// A single read per function is the pinned pattern.
func single(r *rel.Relation) int64 {
	return r.Len()
}

// Two reads on one receiver can straddle a concurrent append.
func double(r *rel.Relation) (int64, bool) {
	n := r.Len()
	ok := r.Indexed() // want `second live-epoch read`
	return n, ok
}

// Distinct receivers are distinct relations: one pin each is right.
func twoRelations(a, b *rel.Relation) (int64, int64) {
	return a.Len(), b.Len()
}

// The primitive itself counts, also through a field chain.
func primitiveTwice(r *rel.Relation) (int64, int64) {
	a := r.Epoch()
	b := r.Epoch() // want `second live-epoch read`
	return a, b
}

// A justified annotation silences the finding.
func annotated(r *rel.Relation) (int64, int64) {
	a := r.Len()
	b := r.Epoch() //lint:pinned advisory stats; a tear only skews a log line
	return a, b
}

// A bare marker is itself a finding.
func bareMarker(r *rel.Relation) (int64, int64) {
	a := r.Len()
	//lint:pinned
	b := r.Epoch() // want `needs a justification`
	return a, b
}

// A loop-invariant receiver reads a possibly different epoch each
// iteration.
func inLoop(r *rel.Relation, xs []int) int64 {
	var total int64
	for range xs {
		total += r.Len() // want `inside a loop`
	}
	return total
}

// A range variable is a fresh relation per iteration.
func loopVariant(rels []*rel.Relation) int64 {
	var total int64
	for _, rr := range rels {
		total += rr.Len()
	}
	return total
}

// A receiver built by a call is a fresh value per iteration.
func freshPerIteration(n int) int64 {
	var total int64
	for i := 0; i < n; i++ {
		total += rel.New().Len()
	}
	return total
}
