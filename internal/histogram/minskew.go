package histogram

import (
	"container/heap"
	"fmt"
	"math"

	"unijoin/internal/geom"
)

// MinSkew is the spatial histogram of Acharya, Poosala, and Ramaswamy
// [1] — the estimator the paper's Section 6.3 proposes for driving its
// cost model. Where Grid uses equal-size cells, MinSkew adaptively
// partitions the universe into a fixed budget of rectangular buckets,
// greedily splitting whichever bucket has the highest *spatial skew*
// (variance of the density of its cells) along the axis and position
// that reduce the skew most. Clustered data — the TIGER distributions
// — gets many small buckets around cities and a few large ones over
// empty land, so per-bucket uniformity assumptions hold much better
// than on a fixed grid.
//
// The histogram is built from a fine base grid (one pass over the
// data) and then refined; both construction and estimation are pure
// CPU over the grid, matching [1].
type MinSkew struct {
	universe geom.Rect
	buckets  []Bucket
	total    float64
}

// Bucket is one region of a MinSkew histogram: a rectangle, the number
// of rectangles overlapping it, and their average extents.
type Bucket struct {
	Region geom.Rect
	Count  float64
	AvgW   float64
	AvgH   float64
}

// BuildMinSkew refines a base grid into a MinSkew histogram with at
// most maxBuckets buckets.
func BuildMinSkew(base *Grid, maxBuckets int) (*MinSkew, error) {
	if maxBuckets < 1 {
		return nil, fmt.Errorf("histogram: bucket budget %d < 1", maxBuckets)
	}
	ms := &MinSkew{universe: base.universe}

	// Work in grid-cell coordinates: a candidate bucket is a cell-
	// aligned rectangle [x0,x1) x [y0,y1).
	type region struct {
		x0, y0, x1, y1 int
	}
	sumCount := func(r region) (count, sumW, sumH float64) {
		for y := r.y0; y < r.y1; y++ {
			for x := r.x0; x < r.x1; x++ {
				c := base.cells[y*base.nx+x]
				count += c.count
				sumW += c.sumW
				sumH += c.sumH
			}
		}
		return
	}
	// skew of a region = sum over cells of (count - mean)^2.
	skew := func(r region) float64 {
		cells := (r.x1 - r.x0) * (r.y1 - r.y0)
		if cells <= 1 {
			return 0
		}
		total, _, _ := sumCount(r)
		mean := total / float64(cells)
		var s float64
		for y := r.y0; y < r.y1; y++ {
			for x := r.x0; x < r.x1; x++ {
				d := base.cells[y*base.nx+x].count - mean
				s += d * d
			}
		}
		return s
	}

	// bestSplit finds the split of r that minimizes the sum of child
	// skews; returns reduction <= 0 when no split helps.
	bestSplit := func(r region) (a, b region, reduction float64) {
		parent := skew(r)
		best := -1.0
		for x := r.x0 + 1; x < r.x1; x++ {
			l := region{r.x0, r.y0, x, r.y1}
			rr := region{x, r.y0, r.x1, r.y1}
			red := parent - skew(l) - skew(rr)
			if red > best {
				best, a, b = red, l, rr
			}
		}
		for y := r.y0 + 1; y < r.y1; y++ {
			lo := region{r.x0, r.y0, r.x1, y}
			hi := region{r.x0, y, r.x1, r.y1}
			red := parent - skew(lo) - skew(hi)
			if red > best {
				best, a, b = red, lo, hi
			}
		}
		return a, b, best
	}

	// Greedy refinement with a max-heap of (region, skew).
	h := &regionHeap{}
	heap.Init(h)
	root := region{0, 0, base.nx, base.ny}
	heap.Push(h, regionEntry{r: root, skew: skew(root)})
	regions := []region{}
	for h.Len() > 0 && h.Len()+len(regions) < maxBuckets {
		top := heap.Pop(h).(regionEntry)
		r := top.r.(region)
		a, b, red := bestSplit(r)
		if red <= 0 {
			regions = append(regions, r) // already uniform
			continue
		}
		heap.Push(h, regionEntry{r: a, skew: skew(a)})
		heap.Push(h, regionEntry{r: b, skew: skew(b)})
	}
	for h.Len() > 0 {
		regions = append(regions, heap.Pop(h).(regionEntry).r.(region))
	}

	// Materialize buckets in universe coordinates. Each bucket is
	// trimmed to the bounding box of its non-empty cells first — the
	// standard MinSkew refinement that stops a mostly-empty region from
	// smearing its few rectangles across dead space.
	cw := float64(base.universe.Width()) / float64(base.nx)
	ch := float64(base.universe.Height()) / float64(base.ny)
	for _, r := range regions {
		count, sumW, sumH := sumCount(r)
		if count > 0 {
			tx0, ty0, tx1, ty1 := r.x1, r.y1, r.x0, r.y0
			for y := r.y0; y < r.y1; y++ {
				for x := r.x0; x < r.x1; x++ {
					if base.cells[y*base.nx+x].count > 0 {
						if x < tx0 {
							tx0 = x
						}
						if x+1 > tx1 {
							tx1 = x + 1
						}
						if y < ty0 {
							ty0 = y
						}
						if y+1 > ty1 {
							ty1 = y + 1
						}
					}
				}
			}
			r = region{tx0, ty0, tx1, ty1}
		}
		bkt := Bucket{
			Region: geom.NewRect(
				base.universe.XLo+geom.Coord(float64(r.x0)*cw),
				base.universe.YLo+geom.Coord(float64(r.y0)*ch),
				base.universe.XLo+geom.Coord(float64(r.x1)*cw),
				base.universe.YLo+geom.Coord(float64(r.y1)*ch)),
			Count: count,
		}
		if count > 0 {
			bkt.AvgW = sumW / count
			bkt.AvgH = sumH / count
		}
		ms.buckets = append(ms.buckets, bkt)
		ms.total += count
	}
	return ms, nil
}

type regionEntry struct {
	r    any
	skew float64
}

type regionHeap []regionEntry

func (h regionHeap) Len() int           { return len(h) }
func (h regionHeap) Less(i, j int) bool { return h[i].skew > h[j].skew } // max-heap
func (h regionHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *regionHeap) Push(x any)        { *h = append(*h, x.(regionEntry)) }
func (h *regionHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Buckets returns the histogram's buckets.
func (ms *MinSkew) Buckets() []Bucket { return ms.buckets }

// Total returns the total mass (cell-weighted count) captured.
func (ms *MinSkew) Total() float64 { return ms.total }

// FractionInWindow estimates the share of the relation's mass inside
// the window, assuming per-bucket uniformity — the estimate [1] is
// built to make accurate on skewed data.
func (ms *MinSkew) FractionInWindow(w geom.Rect) float64 {
	if ms.total == 0 {
		return 0
	}
	var hit float64
	for _, b := range ms.buckets {
		in, ok := b.Region.Intersection(w)
		if !ok || b.Count == 0 {
			continue
		}
		area := b.Region.Area()
		if area <= 0 {
			hit += b.Count
			continue
		}
		hit += b.Count * in.Area() / area
	}
	f := hit / ms.total
	if f > 1 {
		f = 1
	}
	return f
}

// OverlapFraction estimates the share of this relation's mass lying in
// regions where other has presence. Presence is modelled as Poisson
// coverage: within the intersection of a pair of buckets, the expected
// number of other-relation rectangles is density x area, and the
// probability that the region is touched at all is 1 - e^(-expected).
// This keeps a huge, nearly-empty bucket (an artifact of per-bucket
// uniformity at small budgets) from claiming presence everywhere.
func (ms *MinSkew) OverlapFraction(other *MinSkew) float64 {
	if ms.total == 0 {
		return 0
	}
	var hit float64
	for _, b := range ms.buckets {
		if b.Count == 0 {
			continue
		}
		var expected float64
		for _, o := range other.buckets {
			if o.Count == 0 {
				continue
			}
			in, ok := b.Region.Intersection(o.Region)
			if !ok {
				continue
			}
			oArea := o.Region.Area()
			if oArea <= 0 {
				expected += o.Count
				continue
			}
			expected += o.Count * in.Area() / oArea
		}
		hit += b.Count * (1 - math.Exp(-expected))
	}
	f := hit / ms.total
	if f > 1 {
		f = 1
	}
	return f
}
