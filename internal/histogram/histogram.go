// Package histogram provides grid-based spatial histograms in the
// spirit of Acharya, Poosala, and Ramaswamy [1], which the paper
// proposes as the estimation machinery behind its cost model
// (Section 6.3): before choosing between an index-based and a
// sort-based join, estimate what fraction of the index's leaf pages
// the join would actually touch.
//
// A Grid partitions the universe into nx x ny cells and records, per
// cell, how many rectangles overlap it and their cumulative extents.
// Two derived estimates drive the planner:
//
//   - OverlapFraction: the fraction of this relation's mass lying in
//     cells where the other relation is present — a proxy for the
//     fraction of leaf pages a join touches;
//   - EstimateJoinPairs: a coarse output-cardinality estimate from
//     per-cell densities and average extents.
package histogram

import (
	"fmt"

	"unijoin/internal/geom"
	"unijoin/internal/iosim"
	"unijoin/internal/stream"
)

// DefaultResolution is the per-axis cell count used when callers do
// not override it: 64x64 cells keeps the histogram a few tens of
// kilobytes, far below the memory budget of any machine in Table 1.
const DefaultResolution = 64

// cell aggregates the rectangles overlapping one grid cell.
type cell struct {
	count float64
	sumW  float64
	sumH  float64
}

// Grid is a spatial histogram over a fixed universe.
type Grid struct {
	universe geom.Rect
	nx, ny   int
	cells    []cell
	total    int64 // rectangles added
}

// New returns an empty grid over universe with nx x ny cells.
func New(universe geom.Rect, nx, ny int) *Grid {
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	return &Grid{universe: universe, nx: nx, ny: ny, cells: make([]cell, nx*ny)}
}

// Universe returns the grid's universe.
func (g *Grid) Universe() geom.Rect { return g.universe }

// Total returns the number of rectangles added.
func (g *Grid) Total() int64 { return g.total }

// Bytes returns the approximate resident size of the histogram.
func (g *Grid) Bytes() int { return len(g.cells)*24 + 64 }

// cellSpan returns the index range of cells a rectangle overlaps,
// clamped to the grid.
func (g *Grid) cellSpan(r geom.Rect) (x0, y0, x1, y1 int) {
	w := float64(g.universe.Width())
	h := float64(g.universe.Height())
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	fx := func(x geom.Coord) int {
		i := int(float64(x-g.universe.XLo) / w * float64(g.nx))
		if i < 0 {
			i = 0
		}
		if i >= g.nx {
			i = g.nx - 1
		}
		return i
	}
	fy := func(y geom.Coord) int {
		j := int(float64(y-g.universe.YLo) / h * float64(g.ny))
		if j < 0 {
			j = 0
		}
		if j >= g.ny {
			j = g.ny - 1
		}
		return j
	}
	return fx(r.XLo), fy(r.YLo), fx(r.XHi), fy(r.YHi)
}

// Add records one rectangle in every cell it overlaps.
func (g *Grid) Add(r geom.Rect) {
	x0, y0, x1, y1 := g.cellSpan(r)
	w := float64(r.Width())
	h := float64(r.Height())
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			c := &g.cells[y*g.nx+x]
			c.count++
			c.sumW += w
			c.sumH += h
		}
	}
	g.total++
}

// Build scans a record stream into a fresh grid. The scan is
// sequential I/O on the simulated disk, the same single pass the
// paper's estimation pass would cost.
func Build(f *iosim.File, universe geom.Rect, nx, ny int) (*Grid, error) {
	g := New(universe, nx, ny)
	r := stream.NewReader(f, stream.Records)
	for {
		rec, ok, err := r.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return g, nil
		}
		g.Add(rec.Rect)
	}
}

// BuildFromSlice builds a grid from in-memory records.
func BuildFromSlice(recs []geom.Record, universe geom.Rect, nx, ny int) *Grid {
	g := New(universe, nx, ny)
	for _, r := range recs {
		g.Add(r.Rect)
	}
	return g
}

// OverlapFraction estimates the fraction of this relation's leaf pages
// a join with other would touch: the share of this grid's mass lying
// in cells where other has any presence. It is 0 when either relation
// is empty and 1 when other covers everything this relation occupies.
func (g *Grid) OverlapFraction(other *Grid) (float64, error) {
	if err := g.compatible(other); err != nil {
		return 0, err
	}
	var mass, hit float64
	for i := range g.cells {
		c := g.cells[i].count
		mass += c
		if other.cells[i].count > 0 {
			hit += c
		}
	}
	if mass == 0 {
		return 0, nil
	}
	return hit / mass, nil
}

// FractionInWindow estimates the share of this relation's mass inside
// the window.
func (g *Grid) FractionInWindow(w geom.Rect) float64 {
	if g.total == 0 {
		return 0
	}
	x0, y0, x1, y1 := g.cellSpan(w)
	var mass, hit float64
	for j := 0; j < g.ny; j++ {
		for i := 0; i < g.nx; i++ {
			c := g.cells[j*g.nx+i].count
			mass += c
			if i >= x0 && i <= x1 && j >= y0 && j <= y1 {
				hit += c
			}
		}
	}
	if mass == 0 {
		return 0
	}
	return hit / mass
}

// EstimateJoinPairs coarsely estimates the number of intersecting
// pairs between the two relations: within each cell, rectangles are
// modeled as uniformly placed with the cell's average extents, so the
// probability that an (a, b) pair intersects is roughly
// ((wa+wb)(ha+hb)) / cell area, capped at 1. Cross-cell double
// counting is compensated by dividing each rectangle's contribution by
// the number of cells it overlaps (approximated from extents).
func (g *Grid) EstimateJoinPairs(other *Grid) (float64, error) {
	if err := g.compatible(other); err != nil {
		return 0, err
	}
	cellW := float64(g.universe.Width()) / float64(g.nx)
	cellH := float64(g.universe.Height()) / float64(g.ny)
	if cellW <= 0 || cellH <= 0 {
		return 0, fmt.Errorf("histogram: degenerate universe %v", g.universe)
	}
	cellArea := cellW * cellH
	var est float64
	for i := range g.cells {
		a, b := g.cells[i], other.cells[i]
		if a.count == 0 || b.count == 0 {
			continue
		}
		wa, ha := a.sumW/a.count, a.sumH/a.count
		wb, hb := b.sumW/b.count, b.sumH/b.count
		p := (wa + wb) * (ha + hb) / cellArea
		if p > 1 {
			p = 1
		}
		// Spans in cells of an average rectangle, for replication
		// compensation.
		spanA := (wa/cellW + 1) * (ha/cellH + 1)
		spanB := (wb/cellW + 1) * (hb/cellH + 1)
		est += a.count * b.count * p / (spanA * spanB)
	}
	return est, nil
}

func (g *Grid) compatible(other *Grid) error {
	if g.nx != other.nx || g.ny != other.ny || g.universe != other.universe {
		return fmt.Errorf("histogram: incompatible grids (%dx%d over %v vs %dx%d over %v)",
			g.nx, g.ny, g.universe, other.nx, other.ny, other.universe)
	}
	return nil
}
