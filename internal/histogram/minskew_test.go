package histogram

import (
	"math/rand"
	"testing"

	"unijoin/internal/datagen"
	"unijoin/internal/geom"
)

func clusteredRecords(seed int64, n int, u geom.Rect) []geom.Record {
	terr := datagen.NewTerrain(seed, u, 10)
	return datagen.Roads(terr, seed+1, n, datagen.RoadParams{MeanLen: 0.01})
}

func TestMinSkewBucketBudgetRespected(t *testing.T) {
	u := geom.NewRect(0, 0, 1000, 1000)
	base := BuildFromSlice(clusteredRecords(1, 5000, u), u, 32, 32)
	for _, budget := range []int{1, 4, 16, 64} {
		ms, err := BuildMinSkew(base, budget)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms.Buckets()) > budget {
			t.Fatalf("budget %d: got %d buckets", budget, len(ms.Buckets()))
		}
		if len(ms.Buckets()) == 0 {
			t.Fatal("no buckets")
		}
	}
	if _, err := BuildMinSkew(base, 0); err == nil {
		t.Fatal("zero budget must error")
	}
}

func TestMinSkewMassConserved(t *testing.T) {
	u := geom.NewRect(0, 0, 1000, 1000)
	recs := clusteredRecords(2, 4000, u)
	base := BuildFromSlice(recs, u, 32, 32)
	ms, err := BuildMinSkew(base, 32)
	if err != nil {
		t.Fatal(err)
	}
	var baseTotal float64
	for _, c := range base.cells {
		baseTotal += c.count
	}
	var msTotal float64
	for _, b := range ms.Buckets() {
		msTotal += b.Count
	}
	if msTotal != baseTotal || ms.Total() != baseTotal {
		t.Fatalf("mass not conserved: %g vs %g", msTotal, baseTotal)
	}
}

func TestMinSkewBucketsAdaptToClusters(t *testing.T) {
	// With clustered data, buckets around the clusters must be smaller
	// than buckets over empty land.
	u := geom.NewRect(0, 0, 1000, 1000)
	var recs []geom.Record
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 4000; i++ { // dense cluster in one corner
		x := float32(rng.Float64() * 100)
		y := float32(rng.Float64() * 100)
		recs = append(recs, geom.Record{Rect: geom.NewRect(x, y, x+2, y+2), ID: uint32(i)})
	}
	base := BuildFromSlice(recs, u, 32, 32)
	ms, err := BuildMinSkew(base, 24)
	if err != nil {
		t.Fatal(err)
	}
	var denseArea, emptyArea float64
	var denseN, emptyN int
	for _, b := range ms.Buckets() {
		if b.Count > 0 {
			denseArea += b.Region.Area()
			denseN++
		} else {
			emptyArea += b.Region.Area()
			emptyN++
		}
	}
	if denseN == 0 || emptyN == 0 {
		t.Fatalf("expected both dense and empty buckets: %d dense, %d empty", denseN, emptyN)
	}
	if denseArea/float64(denseN) >= emptyArea/float64(emptyN) {
		t.Fatalf("dense buckets should be smaller on average: %.0f vs %.0f",
			denseArea/float64(denseN), emptyArea/float64(emptyN))
	}
}

func TestMinSkewWindowEstimateBeatsGridOnSkewedData(t *testing.T) {
	// The reason [1] exists: on skewed data, adaptive buckets estimate
	// window selectivity better than a coarse uniform grid with the
	// same budget.
	u := geom.NewRect(0, 0, 1000, 1000)
	rng := rand.New(rand.NewSource(4))
	var recs []geom.Record
	for i := 0; i < 6000; i++ {
		// 90% in a tight cluster, 10% background.
		var x, y float32
		if rng.Float64() < 0.9 {
			x = float32(50 + rng.Float64()*60)
			y = float32(50 + rng.Float64()*60)
		} else {
			x = float32(rng.Float64() * 990)
			y = float32(rng.Float64() * 990)
		}
		recs = append(recs, geom.Record{Rect: geom.NewRect(x, y, x+2, y+2), ID: uint32(i)})
	}
	// Budget-matched comparison: a 4x4 grid (16 cells) vs MinSkew with
	// 16 buckets refined from a fine base grid.
	coarse := BuildFromSlice(recs, u, 4, 4)
	fine := BuildFromSlice(recs, u, 64, 64)
	ms, err := BuildMinSkew(fine, 16)
	if err != nil {
		t.Fatal(err)
	}

	truth := func(w geom.Rect) float64 {
		n := 0
		for _, r := range recs {
			if r.Rect.Intersects(w) {
				n++
			}
		}
		return float64(n) / float64(len(recs))
	}
	var gridErr, msErr float64
	windows := []geom.Rect{
		geom.NewRect(40, 40, 130, 130),   // the cluster
		geom.NewRect(0, 0, 250, 250),     // quarter containing cluster
		geom.NewRect(500, 500, 750, 750), // empty-ish quadrant
		geom.NewRect(60, 60, 90, 90),     // inside the cluster
	}
	for _, w := range windows {
		want := truth(w)
		gridErr += abs(coarse.FractionInWindow(w) - want)
		msErr += abs(ms.FractionInWindow(w) - want)
	}
	if msErr >= gridErr {
		t.Fatalf("MinSkew total error %.3f should beat coarse grid %.3f", msErr, gridErr)
	}
}

func TestMinSkewOverlapFraction(t *testing.T) {
	// Bounded-extent uniform data on the two halves: the base grid has
	// strictly zero cells in the gap, so refinement can isolate it.
	u := geom.NewRect(0, 0, 1000, 1000)
	left := BuildFromSlice(datagen.Uniform(5, 3000, geom.NewRect(0, 0, 440, 1000), 8), u, 32, 32)
	right := BuildFromSlice(datagen.Uniform(6, 3000, geom.NewRect(560, 0, 1000, 1000), 8), u, 32, 32)
	msL, err := BuildMinSkew(left, 32)
	if err != nil {
		t.Fatal(err)
	}
	msR, err := BuildMinSkew(right, 32)
	if err != nil {
		t.Fatal(err)
	}
	disjoint := msL.OverlapFraction(msR)
	self := msL.OverlapFraction(msL)
	if disjoint > 0.5 {
		t.Fatalf("disjoint relations should overlap little: %g", disjoint)
	}
	if self < 0.8 {
		t.Fatalf("self overlap should be near 1: %g", self)
	}
	if disjoint >= self {
		t.Fatalf("disjoint (%g) must be well below self (%g)", disjoint, self)
	}
	empty, _ := BuildMinSkew(New(u, 8, 8), 8)
	if empty.FractionInWindow(u) != 0 || empty.OverlapFraction(msL) != 0 {
		t.Fatal("empty histogram must estimate 0")
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
