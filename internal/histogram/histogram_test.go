package histogram

import (
	"math"
	"math/rand"
	"testing"

	"unijoin/internal/geom"
	"unijoin/internal/iosim"
	"unijoin/internal/stream"
)

func universe() geom.Rect { return geom.NewRect(0, 0, 1000, 1000) }

func TestAddAndTotal(t *testing.T) {
	g := New(universe(), 10, 10)
	g.Add(geom.NewRect(0, 0, 50, 50))
	g.Add(geom.NewRect(500, 500, 550, 550))
	if g.Total() != 2 {
		t.Fatalf("total = %d", g.Total())
	}
	if g.Bytes() <= 0 {
		t.Fatal("bytes must be positive")
	}
}

func TestOverlapFractionDisjointAndFull(t *testing.T) {
	a := New(universe(), 10, 10)
	b := New(universe(), 10, 10)
	// a occupies the left half, b the right half: no shared cells.
	for i := 0; i < 100; i++ {
		a.Add(geom.NewRect(float32(i%4)*100, float32(i%10)*100, float32(i%4)*100+50, float32(i%10)*100+50))
		b.Add(geom.NewRect(600+float32(i%4)*100, float32(i%10)*100, 600+float32(i%4)*100+50, float32(i%10)*100+50))
	}
	f, err := a.OverlapFraction(b)
	if err != nil {
		t.Fatal(err)
	}
	if f != 0 {
		t.Fatalf("disjoint fraction = %g", f)
	}
	// Against itself: full overlap.
	f, err = a.OverlapFraction(a)
	if err != nil {
		t.Fatal(err)
	}
	if f != 1 {
		t.Fatalf("self fraction = %g", f)
	}
}

func TestOverlapFractionPartial(t *testing.T) {
	a := New(universe(), 10, 10)
	b := New(universe(), 10, 10)
	// a is spread uniformly; b occupies ~half the area.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		x := float32(rng.Float64() * 950)
		y := float32(rng.Float64() * 950)
		a.Add(geom.NewRect(x, y, x+5, y+5))
	}
	for i := 0; i < 500; i++ {
		x := float32(rng.Float64() * 450)
		y := float32(rng.Float64() * 950)
		b.Add(geom.NewRect(x, y, x+5, y+5))
	}
	f, err := a.OverlapFraction(b)
	if err != nil {
		t.Fatal(err)
	}
	if f < 0.35 || f > 0.65 {
		t.Fatalf("fraction = %g, want about 0.5", f)
	}
}

func TestOverlapFractionEmpty(t *testing.T) {
	a := New(universe(), 4, 4)
	b := New(universe(), 4, 4)
	f, err := a.OverlapFraction(b)
	if err != nil || f != 0 {
		t.Fatalf("empty overlap: f=%g err=%v", f, err)
	}
}

func TestIncompatibleGrids(t *testing.T) {
	a := New(universe(), 4, 4)
	b := New(universe(), 8, 8)
	if _, err := a.OverlapFraction(b); err == nil {
		t.Fatal("resolution mismatch must error")
	}
	c := New(geom.NewRect(0, 0, 10, 10), 4, 4)
	if _, err := a.OverlapFraction(c); err == nil {
		t.Fatal("universe mismatch must error")
	}
	if _, err := a.EstimateJoinPairs(b); err == nil {
		t.Fatal("EstimateJoinPairs must check compatibility")
	}
}

func TestFractionInWindow(t *testing.T) {
	g := New(universe(), 20, 20)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 4000; i++ {
		x := float32(rng.Float64() * 990)
		y := float32(rng.Float64() * 990)
		g.Add(geom.NewRect(x, y, x+2, y+2))
	}
	f := g.FractionInWindow(geom.NewRect(0, 0, 250, 1000))
	if f < 0.18 || f > 0.35 {
		t.Fatalf("window fraction = %g, want about 0.25", f)
	}
	if g.FractionInWindow(universe()) != 1 {
		t.Fatal("full window must capture everything")
	}
	empty := New(universe(), 4, 4)
	if empty.FractionInWindow(universe()) != 0 {
		t.Fatal("empty histogram has no mass")
	}
}

func TestEstimateJoinPairsOrderOfMagnitude(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var ra, rb []geom.Record
	for i := 0; i < 1500; i++ {
		x := float32(rng.Float64() * 950)
		y := float32(rng.Float64() * 950)
		ra = append(ra, geom.Record{Rect: geom.NewRect(x, y, x+20, y+20), ID: uint32(i)})
	}
	for i := 0; i < 1500; i++ {
		x := float32(rng.Float64() * 950)
		y := float32(rng.Float64() * 950)
		rb = append(rb, geom.Record{Rect: geom.NewRect(x, y, x+20, y+20), ID: uint32(i)})
	}
	var truth float64
	for _, a := range ra {
		for _, b := range rb {
			if a.Rect.Intersects(b.Rect) {
				truth++
			}
		}
	}
	ga := BuildFromSlice(ra, universe(), 32, 32)
	gb := BuildFromSlice(rb, universe(), 32, 32)
	est, err := ga.EstimateJoinPairs(gb)
	if err != nil {
		t.Fatal(err)
	}
	if est <= 0 {
		t.Fatal("estimate must be positive")
	}
	ratio := est / truth
	if ratio < 0.2 || ratio > 5 {
		t.Fatalf("estimate %g vs truth %g (ratio %.2f) outside order-of-magnitude band",
			est, truth, ratio)
	}
}

func TestBuildFromStreamMatchesSlice(t *testing.T) {
	store := iosim.NewStore(iosim.DefaultPageSize)
	rng := rand.New(rand.NewSource(4))
	var recs []geom.Record
	for i := 0; i < 1000; i++ {
		x := float32(rng.Float64() * 900)
		y := float32(rng.Float64() * 900)
		recs = append(recs, geom.Record{Rect: geom.NewRect(x, y, x+10, y+10), ID: uint32(i)})
	}
	f, err := stream.WriteAll(store, stream.Records, recs)
	if err != nil {
		t.Fatal(err)
	}
	fromStream, err := Build(f, universe(), 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	fromSlice := BuildFromSlice(recs, universe(), 16, 16)
	fa, err := fromStream.OverlapFraction(fromSlice)
	if err != nil {
		t.Fatal(err)
	}
	if fa != 1 {
		t.Fatalf("identical data should fully overlap, got %g", fa)
	}
	if fromStream.Total() != fromSlice.Total() {
		t.Fatal("totals differ")
	}
}

func TestBuildIsOneSequentialPass(t *testing.T) {
	store := iosim.NewStore(iosim.DefaultPageSize)
	rng := rand.New(rand.NewSource(5))
	var recs []geom.Record
	for i := 0; i < 20000; i++ {
		x := float32(rng.Float64() * 900)
		recs = append(recs, geom.Record{Rect: geom.NewRect(x, x, x+1, x+1), ID: uint32(i)})
	}
	f, _ := stream.WriteAll(store, stream.Records, recs)
	store.ResetCounters()
	if _, err := Build(f, universe(), 32, 32); err != nil {
		t.Fatal(err)
	}
	c := store.Counters()
	if c.Reads() > int64(f.Pages())+1 || c.Writes() != 0 {
		t.Fatalf("histogram build should be one read pass: %v", c)
	}
	if c.RandReads > c.SeqReads {
		t.Fatalf("scan should be sequential: %v", c)
	}
}

func TestCellSpanClamping(t *testing.T) {
	g := New(universe(), 8, 8)
	g.Add(geom.NewRect(-500, -500, 2000, 2000)) // overflows universe
	if g.Total() != 1 {
		t.Fatal("record not added")
	}
	// Every cell should be touched.
	f := g.FractionInWindow(geom.NewRect(900, 900, 1000, 1000))
	if f <= 0 {
		t.Fatal("clamped record should cover boundary cells")
	}
	if math.IsNaN(f) {
		t.Fatal("NaN fraction")
	}
}

func TestDegenerateResolution(t *testing.T) {
	g := New(universe(), 0, -3) // clamped to 1x1
	g.Add(geom.NewRect(1, 1, 2, 2))
	other := New(universe(), 1, 1)
	other.Add(geom.NewRect(900, 900, 901, 901))
	f, err := g.OverlapFraction(other)
	if err != nil {
		t.Fatal(err)
	}
	if f != 1 {
		t.Fatalf("1x1 grid: everything overlaps, got %g", f)
	}
}
