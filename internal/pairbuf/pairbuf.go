// Package pairbuf pools the []geom.Pair batch buffers behind the
// EmitBatch fast path. Joins that report results in batches (the
// serial algorithms' batcher, the parallel engine's per-partition
// output buffers) borrow buffers here instead of allocating one per
// join or per partition, so a long-lived process — the query service
// the ROADMAP targets — reaches a steady state with no per-query
// buffer garbage.
package pairbuf

import (
	"sync"

	"unijoin/internal/geom"
)

// BatchSize is the capacity of a fresh buffer and the flush threshold
// used by batching emitters: large enough to amortize the callback
// indirection over thousands of pairs, small enough (64 KB of pairs)
// to stay cache- and pool-friendly.
const BatchSize = 8192

var pool = sync.Pool{
	New: func() any {
		buf := make([]geom.Pair, 0, BatchSize)
		return &buf
	},
}

// Get borrows an empty buffer with at least BatchSize capacity.
func Get() []geom.Pair {
	return (*pool.Get().(*[]geom.Pair))[:0]
}

// maxPooledCap bounds the capacity Put keeps: a join that grew a
// buffer moderately past BatchSize donates the larger capacity for
// reuse, but the outsized buffers a huge-output query can build (the
// parallel engine appends a whole partition's results) are dropped,
// so one large query does not pin its high-water-mark memory in a
// long-lived server's pool forever.
const maxPooledCap = 4 * BatchSize

// Put returns a buffer to the pool; callers must not touch the slice
// after Put. Undersized and grossly oversized buffers are dropped
// (see maxPooledCap).
func Put(buf []geom.Pair) {
	if cap(buf) < BatchSize || cap(buf) > maxPooledCap {
		return
	}
	buf = buf[:0]
	pool.Put(&buf)
}

// Batcher accumulates pairs into a pooled buffer and hands full
// batches to an EmitBatch-style callback — the shared emit machinery
// of the serial algorithms and the parallel engine's Serial baseline.
// The slice passed to fn is reused after fn returns.
type Batcher struct {
	fn  func([]geom.Pair)
	buf []geom.Pair
}

// NewBatcher borrows a pooled buffer for batching into fn.
func NewBatcher(fn func([]geom.Pair)) *Batcher {
	return &Batcher{fn: fn, buf: Get()}
}

// Emit adds one pair, flushing at the documented BatchSize threshold.
// The threshold is independent of the buffer's capacity: a pool-
// donated buffer may hold up to maxPooledCap pairs, and flushing only
// when it filled would deliver batches 4x the contract.
func (b *Batcher) Emit(p geom.Pair) {
	b.buf = append(b.buf, p)
	if len(b.buf) >= BatchSize {
		b.Flush()
	}
}

// Flush delivers any buffered pairs to the callback.
func (b *Batcher) Flush() {
	if len(b.buf) > 0 {
		b.fn(b.buf)
		b.buf = b.buf[:0]
	}
}

// Release returns the buffer to the pool; the Batcher must not be
// used afterwards. Callers flush first on success paths (an errored
// join drops its unflushed tail).
func (b *Batcher) Release() {
	Put(b.buf)
	b.buf = nil
}
