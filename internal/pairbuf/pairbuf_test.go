package pairbuf

import (
	"testing"

	"unijoin/internal/geom"
)

func TestGetPutRoundTrip(t *testing.T) {
	b := Get()
	if len(b) != 0 || cap(b) < BatchSize {
		t.Fatalf("fresh buffer: len %d cap %d", len(b), cap(b))
	}
	b = append(b, geom.Pair{Left: 1, Right: 2})
	Put(b)
	b2 := Get()
	if len(b2) != 0 {
		t.Fatalf("reused buffer not reset: len %d", len(b2))
	}
}

func TestPutRejectsUndersized(t *testing.T) {
	Put(make([]geom.Pair, 0, 4)) // must not enter the pool
	b := Get()
	if cap(b) < BatchSize {
		t.Fatalf("pool handed out an undersized buffer: cap %d", cap(b))
	}
}

func TestBatcherFlushesAtBatchSizeWithDonatedCapacity(t *testing.T) {
	// A pool-donated buffer can arrive with up to maxPooledCap
	// capacity; Emit must still deliver batches of BatchSize, not
	// wait for the larger buffer to fill.
	var batches []int
	b := &Batcher{
		fn:  func(ps []geom.Pair) { batches = append(batches, len(ps)) },
		buf: make([]geom.Pair, 0, maxPooledCap),
	}
	for i := 0; i < 2*BatchSize+5; i++ {
		b.Emit(geom.Pair{Left: geom.ID(i)})
	}
	b.Flush()
	b.Release()
	want := []int{BatchSize, BatchSize, 5}
	if len(batches) != len(want) {
		t.Fatalf("batch sizes = %v, want %v", batches, want)
	}
	for i, n := range want {
		if batches[i] != n {
			t.Fatalf("batch sizes = %v, want %v", batches, want)
		}
	}
}

func TestGrownBuffersAreKept(t *testing.T) {
	b := make([]geom.Pair, 0, 4*BatchSize)
	Put(b)
	// Whatever Get returns next must satisfy the capacity contract.
	if got := Get(); cap(got) < BatchSize {
		t.Fatalf("cap %d < BatchSize", cap(got))
	}
}
