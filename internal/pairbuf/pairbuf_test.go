package pairbuf

import (
	"testing"

	"unijoin/internal/geom"
)

func TestGetPutRoundTrip(t *testing.T) {
	b := Get()
	if len(b) != 0 || cap(b) < BatchSize {
		t.Fatalf("fresh buffer: len %d cap %d", len(b), cap(b))
	}
	b = append(b, geom.Pair{Left: 1, Right: 2})
	Put(b)
	b2 := Get()
	if len(b2) != 0 {
		t.Fatalf("reused buffer not reset: len %d", len(b2))
	}
}

func TestPutRejectsUndersized(t *testing.T) {
	Put(make([]geom.Pair, 0, 4)) // must not enter the pool
	b := Get()
	if cap(b) < BatchSize {
		t.Fatalf("pool handed out an undersized buffer: cap %d", cap(b))
	}
}

func TestGrownBuffersAreKept(t *testing.T) {
	b := make([]geom.Pair, 0, 4*BatchSize)
	Put(b)
	// Whatever Get returns next must satisfy the capacity contract.
	if got := Get(); cap(got) < BatchSize {
		t.Fatalf("cap %d < BatchSize", cap(got))
	}
}
