// Package extpq provides an external-memory priority queue over the
// simulated disk. Section 4 of the paper notes that PQ "can be
// modified to handle overflow gracefully by using an external priority
// queue [2, 9]" — the buffer tree of Arge and the worst-case efficient
// queue of Brodal and Katajainen. This package implements the
// practical two-level design those structures reduce to for the access
// pattern at hand (monotone extraction):
//
//   - a bounded in-memory heap holds the smallest keys;
//   - when insertions overflow memory, the largest in-memory elements
//     are spilled to disk as a sorted run (sequential write);
//   - when extraction drains the heap, the runs are refilled from by a
//     streaming merge (mostly sequential reads), bounded again by the
//     memory budget.
//
// For a monotone workload (every inserted key is at least the last
// extracted key — exactly what the PQ traversal produces, since a
// child's lower y is never below its parent's) the structure performs
// O(1/B) amortized I/Os per operation, the buffer-tree bound.
package extpq

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"math"
	"slices"

	"unijoin/internal/geom"
	"unijoin/internal/iosim"
	"unijoin/internal/stream"
)

// Item is one queue element: a float32 key (lower y in the PQ join)
// and an opaque 16-byte payload.
type Item struct {
	Key     float32
	Payload [16]byte
}

// itemSize is the on-disk encoding size of an Item.
const itemSize = 4 + 16

// itemCodec serializes items for spill runs.
var itemCodec = stream.Codec[Item]{
	Size: itemSize,
	Encode: func(dst []byte, v Item) {
		binary.LittleEndian.PutUint32(dst[0:], math.Float32bits(v.Key))
		copy(dst[4:], v.Payload[:])
	},
	Decode: func(src []byte) Item {
		var it Item
		it.Key = math.Float32frombits(binary.LittleEndian.Uint32(src[0:]))
		copy(it.Payload[:], src[4:itemSize])
		return it
	},
}

// Queue is the external priority queue. It is not safe for concurrent
// use.
type Queue struct {
	store    *iosim.Store
	memItems int // max items held in memory

	mem  itemHeap
	runs []*runReader // spilled sorted runs, each with a one-item lookahead

	size    int64
	maxDisk int64 // peak items on disk
	spills  int
}

// runReader streams one spilled run with a lookahead head.
type runReader struct {
	r    *stream.Reader[Item]
	head Item
	ok   bool
	file *iosim.File
}

// New creates a queue that holds at most memBytes of items in memory
// (minimum a few hundred items) and spills to store beyond that.
func New(store *iosim.Store, memBytes int) *Queue {
	memItems := memBytes / itemSize
	if memItems < 256 {
		memItems = 256
	}
	return &Queue{store: store, memItems: memItems}
}

// Len returns the total number of queued items (memory + disk).
func (q *Queue) Len() int64 { return q.size }

// Spills returns how many overflow spills have occurred.
func (q *Queue) Spills() int { return q.spills }

// MaxDiskItems returns the peak number of items resident on disk.
func (q *Queue) MaxDiskItems() int64 { return q.maxDisk }

// Push inserts an item.
func (q *Queue) Push(it Item) error {
	heap.Push(&q.mem, it)
	q.size++
	if q.mem.Len() > q.memItems {
		return q.spill()
	}
	return nil
}

// Pop removes and returns the minimum item. ok is false when the queue
// is empty. The global minimum is either the in-memory heap's top or
// one of the spilled runs' lookahead heads.
func (q *Queue) Pop() (Item, bool, error) {
	const none, fromHeap = -2, -1
	best := none
	var bestKey float32
	if q.mem.Len() > 0 {
		best, bestKey = fromHeap, q.mem.items[0].Key
	}
	for i, r := range q.runs {
		if r.ok && (best == none || r.head.Key < bestKey) {
			best, bestKey = i, r.head.Key
		}
	}
	switch best {
	case none:
		return Item{}, false, nil
	case fromHeap:
		it := heap.Pop(&q.mem).(Item)
		q.size--
		return it, true, nil
	default:
		r := q.runs[best]
		it := r.head
		if err := r.advance(); err != nil {
			return Item{}, false, err
		}
		if !r.ok {
			r.file.Release()
			q.runs = append(q.runs[:best], q.runs[best+1:]...)
		}
		q.size--
		return it, true, nil
	}
}

// spill writes the largest half of the in-memory heap to a sorted run
// on disk, keeping the smallest elements resident.
func (q *Queue) spill() error {
	n := q.mem.Len() / 2
	if n < 1 {
		return nil
	}
	// Extract all, keep smallest half, spill largest half sorted.
	items := q.mem.items
	// Partial selection: sort the whole buffer (simple and within the
	// memory budget; spills are rare by construction).
	sortItems(items)
	keep := items[:len(items)-n]
	spillSlice := items[len(items)-n:]

	f := iosim.NewFile(q.store)
	w := stream.NewWriter(f, itemCodec)
	for _, it := range spillSlice {
		if err := w.Write(it); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	rd := &runReader{r: stream.NewReader(f, itemCodec), file: f}
	if err := rd.advance(); err != nil {
		return err
	}
	if rd.ok {
		q.runs = append(q.runs, rd)
	}
	q.mem.items = append(q.mem.items[:0], keep...)
	heap.Init(&q.mem)
	q.spills++
	if disk := q.diskItems(); disk > q.maxDisk {
		q.maxDisk = disk
	}
	return nil
}

func (q *Queue) diskItems() int64 {
	var n int64
	for _, r := range q.runs {
		n += r.r.Count() // approximation: full run size
	}
	return n
}

func (r *runReader) advance() error {
	it, ok, err := r.r.Next()
	if err != nil {
		return err
	}
	r.head, r.ok = it, ok
	return nil
}

// itemHeap is a binary min-heap of items.
type itemHeap struct{ items []Item }

func (h itemHeap) Len() int           { return len(h.items) }
func (h itemHeap) Less(i, j int) bool { return h.items[i].Key < h.items[j].Key }
func (h itemHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *itemHeap) Push(x any)        { h.items = append(h.items, x.(Item)) }
func (h *itemHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// sortItems sorts by key ascending (ties in any order).
func sortItems(items []Item) {
	slices.SortFunc(items, func(a, b Item) int {
		switch {
		case a.Key < b.Key:
			return -1
		case a.Key > b.Key:
			return 1
		default:
			return 0
		}
	})
}

// RecordItem packs a geom.Record into an Item keyed by lower y.
func RecordItem(r geom.Record) Item {
	var it Item
	it.Key = r.Rect.YLo
	binary.LittleEndian.PutUint32(it.Payload[0:], math.Float32bits(r.Rect.XLo))
	binary.LittleEndian.PutUint32(it.Payload[4:], math.Float32bits(r.Rect.XHi))
	binary.LittleEndian.PutUint32(it.Payload[8:], math.Float32bits(r.Rect.YHi))
	binary.LittleEndian.PutUint32(it.Payload[12:], r.ID)
	return it
}

// ItemRecord unpacks an Item produced by RecordItem.
func ItemRecord(it Item) geom.Record {
	return geom.Record{
		Rect: geom.Rect{
			YLo: it.Key,
			XLo: math.Float32frombits(binary.LittleEndian.Uint32(it.Payload[0:])),
			XHi: math.Float32frombits(binary.LittleEndian.Uint32(it.Payload[4:])),
			YHi: math.Float32frombits(binary.LittleEndian.Uint32(it.Payload[8:])),
		},
		ID: binary.LittleEndian.Uint32(it.Payload[12:]),
	}
}

// String implements fmt.Stringer.
func (q *Queue) String() string {
	return fmt.Sprintf("extpq(%d items, %d in memory, %d runs, %d spills)",
		q.size, q.mem.Len(), len(q.runs), q.spills)
}

// Peek returns the minimum item without removing it. ok is false when
// the queue is empty.
func (q *Queue) Peek() (Item, bool) {
	const none, fromHeap = -2, -1
	best := none
	var bestKey float32
	if q.mem.Len() > 0 {
		best, bestKey = fromHeap, q.mem.items[0].Key
	}
	var bestItem Item
	if best == fromHeap {
		bestItem = q.mem.items[0]
	}
	for _, r := range q.runs {
		if r.ok && (best == none || r.head.Key < bestKey) {
			best, bestKey, bestItem = 0, r.head.Key, r.head
		}
	}
	if best == none {
		return Item{}, false
	}
	return bestItem, true
}
