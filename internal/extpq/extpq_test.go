package extpq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"unijoin/internal/geom"
	"unijoin/internal/iosim"
)

func newStore() *iosim.Store { return iosim.NewStore(iosim.DefaultPageSize) }

func TestInMemoryOrdering(t *testing.T) {
	q := New(newStore(), 1<<20)
	keys := []float32{5, 1, 3, 2, 4}
	for _, k := range keys {
		if err := q.Push(Item{Key: k}); err != nil {
			t.Fatal(err)
		}
	}
	for want := float32(1); want <= 5; want++ {
		it, ok, err := q.Pop()
		if err != nil || !ok {
			t.Fatalf("pop: ok=%v err=%v", ok, err)
		}
		if it.Key != want {
			t.Fatalf("key %g, want %g", it.Key, want)
		}
	}
	if _, ok, _ := q.Pop(); ok {
		t.Fatal("queue should be empty")
	}
	if q.Spills() != 0 {
		t.Fatal("no spill expected in memory")
	}
}

func TestSpillAndMergeSortedOutput(t *testing.T) {
	store := newStore()
	q := New(store, 0) // floor: 256 items in memory
	rng := rand.New(rand.NewSource(1))
	const n = 20000
	keys := make([]float32, n)
	for i := range keys {
		keys[i] = rng.Float32() * 1000
		if err := q.Push(Item{Key: keys[i]}); err != nil {
			t.Fatal(err)
		}
	}
	if q.Spills() == 0 {
		t.Fatal("expected spills with 20000 items and a 256-item budget")
	}
	if q.Len() != n {
		t.Fatalf("len = %d", q.Len())
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i := 0; i < n; i++ {
		it, ok, err := q.Pop()
		if err != nil || !ok {
			t.Fatalf("pop %d: ok=%v err=%v", i, ok, err)
		}
		if it.Key != keys[i] {
			t.Fatalf("pop %d: key %g, want %g", i, it.Key, keys[i])
		}
	}
	if _, ok, _ := q.Pop(); ok {
		t.Fatal("drained queue should be empty")
	}
	if q.MaxDiskItems() == 0 {
		t.Fatal("disk high-water mark not tracked")
	}
}

func TestInterleavedPushPopMonotone(t *testing.T) {
	// The PQ traversal's pattern: pops are monotone, pushes never go
	// below the last pop.
	store := newStore()
	q := New(store, 0)
	rng := rand.New(rand.NewSource(2))
	last := float32(0)
	pending := 0
	var popped []float32
	for step := 0; step < 50000; step++ {
		if pending == 0 || (rng.Intn(2) == 0 && pending < 5000) {
			key := last + rng.Float32()*10
			if err := q.Push(Item{Key: key}); err != nil {
				t.Fatal(err)
			}
			pending++
		} else {
			it, ok, err := q.Pop()
			if err != nil || !ok {
				t.Fatalf("pop: ok=%v err=%v", ok, err)
			}
			if it.Key < last {
				t.Fatalf("non-monotone pop: %g after %g", it.Key, last)
			}
			last = it.Key
			popped = append(popped, it.Key)
			pending--
		}
	}
	for i := 1; i < len(popped); i++ {
		if popped[i] < popped[i-1] {
			t.Fatal("output not sorted")
		}
	}
}

func TestQuickPropertyHeapEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		store := newStore()
		q := New(store, 0)
		n := 500 + rng.Intn(2000)
		keys := make([]float32, n)
		for i := range keys {
			keys[i] = float32(rng.Intn(10000))
			if err := q.Push(Item{Key: keys[i]}); err != nil {
				return false
			}
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for i := 0; i < n; i++ {
			it, ok, err := q.Pop()
			if err != nil || !ok || it.Key != keys[i] {
				return false
			}
		}
		_, ok, _ := q.Pop()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPayloadSurvivesSpill(t *testing.T) {
	store := newStore()
	q := New(store, 0)
	recs := make(map[uint32]geom.Record)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		x := rng.Float32() * 100
		y := rng.Float32() * 100
		r := geom.Record{Rect: geom.NewRect(x, y, x+1, y+1), ID: uint32(i)}
		recs[r.ID] = r
		if err := q.Push(RecordItem(r)); err != nil {
			t.Fatal(err)
		}
	}
	if q.Spills() == 0 {
		t.Fatal("expected spills")
	}
	count := 0
	for {
		it, ok, err := q.Pop()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got := ItemRecord(it)
		want, exists := recs[got.ID]
		if !exists || got != want {
			t.Fatalf("payload corrupted: %v vs %v", got, want)
		}
		delete(recs, got.ID)
		count++
	}
	if count != 5000 || len(recs) != 0 {
		t.Fatalf("drained %d, %d missing", count, len(recs))
	}
}

func TestSpillIOIsMostlySequential(t *testing.T) {
	// Each spill must write a multi-page run for sequentiality to be
	// observable; use a budget whose half-spills span several pages.
	store := newStore()
	q := New(store, 64<<10)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100000; i++ {
		if err := q.Push(Item{Key: rng.Float32()}); err != nil {
			t.Fatal(err)
		}
	}
	c := store.Counters()
	if c.Writes() == 0 {
		t.Fatal("spills should write")
	}
	if c.SeqWrites < c.RandWrites {
		t.Fatalf("spill runs should be written sequentially: %v", c)
	}
}

func TestRecordItemRoundTrip(t *testing.T) {
	f := func(xlo, ylo, xhi, yhi float32, id uint32) bool {
		r := geom.Record{Rect: geom.Rect{XLo: xlo, YLo: ylo, XHi: xhi, YHi: yhi}, ID: id}
		return ItemRecord(RecordItem(r)) == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStringer(t *testing.T) {
	q := New(newStore(), 1<<20)
	_ = q.Push(Item{Key: 1})
	if q.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestPeekAgreesWithPop(t *testing.T) {
	store := newStore()
	q := New(store, 0)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		if err := q.Push(Item{Key: rng.Float32() * 100}); err != nil {
			t.Fatal(err)
		}
	}
	for {
		peeked, okPeek := q.Peek()
		it, ok, err := q.Pop()
		if err != nil {
			t.Fatal(err)
		}
		if ok != okPeek {
			t.Fatalf("peek/pop disagree on emptiness: %v vs %v", okPeek, ok)
		}
		if !ok {
			break
		}
		if peeked.Key != it.Key {
			t.Fatalf("peek %g != pop %g", peeked.Key, it.Key)
		}
	}
}

func TestEmptyQueue(t *testing.T) {
	q := New(newStore(), 1<<20)
	if _, ok := q.Peek(); ok {
		t.Fatal("empty peek should report empty")
	}
	if _, ok, err := q.Pop(); ok || err != nil {
		t.Fatalf("empty pop: ok=%v err=%v", ok, err)
	}
	if q.Len() != 0 {
		t.Fatal("empty length")
	}
}
