package sweep

import "unijoin/internal/geom"

// forwardEntrySize approximates the resident bytes per active entry in
// the Forward structure: the 20-byte record padded to its in-memory
// struct size.
const forwardEntrySize = 24

// Forward is the Forward-Sweep active list: an unordered slice of the
// rectangles currently cut by the sweep line. A query walks the entire
// list, removing entries that expired below the query's bottom edge and
// testing x-overlap on the survivors. Insertions are O(1); queries are
// O(active). It is the structure used by the original implementations
// of the tree join [8] and PBSM [30], and the baseline that
// Striped-Sweep beats by a factor of 2-5 in [4].
type Forward struct {
	active []geom.Record
	cmps   int64
}

var _ Structure = (*Forward)(nil)

// NewForward returns an empty Forward structure.
func NewForward() *Forward { return &Forward{} }

// Insert implements Structure.
func (f *Forward) Insert(r geom.Record) {
	f.active = append(f.active, r)
}

// QueryExpire implements Structure. Expiry strictly below q.Rect.YLo
// keeps rectangles whose top edge touches the sweep line, preserving
// closed-rectangle semantics.
func (f *Forward) QueryExpire(q geom.Record, emit func(geom.Record)) {
	i := 0
	for i < len(f.active) {
		s := f.active[i]
		f.cmps++
		if s.Rect.YHi < q.Rect.YLo {
			// Expired: swap-delete. Order within the list is irrelevant.
			last := len(f.active) - 1
			f.active[i] = f.active[last]
			f.active = f.active[:last]
			continue
		}
		f.cmps++
		if s.Rect.IntersectsX(q.Rect) {
			emit(s)
		}
		i++
	}
}

// Len implements Structure.
func (f *Forward) Len() int { return len(f.active) }

// Bytes implements Structure.
func (f *Forward) Bytes() int { return len(f.active) * forwardEntrySize }

// Comparisons implements Structure.
func (f *Forward) Comparisons() int64 { return f.cmps }

// Reset implements Structure.
func (f *Forward) Reset() {
	f.active = f.active[:0]
	f.cmps = 0
}
