package sweep

import (
	"fmt"

	"unijoin/internal/geom"
)

// stripedEntrySize approximates resident bytes per registered entry.
const stripedEntrySize = 24

// stripOverhead approximates the fixed per-strip cost (two slice
// headers) counted by Bytes.
const stripOverhead = 48

// DefaultStrips is the strip count used when callers do not override
// it. Arge et al. [4] tune the strip count per data set; 256 sits in
// the regime where partial-strip tests are rare for TIGER-like data
// while per-query strip scans stay short.
const DefaultStrips = 256

// Striped is the Striped-Sweep interval structure of Arge et al. [4],
// the fastest of the internal-memory structures they compare (2-5x
// faster than Forward on most real-life data). The x-axis is divided
// into equal-width strips. A stored interval registers in every strip
// it overlaps: as a "partial" entry in the (at most two) strips
// containing its endpoints and as a "full" entry in the interior
// strips it covers completely.
//
// A query walks only the strips its own interval overlaps. Full
// entries in the query's first strip intersect it by construction (no
// coordinate test); partial entries are tested exactly. Each
// (entry, query) pair is emitted in exactly one strip — the leftmost
// strip they share — so no deduplication pass is needed. Expiry is
// lazy: dead entries are dropped as query scans encounter them.
type Striped struct {
	xlo, width float64 // universe origin and strip width
	full       [][]geom.Record
	partial    [][]geom.Record
	count      int
	cmps       int64

	// Lazy expiry alone lets dead entries linger in strips no query
	// starts in; a periodic compaction pass (amortized O(1) per
	// operation) bounds the footprint at a small multiple of the live
	// registrations.
	curY     geom.Coord
	lastLive int
}

var _ Structure = (*Striped)(nil)

// NewStriped returns a Striped structure covering the x-range
// [xlo, xhi] with the given number of strips (minimum 1). Records
// extending outside the range are clamped into the boundary strips,
// which keeps the structure correct for any input at a possible
// performance cost.
func NewStriped(xlo, xhi geom.Coord, strips int) *Striped {
	if strips < 1 {
		strips = 1
	}
	w := (float64(xhi) - float64(xlo)) / float64(strips)
	if w <= 0 {
		// Degenerate universe: one strip holds everything.
		strips = 1
		w = 1
	}
	return &Striped{
		xlo:     float64(xlo),
		width:   w,
		full:    make([][]geom.Record, strips),
		partial: make([][]geom.Record, strips),
	}
}

// NewStripedFor builds a Striped structure sized for the union of two
// input universes, the construction used by the join algorithms.
func NewStripedFor(universe geom.Rect, strips int) *Striped {
	return NewStriped(universe.XLo, universe.XHi, strips)
}

func (s *Striped) strip(x geom.Coord) int {
	i := int((float64(x) - s.xlo) / s.width)
	if i < 0 {
		return 0
	}
	if i >= len(s.full) {
		return len(s.full) - 1
	}
	return i
}

// Insert implements Structure.
func (s *Striped) Insert(r geom.Record) {
	first := s.strip(r.Rect.XLo)
	last := s.strip(r.Rect.XHi)
	s.partial[first] = append(s.partial[first], r)
	s.count++
	if last != first {
		s.partial[last] = append(s.partial[last], r)
		s.count++
	}
	for k := first + 1; k < last; k++ {
		s.full[k] = append(s.full[k], r)
		s.count++
	}
}

// QueryExpire implements Structure. See the type comment for the
// exactly-once emission rule.
func (s *Striped) QueryExpire(q geom.Record, emit func(geom.Record)) {
	qf := s.strip(q.Rect.XLo)
	ql := s.strip(q.Rect.XHi)
	y := q.Rect.YLo
	if y > s.curY {
		s.curY = y
	}
	defer s.maybeCompact()

	// Full entries matter only in the query's first strip: an entry
	// whose first strip precedes qf meets the query there, and entries
	// starting later are met in their own partial strip.
	s.scanList(&s.full[qf], y, func(e geom.Record) {
		emit(e)
	})

	for k := qf; k <= ql; k++ {
		s.scanList(&s.partial[k], y, func(e geom.Record) {
			ef := s.strip(e.Rect.XLo)
			owner := ef
			if qf > owner {
				owner = qf
			}
			if owner != k {
				return // this pair is emitted in strip `owner`
			}
			s.cmps++
			if e.Rect.IntersectsX(q.Rect) {
				emit(e)
			}
		})
	}
}

// scanList walks one strip list, swap-deleting entries that expired
// below y and passing live ones to fn.
func (s *Striped) scanList(list *[]geom.Record, y geom.Coord, fn func(geom.Record)) {
	l := *list
	i := 0
	for i < len(l) {
		s.cmps++
		if l[i].Rect.YHi < y {
			last := len(l) - 1
			l[i] = l[last]
			l = l[:last]
			s.count--
			continue
		}
		fn(l[i])
		i++
	}
	*list = l
}

// maybeCompact sweeps every strip list when dead registrations
// dominate, deleting entries that ended below the current sweep line.
// The trigger (total > 4x last live count, with a floor of 64) makes
// the cost amortized constant per insertion.
func (s *Striped) maybeCompact() {
	if s.count <= 64 || s.count <= 4*s.lastLive {
		return
	}
	for i := range s.full {
		s.compactList(&s.full[i])
		s.compactList(&s.partial[i])
	}
	s.lastLive = s.count
}

func (s *Striped) compactList(list *[]geom.Record) {
	l := *list
	i := 0
	for i < len(l) {
		s.cmps++
		if l[i].Rect.YHi < s.curY {
			last := len(l) - 1
			l[i] = l[last]
			l = l[:last]
			s.count--
			continue
		}
		i++
	}
	*list = l
}

// Len implements Structure; an interval counts once per strip list it
// currently occupies.
func (s *Striped) Len() int { return s.count }

// Bytes implements Structure.
func (s *Striped) Bytes() int {
	return s.count*stripedEntrySize + len(s.full)*stripOverhead
}

// Comparisons implements Structure.
func (s *Striped) Comparisons() int64 { return s.cmps }

// Reset implements Structure.
func (s *Striped) Reset() {
	for i := range s.full {
		s.full[i] = s.full[i][:0]
		s.partial[i] = s.partial[i][:0]
	}
	s.count = 0
	s.cmps = 0
	s.curY = 0
	s.lastLive = 0
}

// String implements fmt.Stringer.
func (s *Striped) String() string {
	return fmt.Sprintf("striped-sweep(%d strips, %d entries)", len(s.full), s.count)
}
