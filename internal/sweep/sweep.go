// Package sweep implements the internal-memory plane-sweep machinery
// shared by every join in the paper (Section 3.1): the sweep advances a
// horizontal line upward through both inputs in lower-y order, and a
// dynamic interval structure per input holds the x-projections of the
// rectangles currently cut by the line. Any pair of intersecting
// rectangles must be simultaneously "active", so testing each arriving
// rectangle against the other input's active set finds exactly the
// intersecting pairs.
//
// Two interval structures from Arge et al. [4] are provided:
//
//   - Forward: the unordered active list used by earlier spatial join
//     implementations (Brinkhoff et al., Patel and DeWitt). Queries
//     scan the whole list, expiring dead entries on the way.
//   - Striped: the paper's fastest structure. The x-axis is cut into
//     equal strips; an interval registers in every strip it overlaps,
//     so a query only scans lists in the strips it overlaps, testing
//     exact x-overlap only at partial ends.
//
// The Join kernel consumes two y-sorted record sources — sorted files
// (SSSJ), R-tree extraction adapters (PQ), or in-memory slices (node
// joins in ST, partitions in PBSM all use the structures directly.)
//
// Join is context-aware: it polls ctx.Err() every checkInterval
// records so a canceled or timed-out query stops mid-sweep instead of
// running to completion.
package sweep

import (
	"context"
	"fmt"

	"unijoin/internal/geom"
)

// checkInterval is how many records the kernel processes between
// context cancellation checks: frequent enough that cancellation is
// prompt (a few microseconds of work per window), rare enough that the
// check never shows up in profiles. It must be a power of two.
const checkInterval = 1024

// Source yields records in nondecreasing lower-y order. It is
// satisfied by *stream.Reader[geom.Record] and by rtree.SortedScanner.
type Source interface {
	Next() (geom.Record, bool, error)
}

// Structure is a dynamic set of active rectangles (intervals on the
// sweep line). Implementations may expire lazily: an entry whose upper
// y lies below the sweep line may linger until a query touches it.
type Structure interface {
	// Insert adds r to the active set.
	Insert(r geom.Record)
	// QueryExpire advances the structure's notion of the sweep line to
	// q's lower y — dropping entries that ended below it — and calls
	// emit for every stored record whose x-projection intersects q's.
	QueryExpire(q geom.Record, emit func(geom.Record))
	// Len returns the number of stored entries, counting an interval
	// once per strip it occupies in strip-based structures.
	Len() int
	// Bytes returns the approximate resident size of the structure,
	// the quantity reported in Table 3 of the paper.
	Bytes() int
	// Comparisons returns a running count of x-overlap and expiry
	// tests, the kernel's CPU-work proxy.
	Comparisons() int64
	// Reset empties the structure for reuse.
	Reset()
}

// Stats summarizes one run of the Join kernel.
type Stats struct {
	Pairs       int64 // intersecting pairs reported
	MaxLen      int   // peak combined entries across both structures
	MaxBytes    int   // peak combined footprint (Table 3's "Sweep Structure")
	Comparisons int64 // total x-overlap/expiry tests in both structures
}

// Join runs the plane sweep over two y-sorted sources, using sa and sb
// as the active sets for a and b respectively, and calls emit for every
// intersecting pair (ra from a, rb from b). It returns sweep statistics.
//
// A nil emit is the counting-only fast path: pairs are tallied in
// Stats.Pairs with no per-pair callback at all, matching the paper's
// cost accounting (which excludes output reporting). The hit callbacks
// handed to the structures are allocated once per Join, not once per
// record, so the kernel's emit path does no per-record allocation.
//
// Join polls ctx between records (every checkInterval) and returns
// ctx.Err() when the context is canceled; a nil ctx disables the
// checks. Join fails if either source yields records out of y-order,
// since a silent ordering bug would produce silently missing pairs.
func Join(ctx context.Context, a, b Source, sa, sb Structure, emit func(ra, rb geom.Record)) (Stats, error) {
	var st Stats
	sa.Reset()
	sb.Reset()

	ra, okA, err := a.Next()
	if err != nil {
		return st, err
	}
	rb, okB, err := b.Next()
	if err != nil {
		return st, err
	}
	var lastY geom.Coord
	haveLast := false

	// The hit callbacks close over cur/curIsA instead of the loop
	// body's per-iteration record, so they are allocated exactly once;
	// the earlier per-record closures dominated the join's allocation
	// profile (~1 per record).
	var cur geom.Record
	var curIsA bool
	var onHit func(geom.Record)
	if emit == nil {
		onHit = func(geom.Record) { st.Pairs++ }
	} else {
		onHit = func(other geom.Record) {
			st.Pairs++
			if curIsA {
				emit(cur, other)
			} else {
				emit(other, cur)
			}
		}
	}

	note := func() {
		if l := sa.Len() + sb.Len(); l > st.MaxLen {
			st.MaxLen = l
		}
		if bts := sa.Bytes() + sb.Bytes(); bts > st.MaxBytes {
			st.MaxBytes = bts
		}
	}

	var processed int64
	for okA || okB {
		if processed&(checkInterval-1) == 0 && ctx != nil {
			if err := ctx.Err(); err != nil {
				return st, err
			}
		}
		processed++

		// Advance the side with the lower bottom edge; ties go to a so
		// that coincident edges still meet in the structures.
		curIsA = okA && (!okB || ra.Rect.YLo <= rb.Rect.YLo)
		if curIsA {
			cur = ra
		} else {
			cur = rb
		}
		if haveLast && cur.Rect.YLo < lastY {
			return st, fmt.Errorf("sweep: source not sorted: y %g after %g", cur.Rect.YLo, lastY)
		}
		lastY = cur.Rect.YLo
		haveLast = true

		if curIsA {
			sb.QueryExpire(cur, onHit)
			sa.Insert(cur)
			ra, okA, err = a.Next()
		} else {
			sa.QueryExpire(cur, onHit)
			sb.Insert(cur)
			rb, okB, err = b.Next()
		}
		if err != nil {
			return st, err
		}
		note()
	}
	st.Comparisons = sa.Comparisons() + sb.Comparisons()
	return st, nil
}

// SliceSource adapts an in-memory, y-sorted slice to the Source
// interface.
type SliceSource struct {
	recs []geom.Record
	pos  int
}

// NewSliceSource wraps recs, which must already be sorted by lower y.
func NewSliceSource(recs []geom.Record) *SliceSource {
	return &SliceSource{recs: recs}
}

// Next implements Source.
func (s *SliceSource) Next() (geom.Record, bool, error) {
	if s.pos >= len(s.recs) {
		return geom.Record{}, false, nil
	}
	r := s.recs[s.pos]
	s.pos++
	return r, true, nil
}

// JoinSlices is a convenience wrapper joining two y-sorted slices with
// fresh structures from the given constructor.
func JoinSlices(ctx context.Context, a, b []geom.Record, mk func() Structure, emit func(ra, rb geom.Record)) (Stats, error) {
	return Join(ctx, NewSliceSource(a), NewSliceSource(b), mk(), mk(), emit)
}
