package sweep

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"unijoin/internal/geom"
)

// genRects builds n random rectangles in a [0,span]x[0,span] universe
// with the given max extent, sorted by lower y as the kernel requires.
func genRects(rng *rand.Rand, n int, span, maxExt float64, idBase uint32) []geom.Record {
	recs := make([]geom.Record, n)
	for i := range recs {
		x := rng.Float64() * span
		y := rng.Float64() * span
		w := rng.Float64() * maxExt
		h := rng.Float64() * maxExt
		recs[i] = geom.Record{
			Rect: geom.NewRect(float32(x), float32(y), float32(x+w), float32(y+h)),
			ID:   idBase + uint32(i),
		}
	}
	sort.Slice(recs, func(i, j int) bool { return geom.ByLowerY(recs[i], recs[j]) < 0 })
	return recs
}

// bruteForce computes the reference pair set.
func bruteForce(a, b []geom.Record) map[geom.Pair]bool {
	out := make(map[geom.Pair]bool)
	for _, ra := range a {
		for _, rb := range b {
			if ra.Rect.Intersects(rb.Rect) {
				out[geom.Pair{Left: ra.ID, Right: rb.ID}] = true
			}
		}
	}
	return out
}

// collectJoin runs the kernel and gathers emitted pairs, failing the
// test on duplicates.
func collectJoin(t *testing.T, a, b []geom.Record, mk func() Structure) (map[geom.Pair]bool, Stats) {
	t.Helper()
	got := make(map[geom.Pair]bool)
	stats, err := JoinSlices(context.Background(), a, b, mk, func(ra, rb geom.Record) {
		p := geom.Pair{Left: ra.ID, Right: rb.ID}
		if got[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		got[p] = true
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, stats
}

func structures(universe geom.Rect) map[string]func() Structure {
	return map[string]func() Structure{
		"forward":    func() Structure { return NewForward() },
		"striped":    func() Structure { return NewStripedFor(universe, DefaultStrips) },
		"striped-1":  func() Structure { return NewStripedFor(universe, 1) },
		"striped-7":  func() Structure { return NewStripedFor(universe, 7) },
		"striped-4k": func() Structure { return NewStripedFor(universe, 4096) },
	}
}

func TestJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	universe := geom.NewRect(0, 0, 1000, 1000)
	for name, mk := range structures(universe) {
		t.Run(name, func(t *testing.T) {
			a := genRects(rng, 300, 1000, 60, 0)
			b := genRects(rng, 300, 1000, 60, 10000)
			want := bruteForce(a, b)
			got, stats := collectJoin(t, a, b, mk)
			if len(got) != len(want) {
				t.Fatalf("got %d pairs, want %d", len(got), len(want))
			}
			for p := range want {
				if !got[p] {
					t.Fatalf("missing pair %v", p)
				}
			}
			if stats.Pairs != int64(len(want)) {
				t.Fatalf("stats.Pairs = %d, want %d", stats.Pairs, len(want))
			}
		})
	}
}

func TestJoinPropertyRandomWorkloads(t *testing.T) {
	universe := geom.NewRect(0, 0, 500, 500)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := genRects(rng, 50+rng.Intn(150), 500, 80, 0)
		b := genRects(rng, 50+rng.Intn(150), 500, 80, 50000)
		want := bruteForce(a, b)
		for _, mk := range structures(universe) {
			got := make(map[geom.Pair]bool)
			dup := false
			_, err := JoinSlices(context.Background(), a, b, mk, func(ra, rb geom.Record) {
				p := geom.Pair{Left: ra.ID, Right: rb.ID}
				if got[p] {
					dup = true
				}
				got[p] = true
			})
			if err != nil || dup || len(got) != len(want) {
				return false
			}
			for p := range want {
				if !got[p] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestJoinEmptyInputs(t *testing.T) {
	universe := geom.NewRect(0, 0, 10, 10)
	a := genRects(rand.New(rand.NewSource(1)), 10, 10, 2, 0)
	for name, mk := range structures(universe) {
		t.Run(name, func(t *testing.T) {
			got, _ := collectJoin(t, nil, nil, mk)
			if len(got) != 0 {
				t.Fatal("empty x empty should be empty")
			}
			got, _ = collectJoin(t, a, nil, mk)
			if len(got) != 0 {
				t.Fatal("a x empty should be empty")
			}
			got, _ = collectJoin(t, nil, a, mk)
			if len(got) != 0 {
				t.Fatal("empty x a should be empty")
			}
		})
	}
}

func TestJoinDetectsUnsortedInput(t *testing.T) {
	a := []geom.Record{
		{Rect: geom.NewRect(0, 5, 1, 6), ID: 1},
		{Rect: geom.NewRect(0, 1, 1, 2), ID: 2}, // out of order
	}
	b := []geom.Record{{Rect: geom.NewRect(0, 0, 10, 10), ID: 3}}
	_, err := JoinSlices(context.Background(), a, b, func() Structure { return NewForward() }, func(_, _ geom.Record) {})
	if err == nil {
		t.Fatal("unsorted input must be rejected")
	}
}

func TestExpiryBoundsActiveSet(t *testing.T) {
	// Rectangles arranged in a tall column, each alive for a short y
	// range: the active set must stay small (the square-root rule in
	// the extreme).
	var a, b []geom.Record
	for i := 0; i < 2000; i++ {
		y := float32(i)
		a = append(a, geom.Record{Rect: geom.NewRect(0, y, 1, y+0.9), ID: uint32(i)})
		b = append(b, geom.Record{Rect: geom.NewRect(0.5, y, 1.5, y+0.9), ID: uint32(100000 + i)})
	}
	for name, mk := range structures(geom.NewRect(0, 0, 2000, 2000)) {
		t.Run(name, func(t *testing.T) {
			_, stats := collectJoin(t, a, b, mk)
			// A handful of rectangles are alive at a time; each may
			// register in a few strips, and compaction is amortized, so
			// allow slack — a real expiry leak would reach thousands.
			if stats.MaxLen > 200 {
				t.Fatalf("active set grew to %d; expiry broken?", stats.MaxLen)
			}
		})
	}
}

func TestStatsTracksBytesAndComparisons(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := genRects(rng, 500, 100, 30, 0)
	b := genRects(rng, 500, 100, 30, 10000)
	_, stats := collectJoin(t, a, b, func() Structure { return NewForward() })
	if stats.MaxBytes == 0 || stats.MaxLen == 0 {
		t.Fatalf("stats not tracked: %+v", stats)
	}
	if stats.Comparisons == 0 {
		t.Fatal("comparison count not tracked")
	}
	if stats.MaxBytes < stats.MaxLen*forwardEntrySize {
		t.Fatalf("bytes %d inconsistent with len %d", stats.MaxBytes, stats.MaxLen)
	}
}

func TestStripedCheaperThanForwardOnWideData(t *testing.T) {
	// Many horizontally-spread rectangles alive at once: Forward scans
	// the whole active list per query, Striped only the overlapping
	// strips. The comparison counts should differ by a wide margin;
	// this is the mechanism behind the 2-5x speedup reported in [4].
	rng := rand.New(rand.NewSource(4))
	universe := geom.NewRect(0, 0, 100000, 100)
	a := genRects(rng, 4000, 100000, 40, 0)
	b := genRects(rng, 4000, 100000, 40, 100000)
	// Flatten y so nearly everything is alive simultaneously.
	for i := range a {
		a[i].Rect.YLo, a[i].Rect.YHi = 0, 100
	}
	for i := range b {
		b[i].Rect.YLo, b[i].Rect.YHi = 0, 100
	}
	_, fstats := collectJoin(t, a, b, func() Structure { return NewForward() })
	_, sstats := collectJoin(t, a, b, func() Structure { return NewStripedFor(universe, 1024) })
	if sstats.Comparisons*2 >= fstats.Comparisons {
		t.Fatalf("striped (%d cmps) should beat forward (%d cmps) by >2x",
			sstats.Comparisons, fstats.Comparisons)
	}
}

func TestStripedClampsOutOfUniverseRecords(t *testing.T) {
	universe := geom.NewRect(0, 0, 100, 100)
	a := []geom.Record{{Rect: geom.NewRect(-50, 0, -10, 10), ID: 1}}
	b := []geom.Record{{Rect: geom.NewRect(-40, 5, -20, 15), ID: 2}}
	got, _ := collectJoin(t, a, b, func() Structure { return NewStripedFor(universe, 16) })
	if len(got) != 1 {
		t.Fatal("out-of-universe rectangles must still join correctly")
	}
}

func TestStripedDegenerateUniverse(t *testing.T) {
	s := NewStriped(5, 5, 8) // zero-width universe
	s.Insert(geom.Record{Rect: geom.NewRect(5, 0, 5, 10), ID: 1})
	var hits int
	s.QueryExpire(geom.Record{Rect: geom.NewRect(5, 5, 5, 6), ID: 2}, func(geom.Record) { hits++ })
	if hits != 1 {
		t.Fatalf("hits = %d", hits)
	}
}

func TestStructureReset(t *testing.T) {
	for name, mk := range structures(geom.NewRect(0, 0, 10, 10)) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			s.Insert(geom.Record{Rect: geom.NewRect(0, 0, 1, 1), ID: 1})
			s.QueryExpire(geom.Record{Rect: geom.NewRect(0, 0, 2, 2), ID: 2}, func(geom.Record) {})
			s.Reset()
			if s.Len() != 0 || s.Comparisons() != 0 {
				t.Fatalf("reset left len=%d cmps=%d", s.Len(), s.Comparisons())
			}
			var hits int
			s.QueryExpire(geom.Record{Rect: geom.NewRect(0, 0, 2, 2), ID: 3}, func(geom.Record) { hits++ })
			if hits != 0 {
				t.Fatal("reset structure still reports entries")
			}
		})
	}
}

func TestSliceSource(t *testing.T) {
	recs := genRects(rand.New(rand.NewSource(5)), 10, 10, 2, 0)
	src := NewSliceSource(recs)
	var n int
	for {
		_, ok, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 10 {
		t.Fatalf("drained %d of 10", n)
	}
	if _, ok, _ := src.Next(); ok {
		t.Fatal("exhausted source should stay exhausted")
	}
}

func TestStripedStringer(t *testing.T) {
	s := NewStriped(0, 100, 4)
	s.Insert(geom.Record{Rect: geom.NewRect(0, 0, 100, 1), ID: 1})
	if got := fmt.Sprint(s); got == "" {
		t.Fatal("empty String()")
	}
}

func TestIdenticalRectanglesManyTies(t *testing.T) {
	// Stress y-ties: many coincident rectangles on both sides.
	var a, b []geom.Record
	for i := 0; i < 40; i++ {
		a = append(a, geom.Record{Rect: geom.NewRect(0, 0, 10, 10), ID: uint32(i)})
		b = append(b, geom.Record{Rect: geom.NewRect(5, 5, 15, 15), ID: uint32(1000 + i)})
	}
	for name, mk := range structures(geom.NewRect(0, 0, 20, 20)) {
		t.Run(name, func(t *testing.T) {
			got, _ := collectJoin(t, a, b, mk)
			if len(got) != 1600 {
				t.Fatalf("got %d pairs, want 1600", len(got))
			}
		})
	}
}

func TestJoinCanceledContext(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := genRects(rng, 500, 1000, 60, 0)
	b := genRects(rng, 500, 1000, 60, 10000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := JoinSlices(ctx, a, b, func() Structure { return NewForward() }, nil)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestJoinNilEmitCountsOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := genRects(rng, 400, 1000, 60, 0)
	b := genRects(rng, 400, 1000, 60, 10000)
	want := bruteForce(a, b)
	st, err := JoinSlices(context.Background(), a, b,
		func() Structure { return NewForward() }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pairs != int64(len(want)) {
		t.Fatalf("counting-only kernel found %d pairs, want %d", st.Pairs, len(want))
	}
}

func TestJoinNilContext(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := genRects(rng, 50, 100, 20, 0)
	b := genRects(rng, 50, 100, 20, 1000)
	st, err := JoinSlices(nil, a, b, func() Structure { return NewForward() }, nil) //nolint:staticcheck // nil ctx is part of the contract
	if err != nil {
		t.Fatal(err)
	}
	if st.Pairs != int64(len(bruteForce(a, b))) {
		t.Fatal("nil context must behave like Background")
	}
}
