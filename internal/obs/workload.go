package obs

import (
	"strconv"
	"sync"
	"sync/atomic"
)

// DefaultWorkloadBuckets is the query-window histogram's stripe count
// when none is configured: fine enough to expose hot bands, coarse
// enough that a fleet-wide merge stays a short array.
const DefaultWorkloadBuckets = 32

// Workload records where queries land: a fixed-bucket histogram of
// query-window x-intervals over the serving universe, plus
// per-(relation, algorithm) query counters. This is the input SOLAR
// argues a partitioner should learn from — the query workload, not
// just the data sample — so a rolling rebalance can cut stripe
// boundaries where queries concentrate, and the "auto" algorithm can
// see which (relation, algorithm) combinations traffic actually runs.
// All observation paths are lock-free; the snapshot side takes a
// mutex only over the per-relation counter map.
type Workload struct {
	lo, hi float64
	width  float64

	buckets    []atomic.Int64
	windowed   atomic.Int64
	unwindowed atomic.Int64

	// stripes/queries mirror the recorder into the metric registry, so
	// scrapes and /v1/stats read the same numbers:
	// sj_query_window_stripe_total{stripe} and
	// sj_queries_total{relation,algorithm}.
	stripes *CounterVec
	queries *CounterVec

	mu     sync.Mutex
	counts map[string]map[string]int64 // relation → algorithm → queries
}

// NewWorkload builds a recorder over the x-range [lo, hi) with n
// histogram buckets (defaults: 0..1000, DefaultWorkloadBuckets) and
// registers its metric families on reg. Every shard of a fleet must
// be configured with the same range and bucket count (they all derive
// from the same -region flag), so the routers' /v1/stats merge can sum
// buckets index-wise.
func NewWorkload(reg *Registry, lo, hi float64, n int) *Workload {
	if reg == nil {
		reg = NewRegistry()
	}
	if hi <= lo {
		lo, hi = 0, 1000
	}
	if n <= 0 {
		n = DefaultWorkloadBuckets
	}
	return &Workload{
		lo: lo, hi: hi, width: (hi - lo) / float64(n),
		buckets: make([]atomic.Int64, n),
		stripes: reg.CounterVec("sj_query_window_stripe_total",
			"Query windows overlapping each x-stripe of the serving universe, by stripe index.",
			"stripe"),
		queries: reg.CounterVec("sj_queries_total",
			"Queries accepted, by relation and algorithm (window queries count as algorithm \"window\").",
			"relation", "algorithm"),
		counts: make(map[string]map[string]int64),
	}
}

// ObserveQuery counts one accepted query against a relation and
// algorithm. Callers must pass catalog-validated relation names and
// parsed algorithm names — the values become metric labels, so they
// must come from bounded sets.
func (w *Workload) ObserveQuery(relation, algorithm string) {
	w.queries.With(relation, algorithm).Inc()
	w.mu.Lock()
	m := w.counts[relation]
	if m == nil {
		m = make(map[string]int64, 8)
		w.counts[relation] = m
	}
	m[algorithm]++
	w.mu.Unlock()
}

// ObserveWindow records one query window's x-interval [xlo, xhi] into
// the histogram: every bucket the interval overlaps is incremented,
// with out-of-range windows clamped to the edge buckets so no query
// is lost.
func (w *Workload) ObserveWindow(xlo, xhi float64) {
	w.windowed.Add(1)
	if xhi < xlo {
		xlo, xhi = xhi, xlo
	}
	i0 := w.bucketOf(xlo)
	i1 := w.bucketOf(xhi)
	for i := i0; i <= i1; i++ {
		w.buckets[i].Add(1)
		w.stripes.With(strconv.Itoa(i)).Inc()
	}
}

// ObserveUnwindowed counts a query with no window — demand for the
// whole universe, kept out of the histogram so full scans don't drown
// the locality signal.
func (w *Workload) ObserveUnwindowed() { w.unwindowed.Add(1) }

// bucketOf maps an x-coordinate to its bucket index, clamped into
// range.
func (w *Workload) bucketOf(x float64) int {
	i := int((x - w.lo) / w.width)
	if i < 0 {
		return 0
	}
	if i >= len(w.buckets) {
		return len(w.buckets) - 1
	}
	return i
}

// WorkloadSnapshot is a point-in-time copy of a Workload, the shape
// /v1/stats serializes and a router sums across shards.
type WorkloadSnapshot struct {
	XLo, XHi   float64
	Buckets    []int64
	Windowed   int64
	Unwindowed int64
	Queries    map[string]map[string]int64
}

// Snapshot copies the recorder's current state.
func (w *Workload) Snapshot() WorkloadSnapshot {
	s := WorkloadSnapshot{
		XLo: w.lo, XHi: w.hi,
		Buckets:    make([]int64, len(w.buckets)),
		Windowed:   w.windowed.Load(),
		Unwindowed: w.unwindowed.Load(),
	}
	for i := range w.buckets {
		s.Buckets[i] = w.buckets[i].Load()
	}
	w.mu.Lock()
	s.Queries = make(map[string]map[string]int64, len(w.counts))
	for rel, m := range w.counts {
		cp := make(map[string]int64, len(m))
		for alg, n := range m {
			cp[alg] = n
		}
		s.Queries[rel] = cp
	}
	w.mu.Unlock()
	return s
}
