package obs

import (
	"maps"
	"sync"
)

// DefaultAlpha is the smoothing factor used by the serving layers'
// latency EWMAs: each observation contributes 20%, so the estimate
// settles within ~10 observations yet still damps single outliers.
const DefaultAlpha = 0.2

// EWMA is an exponentially-weighted moving average: a one-number
// steady-state estimate of a noisy signal, updated in O(1) per
// observation. The first observation seeds the average directly so a
// cold EWMA is never dragged through zero. Safe for concurrent use.
type EWMA struct {
	mu    sync.Mutex
	alpha float64
	value float64
	n     int64
}

// NewEWMA returns an EWMA with the given smoothing factor in (0, 1];
// out-of-range alphas fall back to DefaultAlpha.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultAlpha
	}
	return &EWMA{alpha: alpha}
}

// Observe folds one sample into the average.
func (e *EWMA) Observe(x float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.n == 0 {
		e.value = x
	} else {
		e.value += e.alpha * (x - e.value)
	}
	e.n++
}

// Value returns the current estimate (0 before any observation).
func (e *EWMA) Value() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.value
}

// Count returns the number of observations folded in.
func (e *EWMA) Count() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

// EWMASet is a concurrent map of EWMAs keyed by string — one
// steady-state latency estimate per algorithm, per shard, per
// whatever the caller keys on. Keys are created on first observation.
type EWMASet struct {
	alpha float64
	mu    sync.RWMutex
	m     map[string]*EWMA
}

// NewEWMASet returns an empty set whose EWMAs use the given alpha
// (out-of-range alphas fall back to DefaultAlpha).
func NewEWMASet(alpha float64) *EWMASet {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultAlpha
	}
	return &EWMASet{alpha: alpha, m: make(map[string]*EWMA)}
}

// get returns the EWMA for key, creating it on first use.
func (s *EWMASet) get(key string) *EWMA {
	s.mu.RLock()
	e, ok := s.m[key]
	s.mu.RUnlock()
	if ok {
		return e
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[key]; ok {
		return e
	}
	e = NewEWMA(s.alpha)
	s.m[key] = e
	return e
}

// Observe folds one sample into key's average.
func (s *EWMASet) Observe(key string, x float64) { s.get(key).Observe(x) }

// Value returns key's current estimate (0 for an unknown key).
func (s *EWMASet) Value(key string) float64 {
	s.mu.RLock()
	e, ok := s.m[key]
	s.mu.RUnlock()
	if !ok {
		return 0
	}
	return e.Value()
}

// Snapshot returns every key's current estimate (nil when empty).
func (s *EWMASet) Snapshot() map[string]float64 {
	s.mu.RLock()
	keys := maps.Clone(s.m)
	s.mu.RUnlock()
	if len(keys) == 0 {
		return nil
	}
	out := make(map[string]float64, len(keys))
	for k, e := range keys {
		out[k] = e.Value()
	}
	return out
}
