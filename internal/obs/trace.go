package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Span is one node of a per-request trace tree: a named piece of work
// with a wall-clock start, a duration, free-form attributes, and child
// spans. A routed join builds the tree
//
//	router.join → scatter[shard-k] → server.join → {partition, sweep, stream}
//
// so the PR 6 slowest-shard phase merge becomes an explainable
// structure instead of a max. A Span is owned by the goroutine that
// builds it — handlers construct their subtree single-threaded (the
// router assembles per-shard subtrees only after its scatter wait), so
// no locking is needed; once a span is handed to a TraceStore it must
// be treated as immutable.
type Span struct {
	// ID names the span for cross-process linking: a router sends each
	// scatter span's ID downstream as X-Parent-Span, so the shard's own
	// stored trace points back at the exact scatter leg that caused it.
	ID   string
	Name string
	// Attrs carries key=value annotations (relation names, algorithm,
	// shard endpoint). Unlike metric labels these may hold unbounded
	// values: spans live in a bounded ring buffer, not a time-series
	// registry, so cardinality cannot accumulate.
	Attrs    map[string]string
	Start    time.Time
	Duration time.Duration
	Children []*Span
}

// NewSpanID returns a fresh 8-hex-character span ID.
func NewSpanID() string {
	var b [4]byte
	rand.Read(b[:]) // crypto/rand.Read never fails on supported platforms
	return hex.EncodeToString(b[:])
}

// StartSpan begins a span now, with a fresh ID.
func StartSpan(name string) *Span {
	return &Span{ID: NewSpanID(), Name: name, Start: time.Now()}
}

// SetAttr annotates the span, returning it for chaining.
func (s *Span) SetAttr(k, v string) *Span {
	if s.Attrs == nil {
		s.Attrs = make(map[string]string, 4)
	}
	s.Attrs[k] = v
	return s
}

// End fixes the span's duration at now minus start.
func (s *Span) End() { s.Duration = time.Since(s.Start) }

// Child appends a completed child span with an explicit offset from
// this span's start and a duration — the form phase breakdowns take,
// where the phases are measured as accumulated wall time rather than
// wrapped intervals.
func (s *Span) Child(name string, offset, d time.Duration) *Span {
	c := &Span{ID: NewSpanID(), Name: name, Start: s.Start.Add(offset), Duration: d}
	s.Children = append(s.Children, c)
	return c
}

// Count returns the number of spans in the tree rooted at s.
func (s *Span) Count() int {
	n := 1
	for _, c := range s.Children {
		n += c.Count()
	}
	return n
}

// Breakdown renders the tree as one compact line for log records:
//
//	server.join 12.4ms (partition 3.1ms, sweep 7ms, stream 0.2ms)
//
// — the slow-query log's span breakdown, greppable next to the
// request line.
func (s *Span) Breakdown() string {
	var b strings.Builder
	s.breakdown(&b)
	return b.String()
}

func (s *Span) breakdown(b *strings.Builder) {
	b.WriteString(s.Name)
	if shard, ok := s.Attrs["shard"]; ok {
		fmt.Fprintf(b, "[%s]", shard)
	}
	fmt.Fprintf(b, " %s", s.Duration.Round(10*time.Microsecond))
	if len(s.Children) == 0 {
		return
	}
	b.WriteString(" (")
	for i, c := range s.Children {
		if i > 0 {
			b.WriteString(", ")
		}
		c.breakdown(b)
	}
	b.WriteByte(')')
}

// Trace is one recorded request: its correlation ID (the X-Request-Id
// the fleet logs under), what kind of request it was, the upstream
// parent span when a router called this process, and the span tree.
type Trace struct {
	ID string
	// Kind is the request class: "join" or "window".
	Kind string
	// ParentSpan is the X-Parent-Span header value the upstream router
	// sent, or "" when the request arrived directly — the link that
	// joins this process's tree to the router's scatter span.
	ParentSpan string
	Root       *Span
}

// DefaultTraceCapacity is the trace ring size when none is configured.
const DefaultTraceCapacity = 256

// TraceStore is a bounded, concurrency-safe ring buffer of recent
// traces: every recorded request lands here, the oldest is evicted
// when the ring is full, and GET /v1/traces serves its contents. The
// bound makes tracing always-on affordable — memory is capacity ×
// tree size, independent of traffic.
type TraceStore struct {
	mu   sync.RWMutex
	ring []*Trace
	next int // ring slot the next Add writes
	n    int // filled slots, ≤ len(ring)
	byID map[string]*Trace
}

// NewTraceStore returns a store holding at most capacity traces
// (DefaultTraceCapacity when capacity ≤ 0).
func NewTraceStore(capacity int) *TraceStore {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &TraceStore{
		ring: make([]*Trace, capacity),
		byID: make(map[string]*Trace, capacity),
	}
}

// Cap returns the store's capacity.
func (ts *TraceStore) Cap() int { return len(ts.ring) }

// Len returns how many traces the store currently holds.
func (ts *TraceStore) Len() int {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	return ts.n
}

// Add records a trace, evicting the oldest when the ring is full. The
// trace (and its span tree) must not be mutated afterwards.
func (ts *TraceStore) Add(t *Trace) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if old := ts.ring[ts.next]; old != nil {
		// Delete the evicted trace's index entry only if it still points
		// at the evicted trace — a reused request ID may have overwritten
		// it with a newer trace that is still in the ring.
		if ts.byID[old.ID] == old {
			delete(ts.byID, old.ID)
		}
	}
	ts.ring[ts.next] = t
	ts.byID[t.ID] = t
	ts.next = (ts.next + 1) % len(ts.ring)
	if ts.n < len(ts.ring) {
		ts.n++
	}
}

// Get returns the trace with the given ID, if it is still in the ring
// (evicted traces are gone — the store is a window, not an archive).
func (ts *TraceStore) Get(id string) (*Trace, bool) {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	t, ok := ts.byID[id]
	return t, ok
}

// Recent returns up to n traces, newest first (n ≤ 0 for everything
// held). The returned slice is fresh; the traces it points at are
// shared and must be treated as immutable.
func (ts *TraceStore) Recent(n int) []*Trace {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	if n <= 0 || n > ts.n {
		n = ts.n
	}
	out := make([]*Trace, 0, n)
	for i := 1; i <= n; i++ {
		// next-1 is the newest slot, walking backwards.
		slot := (ts.next - i + len(ts.ring)) % len(ts.ring)
		out = append(out, ts.ring[slot])
	}
	return out
}
