package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func mkTrace(id string) *Trace {
	root := StartSpan("server.join")
	root.Duration = 5 * time.Millisecond
	return &Trace{ID: id, Kind: "join", Root: root}
}

func TestTraceStoreAddGet(t *testing.T) {
	ts := NewTraceStore(4)
	if ts.Cap() != 4 {
		t.Fatalf("Cap() = %d, want 4", ts.Cap())
	}
	tr := mkTrace("t1")
	ts.Add(tr)
	got, ok := ts.Get("t1")
	if !ok || got != tr {
		t.Fatalf("Get(t1) = %v, %v; want the stored trace", got, ok)
	}
	if _, ok := ts.Get("nope"); ok {
		t.Fatal("Get(nope) found a trace that was never stored")
	}
	if ts.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", ts.Len())
	}
}

func TestTraceStoreEvictionOrder(t *testing.T) {
	ts := NewTraceStore(3)
	for i := 0; i < 5; i++ {
		ts.Add(mkTrace(fmt.Sprintf("t%d", i)))
	}
	if ts.Len() != 3 {
		t.Fatalf("Len() = %d after 5 adds into capacity 3, want 3", ts.Len())
	}
	// t0 and t1 were evicted oldest-first; t2..t4 remain.
	for _, id := range []string{"t0", "t1"} {
		if _, ok := ts.Get(id); ok {
			t.Fatalf("Get(%s) found an evicted trace", id)
		}
	}
	for _, id := range []string{"t2", "t3", "t4"} {
		if _, ok := ts.Get(id); !ok {
			t.Fatalf("Get(%s) lost a trace that should still be held", id)
		}
	}
	recent := ts.Recent(0)
	if len(recent) != 3 {
		t.Fatalf("Recent(0) returned %d traces, want 3", len(recent))
	}
	for i, want := range []string{"t4", "t3", "t2"} { // newest first
		if recent[i].ID != want {
			t.Fatalf("Recent(0)[%d].ID = %s, want %s", i, recent[i].ID, want)
		}
	}
	if got := ts.Recent(2); len(got) != 2 || got[0].ID != "t4" || got[1].ID != "t3" {
		t.Fatalf("Recent(2) = %v, want [t4 t3]", got)
	}
}

// TestTraceStoreReusedID covers the index-consistency corner: when a
// request ID is recorded twice (a client pinning X-Request-Id), the
// older entry's eviction must not delete the newer trace's index
// entry.
func TestTraceStoreReusedID(t *testing.T) {
	ts := NewTraceStore(3)
	ts.Add(mkTrace("dup")) // slot 0, evicted first
	ts.Add(mkTrace("x"))
	newer := mkTrace("dup")
	ts.Add(newer)        // same ID, still in the ring after the eviction below
	ts.Add(mkTrace("y")) // evicts slot 0 (the old "dup")
	got, ok := ts.Get("dup")
	if !ok || got != newer {
		t.Fatalf("Get(dup) = %v, %v; want the newer trace to survive the older one's eviction", got, ok)
	}
}

// TestTraceStoreConcurrent hammers the store from concurrent writers
// and readers; run under -race this is the data-race check for the
// always-on tracing path.
func TestTraceStoreConcurrent(t *testing.T) {
	ts := NewTraceStore(16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ts.Add(mkTrace(fmt.Sprintf("w%d-%d", w, i)))
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for _, tr := range ts.Recent(8) {
					if tr == nil {
						t.Error("Recent returned a nil trace")
						return
					}
					ts.Get(tr.ID)
				}
				ts.Len()
			}
		}()
	}
	wg.Wait()
	if ts.Len() != 16 {
		t.Fatalf("Len() = %d after 800 adds into capacity 16, want 16", ts.Len())
	}
}

func TestSpanTree(t *testing.T) {
	root := StartSpan("server.join")
	root.SetAttr("algorithm", "PBSM")
	root.Duration = 10 * time.Millisecond
	root.Child("partition", 0, 3*time.Millisecond)
	root.Child("sweep", 3*time.Millisecond, 7*time.Millisecond)
	if root.Count() != 3 {
		t.Fatalf("Count() = %d, want 3", root.Count())
	}
	if got := root.Children[1].Start.Sub(root.Start); got != 3*time.Millisecond {
		t.Fatalf("sweep offset = %v, want 3ms", got)
	}
	b := root.Breakdown()
	for _, want := range []string{"server.join 10ms", "partition 3ms", "sweep 7ms"} {
		if !strings.Contains(b, want) {
			t.Fatalf("Breakdown() = %q, missing %q", b, want)
		}
	}
}

func TestBreakdownShardAttr(t *testing.T) {
	root := &Span{ID: NewSpanID(), Name: "router.join", Start: time.Now(), Duration: 4 * time.Millisecond}
	c := root.Child("scatter", 0, 4*time.Millisecond)
	c.SetAttr("shard", "http://s1")
	b := root.Breakdown()
	if !strings.Contains(b, "scatter[http://s1]") {
		t.Fatalf("Breakdown() = %q, want the scatter span tagged with its shard", b)
	}
}

func TestNewSpanID(t *testing.T) {
	a, b := NewSpanID(), NewSpanID()
	if len(a) != 8 || len(b) != 8 {
		t.Fatalf("span IDs %q, %q; want 8 hex chars", a, b)
	}
	if a == b {
		t.Fatalf("two fresh span IDs collided: %q", a)
	}
}
