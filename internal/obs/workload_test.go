package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestWorkloadWindowBuckets(t *testing.T) {
	w := NewWorkload(NewRegistry(), 0, 1000, 10) // buckets of width 100
	w.ObserveWindow(150, 250)                    // overlaps buckets 1 and 2
	w.ObserveWindow(950, 999)                    // bucket 9
	w.ObserveWindow(500, 400)                    // inverted; swapped to buckets 4..5
	s := w.Snapshot()
	want := []int64{0, 1, 1, 0, 1, 1, 0, 0, 0, 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("snapshot has %d buckets, want %d", len(s.Buckets), len(want))
	}
	for i := range want {
		if s.Buckets[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Buckets[i], want[i], s.Buckets)
		}
	}
	if s.Windowed != 3 || s.Unwindowed != 0 {
		t.Fatalf("windowed/unwindowed = %d/%d, want 3/0", s.Windowed, s.Unwindowed)
	}
}

func TestWorkloadClamping(t *testing.T) {
	w := NewWorkload(NewRegistry(), 0, 1000, 10)
	w.ObserveWindow(-500, -100) // entirely left of the universe → bucket 0
	w.ObserveWindow(2000, 3000) // entirely right → bucket 9
	s := w.Snapshot()
	if s.Buckets[0] != 1 || s.Buckets[9] != 1 {
		t.Fatalf("clamped windows landed at %v, want one in bucket 0 and one in bucket 9", s.Buckets)
	}
	var sum int64
	for _, b := range s.Buckets {
		sum += b
	}
	if sum != 2 {
		t.Fatalf("bucket total = %d, want 2 (out-of-range windows must not spray)", sum)
	}
}

func TestWorkloadQueries(t *testing.T) {
	reg := NewRegistry()
	w := NewWorkload(reg, 0, 1000, 4)
	w.ObserveQuery("roads", "PBSM")
	w.ObserveQuery("roads", "PBSM")
	w.ObserveQuery("roads", "window")
	w.ObserveQuery("hydro", "SSSJ")
	w.ObserveUnwindowed()
	s := w.Snapshot()
	if got := s.Queries["roads"]["PBSM"]; got != 2 {
		t.Fatalf("roads/PBSM = %d, want 2", got)
	}
	if got := s.Queries["hydro"]["SSSJ"]; got != 1 {
		t.Fatalf("hydro/SSSJ = %d, want 1", got)
	}
	if s.Unwindowed != 1 {
		t.Fatalf("unwindowed = %d, want 1", s.Unwindowed)
	}
	// The registry mirrors the counters: sj_queries_total must carry
	// the same numbers a scrape would read.
	text := reg.Render()
	if !strings.Contains(text, `sj_queries_total{relation="roads",algorithm="PBSM"} 2`) {
		t.Fatalf("rendered metrics missing the roads/PBSM counter:\n%s", text)
	}
}

func TestWorkloadDefaults(t *testing.T) {
	w := NewWorkload(nil, 5, 5, 0) // degenerate range and count → defaults
	s := w.Snapshot()
	if s.XLo != 0 || s.XHi != 1000 {
		t.Fatalf("degenerate range became [%v, %v), want [0, 1000)", s.XLo, s.XHi)
	}
	if len(s.Buckets) != DefaultWorkloadBuckets {
		t.Fatalf("bucket count = %d, want DefaultWorkloadBuckets = %d", len(s.Buckets), DefaultWorkloadBuckets)
	}
}

func TestWorkloadConcurrent(t *testing.T) {
	w := NewWorkload(NewRegistry(), 0, 1000, 16)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				w.ObserveQuery("a", "PQ")
				w.ObserveWindow(100, 110)
				w.Snapshot()
			}
		}()
	}
	wg.Wait()
	s := w.Snapshot()
	if s.Windowed != 1000 || s.Queries["a"]["PQ"] != 1000 {
		t.Fatalf("after 4×250 observations: windowed = %d, a/PQ = %d, want 1000/1000",
			s.Windowed, s.Queries["a"]["PQ"])
	}
}
