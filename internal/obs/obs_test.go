package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Registration is idempotent: same shape returns the same metric.
	if reg.Counter("c_total", "a counter").Value() != 5 {
		t.Fatal("re-registration did not return the existing counter")
	}

	g := reg.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}

	v := reg.CounterVec("v_total", "labeled", "endpoint", "status")
	v.With("join", "200").Add(3)
	v.With("join", "404").Inc()
	v.With("window", "200").Add(2)
	if v.Total() != 6 {
		t.Fatalf("vec total = %d, want 6", v.Total())
	}
}

func TestShapeConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "counter")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("m", "now a gauge")
}

func TestHistogramBucketsAndRender(t *testing.T) {
	reg := NewRegistry()
	h := reg.HistogramVec("lat_seconds", "latency", []float64{0.01, 0.1, 1}, "endpoint")
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 3} {
		h.With("join").Observe(v)
	}
	if h.With("join").Count() != 5 {
		t.Fatalf("count = %d, want 5", h.With("join").Count())
	}
	if got, want := h.With("join").Sum(), 3.565; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}

	out := reg.Render()
	// le is inclusive: 0.01 counts into the 0.01 bucket.
	for _, line := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{endpoint="join",le="0.01"} 2`,
		`lat_seconds_bucket{endpoint="join",le="0.1"} 3`,
		`lat_seconds_bucket{endpoint="join",le="1"} 4`,
		`lat_seconds_bucket{endpoint="join",le="+Inf"} 5`,
		`lat_seconds_count{endpoint="join"} 5`,
	} {
		if !strings.Contains(out, line+"\n") && !strings.HasSuffix(out, line) {
			t.Fatalf("rendered output missing %q:\n%s", line, out)
		}
	}
}

// TestRenderIsValidExposition checks the shape every non-comment line
// must have — `series{labels} value` with no spaces inside the label
// block — plus label escaping.
func TestRenderIsValidExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("plain_total", "no labels").Inc()
	reg.GaugeVec("esc", "escaping", "path").With(`a"b\c`).Set(1)
	reg.Histogram("h_seconds", "hist", nil).Observe(0.2)

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}

	out := reg.Render()
	if !strings.Contains(out, `esc{path="a\"b\\c"} 1`) {
		t.Fatalf("label escaping wrong:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("unparsable line %q", line)
		}
		series := line[:sp]
		if i := strings.IndexByte(series, '{'); i >= 0 && !strings.HasSuffix(series, "}") {
			t.Fatalf("unbalanced label block in %q", line)
		}
	}
}

func TestConcurrentMetrics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "")
	g := reg.Gauge("g", "")
	h := reg.HistogramVec("h_seconds", "", nil, "k")
	set := NewEWMASet(DefaultAlpha)

	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := []string{"a", "b"}[w%2]
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.With(key).Observe(0.001 * float64(i%7))
				set.Observe(key, float64(i))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Fatalf("gauge = %v, want %d", g.Value(), workers*per)
	}
	if n := h.With("a").Count() + h.With("b").Count(); n != workers*per {
		t.Fatalf("histogram count = %d, want %d", n, workers*per)
	}
	if set.Value("a") <= 0 || set.Value("b") <= 0 {
		t.Fatalf("ewma snapshot = %v", set.Snapshot())
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Value() != 0 {
		t.Fatal("cold EWMA not zero")
	}
	e.Observe(10) // seeds directly
	if e.Value() != 10 {
		t.Fatalf("after seed: %v", e.Value())
	}
	e.Observe(20) // 10 + 0.5*(20-10)
	if e.Value() != 15 {
		t.Fatalf("after second observation: %v", e.Value())
	}
	if e.Count() != 2 {
		t.Fatalf("count = %d", e.Count())
	}

	s := NewEWMASet(0) // falls back to DefaultAlpha
	s.Observe("pq", 4)
	s.Observe("pq", 4)
	if s.Value("pq") != 4 {
		t.Fatalf("set value = %v", s.Value("pq"))
	}
	if s.Value("missing") != 0 {
		t.Fatal("unknown key must read 0")
	}
	snap := s.Snapshot()
	if len(snap) != 1 || snap["pq"] != 4 {
		t.Fatalf("snapshot = %v", snap)
	}
}
