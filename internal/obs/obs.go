// Package obs is the dependency-free metrics subsystem behind the
// serving layers' observability: a concurrent Registry of counters,
// gauges, and fixed-bucket histograms with label support, rendered in
// the Prometheus text exposition format (version 0.0.4), plus per-key
// exponentially-weighted moving averages for cheap steady-state
// latency estimates.
//
// Registration is idempotent — asking for an already-registered
// family with the same shape returns the existing one — and panics on
// a shape conflict (same name, different kind, labels, or buckets),
// which is always a programming error. All metric operations are safe
// for concurrent use and lock-free on the hot path: counters and
// histogram buckets are atomic integers, gauges and histogram sums
// are CAS loops over float64 bits.
//
// The intended wiring: each serving process owns one Registry,
// exposes it on GET /metrics via Handler, and threads the typed
// handles (Counter, Gauge, Histogram and their labeled Vec variants)
// through its request path. EWMASet lives beside the Registry for
// signals that want a current estimate rather than a distribution —
// the per-algorithm and per-shard latency feeds the adaptive router
// and rebalancer will consume.
package obs

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets is the default latency bucket ladder in seconds, spanning
// sub-millisecond cache hits to multi-second scatter-gather joins.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// kind is the metric family type.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds metric families and renders them as Prometheus text
// exposition. The zero value is not usable; construct with NewRegistry.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family is one named metric with a fixed label schema; its children
// are the per-label-value instances.
type family struct {
	name    string
	help    string
	kind    kind
	labels  []string
	buckets []float64 // histogram upper bounds, strictly increasing

	mu       sync.RWMutex
	children map[string]any // label-value key → *Counter | *Gauge | *Histogram
}

// register returns the family, creating it on first use and refusing a
// shape conflict.
func (r *Registry) register(name, help string, k kind, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != k || !equalStrings(f.labels, labels) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("obs: %s re-registered as %s with a different shape", name, k))
		}
		return f
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: %s: buckets must be strictly increasing", name))
		}
	}
	f := &family{
		name: name, help: help, kind: k,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]any),
	}
	r.byName[name] = f
	return f
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// CounterVec registers (or returns) a counter family with the given
// label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, kindCounter, nil, labels)}
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help).With()
}

// GaugeVec registers (or returns) a gauge family with the given label
// names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, kindGauge, nil, labels)}
}

// Histogram registers (or returns) an unlabeled histogram with the
// given bucket upper bounds (nil for DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.HistogramVec(name, help, buckets).With()
}

// HistogramVec registers (or returns) a histogram family with the
// given bucket upper bounds (nil for DefBuckets) and label names.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{f: r.register(name, help, kindHistogram, buckets, labels)}
}

// child returns the instance for one label-value tuple, creating it on
// first use.
func (f *family) child(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	switch f.kind {
	case kindCounter:
		c = &Counter{}
	case kindGauge:
		c = &Gauge{}
	default:
		c = newHistogram(f.buckets)
	}
	f.children[key] = c
	return c
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the counter for one label-value tuple.
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values).(*Counter) }

// Total sums the values of every child counter.
func (v *CounterVec) Total() int64 {
	v.f.mu.RLock()
	defer v.f.mu.RUnlock()
	var t int64
	for _, c := range v.f.children {
		t += c.(*Counter).Value()
	}
	return t
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge for one label-value tuple.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values).(*Gauge) }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for one label-value tuple.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.child(values).(*Histogram) }

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (which must not be negative for Prometheus semantics).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution of float observations
// (conventionally seconds).
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // one per bound, plus +Inf at the end
	count  atomic.Int64
	sum    Gauge
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Handler serves the registry in the Prometheus text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write([]byte(r.Render()))
	})
}

// Render returns the registry in the Prometheus text exposition
// format, families and children in sorted order so scrapes are
// deterministic.
func (r *Registry) Render() string {
	r.mu.RLock()
	names := make([]string, 0, len(r.byName))
	for name := range r.byName {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.byName[name])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		f.render(&b)
	}
	return b.String()
}

// render writes one family.
func (f *family) render(b *strings.Builder) {
	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]any, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.RUnlock()
	if len(children) == 0 {
		return
	}

	fmt.Fprintf(b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for i, c := range children {
		var values []string
		if keys[i] != "" || len(f.labels) > 0 {
			values = strings.Split(keys[i], "\xff")
		}
		switch m := c.(type) {
		case *Counter:
			fmt.Fprintf(b, "%s%s %d\n", f.name, labelString(f.labels, values, ""), m.Value())
		case *Gauge:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, values, ""), formatFloat(m.Value()))
		case *Histogram:
			var cum int64
			for j, bound := range m.bounds {
				cum += m.counts[j].Load()
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, values, formatFloat(bound)), cum)
			}
			cum += m.counts[len(m.bounds)].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(f.labels, values, "+Inf"), cum)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelString(f.labels, values, ""), formatFloat(m.Sum()))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelString(f.labels, values, ""), m.Count())
		}
	}
}

// labelString renders a {name="value",...} block, with an optional
// trailing le bound for histogram bucket lines; empty when there is
// nothing to render.
func labelString(names, values []string, le string) string {
	if len(names) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		// %q escapes exactly what the exposition format requires:
		// backslash, double quote, and newline.
		fmt.Fprintf(&b, "%s=%q", n, v)
	}
	if le != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "le=%q", le)
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip representation, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
