package core

import (
	"context"
	"fmt"
	"time"

	"unijoin/internal/geom"
	"unijoin/internal/iosim"
	"unijoin/internal/rtree"
	"unijoin/internal/stream"
	"unijoin/internal/sweep"
)

// PQ runs the paper's Priority-Queue-Driven Traversal join (Section
// 4): both inputs are turned into y-sorted record sources — an indexed
// input through rtree.SortedScanner (the priority-queue index
// adapter), a non-indexed input through an external sort exactly as in
// SSSJ — and a single plane sweep joins the two sources. This is the
// unification the paper contributes: one algorithm for
// indexed/indexed, indexed/non-indexed, and non-indexed/non-indexed
// inputs (the last being SSSJ itself).
//
// With Options.Window set, tree-backed sources skip subtrees outside
// the window, and sorted file sources drop records outside it. With
// Options.RestrictScanners, each tree scanner is additionally bounded
// by the other input's MBR; this is a no-op when the inputs cover the
// same region, which is why Table 4's PQ numbers equal the tree sizes.
func PQ(ctx context.Context, opts Options, a, b Input) (Result, error) {
	ctx = orBG(ctx)
	o, err := opts.withDefaults()
	if err != nil {
		return Result{}, err
	}
	if a.File == nil && a.Tree == nil || b.File == nil && b.Tree == nil {
		return Result{}, fmt.Errorf("%w: PQ inputs need a file or a tree", ErrNilRelation)
	}
	return run(ctx, o, "PQ", func(o Options, res *Result) error {
		// The preparation phase is the external sorts of non-indexed
		// inputs; indexed inputs cost nothing here because the sorted
		// scanner extracts lazily, inside the sweep.
		prepStart := time.Now()
		sideA, err := pqSource(ctx, o, a, b)
		if err != nil {
			return err
		}
		defer sideA.release()
		sideB, err := pqSource(ctx, o, b, a)
		if err != nil {
			return err
		}
		defer sideB.release()
		res.PartitionWall = time.Since(prepStart)
		sweepStart := time.Now()
		st, err := sweep.Join(ctx, sideA.src, sideB.src, o.newStructure(), o.newStructure(),
			o.pairSink())
		if err != nil {
			return err
		}
		res.SweepWall = time.Since(sweepStart)
		res.Pairs = st.Pairs
		res.Sweep = st
		res.SweepMaxBytes = st.MaxBytes
		for _, side := range []pqSide{sideA, sideB} {
			if side.scanner != nil {
				res.ScannerMaxBytes += side.scanner.MaxBytes()
				res.PageRequests += side.scanner.PagesRead()
			}
			if side.sort != nil {
				res.SortStats = append(res.SortStats, *side.sort)
			}
		}
		res.LogicalRequests = res.PageRequests
		return nil
	})
}

// pqSide is one prepared input of a PQ join: the y-sorted source plus
// the statistics carriers, and the temporary sorted file (for
// non-indexed inputs) to release when the join is done.
type pqSide struct {
	src     sweep.Source
	scanner *rtree.SortedScanner
	sort    *stream.SortStats
	temp    *iosim.File
}

// release returns the side's scratch space to the store.
func (s pqSide) release() {
	if s.temp != nil {
		s.temp.Release()
	}
}

// pqSource builds the y-sorted source for one input. For indexed
// inputs the scanner carries page and memory statistics; for
// non-indexed inputs the external sort's statistics and temp file are
// carried instead.
func pqSource(ctx context.Context, o Options, in, other Input) (pqSide, error) {
	if in.Tree != nil {
		window, useWindow := pqWindow(o, other)
		var sc *rtree.SortedScanner
		if useWindow {
			sc = in.Tree.WindowScanner(rtree.StoreReader{Store: o.Store}, window)
		} else {
			sc = in.Tree.Scanner(rtree.StoreReader{Store: o.Store})
		}
		return pqSide{src: sc, scanner: sc}, nil
	}
	sorted, stats, err := stream.Sort(o.Store, in.File, stream.Records, geom.ByLowerY, o.MemoryBytes)
	if err != nil {
		return pqSide{}, err
	}
	rd := stream.NewReader(sorted, stream.Records)
	side := pqSide{src: rd, sort: &stats, temp: sorted}
	if window, useWindow := pqWindow(o, other); useWindow {
		side.src = &windowFilterSource{ctx: ctx, src: rd, window: window}
	}
	return side, nil
}

// pqWindow computes the restriction rectangle for one source given the
// join options and the opposite input.
func pqWindow(o Options, other Input) (geom.Rect, bool) {
	have := false
	w := geom.Rect{}
	if o.Window != nil {
		w, have = *o.Window, true
	}
	if o.RestrictScanners && other.Tree != nil {
		m := other.Tree.MBR()
		if m.Valid() {
			if have {
				in, ok := w.Intersection(m)
				if !ok {
					// Disjoint restriction: a window nothing intersects.
					return geom.EmptyRect(), true
				}
				w = in
			} else {
				w, have = m, true
			}
		}
	}
	return w, have
}

// windowed wraps src with a window filter when w is set.
func windowed(ctx context.Context, src sweep.Source, w *geom.Rect) sweep.Source {
	if w == nil {
		return src
	}
	return &windowFilterSource{ctx: ctx, src: src, window: *w}
}

// windowFilterSource drops records outside a window from a sorted
// source, preserving order. Long runs of filtered-out records are the
// one place a single Next call can do unbounded work, so the skip
// loop polls the context.
type windowFilterSource struct {
	ctx     context.Context
	src     sweep.Source
	window  geom.Rect
	skipped int
}

// Next implements sweep.Source.
func (w *windowFilterSource) Next() (geom.Record, bool, error) {
	for {
		r, ok, err := w.src.Next()
		if err != nil || !ok {
			return r, ok, err
		}
		if r.Rect.Intersects(w.window) {
			return r, true, nil
		}
		w.skipped++
		if w.skipped&4095 == 0 && w.ctx != nil {
			if err := w.ctx.Err(); err != nil {
				return geom.Record{}, false, err
			}
		}
	}
}
