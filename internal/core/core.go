// Package core implements the spatial join algorithms the paper
// builds and compares (Sections 3 and 4), all over the simulated disk:
//
//   - SSSJ   — Scalable Sweeping-based Spatial Join [4]: external sort
//     by lower y, then one plane sweep (plus the slab-partitioned
//     fallback for adversarial inputs).
//   - PBSM   — Partition-based Spatial Merge join [30]: tile-hash
//     partitioning followed by an in-memory sweep per partition.
//   - ST     — Synchronized R-tree traversal [8] with an LRU buffer
//     pool and the search-space restriction of the original paper.
//   - PQ     — the paper's contribution: Priority-Queue-driven
//     traversal, which extracts indexed inputs in sorted order and
//     feeds the same sweep as SSSJ, unifying both approaches; it
//     accepts any mix of indexed and non-indexed inputs and extends
//     to multi-way joins (MultiwayPQ).
//
// A Planner implements the paper's Section 6.3 cost model: choose the
// index path only when the estimated fraction of leaf pages touched is
// below the machine-specific random-vs-sequential break-even point.
//
// All joins compute the filter step: every pair of intersecting MBRs,
// each exactly once, with the left component from the first input.
// Following the paper's accounting, the cost of reporting (writing)
// the output is excluded: results go to an optional Emit callback, or
// to the batched EmitBatch callback that amortizes the per-pair
// indirection over pooled pairbuf.BatchSize slices.
//
// Every algorithm takes a context.Context and polls it periodically —
// between phases and inside the sweep, distribution, and traversal
// loops — so a canceled or timed-out query returns ErrCanceled
// promptly instead of running to completion.
package core

import (
	"context"
	"fmt"
	"time"

	"unijoin/internal/geom"
	"unijoin/internal/iosim"
	"unijoin/internal/pairbuf"
	"unijoin/internal/rtree"
	"unijoin/internal/stream"
	"unijoin/internal/sweep"
)

// Input is one join relation: a record stream, an R-tree, or both.
// The unified PQ join uses whichever representation the plan calls
// for; SSSJ/PBSM require File, ST requires Tree.
type Input struct {
	File *iosim.File
	Tree *rtree.Tree
}

// FileInput wraps a non-indexed record stream.
func FileInput(f *iosim.File) Input { return Input{File: f} }

// TreeInput wraps an indexed relation.
func TreeInput(t *rtree.Tree) Input { return Input{Tree: t} }

// Indexed reports whether the input has a spatial index.
func (in Input) Indexed() bool { return in.Tree != nil }

// Options configures a join run. The zero value of every field has a
// sensible default; Store and Universe are required.
type Options struct {
	// Store is the simulated disk all inputs live on.
	Store *iosim.Store
	// Universe bounds the data of both inputs; it sizes the striped
	// sweep structure and PBSM's tile grid.
	Universe geom.Rect

	// MemoryBytes is the simulated internal-memory budget (sorting
	// runs, PBSM partitions). Default 24 MB, the paper's machines.
	MemoryBytes int
	// BufferPoolBytes is the LRU pool available to ST. Default 22 MB.
	BufferPoolBytes int

	// Strips is the striped-sweep strip count (default
	// sweep.DefaultStrips). Ignored when UseForwardSweep is set.
	Strips int
	// UseForwardSweep switches the main sweep kernel from
	// Striped-Sweep to Forward-Sweep (for the ablation of [4]).
	UseForwardSweep bool

	// PBSMTilesPerAxis is the tile grid resolution (default 128, the
	// value the paper settled on; 32 reproduces Patel and DeWitt's
	// original and overflows on clustered data).
	PBSMTilesPerAxis int
	// PBSMPartitions overrides the computed partition count (0 = auto:
	// enough partitions that a partition's share of both inputs fits in
	// memory).
	PBSMPartitions int
	// PBSMSortDedup switches duplicate elimination to Patel and
	// DeWitt's original strategy: emit candidate pairs with duplicates,
	// then externally sort the pair stream and drop repeats. The
	// default reference-tile test produces identical output with no
	// extra sort; this mode exists for fidelity comparisons and charges
	// the extra sort I/O honestly.
	PBSMSortDedup bool

	// Window restricts the join to records intersecting this
	// rectangle (both sides must intersect it for a pair to qualify);
	// used for the selective joins of §6.3. Every algorithm honors
	// it: PQ windows its scanners and sorted sources, SSSJ filters
	// the sweep after the (unavoidable) full sort, PBSM filters at
	// partitioning time, and ST/BFRJ prune subtrees and filter leaf
	// matches.
	Window *geom.Rect
	// RestrictScanners makes PQ tree scanners skip subtrees that
	// cannot intersect the other input's bounding rectangle — the
	// "slightly more complicated version" of Section 4. It has no
	// effect when the inputs overlap fully (as in all of Figure 2/3)
	// but is what makes selective joins cheap.
	RestrictScanners bool

	// Emit receives every result pair. nil counts pairs without
	// reporting them, matching the paper's cost accounting, which
	// excludes output writing.
	Emit func(geom.Pair)
	// EmitBatch receives result pairs in pooled batches of up to
	// pairbuf.BatchSize — the fast path for callers that can consume
	// slices, amortizing the per-pair callback over thousands of
	// pairs. The slice is only valid for the duration of the call and
	// is reused afterwards; callers must copy pairs they retain. At
	// most one of Emit and EmitBatch may be set.
	EmitBatch func([]geom.Pair)
}

func (o Options) withDefaults() (Options, error) {
	if o.Store == nil {
		return o, fmt.Errorf("core: Options.Store is required")
	}
	if !o.Universe.Valid() {
		return o, fmt.Errorf("core: Options.Universe %v is invalid", o.Universe)
	}
	if o.Emit != nil && o.EmitBatch != nil {
		return o, fmt.Errorf("core: Options.Emit and Options.EmitBatch are mutually exclusive")
	}
	if o.MemoryBytes == 0 {
		o.MemoryBytes = 24 << 20
	}
	if o.MemoryBytes < 4*o.Store.PageSize() {
		o.MemoryBytes = 4 * o.Store.PageSize()
	}
	if o.BufferPoolBytes == 0 {
		o.BufferPoolBytes = 22 << 20
	}
	if o.Strips == 0 {
		o.Strips = sweep.DefaultStrips
	}
	if o.PBSMTilesPerAxis == 0 {
		o.PBSMTilesPerAxis = 128
	}
	return o, nil
}

// newStructure builds the configured sweep structure.
func (o *Options) newStructure() sweep.Structure {
	if o.UseForwardSweep {
		return sweep.NewForward()
	}
	return sweep.NewStripedFor(o.Universe, o.Strips)
}

// emitPair multiplexes counting and the optional callback, for
// algorithms that filter kernel output (ownership tests) and so count
// result pairs themselves.
func (o *Options) emitPair(pairs *int64, ra, rb geom.Record) {
	*pairs++
	if o.Emit != nil {
		o.Emit(geom.Pair{Left: ra.ID, Right: rb.ID})
	}
}

// pairSink returns the kernel callback that forwards every pair to
// Emit, or nil for counting-only joins — the fast path where the
// sweep kernel tallies pairs with no per-pair indirection at all and
// the caller reads the count from sweep.Stats.
func (o *Options) pairSink() func(ra, rb geom.Record) {
	if o.Emit == nil {
		return nil
	}
	emit := o.Emit
	return func(ra, rb geom.Record) { emit(geom.Pair{Left: ra.ID, Right: rb.ID}) }
}

// Result reports what a join did. Time is split the way the paper
// splits it: measured computation (HostCPU, to be scaled by a
// Machine) and simulated disk activity (IO counters, to be priced by
// a DiskModel).
type Result struct {
	Algorithm string
	Pairs     int64

	// Sweep reports the plane-sweep kernel statistics (for SSSJ/PQ;
	// zero value for PBSM/ST which sweep per partition or node pair).
	Sweep sweep.Stats

	// ScannerMaxBytes is the peak footprint of PQ's priority queues
	// and leaf buffers (the "Priority Queue" rows of Table 3).
	ScannerMaxBytes int
	// SweepMaxBytes is the peak sweep-structure footprint (the "Sweep
	// Structure" rows of Table 3).
	SweepMaxBytes int

	// PageRequests counts index page reads issued to the disk during
	// the join (Table 4): scanner reads for PQ, pool misses for ST.
	PageRequests int64
	// LogicalRequests counts page requests before buffer-pool hits are
	// removed (ST only; equals PageRequests for PQ).
	LogicalRequests int64

	// IO is the store counter delta over the whole join, including any
	// sorting and partitioning passes, classified under the
	// segmented-drive-cache model (Machines 1 and 3).
	IO iosim.Counters
	// IODirect is the same delta classified for a drive whose cache
	// cannot track several sequential streams (Machine 2's 128 KB
	// Medalist); interleaved streams all pay seeks.
	IODirect iosim.Counters

	// HostCPU is the measured wall-clock of the (single-threaded) join
	// on the host, excluding simulated I/O pricing. Scale it with
	// Machine.CPUTime.
	HostCPU time.Duration

	// PartitionWall and SweepWall split HostCPU the way the parallel
	// engine's Report splits its phases: time spent preparing inputs
	// (external sorts, PBSM distribution, scanner setup) versus time
	// in the sweep or traversal that emits pairs. ST and BFRJ have no
	// preparation phase, so their PartitionWall is zero. The serving
	// layer feeds these into its per-phase histograms and per-query
	// traces.
	PartitionWall time.Duration
	SweepWall     time.Duration

	// SortStats describe the external sorts run on non-indexed inputs
	// (SSSJ and PQ), in input order.
	SortStats []stream.SortStats

	// PBSM holds partitioning statistics when Algorithm == "PBSM".
	PBSM *PBSMStats
}

// ObservedIOTime prices the join's disk activity on a machine,
// distinguishing sequential from random accesses — the "observed"
// methodology of Figure 2(d)-(f) and Figure 3. Machines with small
// on-disk buffers (below 256 KB) use the single-stream classification,
// reproducing the paper's Machine 2 observation that ST loses its
// layout advantage there.
func (r Result) ObservedIOTime(m iosim.Machine) time.Duration {
	if m.Disk.OnDiskBufferKB < 256 {
		return m.Disk.IOTime(r.IODirect, m.PageSize)
	}
	return m.Disk.IOTime(r.IO, m.PageSize)
}

// EstimatedIOTime prices the join the way earlier index-join studies
// did (Figure 2(a)-(c)): every page access is charged the average
// (random) read time.
func (r Result) EstimatedIOTime(m iosim.Machine) time.Duration {
	return m.Disk.EstimatedIOTime(r.IO.Total(), m.PageSize)
}

// CPUTime scales the measured computation onto a machine.
func (r Result) CPUTime(m iosim.Machine) time.Duration {
	return m.CPUTime(r.HostCPU)
}

// ObservedTotal is CPU plus observed I/O on a machine.
func (r Result) ObservedTotal(m iosim.Machine) time.Duration {
	return r.CPUTime(m) + r.ObservedIOTime(m)
}

// EstimatedTotal is CPU plus estimated I/O on a machine.
func (r Result) EstimatedTotal(m iosim.Machine) time.Duration {
	return r.CPUTime(m) + r.EstimatedIOTime(m)
}

// String implements fmt.Stringer.
func (r Result) String() string {
	return fmt.Sprintf("%s: %d pairs, io {%s}, cpu %v", r.Algorithm, r.Pairs, r.IO, r.HostCPU)
}

// run wraps the common scaffolding shared by every algorithm: the
// initial cancellation check, counter snapshots and wall-clock timing,
// the EmitBatch batcher (installed as the Options.Emit the body sees,
// flushed on success, its pooled buffer released either way), and the
// normalization of context errors into the ErrCanceled chain.
func run(ctx context.Context, o Options, name string, body func(o Options, res *Result) error) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return Result{}, wrapCanceled(err)
	}
	var bt *pairbuf.Batcher
	if o.EmitBatch != nil {
		bt = pairbuf.NewBatcher(o.EmitBatch)
		o.Emit = bt.Emit
		o.EmitBatch = nil
	}
	res := Result{Algorithm: name}
	before := o.Store.Counters()
	beforeDirect := o.Store.DirectCounters()
	start := time.Now()
	err := body(o, &res)
	if bt != nil {
		if err == nil {
			bt.Flush()
		}
		bt.Release()
	}
	if err != nil {
		return Result{}, wrapCanceled(err)
	}
	res.HostCPU = time.Since(start)
	res.IO = o.Store.Counters().Sub(before)
	res.IODirect = o.Store.DirectCounters().Sub(beforeDirect)
	return res, nil
}
