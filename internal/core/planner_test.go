package core

import (
	"math"
	"testing"

	"unijoin/internal/geom"
	"unijoin/internal/iosim"
)

func TestThresholdMatchesPaperFor10xDisk(t *testing.T) {
	// §6.3 assumes a random read costs ~10x a sequential read and
	// concludes "use the index only when the join involves less than
	// 60% of the leaf nodes". A synthetic disk with exactly that ratio
	// must produce exactly 0.6.
	m := iosim.Machine{
		Name:     "paper-model",
		CPUMHz:   500,
		PageSize: 8192,
		Disk: iosim.DiskModel{
			// seq read = 8192B / 10MB/s = 0.8192 ms; rand = 10x.
			PeakMBps:    10,
			AvgAccessMs: 9 * 8192.0 / 10e6 * 1e3,
		},
	}
	p := Planner{Machine: m}
	if got := p.Threshold(); math.Abs(got-0.6) > 0.001 {
		t.Fatalf("threshold = %.4f, want 0.6", got)
	}
}

func TestThresholdsForPaperMachines(t *testing.T) {
	// Machine 1's disk ratio is close to 10x, so its threshold lands
	// near the paper's 60%; machines 2 and 3 have much higher ratios
	// (fast transfer, unchanged seeks), pushing thresholds down.
	t1 := Planner{Machine: iosim.Machine1}.Threshold()
	t2 := Planner{Machine: iosim.Machine2}.Threshold()
	t3 := Planner{Machine: iosim.Machine3}.Threshold()
	if t1 < 0.4 || t1 > 0.7 {
		t.Fatalf("machine 1 threshold = %.3f, want near 0.6", t1)
	}
	if t2 >= t1 || t3 >= t1 {
		t.Fatalf("faster-transfer disks must have lower thresholds: %.3f %.3f %.3f", t1, t2, t3)
	}
}

func TestPlannerChoosesSortForFullOverlap(t *testing.T) {
	// Fully overlapping inputs touch ~100% of the leaves: on every
	// machine the planner must take the sort path for both sides.
	u := geom.NewRect(0, 0, 1000, 1000)
	e := buildEnv(t, u, genUniform(40, 4000, u, 15), genUniform(41, 3000, u, 15))
	p := Planner{Machine: iosim.Machine1}
	d, err := p.Plan(bg, e.options(), Input{File: e.fileA, Tree: e.treeA}, Input{File: e.fileB, Tree: e.treeB})
	if err != nil {
		t.Fatal(err)
	}
	if d.UseIndexA || d.UseIndexB {
		t.Fatalf("full overlap should use sort on both sides: %v", d)
	}
	if d.FracA < 0.7 || d.FracB < 0.7 {
		t.Fatalf("estimated fractions too low for full overlap: %v", d)
	}
}

func TestPlannerChoosesIndexForSelectiveJoin(t *testing.T) {
	// A tiny localized relation against a country-wide one: the big
	// side's index should be used (few leaves touched), the small side
	// sorted or indexed either way.
	u := geom.NewRect(0, 0, 1000, 1000)
	big := genUniform(42, 20000, u, 8)
	small := genUniform(43, 300, geom.NewRect(0, 0, 80, 80), 8)
	e := buildEnv(t, u, big, small)
	p := Planner{Machine: iosim.Machine1}
	d, err := p.Plan(bg, e.options(), Input{File: e.fileA, Tree: e.treeA}, Input{File: e.fileB, Tree: e.treeB})
	if err != nil {
		t.Fatal(err)
	}
	if !d.UseIndexA {
		t.Fatalf("selective join should use the big side's index: %v", d)
	}
	if d.FracA > p.Threshold() {
		t.Fatalf("estimated fraction %f should be below threshold %f", d.FracA, p.Threshold())
	}
}

func TestPlannerJoinProducesCorrectPairs(t *testing.T) {
	u := geom.NewRect(0, 0, 1000, 1000)
	big := genUniform(44, 8000, u, 8)
	small := genUniform(45, 200, geom.NewRect(100, 100, 220, 220), 10)
	e := buildEnv(t, u, big, small)
	want := bruteForcePairs(big, small)
	p := Planner{Machine: iosim.Machine1}
	got := make(map[geom.Pair]bool)
	o := e.options()
	o.Emit = func(pr geom.Pair) {
		if got[pr] {
			t.Fatalf("duplicate %v", pr)
		}
		got[pr] = true
	}
	d, res, err := p.Join(bg, o, Input{File: e.fileA, Tree: e.treeA}, Input{File: e.fileB, Tree: e.treeB})
	if err != nil {
		t.Fatal(err)
	}
	checkEqual(t, "planner join", got, want)
	if d.UseIndexA && res.PageRequests >= int64(e.treeA.NumNodes()) {
		t.Fatalf("index path should skip pages: %d of %d", res.PageRequests, e.treeA.NumNodes())
	}
	if d.String() == "" {
		t.Fatal("empty decision string")
	}
}

func TestPlannerWindowLowersEstimate(t *testing.T) {
	u := geom.NewRect(0, 0, 1000, 1000)
	e := buildEnv(t, u, genUniform(46, 5000, u, 10), genUniform(47, 4000, u, 10))
	p := Planner{Machine: iosim.Machine1}
	noWin, err := p.Plan(bg, e.options(), Input{File: e.fileA, Tree: e.treeA}, Input{File: e.fileB, Tree: e.treeB})
	if err != nil {
		t.Fatal(err)
	}
	o := e.options()
	w := geom.NewRect(0, 0, 150, 150)
	o.Window = &w
	withWin, err := p.Plan(bg, o, Input{File: e.fileA, Tree: e.treeA}, Input{File: e.fileB, Tree: e.treeB})
	if err != nil {
		t.Fatal(err)
	}
	if withWin.FracA >= noWin.FracA {
		t.Fatalf("window should lower the estimate: %f vs %f", withWin.FracA, noWin.FracA)
	}
}

func TestPlannerHandlesTreeOnlyInput(t *testing.T) {
	u := geom.NewRect(0, 0, 500, 500)
	e := buildEnv(t, u, genUniform(48, 2000, u, 10), genUniform(49, 1500, u, 10))
	p := Planner{Machine: iosim.Machine3}
	d, err := p.Plan(bg, e.options(), TreeInput(e.treeA), Input{File: e.fileB, Tree: e.treeB})
	if err != nil {
		t.Fatal(err)
	}
	if !d.UseIndexA {
		t.Fatal("tree-only input must take the index path")
	}
	if _, err := p.Plan(bg, e.options(), Input{}, FileInput(e.fileB)); err == nil {
		t.Fatal("empty input must error")
	}
}

func TestPlannerMinSkewEstimator(t *testing.T) {
	// The MinSkew estimator must reach the same qualitative decisions
	// as the grid on clearly separable cases.
	u := geom.NewRect(0, 0, 1000, 1000)
	big := genUniform(120, 15000, u, 8)
	small := genUniform(121, 300, geom.NewRect(0, 0, 80, 80), 8)
	e := buildEnv(t, u, big, small)
	p := Planner{Machine: iosim.Machine1, UseMinSkew: true}
	d, err := p.Plan(bg, e.options(), Input{File: e.fileA, Tree: e.treeA}, Input{File: e.fileB, Tree: e.treeB})
	if err != nil {
		t.Fatal(err)
	}
	if !d.UseIndexA {
		t.Fatalf("selective join should use the index under MinSkew too: %v", d)
	}
	// Full overlap: sort both sides.
	e2 := buildEnv(t, u, genUniform(122, 5000, u, 12), genUniform(123, 4000, u, 12))
	d2, err := p.Plan(bg, e2.options(), Input{File: e2.fileA, Tree: e2.treeA}, Input{File: e2.fileB, Tree: e2.treeB})
	if err != nil {
		t.Fatal(err)
	}
	if d2.UseIndexA || d2.UseIndexB {
		t.Fatalf("full overlap should sort under MinSkew: %v", d2)
	}
}
