package core

import (
	"context"
	"fmt"
	"time"

	"unijoin/internal/geom"
	"unijoin/internal/iosim"
	"unijoin/internal/stream"
	"unijoin/internal/sweep"
)

// SSSJ runs the Scalable Sweeping-based Spatial Join of Arge et al.
// [4] on two non-indexed inputs: both streams are externally sorted by
// the lower y-coordinate of their MBRs, then a single plane sweep over
// the two sorted streams reports every intersecting pair.
//
// For all realistic data sets (including everything in the paper's
// evaluation) the sweep structures stay far below the memory budget
// and the algorithm is exactly sort + scan: two sequential read
// passes, one non-sequential read pass while merging, and two
// sequential write passes over the data, as quoted in Section 3.1.
// If the sweep structure nevertheless outgrows the budget, SSSJ
// reports ErrSweepOverflow; SSSJPartitioned is the
// distribution-sweeping fallback for such adversarial inputs.
func SSSJ(ctx context.Context, opts Options, a, b *iosim.File) (Result, error) {
	ctx = orBG(ctx)
	o, err := opts.withDefaults()
	if err != nil {
		return Result{}, err
	}
	return run(ctx, o, "SSSJ", func(o Options, res *Result) error {
		sortStart := time.Now()
		sortedA, statsA, err := stream.Sort(o.Store, a, stream.Records, geom.ByLowerY, o.MemoryBytes)
		if err != nil {
			return err
		}
		defer sortedA.Release()
		if err := ctx.Err(); err != nil {
			return err
		}
		sortedB, statsB, err := stream.Sort(o.Store, b, stream.Records, geom.ByLowerY, o.MemoryBytes)
		if err != nil {
			return err
		}
		defer sortedB.Release()
		res.SortStats = []stream.SortStats{statsA, statsB}
		res.PartitionWall = time.Since(sortStart)

		// A window cannot reduce the sort passes (the paper's §6.3
		// point: the sort path has no locality to exploit) but it does
		// filter the sweep, so only window records meet the kernel.
		srcA := windowed(ctx, stream.NewReader(sortedA, stream.Records), o.Window)
		srcB := windowed(ctx, stream.NewReader(sortedB, stream.Records), o.Window)
		sweepStart := time.Now()
		st, err := sweep.Join(ctx, srcA, srcB,
			o.newStructure(), o.newStructure(),
			o.pairSink(),
		)
		if err != nil {
			return err
		}
		res.SweepWall = time.Since(sweepStart)
		res.Pairs = st.Pairs
		res.Sweep = st
		res.SweepMaxBytes = st.MaxBytes
		if st.MaxBytes > o.MemoryBytes {
			return fmt.Errorf("%w: sweep structure reached %d bytes against a %d-byte budget",
				ErrSweepOverflow, st.MaxBytes, o.MemoryBytes)
		}
		return nil
	})
}

// ErrSweepOverflow reports that the in-memory sweep structures
// exceeded the configured memory budget. The paper handles this case
// (which never occurs on real-life data) by partitioning along one
// dimension; use SSSJPartitioned.
var ErrSweepOverflow = fmt.Errorf("core: sweep structure exceeded internal memory")

// SSSJPartitioned is SSSJ's defense against worst-case inputs
// (Section 3.1): the universe is cut into vertical slabs, records are
// replicated into every slab their x-interval overlaps, and each slab
// is joined independently with the standard sort-and-sweep. A pair is
// reported only in the slab containing the left edge of the pair's
// intersection, so output is exactly-once. With slabs = 1 it reduces
// to plain SSSJ.
//
// This is a simplified form of the distribution-sweeping machinery of
// [4, 5]: one level of partitioning along x, which is all that is ever
// needed unless the active-rectangle population exceeds memory by more
// than the slab factor.
func SSSJPartitioned(ctx context.Context, opts Options, a, b *iosim.File, slabs int) (Result, error) {
	ctx = orBG(ctx)
	o, err := opts.withDefaults()
	if err != nil {
		return Result{}, err
	}
	if slabs < 1 {
		return Result{}, fmt.Errorf("core: slab count %d < 1", slabs)
	}
	if slabs == 1 {
		return SSSJ(ctx, opts, a, b)
	}
	return run(ctx, o, "SSSJ-part", func(o Options, res *Result) error {
		// Slab boundaries over the universe's x-range.
		width := float64(o.Universe.Width()) / float64(slabs)
		if width <= 0 {
			return fmt.Errorf("core: degenerate universe %v for partitioning", o.Universe)
		}
		slabOf := func(x geom.Coord) int {
			i := int(float64(x-o.Universe.XLo) / width)
			if i < 0 {
				i = 0
			}
			if i >= slabs {
				i = slabs - 1
			}
			return i
		}

		distribute := func(in *iosim.File) ([]*iosim.File, error) {
			files := make([]*iosim.File, slabs)
			writers := make([]*stream.Writer[geom.Record], slabs)
			for i := range files {
				files[i] = iosim.NewFile(o.Store)
				writers[i] = stream.NewWriter(files[i], stream.Records)
			}
			rd := stream.NewReader(in, stream.Records)
			for n := 0; ; n++ {
				if n&4095 == 0 {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
				}
				rec, ok, err := rd.Next()
				if err != nil {
					return nil, err
				}
				if !ok {
					break
				}
				if o.Window != nil && !rec.Rect.Intersects(*o.Window) {
					continue
				}
				for s := slabOf(rec.Rect.XLo); s <= slabOf(rec.Rect.XHi); s++ {
					if err := writers[s].Write(rec); err != nil {
						return nil, err
					}
				}
			}
			for _, w := range writers {
				if err := w.Flush(); err != nil {
					return nil, err
				}
			}
			return files, nil
		}

		distStart := time.Now()
		slabsA, err := distribute(a)
		if err != nil {
			return err
		}
		slabsB, err := distribute(b)
		if err != nil {
			return err
		}
		res.PartitionWall = time.Since(distStart)

		for s := 0; s < slabs; s++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			sortStart := time.Now()
			sortedA, statsA, err := stream.Sort(o.Store, slabsA[s], stream.Records, geom.ByLowerY, o.MemoryBytes)
			if err != nil {
				return err
			}
			slabsA[s].Release()
			sortedB, statsB, err := stream.Sort(o.Store, slabsB[s], stream.Records, geom.ByLowerY, o.MemoryBytes)
			if err != nil {
				return err
			}
			slabsB[s].Release()
			res.SortStats = append(res.SortStats, statsA, statsB)
			res.PartitionWall += time.Since(sortStart)

			cur := s
			sweepStart := time.Now()
			st, err := sweep.Join(ctx,
				stream.NewReader(sortedA, stream.Records),
				stream.NewReader(sortedB, stream.Records),
				o.newStructure(), o.newStructure(),
				func(ra, rb geom.Record) {
					// Owner slab: where the intersection starts.
					left := ra.Rect.XLo
					if rb.Rect.XLo > left {
						left = rb.Rect.XLo
					}
					if slabOf(left) == cur {
						o.emitPair(&res.Pairs, ra, rb)
					}
				},
			)
			if err != nil {
				return err
			}
			res.SweepWall += time.Since(sweepStart)
			sortedA.Release()
			sortedB.Release()
			res.Sweep.Pairs += st.Pairs
			res.Sweep.Comparisons += st.Comparisons
			if st.MaxLen > res.Sweep.MaxLen {
				res.Sweep.MaxLen = st.MaxLen
			}
			if st.MaxBytes > res.Sweep.MaxBytes {
				res.Sweep.MaxBytes = st.MaxBytes
			}
		}
		res.SweepMaxBytes = res.Sweep.MaxBytes
		return nil
	})
}
