package core

import (
	"context"
	"errors"
	"fmt"
)

// Typed sentinel errors for the join paths. They are defined here —
// the lowest layer that can name them without import cycles — and
// re-exported by the public unijoin package, so errors.Is works
// identically on values returned from either layer.
var (
	// ErrNeedsIndex reports that an algorithm requiring R-tree inputs
	// (ST, BFRJ, INL, the seeded-tree join) was handed a relation
	// without one.
	ErrNeedsIndex = errors.New("unijoin: algorithm requires indexed inputs")

	// ErrNilRelation reports a nil relation or an input with neither a
	// record file nor an index.
	ErrNilRelation = errors.New("unijoin: nil relation")

	// ErrCanceled reports that the context governing a join was
	// canceled before the join completed. It wraps context.Canceled,
	// so errors.Is(err, context.Canceled) also matches; joins that hit
	// a deadline additionally match context.DeadlineExceeded through
	// the returned error's cause chain.
	ErrCanceled = fmt.Errorf("unijoin: query canceled: %w", context.Canceled)
)

// canceledError carries the concrete context error (context.Canceled
// or context.DeadlineExceeded) alongside the ErrCanceled sentinel.
type canceledError struct{ cause error }

func (e *canceledError) Error() string {
	return "unijoin: query canceled: " + e.cause.Error()
}

func (e *canceledError) Unwrap() []error { return []error{ErrCanceled, e.cause} }

// needsIndexErr builds the per-algorithm ErrNeedsIndex error.
func needsIndexErr(alg string) error {
	return fmt.Errorf("%w: %s requires R-trees on both inputs", ErrNeedsIndex, alg)
}

// orBG normalizes a nil context so algorithm bodies can poll ctx.Err
// unconditionally.
func orBG(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// WrapCanceled normalizes context errors bubbling out of a join into
// the ErrCanceled chain; other errors pass through unchanged. The
// public unijoin layer uses it to normalize errors from paths that do
// not go through this package (the parallel engine).
func WrapCanceled(err error) error { return wrapCanceled(err) }

// wrapCanceled normalizes context errors bubbling out of a join into
// the ErrCanceled chain; other errors pass through unchanged.
func wrapCanceled(err error) error {
	if err == nil || errors.Is(err, ErrCanceled) {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return &canceledError{cause: err}
	}
	return err
}
