package core

import (
	"testing"

	"unijoin/internal/geom"
	"unijoin/internal/rtree"
)

func TestBFRJMatchesBruteForce(t *testing.T) {
	u := geom.NewRect(0, 0, 1000, 1000)
	e := buildEnv(t, u, genUniform(90, 900, u, 30), genUniform(91, 700, u, 30))
	want := bruteForcePairs(e.recsA, e.recsB)
	got, res := collect(t, func(o Options) (Result, error) { return BFRJ(bg, o, e.treeA, e.treeB) }, e.options())
	checkEqual(t, "BFRJ", got, want)
	if res.ScannerMaxBytes == 0 {
		t.Fatal("intermediate join index size not tracked")
	}
}

func TestBFRJDifferentHeights(t *testing.T) {
	u := geom.NewRect(0, 0, 1000, 1000)
	big := genUniform(92, 8000, u, 10)
	tiny := genUniform(93, 40, u, 50)
	e := buildEnv(t, u, big, tiny)
	if e.treeA.Height() == e.treeB.Height() {
		t.Skip("trees same height")
	}
	want := bruteForcePairs(big, tiny)
	got, _ := collect(t, func(o Options) (Result, error) { return BFRJ(bg, o, e.treeA, e.treeB) }, e.options())
	checkEqual(t, "BFRJ heights", got, want)
}

func TestBFRJNearOptimalIO(t *testing.T) {
	// The claim of [16] quoted in the paper: BFRJ performs an almost
	// optimal number of I/Os "if a sufficiently large buffer pool is
	// available", and its global ordering beats ST's depth-first
	// rereads even on a small pool.
	u := geom.NewRect(0, 0, 1000, 1000)
	e := buildEnv(t, u, genUniform(94, 12000, u, 12), genUniform(95, 9000, u, 12))
	lower := int64(e.treeA.NumNodes() + e.treeB.NumNodes())

	small := e.options()
	small.BufferPoolBytes = 64 << 10 // 8 pages
	_, st := collect(t, func(o Options) (Result, error) { return ST(bg, o, e.treeA, e.treeB) }, small)
	_, bf := collect(t, func(o Options) (Result, error) { return BFRJ(bg, o, e.treeA, e.treeB) }, small)
	if bf.PageRequests >= st.PageRequests {
		t.Fatalf("BFRJ (%d) should request fewer pages than ST (%d)", bf.PageRequests, st.PageRequests)
	}

	decent := e.options()
	decent.BufferPoolBytes = int(lower) * e.store.PageSize() / 2 // pool = half the trees
	_, st2 := collect(t, func(o Options) (Result, error) { return ST(bg, o, e.treeA, e.treeB) }, decent)
	_, bf2 := collect(t, func(o Options) (Result, error) { return BFRJ(bg, o, e.treeA, e.treeB) }, decent)
	if float64(bf2.PageRequests) > 1.2*float64(lower) {
		t.Fatalf("BFRJ requests %d vs lower bound %d; want near-optimal with a decent pool",
			bf2.PageRequests, lower)
	}
	// With a pool this size ST is near-optimal too (the Table 4 NJ/NY
	// regime); BFRJ must stay in the same band rather than beat it.
	if float64(bf2.PageRequests) > 1.1*float64(st2.PageRequests) {
		t.Fatalf("BFRJ (%d) far above ST (%d) with a decent pool", bf2.PageRequests, st2.PageRequests)
	}
}

func TestBFRJEmptyAndValidation(t *testing.T) {
	u := geom.NewRect(0, 0, 100, 100)
	e := buildEnv(t, u, genUniform(96, 50, u, 10), nil)
	got, _ := collect(t, func(o Options) (Result, error) { return BFRJ(bg, o, e.treeA, e.treeB) }, e.options())
	if len(got) != 0 {
		t.Fatal("empty side should produce nothing")
	}
	if _, err := BFRJ(bg, e.options(), nil, e.treeB); err == nil {
		t.Fatal("nil tree must error")
	}
}

func TestINLMatchesBruteForce(t *testing.T) {
	u := geom.NewRect(0, 0, 1000, 1000)
	e := buildEnv(t, u, genUniform(97, 2000, u, 20), genUniform(98, 300, u, 20))
	want := bruteForcePairs(e.recsA, e.recsB)
	got, res := collect(t, func(o Options) (Result, error) { return INL(bg, o, e.treeA, e.fileB) }, e.options())
	checkEqual(t, "INL", got, want)
	if res.PageRequests == 0 {
		t.Fatal("INL page requests not tracked")
	}
	if _, err := INL(bg, e.options(), nil, e.fileB); err == nil {
		t.Fatal("nil tree must error")
	}
}

func TestINLProbeCostGrowsWithOuter(t *testing.T) {
	u := geom.NewRect(0, 0, 1000, 1000)
	inner := genUniform(99, 8000, u, 10)
	smallOuter := genUniform(100, 50, u, 10)
	bigOuter := genUniform(101, 5000, u, 10)
	e := buildEnv(t, u, inner, smallOuter)
	eBig := buildEnv(t, u, inner, bigOuter)
	o := e.options()
	o.BufferPoolBytes = 64 << 10
	_, small := collect(t, func(o Options) (Result, error) { return INL(bg, o, e.treeA, e.fileB) }, o)
	o2 := eBig.options()
	o2.BufferPoolBytes = 64 << 10
	_, big := collect(t, func(o Options) (Result, error) { return INL(bg, o, eBig.treeA, eBig.fileB) }, o2)
	if big.LogicalRequests <= small.LogicalRequests*10 {
		t.Fatalf("INL probes should scale with the outer: %d vs %d",
			big.LogicalRequests, small.LogicalRequests)
	}
}

func TestSeededTreeJoinMatchesBruteForce(t *testing.T) {
	u := geom.NewRect(0, 0, 1000, 1000)
	e := buildEnvOpts(t, u, genUniform(102, 6000, u, 15), genUniform(103, 3000, u, 15),
		rtree.BuildOptions{Fanout: 32, FillFactor: 0.75, AreaSlack: 0.2, SortMemory: 1 << 20})
	want := bruteForcePairs(e.recsA, e.recsB)
	got, _ := collect(t, func(o Options) (Result, error) {
		return SeededTreeJoin(bg, o, e.treeA, e.fileB)
	}, e.options())
	checkEqual(t, "SeededST", got, want)
	if _, err := SeededTreeJoin(bg, e.options(), nil, e.fileB); err == nil {
		t.Fatal("nil tree must error")
	}
}

func TestSeededTreeJoinVsPQOneIndex(t *testing.T) {
	// The paper's point about the one-index case: PQ needs only a sort
	// of the non-indexed side, while the seeded-tree approach must
	// build a whole index first — more I/O for the same answer.
	u := geom.NewRect(0, 0, 1000, 1000)
	e := buildEnvOpts(t, u, genUniform(104, 20000, u, 10), genUniform(105, 15000, u, 10),
		rtree.DefaultBuildOptions())
	o := e.options()
	_, seeded := collect(t, func(o Options) (Result, error) {
		return SeededTreeJoin(bg, o, e.treeA, e.fileB)
	}, o)
	_, pq := collect(t, func(o Options) (Result, error) {
		return PQ(bg, o, Input{Tree: e.treeA}, FileInput(e.fileB))
	}, o)
	if pq.Pairs != seeded.Pairs {
		t.Fatalf("pair counts differ: %d vs %d", pq.Pairs, seeded.Pairs)
	}
	if seeded.IO.Writes() <= pq.IO.Writes() {
		t.Fatalf("seeded tree must write an index (writes %d vs PQ's %d)",
			seeded.IO.Writes(), pq.IO.Writes())
	}
}
