package core

import (
	"context"
	"fmt"

	"unijoin/internal/geom"
	"unijoin/internal/sweep"
)

// MultiwayResult reports a k-way intersection join.
type MultiwayResult struct {
	Tuples       int64    // result tuples (k-way intersections)
	Stages       []Result // one Result per pairwise stage
	Intermediate []int64  // intermediate cardinality after each stage
}

// MultiwayPQ computes the k-way intersection join of the given inputs
// (k >= 2): all tuples (r1, ..., rk), one record per input, whose
// rectangles have a common intersection. emit receives the IDs in
// input order.
//
// As described in Section 4 of the paper, the output of a two-way PQ
// join is fed into another join with the next input: a pair is emitted
// by the sweep exactly when the later of its two rectangles arrives,
// so the stream of pairwise intersections is itself sorted by lower y
// and can enter the next sweep directly, with no intermediate sort.
// The intermediate tuples are materialized (the paper pipelines them;
// the ID table needed to reconstruct tuples is the same size, so the
// memory asymptotics are unchanged and the I/O is identical: none).
//
// The context threads through every pipeline stage: each stage's sort,
// scan, and sweep polls it, so canceling the context aborts the whole
// multiway pipeline at the stage it is in.
func MultiwayPQ(ctx context.Context, opts Options, inputs []Input, emit func(ids []geom.ID)) (MultiwayResult, error) {
	ctx = orBG(ctx)
	var mres MultiwayResult
	o, err := opts.withDefaults()
	if err != nil {
		return mres, err
	}
	if len(inputs) < 2 {
		return mres, fmt.Errorf("core: multiway join needs at least 2 inputs, got %d", len(inputs))
	}

	// current holds the running intersection tuples: rectangle plus the
	// IDs contributing to it. It is y-sorted by construction.
	type tuple struct {
		rect geom.Rect
		ids  []geom.ID
	}
	var current []tuple

	// Stage 1: inputs[0] x inputs[1] through the standard PQ join.
	// Pair callbacks are not meaningful mid-pipeline, so the stages run
	// without them; tuples are collected through the record callback.
	stageOpts := o
	stageOpts.Emit = nil
	stageOpts.EmitBatch = nil
	res1, err := pqCollect(ctx, stageOpts, inputs[0], inputs[1], func(ra, rb geom.Record) {
		in, ok := ra.Rect.Intersection(rb.Rect)
		if !ok {
			return
		}
		current = append(current, tuple{rect: in, ids: []geom.ID{ra.ID, rb.ID}})
	})
	if err != nil {
		return mres, err
	}
	mres.Stages = append(mres.Stages, res1)
	mres.Intermediate = append(mres.Intermediate, int64(len(current)))

	// Later stages: intermediate tuples (already y-sorted) against the
	// next input.
	for stage := 2; stage < len(inputs); stage++ {
		if err := ctx.Err(); err != nil {
			return mres, wrapCanceled(err)
		}
		recs := make([]geom.Record, len(current))
		for i, tp := range current {
			recs[i] = geom.Record{Rect: tp.rect, ID: geom.ID(i)}
		}
		prev := current
		var next []tuple
		stageRes, err := runStage(ctx, stageOpts, recs, inputs[stage], func(ri geom.Record, rb geom.Record) {
			in, ok := ri.Rect.Intersection(rb.Rect)
			if !ok {
				return
			}
			base := prev[ri.ID].ids
			ids := make([]geom.ID, len(base)+1)
			copy(ids, base)
			ids[len(base)] = rb.ID
			next = append(next, tuple{rect: in, ids: ids})
		})
		if err != nil {
			return mres, err
		}
		mres.Stages = append(mres.Stages, stageRes)
		current = next
		mres.Intermediate = append(mres.Intermediate, int64(len(current)))
	}

	mres.Tuples = int64(len(current))
	if emit != nil {
		for _, tp := range current {
			emit(tp.ids)
		}
	}
	return mres, nil
}

// pqCollect is PQ with a record-pair callback instead of an ID-pair
// callback (the multiway stages need the rectangles).
func pqCollect(ctx context.Context, o Options, a, b Input, emit func(ra, rb geom.Record)) (Result, error) {
	return run(ctx, o, "PQ", func(o Options, res *Result) error {
		sideA, err := pqSource(ctx, o, a, b)
		if err != nil {
			return err
		}
		defer sideA.release()
		sideB, err := pqSource(ctx, o, b, a)
		if err != nil {
			return err
		}
		defer sideB.release()
		st, err := sweep.Join(ctx, sideA.src, sideB.src, o.newStructure(), o.newStructure(), emit)
		if err != nil {
			return err
		}
		res.Pairs = st.Pairs
		res.Sweep = st
		res.SweepMaxBytes = st.MaxBytes
		for _, side := range []pqSide{sideA, sideB} {
			if side.scanner != nil {
				res.ScannerMaxBytes += side.scanner.MaxBytes()
				res.PageRequests += side.scanner.PagesRead()
			}
		}
		return nil
	})
}

// runStage joins an in-memory y-sorted intermediate slice against one
// more input.
func runStage(ctx context.Context, o Options, intermediate []geom.Record, in Input, emit func(ri, rb geom.Record)) (Result, error) {
	return run(ctx, o, "PQ-stage", func(o Options, res *Result) error {
		side, err := pqSource(ctx, o, in, Input{})
		if err != nil {
			return err
		}
		defer side.release()
		st, err := sweep.Join(ctx, sweep.NewSliceSource(intermediate), side.src,
			o.newStructure(), o.newStructure(), emit)
		if err != nil {
			return err
		}
		res.Pairs = st.Pairs
		res.Sweep = st
		res.SweepMaxBytes = st.MaxBytes
		if side.scanner != nil {
			res.ScannerMaxBytes = side.scanner.MaxBytes()
			res.PageRequests = side.scanner.PagesRead()
		}
		return nil
	})
}
