package core

import (
	"context"
	"fmt"

	"unijoin/internal/geom"
	"unijoin/internal/histogram"
	"unijoin/internal/iosim"
	"unijoin/internal/rtree"
	"unijoin/internal/stream"
)

// Planner implements the cost model of Section 6.3: index-based access
// pays a random read per page, sort-based access pays the equivalent
// of 6 sequential passes (3 reads plus 2 writes at 1.5x), so using an
// index only wins when the join touches a small enough fraction of it.
// For the paper's Machine 1 disk the break-even fraction is about 60%
// of the leaf pages, the number quoted in the paper; faster disks with
// unchanged access times push the threshold much lower.
type Planner struct {
	Machine iosim.Machine
	// HistogramRes is the per-axis resolution of the spatial histograms
	// used for estimation (default histogram.DefaultResolution).
	HistogramRes int
	// UseMinSkew switches estimation from the plain grid to the
	// MinSkew histogram of Acharya, Poosala, and Ramaswamy [1] — the
	// estimator Section 6.3 actually cites. MinSkewBuckets bounds its
	// bucket budget (default 64).
	UseMinSkew     bool
	MinSkewBuckets int
}

// Threshold returns the break-even leaf fraction for the planner's
// machine: use an index only when the estimated fraction of pages
// touched is below it.
//
// Derivation (following §6.3): the sort-based path costs about
// 3 sequential reads + 2 sequential writes of the data, i.e.
// (3 + 2*1.5) = 6 sequential-read-equivalents per page; the index path
// costs one random read per touched page, i.e. rho = randRead/seqRead
// sequential-read-equivalents per page. Break-even: f * rho = 6.
func (p Planner) Threshold() float64 {
	ps := p.Machine.PageSize
	seq := float64(p.Machine.Disk.SeqReadTime(ps))
	rnd := float64(p.Machine.Disk.RandReadTime(ps))
	if rnd <= 0 {
		return 1
	}
	f := 6 * seq / rnd
	if f > 1 {
		f = 1
	}
	return f
}

// Decision is the outcome of planning one join.
type Decision struct {
	// UseIndexA/UseIndexB say whether each input's index should be
	// traversed (true) or the input sorted from its file (false).
	UseIndexA, UseIndexB bool
	// FracA/FracB are the estimated leaf fractions the join touches.
	FracA, FracB float64
	// Threshold is the machine's break-even fraction.
	Threshold float64
	// MBRA/MBRB are the bounding rectangles observed while building
	// the estimation histograms; their intersection bounds every
	// possible result pair and is used to window the executed join.
	MBRA, MBRB geom.Rect
}

// String implements fmt.Stringer.
func (d Decision) String() string {
	side := func(use bool, f float64) string {
		if use {
			return fmt.Sprintf("index (%.0f%% < %.0f%%)", f*100, d.Threshold*100)
		}
		return fmt.Sprintf("sort (%.0f%% >= %.0f%%)", f*100, d.Threshold*100)
	}
	return fmt.Sprintf("A: %s, B: %s", side(d.UseIndexA, d.FracA), side(d.UseIndexB, d.FracB))
}

// Plan decides, per input, whether to use its index. Inputs without an
// index always take the sort path; inputs without a file must take the
// index path. Estimation uses grid histograms built with one
// sequential scan over each input file.
func (p Planner) Plan(ctx context.Context, opts Options, a, b Input) (Decision, error) {
	ctx = orBG(ctx)
	o, err := opts.withDefaults()
	if err != nil {
		return Decision{}, err
	}
	d := Decision{Threshold: p.Threshold()}
	res := p.HistogramRes
	if res == 0 {
		res = histogram.DefaultResolution
	}

	// Build histograms from whichever representation is available
	// without touching the trees (files preferred: sequential scans).
	ga, mbrA, err := inputHistogram(ctx, o, a, res)
	if err != nil {
		return d, wrapCanceled(err)
	}
	gb, mbrB, err := inputHistogram(ctx, o, b, res)
	if err != nil {
		return d, wrapCanceled(err)
	}
	d.MBRA, d.MBRB = mbrA, mbrB
	if p.UseMinSkew {
		buckets := p.MinSkewBuckets
		if buckets == 0 {
			buckets = 64
		}
		msA, err := histogram.BuildMinSkew(ga, buckets)
		if err != nil {
			return d, err
		}
		msB, err := histogram.BuildMinSkew(gb, buckets)
		if err != nil {
			return d, err
		}
		d.FracA = msA.OverlapFraction(msB)
		d.FracB = msB.OverlapFraction(msA)
	} else {
		d.FracA, err = ga.OverlapFraction(gb)
		if err != nil {
			return d, err
		}
		d.FracB, err = gb.OverlapFraction(ga)
		if err != nil {
			return d, err
		}
	}
	if w := o.Window; w != nil {
		fa := ga.FractionInWindow(*w)
		fb := gb.FractionInWindow(*w)
		if fa < d.FracA {
			d.FracA = fa
		}
		if fb < d.FracB {
			d.FracB = fb
		}
	}

	d.UseIndexA = decideSide(a, d.FracA, d.Threshold)
	d.UseIndexB = decideSide(b, d.FracB, d.Threshold)
	return d, nil
}

func decideSide(in Input, frac, threshold float64) bool {
	if in.Tree == nil {
		return false
	}
	if in.File == nil {
		return true // no non-indexed representation available
	}
	return frac < threshold
}

// Join plans and executes: each side uses its index only when the
// decision says so, then the unified PQ join runs on the chosen
// representations (with scanner restriction enabled, so a selective
// index side skips irrelevant subtrees).
func (p Planner) Join(ctx context.Context, opts Options, a, b Input) (Decision, Result, error) {
	d, err := p.Plan(ctx, opts, a, b)
	if err != nil {
		return d, Result{}, err
	}
	ea, eb := a, b
	if !d.UseIndexA {
		ea = Input{File: a.File}
	}
	if !d.UseIndexB {
		eb = Input{File: b.File}
	}
	opts.RestrictScanners = true
	// Every result pair lies inside the intersection of the inputs'
	// bounding rectangles, so the join can be windowed to it; this is
	// what lets an index side skip irrelevant subtrees even when the
	// other side takes the sort path.
	if w, ok := d.MBRA.Intersection(d.MBRB); ok {
		if opts.Window != nil {
			if w2, ok2 := w.Intersection(*opts.Window); ok2 {
				opts.Window = &w2
			}
		} else {
			opts.Window = &w
		}
	}
	res, err := PQ(ctx, opts, ea, eb)
	return d, res, err
}

// inputHistogram builds a grid and the observed MBR for one input,
// scanning its file when present or walking the tree's leaves
// otherwise.
func inputHistogram(ctx context.Context, o Options, in Input, res int) (*histogram.Grid, geom.Rect, error) {
	if in.File != nil {
		g := histogram.New(o.Universe, res, res)
		mbr := geom.EmptyRect()
		r := stream.NewReader(in.File, stream.Records)
		for n := 0; ; n++ {
			if n&4095 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, mbr, err
				}
			}
			rec, ok, err := r.Next()
			if err != nil {
				return nil, mbr, err
			}
			if !ok {
				return g, mbr, nil
			}
			g.Add(rec.Rect)
			mbr = mbr.Union(rec.Rect)
		}
	}
	if in.Tree == nil {
		return nil, geom.Rect{}, fmt.Errorf("core: input has neither file nor tree")
	}
	g := histogram.New(o.Universe, res, res)
	sc := in.Tree.Scanner(storeReaderFor(o))
	for n := 0; ; n++ {
		if n&4095 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, geom.Rect{}, err
			}
		}
		r, ok, err := sc.Next()
		if err != nil {
			return nil, geom.Rect{}, err
		}
		if !ok {
			return g, in.Tree.MBR(), nil
		}
		g.Add(r.Rect)
	}
}

// storeReaderFor returns the direct (uncached) page reader for the
// options' store.
func storeReaderFor(o Options) rtree.StoreReader { return rtree.StoreReader{Store: o.Store} }
