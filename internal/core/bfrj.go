package core

import (
	"context"
	"slices"
	"time"

	"unijoin/internal/geom"
	"unijoin/internal/iosim"
	"unijoin/internal/rtree"
)

// BFRJ runs the breadth-first R-tree join of Huang, Jing, and
// Rundensteiner [16], which the paper cites as taking "approximately
// the same amount of CPU time as ST, while performing an almost
// optimal number of I/O operations (if a sufficiently large buffer
// pool is available)".
//
// Where ST recurses depth-first through node pairs, BFRJ processes the
// trees level by level: it keeps the current level's intermediate join
// index (the list of intersecting node pairs), orders the page
// accesses of the next level globally before performing them, and only
// then descends. The global ordering is the paper's ([16]) key
// optimization: sorting the pair list by page number makes each needed
// page's requests adjacent, so the buffer pool sees each page roughly
// once per level instead of ST's scattered revisits.
//
// The price is memory for the intermediate join index; its high-water
// mark is reported in Result.ScannerMaxBytes (it plays the same
// "algorithm working memory" role as PQ's priority queue).
func BFRJ(ctx context.Context, opts Options, ta, tb *rtree.Tree) (Result, error) {
	ctx = orBG(ctx)
	o, err := opts.withDefaults()
	if err != nil {
		return Result{}, err
	}
	if ta == nil || tb == nil {
		return Result{}, needsIndexErr("BFRJ")
	}
	return run(ctx, o, "BFRJ", func(o Options, res *Result) error {
		pool := iosim.NewBufferPoolBytes(o.Store, o.BufferPoolBytes)
		type pagePair struct{ a, b iosim.PageID }

		// Like ST, the level-by-level traversal is the whole algorithm;
		// the trace's partition time stays zero.
		sweepStart := time.Now()
		cur := []pagePair{}
		if ta.NumRecords() > 0 && tb.NumRecords() > 0 && ta.MBR().Intersects(tb.MBR()) {
			cur = append(cur, pagePair{ta.Root(), tb.Root()})
		}
		maxIJI := 0
		var na, nb rtree.Node
		scratch := make([][2][]rtree.Entry, ta.Height()+tb.Height()+1)
		var pairsBuf []entryPair

		for len(cur) > 0 {
			if bytes := len(cur) * 8; bytes > maxIJI {
				maxIJI = bytes
			}
			// Global ordering: ascending page pairs group repeated page
			// requests and keep reads moving forward on disk.
			slices.SortFunc(cur, func(x, y pagePair) int {
				switch {
				case x.a < y.a:
					return -1
				case x.a > y.a:
					return 1
				case x.b < y.b:
					return -1
				case x.b > y.b:
					return 1
				default:
					return 0
				}
			})
			var next []pagePair
			for _, pp := range cur {
				// Per-node-pair cancellation check, as in ST.
				if err := ctx.Err(); err != nil {
					return err
				}
				if err := ta.ReadNode(pool, pp.a, &na); err != nil {
					return err
				}
				if err := tb.ReadNode(pool, pp.b, &nb); err != nil {
					return err
				}
				// Window pruning, as in ST.
				if w := o.Window; w != nil && (!na.MBR().Intersects(*w) || !nb.MBR().Intersects(*w)) {
					continue
				}
				// Height mismatch: expand only the taller side; the new
				// pairs rejoin the frontier and converge.
				if na.Level != nb.Level {
					if na.Level < nb.Level {
						w := na.MBR()
						for _, eb := range nb.Entries {
							if eb.Rect.Intersects(w) {
								next = append(next, pagePair{pp.a, iosim.PageID(eb.Ref)})
							}
						}
					} else {
						w := nb.MBR()
						for _, ea := range na.Entries {
							if ea.Rect.Intersects(w) {
								next = append(next, pagePair{iosim.PageID(ea.Ref), pp.b})
							}
						}
					}
					continue
				}
				matches := matchNodeEntries(&na, &nb, &scratch[na.Level], &pairsBuf)
				if na.Leaf() {
					for _, p := range matches {
						if !pairInWindow(o.Window, p.a.Rect, p.b.Rect) {
							continue
						}
						o.emitPair(&res.Pairs, geom.Record{Rect: p.a.Rect, ID: p.a.Ref},
							geom.Record{Rect: p.b.Rect, ID: p.b.Ref})
					}
					continue
				}
				for _, p := range matches {
					next = append(next, pagePair{iosim.PageID(p.a.Ref), iosim.PageID(p.b.Ref)})
				}
			}
			cur = next
		}
		res.SweepWall = time.Since(sweepStart)
		res.PageRequests = pool.Misses()
		res.LogicalRequests = pool.Requests()
		res.ScannerMaxBytes = maxIJI
		return nil
	})
}

// pairInWindow applies the window semantics shared by every join
// path: both records of a qualifying pair must intersect the window.
func pairInWindow(w *geom.Rect, a, b geom.Rect) bool {
	return w == nil || (a.Intersects(*w) && b.Intersects(*w))
}

// matchNodeEntries is the shared node-pair matching used by ST and
// BFRJ: restrict both entry lists to the intersection window, sort by
// lower y, and forward-sweep. Buffers are supplied by the caller.
func matchNodeEntries(na, nb *rtree.Node, scratch *[2][]rtree.Entry, pairsBuf *[]entryPair) []entryPair {
	w, ok := na.MBR().Intersection(nb.MBR())
	if !ok {
		return nil
	}
	as := filterSorted(na.Entries, w, &scratch[0])
	bs := filterSorted(nb.Entries, w, &scratch[1])

	out := (*pairsBuf)[:0]
	i, jj := 0, 0
	for i < len(as) && jj < len(bs) {
		if as[i].Rect.YLo <= bs[jj].Rect.YLo {
			top := as[i].Rect.YHi
			for k := jj; k < len(bs) && bs[k].Rect.YLo <= top; k++ {
				if as[i].Rect.IntersectsX(bs[k].Rect) {
					out = append(out, entryPair{a: as[i], b: bs[k]})
				}
			}
			i++
		} else {
			top := bs[jj].Rect.YHi
			for k := i; k < len(as) && as[k].Rect.YLo <= top; k++ {
				if bs[jj].Rect.IntersectsX(as[k].Rect) {
					out = append(out, entryPair{a: as[k], b: bs[jj]})
				}
			}
			jj++
		}
	}
	*pairsBuf = out
	return out
}
