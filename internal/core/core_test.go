package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"unijoin/internal/datagen"
	"unijoin/internal/geom"
	"unijoin/internal/iosim"
	"unijoin/internal/rtree"
	"unijoin/internal/stream"
)

// bg is the context for tests that exercise no cancellation.
var bg = context.Background()

// env bundles a store with two relations in both representations.
type env struct {
	store    *iosim.Store
	universe geom.Rect
	recsA    []geom.Record
	recsB    []geom.Record
	fileA    *iosim.File
	fileB    *iosim.File
	treeA    *rtree.Tree
	treeB    *rtree.Tree
}

func buildEnv(t testing.TB, universe geom.Rect, recsA, recsB []geom.Record) *env {
	t.Helper()
	// Fanout 32 keeps test trees multi-level at small record counts.
	return buildEnvOpts(t, universe, recsA, recsB,
		rtree.BuildOptions{Fanout: 32, FillFactor: 0.75, AreaSlack: 0.2, SortMemory: 1 << 20})
}

// buildEnvOpts builds an environment with explicit tree options; I/O
// shape tests use the paper's fanout-400 page-packed trees.
func buildEnvOpts(t testing.TB, universe geom.Rect, recsA, recsB []geom.Record, opts rtree.BuildOptions) *env {
	t.Helper()
	store := iosim.NewStore(iosim.DefaultPageSize)
	fileA, err := stream.WriteAll(store, stream.Records, recsA)
	if err != nil {
		t.Fatal(err)
	}
	fileB, err := stream.WriteAll(store, stream.Records, recsB)
	if err != nil {
		t.Fatal(err)
	}
	treeA, err := rtree.Build(store, fileA, universe, opts)
	if err != nil {
		t.Fatal(err)
	}
	treeB, err := rtree.Build(store, fileB, universe, opts)
	if err != nil {
		t.Fatal(err)
	}
	return &env{store: store, universe: universe,
		recsA: recsA, recsB: recsB, fileA: fileA, fileB: fileB, treeA: treeA, treeB: treeB}
}

func (e *env) options() Options {
	return Options{Store: e.store, Universe: e.universe, MemoryBytes: 1 << 20, BufferPoolBytes: 1 << 20}
}

func bruteForcePairs(a, b []geom.Record) map[geom.Pair]bool {
	out := make(map[geom.Pair]bool)
	for _, ra := range a {
		for _, rb := range b {
			if ra.Rect.Intersects(rb.Rect) {
				out[geom.Pair{Left: ra.ID, Right: rb.ID}] = true
			}
		}
	}
	return out
}

// collect runs a join function with a duplicate-checking collector.
func collect(t testing.TB, run func(Options) (Result, error), opts Options) (map[geom.Pair]bool, Result) {
	t.Helper()
	got := make(map[geom.Pair]bool)
	opts.Emit = func(p geom.Pair) {
		if got[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		got[p] = true
	}
	res, err := run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs != int64(len(got)) {
		t.Fatalf("Pairs=%d but %d emitted", res.Pairs, len(got))
	}
	return got, res
}

func checkEqual(t testing.TB, name string, got, want map[geom.Pair]bool) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d pairs, want %d", name, len(got), len(want))
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("%s: missing pair %v", name, p)
		}
	}
}

// allAlgorithms runs SSSJ, PBSM, ST, PQ (all input combinations) and
// the partitioned SSSJ on one environment and checks them against
// brute force.
func allAlgorithms(t *testing.T, e *env) {
	want := bruteForcePairs(e.recsA, e.recsB)

	got, _ := collect(t, func(o Options) (Result, error) { return SSSJ(bg, o, e.fileA, e.fileB) }, e.options())
	checkEqual(t, "SSSJ", got, want)

	got, _ = collect(t, func(o Options) (Result, error) { return SSSJPartitioned(bg, o, e.fileA, e.fileB, 4) }, e.options())
	checkEqual(t, "SSSJ-part", got, want)

	got, _ = collect(t, func(o Options) (Result, error) { return PBSM(bg, o, e.fileA, e.fileB) }, e.options())
	checkEqual(t, "PBSM", got, want)

	got, _ = collect(t, func(o Options) (Result, error) { return ST(bg, o, e.treeA, e.treeB) }, e.options())
	checkEqual(t, "ST", got, want)

	got, _ = collect(t, func(o Options) (Result, error) {
		return PQ(bg, o, TreeInput(e.treeA), TreeInput(e.treeB))
	}, e.options())
	checkEqual(t, "PQ tree/tree", got, want)

	got, _ = collect(t, func(o Options) (Result, error) {
		return PQ(bg, o, TreeInput(e.treeA), FileInput(e.fileB))
	}, e.options())
	checkEqual(t, "PQ tree/file", got, want)

	got, _ = collect(t, func(o Options) (Result, error) {
		return PQ(bg, o, FileInput(e.fileA), TreeInput(e.treeB))
	}, e.options())
	checkEqual(t, "PQ file/tree", got, want)

	got, _ = collect(t, func(o Options) (Result, error) {
		return PQ(bg, o, FileInput(e.fileA), FileInput(e.fileB))
	}, e.options())
	checkEqual(t, "PQ file/file", got, want)
}

func genUniform(seed int64, n int, universe geom.Rect, maxExt float64) []geom.Record {
	return datagen.Uniform(seed, n, universe, maxExt)
}

func TestAllAlgorithmsAgreeUniform(t *testing.T) {
	u := geom.NewRect(0, 0, 1000, 1000)
	e := buildEnv(t, u, genUniform(1, 800, u, 40), genUniform(2, 600, u, 40))
	allAlgorithms(t, e)
}

func TestAllAlgorithmsAgreeClustered(t *testing.T) {
	u := geom.NewRect(0, 0, 2000, 1000)
	terr := datagen.NewTerrain(3, u, 12)
	roads := datagen.Roads(terr, 4, 1200, datagen.RoadParams{MeanLen: 0.02})
	hydro := datagen.Hydro(terr, 5, 400, datagen.HydroParams{MeanSize: 0.03})
	e := buildEnv(t, u, roads, hydro)
	allAlgorithms(t, e)
}

func TestAllAlgorithmsAgreeSkewed(t *testing.T) {
	// Everything piled into one corner: stresses PBSM tiles and the
	// striped sweep's clamping.
	u := geom.NewRect(0, 0, 1000, 1000)
	corner := geom.NewRect(0, 0, 100, 100)
	e := buildEnv(t, u, genUniform(6, 500, corner, 20), genUniform(7, 500, corner, 20))
	allAlgorithms(t, e)
}

func TestAllAlgorithmsAgreeDisjointInputs(t *testing.T) {
	u := geom.NewRect(0, 0, 1000, 1000)
	left := genUniform(8, 300, geom.NewRect(0, 0, 400, 1000), 20)
	right := genUniform(9, 300, geom.NewRect(600, 0, 1000, 1000), 20)
	e := buildEnv(t, u, left, right)
	want := bruteForcePairs(left, right)
	if len(want) != 0 {
		t.Fatal("test setup: inputs should be disjoint")
	}
	allAlgorithms(t, e)
}

func TestAllAlgorithmsAgreeEmptySide(t *testing.T) {
	u := geom.NewRect(0, 0, 100, 100)
	e := buildEnv(t, u, genUniform(10, 50, u, 10), nil)
	allAlgorithms(t, e)
}

func TestAlgorithmsPropertyQuick(t *testing.T) {
	u := geom.NewRect(0, 0, 500, 500)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		na, nb := 50+rng.Intn(250), 50+rng.Intn(250)
		recsA := genUniform(seed, na, u, 60)
		recsB := genUniform(seed+999, nb, u, 60)
		e := buildEnv(t, u, recsA, recsB)
		want := bruteForcePairs(recsA, recsB)

		check := func(run func(Options) (Result, error)) bool {
			got := make(map[geom.Pair]bool)
			o := e.options()
			dup := false
			o.Emit = func(p geom.Pair) {
				if got[p] {
					dup = true
				}
				got[p] = true
			}
			if _, err := run(o); err != nil {
				return false
			}
			if dup || len(got) != len(want) {
				return false
			}
			for p := range want {
				if !got[p] {
					return false
				}
			}
			return true
		}
		return check(func(o Options) (Result, error) { return SSSJ(bg, o, e.fileA, e.fileB) }) &&
			check(func(o Options) (Result, error) { return PBSM(bg, o, e.fileA, e.fileB) }) &&
			check(func(o Options) (Result, error) { return ST(bg, o, e.treeA, e.treeB) }) &&
			check(func(o Options) (Result, error) { return PQ(bg, o, TreeInput(e.treeA), FileInput(e.fileB)) })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := SSSJ(bg, Options{}, nil, nil); err == nil {
		t.Fatal("missing store must error")
	}
	store := iosim.NewStore(iosim.DefaultPageSize)
	bad := Options{Store: store, Universe: geom.EmptyRect()}
	if _, err := SSSJ(bg, bad, nil, nil); err == nil {
		t.Fatal("invalid universe must error")
	}
	if _, err := PQ(bg, Options{Store: store, Universe: geom.NewRect(0, 0, 1, 1)}, Input{}, Input{}); err == nil {
		t.Fatal("empty input must error")
	}
	if _, err := ST(bg, Options{Store: store, Universe: geom.NewRect(0, 0, 1, 1)}, nil, nil); err == nil {
		t.Fatal("nil trees must error")
	}
	u := geom.NewRect(0, 0, 100, 100)
	e := buildEnv(t, u, genUniform(11, 20, u, 5), genUniform(12, 20, u, 5))
	if _, err := SSSJPartitioned(bg, e.options(), e.fileA, e.fileB, 0); err == nil {
		t.Fatal("zero slabs must error")
	}
}

func TestSSSJIOShape(t *testing.T) {
	// §3.1: sort-based SSSJ is two sequential read passes, one
	// non-sequential read pass, two sequential write passes — and far
	// more sequential than random I/O overall.
	u := geom.NewRect(0, 0, 2000, 2000)
	e := buildEnv(t, u, genUniform(13, 20000, u, 10), genUniform(14, 15000, u, 10))
	o := e.options()
	o.MemoryBytes = 128 << 10 // force real external sorting
	_, res := collect(t, func(o Options) (Result, error) { return SSSJ(bg, o, e.fileA, e.fileB) }, o)
	if res.IO.SeqReads < 2*res.IO.RandReads {
		t.Fatalf("SSSJ should be mostly sequential: %v", res.IO)
	}
	dataPages := int64(e.fileA.Pages() + e.fileB.Pages())
	if res.IO.Reads() < 2*dataPages || res.IO.Reads() > 4*dataPages {
		t.Fatalf("SSSJ reads = %d for %d data pages", res.IO.Reads(), dataPages)
	}
	if len(res.SortStats) != 2 || res.SortStats[0].Runs < 2 {
		t.Fatalf("expected multi-run sorts: %+v", res.SortStats)
	}
}

func TestSSSJOverflowDetection(t *testing.T) {
	// A block of fully-overlapping rectangles keeps everything active:
	// with a tiny budget SSSJ must report ErrSweepOverflow.
	u := geom.NewRect(0, 0, 100, 100)
	var recs []geom.Record
	for i := 0; i < 3000; i++ {
		recs = append(recs, geom.Record{Rect: geom.NewRect(0, 0, 100, 100), ID: uint32(i)})
	}
	e := buildEnv(t, u, recs, recs)
	o := e.options()
	o.MemoryBytes = 32 << 10 // floor is 4 pages on an 8K store
	_, err := SSSJ(bg, o, e.fileA, e.fileB)
	if !errors.Is(err, ErrSweepOverflow) {
		t.Fatalf("expected ErrSweepOverflow, got %v", err)
	}
	// The partitioned fallback also cannot shrink all-overlapping data,
	// but on x-separable data it can; see TestSSSJPartitionedBounds.
}

func TestSSSJPartitionedBoundsMemory(t *testing.T) {
	// Wide flat rectangles spread along x: a single sweep holds many at
	// once, slabs hold 1/k as many.
	u := geom.NewRect(0, 0, 10000, 100)
	var a, b []geom.Record
	for i := 0; i < 4000; i++ {
		x := float32(i * 2)
		a = append(a, geom.Record{Rect: geom.NewRect(x, 0, x+30, 100), ID: uint32(i)})
		b = append(b, geom.Record{Rect: geom.NewRect(x+1, 0, x+31, 100), ID: uint32(100000 + i)})
	}
	e := buildEnv(t, u, a, b)
	_, plain := collect(t, func(o Options) (Result, error) { return SSSJ(bg, o, e.fileA, e.fileB) }, e.options())
	_, parted := collect(t, func(o Options) (Result, error) { return SSSJPartitioned(bg, o, e.fileA, e.fileB, 8) }, e.options())
	if parted.Sweep.MaxLen*2 > plain.Sweep.MaxLen {
		t.Fatalf("slabs should shrink the active set: %d vs %d", parted.Sweep.MaxLen, plain.Sweep.MaxLen)
	}
	if parted.Pairs != plain.Pairs {
		t.Fatalf("pair counts differ: %d vs %d", parted.Pairs, plain.Pairs)
	}
}

func TestPBSMStatsAndReplication(t *testing.T) {
	u := geom.NewRect(0, 0, 1000, 1000)
	e := buildEnv(t, u, genUniform(15, 5000, u, 30), genUniform(16, 5000, u, 30))
	o := e.options()
	o.MemoryBytes = 64 << 10 // force several partitions
	_, res := collect(t, func(o Options) (Result, error) { return PBSM(bg, o, e.fileA, e.fileB) }, o)
	if res.PBSM == nil {
		t.Fatal("missing PBSM stats")
	}
	if res.PBSM.Partitions < 2 {
		t.Fatalf("expected multiple partitions, got %d", res.PBSM.Partitions)
	}
	if res.PBSM.Replication < 1 {
		t.Fatalf("replication %f < 1", res.PBSM.Replication)
	}
	if res.PBSM.MaxPartitionBytes <= 0 {
		t.Fatal("max partition bytes not tracked")
	}
}

func TestPBSMFewTilesOverflows(t *testing.T) {
	// The paper's observation: with 32x32 tiles on clustered data,
	// partitions overflow memory; 128x128 fixes it. With heavy
	// clustering and few tiles, at least the stats must notice.
	u := geom.NewRect(0, 0, 1000, 1000)
	corner := geom.NewRect(0, 0, 60, 60) // extreme clustering
	e := buildEnv(t, u, genUniform(17, 8000, corner, 5), genUniform(18, 8000, corner, 5))
	o := e.options()
	o.MemoryBytes = 64 << 10
	o.PBSMTilesPerAxis = 4
	_, few := collect(t, func(o Options) (Result, error) { return PBSM(bg, o, e.fileA, e.fileB) }, o)
	if few.PBSM.OverflowedParts == 0 {
		t.Fatal("coarse tiles on clustered data should overflow")
	}
	if few.PBSM.SwapPages == 0 {
		t.Fatal("overflow must charge swap I/O")
	}
	o.PBSMTilesPerAxis = 128
	_, many := collect(t, func(o Options) (Result, error) { return PBSM(bg, o, e.fileA, e.fileB) }, o)
	if many.PBSM.MaxPartitionBytes >= few.PBSM.MaxPartitionBytes {
		t.Fatalf("finer tiles should shrink the largest partition: %d vs %d",
			many.PBSM.MaxPartitionBytes, few.PBSM.MaxPartitionBytes)
	}
}

func TestSTPageRequestsSmallTreesFitPool(t *testing.T) {
	// NJ/NY regime (Table 4): pool holds both trees, every page read
	// from disk at most once, so requests <= total nodes.
	u := geom.NewRect(0, 0, 1000, 1000)
	e := buildEnv(t, u, genUniform(19, 3000, u, 15), genUniform(20, 2000, u, 15))
	o := e.options()
	o.BufferPoolBytes = 8 << 20
	_, res := collect(t, func(o Options) (Result, error) { return ST(bg, o, e.treeA, e.treeB) }, o)
	total := int64(e.treeA.NumNodes() + e.treeB.NumNodes())
	if res.PageRequests > total {
		t.Fatalf("ST requests %d > %d nodes despite a big pool", res.PageRequests, total)
	}
	if res.LogicalRequests < res.PageRequests {
		t.Fatal("logical requests cannot be below disk requests")
	}
}

func TestSTPageRequestsSmallPoolRereads(t *testing.T) {
	// DISK1+ regime (Table 4): pool much smaller than the trees, pages
	// rerequested 1.1-1.7x on average.
	u := geom.NewRect(0, 0, 1000, 1000)
	e := buildEnv(t, u, genUniform(21, 12000, u, 12), genUniform(22, 9000, u, 12))
	o := e.options()
	o.BufferPoolBytes = 64 << 10 // 8 pages
	_, res := collect(t, func(o Options) (Result, error) { return ST(bg, o, e.treeA, e.treeB) }, o)
	total := int64(e.treeA.NumNodes() + e.treeB.NumNodes())
	if res.PageRequests <= total {
		t.Fatalf("tiny pool should cause rereads: %d requests for %d nodes", res.PageRequests, total)
	}
	avg := float64(res.PageRequests) / float64(total)
	if avg > 5 {
		t.Fatalf("reread factor %.2f implausibly high", avg)
	}
}

func TestSTDifferentHeights(t *testing.T) {
	u := geom.NewRect(0, 0, 1000, 1000)
	big := genUniform(23, 8000, u, 10)
	tiny := genUniform(24, 40, u, 50)
	e := buildEnv(t, u, big, tiny)
	if e.treeA.Height() == e.treeB.Height() {
		t.Skip("trees ended up the same height; adjust sizes")
	}
	want := bruteForcePairs(big, tiny)
	got, _ := collect(t, func(o Options) (Result, error) { return ST(bg, o, e.treeA, e.treeB) }, e.options())
	checkEqual(t, "ST heights", got, want)
	// And flipped.
	got, _ = collect(t, func(o Options) (Result, error) { return ST(bg, o, e.treeB, e.treeA) }, e.options())
	want2 := bruteForcePairs(tiny, big)
	checkEqual(t, "ST heights flipped", got, want2)
}

func TestPQTouchesEachTreePageOnce(t *testing.T) {
	// Table 4: PQ's page requests equal the tree sizes exactly.
	u := geom.NewRect(0, 0, 1000, 1000)
	e := buildEnv(t, u, genUniform(25, 6000, u, 12), genUniform(26, 5000, u, 12))
	_, res := collect(t, func(o Options) (Result, error) {
		return PQ(bg, o, TreeInput(e.treeA), TreeInput(e.treeB))
	}, e.options())
	want := int64(e.treeA.NumNodes() + e.treeB.NumNodes())
	if res.PageRequests != want {
		t.Fatalf("PQ requests = %d, want exactly %d", res.PageRequests, want)
	}
}

func TestPQMemoryTracked(t *testing.T) {
	u := geom.NewRect(0, 0, 1000, 1000)
	e := buildEnv(t, u, genUniform(27, 6000, u, 12), genUniform(28, 5000, u, 12))
	_, res := collect(t, func(o Options) (Result, error) {
		return PQ(bg, o, TreeInput(e.treeA), TreeInput(e.treeB))
	}, e.options())
	if res.ScannerMaxBytes == 0 || res.SweepMaxBytes == 0 {
		t.Fatalf("memory not tracked: scanner=%d sweep=%d", res.ScannerMaxBytes, res.SweepMaxBytes)
	}
	dataBytes := (len(e.recsA) + len(e.recsB)) * geom.RecordSize
	if res.ScannerMaxBytes > dataBytes/2 {
		t.Fatalf("scanner memory %d too large vs data %d", res.ScannerMaxBytes, dataBytes)
	}
}

func TestPQWindowRestriction(t *testing.T) {
	u := geom.NewRect(0, 0, 1000, 1000)
	e := buildEnv(t, u, genUniform(29, 6000, u, 10), genUniform(30, 4000, u, 10))
	window := geom.NewRect(0, 0, 250, 250)
	want := make(map[geom.Pair]bool)
	for _, ra := range e.recsA {
		if !ra.Rect.Intersects(window) {
			continue
		}
		for _, rb := range e.recsB {
			if rb.Rect.Intersects(window) && ra.Rect.Intersects(rb.Rect) {
				want[geom.Pair{Left: ra.ID, Right: rb.ID}] = true
			}
		}
	}
	o := e.options()
	o.Window = &window
	got, res := collect(t, func(o Options) (Result, error) {
		return PQ(bg, o, TreeInput(e.treeA), TreeInput(e.treeB))
	}, o)
	checkEqual(t, "PQ window", got, want)
	full := int64(e.treeA.NumNodes() + e.treeB.NumNodes())
	if res.PageRequests >= full {
		t.Fatalf("windowed PQ read %d of %d pages", res.PageRequests, full)
	}
}

func TestPQRestrictScannersDisjointTrees(t *testing.T) {
	u := geom.NewRect(0, 0, 1000, 1000)
	left := genUniform(31, 3000, geom.NewRect(0, 0, 400, 1000), 10)
	right := genUniform(32, 3000, geom.NewRect(600, 0, 1000, 1000), 10)
	e := buildEnv(t, u, left, right)
	o := e.options()
	o.RestrictScanners = true
	got, res := collect(t, func(o Options) (Result, error) {
		return PQ(bg, o, TreeInput(e.treeA), TreeInput(e.treeB))
	}, o)
	if len(got) != 0 {
		t.Fatal("disjoint trees should produce nothing")
	}
	full := int64(e.treeA.NumNodes() + e.treeB.NumNodes())
	if res.PageRequests > full/4 {
		t.Fatalf("restricted scan should skip most pages: %d of %d", res.PageRequests, full)
	}
}

func TestPQRandomIOVsSSSJSequential(t *testing.T) {
	// §6.3: PQ's tree traversal is random I/O, SSSJ's passes are
	// sequential — the observation behind the whole cost model.
	u := geom.NewRect(0, 0, 2000, 2000)
	e := buildEnvOpts(t, u, genUniform(33, 60000, u, 10), genUniform(34, 50000, u, 10),
		rtree.DefaultBuildOptions())
	o := e.options()
	o.MemoryBytes = 1 << 20
	_, pqRes := collect(t, func(o Options) (Result, error) {
		return PQ(bg, o, TreeInput(e.treeA), TreeInput(e.treeB))
	}, o)
	_, sjRes := collect(t, func(o Options) (Result, error) { return SSSJ(bg, o, e.fileA, e.fileB) }, o)
	if pqRes.IO.RandReads < pqRes.IO.SeqReads {
		t.Fatalf("PQ should be mostly random: %v", pqRes.IO)
	}
	if sjRes.IO.SeqReads < sjRes.IO.RandReads {
		t.Fatalf("SSSJ should be mostly sequential: %v", sjRes.IO)
	}
	// On a fast-disk machine, SSSJ's observed I/O time should win even
	// though it moves more pages (Figure 3).
	m := iosim.Machine3
	if sjRes.IO.Total() <= pqRes.IO.Total() {
		t.Fatalf("setup: SSSJ should move more pages (%d vs %d)", sjRes.IO.Total(), pqRes.IO.Total())
	}
	if sjRes.ObservedIOTime(m) >= pqRes.ObservedIOTime(m) {
		t.Fatalf("SSSJ observed IO %v should beat PQ %v on machine 3",
			sjRes.ObservedIOTime(m), pqRes.ObservedIOTime(m))
	}
}

func TestResultTimeAccessors(t *testing.T) {
	res := Result{IO: iosim.Counters{SeqReads: 100, RandReads: 10}, HostCPU: 1000000}
	m := iosim.Machine1
	if res.ObservedTotal(m) != res.CPUTime(m)+res.ObservedIOTime(m) {
		t.Fatal("ObservedTotal must decompose")
	}
	if res.EstimatedTotal(m) != res.CPUTime(m)+res.EstimatedIOTime(m) {
		t.Fatal("EstimatedTotal must decompose")
	}
	if res.EstimatedIOTime(m) <= res.ObservedIOTime(m) {
		t.Fatal("estimating everything as random must cost more than the mostly-sequential observed time")
	}
	if res.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestPBSMSortDedupMatchesReferenceTile(t *testing.T) {
	// Patel-DeWitt's original sort-based duplicate elimination must
	// produce exactly the reference-tile result, at the cost of an
	// extra external sort of the candidate pairs.
	u := geom.NewRect(0, 0, 1000, 1000)
	e := buildEnv(t, u, genUniform(110, 3000, u, 40), genUniform(111, 2500, u, 40))
	want := bruteForcePairs(e.recsA, e.recsB)
	o := e.options()
	o.PBSMSortDedup = true
	got, res := collect(t, func(o Options) (Result, error) { return PBSM(bg, o, e.fileA, e.fileB) }, o)
	checkEqual(t, "PBSM sort-dedup", got, want)

	o2 := e.options()
	_, ref := collect(t, func(o Options) (Result, error) { return PBSM(bg, o, e.fileA, e.fileB) }, o2)
	if res.Pairs != ref.Pairs {
		t.Fatalf("dedup modes disagree: %d vs %d", res.Pairs, ref.Pairs)
	}
	if res.IO.Writes() <= ref.IO.Writes() {
		t.Fatalf("sort dedup should cost extra writes: %d vs %d", res.IO.Writes(), ref.IO.Writes())
	}
}
