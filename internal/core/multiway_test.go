package core

import (
	"fmt"
	"testing"

	"unijoin/internal/geom"
	"unijoin/internal/iosim"
	"unijoin/internal/rtree"
	"unijoin/internal/stream"
)

// bruteTriples computes the reference 3-way intersection result.
func bruteTriples(a, b, c []geom.Record) map[[3]geom.ID]bool {
	out := make(map[[3]geom.ID]bool)
	for _, ra := range a {
		for _, rb := range b {
			in, ok := ra.Rect.Intersection(rb.Rect)
			if !ok {
				continue
			}
			for _, rc := range c {
				if in.Intersects(rc.Rect) {
					out[[3]geom.ID{ra.ID, rb.ID, rc.ID}] = true
				}
			}
		}
	}
	return out
}

func buildThird(t *testing.T, e *env, recs []geom.Record) (*iosim.File, *rtree.Tree) {
	t.Helper()
	f, err := stream.WriteAll(e.store, stream.Records, recs)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := rtree.Build(e.store, f, e.universe,
		rtree.BuildOptions{Fanout: 32, FillFactor: 0.75, AreaSlack: 0.2, SortMemory: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return f, tr
}

func TestMultiwayThreeWayMatchesBruteForce(t *testing.T) {
	u := geom.NewRect(0, 0, 500, 500)
	recsA := genUniform(60, 400, u, 50)
	recsB := genUniform(61, 400, u, 50)
	recsC := genUniform(62, 400, u, 50)
	e := buildEnv(t, u, recsA, recsB)
	fileC, treeC := buildThird(t, e, recsC)
	want := bruteTriples(recsA, recsB, recsC)

	for name, inputs := range map[string][]Input{
		"trees": {TreeInput(e.treeA), TreeInput(e.treeB), TreeInput(treeC)},
		"mixed": {TreeInput(e.treeA), FileInput(e.fileB), FileInput(fileC)},
		"files": {FileInput(e.fileA), FileInput(e.fileB), FileInput(fileC)},
	} {
		t.Run(name, func(t *testing.T) {
			got := make(map[[3]geom.ID]bool)
			res, err := MultiwayPQ(bg, e.options(), inputs, func(ids []geom.ID) {
				if len(ids) != 3 {
					t.Fatalf("tuple arity %d", len(ids))
				}
				key := [3]geom.ID{ids[0], ids[1], ids[2]}
				if got[key] {
					t.Fatalf("duplicate tuple %v", key)
				}
				got[key] = true
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("got %d triples, want %d", len(got), len(want))
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("missing triple %v", k)
				}
			}
			if res.Tuples != int64(len(want)) {
				t.Fatalf("Tuples=%d want %d", res.Tuples, len(want))
			}
			if len(res.Stages) != 2 || len(res.Intermediate) != 2 {
				t.Fatalf("stage accounting: %d stages, %d intermediates", len(res.Stages), len(res.Intermediate))
			}
		})
	}
}

func TestMultiwayTwoWayReducesToPQ(t *testing.T) {
	u := geom.NewRect(0, 0, 500, 500)
	e := buildEnv(t, u, genUniform(63, 500, u, 40), genUniform(64, 500, u, 40))
	want := bruteForcePairs(e.recsA, e.recsB)
	var tuples int
	res, err := MultiwayPQ(bg, e.options(), []Input{TreeInput(e.treeA), TreeInput(e.treeB)}, func(ids []geom.ID) {
		if !want[geom.Pair{Left: ids[0], Right: ids[1]}] {
			t.Fatalf("unexpected pair %v", ids)
		}
		tuples++
	})
	if err != nil {
		t.Fatal(err)
	}
	if tuples != len(want) || res.Tuples != int64(len(want)) {
		t.Fatalf("tuples=%d want %d", tuples, len(want))
	}
}

func TestMultiwayFourWay(t *testing.T) {
	u := geom.NewRect(0, 0, 200, 200)
	recs := make([][]geom.Record, 4)
	for i := range recs {
		recs[i] = genUniform(int64(70+i), 120, u, 60)
	}
	e := buildEnv(t, u, recs[0], recs[1])
	fileC, _ := buildThird(t, e, recs[2])
	fileD, _ := buildThird(t, e, recs[3])

	// Brute force 4-way.
	want := make(map[[4]geom.ID]bool)
	for _, ra := range recs[0] {
		for _, rb := range recs[1] {
			in1, ok := ra.Rect.Intersection(rb.Rect)
			if !ok {
				continue
			}
			for _, rc := range recs[2] {
				in2, ok := in1.Intersection(rc.Rect)
				if !ok {
					continue
				}
				for _, rd := range recs[3] {
					if in2.Intersects(rd.Rect) {
						want[[4]geom.ID{ra.ID, rb.ID, rc.ID, rd.ID}] = true
					}
				}
			}
		}
	}

	got := make(map[[4]geom.ID]bool)
	res, err := MultiwayPQ(bg, e.options(),
		[]Input{FileInput(e.fileA), FileInput(e.fileB), FileInput(fileC), FileInput(fileD)},
		func(ids []geom.ID) { got[[4]geom.ID{ids[0], ids[1], ids[2], ids[3]}] = true })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d quadruples, want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("missing %v", k)
		}
	}
	if len(res.Stages) != 3 {
		t.Fatalf("stages = %d", len(res.Stages))
	}
}

func TestMultiwayValidation(t *testing.T) {
	u := geom.NewRect(0, 0, 100, 100)
	e := buildEnv(t, u, genUniform(80, 20, u, 10), genUniform(81, 20, u, 10))
	if _, err := MultiwayPQ(bg, e.options(), []Input{TreeInput(e.treeA)}, nil); err == nil {
		t.Fatal("fewer than 2 inputs must error")
	}
	if _, err := MultiwayPQ(bg, Options{}, []Input{TreeInput(e.treeA), TreeInput(e.treeB)}, nil); err == nil {
		t.Fatal("missing store must error")
	}
	// nil emit is allowed: counting only.
	res, err := MultiwayPQ(bg, e.options(), []Input{TreeInput(e.treeA), TreeInput(e.treeB)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForcePairs(e.recsA, e.recsB)
	if res.Tuples != int64(len(want)) {
		t.Fatalf("tuples=%d want %d", res.Tuples, len(want))
	}
}

func TestMultiwayIntermediateOrderIsSorted(t *testing.T) {
	// The property Section 4 relies on: pairwise output arrives sorted
	// by the intersection's lower y, so it can feed the next sweep
	// directly. Verify via the emitted sequence of a 2-way stage.
	u := geom.NewRect(0, 0, 500, 500)
	e := buildEnv(t, u, genUniform(82, 800, u, 40), genUniform(83, 800, u, 40))
	o := e.options()
	prev := float64(-1e30)
	violations := 0
	_, err := pqCollect(bg, o, TreeInput(e.treeA), TreeInput(e.treeB), func(ra, rb geom.Record) {
		in, ok := ra.Rect.Intersection(rb.Rect)
		if !ok {
			t.Fatal("emitted pair without intersection")
		}
		if float64(in.YLo) < prev {
			violations++
		}
		prev = float64(in.YLo)
	})
	if err != nil {
		t.Fatal(err)
	}
	if violations != 0 {
		t.Fatalf("%d order violations in pairwise output", violations)
	}
}

func ExampleMultiwayPQ() {
	store := iosim.NewStore(iosim.DefaultPageSize)
	u := geom.NewRect(0, 0, 10, 10)
	mk := func(rects ...geom.Rect) *iosim.File {
		recs := make([]geom.Record, len(rects))
		for i, r := range rects {
			recs[i] = geom.Record{Rect: r, ID: geom.ID(i)}
		}
		f, _ := stream.WriteAll(store, stream.Records, recs)
		return f
	}
	a := mk(geom.NewRect(0, 0, 4, 4))
	b := mk(geom.NewRect(2, 2, 6, 6))
	c := mk(geom.NewRect(3, 3, 8, 8), geom.NewRect(9, 9, 10, 10))
	res, _ := MultiwayPQ(bg, Options{Store: store, Universe: u},
		[]Input{FileInput(a), FileInput(b), FileInput(c)},
		func(ids []geom.ID) { fmt.Println(ids) })
	fmt.Println("tuples:", res.Tuples)
	// Output:
	// [0 0 0]
	// tuples: 1
}
