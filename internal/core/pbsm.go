package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"unijoin/internal/geom"
	"unijoin/internal/iosim"
	"unijoin/internal/stream"
)

// PBSMStats reports what the partitioning phase did.
type PBSMStats struct {
	Partitions        int     // number of spatial partitions
	TilesPerAxis      int     // tile grid resolution
	MaxPartitionBytes int64   // largest partition (both inputs)
	Replication       float64 // records written / records read (>= 1)
	OverflowedParts   int     // partitions that exceeded the memory budget
	SwapPages         int64   // pages charged for overflowed partitions
}

// PBSM runs the Partition-based Spatial Merge join of Patel and DeWitt
// [30] on two non-indexed inputs.
//
// Partitioning: the universe is cut into TilesPerAxis^2 tiles, and the
// tiles are assigned to p partitions round-robin in row-major order
// (the paper's scheme for defusing clustered data). Each record is
// written to every partition owning a tile it overlaps (once per
// partition). Joining: each partition's records from both inputs are
// read into memory, sorted by lower y, and swept with the
// Forward-Sweep structure, as in the original.
//
// Duplicate elimination: a candidate pair may meet in several
// partitions; it is reported only in the partition owning the tile
// that contains the bottom-left corner of the pair's intersection,
// making output exactly-once without the post-hoc sort of the
// original implementation (see DESIGN.md).
//
// Partitions that exceed the memory budget are charged swap traffic
// (one write and one read per overflowing page), modelling the page
// faults the paper observed with 32x32 tiles before moving to 128x128.
func PBSM(ctx context.Context, opts Options, a, b *iosim.File) (Result, error) {
	ctx = orBG(ctx)
	o, err := opts.withDefaults()
	if err != nil {
		return Result{}, err
	}
	return run(ctx, o, "PBSM", func(o Options, res *Result) error {
		t := o.PBSMTilesPerAxis
		if t < 1 {
			return fmt.Errorf("core: PBSM tiles per axis %d < 1", t)
		}
		// Partition count: both inputs' share of a partition must fit
		// in memory, with headroom for sort bookkeeping.
		p := o.PBSMPartitions
		if p == 0 {
			totalBytes := a.Size() + b.Size()
			budget := int64(o.MemoryBytes) * 3 / 4
			p = int((totalBytes + budget - 1) / budget)
			if p < 1 {
				p = 1
			}
		}
		if p > t*t {
			p = t * t
		}
		stats := &PBSMStats{Partitions: p, TilesPerAxis: t}
		res.PBSM = stats

		uw := float64(o.Universe.Width())
		uh := float64(o.Universe.Height())
		if uw <= 0 || uh <= 0 {
			return fmt.Errorf("core: degenerate universe %v", o.Universe)
		}
		tileX := func(x geom.Coord) int { return clampInt(int(float64(x-o.Universe.XLo)/uw*float64(t)), 0, t-1) }
		tileY := func(y geom.Coord) int { return clampInt(int(float64(y-o.Universe.YLo)/uh*float64(t)), 0, t-1) }
		partOf := func(tx, ty int) int { return (ty*t + tx) % p }

		var read, written int64
		distribute := func(in *iosim.File) ([]*iosim.File, error) {
			files := make([]*iosim.File, p)
			writers := make([]*stream.Writer[geom.Record], p)
			for i := range files {
				files[i] = iosim.NewFile(o.Store)
				writers[i] = stream.NewWriter(files[i], stream.Records)
			}
			seen := make([]int, p) // record-stamped dedup of partition targets
			stamp := 0
			rd := stream.NewReader(in, stream.Records)
			for {
				if stamp&4095 == 0 {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
				}
				rec, ok, err := rd.Next()
				if err != nil {
					return nil, err
				}
				if !ok {
					break
				}
				// Window filtering happens at partitioning time: a
				// qualifying pair needs both records to intersect the
				// window, so dropping non-window records per side is
				// exact and saves the partition I/O.
				if o.Window != nil && !rec.Rect.Intersects(*o.Window) {
					continue
				}
				read++
				stamp++
				x0, x1 := tileX(rec.Rect.XLo), tileX(rec.Rect.XHi)
				y0, y1 := tileY(rec.Rect.YLo), tileY(rec.Rect.YHi)
				for ty := y0; ty <= y1; ty++ {
					for tx := x0; tx <= x1; tx++ {
						pi := partOf(tx, ty)
						if seen[pi] == stamp {
							continue
						}
						seen[pi] = stamp
						if err := writers[pi].Write(rec); err != nil {
							return nil, err
						}
						written++
					}
				}
			}
			for _, w := range writers {
				if err := w.Flush(); err != nil {
					return nil, err
				}
			}
			return files, nil
		}

		distStart := time.Now()
		partsA, err := distribute(a)
		if err != nil {
			return err
		}
		partsB, err := distribute(b)
		if err != nil {
			return err
		}
		res.PartitionWall = time.Since(distStart)
		if read > 0 {
			stats.Replication = float64(written) / float64(read)
		}

		// With sort-based dedup, candidate pairs are collected into a
		// stream (with duplicates) and resolved after the partition
		// loop, as in the original PBSM.
		var dupFile *iosim.File
		var dupWriter *stream.Writer[geom.Pair]
		if o.PBSMSortDedup {
			dupFile = iosim.NewFile(o.Store)
			dupWriter = stream.NewWriter(dupFile, stream.Pairs)
		}

		// Join each partition in memory.
		for pi := 0; pi < p; pi++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			recsA, err := stream.ReadAll(partsA[pi], stream.Records)
			if err != nil {
				return err
			}
			recsB, err := stream.ReadAll(partsB[pi], stream.Records)
			if err != nil {
				return err
			}
			partBytes := partsA[pi].Size() + partsB[pi].Size()
			if partBytes > stats.MaxPartitionBytes {
				stats.MaxPartitionBytes = partBytes
			}
			if partBytes > int64(o.MemoryBytes) {
				stats.OverflowedParts++
				if err := chargeSwap(o.Store, partBytes-int64(o.MemoryBytes), &stats.SwapPages); err != nil {
					return err
				}
			}
			sort.Slice(recsA, func(i, j int) bool { return geom.ByLowerY(recsA[i], recsA[j]) < 0 })
			sort.Slice(recsB, func(i, j int) bool { return geom.ByLowerY(recsB[i], recsB[j]) < 0 })
			cur := pi
			var sweepErr error
			err = forwardSweepRecords(ctx, recsA, recsB, func(ra, rb geom.Record) {
				if o.PBSMSortDedup {
					if err := dupWriter.Write(geom.Pair{Left: ra.ID, Right: rb.ID}); err != nil {
						sweepErr = err
					}
					return
				}
				in, ok := ra.Rect.Intersection(rb.Rect)
				if !ok {
					return
				}
				if partOf(tileX(in.XLo), tileY(in.YLo)) == cur {
					o.emitPair(&res.Pairs, ra, rb)
				}
			})
			if err != nil {
				return err
			}
			if sweepErr != nil {
				return sweepErr
			}
			partsA[pi].Release()
			partsB[pi].Release()
		}

		if o.PBSMSortDedup {
			if err := dupWriter.Flush(); err != nil {
				return err
			}
			sorted, _, err := stream.Sort(o.Store, dupFile, stream.Pairs, comparePairs, o.MemoryBytes)
			if err != nil {
				return err
			}
			dupFile.Release()
			rd := stream.NewReader(sorted, stream.Pairs)
			var prev geom.Pair
			first := true
			for n := 0; ; n++ {
				if n&4095 == 0 {
					if err := ctx.Err(); err != nil {
						return err
					}
				}
				pr, ok, err := rd.Next()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				if first || pr != prev {
					res.Pairs++
					if o.Emit != nil {
						o.Emit(pr)
					}
				}
				prev, first = pr, false
			}
			sorted.Release()
		}
		return nil
	})
}

// chargeSwap models paging an oversized partition: the overflow is
// written out and read back once through a scratch file, so the cost
// lands in the store counters like any other I/O.
func chargeSwap(store *iosim.Store, overflowBytes int64, swapPages *int64) error {
	scratch := iosim.NewFile(store)
	page := make([]byte, store.PageSize())
	pages := (overflowBytes + int64(store.PageSize()) - 1) / int64(store.PageSize())
	for i := int64(0); i < pages; i++ {
		if err := scratch.Append(page); err != nil {
			return err
		}
	}
	for i := int64(0); i < pages; i++ {
		if _, err := scratch.ReadAt(page, i*int64(store.PageSize())); err != nil {
			return err
		}
	}
	scratch.Release()
	*swapPages += 2 * pages
	return nil
}

// forwardSweepRecords is the classic in-memory Forward-Sweep over two
// y-sorted slices (Brinkhoff et al. [8]): repeatedly take the record
// with the lower bottom edge and scan forward in the other list while
// bottom edges stay under its top edge, testing x-overlap. The outer
// loop polls ctx so a canceled join stops mid-partition.
func forwardSweepRecords(ctx context.Context, as, bs []geom.Record, emit func(a, b geom.Record)) error {
	i, j := 0, 0
	for n := 0; i < len(as) && j < len(bs); n++ {
		if n&1023 == 0 && ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if as[i].Rect.YLo <= bs[j].Rect.YLo {
			top := as[i].Rect.YHi
			for k := j; k < len(bs) && bs[k].Rect.YLo <= top; k++ {
				if as[i].Rect.IntersectsX(bs[k].Rect) {
					emit(as[i], bs[k])
				}
			}
			i++
		} else {
			top := bs[j].Rect.YHi
			for k := i; k < len(as) && as[k].Rect.YLo <= top; k++ {
				if bs[j].Rect.IntersectsX(as[k].Rect) {
					emit(as[k], bs[j])
				}
			}
			j++
		}
	}
	return nil
}

// comparePairs orders pairs lexicographically for the sort-based
// duplicate elimination.
func comparePairs(a, b geom.Pair) int {
	switch {
	case a.Left < b.Left:
		return -1
	case a.Left > b.Left:
		return 1
	case a.Right < b.Right:
		return -1
	case a.Right > b.Right:
		return 1
	default:
		return 0
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
