package core

import (
	"context"
	"slices"
	"time"

	"unijoin/internal/geom"
	"unijoin/internal/iosim"
	"unijoin/internal/rtree"
)

// ST runs the synchronized R-tree traversal of Brinkhoff, Kriegel, and
// Seeger [8] on two indexed inputs: a depth-first traversal over pairs
// of nodes whose bounding rectangles intersect, recursing on
// intersecting child pairs and reporting intersections at the leaves.
//
// Per the original's optimizations (followed by the paper, Section
// 3.3): node pairs restrict their entry lists to the intersection of
// the two nodes' bounding rectangles before matching, and matching
// within a node pair uses the Forward-Sweep algorithm over the entries
// sorted by lower y. Nodes are read through a shared LRU buffer pool
// (22 MB in the paper); Table 4's "page requests" for ST are the pool
// misses, and nodes revisited by the depth-first traversal account for
// the 1.14-1.63x overshoot beyond the optimal once the trees outgrow
// the pool.
//
// Trees of different heights are handled by descending only the taller
// tree until levels match. With Options.Window set, node pairs that
// cannot contain window records are pruned and leaf matches are
// filtered to records intersecting the window on both sides.
func ST(ctx context.Context, opts Options, ta, tb *rtree.Tree) (Result, error) {
	ctx = orBG(ctx)
	o, err := opts.withDefaults()
	if err != nil {
		return Result{}, err
	}
	if ta == nil || tb == nil {
		return Result{}, needsIndexErr("ST")
	}
	return run(ctx, o, "ST", func(o Options, res *Result) error {
		pool := iosim.NewBufferPoolBytes(o.Store, o.BufferPoolBytes)
		height := ta.Height()
		if tb.Height() > height {
			height = tb.Height()
		}
		j := &stJoin{ctx: ctx, o: o, ta: ta, tb: tb, pool: pool, res: res,
			scratch: make([][2][]rtree.Entry, height+1)}
		// The traversal is the whole algorithm — ST has no preparation
		// phase, so the trace's partition time stays zero.
		sweepStart := time.Now()
		if ta.NumRecords() > 0 && tb.NumRecords() > 0 && ta.MBR().Intersects(tb.MBR()) {
			if err := j.joinNodes(ta.Root(), tb.Root()); err != nil {
				return err
			}
		}
		res.SweepWall = time.Since(sweepStart)
		res.PageRequests = pool.Misses()
		res.LogicalRequests = pool.Requests()
		return nil
	})
}

type stJoin struct {
	ctx  context.Context
	o    Options
	ta   *rtree.Tree
	tb   *rtree.Tree
	pool *iosim.BufferPool
	res  *Result
	// scratch holds per-level entry buffers for matchEntries: the
	// traversal is depth-first, so at most one node pair per level is
	// active and buffers can be reused without allocation.
	scratch [][2][]rtree.Entry
	pairs   []entryPair
}

// entryPair is a matched pair of entries from the two nodes.
type entryPair struct {
	a, b rtree.Entry
}

// joinNodes processes one pair of nodes (by page). The per-node-pair
// cancellation check bounds the work after a cancel to one pair of
// pages.
func (j *stJoin) joinNodes(pa, pb iosim.PageID) error {
	if err := j.ctx.Err(); err != nil {
		return err
	}
	var na, nb rtree.Node
	if err := j.ta.ReadNode(j.pool, pa, &na); err != nil {
		return err
	}
	if err := j.tb.ReadNode(j.pool, pb, &nb); err != nil {
		return err
	}
	// Window pruning: a node whose MBR misses the window cannot hold a
	// qualifying record.
	if w := j.o.Window; w != nil && (!na.MBR().Intersects(*w) || !nb.MBR().Intersects(*w)) {
		return nil
	}

	// Unequal levels: descend the taller side only.
	if na.Level < nb.Level {
		w := na.MBR()
		for _, eb := range nb.Entries {
			if eb.Rect.Intersects(w) {
				if err := j.joinNodes(pa, iosim.PageID(eb.Ref)); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if na.Level > nb.Level {
		w := nb.MBR()
		for _, ea := range na.Entries {
			if ea.Rect.Intersects(w) {
				if err := j.joinNodes(iosim.PageID(ea.Ref), pb); err != nil {
					return err
				}
			}
		}
		return nil
	}

	pairs := matchNodeEntries(&na, &nb, &j.scratch[na.Level], &j.pairs)
	if na.Leaf() {
		for _, p := range pairs {
			if !pairInWindow(j.o.Window, p.a.Rect, p.b.Rect) {
				continue
			}
			j.o.emitPair(&j.res.Pairs, geom.Record{Rect: p.a.Rect, ID: p.a.Ref},
				geom.Record{Rect: p.b.Rect, ID: p.b.Ref})
		}
		return nil
	}
	// The recursion below reuses the per-level scratch, so copy the
	// pair list before descending. Descent follows the sweep's output
	// order, as in the original algorithm; children of one parent are
	// contiguous on disk, so the drive's track prefetch still serves
	// most of these reads sequentially (Section 6.2).
	own := make([]entryPair, len(pairs))
	copy(own, pairs)
	for _, p := range own {
		if err := j.joinNodes(iosim.PageID(p.a.Ref), iosim.PageID(p.b.Ref)); err != nil {
			return err
		}
	}
	return nil
}

// filterSorted fills buf with the entries intersecting w, sorted by
// lower y, reusing buf's capacity across calls.
func filterSorted(entries []rtree.Entry, w geom.Rect, buf *[]rtree.Entry) []rtree.Entry {
	out := (*buf)[:0]
	for _, e := range entries {
		if e.Rect.Intersects(w) {
			out = append(out, e)
		}
	}
	slices.SortFunc(out, func(a, b rtree.Entry) int {
		switch {
		case a.Rect.YLo < b.Rect.YLo:
			return -1
		case a.Rect.YLo > b.Rect.YLo:
			return 1
		case a.Ref < b.Ref:
			return -1
		case a.Ref > b.Ref:
			return 1
		default:
			return 0
		}
	})
	*buf = out
	return out
}
