package core

import (
	"context"

	"unijoin/internal/geom"
	"unijoin/internal/iosim"
	"unijoin/internal/rtree"
	"unijoin/internal/stream"
)

// This file implements the two prior approaches to the one-index case
// ("Lo and Ravishankar discuss the case where only one of the
// relations has an index", Section 2 of the paper), as comparison
// points for the paper's unified answer (PQ, which simply sorts the
// non-indexed side):
//
//   - INL: indexed nested loop — scan the non-indexed relation and run
//     a window query against the index per record (the strategy Lo and
//     Ravishankar use inside partitions in their hash join [23]).
//   - SeededTreeJoin: build a seeded tree over the non-indexed
//     relation using the existing index as a seed [21], then run the
//     synchronized traversal.

// INL joins an indexed relation (left) with a non-indexed one (right)
// by probing the index with every record of the stream, through a
// buffer pool so that the clustered probes of spatially sorted data
// hit cached upper levels. Output pairs are (tree record, stream
// record) with the tree side as Left.
//
// INL's cost profile is the classic one: cheap for tiny outer
// relations, catastrophic as the outer grows (one index descent per
// record); the `oneindex` experiment shows the crossover against PQ
// and the seeded tree.
func INL(ctx context.Context, opts Options, tree *rtree.Tree, b *iosim.File) (Result, error) {
	ctx = orBG(ctx)
	o, err := opts.withDefaults()
	if err != nil {
		return Result{}, err
	}
	if tree == nil {
		return Result{}, needsIndexErr("INL")
	}
	return run(ctx, o, "INL", func(o Options, res *Result) error {
		pool := iosim.NewBufferPoolBytes(o.Store, o.BufferPoolBytes)
		rd := stream.NewReader(b, stream.Records)
		for n := 0; ; n++ {
			// One check per probe window: each probe is a full index
			// descent, so this keeps cancellation prompt without a
			// measurable cost.
			if n&255 == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			rec, ok, err := rd.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			probe := rec
			if err := tree.Query(pool, probe.Rect, func(hit geom.Record) {
				o.emitPair(&res.Pairs, hit, probe)
			}); err != nil {
				return err
			}
		}
		res.PageRequests = pool.Misses()
		res.LogicalRequests = pool.Requests()
		return nil
	})
}

// SeededTreeJoin implements Lo and Ravishankar's strategy [21] for the
// one-index case: construct an index for the non-indexed relation
// seeded from the existing index's root regions (rtree.SeededBuild),
// then run the synchronized traversal of [8] on the two trees. The
// seeded tree construction is charged to the result's I/O and CPU,
// since building it is the whole point of comparing against PQ, which
// needs only a sort.
func SeededTreeJoin(ctx context.Context, opts Options, tree *rtree.Tree, b *iosim.File) (Result, error) {
	ctx = orBG(ctx)
	o, err := opts.withDefaults()
	if err != nil {
		return Result{}, err
	}
	if tree == nil {
		return Result{}, needsIndexErr("seeded-tree join")
	}
	return run(ctx, o, "SeededST", func(o Options, res *Result) error {
		buildOpts := rtree.DefaultBuildOptions()
		buildOpts.SortMemory = o.MemoryBytes
		seeded, err := rtree.SeededBuild(o.Store, tree, b, buildOpts)
		if err != nil {
			return err
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		inner, err := ST(ctx, o, tree, seeded)
		if err != nil {
			return err
		}
		res.Pairs = inner.Pairs
		res.PageRequests = inner.PageRequests
		res.LogicalRequests = inner.LogicalRequests
		res.Sweep = inner.Sweep
		return nil
	})
}
