package rtree

import (
	"math/rand"

	"unijoin/internal/iosim"
)

// ShuffleLayout rewrites a tree onto freshly allocated pages in random
// order, preserving its logical structure exactly. Bulk loading lays
// siblings out contiguously, which Section 6.2 identifies as the source
// of ST's sequential-I/O advantage; a shuffled layout models an index
// degraded by incremental updates ("its performance may degrade if the
// R-tree is updated frequently after bulk loading"). The returned tree
// shares the store with the original; the original remains valid.
//
// The rewrite allocates NumNodes new pages and copies each node once,
// so it charges one read and one write per node to the store counters
// (callers snapshot around it as with bulk loading).
func ShuffleLayout(t *Tree, seed int64) (*Tree, error) {
	rng := rand.New(rand.NewSource(seed))

	// Collect all pages of the tree in BFS order.
	var pages []iosim.PageID
	var walk func(p iosim.PageID) error
	pr := StoreReader{Store: t.store}
	walk = func(p iosim.PageID) error {
		pages = append(pages, p)
		var n Node
		if err := t.ReadNode(pr, p, &n); err != nil {
			return err
		}
		if n.Leaf() {
			return nil
		}
		for _, e := range n.Entries {
			if err := walk(iosim.PageID(e.Ref)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return nil, err
	}

	// Allocate a contiguous block, then assign old pages to new slots
	// in random order.
	base := t.store.AllocN(len(pages))
	perm := rng.Perm(len(pages))
	remap := make(map[iosim.PageID]iosim.PageID, len(pages))
	for i, old := range pages {
		remap[old] = base + iosim.PageID(perm[i])
	}

	// Copy nodes with child pointers rewritten.
	var n Node
	for _, old := range pages {
		if err := t.ReadNode(pr, old, &n); err != nil {
			return nil, err
		}
		if !n.Leaf() {
			for i := range n.Entries {
				n.Entries[i].Ref = uint32(remap[iosim.PageID(n.Entries[i].Ref)])
			}
		}
		buf, err := t.store.WritablePage(remap[old])
		if err != nil {
			return nil, err
		}
		if err := encodeNode(buf, &n); err != nil {
			return nil, err
		}
	}

	clone := *t
	clone.root = remap[t.root]
	return &clone, nil
}
