// Package rtree implements the packed, bulk-loaded R-trees of the
// paper (Section 3.3): nodes occupy exactly one 8 KB disk page, trees
// are built bottom-up in Hilbert order [17] with the 75%-fill /
// 20%-area-slack packing heuristic of DeWitt et al. [10], and — the
// paper's key addition — data rectangles can be extracted in sorted
// lower-y order through a priority-queue-driven traversal
// (SortedScanner), which is the "index adapter" that lets an indexed
// relation feed the same plane sweep as a sorted file.
package rtree

import (
	"encoding/binary"
	"fmt"
	"math"

	"unijoin/internal/geom"
	"unijoin/internal/iosim"
)

// nodeHeaderSize is the per-page header: level byte, one reserved
// byte, a 2-byte entry count, and 4 reserved bytes.
const nodeHeaderSize = 8

// EntrySize is the on-page size of one node entry: a 16-byte rectangle
// plus a 4-byte reference (child page for internal nodes, object ID for
// leaves) — the same 20-byte shape as a data record.
const EntrySize = 20

// Entry is one slot of a node: a bounding rectangle and a reference.
// In an internal node Ref is the child's iosim.PageID; in a leaf it is
// the data object's ID.
type Entry struct {
	Rect geom.Rect
	Ref  uint32
}

// Node is the decoded form of one R-tree page. Level 0 is a leaf;
// level h-1 is the root of a tree of height h.
type Node struct {
	Level   uint8
	Entries []Entry
}

// Leaf reports whether the node is a leaf.
func (n *Node) Leaf() bool { return n.Level == 0 }

// MBR returns the bounding rectangle of all entries.
func (n *Node) MBR() geom.Rect {
	u := geom.EmptyRect()
	for _, e := range n.Entries {
		u = u.Union(e.Rect)
	}
	return u
}

// MaxFanout returns the largest number of entries a node can hold on a
// page of the given size.
func MaxFanout(pageSize int) int {
	return (pageSize - nodeHeaderSize) / EntrySize
}

// encodeNode serializes n into page, which must be a full page buffer.
func encodeNode(page []byte, n *Node) error {
	if len(n.Entries) > MaxFanout(len(page)) {
		return fmt.Errorf("rtree: %d entries exceed page capacity %d", len(n.Entries), MaxFanout(len(page)))
	}
	page[0] = n.Level
	page[1] = 0
	binary.LittleEndian.PutUint16(page[2:], uint16(len(n.Entries)))
	binary.LittleEndian.PutUint32(page[4:], 0)
	off := nodeHeaderSize
	for _, e := range n.Entries {
		binary.LittleEndian.PutUint32(page[off+0:], math.Float32bits(e.Rect.XLo))
		binary.LittleEndian.PutUint32(page[off+4:], math.Float32bits(e.Rect.YLo))
		binary.LittleEndian.PutUint32(page[off+8:], math.Float32bits(e.Rect.XHi))
		binary.LittleEndian.PutUint32(page[off+12:], math.Float32bits(e.Rect.YHi))
		binary.LittleEndian.PutUint32(page[off+16:], e.Ref)
		off += EntrySize
	}
	return nil
}

// decodeNodeInto deserializes a page into n, reusing n.Entries.
func decodeNodeInto(page []byte, n *Node) error {
	if len(page) < nodeHeaderSize {
		return fmt.Errorf("rtree: page of %d bytes too small", len(page))
	}
	count := int(binary.LittleEndian.Uint16(page[2:]))
	if nodeHeaderSize+count*EntrySize > len(page) {
		return fmt.Errorf("rtree: corrupt node: %d entries on %d-byte page", count, len(page))
	}
	n.Level = page[0]
	if cap(n.Entries) < count {
		n.Entries = make([]Entry, count)
	} else {
		n.Entries = n.Entries[:count]
	}
	off := nodeHeaderSize
	for i := 0; i < count; i++ {
		n.Entries[i] = Entry{
			Rect: geom.Rect{
				XLo: math.Float32frombits(binary.LittleEndian.Uint32(page[off+0:])),
				YLo: math.Float32frombits(binary.LittleEndian.Uint32(page[off+4:])),
				XHi: math.Float32frombits(binary.LittleEndian.Uint32(page[off+8:])),
				YHi: math.Float32frombits(binary.LittleEndian.Uint32(page[off+12:])),
			},
			Ref: binary.LittleEndian.Uint32(page[off+16:]),
		}
		off += EntrySize
	}
	return nil
}

// PageReader abstracts where node pages come from: directly from the
// simulated disk (StoreReader) or through an LRU buffer pool
// (*iosim.BufferPool), which is how the ST join runs.
type PageReader interface {
	Get(p iosim.PageID) ([]byte, error)
}

// StoreReader adapts an iosim.Store to the PageReader interface,
// bypassing any caching: every Get is a disk page read.
type StoreReader struct {
	Store *iosim.Store
}

// Get implements PageReader.
func (s StoreReader) Get(p iosim.PageID) ([]byte, error) { return s.Store.ReadPage(p) }

var _ PageReader = StoreReader{}
var _ PageReader = (*iosim.BufferPool)(nil)
