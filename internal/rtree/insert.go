package rtree

import (
	"fmt"
	"math"

	"unijoin/internal/geom"
	"unijoin/internal/iosim"
)

// This file adds incremental insertion to the packed R-trees —
// Guttman's original algorithm (ChooseLeaf by least enlargement,
// quadratic split, AdjustTree propagation) over the same one-node-
// per-page layout the bulk loader writes. Bulk loading stays the way
// a tree is born (Section 3.3); insertion is how it absorbs a live
// relation's appends without a full rebuild, which is exactly the
// indexed-but-degrading input the cost model of Section 6.3 must
// arbitrate. The packing discipline is deliberately not preserved:
// inserted nodes drift toward Guttman's ~70% occupancy until a
// compaction rebuilds the packed layout (internal/ingest).
//
// Two mutation modes share one implementation:
//
//   - Insert mutates the tree in place, rewriting the pages on the
//     root-to-leaf path. Use it when no reader holds the tree.
//   - WithInserted returns a new *Tree and leaves the receiver fully
//     intact: every page the insertion would modify is first copied
//     to a freshly allocated page (path copying), so readers pinned
//     to the old tree keep a consistent view. Pages allocated during
//     the batch itself — at or above a page-ID watermark taken at
//     entry — are private to the new tree and are edited in place,
//     bounding the copies to the distinct pages touched rather than
//     inserts × height. The superseded pages are not released: a
//     pinned reader may still be traversing them (the same
//     keep-until-process-exit policy Catalog.Drop applies).

// minFillFraction is Guttman's m: a split never leaves a node with
// fewer than this fraction of the fanout. 40% keeps both halves
// usable without forcing the near-half splits that inflate overlap.
const minFillFraction = 0.4

// Insert adds one data record to the tree in place, following
// Guttman: choose the leaf whose MBR needs least enlargement, split
// with the quadratic heuristic on overflow, and adjust ancestor MBRs
// (splitting them in turn as needed; a root split grows the tree by
// one level). The pages along the insertion path are rewritten where
// they stand, so the tree must not be shared with concurrent readers
// — use WithInserted for that.
func (t *Tree) Insert(rec geom.Record) error {
	return t.insertOne(rec, 0)
}

// WithInserted returns a new tree holding the receiver's records plus
// recs, without modifying the receiver: unchanged subtrees are shared
// page-for-page, changed paths are copied (see the file comment). The
// receiver remains valid for concurrent queries throughout and after
// the call; the returned tree is private to the caller until
// published. The two trees answer queries identically to an in-place
// Insert of the same records.
func (t *Tree) WithInserted(recs []geom.Record) (*Tree, error) {
	nt := *t
	watermark := t.store.NumPages()
	for _, rec := range recs {
		if err := nt.insertOne(rec, iosim.PageID(watermark)); err != nil {
			return nil, err
		}
	}
	return &nt, nil
}

// pathStep is one node on the root-to-leaf insertion path.
type pathStep struct {
	page     iosim.PageID
	node     Node
	childIdx int // entry followed to the next step (unused at the leaf)
}

// insertOne runs one Guttman insertion. Pages with ID < watermark are
// treated as shared and copied before modification; pages at or above
// it are rewritten in place. Watermark 0 therefore means "everything
// is mine" — the in-place mode.
func (t *Tree) insertOne(rec geom.Record, watermark iosim.PageID) error {
	if !rec.Rect.Valid() {
		return fmt.Errorf("rtree: insert of invalid rectangle %v", rec.Rect)
	}
	pr := StoreReader{Store: t.store}

	// ChooseLeaf: descend by least enlargement, remembering the path.
	path := make([]pathStep, 0, t.height)
	p := t.root
	for {
		step := pathStep{page: p}
		if err := t.ReadNode(pr, p, &step.node); err != nil {
			return err
		}
		if step.node.Leaf() {
			path = append(path, step)
			break
		}
		step.childIdx = chooseSubtree(step.node.Entries, rec.Rect)
		path = append(path, step)
		p = iosim.PageID(step.node.Entries[step.childIdx].Ref)
	}

	leaf := &path[len(path)-1].node
	leaf.Entries = append(leaf.Entries, Entry{Rect: rec.Rect, Ref: rec.ID})
	t.entries++
	t.mbr = t.mbr.Union(rec.Rect)

	// AdjustTree: walk back to the root, splitting overflowing nodes
	// and rewriting each touched node (copying shared pages first).
	// splitEntry carries a freshly split sibling up one level.
	var splitEntry *Entry
	for i := len(path) - 1; i >= 0; i-- {
		step := &path[i]
		n := &step.node
		if splitEntry != nil {
			n.Entries = append(n.Entries, *splitEntry)
			splitEntry = nil
		}
		var sibling *Node
		if len(n.Entries) > t.fanout {
			sibling = splitQuadratic(n, t.fanout)
		}
		page, err := t.writeNode(step.page, n, watermark)
		if err != nil {
			return err
		}
		step.page = page
		if sibling != nil {
			sibPage := t.store.Alloc()
			buf, err := t.store.WritablePage(sibPage)
			if err != nil {
				return err
			}
			if err := encodeNode(buf, sibling); err != nil {
				return err
			}
			t.numNodes++
			if sibling.Leaf() {
				t.leaves++
			}
			splitEntry = &Entry{Rect: sibling.MBR(), Ref: uint32(sibPage)}
		}
		if i > 0 {
			parent := &path[i-1]
			parent.node.Entries[parent.childIdx] = Entry{Rect: n.MBR(), Ref: uint32(step.page)}
		}
	}

	root := &path[0]
	if splitEntry != nil {
		// The root split: grow a new root over the two halves.
		newRoot := Node{Level: uint8(t.height), Entries: []Entry{
			{Rect: root.node.MBR(), Ref: uint32(root.page)},
			*splitEntry,
		}}
		page := t.store.Alloc()
		buf, err := t.store.WritablePage(page)
		if err != nil {
			return err
		}
		if err := encodeNode(buf, &newRoot); err != nil {
			return err
		}
		t.root = page
		t.height++
		t.numNodes++
		return nil
	}
	t.root = root.page
	return nil
}

// writeNode encodes n onto its page, first relocating it to a fresh
// page when the current one is below the copy-on-write watermark.
// It returns the page the node now lives on.
func (t *Tree) writeNode(page iosim.PageID, n *Node, watermark iosim.PageID) (iosim.PageID, error) {
	if page < watermark {
		page = t.store.Alloc()
	}
	buf, err := t.store.WritablePage(page)
	if err != nil {
		return iosim.InvalidPage, err
	}
	if err := encodeNode(buf, n); err != nil {
		return iosim.InvalidPage, err
	}
	return page, nil
}

// chooseSubtree picks the entry needing least area enlargement to
// cover r, breaking ties by smaller area (Guttman's ChooseLeaf
// criterion), then by index for determinism.
func chooseSubtree(entries []Entry, r geom.Rect) int {
	best := 0
	bestEnl := math.Inf(1)
	bestArea := math.Inf(1)
	for i, e := range entries {
		enl := e.Rect.EnlargementArea(r)
		area := e.Rect.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// splitQuadratic splits an overflowing node (fanout+1 entries) with
// Guttman's quadratic heuristic: seed the two groups with the pair
// wasting the most area if grouped together, then repeatedly assign
// the entry with the strongest preference to the group that would
// enlarge least, with a minimum-fill floor on both sides. The first
// group replaces n's entries; the second is returned as a new node of
// the same level.
func splitQuadratic(n *Node, fanout int) *Node {
	entries := n.Entries
	minFill := int(minFillFraction * float64(fanout))
	if minFill < 1 {
		minFill = 1
	}

	// PickSeeds: the pair with the largest dead area when paired.
	s1, s2 := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := entries[i].Rect.Union(entries[j].Rect).Area() -
				entries[i].Rect.Area() - entries[j].Rect.Area()
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}

	g1 := []Entry{entries[s1]}
	g2 := []Entry{entries[s2]}
	mbr1, mbr2 := entries[s1].Rect, entries[s2].Rect
	rest := make([]Entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != s1 && i != s2 {
			rest = append(rest, e)
		}
	}

	for len(rest) > 0 {
		// Min-fill floor: when one group plus everything left just
		// reaches the floor, it takes everything left.
		if len(g1)+len(rest) == minFill {
			g1 = append(g1, rest...)
			break
		}
		if len(g2)+len(rest) == minFill {
			g2 = append(g2, rest...)
			break
		}
		// PickNext: the entry with the greatest preference between
		// the groups, measured by enlargement difference.
		pick := 0
		bestDiff := math.Inf(-1)
		for i, e := range rest {
			d1 := mbr1.EnlargementArea(e.Rect)
			d2 := mbr2.EnlargementArea(e.Rect)
			if diff := math.Abs(d1 - d2); diff > bestDiff {
				bestDiff, pick = diff, i
			}
		}
		e := rest[pick]
		rest[pick] = rest[len(rest)-1]
		rest = rest[:len(rest)-1]
		d1 := mbr1.EnlargementArea(e.Rect)
		d2 := mbr2.EnlargementArea(e.Rect)
		// Resolve ties by smaller area, then fewer entries (Guttman).
		toFirst := d1 < d2
		if d1 == d2 {
			a1, a2 := mbr1.Area(), mbr2.Area()
			toFirst = a1 < a2 || (a1 == a2 && len(g1) <= len(g2))
		}
		if toFirst {
			g1 = append(g1, e)
			mbr1 = mbr1.Union(e.Rect)
		} else {
			g2 = append(g2, e)
			mbr2 = mbr2.Union(e.Rect)
		}
	}

	n.Entries = g1
	return &Node{Level: n.Level, Entries: g2}
}
