package rtree

import (
	"container/heap"
	"fmt"

	"unijoin/internal/extpq"
	"unijoin/internal/geom"
	"unijoin/internal/iosim"
)

// ExternalScanner is the overflow-safe variant of SortedScanner that
// Section 4 sketches: "PQ can be modified to handle overflow
// gracefully by using an external priority queue [2, 9]". Node
// bounding rectangles stay in a small in-memory heap (they are ~1% of
// the data even in the paper's largest trees), while data rectangles
// go through an external priority queue that spills sorted runs to the
// simulated disk when the memory budget is exceeded.
//
// Output is identical to SortedScanner's; only the memory ceiling and
// the spill I/O differ. Use it when the interleaving of leaf lifetimes
// is adversarial enough that the leaf-streaming buffers would not fit
// (never the case for the paper's data sets, as Table 3 shows).
type ExternalScanner struct {
	tree *Tree
	pr   PageReader

	nodeQ nodeHeap
	dataQ *extpq.Queue

	pagesRead int64
	scratch   Node
}

// NewExternalScanner creates an external scanner over the whole tree
// with the given memory budget (bytes) for the data queue.
func (t *Tree) NewExternalScanner(pr PageReader, memBytes int) *ExternalScanner {
	s := &ExternalScanner{
		tree:  t,
		pr:    pr,
		dataQ: extpq.New(t.store, memBytes),
	}
	rootY := t.mbr.YLo
	if !t.mbr.Valid() {
		rootY = 0
	}
	s.nodeQ = nodeHeap{{y: rootY, page: t.root}}
	heap.Init(&s.nodeQ)
	return s
}

// Next implements sweep.Source: records come out in nondecreasing
// lower-y order.
func (s *ExternalScanner) Next() (geom.Record, bool, error) {
	for {
		if it, ok := s.dataQ.Peek(); ok {
			if len(s.nodeQ) == 0 || it.Key <= s.nodeQ[0].y {
				popped, ok, err := s.dataQ.Pop()
				if err != nil {
					return geom.Record{}, false, err
				}
				if !ok {
					return geom.Record{}, false, fmt.Errorf("rtree: external queue peek/pop mismatch")
				}
				return extpq.ItemRecord(popped), true, nil
			}
		}
		if len(s.nodeQ) == 0 {
			return geom.Record{}, false, nil
		}
		if err := s.openNode(heap.Pop(&s.nodeQ).(nodeItem).page); err != nil {
			return geom.Record{}, false, err
		}
	}
}

func (s *ExternalScanner) openNode(p iosim.PageID) error {
	if err := s.tree.ReadNode(s.pr, p, &s.scratch); err != nil {
		return err
	}
	s.pagesRead++
	n := &s.scratch
	if n.Leaf() {
		for _, e := range n.Entries {
			if err := s.dataQ.Push(extpq.RecordItem(geom.Record{Rect: e.Rect, ID: e.Ref})); err != nil {
				return err
			}
		}
		return nil
	}
	for _, e := range n.Entries {
		heap.Push(&s.nodeQ, nodeItem{y: e.Rect.YLo, page: iosim.PageID(e.Ref)})
	}
	return nil
}

// PagesRead returns the number of tree pages opened so far.
func (s *ExternalScanner) PagesRead() int64 { return s.pagesRead }

// Spills returns how many times the data queue overflowed to disk.
func (s *ExternalScanner) Spills() int { return s.dataQ.Spills() }
