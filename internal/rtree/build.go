package rtree

import (
	"encoding/binary"
	"fmt"

	"unijoin/internal/geom"
	"unijoin/internal/iosim"
	"unijoin/internal/stream"
)

// BuildOptions controls bulk loading. The zero value is replaced by
// the paper's configuration (fanout 400, 75% fill, 20% area slack).
type BuildOptions struct {
	// Fanout is the maximum entries per node. It is capped by what the
	// page can hold. The paper uses 400 on 8 KB pages.
	Fanout int
	// FillFactor is the fraction of Fanout each node is packed to
	// before the area-slack rule applies. The paper uses 0.75.
	FillFactor float64
	// AreaSlack is the fractional MBR-area growth allowed while topping
	// a node up beyond FillFactor*Fanout entries. The paper uses 0.20.
	AreaSlack float64
	// PackFull, when set, ignores FillFactor/AreaSlack and packs every
	// node to Fanout (the layout DeWitt et al. warn against; kept for
	// the packing-policy ablation).
	PackFull bool
	// SortMemory is the simulated memory budget for the external sort
	// of the Hilbert pass, in bytes. Defaults to 2 MB.
	SortMemory int
}

// DefaultBuildOptions returns the paper's configuration.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{Fanout: 400, FillFactor: 0.75, AreaSlack: 0.20, SortMemory: 2 << 20}
}

func (o BuildOptions) normalize(pageSize int) (BuildOptions, error) {
	if o.Fanout == 0 {
		o.Fanout = 400
	}
	if o.FillFactor == 0 {
		o.FillFactor = 0.75
	}
	if o.AreaSlack == 0 {
		o.AreaSlack = 0.20
	}
	if o.SortMemory == 0 {
		o.SortMemory = 2 << 20
	}
	if maxF := MaxFanout(pageSize); o.Fanout > maxF {
		o.Fanout = maxF
	}
	if o.Fanout < 2 {
		return o, fmt.Errorf("rtree: fanout %d too small for page size %d", o.Fanout, pageSize)
	}
	if o.FillFactor <= 0 || o.FillFactor > 1 {
		return o, fmt.Errorf("rtree: fill factor %g out of (0,1]", o.FillFactor)
	}
	if o.AreaSlack < 0 {
		return o, fmt.Errorf("rtree: negative area slack")
	}
	return o, nil
}

// Tree is a packed R-tree resident on a simulated disk. Trees are
// immutable after bulk loading, as in the paper (updates and their
// effect on layout are exactly what Section 6.3 sets aside).
type Tree struct {
	store    *iosim.Store
	root     iosim.PageID
	height   int // number of levels; 1 = root is a leaf
	numNodes int
	leaves   int
	entries  int64
	mbr      geom.Rect
	fanout   int
	universe geom.Rect
}

// Store returns the simulated disk holding the tree.
func (t *Tree) Store() *iosim.Store { return t.store }

// Root returns the root page.
func (t *Tree) Root() iosim.PageID { return t.root }

// Height returns the number of levels (1 when the root is a leaf).
func (t *Tree) Height() int { return t.height }

// NumNodes returns the total number of pages in the tree — the
// "lower bound" page count of Table 4.
func (t *Tree) NumNodes() int { return t.numNodes }

// NumLeaves returns the number of leaf pages.
func (t *Tree) NumLeaves() int { return t.leaves }

// NumRecords returns the number of data rectangles stored.
func (t *Tree) NumRecords() int64 { return t.entries }

// MBR returns the bounding rectangle of the whole tree.
func (t *Tree) MBR() geom.Rect { return t.mbr }

// Fanout returns the build-time maximum fanout.
func (t *Tree) Fanout() int { return t.fanout }

// SizeBytes returns the on-disk size of the tree (the "R-tree" rows of
// Table 2).
func (t *Tree) SizeBytes() int64 {
	return int64(t.numNodes) * int64(t.store.PageSize())
}

// PackingRatio returns the average node utilization relative to the
// maximum fanout; the paper reports about 0.90 for its trees.
func (t *Tree) PackingRatio() float64 {
	if t.numNodes == 0 {
		return 0
	}
	// Total entries across all levels: data entries plus one entry per
	// non-root node in its parent.
	total := t.entries + int64(t.numNodes-1)
	return float64(total) / float64(int64(t.numNodes)*int64(t.fanout))
}

// Build bulk-loads an R-tree from a stream of data records using the
// Hilbert heuristic: records are externally sorted by the Hilbert
// value of their MBR center within the universe, then packed into
// leaves left to right, then each level is packed the same way until a
// single root remains. Pages for each level are allocated in
// construction order, so siblings are contiguous on the simulated disk
// — the layout Section 6.2 shows gives ST its sequential-I/O advantage.
//
// All sorting and node writes go through the simulated disk, so the
// store's counters after Build reflect the full bulk-loading cost the
// paper discusses (roughly an external sort plus one write per node).
func Build(store *iosim.Store, in *iosim.File, universe geom.Rect, opts BuildOptions) (*Tree, error) {
	opts, err := opts.normalize(store.PageSize())
	if err != nil {
		return nil, err
	}
	if err := stream.Validate(in, stream.Records); err != nil {
		return nil, err
	}

	// Pass 1: external sort by Hilbert value of the center. The key is
	// computed once per record and carried through the sort in a keyed
	// temporary stream (28-byte records), rather than recomputed
	// O(n log n) times inside the comparator.
	keyed := iosim.NewFile(store)
	kw := stream.NewWriter(keyed, keyedCodec)
	{
		rd := stream.NewReader(in, stream.Records)
		for {
			rec, ok, err := rd.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			if err := kw.Write(keyedRecord{Key: geom.HilbertValue(rec.Rect.Center(), universe), Rec: rec}); err != nil {
				return nil, err
			}
		}
		if err := kw.Flush(); err != nil {
			return nil, err
		}
	}
	sortedKeyed, _, err := stream.Sort(store, keyed, keyedCodec, keyedCmp, opts.SortMemory)
	if err != nil {
		return nil, err
	}
	keyed.Release()
	defer sortedKeyed.Release()

	t := &Tree{store: store, fanout: opts.Fanout, universe: universe, mbr: geom.EmptyRect()}

	// Pass 2: pack leaves from the sorted stream.
	rd := stream.NewReader(sortedKeyed, keyedCodec)
	next := func() (Entry, bool, error) {
		kr, ok, err := rd.Next()
		if err != nil || !ok {
			return Entry{}, false, err
		}
		rec := kr.Rec
		t.entries++
		t.mbr = t.mbr.Union(rec.Rect)
		return Entry{Rect: rec.Rect, Ref: rec.ID}, true, nil
	}
	level, err := t.packLevel(0, next, opts)
	if err != nil {
		return nil, err
	}
	t.leaves = len(level)

	if len(level) == 0 {
		// Empty input: materialize a single empty leaf as the root so
		// queries and scans work uniformly.
		page := store.Alloc()
		buf, err := store.WritablePage(page)
		if err != nil {
			return nil, err
		}
		if err := encodeNode(buf, &Node{Level: 0}); err != nil {
			return nil, err
		}
		t.root = page
		t.height = 1
		t.numNodes = 1
		t.leaves = 1
		return t, nil
	}

	// Pass 3+: pack parent levels until one node remains.
	h := 1
	for len(level) > 1 {
		pos := 0
		src := level
		nextUp := func() (Entry, bool, error) {
			if pos >= len(src) {
				return Entry{}, false, nil
			}
			e := src[pos]
			pos++
			return e, true, nil
		}
		level, err = t.packLevel(uint8(h), nextUp, opts)
		if err != nil {
			return nil, err
		}
		h++
	}
	t.root = iosim.PageID(level[0].Ref)
	t.height = h
	return t, nil
}

// packLevel consumes entries from next and writes nodes of the given
// level, returning one parent entry per node written.
func (t *Tree) packLevel(level uint8, next func() (Entry, bool, error), opts BuildOptions) ([]Entry, error) {
	var parents []Entry
	fill := int(float64(opts.Fanout) * opts.FillFactor)
	if fill < 1 {
		fill = 1
	}
	if opts.PackFull {
		fill = opts.Fanout
	}

	var node Node
	node.Level = level
	baseArea := -1.0 // node MBR area when the fill target was reached

	flush := func() error {
		if len(node.Entries) == 0 {
			return nil
		}
		page := t.store.Alloc()
		buf, err := t.store.WritablePage(page)
		if err != nil {
			return err
		}
		if err := encodeNode(buf, &node); err != nil {
			return err
		}
		parents = append(parents, Entry{Rect: node.MBR(), Ref: uint32(page)})
		t.numNodes++
		node.Entries = node.Entries[:0]
		baseArea = -1
		return nil
	}

	for {
		e, ok, err := next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if len(node.Entries) >= fill && !opts.PackFull {
			// Top-up rule (DeWitt et al. [10], as applied in §3.3):
			// beyond the fill target, accept an entry only while the
			// node's covered area has grown at most AreaSlack beyond
			// what it covered at the fill target, and the page has room.
			if baseArea < 0 {
				baseArea = node.MBR().Area()
			}
			grown := node.MBR().Union(e.Rect).Area()
			if len(node.Entries) >= opts.Fanout || grown > baseArea*(1+opts.AreaSlack) {
				if err := flush(); err != nil {
					return nil, err
				}
			}
		} else if len(node.Entries) >= opts.Fanout {
			if err := flush(); err != nil {
				return nil, err
			}
		}
		node.Entries = append(node.Entries, e)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return parents, nil
}

// BuildFromSlice is a convenience wrapper: it writes recs to a
// temporary stream on store and bulk-loads from it.
func BuildFromSlice(store *iosim.Store, recs []geom.Record, universe geom.Rect, opts BuildOptions) (*Tree, error) {
	f, err := stream.WriteAll(store, stream.Records, recs)
	if err != nil {
		return nil, err
	}
	return Build(store, f, universe, opts)
}

// keyedRecord decorates a record with its precomputed Hilbert key for
// the bulk-loading sort.
type keyedRecord struct {
	Key uint64
	Rec geom.Record
}

// keyedCodec serializes keyedRecords (8-byte key + 20-byte record).
var keyedCodec = stream.Codec[keyedRecord]{
	Size: 8 + geom.RecordSize,
	Encode: func(dst []byte, v keyedRecord) {
		binary.LittleEndian.PutUint64(dst[0:], v.Key)
		geom.EncodeRecord(dst[8:], v.Rec)
	},
	Decode: func(src []byte) keyedRecord {
		return keyedRecord{
			Key: binary.LittleEndian.Uint64(src[0:]),
			Rec: geom.DecodeRecord(src[8:]),
		}
	},
}

// keyedCmp orders by Hilbert key, breaking ties by ID for determinism.
func keyedCmp(a, b keyedRecord) int {
	switch {
	case a.Key < b.Key:
		return -1
	case a.Key > b.Key:
		return 1
	case a.Rec.ID < b.Rec.ID:
		return -1
	case a.Rec.ID > b.Rec.ID:
		return 1
	default:
		return 0
	}
}
