package rtree

import (
	"context"
	"fmt"

	"unijoin/internal/geom"
	"unijoin/internal/iosim"
)

// ReadNode decodes the node on page p through the given PageReader
// into n, reusing n's entry slice.
func (t *Tree) ReadNode(pr PageReader, p iosim.PageID, n *Node) error {
	buf, err := pr.Get(p)
	if err != nil {
		return err
	}
	return decodeNodeInto(buf, n)
}

// Query reports every data record whose MBR intersects window,
// descending only into subtrees whose bounding rectangle intersects it.
func (t *Tree) Query(pr PageReader, window geom.Rect, emit func(geom.Record)) error {
	return t.QueryCtx(context.Background(), pr, window, emit)
}

// QueryCtx is Query under a context: the traversal polls ctx at every
// node, so deep range scans over large trees abort promptly when the
// context is canceled (the error is the bare context error; callers
// wanting the ErrCanceled chain wrap it themselves).
func (t *Tree) QueryCtx(ctx context.Context, pr PageReader, window geom.Rect, emit func(geom.Record)) error {
	var stack []iosim.PageID
	if t.mbr.Valid() && !t.mbr.Intersects(window) {
		return nil
	}
	stack = append(stack, t.root)
	var n Node
	for len(stack) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if err := t.ReadNode(pr, p, &n); err != nil {
			return err
		}
		for _, e := range n.Entries {
			if !e.Rect.Intersects(window) {
				continue
			}
			if n.Leaf() {
				emit(geom.Record{Rect: e.Rect, ID: e.Ref})
			} else {
				stack = append(stack, iosim.PageID(e.Ref))
			}
		}
	}
	return nil
}

// CountLeavesIntersecting returns how many leaf pages have a bounding
// rectangle intersecting window. The planner uses the true count in
// tests to validate the histogram estimate.
func (t *Tree) CountLeavesIntersecting(pr PageReader, window geom.Rect) (int, error) {
	count := 0
	var walk func(p iosim.PageID) error
	walk = func(p iosim.PageID) error {
		var n Node
		if err := t.ReadNode(pr, p, &n); err != nil {
			return err
		}
		if n.Leaf() {
			// Only reachable when the root itself is a leaf.
			if m := n.MBR(); m.Valid() && m.Intersects(window) {
				count++
			}
			return nil
		}
		for _, e := range n.Entries {
			if !e.Rect.Intersects(window) {
				continue
			}
			if n.Level == 1 {
				count++ // children are leaves; no need to read them
				continue
			}
			if err := walk(iosim.PageID(e.Ref)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return 0, err
	}
	return count, nil
}

// LevelCounts returns the number of nodes at each level, root last.
func (t *Tree) LevelCounts(pr PageReader) ([]int, error) {
	counts := make([]int, t.height)
	var walk func(p iosim.PageID) error
	walk = func(p iosim.PageID) error {
		var nd Node
		if err := t.ReadNode(pr, p, &nd); err != nil {
			return err
		}
		if int(nd.Level) >= len(counts) {
			return fmt.Errorf("rtree: node level %d exceeds height %d", nd.Level, t.height)
		}
		counts[nd.Level]++
		if nd.Leaf() {
			return nil
		}
		for _, e := range nd.Entries {
			if err := walk(iosim.PageID(e.Ref)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return nil, err
	}
	return counts, nil
}

// Validate traverses the whole tree checking structural invariants:
// every node's parent entry rectangle equals the node's MBR, levels
// decrease by one along every edge, entry counts respect the fanout,
// and the number of data records matches NumRecords. It returns the
// first violation found.
func (t *Tree) Validate(pr PageReader) error {
	var records int64
	var nodes int
	var leaves int

	var walk func(p iosim.PageID, wantLevel int, wantMBR *geom.Rect) error
	walk = func(p iosim.PageID, wantLevel int, wantMBR *geom.Rect) error {
		var n Node
		if err := t.ReadNode(pr, p, &n); err != nil {
			return err
		}
		nodes++
		if int(n.Level) != wantLevel {
			return fmt.Errorf("rtree: page %d has level %d, want %d", p, n.Level, wantLevel)
		}
		if len(n.Entries) > t.fanout {
			return fmt.Errorf("rtree: page %d has %d entries, fanout %d", p, len(n.Entries), t.fanout)
		}
		if wantMBR != nil {
			if got := n.MBR(); got != *wantMBR {
				return fmt.Errorf("rtree: page %d MBR %v, parent says %v", p, got, *wantMBR)
			}
		}
		if n.Leaf() {
			leaves++
			records += int64(len(n.Entries))
			return nil
		}
		if len(n.Entries) == 0 {
			return fmt.Errorf("rtree: empty internal node %d", p)
		}
		for _, e := range n.Entries {
			r := e.Rect
			if err := walk(iosim.PageID(e.Ref), wantLevel-1, &r); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, t.height-1, nil); err != nil {
		return err
	}
	if records != t.entries {
		return fmt.Errorf("rtree: %d records reachable, tree claims %d", records, t.entries)
	}
	if nodes != t.numNodes {
		return fmt.Errorf("rtree: %d nodes reachable, tree claims %d", nodes, t.numNodes)
	}
	if leaves != t.leaves {
		return fmt.Errorf("rtree: %d leaves reachable, tree claims %d", leaves, t.leaves)
	}
	return nil
}

// String implements fmt.Stringer.
func (t *Tree) String() string {
	return fmt.Sprintf("rtree(height %d, %d nodes, %d leaves, %d records, %.0f%% packed)",
		t.height, t.numNodes, t.leaves, t.entries, 100*t.PackingRatio())
}
