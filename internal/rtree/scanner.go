package rtree

import (
	"container/heap"
	"fmt"

	"unijoin/internal/geom"
	"unijoin/internal/iosim"
)

// SortedScanner extracts the data rectangles of an R-tree in
// nondecreasing lower-y order — the index adapter at the heart of the
// PQ join (Section 4, Figure 1 of the paper).
//
// A priority queue of node bounding rectangles, keyed by lower y,
// initially holds the root. Extracting a node reads its page: an
// internal node's children are pushed back into the queue; a leaf's
// rectangles are sorted by lower y and streamed out. Because a node's
// bounding rectangle has a lower y no greater than anything in its
// subtree, the merged output is globally sorted. Every tree page is
// read at most once, which is the "optimal" page-request count of
// Table 4.
//
// Following the paper's optimization, leaf rectangles do not all enter
// the priority queue: each loaded leaf keeps its sorted rectangles in a
// buffer and contributes only its head to a second queue, cutting the
// queue size by a factor of the leaf fanout while the buffers hold the
// same data the initial sort needed anyway.
//
// A scanner may be restricted to a window: subtrees and rectangles
// that do not intersect it are skipped, the "slightly more complicated
// version" Section 4 alludes to for sparse or localized joins
// (Section 6.3). The unrestricted scanner uses the whole universe.
type SortedScanner struct {
	tree   *Tree
	pr     PageReader
	window geom.Rect
	useWin bool
	// noLeafStream disables the leaf-streaming optimization: every
	// leaf rectangle enters the data queue individually, as in the
	// naive version of Figure 1. Kept for the ablation benchmark.
	noLeafStream bool

	nodeQ nodeHeap
	dataQ dataHeap
	runs  []leafRun

	pagesRead int64
	maxBytes  int
	runBytes  int // resident bytes of all live leaf buffers
	scratch   Node
	started   bool
	lastY     geom.Coord
}

// leafRun is one loaded leaf's rectangles, sorted by lower y; pos is
// the next rectangle to surface into the data queue.
type leafRun struct {
	recs []geom.Record
	pos  int
	size int // original record count, for footprint accounting
}

// nodeItem is a priority-queue element for a tree node: the paper's
// (y, page ID) tuple.
type nodeItem struct {
	y    geom.Coord
	page iosim.PageID
}

// nodeItemBytes is the in-queue footprint of a nodeItem (Table 3
// accounting): 4-byte y plus 4-byte page ID.
const nodeItemBytes = 8

// dataItem is a priority-queue element for the head of one leaf run.
type dataItem struct {
	rec geom.Record
	run int
}

// dataItemBytes is the in-queue footprint of a dataItem: a 20-byte
// record plus a run index.
const dataItemBytes = 24

type nodeHeap []nodeItem

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].y != h[j].y {
		return h[i].y < h[j].y
	}
	return h[i].page < h[j].page
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

type dataHeap []dataItem

func (h dataHeap) Len() int { return len(h) }
func (h dataHeap) Less(i, j int) bool {
	if h[i].rec.Rect.YLo != h[j].rec.Rect.YLo {
		return h[i].rec.Rect.YLo < h[j].rec.Rect.YLo
	}
	return h[i].rec.ID < h[j].rec.ID
}
func (h dataHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *dataHeap) Push(x any)   { *h = append(*h, x.(dataItem)) }
func (h *dataHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// Scanner returns an unrestricted SortedScanner over the whole tree.
func (t *Tree) Scanner(pr PageReader) *SortedScanner {
	return t.newScanner(pr, geom.Rect{}, false)
}

// NaiveScanner returns a scanner with the leaf-streaming optimization
// of Section 4 disabled: all rectangles of a loaded leaf are pushed
// into the priority queue individually. Output is identical; only the
// queue size (and hence time per operation) differs. It exists for the
// ablation quantifying that optimization.
func (t *Tree) NaiveScanner(pr PageReader) *SortedScanner {
	s := t.newScanner(pr, geom.Rect{}, false)
	s.noLeafStream = true
	return s
}

// WindowScanner returns a SortedScanner restricted to window: only
// subtrees whose bounding rectangles intersect it are visited, and only
// records intersecting it are returned.
func (t *Tree) WindowScanner(pr PageReader, window geom.Rect) *SortedScanner {
	return t.newScanner(pr, window, true)
}

func (t *Tree) newScanner(pr PageReader, window geom.Rect, useWin bool) *SortedScanner {
	s := &SortedScanner{tree: t, pr: pr, window: window, useWin: useWin}
	if !useWin || !t.mbr.Valid() || t.mbr.Intersects(window) {
		rootY := t.mbr.YLo
		if !t.mbr.Valid() {
			rootY = 0
		}
		s.nodeQ = nodeHeap{{y: rootY, page: t.root}}
	}
	heap.Init(&s.nodeQ)
	s.note()
	return s
}

// Next implements sweep.Source: it returns the next data rectangle in
// lower-y order, with ok=false at the end of the extraction.
func (s *SortedScanner) Next() (geom.Record, bool, error) {
	for {
		// Serve from the data queue while its head cannot be preceded
		// by anything still inside an unopened node.
		if len(s.dataQ) > 0 && (len(s.nodeQ) == 0 || s.dataQ[0].rec.Rect.YLo <= s.nodeQ[0].y) {
			it := s.dataQ[0]
			if it.run < 0 {
				heap.Pop(&s.dataQ) // naive mode: no run to refill from
			} else if run := &s.runs[it.run]; run.pos < len(run.recs) {
				s.dataQ[0].rec = run.recs[run.pos]
				run.pos++
				heap.Fix(&s.dataQ, 0)
			} else {
				run.recs = nil // allow reclaim of drained buffers
				s.runBytes -= run.size * geom.RecordSize
				heap.Pop(&s.dataQ)
			}
			s.note()
			if s.started && it.rec.Rect.YLo < s.lastY {
				return geom.Record{}, false, fmt.Errorf("rtree: scanner order violation")
			}
			s.started, s.lastY = true, it.rec.Rect.YLo
			return it.rec, true, nil
		}
		if len(s.nodeQ) == 0 {
			return geom.Record{}, false, nil
		}
		if err := s.openNode(heap.Pop(&s.nodeQ).(nodeItem).page); err != nil {
			return geom.Record{}, false, err
		}
	}
}

// openNode reads one page and feeds its contents into the queues.
func (s *SortedScanner) openNode(p iosim.PageID) error {
	if err := s.tree.ReadNode(s.pr, p, &s.scratch); err != nil {
		return err
	}
	s.pagesRead++
	n := &s.scratch
	if n.Leaf() {
		if s.noLeafStream {
			for _, e := range n.Entries {
				if s.useWin && !e.Rect.Intersects(s.window) {
					continue
				}
				heap.Push(&s.dataQ, dataItem{rec: geom.Record{Rect: e.Rect, ID: e.Ref}, run: -1})
			}
			s.note()
			return nil
		}
		run := leafRun{recs: make([]geom.Record, 0, len(n.Entries))}
		for _, e := range n.Entries {
			if s.useWin && !e.Rect.Intersects(s.window) {
				continue
			}
			run.recs = append(run.recs, geom.Record{Rect: e.Rect, ID: e.Ref})
		}
		if len(run.recs) == 0 {
			return nil
		}
		sortRecordsByY(run.recs)
		run.pos = 1
		run.size = len(run.recs)
		s.runBytes += run.size * geom.RecordSize
		s.runs = append(s.runs, run)
		heap.Push(&s.dataQ, dataItem{rec: run.recs[0], run: len(s.runs) - 1})
		s.note()
		return nil
	}
	for _, e := range n.Entries {
		if s.useWin && !e.Rect.Intersects(s.window) {
			continue
		}
		heap.Push(&s.nodeQ, nodeItem{y: e.Rect.YLo, page: iosim.PageID(e.Ref)})
	}
	s.note()
	return nil
}

// note tracks the peak memory footprint of the scanner: both queues
// plus the buffers of leaves that are loaded but not yet drained — the
// "Priority Queue" rows of Table 3. A leaf buffer counts in full while
// live, matching the paper's observation that the whole leaf must be
// in memory for its initial sort.
func (s *SortedScanner) note() {
	bytes := len(s.nodeQ)*nodeItemBytes + len(s.dataQ)*dataItemBytes + s.runBytes
	if bytes > s.maxBytes {
		s.maxBytes = bytes
	}
}

// PagesRead returns the number of tree pages opened so far; after a
// full drain of an unrestricted scanner this equals Tree.NumNodes().
func (s *SortedScanner) PagesRead() int64 { return s.pagesRead }

// MaxBytes returns the peak memory footprint of the scanner's priority
// queues and leaf buffers.
func (s *SortedScanner) MaxBytes() int { return s.maxBytes }

// sortRecordsByY sorts records by (lower y, ID) with a simple
// insertion-friendly pattern: leaves hold at most a few hundred
// records, and inputs arrive in Hilbert order which is locally
// correlated with y, so standard library sort is fine.
func sortRecordsByY(recs []geom.Record) {
	// sort.Slice would allocate a closure per call; a tuned shell sort
	// keeps the scanner allocation-light on the hot path.
	gaps := [...]int{57, 23, 10, 4, 1}
	for _, gap := range gaps {
		for i := gap; i < len(recs); i++ {
			v := recs[i]
			j := i
			for j >= gap && geom.ByLowerY(recs[j-gap], v) > 0 {
				recs[j] = recs[j-gap]
				j -= gap
			}
			recs[j] = v
		}
	}
}
