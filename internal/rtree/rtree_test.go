package rtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"unijoin/internal/geom"
	"unijoin/internal/iosim"
	"unijoin/internal/stream"
)

func newStore() *iosim.Store { return iosim.NewStore(iosim.DefaultPageSize) }

func genRecords(rng *rand.Rand, n int, span, maxExt float64) []geom.Record {
	recs := make([]geom.Record, n)
	for i := range recs {
		x := rng.Float64() * span
		y := rng.Float64() * span
		recs[i] = geom.Record{
			Rect: geom.NewRect(float32(x), float32(y),
				float32(x+rng.Float64()*maxExt), float32(y+rng.Float64()*maxExt)),
			ID: uint32(i),
		}
	}
	return recs
}

// smallOpts keeps trees multi-level at test scale.
func smallOpts() BuildOptions {
	return BuildOptions{Fanout: 16, FillFactor: 0.75, AreaSlack: 0.20, SortMemory: 1 << 20}
}

func buildTree(t *testing.T, recs []geom.Record, universe geom.Rect, opts BuildOptions) (*Tree, *iosim.Store) {
	t.Helper()
	store := newStore()
	tree, err := BuildFromSlice(store, recs, universe, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tree, store
}

func TestNodeCodecRoundTrip(t *testing.T) {
	page := make([]byte, iosim.DefaultPageSize)
	n := &Node{Level: 3}
	for i := 0; i < 100; i++ {
		n.Entries = append(n.Entries, Entry{
			Rect: geom.NewRect(float32(i), float32(i*2), float32(i+5), float32(i*2+7)),
			Ref:  uint32(1000 + i),
		})
	}
	if err := encodeNode(page, n); err != nil {
		t.Fatal(err)
	}
	var got Node
	if err := decodeNodeInto(page, &got); err != nil {
		t.Fatal(err)
	}
	if got.Level != 3 || len(got.Entries) != 100 {
		t.Fatalf("level=%d entries=%d", got.Level, len(got.Entries))
	}
	for i := range n.Entries {
		if got.Entries[i] != n.Entries[i] {
			t.Fatalf("entry %d mismatch", i)
		}
	}
}

func TestNodeCodecRejectsOverflow(t *testing.T) {
	page := make([]byte, 256)
	n := &Node{}
	for i := 0; i < MaxFanout(256)+1; i++ {
		n.Entries = append(n.Entries, Entry{})
	}
	if err := encodeNode(page, n); err == nil {
		t.Fatal("overflow must be rejected")
	}
}

func TestNodeCodecRejectsCorrupt(t *testing.T) {
	var n Node
	if err := decodeNodeInto(make([]byte, 4), &n); err == nil {
		t.Fatal("short page must be rejected")
	}
	page := make([]byte, 256)
	page[2] = 0xFF // entry count way past capacity
	page[3] = 0xFF
	if err := decodeNodeInto(page, &n); err == nil {
		t.Fatal("corrupt count must be rejected")
	}
}

func TestMaxFanoutMatchesPaper(t *testing.T) {
	// An 8 KB page must hold at least the paper's fanout of 400.
	if got := MaxFanout(iosim.DefaultPageSize); got < 400 {
		t.Fatalf("MaxFanout(8192) = %d, want >= 400", got)
	}
}

func TestBuildSmallTreeInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	universe := geom.NewRect(0, 0, 1000, 1000)
	recs := genRecords(rng, 2000, 1000, 20)
	tree, store := buildTree(t, recs, universe, smallOpts())
	if err := tree.Validate(StoreReader{store}); err != nil {
		t.Fatal(err)
	}
	if tree.NumRecords() != 2000 {
		t.Fatalf("records = %d", tree.NumRecords())
	}
	if tree.Height() < 2 {
		t.Fatalf("height = %d, want multi-level", tree.Height())
	}
	if tree.NumLeaves() >= tree.NumNodes() {
		t.Fatal("node accounting broken")
	}
	if tree.SizeBytes() != int64(tree.NumNodes())*int64(store.PageSize()) {
		t.Fatal("size accounting broken")
	}
}

func TestBuildEmptyTree(t *testing.T) {
	tree, store := buildTree(t, nil, geom.NewRect(0, 0, 1, 1), smallOpts())
	if tree.Height() != 1 || tree.NumNodes() != 1 || tree.NumRecords() != 0 {
		t.Fatalf("empty tree: h=%d nodes=%d", tree.Height(), tree.NumNodes())
	}
	var found int
	if err := tree.Query(StoreReader{store}, geom.NewRect(0, 0, 1, 1), func(geom.Record) { found++ }); err != nil {
		t.Fatal(err)
	}
	if found != 0 {
		t.Fatal("query on empty tree returned records")
	}
	sc := tree.Scanner(StoreReader{store})
	if _, ok, err := sc.Next(); ok || err != nil {
		t.Fatalf("scan on empty tree: ok=%v err=%v", ok, err)
	}
}

func TestBuildSingleRecord(t *testing.T) {
	recs := []geom.Record{{Rect: geom.NewRect(1, 2, 3, 4), ID: 42}}
	tree, store := buildTree(t, recs, geom.NewRect(0, 0, 10, 10), smallOpts())
	if tree.Height() != 1 || tree.NumNodes() != 1 {
		t.Fatalf("h=%d nodes=%d", tree.Height(), tree.NumNodes())
	}
	if err := tree.Validate(StoreReader{store}); err != nil {
		t.Fatal(err)
	}
	var got []geom.Record
	sc := tree.Scanner(StoreReader{store})
	for {
		r, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, r)
	}
	if len(got) != 1 || got[0].ID != 42 {
		t.Fatalf("scan = %v", got)
	}
}

func TestQueryMatchesLinearScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		universe := geom.NewRect(0, 0, 500, 500)
		recs := genRecords(rng, 300+rng.Intn(700), 500, 40)
		store := newStore()
		tree, err := BuildFromSlice(store, recs, universe, smallOpts())
		if err != nil {
			return false
		}
		for trial := 0; trial < 5; trial++ {
			w := geom.NewRect(
				float32(rng.Float64()*400), float32(rng.Float64()*400),
				float32(rng.Float64()*500), float32(rng.Float64()*500))
			want := map[uint32]bool{}
			for _, r := range recs {
				if r.Rect.Intersects(w) {
					want[r.ID] = true
				}
			}
			got := map[uint32]bool{}
			if err := tree.Query(StoreReader{store}, w, func(r geom.Record) { got[r.ID] = true }); err != nil {
				return false
			}
			if len(got) != len(want) {
				return false
			}
			for id := range want {
				if !got[id] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestScannerYieldsSortedPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		universe := geom.NewRect(0, 0, 500, 500)
		recs := genRecords(rng, 200+rng.Intn(800), 500, 30)
		store := newStore()
		tree, err := BuildFromSlice(store, recs, universe, smallOpts())
		if err != nil {
			return false
		}
		sc := tree.Scanner(StoreReader{store})
		var got []geom.Record
		for {
			r, ok, err := sc.Next()
			if err != nil {
				return false
			}
			if !ok {
				break
			}
			got = append(got, r)
		}
		if len(got) != len(recs) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].Rect.YLo < got[i-1].Rect.YLo {
				return false
			}
		}
		seen := map[uint32]geom.Record{}
		for _, r := range recs {
			seen[r.ID] = r
		}
		for _, r := range got {
			orig, ok := seen[r.ID]
			if !ok || orig != r {
				return false
			}
			delete(seen, r.ID)
		}
		return len(seen) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestScannerTouchesEveryPageExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	universe := geom.NewRect(0, 0, 1000, 1000)
	recs := genRecords(rng, 5000, 1000, 15)
	tree, store := buildTree(t, recs, universe, smallOpts())
	store.ResetCounters()
	sc := tree.Scanner(StoreReader{store})
	for {
		_, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if sc.PagesRead() != int64(tree.NumNodes()) {
		t.Fatalf("pages read = %d, nodes = %d (Table 4 optimality)", sc.PagesRead(), tree.NumNodes())
	}
	if got := store.Counters().Reads(); got != int64(tree.NumNodes()) {
		t.Fatalf("store reads = %d, nodes = %d", got, tree.NumNodes())
	}
}

func TestScannerMemoryIsSmallFractionOfData(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	universe := geom.NewRect(0, 0, 1000, 1000)
	recs := genRecords(rng, 20000, 1000, 5)
	tree, store := buildTree(t, recs, universe, BuildOptions{Fanout: 64, FillFactor: 0.75, AreaSlack: 0.2, SortMemory: 1 << 20})
	sc := tree.Scanner(StoreReader{store})
	for {
		_, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	dataBytes := int(tree.NumRecords()) * geom.RecordSize
	if sc.MaxBytes() == 0 {
		t.Fatal("memory not tracked")
	}
	// Table 3: the priority queue is always below a few percent of the
	// data size for geographically distributed data.
	if sc.MaxBytes() > dataBytes/5 {
		t.Fatalf("scanner used %d bytes for %d bytes of data", sc.MaxBytes(), dataBytes)
	}
}

func TestWindowScannerFiltersAndSkipsPages(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	universe := geom.NewRect(0, 0, 1000, 1000)
	recs := genRecords(rng, 8000, 1000, 10)
	tree, store := buildTree(t, recs, universe, smallOpts())
	window := geom.NewRect(0, 0, 200, 200) // 4% of the universe

	var want []uint32
	for _, r := range recs {
		if r.Rect.Intersects(window) {
			want = append(want, r.ID)
		}
	}
	sc := tree.WindowScanner(StoreReader{store}, window)
	var got []uint32
	prevY := float32(-1e30)
	for {
		r, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if r.Rect.YLo < prevY {
			t.Fatal("window scan out of order")
		}
		prevY = r.Rect.YLo
		if !r.Rect.Intersects(window) {
			t.Fatal("record outside window")
		}
		got = append(got, r.ID)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
	// The point of the restriction: far fewer pages than the full tree.
	if sc.PagesRead() >= int64(tree.NumNodes())/2 {
		t.Fatalf("window scan read %d of %d pages", sc.PagesRead(), tree.NumNodes())
	}
}

func TestPackingRatioNearPaper(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	universe := geom.NewRect(0, 0, 1000, 1000)
	recs := genRecords(rng, 30000, 1000, 8)
	tree, _ := buildTree(t, recs, universe, DefaultBuildOptions())
	// Paper: "average packing ratio of around 90%"; accept a band.
	if r := tree.PackingRatio(); r < 0.70 || r > 1.0 {
		t.Fatalf("packing ratio = %.2f", r)
	}
}

func TestPackFullProducesFullerNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	universe := geom.NewRect(0, 0, 1000, 1000)
	recs := genRecords(rng, 20000, 1000, 8)
	opts := smallOpts()
	tree75, _ := buildTree(t, recs, universe, opts)
	opts.PackFull = true
	tree100, _ := buildTree(t, recs, universe, opts)
	if tree100.NumLeaves() >= tree75.NumLeaves() {
		t.Fatalf("full packing should use fewer leaves: %d vs %d",
			tree100.NumLeaves(), tree75.NumLeaves())
	}
	if tree100.PackingRatio() <= tree75.PackingRatio() {
		t.Fatal("full packing should raise the packing ratio")
	}
}

func TestSiblingLeavesAreContiguousOnDisk(t *testing.T) {
	// The bulk loader allocates each level sequentially, giving the
	// layout Section 6.2 credits for ST's sequential I/O.
	rng := rand.New(rand.NewSource(14))
	universe := geom.NewRect(0, 0, 1000, 1000)
	recs := genRecords(rng, 4000, 1000, 10)
	tree, store := buildTree(t, recs, universe, smallOpts())
	var n Node
	if err := tree.ReadNode(StoreReader{store}, tree.Root(), &n); err != nil {
		t.Fatal(err)
	}
	if n.Leaf() {
		t.Skip("tree too small")
	}
	// Walk to a level-1 node and check its children are consecutive.
	for n.Level > 1 {
		if err := tree.ReadNode(StoreReader{store}, iosim.PageID(n.Entries[0].Ref), &n); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < len(n.Entries); i++ {
		if n.Entries[i].Ref != n.Entries[i-1].Ref+1 {
			t.Fatalf("leaf children not contiguous: %d after %d", n.Entries[i].Ref, n.Entries[i-1].Ref)
		}
	}
}

func TestLevelCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	universe := geom.NewRect(0, 0, 1000, 1000)
	recs := genRecords(rng, 3000, 1000, 10)
	tree, store := buildTree(t, recs, universe, smallOpts())
	counts, err := tree.LevelCounts(StoreReader{store})
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != tree.NumLeaves() {
		t.Fatalf("level 0 count %d != leaves %d", counts[0], tree.NumLeaves())
	}
	if counts[len(counts)-1] != 1 {
		t.Fatal("root level must have one node")
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != tree.NumNodes() {
		t.Fatalf("levels sum to %d, nodes = %d", total, tree.NumNodes())
	}
}

func TestCountLeavesIntersecting(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	universe := geom.NewRect(0, 0, 1000, 1000)
	recs := genRecords(rng, 5000, 1000, 10)
	tree, store := buildTree(t, recs, universe, smallOpts())
	all, err := tree.CountLeavesIntersecting(StoreReader{store}, universe)
	if err != nil {
		t.Fatal(err)
	}
	if all != tree.NumLeaves() {
		t.Fatalf("full window: %d of %d leaves", all, tree.NumLeaves())
	}
	some, err := tree.CountLeavesIntersecting(StoreReader{store}, geom.NewRect(0, 0, 100, 100))
	if err != nil {
		t.Fatal(err)
	}
	if some <= 0 || some >= all {
		t.Fatalf("small window: %d of %d leaves", some, all)
	}
	none, err := tree.CountLeavesIntersecting(StoreReader{store}, geom.NewRect(5000, 5000, 6000, 6000))
	if err != nil {
		t.Fatal(err)
	}
	if none != 0 {
		t.Fatalf("disjoint window: %d leaves", none)
	}
}

func TestBuildThroughBufferPoolReader(t *testing.T) {
	// Reading the tree through a buffer pool must behave identically.
	rng := rand.New(rand.NewSource(17))
	universe := geom.NewRect(0, 0, 500, 500)
	recs := genRecords(rng, 2000, 500, 10)
	tree, store := buildTree(t, recs, universe, smallOpts())
	pool := iosim.NewBufferPool(store, 8)
	if err := tree.Validate(pool); err != nil {
		t.Fatal(err)
	}
	if pool.Misses() == 0 {
		t.Fatal("validation did not read through the pool")
	}
	// Repeated queries revisit the root and upper levels: hits appear.
	for i := 0; i < 3; i++ {
		if err := tree.Query(pool, geom.NewRect(0, 0, 50, 50), func(geom.Record) {}); err != nil {
			t.Fatal(err)
		}
	}
	if pool.Hits() == 0 {
		t.Fatalf("pool produced no hits across repeated queries (misses=%d)", pool.Misses())
	}
}

func TestBuildOptionValidation(t *testing.T) {
	store := newStore()
	if _, err := BuildFromSlice(store, nil, geom.NewRect(0, 0, 1, 1),
		BuildOptions{Fanout: 1}); err == nil {
		t.Fatal("fanout 1 must be rejected")
	}
	if _, err := BuildFromSlice(store, nil, geom.NewRect(0, 0, 1, 1),
		BuildOptions{FillFactor: 1.5}); err == nil {
		t.Fatal("fill factor > 1 must be rejected")
	}
	if _, err := BuildFromSlice(store, nil, geom.NewRect(0, 0, 1, 1),
		BuildOptions{AreaSlack: -0.1}); err == nil {
		t.Fatal("negative slack must be rejected")
	}
	// Oversized fanout is capped, not rejected.
	tree, err := BuildFromSlice(store, []geom.Record{{Rect: geom.NewRect(0, 0, 1, 1), ID: 1}},
		geom.NewRect(0, 0, 1, 1), BuildOptions{Fanout: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Fanout() > MaxFanout(store.PageSize()) {
		t.Fatal("fanout not capped to page capacity")
	}
}

func TestSortRecordsByY(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := genRecords(rng, rng.Intn(500), 100, 10)
		sortRecordsByY(recs)
		for i := 1; i < len(recs); i++ {
			if geom.ByLowerY(recs[i-1], recs[i]) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeStringer(t *testing.T) {
	tree, _ := buildTree(t, genRecords(rand.New(rand.NewSource(18)), 100, 100, 5),
		geom.NewRect(0, 0, 100, 100), smallOpts())
	if tree.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestShuffleLayoutPreservesStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	universe := geom.NewRect(0, 0, 1000, 1000)
	recs := genRecords(rng, 4000, 1000, 10)
	tree, store := buildTree(t, recs, universe, smallOpts())
	shuffled, err := ShuffleLayout(tree, 99)
	if err != nil {
		t.Fatal(err)
	}
	if err := shuffled.Validate(StoreReader{store}); err != nil {
		t.Fatalf("shuffled tree invalid: %v", err)
	}
	if err := tree.Validate(StoreReader{store}); err != nil {
		t.Fatalf("original tree damaged: %v", err)
	}
	// Same records come out of both.
	collectIDs := func(tr *Tree) map[uint32]bool {
		out := map[uint32]bool{}
		sc := tr.Scanner(StoreReader{store})
		for {
			r, ok, err := sc.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				return out
			}
			out[r.ID] = true
		}
	}
	a, b := collectIDs(tree), collectIDs(shuffled)
	if len(a) != len(b) || len(a) != len(recs) {
		t.Fatalf("record sets differ: %d vs %d", len(a), len(b))
	}
	// The shuffled layout must actually break sibling contiguity.
	var n Node
	if err := shuffled.ReadNode(StoreReader{store}, shuffled.Root(), &n); err != nil {
		t.Fatal(err)
	}
	for n.Level > 1 {
		if err := shuffled.ReadNode(StoreReader{store}, iosim.PageID(n.Entries[0].Ref), &n); err != nil {
			t.Fatal(err)
		}
	}
	contiguous := 0
	for i := 1; i < len(n.Entries); i++ {
		if n.Entries[i].Ref == n.Entries[i-1].Ref+1 {
			contiguous++
		}
	}
	if contiguous > len(n.Entries)/2 {
		t.Fatalf("shuffle left %d of %d children contiguous", contiguous, len(n.Entries))
	}
}

func TestNaiveScannerMatchesOptimizedButUsesMoreQueue(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	universe := geom.NewRect(0, 0, 1000, 1000)
	recs := genRecords(rng, 6000, 1000, 10)
	tree, store := buildTree(t, recs, universe,
		BuildOptions{Fanout: 64, FillFactor: 0.75, AreaSlack: 0.2, SortMemory: 1 << 20})

	drain := func(sc *SortedScanner) []geom.Record {
		var out []geom.Record
		prev := float32(-1e30)
		for {
			r, ok, err := sc.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				return out
			}
			if r.Rect.YLo < prev {
				t.Fatal("naive scanner out of order")
			}
			prev = r.Rect.YLo
			out = append(out, r)
		}
	}
	opt := drain(tree.Scanner(StoreReader{store}))
	naive := drain(tree.NaiveScanner(StoreReader{store}))
	if len(opt) != len(naive) || len(opt) != len(recs) {
		t.Fatalf("scan lengths differ: %d vs %d", len(opt), len(naive))
	}
}

func TestSeededBuildStructureAndContents(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	universe := geom.NewRect(0, 0, 1000, 1000)
	seedRecs := genRecords(rng, 5000, 1000, 12)
	store := newStore()
	seed, err := BuildFromSlice(store, seedRecs, universe, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Skewed second relation: most records in one corner so slot
	// subtrees end up with different heights.
	var other []geom.Record
	for i := 0; i < 3000; i++ {
		x := float32(rng.Float64() * 150)
		y := float32(rng.Float64() * 150)
		other = append(other, geom.Record{Rect: geom.NewRect(x, y, x+5, y+5), ID: uint32(i)})
	}
	for i := 0; i < 300; i++ {
		x := float32(500 + rng.Float64()*450)
		y := float32(500 + rng.Float64()*450)
		other = append(other, geom.Record{Rect: geom.NewRect(x, y, x+5, y+5), ID: uint32(10000 + i)})
	}
	f, err := stream.WriteAll(store, stream.Records, other)
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := SeededBuild(store, seed, f, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := seeded.ValidateSeeded(StoreReader{store}); err != nil {
		t.Fatal(err)
	}
	if seeded.NumRecords() != int64(len(other)) {
		t.Fatalf("records = %d, want %d", seeded.NumRecords(), len(other))
	}
	// The scanner must still produce a sorted permutation despite the
	// uneven subtree heights.
	sc := seeded.Scanner(StoreReader{store})
	seen := map[uint32]bool{}
	prev := float32(-1e30)
	for {
		r, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if r.Rect.YLo < prev {
			t.Fatal("seeded scan out of order")
		}
		prev = r.Rect.YLo
		if seen[r.ID] {
			t.Fatalf("duplicate id %d", r.ID)
		}
		seen[r.ID] = true
	}
	if len(seen) != len(other) {
		t.Fatalf("scanned %d of %d", len(seen), len(other))
	}
	// Queries work too.
	w := geom.NewRect(0, 0, 150, 150)
	want := 0
	for _, r := range other {
		if r.Rect.Intersects(w) {
			want++
		}
	}
	got := 0
	if err := seeded.Query(StoreReader{store}, w, func(geom.Record) { got++ }); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("query: %d of %d", got, want)
	}
}

func TestSeededBuildEmptyInputsFallBack(t *testing.T) {
	store := newStore()
	universe := geom.NewRect(0, 0, 100, 100)
	seed, err := BuildFromSlice(store, genRecords(rand.New(rand.NewSource(41)), 200, 100, 5),
		universe, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	empty, err := stream.WriteAll(store, stream.Records, nil)
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := SeededBuild(store, seed, empty, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if seeded.NumRecords() != 0 {
		t.Fatal("empty seeded tree should hold nothing")
	}
	if _, err := SeededBuild(store, nil, empty, smallOpts()); err == nil {
		t.Fatal("nil seed must error")
	}
}

func TestExternalScannerMatchesScanner(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	universe := geom.NewRect(0, 0, 1000, 1000)
	recs := genRecords(rng, 8000, 1000, 10)
	tree, store := buildTree(t, recs, universe,
		BuildOptions{Fanout: 64, FillFactor: 0.75, AreaSlack: 0.2, SortMemory: 1 << 20})

	reference := map[uint32]geom.Record{}
	sc := tree.Scanner(StoreReader{store})
	for {
		r, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		reference[r.ID] = r
	}

	// Tiny budget to force spills; output must still be a sorted
	// permutation identical in content.
	ext := tree.NewExternalScanner(StoreReader{store}, 0)
	prev := float32(-1e30)
	count := 0
	for {
		r, ok, err := ext.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if r.Rect.YLo < prev {
			t.Fatalf("external scan out of order at %d", count)
		}
		prev = r.Rect.YLo
		want, exists := reference[r.ID]
		if !exists || want != r {
			t.Fatalf("record mismatch for id %d", r.ID)
		}
		delete(reference, r.ID)
		count++
	}
	if len(reference) != 0 {
		t.Fatalf("%d records missing from external scan", len(reference))
	}
	if ext.Spills() == 0 {
		t.Fatal("expected spills with a zero budget")
	}
	if ext.PagesRead() != int64(tree.NumNodes()) {
		t.Fatalf("external scan read %d pages, want %d", ext.PagesRead(), tree.NumNodes())
	}
}

func TestExternalScannerLargeBudgetNoSpills(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	universe := geom.NewRect(0, 0, 500, 500)
	recs := genRecords(rng, 2000, 500, 10)
	tree, store := buildTree(t, recs, universe, smallOpts())
	ext := tree.NewExternalScanner(StoreReader{store}, 8<<20)
	n := 0
	for {
		_, ok, err := ext.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 2000 {
		t.Fatalf("scanned %d of 2000", n)
	}
	if ext.Spills() != 0 {
		t.Fatal("no spills expected with a large budget")
	}
}
