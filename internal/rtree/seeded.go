package rtree

import (
	"fmt"
	"sort"

	"unijoin/internal/geom"
	"unijoin/internal/iosim"
	"unijoin/internal/stream"
)

// SeededBuild constructs a seeded tree in the style of Lo and
// Ravishankar [21] (discussed in Section 2 of the paper): when only
// one relation has an index, an index for the other is built "using
// the existing index as a starting point (or seed)", after which a
// synchronized tree join can run.
//
// The seed slots are the entries of the existing tree's root: each
// record of the non-indexed relation is assigned to the slot whose
// rectangle needs the least enlargement to cover it (ties to the
// smaller slot), so the new tree's top-level regions mirror the
// existing tree's and the subsequent tree join prunes well. Each
// slot's records are then Hilbert bulk-loaded into a subtree, and a
// new root grafts the subtrees together.
//
// Because slots receive different record counts, subtrees may have
// different heights; the grafted root's level is one above the tallest
// subtree, and join algorithms (ST, BFRJ) handle the unevenness with
// their usual unequal-level descent. ValidateSeeded checks the
// relaxed invariants.
func SeededBuild(store *iosim.Store, seed *Tree, in *iosim.File, opts BuildOptions) (*Tree, error) {
	opts, err := opts.normalize(store.PageSize())
	if err != nil {
		return nil, err
	}
	if seed == nil {
		return nil, fmt.Errorf("rtree: seeded build requires a seed tree")
	}
	if err := stream.Validate(in, stream.Records); err != nil {
		return nil, err
	}

	// Read the seed slots from the existing tree's root.
	var root Node
	if err := seed.ReadNode(StoreReader{Store: store}, seed.Root(), &root); err != nil {
		return nil, err
	}
	slots := make([]geom.Rect, 0, len(root.Entries))
	for _, e := range root.Entries {
		slots = append(slots, e.Rect)
	}
	if len(slots) == 0 {
		// Degenerate seed: fall back to a plain bulk load over the
		// records' own extent.
		return Build(store, in, seed.universe, opts)
	}

	// Distribute records to slots by least enlargement.
	buckets := make([][]geom.Record, len(slots))
	rd := stream.NewReader(in, stream.Records)
	var total int64
	for {
		rec, ok, err := rd.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		total++
		best, bestCost := 0, -1.0
		for i, s := range slots {
			cost := s.EnlargementArea(rec.Rect)
			if bestCost < 0 || cost < bestCost ||
				(cost == bestCost && s.Area() < slots[best].Area()) {
				best, bestCost = i, cost
			}
		}
		buckets[best] = append(buckets[best], rec)
	}

	// Bulk-load one subtree per non-empty slot; graft under a new root.
	t := &Tree{store: store, fanout: opts.Fanout, universe: seed.universe, mbr: geom.EmptyRect()}
	var rootEntries []Entry
	maxLevel := uint8(0)
	for i, recs := range buckets {
		if len(recs) == 0 {
			continue
		}
		// Sort the bucket in Hilbert order of the slot's region, then
		// pack with the standard per-level packer.
		universe := slots[i]
		sort.Slice(recs, func(x, y int) bool {
			hx := geom.HilbertValue(recs[x].Rect.Center(), universe)
			hy := geom.HilbertValue(recs[y].Rect.Center(), universe)
			if hx != hy {
				return hx < hy
			}
			return recs[x].ID < recs[y].ID
		})
		sub, err := t.packSubtree(recs, opts)
		if err != nil {
			return nil, err
		}
		rootEntries = append(rootEntries, sub.entry)
		if sub.level > maxLevel {
			maxLevel = sub.level
		}
		t.mbr = t.mbr.Union(sub.entry.Rect)
		t.entries += int64(len(recs))
	}

	if len(rootEntries) == 0 {
		return Build(store, in, seed.universe, opts)
	}
	if len(rootEntries) > opts.Fanout {
		return nil, fmt.Errorf("rtree: %d seed slots exceed fanout %d", len(rootEntries), opts.Fanout)
	}
	rootPage := store.Alloc()
	buf, err := store.WritablePage(rootPage)
	if err != nil {
		return nil, err
	}
	rootNode := Node{Level: maxLevel + 1, Entries: rootEntries}
	if err := encodeNode(buf, &rootNode); err != nil {
		return nil, err
	}
	t.numNodes++
	t.root = rootPage
	t.height = int(maxLevel) + 2
	return t, nil
}

// subtreeResult describes one packed subtree.
type subtreeResult struct {
	entry Entry
	level uint8
}

// packSubtree bulk-loads records (already in Hilbert order) into a
// subtree and returns its root entry and level.
func (t *Tree) packSubtree(recs []geom.Record, opts BuildOptions) (subtreeResult, error) {
	pos := 0
	next := func() (Entry, bool, error) {
		if pos >= len(recs) {
			return Entry{}, false, nil
		}
		e := Entry{Rect: recs[pos].Rect, Ref: recs[pos].ID}
		pos++
		return e, true, nil
	}
	level, err := t.packLevel(0, next, opts)
	if err != nil {
		return subtreeResult{}, err
	}
	t.leaves += len(level)
	h := uint8(0)
	for len(level) > 1 {
		h++
		src := level
		p := 0
		up := func() (Entry, bool, error) {
			if p >= len(src) {
				return Entry{}, false, nil
			}
			e := src[p]
			p++
			return e, true, nil
		}
		level, err = t.packLevel(h, up, opts)
		if err != nil {
			return subtreeResult{}, err
		}
	}
	return subtreeResult{entry: level[0], level: h}, nil
}

// ValidateSeeded checks the relaxed structural invariants of a seeded
// tree: parent rectangles contain (rather than equal) child MBRs at
// the grafted root, levels strictly decrease along edges, and all
// records are reachable exactly once.
func (t *Tree) ValidateSeeded(pr PageReader) error {
	var records int64
	var nodes int
	var walk func(p iosim.PageID, parentLevel int, within *geom.Rect) error
	walk = func(p iosim.PageID, parentLevel int, within *geom.Rect) error {
		var n Node
		if err := t.ReadNode(pr, p, &n); err != nil {
			return err
		}
		nodes++
		if int(n.Level) >= parentLevel {
			return fmt.Errorf("rtree: level %d not below parent level %d", n.Level, parentLevel)
		}
		if len(n.Entries) > t.fanout {
			return fmt.Errorf("rtree: node %d has %d entries over fanout", p, len(n.Entries))
		}
		if within != nil {
			if m := n.MBR(); m.Valid() && !within.Contains(m) {
				return fmt.Errorf("rtree: node %d MBR %v escapes parent %v", p, m, *within)
			}
		}
		if n.Leaf() {
			records += int64(len(n.Entries))
			return nil
		}
		for _, e := range n.Entries {
			r := e.Rect
			if err := walk(iosim.PageID(e.Ref), int(n.Level), &r); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, t.height, nil); err != nil {
		return err
	}
	if records != t.entries {
		return fmt.Errorf("rtree: %d records reachable, tree claims %d", records, t.entries)
	}
	if nodes != t.numNodes {
		return fmt.Errorf("rtree: %d nodes reachable, tree claims %d", nodes, t.numNodes)
	}
	return nil
}
