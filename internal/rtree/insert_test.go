package rtree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"unijoin/internal/geom"
	"unijoin/internal/iosim"
)

// collectRecords drains every data record reachable from the tree.
func collectRecords(t *testing.T, tree *Tree) []geom.Record {
	t.Helper()
	var out []geom.Record
	err := tree.Query(StoreReader{Store: tree.Store()}, tree.universe.Union(tree.MBR()), func(r geom.Record) {
		out = append(out, r)
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// queryIDs runs a window query and returns the sorted matching IDs.
func queryIDs(t *testing.T, tree *Tree, win geom.Rect) []uint32 {
	t.Helper()
	var ids []uint32
	err := tree.Query(StoreReader{Store: tree.Store()}, win, func(r geom.Record) {
		ids = append(ids, r.ID)
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TestInsertMatchesRebuild grows a tree record by record and checks,
// at several sizes, that it answers every probe window exactly like a
// tree bulk-loaded from scratch on the same record set — the
// acceptance property for the insert path.
func TestInsertMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	universe := geom.NewRect(0, 0, 1000, 1000)
	recs := genRecords(rng, 3000, 1000, 20)

	store := newStore()
	tree, err := BuildFromSlice(store, nil, universe, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkpoints := map[int]bool{1: true, 15: true, 16: true, 17: true, 300: true, len(recs): true}
	for i, r := range recs {
		if err := tree.Insert(r); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if !checkpoints[i+1] {
			continue
		}
		if err := tree.Validate(StoreReader{Store: store}); err != nil {
			t.Fatalf("after %d inserts: %v", i+1, err)
		}
		rebuilt, rstore := buildTree(t, recs[:i+1], universe, smallOpts())
		for probe := 0; probe < 20; probe++ {
			x := float32(rng.Float64() * 1000)
			y := float32(rng.Float64() * 1000)
			win := geom.NewRect(x, y, x+float32(rng.Float64()*200), y+float32(rng.Float64()*200))
			got := queryIDs(t, tree, win)
			want := queryIDs(t, rebuilt, win)
			if len(got) != len(want) {
				t.Fatalf("after %d inserts, window %v: %d matches, rebuild finds %d",
					i+1, win, len(got), len(want))
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("after %d inserts, window %v: IDs diverge at %d: %d vs %d",
						i+1, win, k, got[k], want[k])
				}
			}
		}
		_ = rstore
	}
	if tree.NumRecords() != int64(len(recs)) {
		t.Fatalf("tree claims %d records, inserted %d", tree.NumRecords(), len(recs))
	}
	if tree.Height() < 2 {
		t.Fatalf("3000 inserts at fanout 16 should have grown the tree past one level, height %d", tree.Height())
	}
}

// TestInsertIntoBulkLoadedTree appends to a packed tree — the live
// ingestion shape: bulk-loaded base plus incremental delta.
func TestInsertIntoBulkLoadedTree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	universe := geom.NewRect(0, 0, 1000, 1000)
	base := genRecords(rng, 2000, 1000, 15)
	delta := genRecords(rng, 500, 1000, 15)
	for i := range delta {
		delta[i].ID = uint32(2000 + i)
	}

	tree, store := buildTree(t, base, universe, smallOpts())
	for _, r := range delta {
		if err := tree.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Validate(StoreReader{Store: store}); err != nil {
		t.Fatal(err)
	}
	all := append(append([]geom.Record(nil), base...), delta...)
	rebuilt, _ := buildTree(t, all, universe, smallOpts())
	got := collectRecords(t, tree)
	want := collectRecords(t, rebuilt)
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d: %v vs %v", i, got[i], want[i])
		}
	}
	if tree.MBR() != rebuilt.MBR() {
		t.Fatalf("MBR %v, rebuild has %v", tree.MBR(), rebuilt.MBR())
	}
}

// TestWithInsertedLeavesOldTreeIntact is the copy-on-write contract:
// a reader pinned to the old tree sees exactly the old records while
// the new tree sees old + new.
func TestWithInsertedLeavesOldTreeIntact(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	universe := geom.NewRect(0, 0, 1000, 1000)
	base := genRecords(rng, 1500, 1000, 15)
	tree, store := buildTree(t, base, universe, smallOpts())

	oldRecords := collectRecords(t, tree)
	oldNodes, oldRoot, oldHeight := tree.NumNodes(), tree.Root(), tree.Height()

	// Several stacked batches, each COW against the previous version.
	versions := []*Tree{tree}
	total := len(base)
	for batch := 0; batch < 4; batch++ {
		delta := genRecords(rng, 200, 1000, 15)
		for i := range delta {
			delta[i].ID = uint32(total + i)
		}
		total += len(delta)
		next, err := versions[len(versions)-1].WithInserted(delta)
		if err != nil {
			t.Fatal(err)
		}
		versions = append(versions, next)
	}

	// The original tree is byte-for-byte undisturbed.
	if got := collectRecords(t, tree); len(got) != len(oldRecords) {
		t.Fatalf("old tree now yields %d records, had %d", len(got), len(oldRecords))
	}
	if tree.NumNodes() != oldNodes || tree.Root() != oldRoot || tree.Height() != oldHeight {
		t.Fatalf("old tree shape changed: nodes %d->%d root %d->%d height %d->%d",
			oldNodes, tree.NumNodes(), oldRoot, tree.Root(), oldHeight, tree.Height())
	}
	if err := tree.Validate(StoreReader{Store: store}); err != nil {
		t.Fatalf("old tree: %v", err)
	}

	// Every version sees exactly its prefix of the appends.
	want := len(base)
	for i, v := range versions {
		if err := v.Validate(StoreReader{Store: store}); err != nil {
			t.Fatalf("version %d: %v", i, err)
		}
		if got := v.NumRecords(); got != int64(want) {
			t.Fatalf("version %d sees %d records, want %d", i, got, want)
		}
		if recs := collectRecords(t, v); len(recs) != want {
			t.Fatalf("version %d query yields %d records, want %d", i, len(recs), want)
		}
		want += 200
	}
}

// TestWithInsertedSharesUnchangedPages checks the page-copy bound: a
// COW batch allocates at most (distinct path nodes + splits) pages,
// far fewer than a rebuild, and the in-batch watermark keeps repeat
// touches of the same new page free.
func TestWithInsertedSharesUnchangedPages(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	universe := geom.NewRect(0, 0, 1000, 1000)
	base := genRecords(rng, 4000, 1000, 10)
	tree, store := buildTree(t, base, universe, smallOpts())

	// A clustered delta (one busy corner of the universe, as a moving-
	// objects feed produces) lands on a handful of leaves.
	delta := make([]geom.Record, 400)
	for i := range delta {
		x := float32(rng.Float64() * 50)
		y := float32(rng.Float64() * 50)
		delta[i] = geom.Record{
			Rect: geom.NewRect(x, y, x+float32(rng.Float64()*5), y+float32(rng.Float64()*5)),
			ID:   uint32(4000 + i),
		}
	}
	before := store.NumPages()
	next, err := tree.WithInserted(delta)
	if err != nil {
		t.Fatal(err)
	}
	grown := store.NumPages() - before
	// Without the watermark every insert would copy a full root-leaf
	// path: ~height pages per insert. With it, page growth is bounded
	// by the distinct nodes the batch touches plus splits — for a
	// clustered delta a small corner of the base tree.
	if ceiling := len(delta) * next.Height(); grown >= ceiling {
		t.Fatalf("COW batch allocated %d pages, watermark should keep it well under %d", grown, ceiling)
	}
	if grown >= tree.NumNodes()/2 {
		t.Fatalf("clustered COW batch allocated %d pages against a %d-node base tree; expected a small corner",
			grown, tree.NumNodes())
	}
}

// TestInsertIntoEmptyTree covers the empty bulk-loaded root (a single
// empty leaf).
func TestInsertIntoEmptyTree(t *testing.T) {
	store := newStore()
	tree, err := BuildFromSlice(store, nil, geom.NewRect(0, 0, 100, 100), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(geom.Record{Rect: geom.NewRect(1, 1, 2, 2), ID: 42}); err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(StoreReader{Store: store}); err != nil {
		t.Fatal(err)
	}
	ids := queryIDs(t, tree, geom.NewRect(0, 0, 100, 100))
	if len(ids) != 1 || ids[0] != 42 {
		t.Fatalf("got IDs %v, want [42]", ids)
	}
}

// TestInsertRejectsInvalidRect guards the API edge.
func TestInsertRejectsInvalidRect(t *testing.T) {
	store := newStore()
	tree, err := BuildFromSlice(store, nil, geom.NewRect(0, 0, 100, 100), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	bad := geom.Record{Rect: geom.Rect{XLo: 5, XHi: 1, YLo: 0, YHi: 1}, ID: 1}
	if err := tree.Insert(bad); err == nil {
		t.Fatal("invalid rectangle accepted")
	}
	if tree.NumRecords() != 0 {
		t.Fatalf("failed insert changed the record count to %d", tree.NumRecords())
	}
}

// TestSplitQuadraticRespectsMinFill checks both halves of a split
// stay above Guttman's m and below the fanout.
func TestSplitQuadraticRespectsMinFill(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		fanout := 4 + rng.Intn(60)
		n := &Node{Level: 0}
		for i := 0; i <= fanout; i++ {
			x := float32(rng.Float64() * 100)
			y := float32(rng.Float64() * 100)
			n.Entries = append(n.Entries, Entry{
				Rect: geom.NewRect(x, y, x+float32(rng.Float64()*10), y+float32(rng.Float64()*10)),
				Ref:  uint32(i),
			})
		}
		sib := splitQuadratic(n, fanout)
		minFill := int(minFillFraction * float64(fanout))
		if minFill < 1 {
			minFill = 1
		}
		if len(n.Entries)+len(sib.Entries) != fanout+1 {
			t.Fatalf("fanout %d: split lost entries: %d + %d != %d",
				fanout, len(n.Entries), len(sib.Entries), fanout+1)
		}
		if len(n.Entries) < minFill || len(sib.Entries) < minFill {
			t.Fatalf("fanout %d: split sizes %d/%d below min fill %d",
				fanout, len(n.Entries), len(sib.Entries), minFill)
		}
		if len(n.Entries) > fanout || len(sib.Entries) > fanout {
			t.Fatalf("fanout %d: split sizes %d/%d exceed fanout",
				fanout, len(n.Entries), len(sib.Entries))
		}
	}
}

// BenchmarkInsertVsRebuild quantifies the EXPERIMENTS.md row: the
// cost of absorbing a delta by incremental insertion against the cost
// of bulk-loading the whole relation from scratch, across delta sizes
// (insertion wins for small deltas; the quadratic-split CPU cost
// makes the bulk rebuild competitive once the delta grows — which is
// exactly why the ingest log compacts past a threshold).
func BenchmarkInsertVsRebuild(b *testing.B) {
	rng := rand.New(rand.NewSource(97))
	universe := geom.NewRect(0, 0, 1000, 1000)
	base := genRecords(rng, 50000, 1000, 10)
	opts := DefaultBuildOptions()

	for _, dn := range []int{100, 1000, 4000} {
		delta := genRecords(rng, dn, 1000, 10)
		for i := range delta {
			delta[i].ID = uint32(50000 + i)
		}
		b.Run(fmt.Sprintf("insert-%d", dn), func(b *testing.B) {
			store := newStore()
			tree, err := BuildFromSlice(store, base, universe, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tree.WithInserted(delta); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(dn), "records/op")
		})
		b.Run(fmt.Sprintf("rebuild-%d", len(base)+dn), func(b *testing.B) {
			all := append(append([]geom.Record(nil), base...), delta...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				store := newStore()
				if _, err := BuildFromSlice(store, all, universe, opts); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(base)+dn), "records/op")
		})
	}
	_ = iosim.DefaultPageSize
}
