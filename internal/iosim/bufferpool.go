package iosim

import (
	"container/list"
	"fmt"
)

// BufferPool is an LRU page cache over a Store. The ST join uses one
// sized at 22 MB in the paper (Section 3.3): R-tree nodes revisited by
// the synchronized depth-first traversal are served from the pool, and
// only pool misses reach the disk. Table 4's "pages requested" for ST
// are exactly these misses.
//
// Pages are cached by copy, so the zero-copy contract of
// Store.ReadPage does not leak through the pool.
type BufferPool struct {
	store    *Store
	capacity int // in pages

	frames map[PageID]*list.Element
	lru    *list.List // front = most recently used

	hits   int64
	misses int64
}

type frame struct {
	id   PageID
	data []byte
}

// NewBufferPool creates a pool holding up to capPages pages of s.
// capPages must be at least 1.
func NewBufferPool(s *Store, capPages int) *BufferPool {
	if capPages < 1 {
		panic(fmt.Sprintf("iosim: buffer pool capacity %d < 1", capPages))
	}
	return &BufferPool{
		store:    s,
		capacity: capPages,
		frames:   make(map[PageID]*list.Element, capPages),
		lru:      list.New(),
	}
}

// NewBufferPoolBytes creates a pool of approximately sizeBytes, in
// whole pages of the store's page size (minimum one page).
func NewBufferPoolBytes(s *Store, sizeBytes int) *BufferPool {
	pages := sizeBytes / s.PageSize()
	if pages < 1 {
		pages = 1
	}
	return NewBufferPool(s, pages)
}

// Capacity returns the pool capacity in pages.
func (b *BufferPool) Capacity() int { return b.capacity }

// Get returns the contents of page p, reading it from the store on a
// miss and evicting the least recently used page if the pool is full.
// The returned slice is the pool's frame: treat it as read-only and do
// not retain it across further pool operations.
func (b *BufferPool) Get(p PageID) ([]byte, error) {
	if el, ok := b.frames[p]; ok {
		b.hits++
		b.lru.MoveToFront(el)
		return el.Value.(*frame).data, nil
	}
	b.misses++
	src, err := b.store.ReadPage(p)
	if err != nil {
		return nil, err
	}
	var f *frame
	if b.lru.Len() >= b.capacity {
		// Reuse the evicted frame's buffer to avoid churn.
		el := b.lru.Back()
		f = el.Value.(*frame)
		delete(b.frames, f.id)
		b.lru.Remove(el)
	} else {
		f = &frame{data: make([]byte, b.store.PageSize())}
	}
	f.id = p
	copy(f.data, src)
	b.frames[p] = b.lru.PushFront(f)
	return f.data, nil
}

// Contains reports whether page p is currently cached (without touching
// recency or counters).
func (b *BufferPool) Contains(p PageID) bool {
	_, ok := b.frames[p]
	return ok
}

// Hits returns the number of Get calls served from the pool.
func (b *BufferPool) Hits() int64 { return b.hits }

// Misses returns the number of Get calls that had to read the store.
// This is the "page requests" metric of Table 4.
func (b *BufferPool) Misses() int64 { return b.misses }

// Requests returns hits + misses, the number of logical page requests.
func (b *BufferPool) Requests() int64 { return b.hits + b.misses }

// Len returns the number of pages currently cached.
func (b *BufferPool) Len() int { return b.lru.Len() }

// Reset empties the pool and zeroes its counters.
func (b *BufferPool) Reset() {
	b.frames = make(map[PageID]*list.Element, b.capacity)
	b.lru.Init()
	b.hits, b.misses = 0, 0
}
