package iosim

import (
	"fmt"
	"io"
)

// ExtentPages is the number of contiguous pages allocated at a time for
// a File: 64 pages x 8 KB = 512 KB, the logical page size the paper
// uses for its stream-based algorithms (Section 5.2). A sequential scan
// of a File therefore produces long runs of sequential page accesses
// with at most one random access per 512 KB extent — exactly the access
// pattern of TPIE's read/write-system-call BTE.
const ExtentPages = 64

type extent struct {
	first PageID
	pages int
}

// File is an append-only byte file laid out in large contiguous
// extents on the simulated disk. It is the backing object for record
// streams (sorted runs, partition files, join output).
type File struct {
	store   *Store
	extents []extent
	size    int64 // bytes written
}

// NewFile creates an empty file on s.
func NewFile(s *Store) *File {
	return &File{store: s}
}

// Size returns the number of bytes written to the file.
func (f *File) Size() int64 { return f.size }

// Store returns the store the file lives on.
func (f *File) Store() *Store { return f.store }

// Pages returns the number of pages currently backing the file's
// contents (allocated extents may extend further).
func (f *File) Pages() int {
	ps := int64(f.store.PageSize())
	return int((f.size + ps - 1) / ps)
}

// pageFor returns the PageID holding byte offset off, extending the
// file with a new extent if needed for writes.
func (f *File) pageFor(off int64, extend bool) (PageID, error) {
	ps := int64(f.store.PageSize())
	idx := off / ps
	for _, e := range f.extents {
		if idx < int64(e.pages) {
			return e.first + PageID(idx), nil
		}
		idx -= int64(e.pages)
	}
	if !extend {
		return InvalidPage, fmt.Errorf("iosim: offset %d beyond file size %d", off, f.size)
	}
	first := f.store.AllocN(ExtentPages)
	f.extents = append(f.extents, extent{first: first, pages: ExtentPages})
	if idx >= ExtentPages {
		return InvalidPage, fmt.Errorf("iosim: internal extent accounting error")
	}
	return first + PageID(idx), nil
}

// Append writes p at the end of the file. Writes are buffered per page:
// a page is written to the store once per Append that touches it, so
// appending in page-sized chunks (as the stream Writer does) costs one
// page write per page.
func (f *File) Append(p []byte) error {
	ps := int64(f.store.PageSize())
	for len(p) > 0 {
		off := f.size
		pg, err := f.pageFor(off, true)
		if err != nil {
			return err
		}
		inPage := int(off % ps)
		n := int(ps) - inPage
		if n > len(p) {
			n = len(p)
		}
		buf, err := f.store.WritablePage(pg)
		if err != nil {
			return err
		}
		copy(buf[inPage:inPage+n], p[:n])
		f.size += int64(n)
		p = p[n:]
	}
	return nil
}

// ReadAt reads len(p) bytes starting at byte offset off. It returns
// io.EOF (with a short count) when the read extends past the end of the
// file. Each page touched costs one page read.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("iosim: negative offset %d", off)
	}
	ps := int64(f.store.PageSize())
	total := 0
	for len(p) > 0 {
		if off >= f.size {
			return total, io.EOF
		}
		pg, err := f.pageFor(off, false)
		if err != nil {
			return total, err
		}
		buf, err := f.store.ReadPage(pg)
		if err != nil {
			return total, err
		}
		inPage := int(off % ps)
		n := int(ps) - inPage
		if int64(n) > f.size-off {
			n = int(f.size - off)
		}
		if n > len(p) {
			n = len(p)
		}
		copy(p[:n], buf[inPage:inPage+n])
		off += int64(n)
		total += n
		p = p[n:]
	}
	return total, nil
}

// Truncate resets the file to zero length. The extents are retained for
// reuse; truncation itself costs no I/O.
func (f *File) Truncate() { f.size = 0 }

// Snapshot returns a read-only prefix view of the file pinned at its
// current size: reads through the snapshot never observe bytes
// appended to the original afterwards. The snapshot shares pages with
// the live file — it costs no I/O and no page copies — which is safe
// because Append only ever writes bytes at offsets >= the live size,
// and every snapshot's pinned size is <= that, so the byte ranges a
// snapshot reads and the ranges later appends write are disjoint even
// when they share a partially-filled page. Snapshots are the
// consistency mechanism behind epoch-stamped relation versions
// (internal/ingest): each published version carries one, and queries
// pinned to it keep a stable view while the log grows. Do not call
// Append, Truncate, or Release on a snapshot.
func (f *File) Snapshot() *File {
	exts := make([]extent, len(f.extents))
	copy(exts, f.extents)
	return &File{store: f.store, extents: exts, size: f.size}
}

// Release returns all of the file's extents to the store's allocator
// and empties the file. Use it on temporary streams (sort runs,
// partitions) once they have been fully consumed — the paper's scratch
// space discussion (Section 5.3) makes the same point about temporary
// files during preprocessing. The file itself remains usable (it will
// allocate fresh extents if written again), but any outstanding reader
// over it is invalidated.
func (f *File) Release() {
	for _, e := range f.extents {
		f.store.Release(e.first, e.pages)
	}
	f.extents = nil
	f.size = 0
}
