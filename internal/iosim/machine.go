package iosim

import (
	"fmt"
	"time"
)

// DiskModel captures the disk characteristics the paper reports in
// Table 1: the average read access time (seek + rotational latency)
// and the peak transfer rate. Simulated I/O time is derived from these
// two numbers:
//
//	sequential read  = pageSize / peak rate          (head already there)
//	random read      = avg access + pageSize / rate  (one seek per request)
//	writes           = 1.5x the corresponding read   (the factor the
//	                   paper itself uses in the Section 6.3 accounting)
type DiskModel struct {
	Model          string  // drive model, e.g. "ST-34501W (Cheetah)"
	SizeGB         float64 // capacity, informational
	OnDiskBufferKB int     // drive cache; informational (discussed in 6.2)
	AvgAccessMs    float64 // average read access time in milliseconds
	PeakMBps       float64 // peak sustained transfer in MB/s
}

// writePenalty is the paper's sequential-write-to-sequential-read cost
// ratio ("a sequential write takes on average 1.5 times as much time as
// a sequential read", Section 6.3).
const writePenalty = 1.5

// SeqReadTime returns the simulated time to read n bytes that the head
// is already positioned at.
func (d DiskModel) SeqReadTime(n int) time.Duration {
	return transferTime(n, d.PeakMBps)
}

// RandReadTime returns the simulated time for a read that requires a
// seek: average access plus transfer.
func (d DiskModel) RandReadTime(n int) time.Duration {
	return time.Duration(d.AvgAccessMs*float64(time.Millisecond)) + transferTime(n, d.PeakMBps)
}

// SeqWriteTime returns the simulated time for a sequential write.
func (d DiskModel) SeqWriteTime(n int) time.Duration {
	return time.Duration(float64(d.SeqReadTime(n)) * writePenalty)
}

// RandWriteTime returns the simulated time for a write that requires a
// seek.
func (d DiskModel) RandWriteTime(n int) time.Duration {
	return time.Duration(d.AvgAccessMs*float64(time.Millisecond)) +
		time.Duration(float64(transferTime(n, d.PeakMBps))*writePenalty)
}

func transferTime(n int, mbps float64) time.Duration {
	if mbps <= 0 {
		return 0
	}
	sec := float64(n) / (mbps * 1e6)
	return time.Duration(sec * float64(time.Second))
}

// IOTime converts access counters into simulated disk time under this
// model, with every page access charged at the given page size.
func (d DiskModel) IOTime(c Counters, pageSize int) time.Duration {
	return time.Duration(c.SeqReads)*d.SeqReadTime(pageSize) +
		time.Duration(c.RandReads)*d.RandReadTime(pageSize) +
		time.Duration(c.SeqWrites)*d.SeqWriteTime(pageSize) +
		time.Duration(c.RandWrites)*d.RandWriteTime(pageSize)
}

// EstimatedIOTime is the naive estimate the paper critiques in Section
// 6.2: every page request is charged the average (i.e. random) read
// time, with no credit for sequential layout. Figure 2(a)-(c) is built
// from this quantity.
func (d DiskModel) EstimatedIOTime(pageRequests int64, pageSize int) time.Duration {
	return time.Duration(pageRequests) * d.RandReadTime(pageSize)
}

// Machine is one of the paper's experimental platforms: a CPU clock
// (used to scale measured computation time) plus a disk.
type Machine struct {
	Name   string
	CPUMHz int
	Disk   DiskModel
	// PageSize is the effective I/O unit. All machines in the paper use
	// 8 KB per R-tree node (machine 1 issues two 4 KB blocks per I/O).
	PageSize int
}

// referenceCPUMHz is the clock of the machine CPU scaling is expressed
// against (Machine 3, the DEC Alpha at 500 MHz).
const referenceCPUMHz = 500

// HostCPUFactor calibrates the simulation host against the reference
// 500 MHz Alpha: one second of measured host CPU time corresponds to
// HostCPUFactor seconds on Machine 3. A 2020s core retires roughly
// 40x the work per cycle-second of a 1999 Alpha 21164 on this kind of
// pointer-and-compare workload; the absolute value only rescales every
// reported CPU time by the same constant, so the paper's comparisons
// (which machine is CPU-bound, who wins where) are unaffected.
var HostCPUFactor = 40.0

// CPUTime converts measured host CPU time into simulated time on this
// machine by scaling with the clock ratio.
func (m Machine) CPUTime(host time.Duration) time.Duration {
	scale := HostCPUFactor * float64(referenceCPUMHz) / float64(m.CPUMHz)
	return time.Duration(float64(host) * scale)
}

// String implements fmt.Stringer.
func (m Machine) String() string {
	return fmt.Sprintf("%s (%d MHz, %s, %.1f ms avg read, %.1f MB/s peak)",
		m.Name, m.CPUMHz, m.Disk.Model, m.Disk.AvgAccessMs, m.Disk.PeakMBps)
}

// The three hardware configurations of Table 1.
var (
	// Machine1 pairs a slow CPU with a fast disk (SPARC 20 + Barracuda);
	// the paper's running times on it are dominated by computation.
	Machine1 = Machine{
		Name:   "Machine 1 (SUN Sparc 20)",
		CPUMHz: 50,
		Disk: DiskModel{
			Model:          "ST-32550N (Barracuda)",
			SizeGB:         2.1,
			OnDiskBufferKB: 512,
			AvgAccessMs:    8.0,
			PeakMBps:       10,
		},
		PageSize: DefaultPageSize,
	}

	// Machine2 has a fast CPU and a disk with high transfer rate but
	// slow access time (Ultra 10 + Medalist, 128 KB drive cache).
	Machine2 = Machine{
		Name:   "Machine 2 (SUN Ultra 10)",
		CPUMHz: 300,
		Disk: DiskModel{
			Model:          "ST-34342A (Medalist)",
			SizeGB:         4.3,
			OnDiskBufferKB: 128,
			AvgAccessMs:    12.5,
			PeakMBps:       33.3,
		},
		PageSize: DefaultPageSize,
	}

	// Machine3 is the state-of-the-art workstation: fast CPU and fast
	// disk (DEC Alpha 500 + Cheetah).
	Machine3 = Machine{
		Name:   "Machine 3 (DEC Alpha 500)",
		CPUMHz: 500,
		Disk: DiskModel{
			Model:          "ST-34501W (Cheetah)",
			SizeGB:         4.4,
			OnDiskBufferKB: 512,
			AvgAccessMs:    7.7,
			PeakMBps:       40,
		},
		PageSize: DefaultPageSize,
	}

	// Machines lists all three platforms in Table 1 order.
	Machines = []Machine{Machine1, Machine2, Machine3}
)
