// Package iosim simulates the storage hardware of the paper's
// experimental platforms (Arge et al., EDBT 2000, Section 5.1).
//
// The paper's central point is that the *kind* of disk access matters:
// sequential transfers run at the disk's peak rate while random
// accesses pay an average seek + rotational delay per request, a gap of
// roughly 10x on the paper's disks. iosim therefore provides
//
//   - Store: a paged, in-memory "disk" that counts every page read and
//     write and classifies each as sequential (the page follows the
//     previously accessed page) or random;
//   - DiskModel / Machine: the three workstation configurations of
//     Table 1, which turn those counters into simulated I/O time;
//   - BufferPool: the LRU page cache used by the ST join (22 MB in the
//     paper), whose misses are the "page requests" of Table 4;
//   - File: an extent-based byte file over the Store used by the
//     stream layer, so large sequential scans are classified as
//     sequential automatically.
//
// All state is in memory; nothing touches the real filesystem, so
// experiments are deterministic and fast while preserving the
// sequential-vs-random structure the paper measures.
package iosim

import (
	"errors"
	"fmt"
	"sync"
)

// PageID identifies one page on the simulated disk. Pages are numbered
// consecutively from 0 in allocation order, which mirrors the
// bulk-loading layout argument of Section 6.2: children allocated
// together are laid out contiguously.
type PageID uint32

// InvalidPage is a sentinel that never refers to an allocated page.
const InvalidPage = PageID(^uint32(0))

// DefaultPageSize is the R-tree node / disk page size used in all of
// the paper's experiments (8 KB; machine 1 has 4 KB pages but the
// authors request two blocks per I/O to match).
const DefaultPageSize = 8192

// Counters accumulates the I/O activity observed by a Store. The
// sequential/random split is what drives the simulated-time model.
type Counters struct {
	SeqReads   int64 // page reads that followed the previous access
	RandReads  int64 // page reads that required a seek
	SeqWrites  int64
	RandWrites int64
}

// Reads returns the total number of page reads.
func (c Counters) Reads() int64 { return c.SeqReads + c.RandReads }

// Writes returns the total number of page writes.
func (c Counters) Writes() int64 { return c.SeqWrites + c.RandWrites }

// Total returns the total number of page accesses.
func (c Counters) Total() int64 { return c.Reads() + c.Writes() }

// Sub returns the counter delta c - o; use with a snapshot taken before
// an operation to isolate that operation's I/O.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		SeqReads:   c.SeqReads - o.SeqReads,
		RandReads:  c.RandReads - o.RandReads,
		SeqWrites:  c.SeqWrites - o.SeqWrites,
		RandWrites: c.RandWrites - o.RandWrites,
	}
}

// Add returns the element-wise sum of c and o.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		SeqReads:   c.SeqReads + o.SeqReads,
		RandReads:  c.RandReads + o.RandReads,
		SeqWrites:  c.SeqWrites + o.SeqWrites,
		RandWrites: c.RandWrites + o.RandWrites,
	}
}

// String implements fmt.Stringer.
func (c Counters) String() string {
	return fmt.Sprintf("reads %d (%d seq, %d rand), writes %d (%d seq, %d rand)",
		c.Reads(), c.SeqReads, c.RandReads, c.Writes(), c.SeqWrites, c.RandWrites)
}

// Store is the simulated disk: a growable array of fixed-size pages
// with access counting. Store is safe for concurrent use: allocation,
// page access, and counter reads are serialized by an internal mutex,
// so several queries may run against one workspace at once (the query
// service does exactly this). Two caveats follow from sharing one
// disk: the counters accumulate the I/O of every concurrent query, so
// per-query deltas are only exact when queries run one at a time, and
// the sequential/random classification reflects the interleaved head
// movement of all of them — exactly as on real shared hardware. Page
// *contents* are protected only per access: concurrent readers are
// fine, as is writing pages no other goroutine touches (each query
// writes only its own temporary files), but racing writers on one
// page are the caller's bug.
type Store struct {
	mu       sync.Mutex
	pageSize int
	pages    [][]byte

	// Access classification is kept under two drive models at once
	// (Section 6.2 of the paper turns on exactly this distinction):
	//
	//   - counters/tracker with CacheSegments segments model a drive
	//     with a segmented on-disk cache (the 512 KB Barracuda and
	//     Cheetah): a handful of interleaved sequential streams all
	//     enjoy prefetching, so ST's two per-tree DFS streams stay
	//     sequential.
	//   - directCounters/directTracker with a single segment model a
	//     drive whose cache cannot hold multiple streams (the 128 KB
	//     Medalist of Machine 2): any interleaving costs a seek, which
	//     is why the paper sees no relative ST advantage there.
	counters       Counters
	tracker        headTracker
	directCounters Counters
	directTracker  headTracker

	// free holds released extents by size, reused by AllocN. Reused
	// pages are NOT zeroed: files track their own logical size and
	// never read beyond what was written, exactly like blocks of a
	// deleted file reused by a real filesystem.
	free map[int][]PageID
}

// CacheSegments is the number of concurrently-tracked sequential
// streams under the segmented-cache model, a coarse stand-in for the
// read segments of late-90s drive caches. Two segments are enough for
// ST's per-tree DFS streams and a reader/writer stream pair, but not
// for the many leaf fronts PQ's sweep advances through or the fan-in
// of a merge — the distinction Section 6.2 turns on.
const CacheSegments = 2

// PrefetchPages is the forward window each tracked stream covers: a
// drive that has positioned its head streams the whole track into its
// cache segment, so a request up to PrefetchPages ahead of a tracked
// position is served without mechanical work (32 KB at 8 KB pages —
// the paper's "may even reside on the same track" observation in
// Section 6.2).
const PrefetchPages = 4

// headTracker classifies page accesses as sequential when they re-hit
// or run ahead of one of the most recently active streams within the
// prefetch window.
type headTracker struct {
	segs []PageID
	max  int
}

func (h *headTracker) access(p PageID) bool {
	for i, pos := range h.segs {
		if p >= pos && p <= pos+PrefetchPages {
			copy(h.segs[1:i+1], h.segs[:i])
			h.segs[0] = p
			return true
		}
	}
	if len(h.segs) < h.max {
		h.segs = append(h.segs, 0)
	}
	copy(h.segs[1:], h.segs[:len(h.segs)-1])
	if len(h.segs) > 0 {
		h.segs[0] = p
	}
	return false
}

func (h *headTracker) reset() { h.segs = h.segs[:0] }

// ErrPageBounds is returned for accesses to unallocated pages.
var ErrPageBounds = errors.New("iosim: page out of bounds")

// NewStore creates an empty simulated disk with the given page size.
// Sizes below 64 bytes are rejected to keep node layouts sane.
func NewStore(pageSize int) *Store {
	if pageSize < 64 {
		panic(fmt.Sprintf("iosim: page size %d too small", pageSize))
	}
	return &Store{
		pageSize:      pageSize,
		tracker:       headTracker{max: CacheSegments},
		directTracker: headTracker{max: 1},
	}
}

// PageSize returns the size of each page in bytes.
func (s *Store) PageSize() int { return s.pageSize }

// NumPages returns the number of allocated pages.
func (s *Store) NumPages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pages)
}

// Counters returns the accumulated access counters under the
// segmented-cache model (drives with a large on-disk buffer).
func (s *Store) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters
}

// DirectCounters returns the counters under the single-stream model
// (drives whose cache cannot track several sequential streams, like
// Machine 2's 128 KB Medalist).
func (s *Store) DirectCounters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.directCounters
}

// ResetCounters zeroes both counter sets (allocation state is kept).
// Head positions are also forgotten so the next access is random,
// matching a cold start.
func (s *Store) ResetCounters() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counters = Counters{}
	s.directCounters = Counters{}
	s.tracker.reset()
	s.directTracker.reset()
}

// Alloc allocates one zeroed page and returns its ID. Allocation does
// not count as I/O; the paper charges only reads and writes.
func (s *Store) Alloc() PageID {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := PageID(len(s.pages))
	s.pages = append(s.pages, make([]byte, s.pageSize))
	return id
}

// AllocN allocates n contiguous pages and returns the first ID.
// Contiguity is what makes later sequential scans cheap. Freshly grown
// pages are zeroed; released extents of the same size are reused
// as-is (see Release).
func (s *Store) AllocN(n int) PageID {
	if n <= 0 {
		panic("iosim: AllocN requires n > 0")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if lst := s.free[n]; len(lst) > 0 {
		id := lst[len(lst)-1]
		s.free[n] = lst[:len(lst)-1]
		return id
	}
	id := PageID(len(s.pages))
	for i := 0; i < n; i++ {
		s.pages = append(s.pages, make([]byte, s.pageSize))
	}
	return id
}

// Release returns an extent of n contiguous pages starting at first to
// the allocator for reuse. The caller must no longer read or write the
// pages through stale references; iosim.File.Release is the intended
// entry point. Releasing is free in simulated time (deleting a temp
// file costs no data transfer).
func (s *Store) Release(first PageID, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(first)+n > len(s.pages) {
		panic(fmt.Sprintf("iosim: release of unallocated extent %d+%d", first, n))
	}
	if s.free == nil {
		s.free = make(map[int][]PageID)
	}
	s.free[n] = append(s.free[n], first)
}

// ReadPage returns the contents of page p. The returned slice is the
// store's internal buffer: callers must treat it as read-only and must
// not retain it across a WritePage to the same page. This zero-copy
// contract mirrors the memory-mapped BTE the paper uses for R-trees.
func (s *Store) ReadPage(p PageID) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(p) >= len(s.pages) {
		return nil, fmt.Errorf("%w: read %d of %d", ErrPageBounds, p, len(s.pages))
	}
	s.note(p, true)
	return s.pages[p], nil
}

// WritePage replaces the contents of page p with src, which must be
// exactly one page long.
func (s *Store) WritePage(p PageID, src []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(p) >= len(s.pages) {
		return fmt.Errorf("%w: write %d of %d", ErrPageBounds, p, len(s.pages))
	}
	if len(src) != s.pageSize {
		return fmt.Errorf("iosim: write of %d bytes to %d-byte page", len(src), s.pageSize)
	}
	s.note(p, false)
	copy(s.pages[p], src)
	return nil
}

// WritablePage returns a writable view of page p, counting one page
// write. It is the in-place counterpart of WritePage for builders that
// fill a page incrementally (e.g. R-tree bulk loading).
func (s *Store) WritablePage(p PageID) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(p) >= len(s.pages) {
		return nil, fmt.Errorf("%w: write %d of %d", ErrPageBounds, p, len(s.pages))
	}
	s.note(p, false)
	return s.pages[p], nil
}

// note records one access to page p under both drive models.
func (s *Store) note(p PageID, read bool) {
	record(&s.counters, s.tracker.access(p), read)
	record(&s.directCounters, s.directTracker.access(p), read)
}

func record(c *Counters, seq, read bool) {
	switch {
	case read && seq:
		c.SeqReads++
	case read:
		c.RandReads++
	case seq:
		c.SeqWrites++
	default:
		c.RandWrites++
	}
}
