package iosim

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestStoreAllocAndRoundTrip(t *testing.T) {
	s := NewStore(128)
	p := s.Alloc()
	if s.NumPages() != 1 {
		t.Fatalf("NumPages = %d", s.NumPages())
	}
	data := bytes.Repeat([]byte{0xAB}, 128)
	if err := s.WritePage(p, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadPage(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("page contents mismatch")
	}
}

func TestStoreBoundsChecks(t *testing.T) {
	s := NewStore(128)
	if _, err := s.ReadPage(0); err == nil {
		t.Fatal("read of unallocated page should fail")
	}
	p := s.Alloc()
	if err := s.WritePage(p, make([]byte, 64)); err == nil {
		t.Fatal("short write should fail")
	}
	if err := s.WritePage(p+1, make([]byte, 128)); err == nil {
		t.Fatal("write past end should fail")
	}
}

func TestSequentialClassification(t *testing.T) {
	s := NewStore(128)
	first := s.AllocN(10)
	// Forward scan: first access random, next 9 sequential.
	for i := 0; i < 10; i++ {
		if _, err := s.ReadPage(first + PageID(i)); err != nil {
			t.Fatal(err)
		}
	}
	c := s.Counters()
	if c.RandReads != 1 || c.SeqReads != 9 {
		t.Fatalf("forward scan: %v", c)
	}

	s.ResetCounters()
	// Backward scan: everything random.
	for i := 9; i >= 0; i-- {
		if _, err := s.ReadPage(first + PageID(i)); err != nil {
			t.Fatal(err)
		}
	}
	c = s.Counters()
	if c.RandReads != 10 || c.SeqReads != 0 {
		t.Fatalf("backward scan: %v", c)
	}

	s.ResetCounters()
	// Rereading the same page is served by the drive cache under the
	// segmented model (counted sequential), but still costs a seek in
	// the single-stream model after an interleaved access.
	if _, err := s.ReadPage(first); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadPage(first); err != nil {
		t.Fatal(err)
	}
	c = s.Counters()
	if c.RandReads != 1 || c.SeqReads != 1 {
		t.Fatalf("reread: %v", c)
	}
}

func TestWriteClassification(t *testing.T) {
	s := NewStore(128)
	first := s.AllocN(4)
	buf := make([]byte, 128)
	for i := 0; i < 4; i++ {
		if err := s.WritePage(first+PageID(i), buf); err != nil {
			t.Fatal(err)
		}
	}
	c := s.Counters()
	if c.RandWrites != 1 || c.SeqWrites != 3 {
		t.Fatalf("sequential writes: %v", c)
	}
}

func TestCountersArithmetic(t *testing.T) {
	a := Counters{SeqReads: 5, RandReads: 2, SeqWrites: 3, RandWrites: 1}
	b := Counters{SeqReads: 1, RandReads: 1, SeqWrites: 1, RandWrites: 1}
	d := a.Sub(b)
	if d.Reads() != 5 || d.Writes() != 2 || d.Total() != 7 {
		t.Fatalf("sub: %+v", d)
	}
	sum := d.Add(b)
	if sum != a {
		t.Fatalf("add: %+v != %+v", sum, a)
	}
}

func TestDiskModelTimes(t *testing.T) {
	d := Machine1.Disk // 8 ms access, 10 MB/s
	page := 8192
	seq := d.SeqReadTime(page)
	rnd := d.RandReadTime(page)
	// 8192 bytes at 10 MB/s = 819.2 us.
	if seq < 800*time.Microsecond || seq > 840*time.Microsecond {
		t.Fatalf("seq read = %v", seq)
	}
	if rnd != seq+8*time.Millisecond {
		t.Fatalf("rand read = %v, want seq + 8ms", rnd)
	}
	if got, want := d.SeqWriteTime(page), time.Duration(float64(seq)*1.5); got != want {
		t.Fatalf("seq write = %v, want %v", got, want)
	}
	if d.RandWriteTime(page) <= d.SeqWriteTime(page) {
		t.Fatal("random write should cost more than sequential write")
	}
}

func TestIOTimeAdditive(t *testing.T) {
	d := Machine3.Disk
	a := Counters{SeqReads: 10, RandReads: 3, SeqWrites: 4, RandWrites: 1}
	b := Counters{SeqReads: 7, RandReads: 9}
	total := d.IOTime(a.Add(b), 8192)
	if total != d.IOTime(a, 8192)+d.IOTime(b, 8192) {
		t.Fatal("IOTime should be additive over counters")
	}
}

func TestIOTimeMonotone(t *testing.T) {
	f := func(seqReads, randReads uint8) bool {
		d := Machine2.Disk
		c1 := Counters{SeqReads: int64(seqReads), RandReads: int64(randReads)}
		c2 := Counters{SeqReads: int64(seqReads) + 1, RandReads: int64(randReads)}
		c3 := Counters{SeqReads: int64(seqReads), RandReads: int64(randReads) + 1}
		t1 := d.IOTime(c1, 8192)
		return d.IOTime(c2, 8192) > t1 && d.IOTime(c3, 8192) > t1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandomVsSequentialGap(t *testing.T) {
	// The paper assumes a random read costs roughly 10x a sequential
	// read (Section 6.3). Verify the Table 1 disks are in that regime.
	for _, m := range Machines {
		ratio := float64(m.Disk.RandReadTime(8192)) / float64(m.Disk.SeqReadTime(8192))
		if ratio < 5 || ratio > 70 {
			t.Errorf("%s: rand/seq ratio %.1f outside plausible range", m.Name, ratio)
		}
	}
}

func TestEstimatedIOTime(t *testing.T) {
	d := Machine3.Disk
	if d.EstimatedIOTime(100, 8192) != 100*d.RandReadTime(8192) {
		t.Fatal("estimate must charge every request the average read time")
	}
}

func TestMachineCPUTime(t *testing.T) {
	host := 100 * time.Millisecond
	m3 := Machine3.CPUTime(host)
	m1 := Machine1.CPUTime(host)
	// Machine 1 runs at 50 MHz vs machine 3's 500: 10x slower.
	if m1 != 10*m3 {
		t.Fatalf("CPU scaling: m1=%v m3=%v", m1, m3)
	}
	if m3 != time.Duration(float64(host)*HostCPUFactor) {
		t.Fatalf("reference machine scaling: %v", m3)
	}
}

func TestTable1Constants(t *testing.T) {
	// Spot-check the transcription of Table 1.
	if Machine1.CPUMHz != 50 || Machine2.CPUMHz != 300 || Machine3.CPUMHz != 500 {
		t.Fatal("CPU clocks do not match Table 1")
	}
	if Machine2.Disk.AvgAccessMs != 12.5 || Machine2.Disk.OnDiskBufferKB != 128 {
		t.Fatal("Machine 2 disk does not match Table 1")
	}
	for _, m := range Machines {
		if m.PageSize != 8192 {
			t.Fatalf("%s: page size %d, want 8192", m.Name, m.PageSize)
		}
	}
}

func TestBufferPoolHitsAndMisses(t *testing.T) {
	s := NewStore(128)
	first := s.AllocN(8)
	pool := NewBufferPool(s, 4)

	// Cold reads: all misses.
	for i := 0; i < 4; i++ {
		if _, err := pool.Get(first + PageID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if pool.Misses() != 4 || pool.Hits() != 0 {
		t.Fatalf("cold: hits=%d misses=%d", pool.Hits(), pool.Misses())
	}
	// Repeat: all hits, no new store reads.
	before := s.Counters().Reads()
	for i := 0; i < 4; i++ {
		if _, err := pool.Get(first + PageID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if pool.Hits() != 4 {
		t.Fatalf("warm: hits=%d", pool.Hits())
	}
	if s.Counters().Reads() != before {
		t.Fatal("warm hits must not touch the store")
	}
	if pool.Requests() != 8 {
		t.Fatalf("requests = %d", pool.Requests())
	}
}

func TestBufferPoolLRUEviction(t *testing.T) {
	s := NewStore(128)
	first := s.AllocN(3)
	pool := NewBufferPool(s, 2)

	mustGet := func(p PageID) {
		t.Helper()
		if _, err := pool.Get(p); err != nil {
			t.Fatal(err)
		}
	}
	mustGet(first)     // miss {0}
	mustGet(first + 1) // miss {0,1}
	mustGet(first)     // hit, 0 now MRU
	mustGet(first + 2) // miss, evicts 1 (LRU)
	if !pool.Contains(first) || pool.Contains(first+1) || !pool.Contains(first+2) {
		t.Fatal("LRU eviction picked the wrong victim")
	}
	mustGet(first + 1) // miss again
	if pool.Misses() != 4 || pool.Hits() != 1 {
		t.Fatalf("hits=%d misses=%d", pool.Hits(), pool.Misses())
	}
}

func TestBufferPoolInvariantHitsPlusMisses(t *testing.T) {
	f := func(seed int64) bool {
		s := NewStore(128)
		first := s.AllocN(16)
		pool := NewBufferPool(s, 5)
		rng := rand.New(rand.NewSource(seed))
		n := 200
		for i := 0; i < n; i++ {
			if _, err := pool.Get(first + PageID(rng.Intn(16))); err != nil {
				return false
			}
		}
		return pool.Hits()+pool.Misses() == int64(n) && pool.Len() <= 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBufferPoolLargeEnoughReadsEachPageOnce(t *testing.T) {
	// When capacity >= working set, misses == distinct pages, no matter
	// the access sequence (the NJ/NY regime of Table 4).
	s := NewStore(128)
	first := s.AllocN(10)
	pool := NewBufferPool(s, 10)
	rng := rand.New(rand.NewSource(1))
	seen := map[PageID]bool{}
	for i := 0; i < 500; i++ {
		p := first + PageID(rng.Intn(10))
		seen[p] = true
		if _, err := pool.Get(p); err != nil {
			t.Fatal(err)
		}
	}
	if int(pool.Misses()) != len(seen) {
		t.Fatalf("misses=%d distinct=%d", pool.Misses(), len(seen))
	}
}

func TestBufferPoolBytesSizing(t *testing.T) {
	s := NewStore(8192)
	pool := NewBufferPoolBytes(s, 22<<20) // the paper's 22 MB pool
	if pool.Capacity() != 22<<20/8192 {
		t.Fatalf("capacity = %d pages", pool.Capacity())
	}
	tiny := NewBufferPoolBytes(s, 10)
	if tiny.Capacity() != 1 {
		t.Fatal("minimum capacity is one page")
	}
}

func TestBufferPoolReset(t *testing.T) {
	s := NewStore(128)
	p := s.Alloc()
	pool := NewBufferPool(s, 2)
	if _, err := pool.Get(p); err != nil {
		t.Fatal(err)
	}
	pool.Reset()
	if pool.Hits() != 0 || pool.Misses() != 0 || pool.Len() != 0 || pool.Contains(p) {
		t.Fatal("reset did not clear pool state")
	}
}

func TestFileAppendAndReadBack(t *testing.T) {
	s := NewStore(128)
	f := NewFile(s)
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	if err := f.Append(payload); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 1000 {
		t.Fatalf("size = %d", f.Size())
	}
	got := make([]byte, 1000)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("read back mismatch")
	}
}

func TestFileReadAtEOF(t *testing.T) {
	s := NewStore(128)
	f := NewFile(s)
	if err := f.Append(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 200)
	n, err := f.ReadAt(buf, 0)
	if n != 100 || err != io.EOF {
		t.Fatalf("n=%d err=%v", n, err)
	}
	n, err = f.ReadAt(buf, 100)
	if n != 0 || err != io.EOF {
		t.Fatalf("at end: n=%d err=%v", n, err)
	}
	if _, err := f.ReadAt(buf, -1); err == nil {
		t.Fatal("negative offset should error")
	}
}

func TestFileSequentialScanIsMostlySequential(t *testing.T) {
	s := NewStore(128)
	f := NewFile(s)
	// Two extents worth of data.
	total := ExtentPages * 128 * 2
	if err := f.Append(make([]byte, total)); err != nil {
		t.Fatal(err)
	}
	s.ResetCounters()
	buf := make([]byte, 128)
	for off := int64(0); off < int64(total); off += 128 {
		if _, err := f.ReadAt(buf, off); err != nil {
			t.Fatal(err)
		}
	}
	c := s.Counters()
	if c.Reads() != int64(2*ExtentPages) {
		t.Fatalf("reads = %d, want %d", c.Reads(), 2*ExtentPages)
	}
	// At most one random read per extent boundary (+1 for the start).
	if c.RandReads > 2 {
		t.Fatalf("too many random reads in a scan: %v", c)
	}
}

func TestFilePagesAndTruncate(t *testing.T) {
	s := NewStore(128)
	f := NewFile(s)
	if f.Pages() != 0 {
		t.Fatal("empty file has no pages")
	}
	if err := f.Append(make([]byte, 129)); err != nil {
		t.Fatal(err)
	}
	if f.Pages() != 2 {
		t.Fatalf("pages = %d", f.Pages())
	}
	f.Truncate()
	if f.Size() != 0 || f.Pages() != 0 {
		t.Fatal("truncate should zero the file")
	}
	// Reuse after truncate.
	if err := f.Append([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatal("reuse after truncate failed")
	}
}

func TestFileInterleavedWritesClassification(t *testing.T) {
	// Two interleaved streams fit in the segmented drive cache and stay
	// sequential; under the single-stream model every switch seeks.
	s := NewStore(128)
	a, b := NewFile(s), NewFile(s)
	chunk := make([]byte, 128)
	for i := 0; i < 100; i++ {
		if err := a.Append(chunk); err != nil {
			t.Fatal(err)
		}
		if err := b.Append(chunk); err != nil {
			t.Fatal(err)
		}
	}
	if c := s.Counters(); c.SeqWrites < 190 {
		t.Fatalf("two streams should stay sequential in the segmented model: %v", c)
	}
	if d := s.DirectCounters(); d.RandWrites < 190 {
		t.Fatalf("single-stream model should seek on every switch: %v", d)
	}
}

func TestManyInterleavedStreamsOverflowCache(t *testing.T) {
	// More concurrent streams than cache segments: even the segmented
	// model classifies the interleaving as random. This is what PBSM's
	// partitioning pass pays with many partitions.
	s := NewStore(128)
	files := make([]*File, CacheSegments+4)
	for i := range files {
		files[i] = NewFile(s)
	}
	chunk := make([]byte, 128)
	for round := 0; round < 50; round++ {
		for _, f := range files {
			if err := f.Append(chunk); err != nil {
				t.Fatal(err)
			}
		}
	}
	c := s.Counters()
	if c.RandWrites < c.SeqWrites {
		t.Fatalf("too many streams should defeat the cache: %v", c)
	}
}

func TestWritablePageBounds(t *testing.T) {
	s := NewStore(128)
	if _, err := s.WritablePage(0); err == nil {
		t.Fatal("unallocated writable page must fail")
	}
	p := s.Alloc()
	buf, err := s.WritablePage(p)
	if err != nil || len(buf) != 128 {
		t.Fatalf("writable page: len=%d err=%v", len(buf), err)
	}
	if got := s.Counters().Writes(); got != 1 {
		t.Fatalf("WritablePage must count one write, got %d", got)
	}
}

func TestReleaseReuseAndPanic(t *testing.T) {
	s := NewStore(128)
	first := s.AllocN(4)
	s.Release(first, 4)
	again := s.AllocN(4)
	if again != first {
		t.Fatalf("released extent should be reused: %d vs %d", again, first)
	}
	if s.NumPages() != 4 {
		t.Fatalf("reuse must not grow the store: %d pages", s.NumPages())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("releasing unallocated extent must panic")
		}
	}()
	s.Release(100, 4)
}

func TestDirectCountersDiverge(t *testing.T) {
	s := NewStore(128)
	a := s.AllocN(8)
	b := s.AllocN(8)
	// Alternate two streams: cached model sequential, direct model not.
	for i := 0; i < 8; i++ {
		if _, err := s.ReadPage(a + PageID(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.ReadPage(b + PageID(i)); err != nil {
			t.Fatal(err)
		}
	}
	cached := s.Counters()
	direct := s.DirectCounters()
	if cached.SeqReads <= direct.SeqReads {
		t.Fatalf("cached model should see more sequential reads: %v vs %v", cached, direct)
	}
	if cached.Total() != direct.Total() {
		t.Fatal("both models must count the same accesses")
	}
}

func TestPrefetchWindowClassification(t *testing.T) {
	s := NewStore(128)
	first := s.AllocN(64)
	if _, err := s.ReadPage(first); err != nil {
		t.Fatal(err)
	}
	// A skip within the prefetch window is served from cache...
	if _, err := s.ReadPage(first + PrefetchPages); err != nil {
		t.Fatal(err)
	}
	// ...but a jump beyond it seeks.
	if _, err := s.ReadPage(first + 3*PrefetchPages); err != nil {
		t.Fatal(err)
	}
	c := s.Counters()
	if c.SeqReads != 1 || c.RandReads != 2 {
		t.Fatalf("prefetch classification: %v", c)
	}
}

func TestZeroThroughputDisk(t *testing.T) {
	d := DiskModel{AvgAccessMs: 5, PeakMBps: 0}
	if d.SeqReadTime(8192) != 0 {
		t.Fatal("zero throughput transfers cost nothing (guarded)")
	}
	if d.RandReadTime(8192) != 5*time.Millisecond {
		t.Fatal("random read should still pay the access time")
	}
}

func TestStringers(t *testing.T) {
	if Machine1.String() == "" || (Counters{}).String() == "" {
		t.Fatal("stringers must format")
	}
}

func TestFileSnapshotPinsPrefix(t *testing.T) {
	s := NewStore(DefaultPageSize)
	f := NewFile(s)
	chunk := func(b byte, n int) []byte {
		out := make([]byte, n)
		for i := range out {
			out[i] = b
		}
		return out
	}
	// 100 bytes: well inside the first page, so later appends share
	// the snapshot's last page — the disjoint-range case.
	if err := f.Append(chunk('a', 100)); err != nil {
		t.Fatal(err)
	}
	snap1 := f.Snapshot()
	if snap1.Size() != 100 {
		t.Fatalf("snapshot size %d, want 100", snap1.Size())
	}
	// Grow the live file past several extents.
	if err := f.Append(chunk('b', 3*ExtentPages*DefaultPageSize)); err != nil {
		t.Fatal(err)
	}
	snap2 := f.Snapshot()

	// snap1 still reads exactly its 100 'a's and reports EOF beyond.
	buf := make([]byte, 200)
	n, err := snap1.ReadAt(buf, 0)
	if err != io.EOF || n != 100 {
		t.Fatalf("snap1 read %d bytes, err %v; want 100, EOF", n, err)
	}
	for i := 0; i < 100; i++ {
		if buf[i] != 'a' {
			t.Fatalf("snap1 byte %d is %q, want 'a'", i, buf[i])
		}
	}
	// snap2 sees the full prefix including the shared page boundary.
	if snap2.Size() != f.Size() {
		t.Fatalf("snap2 size %d, live %d", snap2.Size(), f.Size())
	}
	one := make([]byte, 1)
	if _, err := snap2.ReadAt(one, 100); err != nil || one[0] != 'b' {
		t.Fatalf("snap2 byte 100 = %q err %v, want 'b'", one[0], err)
	}
	// Appending after the snapshots never moves their view.
	if err := f.Append(chunk('c', 50)); err != nil {
		t.Fatal(err)
	}
	if _, err := snap1.ReadAt(one, 0); err != nil || one[0] != 'a' {
		t.Fatalf("snap1 disturbed by later append: %q err %v", one[0], err)
	}
	if n, err := snap2.ReadAt(one, snap2.Size()); err != io.EOF || n != 0 {
		t.Fatalf("snap2 reads past its pinned size: n=%d err=%v", n, err)
	}
}
