package parallel

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"unijoin/internal/datagen"
	"unijoin/internal/geom"
)

// TestPartitionerDedupClusteredDuplicates is the regression test for
// duplicate quantile boundaries: when most x-centers share one value,
// several quantile positions hold that same value, which used to
// produce degenerate empty stripes and zero-width OwnerRange
// intervals. Deduplication must leave fewer, strictly increasing
// boundaries and a correct join.
func TestPartitionerDedupClusteredDuplicates(t *testing.T) {
	var recs []geom.Record
	// 2000 records whose x-center is exactly 500 …
	for i := 0; i < 2000; i++ {
		y := geom.Coord(i % 97)
		recs = append(recs, geom.Record{Rect: geom.NewRect(500, y, 500, y+2), ID: geom.ID(i)})
	}
	// … plus a thin spread so some distinct quantiles survive.
	for i := 0; i < 120; i++ {
		x := geom.Coord(i * 8)
		recs = append(recs, geom.Record{Rect: geom.NewRect(x, 10, x+4, 14), ID: geom.ID(3000 + i)})
	}
	p := NewPartitioner(universe, 16, recs)
	k := p.Partitions()
	if k < 1 || k > 16 {
		t.Fatalf("partitions = %d, want 1..16", k)
	}
	if k == 16 {
		t.Fatalf("duplicate quantiles must collapse below the requested 16 stripes")
	}
	for i := 0; i < k; i++ {
		lo, hi := p.OwnerRange(i)
		if !(lo < hi) {
			t.Fatalf("stripe %d has degenerate OwnerRange [%g, %g)", i, lo, hi)
		}
		if i > 0 {
			_, prevHi := p.OwnerRange(i - 1)
			if prevHi != lo {
				t.Fatalf("stripes %d and %d do not tile: %g vs %g", i-1, i, prevHi, lo)
			}
		}
	}
	// All-duplicate centers: every boundary collapses to one stripe.
	dup := recs[:2000]
	if got := NewPartitioner(universe, 8, dup).Partitions(); got != 1 {
		t.Fatalf("all-duplicate centers: partitions = %d, want 1", got)
	}
	// The join over the clustered-duplicate data stays correct.
	want := brute(recs, recs)
	rep, got := collectPairs(t, recs, recs, Options{Universe: universe, Partitions: 16, Workers: 4})
	if len(got) != len(want) || rep.Pairs != int64(len(want)) {
		t.Fatalf("pairs = %d (emitted %d), want %d", rep.Pairs, len(got), len(want))
	}
}

// TestDistributeMatchesSerialReference pins the chunked parallel
// distribution to the serial Partitioner.Distribute reference: for
// any worker count, concatenating each stripe's fragments in worker
// order must reproduce the serial bucket contents exactly — same
// records, same order, same Local tags — because worker w owns the
// w-th contiguous chunk of the input.
func TestDistributeMatchesSerialReference(t *testing.T) {
	a, b := clustered(17, 4000, 2500) // above distSerialCutoff
	part := NewPartitioner(universe, 9, a, b)
	k := part.Partitions()
	wantA := make([][]geom.Record, k)
	wantB := make([][]geom.Record, k)
	wantRepl := part.Distribute(a, wantA) + part.Distribute(b, wantB)
	for _, nw := range []int{1, 2, 3, 8} {
		d, err := distribute(context.Background(), part, a, b, nil, nw)
		if err != nil {
			t.Fatal(err)
		}
		if d.input != int64(len(a)+len(b)) {
			t.Fatalf("nw=%d: input = %d", nw, d.input)
		}
		if d.replicated != wantRepl {
			t.Fatalf("nw=%d: replicated = %d, want %d", nw, d.replicated, wantRepl)
		}
		if d.local+d.boundary != d.input {
			t.Fatalf("nw=%d: local %d + boundary %d != input %d", nw, d.local, d.boundary, d.input)
		}
		for i := 0; i < k; i++ {
			fa, fb := d.fragsFor(i)
			gotA := concatFrags(fa, d.sizeA[i])
			gotB := concatFrags(fb, d.sizeB[i])
			if !reflect.DeepEqual(gotA, wantA[i]) {
				t.Fatalf("nw=%d stripe %d: side A diverges from serial distribution", nw, i)
			}
			if !reflect.DeepEqual(gotB, wantB[i]) {
				t.Fatalf("nw=%d stripe %d: side B diverges from serial distribution", nw, i)
			}
		}
	}
}

// TestDistributeWindowed checks the fused window filter: only
// window-intersecting records are distributed, counted, and
// classified.
func TestDistributeWindowed(t *testing.T) {
	a, b := clustered(23, 5000, 3000)
	w := geom.NewRect(200, 200, 600, 600)
	part := NewPartitionerWindowed(universe, 6, &w, a, b)
	d, err := distribute(context.Background(), part, a, b, &w, 4)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, r := range a {
		if r.Rect.Intersects(w) {
			want++
		}
	}
	for _, r := range b {
		if r.Rect.Intersects(w) {
			want++
		}
	}
	if d.input != want {
		t.Fatalf("windowed input = %d, want %d", d.input, want)
	}
	if d.local+d.boundary != d.input {
		t.Fatalf("local %d + boundary %d != input %d", d.local, d.boundary, d.input)
	}
}

// TestWindowedSamplingStaysDense guards boundary estimation under a
// selective window: only records the join will actually sweep may
// vote on boundaries, and a window keeping ~0.5% of a large input
// must still contribute a full sample — striding before the window
// test would leave a handful of survivors, collapse to the
// equal-width fallback, and put every boundary outside the populated
// region.
func TestWindowedSamplingStaysDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var recs []geom.Record
	// 100k records spread over the universe, none near the window …
	for i := 0; i < 100_000; i++ {
		x := 200 + geom.Coord(rng.Intn(800))
		y := geom.Coord(rng.Intn(1000))
		recs = append(recs, geom.Record{Rect: geom.NewRect(x, y, x+1, y+1), ID: geom.ID(i)})
	}
	// … plus 500 inside it, clustered in x ∈ [100, 110].
	for i := 0; i < 500; i++ {
		x := 100 + geom.Coord(rng.Intn(10))
		y := 100 + geom.Coord(rng.Intn(10))
		recs = append(recs, geom.Record{Rect: geom.NewRect(x, y, x+1, y+1), ID: geom.ID(200_000 + i)})
	}
	w := geom.NewRect(95, 95, 115, 115)
	p := NewPartitionerWindowed(universe, 8, &w, recs)
	if got := p.Partitions(); got != 8 {
		t.Fatalf("windowed partitions = %d, want 8 (sample starved?)", got)
	}
	for i := 1; i < 8; i++ {
		lo, _ := p.OwnerRange(i)
		if lo < 100 || lo > 112 {
			t.Fatalf("boundary %d at %g lies outside the windowed population [100, 112]", i, lo)
		}
	}
	if n := len(appendCenterSample(nil, recs, &w)); n < 400 {
		t.Fatalf("windowed sample kept %d of ~500 qualifying centers", n)
	}
}

// TestTwoLayerAccounting checks the classification counters and the
// no-test fast path accounting across engine configurations.
func TestTwoLayerAccounting(t *testing.T) {
	a, b := clustered(19, 3000, 2000)
	ctx := context.Background()

	rep, err := Join(ctx, a, b, Options{Universe: universe, Workers: 4, Partitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LocalRecords+rep.BoundaryRecords != rep.InputRecords {
		t.Fatalf("local %d + boundary %d != input %d",
			rep.LocalRecords, rep.BoundaryRecords, rep.InputRecords)
	}
	if rep.LocalRecords == 0 || rep.BoundaryRecords == 0 {
		t.Fatalf("both classes must be populated on clustered data: local %d, boundary %d",
			rep.LocalRecords, rep.BoundaryRecords)
	}
	if rep.NoTestPairs <= 0 || rep.NoTestPairs > rep.Pairs {
		t.Fatalf("NoTestPairs = %d of %d pairs", rep.NoTestPairs, rep.Pairs)
	}
	// Replication only comes from boundary records.
	if rep.ReplicatedRecords-rep.InputRecords > rep.BoundaryRecords*int64(rep.Partitions) {
		t.Fatalf("replication exceeds what %d boundary records can produce", rep.BoundaryRecords)
	}
	if f := rep.LocalFraction(); f <= 0 || f >= 1 {
		t.Fatalf("LocalFraction = %f", f)
	}

	// One stripe (Partitions is floored at Workers, so one worker):
	// everything is local, every pair skips the test.
	rep1, err := Join(ctx, a, b, Options{Universe: universe, Workers: 1, Partitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.BoundaryRecords != 0 || rep1.LocalRecords != rep1.InputRecords {
		t.Fatalf("k=1: local %d boundary %d of %d", rep1.LocalRecords, rep1.BoundaryRecords, rep1.InputRecords)
	}
	if rep1.NoTestPairs != rep1.Pairs || rep1.NoTestFraction() != 1 {
		t.Fatalf("k=1: NoTestPairs = %d of %d", rep1.NoTestPairs, rep1.Pairs)
	}

	// Serial mirrors the one-stripe accounting.
	srep, err := Serial(ctx, a, b, Options{Universe: universe})
	if err != nil {
		t.Fatal(err)
	}
	if srep.LocalRecords != srep.InputRecords || srep.BoundaryRecords != 0 {
		t.Fatalf("serial: local %d boundary %d of %d", srep.LocalRecords, srep.BoundaryRecords, srep.InputRecords)
	}
	if srep.NoTestPairs != srep.Pairs {
		t.Fatalf("serial: NoTestPairs = %d of %d", srep.NoTestPairs, srep.Pairs)
	}
	if srep.Replication != 1 {
		t.Fatalf("serial replication = %f, want 1 for non-empty inputs", srep.Replication)
	}
}

// TestEmptyInputReports pins the documented Report contract for empty
// inputs — Replication 0 — on both entry points (Serial used to
// report 1).
func TestEmptyInputReports(t *testing.T) {
	ctx := context.Background()
	for name, join := range map[string]func(context.Context, []geom.Record, []geom.Record, Options) (Report, error){
		"parallel": Join, "serial": Serial,
	} {
		rep, err := join(ctx, nil, nil, Options{Universe: universe})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Replication != 0 {
			t.Fatalf("%s: empty-input Replication = %f, want 0", name, rep.Replication)
		}
		if rep.InputRecords != 0 || rep.Pairs != 0 || rep.NoTestPairs != 0 {
			t.Fatalf("%s: empty-input report %+v", name, rep)
		}
	}
}

// adversarialRecords generates boundary-hostile inputs: coordinates
// drawn from a small duplicated grid (so sampled quantile boundaries
// coincide exactly with record edges and centers), zero-width
// x-intervals sitting on those boundaries, duplicate rectangles, and
// wide boundary-crossing spans.
func adversarialRecords(rng *rand.Rand, n int, idBase geom.ID) []geom.Record {
	grid := []geom.Coord{0, 125, 250, 375, 500, 625, 750, 875, 1000}
	gx := func() geom.Coord { return grid[rng.Intn(len(grid))] }
	recs := make([]geom.Record, 0, n)
	for i := 0; i < n; i++ {
		var r geom.Rect
		switch rng.Intn(4) {
		case 0: // zero-width vertical segment exactly on a grid x
			x, y := gx(), geom.Coord(rng.Intn(1000))
			r = geom.NewRect(x, y, x, y+geom.Coord(rng.Intn(40)))
		case 1: // duplicate-coordinate point
			r = geom.NewRect(gx(), gx(), gx(), gx())
		case 2: // wide span with grid-aligned, boundary-sitting edges
			r = geom.NewRect(gx(), geom.Coord(rng.Intn(1000)), gx(), geom.Coord(rng.Intn(1000)))
		default: // small jittered box straddling a grid line
			x, y := gx(), geom.Coord(rng.Intn(1000))
			w, h := geom.Coord(rng.Intn(30)), geom.Coord(rng.Intn(30))
			r = geom.NewRect(x-w/2, y, x+w/2, y+h)
		}
		recs = append(recs, geom.Record{Rect: r, ID: idBase + geom.ID(i)})
	}
	return recs
}

// TestBoundaryAdversarialJoinEqualsSerial is the boundary-edge
// property test: across randomized adversarial inputs — records
// sitting exactly on stripe boundaries, zero-width x-intervals,
// duplicated coordinates — the parallel Join must emit exactly the
// same pair set as Serial for every partition/worker shape, with no
// duplicates and no misses, and the runs must collectively exercise
// both the local fast path and the tested boundary path.
func TestBoundaryAdversarialJoinEqualsSerial(t *testing.T) {
	ctx := context.Background()
	var sawNoTest, sawTested bool
	for trial := 0; trial < 4; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		a := adversarialRecords(rng, 400, 0)
		b := adversarialRecords(rng, 300, 10_000)

		want := map[geom.Pair]bool{}
		srep, err := Serial(ctx, a, b, Options{
			Universe: universe,
			Emit:     func(p geom.Pair) { want[p] = true },
		})
		if err != nil {
			t.Fatal(err)
		}
		if srep.Pairs != int64(len(want)) {
			t.Fatalf("trial %d: serial emitted %d distinct pairs of %d reported", trial, len(want), srep.Pairs)
		}

		for _, k := range []int{1, 3, 8, 16} {
			for _, workers := range []int{1, 4} {
				rep, got := collectPairs(t, a, b, Options{
					Universe: universe, Partitions: k, Workers: workers,
				})
				if len(got) != len(want) || rep.Pairs != int64(len(want)) {
					t.Fatalf("trial %d k=%d w=%d: %d pairs (emitted %d), want %d",
						trial, k, workers, rep.Pairs, len(got), len(want))
				}
				for p := range want {
					if !got[p] {
						t.Fatalf("trial %d k=%d w=%d: missing pair %v", trial, k, workers, p)
					}
				}
				if rep.NoTestPairs > 0 {
					sawNoTest = true
				}
				if rep.NoTestPairs < rep.Pairs {
					sawTested = true
				}
			}
		}
	}
	if !sawNoTest || !sawTested {
		t.Fatalf("adversarial runs must exercise both emit paths: no-test %v, tested %v", sawNoTest, sawTested)
	}
}

// BenchmarkDistribute measures the distribution prefix alone — the
// phase Report.PartitionWall covers — at several worker counts on the
// 100k uniform workload, the serial-prefix baseline the tentpole
// removes (run with -cpu to pin GOMAXPROCS on multicore hosts).
func BenchmarkDistribute(b *testing.B) {
	u := geom.NewRect(0, 0, 100_000, 100_000)
	ra := datagen.Uniform(1, 100_000, u, 40)
	rb := datagen.Uniform(2, 100_000, u, 40)
	for _, nw := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "workers-1", 2: "workers-2", 4: "workers-4"}[nw], func(b *testing.B) {
			part := NewPartitioner(u, 16, ra, rb)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := distribute(context.Background(), part, ra, rb, nil, nw); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
