package parallel

import (
	"context"
	"sort"
	"sync"
	"time"

	"unijoin/internal/geom"
	"unijoin/internal/pairbuf"
	"unijoin/internal/sweep"
)

// Join computes all intersecting pairs between a and b on a worker
// pool, reporting wall-clock statistics. The inputs need not be
// sorted and are not modified; each result pair is produced exactly
// once (left component from a), regardless of how many stripes the
// pair's rectangles were replicated into.
//
// The worker pool drains a partition channel and selects on
// ctx.Done(), so canceling the context stops every worker at its next
// partition boundary (and, through the sweep kernel's periodic
// checks, mid-partition too); Join then returns ctx's error.
func Join(ctx context.Context, a, b []geom.Record, o Options) (Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o, err := o.withDefaults()
	if err != nil {
		return Report{}, err
	}
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}
	start := time.Now()
	rep := Report{Workers: o.Workers}

	a = filterWindow(a, o.Window)
	b = filterWindow(b, o.Window)
	rep.InputRecords = int64(len(a) + len(b))

	part := NewPartitioner(o.Universe, o.Partitions, a, b)
	k := part.Partitions()
	rep.Partitions = k
	if o.Workers > k {
		rep.Workers = k
	}
	bucketsA := make([][]geom.Record, k)
	bucketsB := make([][]geom.Record, k)
	rep.ReplicatedRecords = part.Distribute(a, bucketsA) + part.Distribute(b, bucketsB)
	if rep.InputRecords > 0 {
		rep.Replication = float64(rep.ReplicatedRecords) / float64(rep.InputRecords)
	}
	for i := 0; i < k; i++ {
		if n := len(bucketsA[i]) + len(bucketsB[i]); n > rep.MaxPartitionRecords {
			rep.MaxPartitionRecords = n
		}
	}
	rep.PartitionWall = time.Since(start)

	// The parallel phase. Workers drain the partition channel and
	// select on cancellation; every per-partition and per-worker slot
	// is owned by exactly one goroutine, so the collection needs no
	// locks.
	collect := o.Emit != nil || o.EmitBatch != nil
	buffers := make([][]geom.Pair, k)
	partStats := make([]sweep.Stats, k)
	rep.PerWorker = make([]WorkerStats, rep.Workers)
	work := make(chan int, k)
	for i := 0; i < k; i++ {
		work <- i
	}
	close(work)
	errs := make(chan error, rep.Workers)

	sweepStart := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < rep.Workers; w++ {
		wg.Add(1)
		go func(ws *WorkerStats) {
			defer wg.Done()
			for {
				var i int
				var ok bool
				select {
				case <-ctx.Done():
					return
				case i, ok = <-work:
					if !ok {
						return
					}
				}
				t0 := time.Now()
				pairs, err := sweepPartition(ctx, part, i, bucketsA[i], bucketsB[i], o,
					&partStats[i], &buffers[i], collect)
				if err != nil {
					errs <- err
					return
				}
				ws.Partitions++
				ws.Records += int64(len(bucketsA[i]) + len(bucketsB[i]))
				ws.Pairs += pairs
				ws.Busy += time.Since(t0)
			}
		}(&rep.PerWorker[w])
	}
	wg.Wait()
	rep.SweepWall = time.Since(sweepStart)
	releaseBuffers := func() {
		for i, buf := range buffers {
			if buf != nil {
				pairbuf.Put(buf)
				buffers[i] = nil
			}
		}
	}
	select {
	case err := <-errs:
		releaseBuffers()
		return Report{}, err
	default:
	}
	if err := ctx.Err(); err != nil {
		releaseBuffers()
		return Report{}, err
	}

	for _, ws := range rep.PerWorker {
		rep.Pairs += ws.Pairs
	}
	for _, st := range partStats {
		rep.Sweep.Pairs += st.Pairs
		rep.Sweep.Comparisons += st.Comparisons
		if st.MaxLen > rep.Sweep.MaxLen {
			rep.Sweep.MaxLen = st.MaxLen
		}
		if st.MaxBytes > rep.Sweep.MaxBytes {
			rep.Sweep.MaxBytes = st.MaxBytes
		}
	}
	if collect {
		// Replay in deterministic partition order on the caller's
		// goroutine. The batch path hands each partition's pooled
		// buffer to the callback whole — one indirect call per
		// partition instead of one per pair — then recycles it.
		for i, buf := range buffers {
			if o.EmitBatch != nil {
				if len(buf) > 0 {
					o.EmitBatch(buf)
				}
			} else {
				for _, p := range buf {
					o.Emit(p)
				}
			}
			pairbuf.Put(buf)
			buffers[i] = nil
		}
	}
	rep.Wall = time.Since(start)
	return rep, nil
}

// sweepPartition sorts one partition's buckets and sweeps them,
// counting only the pairs this partition owns. It mutates the buckets
// in place (they are private to the partition) and fills the
// partition's stat and buffer slots; with collect set, the output
// buffer is borrowed from the pairbuf pool.
func sweepPartition(ctx context.Context, part *Partitioner, i int, ra, rb []geom.Record, o Options,
	stats *sweep.Stats, buffer *[]geom.Pair, collect bool) (int64, error) {
	sort.Slice(ra, func(x, y int) bool { return geom.ByLowerY(ra[x], ra[y]) < 0 })
	sort.Slice(rb, func(x, y int) bool { return geom.ByLowerY(rb[x], rb[y]) < 0 })
	stripe := part.Stripe(i)
	ownLo, ownHi := part.OwnerRange(i)
	var pairs int64
	var buf []geom.Pair
	if collect {
		buf = pairbuf.Get()
	}
	st, err := sweep.Join(ctx,
		sweep.NewSliceSource(ra), sweep.NewSliceSource(rb),
		o.newStructure(stripe), o.newStructure(stripe),
		func(x, y geom.Record) {
			// Reference-point test: the pair belongs to the stripe
			// containing the intersection's left edge.
			ref := x.Rect.XLo
			if y.Rect.XLo > ref {
				ref = y.Rect.XLo
			}
			if ref < ownLo || ref >= ownHi {
				return // this pair is owned by another stripe
			}
			pairs++
			if collect {
				buf = append(buf, geom.Pair{Left: x.ID, Right: y.ID})
			}
		})
	if err != nil {
		pairbuf.Put(buf)
		return 0, err
	}
	*stats = st
	if collect {
		*buffer = buf
	}
	return pairs, nil
}

// Serial is the single-threaded wall-clock baseline: the same window
// filtering, one sort of each side, and one plane sweep over the full
// universe — SSSJ's kernel without the simulated disk. The inputs are
// not modified; Emit (if set) is called in sweep order as pairs are
// found, and EmitBatch receives pooled batches in the same order.
func Serial(ctx context.Context, a, b []geom.Record, o Options) (Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if _, err := o.withDefaults(); err != nil {
		return Report{}, err
	}
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}
	start := time.Now()
	rep := Report{Workers: 1, Partitions: 1, Replication: 1}

	sa := append([]geom.Record(nil), filterWindow(a, o.Window)...)
	sb := append([]geom.Record(nil), filterWindow(b, o.Window)...)
	rep.InputRecords = int64(len(sa) + len(sb))
	rep.ReplicatedRecords = rep.InputRecords
	rep.MaxPartitionRecords = len(sa) + len(sb)
	rep.PartitionWall = time.Since(start)

	sweepStart := time.Now()
	sort.Slice(sa, func(x, y int) bool { return geom.ByLowerY(sa[x], sa[y]) < 0 })
	sort.Slice(sb, func(x, y int) bool { return geom.ByLowerY(sb[x], sb[y]) < 0 })
	strips := o.Strips
	if strips <= 0 {
		strips = sweep.DefaultStrips
	}
	mk := func() sweep.Structure {
		if o.UseForwardSweep {
			return sweep.NewForward()
		}
		return sweep.NewStripedFor(o.Universe, strips)
	}
	emit := o.Emit
	var bt *pairbuf.Batcher
	if o.EmitBatch != nil {
		bt = pairbuf.NewBatcher(o.EmitBatch)
		emit = bt.Emit
	}
	var sink func(x, y geom.Record)
	if emit != nil {
		sink = func(x, y geom.Record) { emit(geom.Pair{Left: x.ID, Right: y.ID}) }
	}
	st, sweepErr := sweep.Join(ctx,
		sweep.NewSliceSource(sa), sweep.NewSliceSource(sb), mk(), mk(), sink)
	if bt != nil {
		if sweepErr == nil {
			bt.Flush()
		}
		bt.Release()
	}
	if sweepErr != nil {
		return Report{}, sweepErr
	}
	rep.Pairs = st.Pairs
	rep.Sweep = st
	rep.SweepWall = time.Since(sweepStart)
	rep.Wall = time.Since(start)
	rep.PerWorker = []WorkerStats{{
		Partitions: 1,
		Records:    rep.InputRecords,
		Pairs:      rep.Pairs,
		Busy:       rep.SweepWall,
	}}
	return rep, nil
}
