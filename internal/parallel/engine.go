package parallel

import (
	"context"
	"sort"
	"sync"
	"time"

	"unijoin/internal/geom"
	"unijoin/internal/pairbuf"
	"unijoin/internal/sweep"
)

// Join computes all intersecting pairs between a and b on a worker
// pool, reporting wall-clock statistics. The inputs need not be
// sorted and are not modified; each result pair is produced exactly
// once (left component from a), regardless of how many stripes the
// pair's rectangles were replicated into.
//
// Both phases are parallel. The distribution prefix splits each input
// into per-worker chunks that are window-filtered, classified
// stripe-local vs boundary-crossing, and routed into private
// per-(worker, stripe) fragments with no locks, so
// Report.PartitionWall scales with Workers. The sweep phase drains
// the partitions on a worker pool; each partition concatenates its
// fragments, sorts, and sweeps, emitting local-member pairs with no
// ownership test (they can only be generated in one stripe) and
// testing boundary×boundary pairs against the stripe's reference-
// point range.
//
// The worker pool drains a partition channel and selects on
// ctx.Done(), so canceling the context stops every worker at its next
// partition boundary (and, through the sweep kernel's periodic
// checks, mid-partition too); the distribution workers poll ctx the
// same way. Join then returns ctx's error.
func Join(ctx context.Context, a, b []geom.Record, o Options) (Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o, err := o.withDefaults()
	if err != nil {
		return Report{}, err
	}
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}
	start := time.Now()
	rep := Report{Workers: o.Workers}

	var part *Partitioner
	if o.Window == nil && len(o.SortedSamples) > 0 {
		part = NewPartitionerFromSamples(o.Universe, o.Partitions, o.SortedSamples...)
	} else {
		part = NewPartitionerWindowed(o.Universe, o.Partitions, o.Window, a, b)
	}
	k := part.Partitions()
	rep.Partitions = k
	if o.Workers > k {
		rep.Workers = k
	}
	dist, err := distribute(ctx, part, a, b, o.Window, o.Workers)
	if err != nil {
		return Report{}, err
	}
	rep.InputRecords = dist.input
	rep.ReplicatedRecords = dist.replicated
	rep.LocalRecords = dist.local
	rep.BoundaryRecords = dist.boundary
	if rep.InputRecords > 0 {
		rep.Replication = float64(rep.ReplicatedRecords) / float64(rep.InputRecords)
	}
	for i := 0; i < k; i++ {
		if n := dist.sizeA[i] + dist.sizeB[i]; n > rep.MaxPartitionRecords {
			rep.MaxPartitionRecords = n
		}
	}
	rep.PartitionWall = time.Since(start)

	// The parallel phase. Workers drain the partition channel and
	// select on cancellation; every per-partition and per-worker slot
	// is owned by exactly one goroutine, so the collection needs no
	// locks.
	collect := o.Emit != nil || o.EmitBatch != nil
	buffers := make([][]geom.Pair, k)
	partStats := make([]sweep.Stats, k)
	noTest := make([]int64, k)
	rep.PerWorker = make([]WorkerStats, rep.Workers)
	work := make(chan int, k)
	for i := 0; i < k; i++ {
		work <- i
	}
	close(work)
	errs := make(chan error, rep.Workers)

	sweepStart := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < rep.Workers; w++ {
		wg.Add(1)
		go func(ws *WorkerStats) {
			defer wg.Done()
			for {
				var i int
				var ok bool
				select {
				case <-ctx.Done():
					return
				case i, ok = <-work:
					if !ok {
						return
					}
				}
				t0 := time.Now()
				pairs, err := sweepPartition(ctx, part, i, dist, o,
					&partStats[i], &noTest[i], &buffers[i], collect)
				if err != nil {
					errs <- err
					return
				}
				ws.Partitions++
				ws.Records += int64(dist.sizeA[i] + dist.sizeB[i])
				ws.Pairs += pairs
				ws.Busy += time.Since(t0)
			}
		}(&rep.PerWorker[w])
	}
	wg.Wait()
	rep.SweepWall = time.Since(sweepStart)
	releaseBuffers := func() {
		for i, buf := range buffers {
			if buf != nil {
				pairbuf.Put(buf)
				buffers[i] = nil
			}
		}
	}
	select {
	case err := <-errs:
		releaseBuffers()
		return Report{}, err
	default:
	}
	if err := ctx.Err(); err != nil {
		releaseBuffers()
		return Report{}, err
	}

	for _, ws := range rep.PerWorker {
		rep.Pairs += ws.Pairs
	}
	for _, n := range noTest {
		rep.NoTestPairs += n
	}
	for _, st := range partStats {
		rep.Sweep.Pairs += st.Pairs
		rep.Sweep.Comparisons += st.Comparisons
		if st.MaxLen > rep.Sweep.MaxLen {
			rep.Sweep.MaxLen = st.MaxLen
		}
		if st.MaxBytes > rep.Sweep.MaxBytes {
			rep.Sweep.MaxBytes = st.MaxBytes
		}
	}
	if collect {
		// Replay in deterministic partition order on the caller's
		// goroutine. The batch path hands each partition's pooled
		// buffer to the callback whole — one indirect call per
		// partition instead of one per pair — then recycles it.
		for i, buf := range buffers {
			if o.EmitBatch != nil {
				if len(buf) > 0 {
					o.EmitBatch(buf)
				}
			} else {
				for _, p := range buf {
					o.Emit(p)
				}
			}
			pairbuf.Put(buf)
			buffers[i] = nil
		}
	}
	rep.Wall = time.Since(start)
	return rep, nil
}

// sweepPartition reassembles one partition from its distribution
// fragments, sorts both sides, and sweeps them, counting only the
// pairs this partition owns: pairs with a stripe-local member are
// emitted with no ownership test (the two-layer fast path — a Local
// record exists in exactly one stripe, so the pair cannot be seen
// anywhere else), while boundary×boundary pairs pay the reference-
// point test against the stripe's owner range. It fills the
// partition's stat, no-test, and buffer slots; with collect set, the
// output buffer is borrowed from the pairbuf pool.
func sweepPartition(ctx context.Context, part *Partitioner, i int, dist *distribution, o Options,
	stats *sweep.Stats, noTest *int64, buffer *[]geom.Pair, collect bool) (int64, error) {
	fa, fb := dist.fragsFor(i)
	ra := concatFrags(fa, dist.sizeA[i])
	rb := concatFrags(fb, dist.sizeB[i])
	sort.Slice(ra, func(x, y int) bool { return geom.ByLowerY(ra[x], ra[y]) < 0 })
	sort.Slice(rb, func(x, y int) bool { return geom.ByLowerY(rb[x], rb[y]) < 0 })
	stripe := part.Stripe(i)
	ownLo, ownHi := part.OwnerRange(i)
	var pairs, skipped int64
	var buf []geom.Pair
	if collect {
		buf = pairbuf.Get()
	}
	st, err := sweep.Join(ctx,
		sweep.NewSliceSource(ra), sweep.NewSliceSource(rb),
		o.newStructure(stripe), o.newStructure(stripe),
		func(x, y geom.Record) {
			if !x.Local && !y.Local {
				// Both records cross stripe boundaries, so the pair
				// meets in several stripes; the reference-point test
				// — the pair belongs to the stripe containing the
				// intersection's left edge — keeps exactly one copy.
				ref := x.Rect.XLo
				if y.Rect.XLo > ref {
					ref = y.Rect.XLo
				}
				if ref < ownLo || ref >= ownHi {
					return // this pair is owned by another stripe
				}
			} else {
				skipped++
			}
			pairs++
			if collect {
				buf = append(buf, geom.Pair{Left: x.ID, Right: y.ID})
			}
		})
	if err != nil {
		pairbuf.Put(buf)
		return 0, err
	}
	*stats = st
	*noTest = skipped
	if collect {
		*buffer = buf
	}
	return pairs, nil
}

// Serial is the single-threaded wall-clock baseline: the same window
// filtering, one sort of each side, and one plane sweep over the full
// universe — SSSJ's kernel without the simulated disk. The inputs are
// not modified; Emit (if set) is called in sweep order as pairs are
// found, and EmitBatch receives pooled batches in the same order.
//
// Serial's report mirrors Join's accounting for the degenerate
// one-stripe case: every record is local to the single partition and
// every pair is emitted without an ownership test, so LocalRecords
// equals InputRecords and NoTestPairs equals Pairs. Replication is 1
// for non-empty inputs and 0 for empty ones, as documented on Report.
func Serial(ctx context.Context, a, b []geom.Record, o Options) (Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o, err := o.withDefaults()
	if err != nil {
		return Report{}, err
	}
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}
	start := time.Now()
	rep := Report{Workers: 1, Partitions: 1}

	sa := append([]geom.Record(nil), filterWindow(a, o.Window)...)
	sb := append([]geom.Record(nil), filterWindow(b, o.Window)...)
	rep.InputRecords = int64(len(sa) + len(sb))
	rep.ReplicatedRecords = rep.InputRecords
	rep.LocalRecords = rep.InputRecords
	if rep.InputRecords > 0 {
		rep.Replication = 1
	}
	rep.MaxPartitionRecords = len(sa) + len(sb)
	rep.PartitionWall = time.Since(start)

	sweepStart := time.Now()
	sort.Slice(sa, func(x, y int) bool { return geom.ByLowerY(sa[x], sa[y]) < 0 })
	sort.Slice(sb, func(x, y int) bool { return geom.ByLowerY(sb[x], sb[y]) < 0 })
	mk := func() sweep.Structure {
		if o.UseForwardSweep {
			return sweep.NewForward()
		}
		strips := o.Strips
		if strips <= 0 {
			strips = sweep.DefaultStrips
		}
		return sweep.NewStripedFor(o.Universe, strips)
	}
	emit := o.Emit
	var bt *pairbuf.Batcher
	if o.EmitBatch != nil {
		bt = pairbuf.NewBatcher(o.EmitBatch)
		emit = bt.Emit
	}
	var sink func(x, y geom.Record)
	if emit != nil {
		sink = func(x, y geom.Record) { emit(geom.Pair{Left: x.ID, Right: y.ID}) }
	}
	st, sweepErr := sweep.Join(ctx,
		sweep.NewSliceSource(sa), sweep.NewSliceSource(sb), mk(), mk(), sink)
	if bt != nil {
		if sweepErr == nil {
			bt.Flush()
		}
		bt.Release()
	}
	if sweepErr != nil {
		return Report{}, sweepErr
	}
	rep.Pairs = st.Pairs
	rep.NoTestPairs = st.Pairs
	rep.Sweep = st
	rep.SweepWall = time.Since(sweepStart)
	rep.Wall = time.Since(start)
	rep.PerWorker = []WorkerStats{{
		Partitions: 1,
		Records:    rep.InputRecords,
		Pairs:      rep.Pairs,
		Busy:       rep.SweepWall,
	}}
	return rep, nil
}
