// Package parallel is the multicore, in-memory execution engine for
// the filter step: it partitions the universe into vertical stripes,
// runs the plane-sweep kernel of internal/sweep over each stripe on
// its own goroutine, and reports wall-clock time instead of simulated
// I/O counts.
//
// Where the rest of the repository reproduces the EDBT 2000 paper's
// external-memory apparatus — algorithms measured in simulated page
// accesses — this package follows the in-memory line of work that
// succeeded it: "Parallel In-Memory Evaluation of Spatial Joins"
// (Tsitsigkos and Mamoulis, SIGSPATIAL 2019) showed that partitioned
// plane-sweep with cheap per-partition duplicate avoidance scales
// near-linearly on multicore hardware, and "Two-layer Space-oriented
// Partitioning for Non-point Data" (Tsitsigkos et al., 2023) refined
// the duplicate-elimination trick. The design here:
//
//   - The universe is cut into K stripes along x. Stripe boundaries
//     are sample quantiles of the records' x-centers (deduplicated so
//     they are strictly increasing), so clustered inputs (TIGER-like
//     cities) still split into balanced pieces.
//   - Distribution itself is parallel: each input is split into
//     per-worker chunks, and each worker window-filters and routes
//     its chunk into private per-(worker, stripe) fragments with no
//     locks, so the prefix ahead of the sweep scales with the worker
//     count instead of being an Amdahl floor. Fragments are
//     concatenated per partition by the worker that sweeps it.
//   - Distribution is two-layer (following Tsitsigkos et al. 2023):
//     a record whose x-interval lies inside one stripe is tagged
//     stripe-local; only records crossing a boundary are replicated
//     into every stripe they overlap. A pair with a local member can
//     be generated in exactly one stripe and is emitted with no
//     per-pair test at all — the dominant class on realistic data —
//     while boundary×boundary pairs are reported only in the stripe
//     containing their reference point, the lower-x corner of the
//     pairwise intersection. Either way every result is emitted
//     exactly once with no cross-partition coordination.
//   - A worker pool of Options.Workers goroutines drains the K
//     partitions dynamically (K defaults to several partitions per
//     worker, so a dense stripe does not straggle the join). Each
//     partition is sorted by lower y and swept with the same
//     Striped-/Forward-Sweep structures the serial algorithms use.
//   - Results are collected without locks: each worker owns a counter
//     shard and each partition owns a pooled output buffer, merged
//     after the pool drains. With Options.Emit (or the batched
//     Options.EmitBatch) set, pairs are replayed to the callback in
//     deterministic partition-then-sweep order on the calling
//     goroutine, so callbacks need not be thread-safe.
//   - Both entry points take a context.Context: workers select on
//     ctx.Done() between partitions and the sweep kernel polls it
//     within one, so a canceled query stops promptly and returns the
//     context's error.
//
// The entry points are Join (parallel) and Serial (the single-threaded
// sort-and-sweep over the same records, the wall-clock baseline the
// benchmarks compare against).
package parallel

import (
	"fmt"
	"runtime"
	"time"

	"unijoin/internal/geom"
	"unijoin/internal/sweep"
)

// DefaultStripsPerPartition is the striped-sweep resolution used
// inside each partition when Options.Strips is zero. Partitions cover
// a fraction of the x-axis, so they need proportionally fewer strips
// than the serial sweep's global structure.
const DefaultStripsPerPartition = 64

// partitionsPerWorker is the default oversubscription factor: more
// partitions than workers lets the pool rebalance around dense stripes.
const partitionsPerWorker = 4

// Options configures a parallel join. The zero value of every field
// except Universe has a sensible default.
type Options struct {
	// Universe bounds the data of both inputs; it anchors the stripe
	// boundaries and the per-partition sweep structures. Required.
	Universe geom.Rect

	// Workers is the number of sweep goroutines (default
	// runtime.GOMAXPROCS(0)).
	Workers int
	// Partitions is the stripe count K (default 4 per worker, so the
	// pool can rebalance around dense stripes; minimum Workers).
	Partitions int

	// Strips is the striped-sweep strip count. When zero, Join uses
	// DefaultStripsPerPartition per stripe and Serial uses
	// sweep.DefaultStrips for its single global sweep. Ignored with
	// UseForwardSweep.
	Strips int
	// UseForwardSweep switches the per-partition kernel to the
	// Forward-Sweep structure (same ablation knob as the serial path).
	UseForwardSweep bool

	// Window restricts the join to records intersecting this
	// rectangle on both sides, matching the serial algorithms'
	// Options.Window semantics.
	Window *geom.Rect

	// SortedSamples, when non-empty, supplies pre-sorted x-center
	// samples (one per input, from SortedCenterSample) so the join
	// skips the serial quantile sample sort of its partitioning
	// prefix — the reuse path for stable catalog relations whose
	// samples are cached across queries. Ignored when Window is set:
	// a windowed join must sample only the qualifying records, which
	// a whole-relation cache cannot know.
	SortedSamples [][]geom.Coord

	// Emit receives every result pair after the parallel phase, in
	// deterministic partition-then-sweep order on the calling
	// goroutine; nil counts pairs only. Buffering the pairs costs
	// memory proportional to the output, so leave Emit nil when only
	// counts are needed.
	Emit func(geom.Pair)
	// EmitBatch is the batched alternative to Emit: it receives the
	// result pairs as slices (each partition's pooled output buffer in
	// Join, pairbuf.BatchSize batches in Serial), in the same
	// deterministic order on the calling goroutine. The slice is
	// recycled after the call returns, so callers must copy pairs they
	// retain. At most one of Emit and EmitBatch may be set.
	EmitBatch func([]geom.Pair)
}

// withDefaults validates and fills in defaults.
func (o Options) withDefaults() (Options, error) {
	if !o.Universe.Valid() {
		return o, fmt.Errorf("parallel: Options.Universe %v is invalid", o.Universe)
	}
	if o.Emit != nil && o.EmitBatch != nil {
		return o, fmt.Errorf("parallel: Options.Emit and Options.EmitBatch are mutually exclusive")
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Partitions <= 0 {
		o.Partitions = o.Workers * partitionsPerWorker
	}
	if o.Partitions < o.Workers {
		o.Partitions = o.Workers
	}
	return o, nil
}

// newStructure builds the configured sweep structure for one stripe.
func (o Options) newStructure(stripe geom.Rect) sweep.Structure {
	if o.UseForwardSweep {
		return sweep.NewForward()
	}
	strips := o.Strips
	if strips <= 0 {
		strips = DefaultStripsPerPartition
	}
	return sweep.NewStriped(stripe.XLo, stripe.XHi, strips)
}

// WorkerStats reports what one worker goroutine did.
type WorkerStats struct {
	// Partitions is the number of partitions this worker swept.
	Partitions int
	// Records is the number of (replicated) records it sorted and swept.
	Records int64
	// Pairs is its shard of the result count.
	Pairs int64
	// Busy is the time it spent sorting and sweeping (its share of the
	// parallel phase; compare against Report.SweepWall for utilization).
	Busy time.Duration
}

// Report is the outcome of a parallel (or Serial baseline) join,
// measured in wall-clock time on the host.
type Report struct {
	// Pairs is the number of distinct intersecting pairs.
	Pairs int64

	// Workers and Partitions echo the resolved options (Workers is 1
	// and Partitions 1 for Serial).
	Workers    int
	Partitions int

	// InputRecords counts both sides after window filtering;
	// ReplicatedRecords counts them after stripe replication.
	// Replication is their ratio (>= 1; 0 for empty inputs).
	InputRecords      int64
	ReplicatedRecords int64
	Replication       float64
	// LocalRecords and BoundaryRecords split InputRecords by the
	// two-layer classification: local records lie inside a single
	// stripe (and are never replicated), boundary records cross at
	// least one stripe boundary. Serial counts every record local —
	// its single partition is the whole universe.
	LocalRecords    int64
	BoundaryRecords int64
	// NoTestPairs is how many of Pairs were emitted through the
	// two-layer fast path, with no reference-point ownership test (at
	// least one member of the pair was stripe-local). The remainder,
	// Pairs - NoTestPairs, are boundary×boundary pairs that paid the
	// test. Serial emits every pair untested.
	NoTestPairs int64
	// MaxPartitionRecords is the largest partition's record count
	// (both sides), the load-balance indicator.
	MaxPartitionRecords int

	// Wall is the end-to-end time: partitioning, the parallel sweep,
	// and the result merge. PartitionWall covers the whole prefix
	// ahead of the sweep: the boundary estimation (a serial quantile
	// sort of at most a few thousand sampled centers per input) plus
	// the chunked parallel window-filter + classify + distribute
	// phase, which scales with Workers. SweepWall covers the parallel
	// sort-and-sweep phase.
	Wall          time.Duration
	PartitionWall time.Duration
	SweepWall     time.Duration

	// Sweep aggregates the kernel statistics across partitions:
	// Comparisons and Pairs are summed (Pairs counts kernel
	// candidates, so it exceeds Report.Pairs when replication made a
	// pair meet in several stripes); MaxLen and MaxBytes are the peak
	// in any one partition.
	Sweep sweep.Stats

	// PerWorker holds one entry per worker goroutine.
	PerWorker []WorkerStats
}

// Speedup returns the ratio of a baseline wall time to this report's
// wall time (e.g. Serial's Wall over a parallel run's Wall).
func (r Report) Speedup(baseline Report) float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(baseline.Wall) / float64(r.Wall)
}

// LocalFraction returns the share of input records classified
// stripe-local (0 for empty inputs).
func (r Report) LocalFraction() float64 {
	if r.InputRecords <= 0 {
		return 0
	}
	return float64(r.LocalRecords) / float64(r.InputRecords)
}

// NoTestFraction returns the share of result pairs emitted without
// the reference-point test (0 for empty results).
func (r Report) NoTestFraction() float64 {
	if r.Pairs <= 0 {
		return 0
	}
	return float64(r.NoTestPairs) / float64(r.Pairs)
}

// String implements fmt.Stringer.
func (r Report) String() string {
	return fmt.Sprintf("parallel: %d pairs, %d workers x %d partitions, wall %v (partition %v, sweep %v), repl %.3f, local %.1f%%, no-test %.1f%%",
		r.Pairs, r.Workers, r.Partitions, r.Wall, r.PartitionWall, r.SweepWall, r.Replication,
		100*r.LocalFraction(), 100*r.NoTestFraction())
}

// filterWindow returns the records intersecting w, reusing the input
// slice when no filtering is needed.
func filterWindow(recs []geom.Record, w *geom.Rect) []geom.Record {
	if w == nil {
		return recs
	}
	out := make([]geom.Record, 0, len(recs))
	for _, r := range recs {
		if r.Rect.Intersects(*w) {
			out = append(out, r)
		}
	}
	return out
}
