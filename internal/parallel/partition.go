package parallel

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"unijoin/internal/geom"
)

// sampleMax bounds the per-input sample used to place stripe
// boundaries. Quantiles of a few thousand centers locate the
// population clusters of TIGER-like data closely enough to balance
// partitions within a few percent.
const sampleMax = 4096

// Partitioner cuts the universe into K vertical stripes. Boundaries
// are quantiles of sampled record x-centers, so skewed inputs still
// produce balanced stripes; with no sample the stripes are equal
// width. Stripe membership clamps: everything left of the first
// boundary belongs to stripe 0 and everything right of the last to
// stripe K-1, so records straying outside the universe stay correct.
//
// Boundaries are strictly increasing: duplicate quantiles (heavily
// clustered duplicate x-centers put the same value at several
// quantile positions) are collapsed, so the partitioner may resolve
// fewer stripes than requested but never produces a degenerate empty
// stripe or a zero-width OwnerRange interval.
type Partitioner struct {
	universe geom.Rect
	// bounds holds the internal boundaries in strictly increasing
	// order; stripe i covers [bounds[i-1], bounds[i]).
	bounds []geom.Coord
}

// NewPartitioner builds a partitioner of at most k stripes over the
// universe, placing boundaries at x-center quantiles of the given
// inputs. It is NewPartitionerWindowed with no window.
func NewPartitioner(universe geom.Rect, k int, inputs ...[]geom.Record) *Partitioner {
	return NewPartitionerWindowed(universe, k, nil, inputs...)
}

// NewPartitionerWindowed is NewPartitioner with the join's window
// predicate applied while sampling: records that a windowed join will
// filter out do not vote on boundary placement, so the stripes
// balance the records the join actually sweeps.
func NewPartitionerWindowed(universe geom.Rect, k int, window *geom.Rect, inputs ...[]geom.Record) *Partitioner {
	var sample []geom.Coord
	if k > 1 {
		for _, in := range inputs {
			sample = appendCenterSample(sample, in, window)
		}
		slices.Sort(sample)
	}
	return newPartitionerSorted(universe, k, sample)
}

// NewPartitionerFromSamples builds a partitioner from pre-sorted
// x-center samples (one per input, each as produced by
// SortedCenterSample). It computes the same boundaries as
// NewPartitioner over the sampled inputs, but replaces the serial
// O(n log n) sample sort with a linear merge of the already-sorted
// samples — the fast path for a catalog relation whose sample is
// cached across queries.
func NewPartitionerFromSamples(universe geom.Rect, k int, samples ...[]geom.Coord) *Partitioner {
	var merged []geom.Coord
	if k > 1 {
		switch len(samples) {
		case 0:
		case 1:
			merged = samples[0]
		default:
			merged = samples[0]
			for _, s := range samples[1:] {
				merged = mergeSorted(merged, s)
			}
		}
	}
	return newPartitionerSorted(universe, k, merged)
}

// PartitionerFromBoundaries builds a partitioner directly from
// internal stripe boundaries (finite and strictly increasing, as
// returned by Boundaries) — the constructor a shard uses to
// reconstruct the partitioning a planner computed elsewhere. Unlike
// the sampling constructors, the boundaries here come from
// configuration, so they are validated: a NaN would otherwise slip
// through an ordering check (every comparison with NaN is false) and
// silently collapse stripes.
func PartitionerFromBoundaries(universe geom.Rect, bounds []geom.Coord) (*Partitioner, error) {
	for i, b := range bounds {
		if math.IsNaN(float64(b)) || math.IsInf(float64(b), 0) {
			return nil, fmt.Errorf("parallel: boundary %d is not finite in %v", i, bounds)
		}
		if i > 0 && b <= bounds[i-1] {
			return nil, fmt.Errorf("parallel: boundaries must be strictly increasing, got %v", bounds)
		}
	}
	return &Partitioner{universe: universe, bounds: slices.Clone(bounds)}, nil
}

// newPartitionerSorted places k-1 boundaries at the quantiles of an
// already-sorted sample, the shared tail of every constructor.
func newPartitionerSorted(universe geom.Rect, k int, sample []geom.Coord) *Partitioner {
	if k < 1 {
		k = 1
	}
	p := &Partitioner{universe: universe}
	if k == 1 {
		return p
	}
	if len(sample) < k {
		// Too little data to estimate quantiles: equal-width stripes.
		w := float64(universe.Width()) / float64(k)
		if w <= 0 {
			// Degenerate universe: one stripe holds everything.
			return p
		}
		for i := 1; i < k; i++ {
			p.bounds = append(p.bounds, universe.XLo+geom.Coord(float64(i)*w))
		}
		p.dedup(universe.XLo)
		return p
	}
	for i := 1; i < k; i++ {
		p.bounds = append(p.bounds, sample[i*len(sample)/k])
	}
	p.dedup(sample[0])
	return p
}

// SortedCenterSample returns a sorted sample of up to ~sampleMax
// record x-centers, the per-input ingredient NewPartitionerFromSamples
// merges. Sampling strides the input exactly as NewPartitioner does,
// so boundaries computed from cached samples match boundaries computed
// from the records directly.
func SortedCenterSample(recs []geom.Record) []geom.Coord {
	sample := appendCenterSample(nil, recs, nil)
	slices.Sort(sample)
	return sample
}

// MergeSamples merges two sorted x-center samples (each as produced
// by SortedCenterSample or a previous MergeSamples) into one sorted
// sample, decimating evenly when the merge exceeds the sample bound —
// the incremental maintenance step behind live ingestion: a mutable
// relation's cached sample absorbs each append's centers by linear
// merge instead of re-sampling and re-sorting the whole relation, so
// stripe boundaries keep tracking the data as it arrives. Decimation
// keeps every 2nd element, preserving the even spread that makes
// quantiles of the sample track quantiles of the population.
func MergeSamples(a, b []geom.Coord) []geom.Coord {
	merged := mergeSorted(a, b)
	for len(merged) > 2*sampleMax {
		half := merged[:0]
		for i := 0; i < len(merged); i += 2 {
			half = append(half, merged[i])
		}
		merged = half
	}
	return merged
}

// mergeSorted merges two sorted coordinate slices into a fresh sorted
// slice in linear time.
func mergeSorted(a, b []geom.Coord) []geom.Coord {
	out := make([]geom.Coord, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// appendCenterSample appends up to ~sampleMax x-centers of one input
// to sample. With no window it strides the input directly. With a
// window it streams the qualifying records, decimating the collected
// sample (and doubling the keep stride) whenever it reaches
// 2*sampleMax: a selective window then still contributes a full-size,
// evenly spread sample of the records the join will actually sweep,
// where a blind stride applied before the window test would leave
// only a handful of survivors and collapse the quantiles to the
// equal-width fallback.
func appendCenterSample(sample []geom.Coord, in []geom.Record, window *geom.Rect) []geom.Coord {
	center := func(c geom.Rect) geom.Coord { return c.XLo + (c.XHi-c.XLo)/2 }
	if window == nil {
		step := 1
		if len(in) > sampleMax {
			step = len(in) / sampleMax
		}
		for i := 0; i < len(in); i += step {
			sample = append(sample, center(in[i].Rect))
		}
		return sample
	}
	own := make([]geom.Coord, 0, min(len(in), 2*sampleMax))
	keep, seen := 1, 0
	for _, r := range in {
		if !r.Rect.Intersects(*window) {
			continue
		}
		if seen%keep == 0 {
			own = append(own, center(r.Rect))
			if len(own) == 2*sampleMax {
				for j := 0; j < sampleMax; j++ {
					own[j] = own[2*j]
				}
				own = own[:sampleMax]
				keep *= 2
			}
		}
		seen++
	}
	return append(sample, own...)
}

// dedup collapses boundaries so bounds is strictly increasing and
// strictly above floor (the minimum sampled center, so stripe 0 is
// never an empty sliver). Duplicate quantiles — heavily clustered
// duplicate x-centers land the same value on several quantile
// positions — would otherwise yield empty stripes whose OwnerRange is
// a zero-width interval owning no reference point.
func (p *Partitioner) dedup(floor geom.Coord) {
	out := p.bounds[:0]
	for _, b := range p.bounds {
		if b > floor && (len(out) == 0 || b > out[len(out)-1]) {
			out = append(out, b)
		}
	}
	p.bounds = out
}

// Partitions returns the stripe count K.
func (p *Partitioner) Partitions() int { return len(p.bounds) + 1 }

// Boundaries returns a copy of the K-1 internal stripe boundaries in
// strictly increasing order (empty for a single stripe) — the portable
// description of this partitioning that a shard planner distributes.
func (p *Partitioner) Boundaries() []geom.Coord { return slices.Clone(p.bounds) }

// Of returns the stripe owning x: the unique i with
// bounds[i-1] <= x < bounds[i], clamped into [0, K-1].
func (p *Partitioner) Of(x geom.Coord) int {
	return sort.Search(len(p.bounds), func(i int) bool { return x < p.bounds[i] })
}

// Range returns the stripe indexes a record's x-interval overlaps.
func (p *Partitioner) Range(r geom.Rect) (first, last int) {
	return p.Of(r.XLo), p.Of(r.XHi)
}

// Owner returns the stripe that must report the pair (a, b): the one
// containing the pair's reference point, the lower-x corner of the
// intersection (max of the two left edges). Both rectangles overlap
// that stripe, so the pair is guaranteed to meet there and nowhere
// else is allowed to report it.
func (p *Partitioner) Owner(a, b geom.Rect) int {
	left := a.XLo
	if b.XLo > left {
		left = b.XLo
	}
	return p.Of(left)
}

// OwnerRange returns the half-open interval [lo, hi) of reference
// points stripe i owns, with infinite sentinels on the boundary
// stripes so the clamping of Of is preserved. The sweep emit path
// tests pair ownership against these two values instead of paying a
// binary search per candidate pair.
func (p *Partitioner) OwnerRange(i int) (lo, hi geom.Coord) {
	lo = geom.Coord(math.Inf(-1))
	hi = geom.Coord(math.Inf(1))
	if i > 0 {
		lo = p.bounds[i-1]
	}
	if i < len(p.bounds) {
		hi = p.bounds[i]
	}
	return lo, hi
}

// Stripe returns stripe i's rectangle: its x-slice of the universe
// (full universe height). Boundary stripes extend to the universe
// edges.
func (p *Partitioner) Stripe(i int) geom.Rect {
	lo, hi := p.universe.XLo, p.universe.XHi
	if i > 0 {
		lo = p.bounds[i-1]
	}
	if i < len(p.bounds) {
		hi = p.bounds[i]
	}
	if hi < lo {
		hi = lo
	}
	return geom.Rect{XLo: lo, YLo: p.universe.YLo, XHi: hi, YHi: p.universe.YHi}
}

// Distribute appends every record to each stripe bucket its x-interval
// overlaps, tagging records that land in exactly one stripe as Local
// (the two-layer classification the sweep's no-test emit path relies
// on), and returns the number of placements (>= len(recs)). buckets
// must have length Partitions(). It is the serial reference for the
// engine's chunked parallel distribution (see distribute).
func (p *Partitioner) Distribute(recs []geom.Record, buckets [][]geom.Record) int64 {
	var placed int64
	for _, r := range recs {
		first, last := p.Range(r.Rect)
		if first == last {
			r.Local = true
			buckets[first] = append(buckets[first], r)
			placed++
			continue
		}
		r.Local = false
		for i := first; i <= last; i++ {
			buckets[i] = append(buckets[i], r)
		}
		placed += int64(last - first + 1)
	}
	return placed
}
