package parallel

import (
	"math"
	"sort"

	"unijoin/internal/geom"
)

// sampleMax bounds the per-input sample used to place stripe
// boundaries. Quantiles of a few thousand centers locate the
// population clusters of TIGER-like data closely enough to balance
// partitions within a few percent.
const sampleMax = 4096

// Partitioner cuts the universe into K vertical stripes. Boundaries
// are quantiles of sampled record x-centers, so skewed inputs still
// produce balanced stripes; with no sample the stripes are equal
// width. Stripe membership clamps: everything left of the first
// boundary belongs to stripe 0 and everything right of the last to
// stripe K-1, so records straying outside the universe stay correct.
type Partitioner struct {
	universe geom.Rect
	// bounds holds the K-1 internal boundaries in nondecreasing
	// order; stripe i covers [bounds[i-1], bounds[i]).
	bounds []geom.Coord
}

// NewPartitioner builds a K-stripe partitioner over the universe,
// placing boundaries at x-center quantiles of the given inputs.
func NewPartitioner(universe geom.Rect, k int, inputs ...[]geom.Record) *Partitioner {
	if k < 1 {
		k = 1
	}
	p := &Partitioner{universe: universe}
	if k == 1 {
		return p
	}
	var sample []geom.Coord
	for _, in := range inputs {
		step := 1
		if len(in) > sampleMax {
			step = len(in) / sampleMax
		}
		for i := 0; i < len(in); i += step {
			c := in[i].Rect
			sample = append(sample, c.XLo+(c.XHi-c.XLo)/2)
		}
	}
	if len(sample) < k {
		// Too little data to estimate quantiles: equal-width stripes.
		w := float64(universe.Width()) / float64(k)
		if w <= 0 {
			// Degenerate universe: one stripe holds everything.
			return p
		}
		for i := 1; i < k; i++ {
			p.bounds = append(p.bounds, universe.XLo+geom.Coord(float64(i)*w))
		}
		return p
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	for i := 1; i < k; i++ {
		p.bounds = append(p.bounds, sample[i*len(sample)/k])
	}
	return p
}

// Partitions returns the stripe count K.
func (p *Partitioner) Partitions() int { return len(p.bounds) + 1 }

// Of returns the stripe owning x: the unique i with
// bounds[i-1] <= x < bounds[i], clamped into [0, K-1].
func (p *Partitioner) Of(x geom.Coord) int {
	return sort.Search(len(p.bounds), func(i int) bool { return x < p.bounds[i] })
}

// Range returns the stripe indexes a record's x-interval overlaps.
func (p *Partitioner) Range(r geom.Rect) (first, last int) {
	return p.Of(r.XLo), p.Of(r.XHi)
}

// Owner returns the stripe that must report the pair (a, b): the one
// containing the pair's reference point, the lower-x corner of the
// intersection (max of the two left edges). Both rectangles overlap
// that stripe, so the pair is guaranteed to meet there and nowhere
// else is allowed to report it.
func (p *Partitioner) Owner(a, b geom.Rect) int {
	left := a.XLo
	if b.XLo > left {
		left = b.XLo
	}
	return p.Of(left)
}

// OwnerRange returns the half-open interval [lo, hi) of reference
// points stripe i owns, with infinite sentinels on the boundary
// stripes so the clamping of Of is preserved. The sweep emit path
// tests pair ownership against these two values instead of paying a
// binary search per candidate pair.
func (p *Partitioner) OwnerRange(i int) (lo, hi geom.Coord) {
	lo = geom.Coord(math.Inf(-1))
	hi = geom.Coord(math.Inf(1))
	if i > 0 {
		lo = p.bounds[i-1]
	}
	if i < len(p.bounds) {
		hi = p.bounds[i]
	}
	return lo, hi
}

// Stripe returns stripe i's rectangle: its x-slice of the universe
// (full universe height). Boundary stripes extend to the universe
// edges.
func (p *Partitioner) Stripe(i int) geom.Rect {
	lo, hi := p.universe.XLo, p.universe.XHi
	if i > 0 {
		lo = p.bounds[i-1]
	}
	if i < len(p.bounds) {
		hi = p.bounds[i]
	}
	if hi < lo {
		hi = lo
	}
	return geom.Rect{XLo: lo, YLo: p.universe.YLo, XHi: hi, YHi: p.universe.YHi}
}

// Distribute appends every record to each stripe bucket its x-interval
// overlaps and returns the number of placements (>= len(recs)).
// buckets must have length Partitions().
func (p *Partitioner) Distribute(recs []geom.Record, buckets [][]geom.Record) int64 {
	var placed int64
	for _, r := range recs {
		first, last := p.Range(r.Rect)
		for i := first; i <= last; i++ {
			buckets[i] = append(buckets[i], r)
		}
		placed += int64(last - first + 1)
	}
	return placed
}
