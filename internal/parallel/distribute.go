package parallel

import (
	"context"
	"sync"

	"unijoin/internal/geom"
)

// distCheckInterval is how many records a distribution worker
// classifies between context checks, mirroring the sweep kernel's
// cancellation granularity. Must be a power of two.
const distCheckInterval = 8192

// distSerialCutoff is the input size below which distribution runs
// inline: spawning goroutines for a few thousand records costs more
// than the classification itself.
const distSerialCutoff = 4096

// stripeFrags is one worker's private per-stripe output: fragment f
// of stripe i holds the records worker f routed there, in input
// order.
type stripeFrags struct {
	a, b [][]geom.Record
}

// distribution is the outcome of the two-layer parallel distribution
// prefix: both inputs window-filtered, classified stripe-local vs
// boundary-crossing, and routed into per-(worker, stripe) fragments.
//
// Fragments deliberately stay unconcatenated: each partition's sweep
// concatenates its own fragments on the worker that sweeps it, so the
// copy is part of the parallel sweep phase instead of a serial
// barrier. Worker w owns the w-th contiguous chunk of each input, so
// reading fragments in worker order reproduces the input order
// exactly — the distribution is deterministic and independent of the
// worker count.
type distribution struct {
	frags []stripeFrags // one per worker
	// sizeA/sizeB are per-stripe totals across fragments (replicated
	// records each side).
	sizeA, sizeB []int

	input      int64 // records passing the window, both sides
	replicated int64 // stripe placements, both sides
	local      int64 // records contained in a single stripe
	boundary   int64 // records crossing at least one stripe boundary
}

// fragsFor returns partition i's fragments for both sides, in worker
// order.
func (d *distribution) fragsFor(i int) (fa, fb [][]geom.Record) {
	fa = make([][]geom.Record, 0, len(d.frags))
	fb = make([][]geom.Record, 0, len(d.frags))
	for w := range d.frags {
		if f := d.frags[w].a[i]; len(f) > 0 {
			fa = append(fa, f)
		}
		if f := d.frags[w].b[i]; len(f) > 0 {
			fb = append(fb, f)
		}
	}
	return fa, fb
}

// distCounters is one worker's private tally, merged after the
// distribution barrier.
type distCounters struct {
	input, replicated, local, boundary int64
}

// distributeChunk window-filters and classifies one contiguous chunk
// of an input, appending into the worker's private buckets. Records
// whose x-interval lies inside one stripe are tagged Local; crossing
// records are replicated untagged into every stripe they overlap.
// It checks ctx every distCheckInterval records.
func distributeChunk(ctx context.Context, part *Partitioner, recs []geom.Record,
	window *geom.Rect, buckets [][]geom.Record, c *distCounters) error {
	for n, r := range recs {
		if n&(distCheckInterval-1) == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if window != nil && !r.Rect.Intersects(*window) {
			continue
		}
		c.input++
		first, last := part.Range(r.Rect)
		if first == last {
			r.Local = true
			buckets[first] = append(buckets[first], r)
			c.local++
			c.replicated++
			continue
		}
		r.Local = false
		for i := first; i <= last; i++ {
			buckets[i] = append(buckets[i], r)
		}
		c.boundary++
		c.replicated += int64(last - first + 1)
	}
	return nil
}

// chunk returns the w-th of nw contiguous chunks of a slice of length
// n, the static split distribution workers own.
func chunk(n, w, nw int) (lo, hi int) {
	return n * w / nw, n * (w + 1) / nw
}

// distribute runs the two-layer distribution prefix of the parallel
// join: nw workers each filter, classify, and route their private
// chunk of both inputs into per-(worker, stripe) fragments — no
// shared state, no locks — then the per-worker counters are summed.
// With one worker or tiny inputs everything runs inline on the
// calling goroutine.
func distribute(ctx context.Context, part *Partitioner, a, b []geom.Record, window *geom.Rect, nw int) (*distribution, error) {
	k := part.Partitions()
	if len(a)+len(b) < distSerialCutoff {
		nw = 1
	}
	if nw < 1 {
		nw = 1
	}
	d := &distribution{
		frags: make([]stripeFrags, nw),
		sizeA: make([]int, k),
		sizeB: make([]int, k),
	}
	counters := make([]distCounters, nw)
	errs := make([]error, nw)
	run := func(w int) {
		d.frags[w] = stripeFrags{
			a: make([][]geom.Record, k),
			b: make([][]geom.Record, k),
		}
		alo, ahi := chunk(len(a), w, nw)
		blo, bhi := chunk(len(b), w, nw)
		if err := distributeChunk(ctx, part, a[alo:ahi], window, d.frags[w].a, &counters[w]); err != nil {
			errs[w] = err
			return
		}
		errs[w] = distributeChunk(ctx, part, b[blo:bhi], window, d.frags[w].b, &counters[w])
	}
	if nw == 1 {
		run(0)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				run(w)
			}(w)
		}
		wg.Wait()
	}
	for w := 0; w < nw; w++ {
		if errs[w] != nil {
			return nil, errs[w]
		}
		d.input += counters[w].input
		d.replicated += counters[w].replicated
		d.local += counters[w].local
		d.boundary += counters[w].boundary
		for i := 0; i < k; i++ {
			d.sizeA[i] += len(d.frags[w].a[i])
			d.sizeB[i] += len(d.frags[w].b[i])
		}
	}
	return d, nil
}

// concatFrags copies fragments, in order, into one right-sized slice
// — the per-partition reassembly the sweep worker performs before
// sorting.
func concatFrags(frags [][]geom.Record, n int) []geom.Record {
	out := make([]geom.Record, 0, n)
	for _, f := range frags {
		out = append(out, f...)
	}
	return out
}
