package parallel

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"unijoin/internal/datagen"
	"unijoin/internal/geom"
)

var universe = geom.NewRect(0, 0, 1000, 1000)

// clustered generates TIGER-like skewed inputs sharing one terrain.
func clustered(seed int64, nRoads, nHydro int) (roads, hydro []geom.Record) {
	t := datagen.NewTerrain(seed, universe, 12)
	return datagen.Roads(t, seed+1, nRoads, datagen.RoadParams{}),
		datagen.Hydro(t, seed+2, nHydro, datagen.HydroParams{})
}

func brute(a, b []geom.Record) map[geom.Pair]bool {
	out := map[geom.Pair]bool{}
	for _, ra := range a {
		for _, rb := range b {
			if ra.Rect.Intersects(rb.Rect) {
				out[geom.Pair{Left: ra.ID, Right: rb.ID}] = true
			}
		}
	}
	return out
}

func collectPairs(t *testing.T, a, b []geom.Record, o Options) (Report, map[geom.Pair]bool) {
	t.Helper()
	got := map[geom.Pair]bool{}
	o.Emit = func(p geom.Pair) {
		if got[p] {
			t.Fatalf("pair %v emitted twice", p)
		}
		got[p] = true
	}
	rep, err := Join(context.Background(), a, b, o)
	if err != nil {
		t.Fatal(err)
	}
	return rep, got
}

func TestJoinMatchesBruteForce(t *testing.T) {
	workloads := map[string]func() ([]geom.Record, []geom.Record){
		"uniform": func() ([]geom.Record, []geom.Record) {
			return datagen.Uniform(1, 900, universe, 30), datagen.Uniform(2, 700, universe, 30)
		},
		"clustered": func() ([]geom.Record, []geom.Record) {
			return clustered(7, 900, 500)
		},
	}
	for name, gen := range workloads {
		a, b := gen()
		want := brute(a, b)
		for _, k := range []int{1, 2, 3, 8, 19} {
			for _, workers := range []int{1, 4} {
				rep, got := collectPairs(t, a, b, Options{
					Universe: universe, Workers: workers, Partitions: k,
				})
				if rep.Pairs != int64(len(want)) || len(got) != len(want) {
					t.Fatalf("%s k=%d w=%d: %d pairs (emitted %d), want %d",
						name, k, workers, rep.Pairs, len(got), len(want))
				}
				for p := range want {
					if !got[p] {
						t.Fatalf("%s k=%d w=%d: missing %v", name, k, workers, p)
					}
				}
				if rep.Replication < 1 {
					t.Fatalf("replication %f < 1", rep.Replication)
				}
			}
		}
	}
}

func TestJoinMatchesSerial(t *testing.T) {
	a, b := clustered(42, 1200, 800)
	o := Options{Universe: universe}
	serial, err := Serial(context.Background(), a, b, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, forward := range []bool{false, true} {
		o.UseForwardSweep = forward
		o.Workers = 3
		o.Partitions = 11
		rep, err := Join(context.Background(), a, b, o)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Pairs != serial.Pairs {
			t.Fatalf("forward=%v: parallel %d pairs, serial %d", forward, rep.Pairs, serial.Pairs)
		}
	}
}

func TestWindowSemantics(t *testing.T) {
	a, b := clustered(5, 600, 400)
	w := geom.NewRect(100, 100, 400, 400)
	// Match the serial algorithms: both records must intersect the
	// window for the pair to qualify.
	want := 0
	for _, ra := range a {
		if !ra.Rect.Intersects(w) {
			continue
		}
		for _, rb := range b {
			if rb.Rect.Intersects(w) && ra.Rect.Intersects(rb.Rect) {
				want++
			}
		}
	}
	rep, err := Join(context.Background(), a, b, Options{Universe: universe, Partitions: 6, Workers: 2, Window: &w})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pairs != int64(want) {
		t.Fatalf("windowed pairs = %d, want %d", rep.Pairs, want)
	}
	srep, err := Serial(context.Background(), a, b, Options{Universe: universe, Window: &w})
	if err != nil {
		t.Fatal(err)
	}
	if srep.Pairs != int64(want) {
		t.Fatalf("serial windowed pairs = %d, want %d", srep.Pairs, want)
	}
}

func TestEmitOrderDeterministic(t *testing.T) {
	a, b := clustered(9, 800, 500)
	runOnce := func(workers int) []geom.Pair {
		var out []geom.Pair
		_, err := Join(context.Background(), a, b, Options{
			Universe: universe, Workers: workers, Partitions: 8,
			Emit: func(p geom.Pair) { out = append(out, p) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	first := runOnce(1)
	if len(first) == 0 {
		t.Fatal("no pairs emitted")
	}
	for _, workers := range []int{2, 4} {
		if got := runOnce(workers); !reflect.DeepEqual(first, got) {
			t.Fatalf("emit order differs between 1 and %d workers", workers)
		}
	}
}

func TestReportAccounting(t *testing.T) {
	a, b := clustered(11, 1000, 600)
	rep, err := Join(context.Background(), a, b, Options{Universe: universe, Workers: 4, Partitions: 12})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partitions != 12 || rep.Workers != 4 {
		t.Fatalf("resolved %d workers x %d partitions", rep.Workers, rep.Partitions)
	}
	if rep.InputRecords != int64(len(a)+len(b)) {
		t.Fatalf("input records = %d", rep.InputRecords)
	}
	if rep.ReplicatedRecords < rep.InputRecords {
		t.Fatalf("replicated %d < input %d", rep.ReplicatedRecords, rep.InputRecords)
	}
	if rep.Wall <= 0 || rep.SweepWall <= 0 {
		t.Fatalf("missing wall times: %+v", rep)
	}
	var workerPairs, workerParts int64
	var records int64
	for _, ws := range rep.PerWorker {
		workerPairs += ws.Pairs
		workerParts += int64(ws.Partitions)
		records += ws.Records
	}
	if workerPairs != rep.Pairs {
		t.Fatalf("worker shards sum to %d, report says %d", workerPairs, rep.Pairs)
	}
	if workerParts != int64(rep.Partitions) {
		t.Fatalf("workers processed %d partitions of %d", workerParts, rep.Partitions)
	}
	if records != rep.ReplicatedRecords {
		t.Fatalf("workers swept %d records, replicated %d", records, rep.ReplicatedRecords)
	}
	if rep.Sweep.Pairs < rep.Pairs {
		t.Fatalf("kernel candidates %d < results %d", rep.Sweep.Pairs, rep.Pairs)
	}
	if rep.Speedup(rep) != 1 {
		t.Fatalf("self-speedup = %f", rep.Speedup(rep))
	}
}

func TestPartitionerBalance(t *testing.T) {
	a, b := clustered(13, 4000, 2000)
	p := NewPartitioner(universe, 8, a, b)
	if p.Partitions() != 8 {
		t.Fatalf("partitions = %d", p.Partitions())
	}
	buckets := make([][]geom.Record, 8)
	p.Distribute(a, buckets)
	p.Distribute(b, buckets)
	max, min := 0, len(a)+len(b)
	for _, bk := range buckets {
		if len(bk) > max {
			max = len(bk)
		}
		if len(bk) < min {
			min = len(bk)
		}
	}
	// Quantile boundaries must keep even heavily clustered data within
	// a small factor of perfectly balanced.
	avg := (len(a) + len(b)) / 8
	if max > 3*avg {
		t.Fatalf("worst stripe holds %d records, average %d", max, avg)
	}
	// Stripes tile the universe.
	for i := 0; i < 8; i++ {
		s := p.Stripe(i)
		if !s.Valid() {
			t.Fatalf("stripe %d invalid: %v", i, s)
		}
		if i == 0 && s.XLo != universe.XLo {
			t.Fatal("first stripe must start at the universe edge")
		}
		if i == 7 && s.XHi != universe.XHi {
			t.Fatal("last stripe must end at the universe edge")
		}
		if i > 0 && p.Stripe(i-1).XHi != s.XLo {
			t.Fatalf("gap between stripes %d and %d", i-1, i)
		}
	}
}

func TestDegenerateInputs(t *testing.T) {
	if _, err := Join(context.Background(), nil, nil, Options{Universe: geom.EmptyRect()}); err == nil {
		t.Fatal("invalid universe must error")
	}
	if _, err := Serial(context.Background(), nil, nil, Options{Universe: geom.EmptyRect()}); err == nil {
		t.Fatal("invalid universe must error in Serial")
	}
	rep, err := Join(context.Background(), nil, nil, Options{Universe: universe})
	if err != nil || rep.Pairs != 0 {
		t.Fatalf("empty join: %v pairs %d", err, rep.Pairs)
	}
	// Single record pair with duplicated x-coordinates (degenerate
	// quantiles) still joins correctly.
	a := []geom.Record{{Rect: geom.NewRect(5, 5, 6, 6), ID: 1}}
	b := []geom.Record{{Rect: geom.NewRect(5.5, 5.5, 7, 7), ID: 2}}
	rep, err = Join(context.Background(), a, b, Options{Universe: universe, Partitions: 16})
	if err != nil || rep.Pairs != 1 {
		t.Fatalf("tiny join: %v pairs %d", err, rep.Pairs)
	}
	// Records outside the universe are clamped into boundary stripes.
	out := []geom.Record{{Rect: geom.NewRect(-500, -500, -400, -400), ID: 3}}
	rep, err = Join(context.Background(), out, out, Options{Universe: universe, Partitions: 4})
	if err != nil || rep.Pairs != 1 {
		t.Fatalf("outside-universe join: %v pairs %d", err, rep.Pairs)
	}
}

func TestOwnerRangeMatchesOwner(t *testing.T) {
	a, b := clustered(21, 2000, 1000)
	p := NewPartitioner(universe, 7, a, b)
	ranges := make([][2]geom.Coord, p.Partitions())
	for i := range ranges {
		ranges[i][0], ranges[i][1] = p.OwnerRange(i)
	}
	check := func(x, y geom.Rect) {
		owner := p.Owner(x, y)
		ref := x.XLo
		if y.XLo > ref {
			ref = y.XLo
		}
		for i, r := range ranges {
			in := ref >= r[0] && ref < r[1]
			if in != (i == owner) {
				t.Fatalf("ref %g: Owner says %d, range test says stripe %d is %v", ref, owner, i, in)
			}
		}
	}
	for i := 0; i < 200; i++ {
		check(a[i].Rect, b[i].Rect)
	}
	// Boundary stripes must own everything outside the universe too.
	check(geom.NewRect(-1e9, 0, -1e9, 1), geom.NewRect(-1e9, 0, -1e9, 1))
	check(geom.NewRect(1e9, 0, 1e9, 1), geom.NewRect(1e9, 0, 1e9, 1))
}

func TestPartitionerDegenerateUniverse(t *testing.T) {
	// Zero-width universe collapses to one stripe when unsampled.
	line := geom.Rect{XLo: 5, YLo: 0, XHi: 5, YHi: 10}
	p := NewPartitioner(line, 4)
	if p.Partitions() != 1 {
		t.Fatalf("degenerate universe partitions = %d", p.Partitions())
	}
	// With sampled data, all-equal centers collapse every duplicate
	// quantile boundary, so the partitioner degrades to one stripe
	// and stays correct.
	recs := []geom.Record{
		{Rect: geom.NewRect(5, 0, 5, 1), ID: 1},
		{Rect: geom.NewRect(5, 0, 5, 2), ID: 2},
		{Rect: geom.NewRect(5, 1, 5, 3), ID: 3},
		{Rect: geom.NewRect(5, 2, 5, 4), ID: 4},
	}
	rep, err := Join(context.Background(), recs, recs, Options{Universe: line, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(len(brute(recs, recs))); rep.Pairs != want {
		t.Fatalf("degenerate join pairs = %d, want %d", rep.Pairs, want)
	}
}

func TestEmitBatchMatchesEmit(t *testing.T) {
	a, b := clustered(31, 1000, 700)
	o := Options{Universe: universe, Workers: 3, Partitions: 9}
	_, viaEmit := collectPairs(t, a, b, o)

	for name, join := range map[string]func(context.Context, []geom.Record, []geom.Record, Options) (Report, error){
		"parallel": Join, "serial": Serial,
	} {
		got := map[geom.Pair]bool{}
		var batches int
		ob := o
		ob.EmitBatch = func(ps []geom.Pair) {
			batches++
			for _, p := range ps {
				if got[p] {
					t.Fatalf("%s: batch duplicated %v", name, p)
				}
				got[p] = true
			}
		}
		rep, err := join(context.Background(), a, b, ob)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(viaEmit) || rep.Pairs != int64(len(viaEmit)) {
			t.Fatalf("%s: EmitBatch delivered %d pairs, Emit %d", name, len(got), len(viaEmit))
		}
		for p := range viaEmit {
			if !got[p] {
				t.Fatalf("%s: missing %v", name, p)
			}
		}
		if batches == 0 {
			t.Fatalf("%s: no batches delivered", name)
		}
	}
}

func TestEmitAndEmitBatchExclusive(t *testing.T) {
	o := Options{
		Universe:  universe,
		Emit:      func(geom.Pair) {},
		EmitBatch: func([]geom.Pair) {},
	}
	if _, err := Join(context.Background(), nil, nil, o); err == nil {
		t.Fatal("Emit+EmitBatch must be rejected")
	}
	if _, err := Serial(context.Background(), nil, nil, o); err == nil {
		t.Fatal("Emit+EmitBatch must be rejected by Serial")
	}
}

func TestJoinCanceledBeforeStart(t *testing.T) {
	a, b := clustered(33, 500, 300)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Join(ctx, a, b, Options{Universe: universe}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Join err = %v, want context.Canceled", err)
	}
	if _, err := Serial(ctx, a, b, Options{Universe: universe}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Serial err = %v, want context.Canceled", err)
	}
}

func TestJoinCancelMidRun(t *testing.T) {
	// A workload large enough that a cancel a few milliseconds in lands
	// mid-sweep; the worker pool's select and the kernel's periodic
	// checks must stop the join. Run under -race in CI, this also
	// proves the cancellation path is race-free.
	big := geom.NewRect(0, 0, 100_000, 100_000)
	a := datagen.Uniform(41, 120_000, big, 40)
	b := datagen.Uniform(42, 120_000, big, 40)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(3 * time.Millisecond)
		cancel()
	}()
	_, err := Join(ctx, a, b, Options{Universe: big, Workers: 4})
	cancel()
	if err == nil {
		t.Skip("join outran the cancel on this host")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
