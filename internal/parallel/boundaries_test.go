package parallel

import (
	"math"
	"reflect"
	"testing"

	"unijoin/internal/datagen"
	"unijoin/internal/geom"
)

// TestPartitionerFromSamplesMatchesDirect pins the cache contract:
// boundaries computed from per-input cached sorted samples are
// identical to boundaries computed from the records directly, so a
// catalog can swap one for the other without perturbing a single
// stripe assignment.
func TestPartitionerFromSamplesMatchesDirect(t *testing.T) {
	cases := map[string]func() ([]geom.Record, []geom.Record){
		"uniform": func() ([]geom.Record, []geom.Record) {
			return datagen.Uniform(3, 9000, universe, 30), datagen.Uniform(4, 7000, universe, 30)
		},
		"clustered": func() ([]geom.Record, []geom.Record) {
			return clustered(11, 9000, 5000)
		},
		"tiny": func() ([]geom.Record, []geom.Record) {
			return datagen.Uniform(5, 3, universe, 30), nil
		},
		"empty": func() ([]geom.Record, []geom.Record) { return nil, nil },
	}
	for name, gen := range cases {
		t.Run(name, func(t *testing.T) {
			a, b := gen()
			for _, k := range []int{1, 2, 4, 7, 16} {
				direct := NewPartitioner(universe, k, a, b)
				cached := NewPartitionerFromSamples(universe, k,
					SortedCenterSample(a), SortedCenterSample(b))
				if !reflect.DeepEqual(direct.Boundaries(), cached.Boundaries()) {
					t.Fatalf("k=%d: boundaries differ\ndirect: %v\ncached: %v",
						k, direct.Boundaries(), cached.Boundaries())
				}
			}
		})
	}
}

// TestPartitionerFromBoundaries checks the reconstruction path shards
// use and its validation.
func TestPartitionerFromBoundaries(t *testing.T) {
	p, err := PartitionerFromBoundaries(universe, []geom.Coord{250, 500, 750})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Partitions(); got != 4 {
		t.Fatalf("Partitions() = %d, want 4", got)
	}
	if got := p.Of(500); got != 2 {
		t.Fatalf("Of(500) = %d, want 2 (boundaries are half-open)", got)
	}
	if _, err := PartitionerFromBoundaries(universe, []geom.Coord{250, 250}); err == nil {
		t.Fatal("duplicate boundaries accepted")
	}
	if _, err := PartitionerFromBoundaries(universe, []geom.Coord{500, 250}); err == nil {
		t.Fatal("decreasing boundaries accepted")
	}
	nan := geom.Coord(math.NaN())
	if _, err := PartitionerFromBoundaries(universe, []geom.Coord{250, nan}); err == nil {
		t.Fatal("NaN boundary accepted")
	}
	if _, err := PartitionerFromBoundaries(universe, []geom.Coord{geom.Coord(math.Inf(1))}); err == nil {
		t.Fatal("infinite boundary accepted")
	}
}

// TestJoinWithSortedSamplesMatches runs the engine with and without
// pre-sorted samples and demands the identical pair set — the
// boundary reuse path must be invisible to results.
func TestJoinWithSortedSamplesMatches(t *testing.T) {
	a, b := clustered(13, 4000, 3000)
	o := Options{Universe: universe, Workers: 3, Partitions: 7}
	repDirect, direct := collectPairs(t, a, b, o)

	o2 := o
	o2.SortedSamples = [][]geom.Coord{SortedCenterSample(a), SortedCenterSample(b)}
	repCached, cached := collectPairs(t, a, b, o2)

	if !reflect.DeepEqual(direct, cached) {
		t.Fatalf("pair sets differ: direct %d pairs, cached %d pairs", len(direct), len(cached))
	}
	if repDirect.Partitions != repCached.Partitions {
		t.Fatalf("partition counts differ: %d vs %d", repDirect.Partitions, repCached.Partitions)
	}

	// A windowed join must ignore the cached samples (they describe
	// the unfiltered relation) and still be exact.
	win := geom.NewRect(100, 100, 600, 600)
	o2.Window = &win
	_, windowed := collectPairs(t, a, b, o2)
	want := map[geom.Pair]bool{}
	for p := range brute(filterWindow(a, &win), filterWindow(b, &win)) {
		want[p] = true
	}
	if !reflect.DeepEqual(windowed, want) {
		t.Fatalf("windowed pair set wrong: got %d pairs, want %d", len(windowed), len(want))
	}
}

// TestMergeSamplesSortedAndBounded pins MergeSamples' two guarantees:
// the result stays sorted, and repeated merging — a long append
// stream — never grows the sample past its decimation bound.
func TestMergeSamplesSortedAndBounded(t *testing.T) {
	sample := SortedCenterSample(datagen.Uniform(41, 5000, universe, 30))
	for round := 0; round < 20; round++ {
		delta := SortedCenterSample(datagen.Uniform(int64(100+round), 3000, universe, 30))
		sample = MergeSamples(sample, delta)
		for i := 1; i < len(sample); i++ {
			if sample[i-1] > sample[i] {
				t.Fatalf("round %d: sample unsorted at %d: %g > %g", round, i, sample[i-1], sample[i])
			}
		}
		if len(sample) > 2*sampleMax {
			t.Fatalf("round %d: sample grew to %d, bound is %d", round, len(sample), 2*sampleMax)
		}
	}
	// A merged sample still drives a partitioner to sane boundaries.
	p := NewPartitionerFromSamples(universe, 8, sample)
	bounds := p.Boundaries()
	for i := 1; i < len(bounds); i++ {
		if bounds[i-1] >= bounds[i] {
			t.Fatalf("boundaries not strictly increasing: %v", bounds)
		}
	}
	if math.IsNaN(float64(bounds[0])) {
		t.Fatalf("NaN boundary: %v", bounds)
	}
}
