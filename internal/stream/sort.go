package stream

import (
	"container/heap"
	"fmt"
	"slices"

	"unijoin/internal/iosim"
)

// SortStats reports what an external sort did, for experiment logging.
type SortStats struct {
	Records int64 // records sorted
	Runs    int   // initial sorted runs formed
	Passes  int   // merge passes over the data (0 if a single run)
}

// Sort externally sorts the stream in into a new stream on store,
// using at most memBytes of simulated internal memory, and returns the
// sorted file. cmp must be a strict weak ordering returning <0, 0, >0.
//
// The algorithm is the multiway mergesort the paper's SSSJ
// implementation uses: sequential run formation (each run memBytes
// large, sorted in memory) followed by k-way merging with a heap. For
// the data:memory ratios of all the paper's experiments a single merge
// pass suffices, giving SSSJ's characteristic cost of two sequential
// read passes, one non-sequential read pass (the merge), and two
// sequential write passes.
func Sort[T any](store *iosim.Store, in *iosim.File, c Codec[T], cmp func(a, b T) int, memBytes int) (*iosim.File, SortStats, error) {
	var stats SortStats
	runCap := memBytes / c.Size
	if runCap < 1 {
		runCap = 1
	}

	// Pass 0: run formation.
	var runs []*iosim.File
	r := NewReader(in, c)
	stats.Records = r.Count()
	buf := make([]T, 0, min64(int64(runCap), r.Count()))
	flushRun := func() error {
		if len(buf) == 0 {
			return nil
		}
		// The comparators used throughout the repository are total
		// orders (ties broken by ID), so an unstable sort is safe and
		// measurably faster than stable merging.
		slices.SortFunc(buf, cmp)
		f, err := WriteAll(store, c, buf)
		if err != nil {
			return err
		}
		runs = append(runs, f)
		buf = buf[:0]
		return nil
	}
	for {
		v, ok, err := r.Next()
		if err != nil {
			return nil, stats, err
		}
		if !ok {
			break
		}
		buf = append(buf, v)
		if len(buf) == runCap {
			if err := flushRun(); err != nil {
				return nil, stats, err
			}
		}
	}
	if err := flushRun(); err != nil {
		return nil, stats, err
	}
	stats.Runs = len(runs)

	if len(runs) == 0 {
		return iosim.NewFile(store), stats, nil
	}
	if len(runs) == 1 {
		return runs[0], stats, nil
	}

	// Merge passes. The memory budget is divided evenly among one
	// buffer per run plus one output buffer, using the largest buffers
	// that still allow a single merge pass (TPIE's policy, and why the
	// paper's sorts always merge in one pass with ~512 KB buffers).
	// Only if even one-page buffers cannot reach the fan-in does the
	// merge go multi-pass.
	pagesAvail := memBytes / store.PageSize()
	readerPages := pagesAvail / (len(runs) + 1)
	if readerPages > LogicalPages {
		readerPages = LogicalPages
	}
	fanIn := len(runs)
	if readerPages < 1 {
		readerPages = 1
		fanIn = pagesAvail - 1
	}
	if fanIn < 2 {
		fanIn = 2
	}
	for len(runs) > 1 {
		stats.Passes++
		var next []*iosim.File
		for lo := 0; lo < len(runs); lo += fanIn {
			hi := lo + fanIn
			if hi > len(runs) {
				hi = len(runs)
			}
			merged, err := mergeRuns(store, runs[lo:hi], c, cmp, readerPages)
			if err != nil {
				return nil, stats, err
			}
			// The merged runs are scratch space; hand their extents
			// back so repeated sorts do not grow the disk.
			for _, r := range runs[lo:hi] {
				r.Release()
			}
			next = append(next, merged)
		}
		runs = next
	}
	return runs[0], stats, nil
}

// mergeRuns merges sorted runs into one sorted stream, reading each
// run through a buffer of readerPages disk pages.
func mergeRuns[T any](store *iosim.Store, runs []*iosim.File, c Codec[T], cmp func(a, b T) int, readerPages int) (*iosim.File, error) {
	out := iosim.NewFile(store)
	w := NewWriter(out, c)
	h := &mergeHeap[T]{cmp: cmp}
	for i, f := range runs {
		rd := NewReaderPages(f, c, readerPages)
		v, ok, err := rd.Next()
		if err != nil {
			return nil, err
		}
		if ok {
			h.items = append(h.items, mergeItem[T]{v: v, src: rd, idx: i})
		}
	}
	heap.Init(h)
	for h.Len() > 0 {
		top := &h.items[0]
		if err := w.Write(top.v); err != nil {
			return nil, err
		}
		v, ok, err := top.src.Next()
		if err != nil {
			return nil, err
		}
		if ok {
			top.v = v
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return out, nil
}

type mergeItem[T any] struct {
	v   T
	src *Reader[T]
	idx int // run index, tie-breaker for stability
}

type mergeHeap[T any] struct {
	items []mergeItem[T]
	cmp   func(a, b T) int
}

func (h *mergeHeap[T]) Len() int { return len(h.items) }
func (h *mergeHeap[T]) Less(i, j int) bool {
	if d := h.cmp(h.items[i].v, h.items[j].v); d != 0 {
		return d < 0
	}
	return h.items[i].idx < h.items[j].idx
}
func (h *mergeHeap[T]) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap[T]) Push(x any)    { h.items = append(h.items, x.(mergeItem[T])) }
func (h *mergeHeap[T]) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Validate checks that a stream's byte length is a whole number of
// records; joins call it on their inputs to fail fast on mismatched
// codecs.
func Validate[T any](f *iosim.File, c Codec[T]) error {
	if f.Size()%int64(c.Size) != 0 {
		return fmt.Errorf("stream: file size %d is not a multiple of record size %d", f.Size(), c.Size)
	}
	return nil
}
