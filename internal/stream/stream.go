// Package stream provides typed record streams over the simulated disk
// and an external multiway mergesort. It plays the role TPIE plays in
// the paper (Section 5.2): a thin, efficient layer for purely
// stream-based algorithms (SSSJ, PBSM) that accesses the disk in large
// sequential units.
//
// A stream is a sequence of fixed-size records in an iosim.File.
// Writers and readers move data in logical pages of LogicalPages disk
// pages each — the role TPIE's 512 KB logical page plays in the paper:
// when several streams are active at once (run formation, merging,
// partitioning), the disk head pays one seek per logical page instead
// of one per disk page, keeping stream algorithms sequential-dominant
// exactly as the paper's BTE does. Producing or scanning an n-page
// stream still costs n page accesses.
package stream

import (
	"errors"
	"fmt"
	"io"

	"unijoin/internal/geom"
	"unijoin/internal/iosim"
)

// Codec describes how to serialize one fixed-size record of type T.
type Codec[T any] struct {
	// Size is the encoded size of every record, in bytes.
	Size int
	// Encode writes v into dst[:Size].
	Encode func(dst []byte, v T)
	// Decode reads a record from src[:Size].
	Decode func(src []byte) T
}

// LogicalPages is the number of contiguous disk pages moved per
// stream I/O operation (32 KB with the default 8 KB pages). The ratio
// of memory to logical page size sets the merge fan-in; at the scaled
// memory budgets this value keeps every experiment's sort at a single
// merge pass, as in the paper (whose 24 MB memory and 512 KB logical
// pages gave a fan-in of ~46).
const LogicalPages = 4

// logicalBytes returns the stream I/O unit for a store.
func logicalBytes(store *iosim.Store) int { return LogicalPages * store.PageSize() }

// Records is the codec for the paper's 20-byte MBR records.
var Records = Codec[geom.Record]{
	Size:   geom.RecordSize,
	Encode: func(dst []byte, v geom.Record) { geom.EncodeRecord(dst, v) },
	Decode: geom.DecodeRecord,
}

// Pairs is the codec for 8-byte join output pairs.
var Pairs = Codec[geom.Pair]{
	Size:   geom.PairSize,
	Encode: func(dst []byte, v geom.Pair) { geom.EncodePair(dst, v) },
	Decode: geom.DecodePair,
}

// Writer appends records of type T to a file.
type Writer[T any] struct {
	f     *iosim.File
	codec Codec[T]
	buf   []byte
	n     int // bytes buffered
	count int64
}

// NewWriter returns a Writer appending to f. The file should be empty
// or previously written with the same codec.
func NewWriter[T any](f *iosim.File, c Codec[T]) *Writer[T] {
	if c.Size <= 0 {
		panic("stream: codec with non-positive size")
	}
	return &Writer[T]{f: f, codec: c, buf: make([]byte, logicalBytes(f.Store()))}
}

// Write appends one record.
func (w *Writer[T]) Write(v T) error {
	var scratch [64]byte
	if w.codec.Size > len(scratch) {
		return fmt.Errorf("stream: record size %d exceeds scratch", w.codec.Size)
	}
	w.codec.Encode(scratch[:w.codec.Size], v)
	rec := scratch[:w.codec.Size]
	for len(rec) > 0 {
		n := copy(w.buf[w.n:], rec)
		w.n += n
		rec = rec[n:]
		if w.n == len(w.buf) {
			if err := w.f.Append(w.buf); err != nil {
				return err
			}
			w.n = 0
		}
	}
	w.count++
	return nil
}

// Flush writes any buffered bytes to the file. Call it once after the
// last Write; the stream is then complete.
func (w *Writer[T]) Flush() error {
	if w.n > 0 {
		if err := w.f.Append(w.buf[:w.n]); err != nil {
			return err
		}
		w.n = 0
	}
	return nil
}

// Count returns the number of records written so far.
func (w *Writer[T]) Count() int64 { return w.count }

// Reader scans the records of a file sequentially.
type Reader[T any] struct {
	f        *iosim.File
	codec    Codec[T]
	buf      []byte // window of undecoded bytes
	bufBytes int    // bytes per fill
	start    int
	end      int
	off      int64 // next file offset to read (page aligned)
	size     int64 // file size at reader creation
}

// NewReader returns a Reader positioned at the start of f, buffering
// LogicalPages disk pages per fill.
func NewReader[T any](f *iosim.File, c Codec[T]) *Reader[T] {
	return NewReaderPages(f, c, LogicalPages)
}

// NewReaderPages returns a Reader with an explicit buffer size in disk
// pages (minimum 1). The external sort shrinks merge-input buffers to
// keep a high fan-in within the memory budget, as real systems do.
func NewReaderPages[T any](f *iosim.File, c Codec[T], pages int) *Reader[T] {
	if c.Size <= 0 {
		panic("stream: codec with non-positive size")
	}
	if pages < 1 {
		pages = 1
	}
	lb := pages * f.Store().PageSize()
	return &Reader[T]{f: f, codec: c, buf: make([]byte, 0, 2*lb), bufBytes: lb, size: f.Size()}
}

// Count returns the total number of records in the stream.
func (r *Reader[T]) Count() int64 { return r.size / int64(r.codec.Size) }

// Next returns the next record. ok is false at the end of the stream.
func (r *Reader[T]) Next() (v T, ok bool, err error) {
	for r.end-r.start < r.codec.Size {
		if r.off >= r.size {
			if r.end-r.start == 0 {
				return v, false, nil
			}
			return v, false, fmt.Errorf("stream: %d trailing bytes (torn record)", r.end-r.start)
		}
		if err := r.fill(); err != nil {
			return v, false, err
		}
	}
	v = r.codec.Decode(r.buf[r.start : r.start+r.codec.Size])
	r.start += r.codec.Size
	return v, true, nil
}

// fill reads the next buffer of the file into the window, compacting
// consumed bytes first.
func (r *Reader[T]) fill() error {
	ps := r.bufBytes
	if r.start > 0 {
		copy(r.buf[:r.end-r.start], r.buf[r.start:r.end])
		r.end -= r.start
		r.start = 0
	}
	want := int64(ps)
	if r.size-r.off < want {
		want = r.size - r.off
	}
	r.buf = r.buf[:r.end+int(want)]
	n, err := r.f.ReadAt(r.buf[r.end:r.end+int(want)], r.off)
	if err != nil && !errors.Is(err, io.EOF) {
		return err
	}
	if int64(n) != want {
		return fmt.Errorf("stream: short read %d of %d at %d", n, want, r.off)
	}
	r.end += n
	r.off += int64(n)
	return nil
}

// WriteAll writes all records to a fresh stream on store and returns
// the backing file.
func WriteAll[T any](store *iosim.Store, c Codec[T], recs []T) (*iosim.File, error) {
	f := iosim.NewFile(store)
	w := NewWriter(f, c)
	for _, v := range recs {
		if err := w.Write(v); err != nil {
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return f, nil
}

// ReadAll materializes an entire stream in memory. Intended for tests
// and small auxiliary streams; the join algorithms never call it on
// their inputs.
func ReadAll[T any](f *iosim.File, c Codec[T]) ([]T, error) {
	r := NewReader(f, c)
	out := make([]T, 0, r.Count())
	for {
		v, ok, err := r.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, v)
	}
}
