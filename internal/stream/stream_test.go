package stream

import (
	"math/rand"
	"testing"
	"testing/quick"

	"unijoin/internal/geom"
	"unijoin/internal/iosim"
)

func newStore() *iosim.Store { return iosim.NewStore(iosim.DefaultPageSize) }

func randomRecords(rng *rand.Rand, n int) []geom.Record {
	recs := make([]geom.Record, n)
	for i := range recs {
		x := float32(rng.Intn(10000))
		y := float32(rng.Intn(10000))
		recs[i] = geom.Record{
			Rect: geom.NewRect(x, y, x+float32(rng.Intn(50)), y+float32(rng.Intn(50))),
			ID:   uint32(i),
		}
	}
	return recs
}

func TestWriteReadRoundTrip(t *testing.T) {
	store := newStore()
	rng := rand.New(rand.NewSource(1))
	recs := randomRecords(rng, 2500) // several pages, record size 20 does not divide 8192
	f, err := WriteAll(store, Records, recs)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != int64(len(recs)*geom.RecordSize) {
		t.Fatalf("file size = %d", f.Size())
	}
	got, err := ReadAll(f, Records)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d of %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %v != %v", i, got[i], recs[i])
		}
	}
}

func TestEmptyStream(t *testing.T) {
	store := newStore()
	f, err := WriteAll(store, Records, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(f, Records)
	if r.Count() != 0 {
		t.Fatal("empty stream count")
	}
	if _, ok, err := r.Next(); ok || err != nil {
		t.Fatalf("Next on empty: ok=%v err=%v", ok, err)
	}
}

func TestReaderCount(t *testing.T) {
	store := newStore()
	recs := randomRecords(rand.New(rand.NewSource(2)), 777)
	f, _ := WriteAll(store, Records, recs)
	r := NewReader(f, Records)
	if r.Count() != 777 {
		t.Fatalf("Count = %d", r.Count())
	}
}

func TestTornRecordDetected(t *testing.T) {
	store := newStore()
	f := iosim.NewFile(store)
	if err := f.Append(make([]byte, geom.RecordSize+7)); err != nil {
		t.Fatal(err)
	}
	r := NewReader(f, Records)
	if _, ok, err := r.Next(); !ok || err != nil {
		t.Fatalf("first record should decode: ok=%v err=%v", ok, err)
	}
	if _, _, err := r.Next(); err == nil {
		t.Fatal("trailing bytes should be reported")
	}
	if err := Validate(f, Records); err == nil {
		t.Fatal("Validate should reject torn stream")
	}
}

func TestWriterIsPageEfficient(t *testing.T) {
	// Writing an n-page stream must cost ~n page writes, not one write
	// per record.
	store := newStore()
	recs := randomRecords(rand.New(rand.NewSource(3)), 5000)
	before := store.Counters()
	if _, err := WriteAll(store, Records, recs); err != nil {
		t.Fatal(err)
	}
	delta := store.Counters().Sub(before)
	bytes := int64(len(recs) * geom.RecordSize)
	pages := (bytes + int64(store.PageSize()) - 1) / int64(store.PageSize())
	if delta.Writes() > pages+1 {
		t.Fatalf("writes = %d for %d pages of data", delta.Writes(), pages)
	}
	if delta.Reads() != 0 {
		t.Fatalf("writing should not read: %v", delta)
	}
}

func TestReaderIsPageEfficientAndSequential(t *testing.T) {
	store := newStore()
	recs := randomRecords(rand.New(rand.NewSource(4)), 5000)
	f, _ := WriteAll(store, Records, recs)
	store.ResetCounters()
	if _, err := ReadAll(f, Records); err != nil {
		t.Fatal(err)
	}
	c := store.Counters()
	pages := int64(f.Pages())
	if c.Reads() > pages+1 {
		t.Fatalf("reads = %d for %d pages", c.Reads(), pages)
	}
	if c.RandReads > pages/int64(iosim.ExtentPages)+2 {
		t.Fatalf("scan should be sequential: %v", c)
	}
}

func TestPairsCodecStream(t *testing.T) {
	store := newStore()
	pairs := []geom.Pair{{Left: 1, Right: 2}, {Left: 3, Right: 4}, {Left: 5, Right: 6}}
	f, err := WriteAll(store, Pairs, pairs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(f, Pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != pairs[0] || got[2] != pairs[2] {
		t.Fatalf("pairs round trip: %v", got)
	}
}

func sortedByY(recs []geom.Record) bool {
	for i := 1; i < len(recs); i++ {
		if recs[i].Rect.YLo < recs[i-1].Rect.YLo {
			return false
		}
	}
	return true
}

func TestSortSmallSingleRun(t *testing.T) {
	store := newStore()
	recs := randomRecords(rand.New(rand.NewSource(5)), 100)
	in, _ := WriteAll(store, Records, recs)
	out, stats, err := Sort(store, in, Records, geom.ByLowerY, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs != 1 || stats.Passes != 0 {
		t.Fatalf("stats = %+v, want single run", stats)
	}
	got, _ := ReadAll(out, Records)
	if !sortedByY(got) {
		t.Fatal("output not sorted")
	}
	if len(got) != len(recs) {
		t.Fatalf("lost records: %d of %d", len(got), len(recs))
	}
}

func TestSortMultiRunMerge(t *testing.T) {
	store := newStore()
	recs := randomRecords(rand.New(rand.NewSource(6)), 10000)
	in, _ := WriteAll(store, Records, recs)
	mem := 100 * geom.RecordSize // forces 100 runs
	out, stats, err := Sort(store, in, Records, geom.ByLowerY, mem)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs != 100 {
		t.Fatalf("runs = %d, want 100", stats.Runs)
	}
	if stats.Passes < 1 {
		t.Fatal("expected at least one merge pass")
	}
	got, _ := ReadAll(out, Records)
	if !sortedByY(got) {
		t.Fatal("output not sorted")
	}
	if len(got) != len(recs) {
		t.Fatalf("lost records: %d of %d", len(got), len(recs))
	}
}

func TestSortIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		store := newStore()
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(800)
		recs := randomRecords(rng, n)
		in, err := WriteAll(store, Records, recs)
		if err != nil {
			return false
		}
		out, _, err := Sort(store, in, Records, geom.ByLowerY, 64*geom.RecordSize)
		if err != nil {
			return false
		}
		got, err := ReadAll(out, Records)
		if err != nil || len(got) != n || !sortedByY(got) {
			return false
		}
		// Permutation check by ID multiset (IDs are unique here).
		seen := make(map[uint32]geom.Record, n)
		for _, rec := range recs {
			seen[rec.ID] = rec
		}
		for _, rec := range got {
			orig, ok := seen[rec.ID]
			if !ok || orig != rec {
				return false
			}
			delete(seen, rec.ID)
		}
		return len(seen) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSortDeterministic(t *testing.T) {
	// With a total-order comparator (ByLowerY breaks ties by ID) the
	// external sort is fully deterministic, including across the merge.
	store := newStore()
	recs := make([]geom.Record, 500)
	for i := range recs {
		recs[i] = geom.Record{Rect: geom.NewRect(float32(i), 1, float32(i)+1, 2), ID: uint32(499 - i)}
	}
	in, _ := WriteAll(store, Records, recs)
	out1, _, err := Sort(store, in, Records, geom.ByLowerY, 50*geom.RecordSize)
	if err != nil {
		t.Fatal(err)
	}
	out2, _, err := Sort(store, in, Records, geom.ByLowerY, 50*geom.RecordSize)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := ReadAll(out1, Records)
	b, _ := ReadAll(out2, Records)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic sort at %d", i)
		}
		if a[i].ID != uint32(i) {
			t.Fatalf("tie-break order wrong at %d: id %d", i, a[i].ID)
		}
	}
}

func TestSortEmptyInput(t *testing.T) {
	store := newStore()
	in := iosim.NewFile(store)
	out, stats, err := Sort(store, in, Records, geom.ByLowerY, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 0 || stats.Runs != 0 {
		t.Fatalf("empty sort: size=%d stats=%+v", out.Size(), stats.Runs)
	}
}

func TestSortIOShape(t *testing.T) {
	// With a single merge pass the sort should read the data twice and
	// write it twice (runs + output), the SSSJ cost shape from §3.1.
	store := newStore()
	recs := randomRecords(rand.New(rand.NewSource(7)), 100000)
	in, _ := WriteAll(store, Records, recs)
	dataPages := int64(in.Pages())
	store.ResetCounters()
	_, stats, err := Sort(store, in, Records, geom.ByLowerY, 512<<10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Passes != 1 {
		t.Fatalf("expected exactly one merge pass, got %d (runs=%d)", stats.Passes, stats.Runs)
	}
	c := store.Counters()
	slack := dataPages / 4
	if c.Reads() < 2*dataPages-slack || c.Reads() > 2*dataPages+slack+int64(stats.Runs) {
		t.Fatalf("reads = %d, want about %d", c.Reads(), 2*dataPages)
	}
	if c.Writes() < 2*dataPages-slack || c.Writes() > 2*dataPages+slack+int64(stats.Runs) {
		t.Fatalf("writes = %d, want about %d", c.Writes(), 2*dataPages)
	}
}
