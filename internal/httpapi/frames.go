package httpapi

import (
	"io"
	"net/http"

	"unijoin/client"
	"unijoin/internal/geom"
	"unijoin/internal/wire"
)

// meteredWriter counts writes and bytes on their way to the client.
// The wire encoder issues exactly one Write per frame, so the write
// count is the frame count — which keeps the frame metrics out of the
// encoding hot loop.
type meteredWriter struct {
	w      io.Writer
	writes int64
	bytes  int64
}

func (m *meteredWriter) Write(p []byte) (int, error) {
	m.writes++
	m.bytes += int64(len(p))
	return m.w.Write(p)
}

// FrameWriter is LineWriter's binary twin: it streams wire frames
// over an HTTP response, flushing each logical emit, and defers the
// Content-Type header to the first frame so pre-stream failures still
// go out as plain HTTP errors. Write failures (a vanished client) are
// swallowed; the query is aborted separately through the request
// context. Close releases the encoder's pooled scratch buffer (safe
// to defer, safe to call twice). Not safe for concurrent use — the
// caller serializes, as the router's scatter merge already must.
type FrameWriter struct {
	w       http.ResponseWriter
	flusher http.Flusher
	mw      meteredWriter
	enc     *wire.Encoder
	observe func(t wire.Type, frames, bytes int64)
	started bool
}

// NewFrameWriter wraps a response writer for frame streaming. observe
// (which may be nil) receives per-type frame and byte counts after
// each emit — the hook the serving layers hang their sj_frames_total
// families on.
func NewFrameWriter(w http.ResponseWriter, observe func(t wire.Type, frames, bytes int64)) *FrameWriter {
	fw := &FrameWriter{w: w, observe: observe}
	fw.flusher, _ = w.(http.Flusher)
	fw.mw.w = w
	fw.enc = wire.NewEncoder(&fw.mw)
	return fw
}

// Started reports whether any frame has been written — the point of
// no return for the HTTP status code.
func (fw *FrameWriter) Started() bool { return fw.started }

// ResponseWriter returns the underlying writer, for sending a proper
// error status while the stream is still unstarted.
func (fw *FrameWriter) ResponseWriter() http.ResponseWriter { return fw.w }

// Close releases the encoder's scratch buffer.
func (fw *FrameWriter) Close() { fw.enc.Close() }

// emit runs one logical frame write: headers on first use, observed
// deltas after, one flush at the end.
func (fw *FrameWriter) emit(t wire.Type, write func() error) {
	if !fw.started {
		fw.w.Header().Set("Content-Type", wire.ContentType)
		fw.started = true
	}
	w0, b0 := fw.mw.writes, fw.mw.bytes
	if err := write(); err != nil {
		return
	}
	if fw.observe != nil {
		fw.observe(t, fw.mw.writes-w0, fw.mw.bytes-b0)
	}
	if fw.flusher != nil {
		fw.flusher.Flush()
	}
}

// WritePairs emits one batch of join pairs as PAIRS frames.
func (fw *FrameWriter) WritePairs(pairs [][2]uint32) {
	fw.emit(wire.TypePairs, func() error { return fw.enc.WritePairs(pairs) })
}

// WriteRecords emits one batch of records as RECORDS frames.
func (fw *FrameWriter) WriteRecords(recs []geom.Record) {
	fw.emit(wire.TypeRecords, func() error { return fw.enc.WriteRecords(recs) })
}

// WriteSummary emits the terminal SUMMARY frame.
func (fw *FrameWriter) WriteSummary(v any) {
	fw.emit(wire.TypeSummary, func() error { return fw.enc.WriteJSON(wire.TypeSummary, v) })
}

// WriteError emits a terminal ERROR frame.
func (fw *FrameWriter) WriteError(e *client.APIError) {
	fw.emit(wire.TypeError, func() error { return fw.enc.WriteJSON(wire.TypeError, e) })
}

// End closes the stream with the END frame. A stream that stops
// without it was truncated, and the decoding client says so.
func (fw *FrameWriter) End() {
	fw.emit(wire.TypeEnd, func() error { return fw.enc.WriteEnd() })
}

// Relay writes an already-framed byte sequence through unmodified —
// the router's zero-decode scatter path. raw must be one whole frame
// with a validated header (wire.Scanner returns exactly that); its
// payload and CRC pass through untouched, preserving the end-to-end
// integrity check.
func (fw *FrameWriter) Relay(raw []byte) {
	fw.emit(wire.Type(raw[wire.OffType]), func() error { return fw.enc.WriteRaw(raw) })
}
