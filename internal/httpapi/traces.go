package httpapi

import (
	"net/http"
	"strconv"
	"time"

	"unijoin/client"
	"unijoin/internal/obs"
)

// ParentSpanHeader carries the upstream caller's span ID router →
// shard, extending the X-Request-Id correlation into a span tree: the
// router sends each scatter leg's span ID here, and the shard records
// it as its trace's parent, so the two processes' trees join on it.
const ParentSpanHeader = "X-Parent-Span"

// maxParentSpanLen bounds span IDs accepted from the wire, mirroring
// the request-ID rule: anything longer is dropped rather than
// amplified through the trace store.
const maxParentSpanLen = 64

// ParentSpan returns the request's X-Parent-Span header, or "" when
// absent or abusive.
func ParentSpan(r *http.Request) string {
	if id := r.Header.Get(ParentSpanHeader); len(id) <= maxParentSpanLen {
		return id
	}
	return ""
}

// defaultTraceListing caps GET /v1/traces responses when the client
// doesn't ask for a size.
const defaultTraceListing = 50

// SpanDTO converts a span tree to its wire form, with every start
// rendered as the offset in milliseconds from root's start. Callers
// pass the tree root; the recursion threads the base time down.
func SpanDTO(root *obs.Span) *client.Span {
	return spanDTO(root, root.Start)
}

func spanDTO(s *obs.Span, base time.Time) *client.Span {
	d := &client.Span{
		ID:             s.ID,
		Name:           s.Name,
		StartMillis:    float64(s.Start.Sub(base).Microseconds()) / 1000,
		DurationMillis: float64(s.Duration.Microseconds()) / 1000,
	}
	if len(s.Attrs) > 0 {
		d.Attrs = make(map[string]string, len(s.Attrs))
		for k, v := range s.Attrs {
			d.Attrs[k] = v
		}
	}
	for _, c := range s.Children {
		d.Children = append(d.Children, spanDTO(c, base))
	}
	return d
}

// TracesHandler serves GET /v1/traces: recent trace summaries, newest
// first, at most ?n= of them (default defaultTraceListing). Both
// serving layers mount this one handler, so a client cannot tell a
// router's listing from a shard's by shape.
func TracesHandler(store *obs.TraceStore) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		n := defaultTraceListing
		if v := r.URL.Query().Get("n"); v != "" {
			parsed, err := strconv.Atoi(v)
			if err != nil || parsed <= 0 {
				WriteError(w, &client.APIError{
					Status: http.StatusBadRequest, Code: client.CodeBadRequest,
					Message: "bad n: want a positive integer",
				})
				return
			}
			n = parsed
		}
		traces := store.Recent(n)
		out := make([]client.TraceSummary, 0, len(traces))
		for _, t := range traces {
			sum := client.TraceSummary{
				ID:             t.ID,
				Kind:           t.Kind,
				Name:           t.Root.Name,
				Start:          t.Root.Start.Format(time.RFC3339Nano),
				DurationMillis: float64(t.Root.Duration.Microseconds()) / 1000,
				Spans:          t.Root.Count(),
			}
			if len(t.Root.Attrs) > 0 {
				sum.Attrs = t.Root.Attrs // stored traces are immutable
			}
			out = append(out, sum)
		}
		WriteJSON(w, out)
	}
}

// TraceByIDHandler serves GET /v1/traces/{id}: the full span tree, or
// 404 for an ID the bounded ring no longer (or never) held.
func TraceByIDHandler(store *obs.TraceStore) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		t, ok := store.Get(id)
		if !ok {
			WriteError(w, &client.APIError{
				Status: http.StatusNotFound, Code: client.CodeNotFound,
				Message: "no trace " + strconv.Quote(id) + " in the recent window (bounded ring; it may have been evicted)",
			})
			return
		}
		WriteJSON(w, client.TraceDetail{
			ID:             t.ID,
			Kind:           t.Kind,
			ParentSpan:     t.ParentSpan,
			Start:          t.Root.Start.Format(time.RFC3339Nano),
			DurationMillis: float64(t.Root.Duration.Microseconds()) / 1000,
			Root:           SpanDTO(t.Root),
		})
	}
}
