package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"testing"

	"unijoin/client"
	"unijoin/internal/wire"
)

// flakyWriter is an http.ResponseWriter whose Write fails on
// configured call numbers (1-based), simulating a client connection
// hiccup mid-stream. The wire encoder issues exactly one Write per
// frame, so call numbers are frame numbers.
type flakyWriter struct {
	buf     bytes.Buffer
	header  http.Header
	calls   int
	failOn  map[int]bool
	failAll bool
	flushes int
}

func (w *flakyWriter) Header() http.Header {
	if w.header == nil {
		w.header = http.Header{}
	}
	return w.header
}

func (w *flakyWriter) WriteHeader(int) {}

func (w *flakyWriter) Flush() { w.flushes++ }

func (w *flakyWriter) Write(p []byte) (int, error) {
	w.calls++
	if w.failAll || w.failOn[w.calls] {
		return 0, errors.New("connection reset by peer")
	}
	return w.buf.Write(p)
}

// decodeTypes decodes the accumulated stream and returns the frame
// type sequence plus the terminal error payload, if any.
func decodeTypes(t *testing.T, raw []byte) ([]wire.Type, *client.APIError) {
	t.Helper()
	dec := wire.NewDecoder(bytes.NewReader(raw))
	var seq []wire.Type
	var apiErr *client.APIError
	for {
		f, err := dec.Next()
		if errors.Is(err, io.EOF) {
			return seq, apiErr
		}
		if err != nil {
			t.Fatalf("stream does not decode cleanly: %v", err)
		}
		seq = append(seq, f.Type)
		if f.Type == wire.TypeError {
			apiErr = new(client.APIError)
			if err := json.Unmarshal(f.Payload, apiErr); err != nil {
				t.Fatalf("ERROR frame payload: %v", err)
			}
		}
	}
}

// A write failure after a flushed DATA frame must not derail the
// termination protocol: the stream still carries exactly one ERROR
// and one END, in order, and still decodes cleanly — the failed frame
// simply never reaches the wire (frame writes are atomic: one Write
// per frame, nothing buffered on failure).
func TestFrameWriterMidStreamWriteFailure(t *testing.T) {
	w := &flakyWriter{failOn: map[int]bool{2: true}}
	counts := map[wire.Type]int64{}
	fw := NewFrameWriter(w, func(ft wire.Type, frames, bytes int64) { counts[ft] += frames })
	defer fw.Close()

	fw.WritePairs([][2]uint32{{1, 2}}) // frame 1: delivered and flushed
	fw.WritePairs([][2]uint32{{3, 4}}) // frame 2: write fails, swallowed
	fw.WriteError(&client.APIError{Status: 500, Code: "internal", Message: "boom"})
	fw.End()

	seq, apiErr := decodeTypes(t, w.buf.Bytes())
	want := []wire.Type{wire.TypePairs, wire.TypeError, wire.TypeEnd}
	if len(seq) != len(want) {
		t.Fatalf("frame sequence = %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("frame sequence = %v, want %v", seq, want)
		}
	}
	if apiErr == nil || apiErr.Code != "internal" || apiErr.Status != 500 {
		t.Fatalf("terminal error = %+v, want the 500/internal APIError", apiErr)
	}

	// The observe hook counts only frames that actually reached the
	// wire: 1 PAIRS (not 2), 1 ERROR, 1 END.
	if counts[wire.TypePairs] != 1 || counts[wire.TypeError] != 1 || counts[wire.TypeEnd] != 1 {
		t.Fatalf("observed frame counts = %v, want pairs:1 error:1 end:1", counts)
	}
	// One flush per successful emit; the failed emit returns before
	// flushing.
	if w.flushes != 3 {
		t.Fatalf("flushes = %d, want 3", w.flushes)
	}
	if got := w.Header().Get("Content-Type"); got != wire.ContentType {
		t.Fatalf("Content-Type = %q, want %q", got, wire.ContentType)
	}
}

// A client that vanished entirely: every write fails. The writer must
// swallow all of it without panicking, never call the observe hook,
// and leave the stream empty.
func TestFrameWriterDeadClient(t *testing.T) {
	w := &flakyWriter{failAll: true}
	observed := 0
	fw := NewFrameWriter(w, func(wire.Type, int64, int64) { observed++ })
	defer fw.Close()

	fw.WritePairs([][2]uint32{{1, 2}})
	fw.WriteError(&client.APIError{Status: 500, Code: "internal", Message: "boom"})
	fw.End()

	if !fw.Started() {
		t.Fatal("Started() = false; the first emit commits the stream even if its write fails")
	}
	if observed != 0 {
		t.Fatalf("observe hook called %d times for frames that never reached the wire", observed)
	}
	if w.buf.Len() != 0 {
		t.Fatalf("buffer holds %d bytes, want none", w.buf.Len())
	}
	if w.flushes != 0 {
		t.Fatalf("flushes = %d, want 0", w.flushes)
	}
}
