package httpapi

import (
	"fmt"
	"net/http"
	"testing"

	"unijoin/client"
)

// discardWriter is a minimal ResponseWriter for benchmarks.
type discardWriter struct{ h http.Header }

func (d *discardWriter) Header() http.Header {
	if d.h == nil {
		d.h = make(http.Header)
	}
	return d.h
}
func (d *discardWriter) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardWriter) WriteHeader(int)             {}

// BenchmarkWriteLine measures the streaming path's per-line cost: one
// batch line of 1024 pairs, the server's default batch size. The
// buffer pooling exists for exactly this loop.
func BenchmarkWriteLine(b *testing.B) {
	pairs := make([][2]uint32, 1024)
	for i := range pairs {
		pairs[i] = [2]uint32{uint32(i), uint32(i + 1)}
	}
	line := client.JoinLine{Pairs: pairs}
	lw := NewLineWriter(&discardWriter{})
	defer lw.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lw.WriteLine(line)
	}
}

// captureWriter records everything written through it.
type captureWriter struct {
	discardWriter
	got []byte
}

func (c *captureWriter) Write(p []byte) (int, error) {
	c.got = append(c.got, p...)
	return len(p), nil
}

// TestLineWriterReuse checks pooled buffers produce correct output
// across sequential writers (the per-request lifecycle) and that Close
// is safe to call twice.
func TestLineWriterReuse(t *testing.T) {
	for i := 0; i < 4; i++ {
		w := &captureWriter{}
		lw := NewLineWriter(w)
		lw.WriteLine(map[string]int{"i": i})
		lw.WriteLine(map[string]int{"j": i + 10})
		lw.Close()
		lw.Close()
		want := fmt.Sprintf("{\"i\":%d}\n{\"j\":%d}\n", i, i+10)
		if string(w.got) != want {
			t.Fatalf("iteration %d wrote %q, want %q", i, w.got, want)
		}
	}
}
