// Package httpapi is the HTTP plumbing shared by the query service
// (internal/server) and the shard router front (internal/shard):
// NDJSON line streaming, plain JSON bodies, request decoding, and
// the {"error": {...}} envelope. Both processes speak the exact same
// wire format — a client must not be able to tell sjrouter from
// sjserved — so the plumbing exists exactly once.
package httpapi

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"sync"

	"unijoin/client"
)

// MaxBodyBytes bounds request bodies; join/window requests are tiny.
const MaxBodyBytes = 1 << 20

// lineBuf is a poolable marshal buffer with its JSON encoder bound to
// it once — Encoder.Encode writes into the reused buffer (and appends
// the newline itself), so a steady-state streaming response allocates
// nothing per line where json.Marshal allocated the returned slice
// every call.
type lineBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

// maxPooledLineBytes caps what a returned buffer may retain: a freak
// line (a huge windowed record batch) should not pin megabytes in the
// pool for the rest of the process's life.
const maxPooledLineBytes = 1 << 20

var lineBufPool = sync.Pool{New: func() any {
	lb := &lineBuf{}
	lb.enc = json.NewEncoder(&lb.buf)
	return lb
}}

// LineWriter emits NDJSON lines, flushing each one so clients see
// results as they are produced. Started reports whether any bytes
// have reached the client — the point of no return for the HTTP
// status code. Write failures (a vanished client) are swallowed: the
// query itself is aborted separately through the request context.
// Its marshal buffer is pooled across requests; call Close (safe to
// defer, safe to call twice) when the response is done.
type LineWriter struct {
	w       http.ResponseWriter
	flusher http.Flusher
	started bool
	lb      *lineBuf
}

// NewLineWriter wraps a response writer for NDJSON streaming.
func NewLineWriter(w http.ResponseWriter) *LineWriter {
	f, _ := w.(http.Flusher)
	return &LineWriter{w: w, flusher: f}
}

// Started reports whether a line has already been written.
func (lw *LineWriter) Started() bool { return lw.started }

// ResponseWriter returns the underlying writer, for sending a proper
// error status while the stream is still unstarted.
func (lw *LineWriter) ResponseWriter() http.ResponseWriter { return lw.w }

// WriteLine marshals v and sends it as one flushed NDJSON line.
func (lw *LineWriter) WriteLine(v any) {
	if lw.lb == nil {
		lw.lb = lineBufPool.Get().(*lineBuf)
	}
	lw.lb.buf.Reset()
	if err := lw.lb.enc.Encode(v); err != nil {
		return
	}
	if !lw.started {
		lw.w.Header().Set("Content-Type", "application/x-ndjson")
		lw.started = true
	}
	lw.w.Write(lw.lb.buf.Bytes())
	if lw.flusher != nil {
		lw.flusher.Flush()
	}
}

// Close returns the line buffer to the pool. The writer must not be
// used afterwards; calling Close more than once is a no-op.
func (lw *LineWriter) Close() {
	if lw.lb == nil {
		return
	}
	if lw.lb.buf.Cap() <= maxPooledLineBytes {
		lineBufPool.Put(lw.lb)
	}
	lw.lb = nil
}

// WriteJSON sends a 200 with a plain JSON body, marshaling before any
// byte is written so an unmarshalable value becomes a 500 rather than
// a silently truncated 200.
func WriteJSON(w http.ResponseWriter, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		WriteError(w, &client.APIError{
			Status: http.StatusInternalServerError, Code: client.CodeInternal,
			Message: "encoding response: " + err.Error(),
		})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

// WriteError sends a non-2xx JSON error body ({"error": {...}}).
func WriteError(w http.ResponseWriter, e *client.APIError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.Status)
	json.NewEncoder(w).Encode(map[string]*client.APIError{"error": e})
}

// StatusRecorder captures the status code a handler sends so logging
// and metrics middleware can report it. It forwards Flush so streaming
// handlers keep working through the wrapper, and implements Unwrap so
// http.NewResponseController flush/deadline calls reach the
// underlying writer.
type StatusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *StatusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *StatusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(p)
}

// Flush implements http.Flusher when the underlying writer does.
func (r *StatusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.NewResponseController,
// so controller flush and deadline calls pass through the wrapper.
func (r *StatusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// Status returns the recorded status code (200 when the handler wrote
// a body without an explicit WriteHeader, or wrote nothing at all).
func (r *StatusRecorder) Status() int {
	if r.status == 0 {
		return http.StatusOK
	}
	return r.status
}

// RequestIDHeader carries a query's correlation ID router → shard, so
// one client request can be followed across the fleet's logs.
const RequestIDHeader = "X-Request-Id"

// maxRequestIDLen bounds IDs accepted from clients; anything longer is
// replaced rather than amplified through the fleet's logs.
const maxRequestIDLen = 64

// NewRequestID returns a fresh 16-hex-character request ID.
func NewRequestID() string {
	var b [8]byte
	rand.Read(b[:]) // crypto/rand.Read never fails on supported platforms
	return hex.EncodeToString(b[:])
}

// EnsureRequestID returns the request's X-Request-Id header, or a
// fresh ID when the header is absent or abusive. The caller echoes it
// on the response and logs it, so client, router, and shard all speak
// of the same query by the same name.
func EnsureRequestID(r *http.Request) string {
	if id := r.Header.Get(RequestIDHeader); id != "" && len(id) <= maxRequestIDLen {
		return id
	}
	return NewRequestID()
}

// PprofMux returns a mux serving the standard net/http/pprof
// endpoints under /debug/pprof/ — the side listener both sjserved and
// sjrouter expose with -pprof, kept off the query mux so profiling
// never rides the public port.
func PprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DecodeBody parses a JSON request body, returning an API error for
// anything malformed or unknown.
func DecodeBody(w http.ResponseWriter, r *http.Request, into any) *client.APIError {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return &client.APIError{
			Status: http.StatusBadRequest, Code: client.CodeBadRequest,
			Message: "bad request body: " + err.Error(),
		}
	}
	return nil
}
