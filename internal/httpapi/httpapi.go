// Package httpapi is the HTTP plumbing shared by the query service
// (internal/server) and the shard router front (internal/shard):
// NDJSON line streaming, plain JSON bodies, request decoding, and
// the {"error": {...}} envelope. Both processes speak the exact same
// wire format — a client must not be able to tell sjrouter from
// sjserved — so the plumbing exists exactly once.
package httpapi

import (
	"encoding/json"
	"net/http"

	"unijoin/client"
)

// MaxBodyBytes bounds request bodies; join/window requests are tiny.
const MaxBodyBytes = 1 << 20

// LineWriter emits NDJSON lines, flushing each one so clients see
// results as they are produced. Started reports whether any bytes
// have reached the client — the point of no return for the HTTP
// status code. Write failures (a vanished client) are swallowed: the
// query itself is aborted separately through the request context.
type LineWriter struct {
	w       http.ResponseWriter
	flusher http.Flusher
	started bool
}

// NewLineWriter wraps a response writer for NDJSON streaming.
func NewLineWriter(w http.ResponseWriter) *LineWriter {
	f, _ := w.(http.Flusher)
	return &LineWriter{w: w, flusher: f}
}

// Started reports whether a line has already been written.
func (lw *LineWriter) Started() bool { return lw.started }

// ResponseWriter returns the underlying writer, for sending a proper
// error status while the stream is still unstarted.
func (lw *LineWriter) ResponseWriter() http.ResponseWriter { return lw.w }

// WriteLine marshals v and sends it as one flushed NDJSON line.
func (lw *LineWriter) WriteLine(v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	if !lw.started {
		lw.w.Header().Set("Content-Type", "application/x-ndjson")
		lw.started = true
	}
	lw.w.Write(append(data, '\n'))
	if lw.flusher != nil {
		lw.flusher.Flush()
	}
}

// WriteJSON sends a 200 with a plain JSON body, marshaling before any
// byte is written so an unmarshalable value becomes a 500 rather than
// a silently truncated 200.
func WriteJSON(w http.ResponseWriter, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		WriteError(w, &client.APIError{
			Status: http.StatusInternalServerError, Code: client.CodeInternal,
			Message: "encoding response: " + err.Error(),
		})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

// WriteError sends a non-2xx JSON error body ({"error": {...}}).
func WriteError(w http.ResponseWriter, e *client.APIError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.Status)
	json.NewEncoder(w).Encode(map[string]*client.APIError{"error": e})
}

// DecodeBody parses a JSON request body, returning an API error for
// anything malformed or unknown.
func DecodeBody(w http.ResponseWriter, r *http.Request, into any) *client.APIError {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return &client.APIError{
			Status: http.StatusBadRequest, Code: client.CodeBadRequest,
			Message: "bad request body: " + err.Error(),
		}
	}
	return nil
}
