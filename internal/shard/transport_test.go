package shard_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"unijoin"
	"unijoin/client"
	"unijoin/internal/datagen"
	"unijoin/internal/shard"
	"unijoin/internal/wire"
)

// TestBinaryTransportEqualsNDJSON is the transport-parity property:
// for every algorithm, shard count, and windowing, the pair set a
// client receives over the negotiated binary transport equals the
// NDJSON set equals the single-process brute-force answer — on
// uniform and boundary-adversarial inputs, through the full
// client → router relay → shards path.
func TestBinaryTransportEqualsNDJSON(t *testing.T) {
	fixedBounds := []unijoin.Coord{140, 320, 500, 680, 810, 930}
	advA, advB := adversarial(fixedBounds)
	cases := []struct {
		name  string
		a, b  []unijoin.Record
		fixed []unijoin.Coord
	}{
		{name: "uniform", a: datagen.Uniform(61, 1500, universe, 25), b: datagen.Uniform(62, 1100, universe, 25)},
		{name: "adversarial", a: advA, b: advB, fixed: fixedBounds},
	}
	win := unijoin.NewRect(100, 100, 450, 450)
	winDTO := client.Rect{XLo: 100, YLo: 100, XHi: 450, YHi: 450}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rels := map[string][]unijoin.Record{"a": tc.a, "b": tc.b}
			names := []string{"a", "b"}
			wantAll := brute(tc.a, tc.b, nil)
			wantWin := brute(tc.a, tc.b, &win)

			for _, k := range []int{1, 2, 4} {
				var plan *shard.Plan
				if tc.fixed != nil {
					var err error
					plan, err = shard.PlanFromBoundaries(universe, tc.fixed[:k-1])
					if err != nil {
						t.Fatal(err)
					}
				} else {
					plan = shard.NewPlan(universe, k, tc.a, tc.b)
				}
				ncl, _, url := startFleet(t, plan, names, rels, true)
				bcl := client.New(url, nil)
				bcl.PreferBinary = true
				ctx := context.Background()

				for _, alg := range allAlgorithms {
					for _, windowed := range []bool{false, true} {
						req := client.JoinRequest{Left: "a", Right: "b", Algorithm: alg}
						want := wantAll
						if windowed {
							req.Window = &winDTO
							want = wantWin
						}
						collect := func(cl *client.Client) map[unijoin.Pair]bool {
							got := map[unijoin.Pair]bool{}
							dups := 0
							sum, err := cl.Join(ctx, req, func(l, r uint32) {
								p := unijoin.Pair{Left: l, Right: r}
								if got[p] {
									dups++
								}
								got[p] = true
							})
							if err != nil {
								t.Fatalf("k=%d %s windowed=%v: %v", k, alg, windowed, err)
							}
							if dups != 0 {
								t.Fatalf("k=%d %s windowed=%v: %d duplicate pairs", k, alg, windowed, dups)
							}
							if int64(len(got)) != sum.Pairs {
								t.Fatalf("k=%d %s windowed=%v: streamed %d pairs, summary says %d",
									k, alg, windowed, len(got), sum.Pairs)
							}
							return got
						}
						nd := collect(ncl)
						bin := collect(bcl)
						if len(nd) != len(want) || len(bin) != len(want) {
							t.Fatalf("k=%d %s windowed=%v: ndjson %d, binary %d, brute %d pairs",
								k, alg, windowed, len(nd), len(bin), len(want))
						}
						for p := range want {
							if !nd[p] {
								t.Fatalf("k=%d %s windowed=%v: pair %v missing over NDJSON", k, alg, windowed, p)
							}
							if !bin[p] {
								t.Fatalf("k=%d %s windowed=%v: pair %v missing over binary", k, alg, windowed, p)
							}
						}
					}
				}

				// Window queries: the record sets must agree too.
				collectRecs := func(cl *client.Client) map[uint32]client.RecordOut {
					got := map[uint32]client.RecordOut{}
					if _, err := cl.Window(ctx, client.WindowRequest{Relation: "a", Window: &winDTO},
						func(r client.RecordOut) { got[r.ID] = r }); err != nil {
						t.Fatalf("k=%d window: %v", k, err)
					}
					return got
				}
				ndr, binr := collectRecs(ncl), collectRecs(bcl)
				if len(ndr) != len(binr) {
					t.Fatalf("k=%d window: %d records over NDJSON, %d over binary", k, len(ndr), len(binr))
				}
				for id, w := range ndr {
					g, ok := binr[id]
					if !ok {
						t.Fatalf("k=%d window: record %d missing over binary", k, id)
					}
					if g.Rect != w.Rect {
						t.Fatalf("k=%d window: record %d rect %+v over binary, %+v over NDJSON", k, id, g.Rect, w.Rect)
					}
				}
			}
		})
	}
}

// frameShardStub serves POST /v1/join with a fixed pre-framed binary
// body, standing in for a shard whose exact output bytes the test
// controls.
func frameShardStub(t *testing.T, body []byte) string {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/join", func(w http.ResponseWriter, r *http.Request) {
		if !wire.Negotiates(r) {
			t.Error("router did not negotiate the binary transport with the shard")
		}
		w.Header().Set("Content-Type", wire.ContentType)
		w.Write(body)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestRouterRelayZeroDecode proves the router's relay performs zero
// per-entry decode end to end: a shard's PAIRS frame with a
// deliberately broken payload CRC — which any decode/re-encode cycle
// would either reject or silently repair — must come out of the
// router front byte-identical, CRC still broken.
func TestRouterRelayZeroDecode(t *testing.T) {
	payload := []byte{7, 0, 0, 0, 9, 0, 0, 0} // one pair (7, 9)
	corrupt := wire.AppendFrame(nil, wire.TypePairs, payload)
	corrupt[8] ^= 0xA5 // break the CRC
	sum, err := json.Marshal(&client.JoinSummary{Left: "a", Right: "b", Algorithm: "PQ", Pairs: 1})
	if err != nil {
		t.Fatal(err)
	}
	body := append([]byte(nil), corrupt...)
	body = wire.AppendFrame(body, wire.TypeSummary, sum)
	body = wire.AppendFrame(body, wire.TypeEnd, nil)

	router, err := shard.NewRouter([]string{frameShardStub(t, body)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	svc := shard.NewService(shard.ServiceConfig{Router: router, Logger: discard()})
	front := httptest.NewServer(svc.Handler())
	t.Cleanup(front.Close)

	req, err := http.NewRequest(http.MethodPost, front.URL+"/v1/join",
		bytes.NewReader([]byte(`{"left":"a","right":"b"}`)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", wire.ContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if !wire.IsFrameResponse(resp.Header.Get("Content-Type")) {
		t.Fatalf("front answered %q, want a frame stream", resp.Header.Get("Content-Type"))
	}

	sc := wire.NewScanner(resp.Body)
	typ, raw, err := sc.Next()
	if err != nil || typ != wire.TypePairs {
		t.Fatalf("first frame: type %v, err %v; want relayed pairs", typ, err)
	}
	if !bytes.Equal(raw, corrupt) {
		t.Fatalf("router modified the relayed frame:\n got %x\nwant %x", raw, corrupt)
	}
	if err := wire.Verify(raw); !errors.Is(err, wire.ErrChecksum) {
		t.Fatalf("relayed CRC verifies as %v — the router must have re-encoded the payload", err)
	}
	typ, raw, err = sc.Next()
	if err != nil || typ != wire.TypeSummary {
		t.Fatalf("second frame: type %v, err %v; want the merged summary", typ, err)
	}
	var merged client.JoinSummary
	if err := json.Unmarshal(raw[wire.HeaderSize:], &merged); err != nil || merged.Pairs != 1 {
		t.Fatalf("merged summary: %+v, err %v", merged, err)
	}
	if typ, _, err = sc.Next(); err != nil || typ != wire.TypeEnd {
		t.Fatalf("third frame: type %v, err %v; want end", typ, err)
	}
}

// TestRouterReframesNDJSONShard covers the rolling-upgrade case: a
// shard that only speaks NDJSON behind a router whose client asked
// for frames. The router must re-frame the shard's batches so the
// front's output is still a valid frame stream with the same pairs.
func TestRouterReframesNDJSONShard(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/join", func(w http.ResponseWriter, r *http.Request) {
		// An old shard: ignores Accept, always answers NDJSON.
		w.Header().Set("Content-Type", "application/x-ndjson")
		io.WriteString(w, `{"pairs":[[1,2],[3,4]]}`+"\n")
		io.WriteString(w, `{"summary":{"left":"a","right":"b","algorithm":"PQ","pairs":2,"left_records":2,"right_records":2,"elapsed_ms":1}}`+"\n")
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	router, err := shard.NewRouter([]string{ts.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	svc := shard.NewService(shard.ServiceConfig{Router: router, Logger: discard()})
	front := httptest.NewServer(svc.Handler())
	t.Cleanup(front.Close)

	bcl := client.New(front.URL, nil)
	bcl.PreferBinary = true
	var got [][2]uint32
	sum, err := bcl.Join(context.Background(), client.JoinRequest{Left: "a", Right: "b"},
		func(l, r uint32) { got = append(got, [2]uint32{l, r}) })
	if err != nil {
		t.Fatal(err)
	}
	if sum.Pairs != 2 || len(got) != 2 || got[0] != [2]uint32{1, 2} || got[1] != [2]uint32{3, 4} {
		t.Fatalf("reframed stream: pairs %v, summary %+v", got, sum)
	}
}

// TestMidStreamShardFailureBinary pins the failure contract of the
// relay path: when a shard dies after the router has already relayed
// DATA frames, the front must close its response with a well-formed
// ERROR frame (mapping to the internal-error class) and END — never a
// silently truncated stream.
func TestMidStreamShardFailureBinary(t *testing.T) {
	goodFrame := wire.AppendFrame(nil, wire.TypePairs, []byte{1, 0, 0, 0, 2, 0, 0, 0})
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/join", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", wire.ContentType)
		w.Write(goodFrame)
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		// Die mid-frame: a header fragment, then the connection ends.
		w.Write([]byte{wire.Magic0, wire.Magic1, wire.Version})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	router, err := shard.NewRouter([]string{ts.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	svc := shard.NewService(shard.ServiceConfig{Router: router, Logger: discard()})
	front := httptest.NewServer(svc.Handler())
	t.Cleanup(front.Close)

	// Raw inspection first: the front's stream must decode cleanly
	// frame by frame and terminate DATA… ERROR END.
	req, err := http.NewRequest(http.MethodPost, front.URL+"/v1/join",
		bytes.NewReader([]byte(`{"left":"a","right":"b"}`)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", wire.ContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec := wire.NewDecoder(resp.Body)
	var types []wire.Type
	var apiErr client.APIError
	for {
		f, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("front stream is not well-formed after shard failure: %v", err)
		}
		types = append(types, f.Type)
		if f.Type == wire.TypeError {
			if err := json.Unmarshal(f.Payload, &apiErr); err != nil {
				t.Fatalf("bad ERROR frame payload: %v", err)
			}
		}
	}
	if len(types) < 3 || types[0] != wire.TypePairs ||
		types[len(types)-2] != wire.TypeError || types[len(types)-1] != wire.TypeEnd {
		t.Fatalf("frame sequence %v; want pairs… error end", types)
	}
	if apiErr.Code == "" {
		t.Fatal("ERROR frame carried no error code")
	}

	// And through the decoding client: relayed pairs arrive, then the
	// typed error, matching the internal-error class.
	bcl := client.New(front.URL, nil)
	bcl.PreferBinary = true
	var pairs int
	_, err = bcl.Join(context.Background(), client.JoinRequest{Left: "a", Right: "b"},
		func(l, r uint32) { pairs++ })
	if err == nil {
		t.Fatal("mid-stream shard failure surfaced no error")
	}
	if !errors.Is(err, client.ErrInternal) {
		t.Fatalf("mid-stream failure error = %v, want the ErrInternal class", err)
	}
	if pairs != 1 {
		t.Fatalf("relayed %d pairs before the failure, want 1", pairs)
	}
}
