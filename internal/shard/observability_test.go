package shard_test

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"unijoin"
	"unijoin/client"
	"unijoin/internal/datagen"
	"unijoin/internal/shard"
)

// obsFleet boots a 3-shard fleet over two uniform relations and
// returns the front client and router.
func obsFleet(t *testing.T) (*client.Client, *shard.Router) {
	t.Helper()
	rels := map[string][]unijoin.Record{
		"a": datagen.Uniform(7, 1200, universe, 25),
		"b": datagen.Uniform(8, 900, universe, 25),
	}
	plan, err := shard.PlanFromBoundaries(universe, []unijoin.Coord{333, 666})
	if err != nil {
		t.Fatal(err)
	}
	cl, router, _ := startFleet(t, plan, []string{"a", "b"}, rels, true)
	return cl, router
}

// TestTraceAcrossFleet is the acceptance test for per-query phase
// traces: a join with "trace": true through the full client → router
// → shard path returns partition/sweep/stream wall times, and the
// flag off returns no trace.
func TestTraceAcrossFleet(t *testing.T) {
	cl, _ := obsFleet(t)
	ctx := context.Background()

	sum, err := cl.Join(ctx, client.JoinRequest{
		Left: "a", Right: "b", Algorithm: "SSSJ", Trace: true,
	}, func(uint32, uint32) {})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Trace == nil {
		t.Fatal("summary.trace missing with trace: true through the router")
	}
	if sum.Trace.SweepMillis <= 0 {
		t.Fatalf("fleet trace = %+v, want positive sweep time", sum.Trace)
	}
	if sum.Trace.PartitionMillis <= 0 {
		t.Fatalf("fleet SSSJ trace = %+v, want positive partition time (external sorts)", sum.Trace)
	}
	// The router merges per phase by max across shards, so no phase
	// can exceed the slowest shard's elapsed time.
	if sum.Trace.SweepMillis > sum.ElapsedMillis+1 {
		t.Fatalf("sweep %vms exceeds elapsed %vms", sum.Trace.SweepMillis, sum.ElapsedMillis)
	}

	sum, err = cl.JoinCount(ctx, client.JoinRequest{Left: "a", Right: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Trace != nil {
		t.Fatalf("summary.trace = %+v without the flag, want absent", sum.Trace)
	}
}

// TestRouterShardStats verifies the router's extended /v1/stats: one
// ShardStat per shard, scatter counters moving, and a smoothed
// latency estimate once traffic has flowed.
func TestRouterShardStats(t *testing.T) {
	cl, router := obsFleet(t)
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, err := cl.JoinCount(ctx, client.JoinRequest{Left: "a", Right: "b"}); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shards != 3 || len(stats.ShardStats) != 3 {
		t.Fatalf("stats shards = %d, shard_stats = %d, want 3 and 3", stats.Shards, len(stats.ShardStats))
	}
	for i, ss := range stats.ShardStats {
		if ss.Endpoint != router.Endpoints()[i] {
			t.Fatalf("shard %d endpoint = %q, want %q", i, ss.Endpoint, router.Endpoints()[i])
		}
		if ss.Stripe == nil {
			t.Fatalf("shard %d reports no stripe", i)
		}
		if ss.ScatterRequests == 0 {
			t.Fatalf("shard %d scatter_requests = 0 after traffic", i)
		}
		if ss.Requests == 0 {
			t.Fatalf("shard %d self-reported requests = 0", i)
		}
		if ss.LatencyEWMAMillis <= 0 {
			t.Fatalf("shard %d latency EWMA = %v, want > 0", i, ss.LatencyEWMAMillis)
		}
		if ss.ScatterErrors != 0 {
			t.Fatalf("shard %d scatter_errors = %d on a healthy fleet", i, ss.ScatterErrors)
		}
	}
	if stats.JoinLatencyEWMAMillis["PQ"] <= 0 {
		t.Fatalf("fleet per-algorithm EWMA = %+v, want PQ > 0", stats.JoinLatencyEWMAMillis)
	}
}

// TestRouterMetricsEndpoint scrapes the router's /metrics and checks
// the per-shard scatter families are present, well-formed, and
// populated for every shard.
func TestRouterMetricsEndpoint(t *testing.T) {
	rels := map[string][]unijoin.Record{
		"a": datagen.Uniform(7, 600, universe, 25),
		"b": datagen.Uniform(8, 500, universe, 25),
	}
	plan, err := shard.PlanFromBoundaries(universe, []unijoin.Coord{500})
	if err != nil {
		t.Fatal(err)
	}
	urls := make([]string, plan.Shards())
	for i := range urls {
		urls[i] = startShard(t, plan.Interval(i), []string{"a", "b"}, rels, true)
	}
	router, err := shard.NewRouter(urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	svc := shard.NewService(shard.ServiceConfig{Router: router, Logger: discard()})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	front := ts.URL
	cl := client.New(front, nil)

	if _, err := cl.JoinCount(context.Background(), client.JoinRequest{Left: "a", Right: "b"}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(front + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	var body strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		body.WriteString(line + "\n")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if got := len(strings.Fields(line)); got != 2 {
			t.Fatalf("bad exposition line %q: %d fields", line, got)
		}
	}
	for _, shardURL := range urls {
		for _, fam := range []string{
			`sj_shard_scatter_seconds_count{shard="` + shardURL + `"}`,
			`sj_shard_latency_ewma_ms{shard="` + shardURL + `"}`,
		} {
			if !strings.Contains(body.String(), fam) {
				t.Fatalf("router exposition missing %q:\n%s", fam, body.String())
			}
		}
	}
	if !strings.Contains(body.String(), `sj_requests_total{endpoint="join",status="200"} 1`) {
		t.Fatalf("router exposition missing its own request counter:\n%s", body.String())
	}

	// The router echoes a caller's request ID, the same contract as a
	// single sjserved (and it forwards the ID to every shard call).
	req, _ := http.NewRequest(http.MethodGet, front+"/v1/stats", nil)
	req.Header.Set("X-Request-Id", "ride2e")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-Id"); got != "ride2e" {
		t.Fatalf("router echoed request id %q, want ride2e", got)
	}
}
