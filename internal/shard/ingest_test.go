package shard_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"unijoin"
	"unijoin/client"
	"unijoin/internal/datagen"
	"unijoin/internal/shard"
)

// wireRecords converts records to the append request's wire form.
func wireRecords(recs []unijoin.Record) []client.RecordIn {
	out := make([]client.RecordIn, len(recs))
	for i, r := range recs {
		out[i] = client.RecordIn{ID: r.ID, Rect: client.Rect{
			XLo: float64(r.Rect.XLo), YLo: float64(r.Rect.YLo),
			XHi: float64(r.Rect.XHi), YHi: float64(r.Rect.YHi),
		}}
	}
	return out
}

// wireNDJSON renders records as the bulk append format, one JSON
// object per line.
func wireNDJSON(recs []unijoin.Record) string {
	var b strings.Builder
	for _, r := range wireRecords(recs) {
		fmt.Fprintf(&b, "{\"id\":%d,\"rect\":{\"xlo\":%g,\"ylo\":%g,\"xhi\":%g,\"yhi\":%g}}\n",
			r.ID, r.Rect.XLo, r.Rect.YLo, r.Rect.XHi, r.Rect.YHi)
	}
	return b.String()
}

// ingestDelta builds an append batch: uniform records plus, when
// bounds are given, records sitting exactly on the fleet's stripe
// boundaries — zero-width on the boundary and crossing it — the
// adversarial cases of the write fan-out's Loads rule.
func ingestDelta(seed int64, n, idBase int, bounds []unijoin.Coord) []unijoin.Record {
	recs := datagen.Uniform(seed, n, universe, 25)
	for i := range recs {
		recs[i].ID = uint32(idBase + i)
	}
	id := uint32(idBase + n)
	for _, bd := range bounds {
		recs = append(recs,
			unijoin.Record{Rect: unijoin.NewRect(bd, 50, bd, 950), ID: id},
			unijoin.Record{Rect: unijoin.NewRect(bd-4, 100, bd+4, 600), ID: id + 1},
		)
		id += 2
	}
	return recs
}

// TestRouterAppendEqualsSingleProcess is the live-ingestion sharding
// property: appending through the router — which fans each record to
// every shard whose stripe it overlaps — leaves the fleet answering
// joins and window queries exactly like a single process holding the
// grown relations, for every algorithm and shard count, with
// boundary-sitting appends included.
func TestRouterAppendEqualsSingleProcess(t *testing.T) {
	fixedBounds := []unijoin.Coord{140, 320, 500, 680, 810, 930}
	baseA := datagen.Uniform(61, 1200, universe, 25)
	baseB := datagen.Uniform(62, 900, universe, 25)
	rels := map[string][]unijoin.Record{"a": baseA, "b": baseB}
	names := []string{"a", "b"}
	wantBase := brute(baseA, baseB, nil)

	for _, k := range []int{1, 2, 4, 7} {
		t.Run(fmt.Sprintf("shards-%d", k), func(t *testing.T) {
			bounds := fixedBounds[:k-1]
			plan, err := shard.PlanFromBoundaries(universe, bounds)
			if err != nil {
				t.Fatal(err)
			}
			cl, _, _ := startFleet(t, plan, names, rels, true)
			ctx := context.Background()

			// Queries before the append see exactly the base state.
			sum, err := cl.JoinCount(ctx, client.JoinRequest{Left: "a", Right: "b"})
			if err != nil {
				t.Fatal(err)
			}
			if sum.Pairs != int64(len(wantBase)) {
				t.Fatalf("pre-append count %d, want %d", sum.Pairs, len(wantBase))
			}

			// Bulk NDJSON append to "a" through the router.
			deltaA := ingestDelta(int64(63+k), 300, len(baseA), bounds)
			asum, err := cl.AppendNDJSON(ctx, "a", strings.NewReader(wireNDJSON(deltaA)))
			if err != nil {
				t.Fatal(err)
			}
			if asum.Appended != int64(len(deltaA)) || asum.Shards != k {
				t.Fatalf("append summary %+v, want appended=%d shards=%d", asum, len(deltaA), k)
			}
			grownA := append(append([]unijoin.Record(nil), baseA...), deltaA...)
			wantAfter := brute(grownA, baseB, nil)

			for _, alg := range allAlgorithms {
				got := map[unijoin.Pair]bool{}
				dups := 0
				jsum, err := cl.Join(ctx, client.JoinRequest{Left: "a", Right: "b", Algorithm: alg},
					func(l, r uint32) {
						p := unijoin.Pair{Left: l, Right: r}
						if got[p] {
							dups++
						}
						got[p] = true
					})
				if err != nil {
					t.Fatalf("k=%d %s: %v", k, alg, err)
				}
				if dups != 0 {
					t.Fatalf("k=%d %s: %d duplicate pairs after append", k, alg, dups)
				}
				if len(got) != len(wantAfter) || jsum.Pairs != int64(len(wantAfter)) {
					t.Fatalf("k=%d %s: %d pairs (summary %d), want %d",
						k, alg, len(got), jsum.Pairs, len(wantAfter))
				}
				for p := range got {
					if !wantAfter[p] {
						t.Fatalf("k=%d %s: spurious pair %v", k, alg, p)
					}
				}
			}

			// The appended records answer window queries too, without
			// boundary-replica duplicates.
			win := unijoin.NewRect(100, 100, 600, 600)
			winDTO := client.Rect{XLo: 100, YLo: 100, XHi: 600, YHi: 600}
			wantRecs := map[uint32]bool{}
			for _, r := range grownA {
				if r.Rect.Intersects(win) {
					wantRecs[r.ID] = true
				}
			}
			gotRecs := map[uint32]bool{}
			recDups := 0
			rsum, err := cl.Window(ctx, client.WindowRequest{Relation: "a", Window: &winDTO},
				func(r client.RecordOut) {
					if gotRecs[r.ID] {
						recDups++
					}
					gotRecs[r.ID] = true
				})
			if err != nil {
				t.Fatal(err)
			}
			if recDups != 0 || len(gotRecs) != len(wantRecs) || rsum.Records != int64(len(wantRecs)) {
				t.Fatalf("k=%d window: %d records, %d dups (summary %d), want %d",
					k, len(gotRecs), recDups, rsum.Records, len(wantRecs))
			}

			// Grow the other side through the JSON-array path and
			// re-check one algorithm end to end.
			deltaB := ingestDelta(int64(73+k), 150, len(baseB), nil)
			if _, err := cl.AppendRecords(ctx, "b", wireRecords(deltaB)); err != nil {
				t.Fatal(err)
			}
			grownB := append(append([]unijoin.Record(nil), baseB...), deltaB...)
			wantFinal := brute(grownA, grownB, nil)
			fsum, err := cl.JoinCount(ctx, client.JoinRequest{Left: "a", Right: "b", Algorithm: "ST"})
			if err != nil {
				t.Fatal(err)
			}
			if fsum.Pairs != int64(len(wantFinal)) {
				t.Fatalf("k=%d final count %d, want %d", k, fsum.Pairs, len(wantFinal))
			}

			// The router's stats aggregate the fleet's ingest counters.
			stats, err := cl.Stats(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if stats.RecordsIngested == 0 || stats.Appends < int64(2*k) {
				t.Fatalf("router stats %+v missing ingest counters", stats)
			}
		})
	}
}

// TestRouterConcurrentAppendsAndQueries is the routed half of the
// concurrency satellite. Serialized appends through the router are
// checked for exact prefix visibility (every routed query between
// appends returns precisely some append-prefix's pair set); then a
// writer streams batches in while join and window queries stream out
// concurrently, and every result must be sandwiched between the
// reference sets of the last batch completed before the query and the
// final state — each shard pins its own epoch, so the merged set is a
// union of per-shard consistent prefixes, never a torn read within a
// shard, never a duplicate, never a pair outside the final state.
func TestRouterConcurrentAppendsAndQueries(t *testing.T) {
	baseA := datagen.Uniform(81, 700, universe, 30)
	baseB := datagen.Uniform(82, 500, universe, 30)
	const batches = 4
	const batchSize = 90
	bounds := []unijoin.Coord{500}
	plan, err := shard.PlanFromBoundaries(universe, bounds)
	if err != nil {
		t.Fatal(err)
	}
	cl, _, _ := startFleet(t, plan, []string{"a", "b"},
		map[string][]unijoin.Record{"a": baseA, "b": baseB}, true)
	ctx := context.Background()

	deltas := make([][]unijoin.Record, batches)
	refs := make([]map[unijoin.Pair]bool, batches+1)
	prefix := append([]unijoin.Record(nil), baseA...)
	for k := 0; k <= batches; k++ {
		refs[k] = brute(prefix, baseB, nil)
		if k < batches {
			deltas[k] = ingestDelta(int64(90+k), batchSize, len(prefix), bounds)
			prefix = append(prefix, deltas[k]...)
		}
	}
	for k := 0; k < batches; k++ {
		if len(refs[k+1]) <= len(refs[k]) {
			t.Fatalf("reference counts not strictly increasing at %d; pick new seeds", k)
		}
	}

	// Serialized: each append-then-query observes the exact prefix.
	for k := 0; k < batches; k++ {
		if _, err := cl.AppendRecords(ctx, "a", wireRecords(deltas[k])); err != nil {
			t.Fatal(err)
		}
		got := map[unijoin.Pair]bool{}
		if _, err := cl.Join(ctx, client.JoinRequest{Left: "a", Right: "b"},
			func(l, r uint32) { got[unijoin.Pair{Left: l, Right: r}] = true }); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(refs[k+1]) {
			t.Fatalf("after batch %d: %d pairs, want %d", k, len(got), len(refs[k+1]))
		}
		for p := range got {
			if !refs[k+1][p] {
				t.Fatalf("after batch %d: spurious pair %v", k, p)
			}
		}
	}

	// Concurrent: rebuild a fresh fleet and race the writer against
	// readers.
	cl2, _, _ := startFleet(t, plan, []string{"a", "b"},
		map[string][]unijoin.Record{"a": baseA, "b": baseB}, true)
	var completed atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for k := 0; k < batches; k++ {
			if _, err := cl2.AppendNDJSON(ctx, "a", strings.NewReader(wireNDJSON(deltas[k]))); err != nil {
				errs <- err
				return
			}
			completed.Store(int64(k + 1))
		}
	}()
	for reader := 0; reader < 2; reader++ {
		wg.Add(1)
		go func(alg string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				before := completed.Load()
				got := map[unijoin.Pair]bool{}
				if _, err := cl2.Join(ctx, client.JoinRequest{Left: "a", Right: "b", Algorithm: alg},
					func(l, r uint32) {
						p := unijoin.Pair{Left: l, Right: r}
						if got[p] {
							errs <- fmt.Errorf("%s: duplicate pair %v", alg, p)
						}
						got[p] = true
					}); err != nil {
					errs <- err
					return
				}
				// Sandwich: everything visible before the query stays
				// visible, and nothing beyond the final state appears.
				for p := range refs[before] {
					if !got[p] {
						errs <- fmt.Errorf("%s: pair %v from completed batch %d missing", alg, p, before)
						return
					}
				}
				for p := range got {
					if !refs[batches][p] {
						errs <- fmt.Errorf("%s: pair %v outside the final state", alg, p)
						return
					}
				}
			}
		}([]string{"PQ", "ST"}[reader])
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Settled: the routed fleet converged on the full prefix.
	fsum, err := cl2.JoinCount(ctx, client.JoinRequest{Left: "a", Right: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if fsum.Pairs != int64(len(refs[batches])) {
		t.Fatalf("final routed count %d, want %d", fsum.Pairs, len(refs[batches]))
	}
}
