package shard

import (
	"context"
	"time"

	"unijoin/client"
	"unijoin/internal/obs"
)

// scatterFunc is the per-shard body of a scatter call.
type scatterFunc = func(ctx context.Context, i int, cl *client.Client) error

// ShardCall records one scatter leg of a traced request: the endpoint
// it hit, when the leg started and how long it ran on the router's
// clock, the span tree the shard returned in its summary (traced
// requests only), and the leg's failure, if any.
type ShardCall struct {
	Endpoint string
	Start    time.Time
	Elapsed  time.Duration
	Spans    *client.Span
	Err      error
}

// callTrace threads per-leg tracing through one scatter. The span IDs
// are minted before the fan-out and sent downstream as X-Parent-Span,
// so each shard's own trace records which scatter leg called it — the
// cross-process edge that joins the two trees.
type callTrace struct {
	ids   []string
	calls []ShardCall
}

// newCallTrace sizes a call trace for the router's fleet.
func (r *Router) newCallTrace() *callTrace {
	ct := &callTrace{
		ids:   make([]string, len(r.clients)),
		calls: make([]ShardCall, len(r.clients)),
	}
	for i := range ct.ids {
		ct.ids[i] = obs.NewSpanID()
	}
	return ct
}

// traced wraps a scatter body to record the leg into ct and propagate
// the leg's span ID downstream. A nil ct returns fn unchanged, so the
// untraced paths pay nothing.
func (r *Router) traced(ct *callTrace, fn scatterFunc) scatterFunc {
	if ct == nil {
		return fn
	}
	return func(ctx context.Context, i int, cl *client.Client) error {
		c := &ct.calls[i]
		c.Endpoint = r.endpoints[i]
		c.Start = time.Now()
		err := fn(client.WithParentSpan(ctx, ct.ids[i]), i, cl)
		c.Elapsed = time.Since(c.Start)
		c.Err = err
		return err
	}
}

// attach builds the root's scatter children from a completed call
// trace: one "scatter" span per shard leg, carrying the endpoint as
// its shard attribute and grafting the span tree the shard returned.
func (ct *callTrace) attach(root *obs.Span) {
	for i := range ct.calls {
		c := &ct.calls[i]
		child := &obs.Span{
			ID: ct.ids[i], Name: "scatter",
			Start: c.Start, Duration: c.Elapsed,
			Attrs: map[string]string{"shard": c.Endpoint},
		}
		if c.Err != nil {
			child.Attrs["error"] = c.Err.Error()
		}
		if c.Spans != nil {
			child.Children = append(child.Children, obsSpanFromDTO(c.Spans, c.Start))
		}
		root.Children = append(root.Children, child)
	}
}

// obsSpanFromDTO rebases a shard's wire span tree onto base — the
// scatter leg's start on the router's clock. Wire offsets are all
// relative to the shard tree's root, so the same base serves every
// depth; rebasing sidesteps cross-host clock skew entirely (the
// shard's wall-clock start never crosses the wire).
func obsSpanFromDTO(d *client.Span, base time.Time) *obs.Span {
	s := &obs.Span{
		ID:       d.ID,
		Name:     d.Name,
		Start:    base.Add(time.Duration(d.StartMillis * float64(time.Millisecond))),
		Duration: time.Duration(d.DurationMillis * float64(time.Millisecond)),
	}
	if len(d.Attrs) > 0 {
		s.Attrs = make(map[string]string, len(d.Attrs))
		for k, v := range d.Attrs {
			s.Attrs[k] = v
		}
	}
	for _, c := range d.Children {
		s.Children = append(s.Children, obsSpanFromDTO(c, base))
	}
	return s
}
