package shard

import (
	"fmt"
	"math"

	"unijoin/internal/geom"
	"unijoin/internal/parallel"
)

// Plan is a sharding of the universe into K stripes: the K-1 internal
// boundaries plus the universe they cut. It answers which shard owns
// a point, what each shard's ownership interval and stripe rectangle
// are, and how a record set distributes over the shards. Plans are
// immutable and safe for concurrent use.
type Plan struct {
	part     *parallel.Partitioner
	universe geom.Rect
	bounds   []geom.Coord
}

// NewPlan cuts the universe into at most k stripes with boundaries at
// x-center quantiles of the given inputs — the same sample-balanced
// boundaries the parallel engine sweeps, lifted to process
// granularity. Heavily clustered inputs may resolve fewer than k
// stripes (boundaries are deduplicated, never degenerate).
func NewPlan(universe geom.Rect, k int, inputs ...[]geom.Record) *Plan {
	part := parallel.NewPartitioner(universe, k, inputs...)
	return &Plan{part: part, universe: universe, bounds: part.Boundaries()}
}

// PlanFromSamples is NewPlan over pre-sorted x-center samples (one
// per input, as produced by cached catalog relations), skipping the
// serial sample sort.
func PlanFromSamples(universe geom.Rect, k int, samples ...[]geom.Coord) *Plan {
	part := parallel.NewPartitionerFromSamples(universe, k, samples...)
	return &Plan{part: part, universe: universe, bounds: part.Boundaries()}
}

// PlanFromBoundaries reconstructs a plan from its boundary list
// (strictly increasing; empty for a single shard) — how a shard or
// router rebuilds the planner's decision from configuration.
func PlanFromBoundaries(universe geom.Rect, bounds []geom.Coord) (*Plan, error) {
	part, err := parallel.PartitionerFromBoundaries(universe, bounds)
	if err != nil {
		return nil, err
	}
	return &Plan{part: part, universe: universe, bounds: part.Boundaries()}, nil
}

// Shards returns the shard count K.
func (p *Plan) Shards() int { return len(p.bounds) + 1 }

// Boundaries returns a copy of the K-1 internal boundaries.
func (p *Plan) Boundaries() []geom.Coord { return append([]geom.Coord(nil), p.bounds...) }

// Universe returns the rectangle the plan partitions.
func (p *Plan) Universe() geom.Rect { return p.universe }

// Of returns the shard owning x (reference points and record left
// edges), clamped into [0, K-1].
func (p *Plan) Of(x geom.Coord) int { return p.part.Of(x) }

// Interval returns shard i's ownership range [lo, hi), with infinite
// sentinels on the outer shards.
func (p *Plan) Interval(i int) Interval {
	iv := Interval{Lo: geom.Coord(math.Inf(-1)), Hi: geom.Coord(math.Inf(1))}
	if i > 0 {
		iv.Lo = p.bounds[i-1]
	}
	if i < len(p.bounds) {
		iv.Hi = p.bounds[i]
	}
	return iv
}

// Stripe returns shard i's x-slice of the universe (full universe
// height), for display and diagnostics; ownership decisions use
// Interval, whose outer shards extend beyond the universe edges.
func (p *Plan) Stripe(i int) geom.Rect { return p.part.Stripe(i) }

// AssignStats reports how a record set distributed over the shards of
// a plan.
type AssignStats struct {
	// Input is the record count; Placements counts shard assignments
	// (>= Input: boundary-crossing records land on several shards).
	Input, Placements int64
	// Local records lie in one stripe and were assigned uniquely;
	// Boundary records cross at least one boundary and were
	// replicated. Input = Local + Boundary.
	Local, Boundary int64
}

// Replication returns Placements/Input (0 for empty input), the
// storage overhead factor of the sharding.
func (s AssignStats) Replication() float64 {
	if s.Input == 0 {
		return 0
	}
	return float64(s.Placements) / float64(s.Input)
}

// Assign distributes recs over the plan's shards: every record goes
// to each shard whose stripe its x-interval overlaps, so local
// records (contained in one stripe) appear exactly once and
// boundary-crossing records are replicated. Per-shard order follows
// input order. This is the offline counterpart of letting each shard
// slice its own input with Interval.Slice; the two agree record for
// record.
func (p *Plan) Assign(recs []geom.Record) ([][]geom.Record, AssignStats) {
	perShard := make([][]geom.Record, p.Shards())
	var stats AssignStats
	for _, r := range recs {
		first, last := p.part.Range(r.Rect)
		stats.Input++
		if first == last {
			stats.Local++
		} else {
			stats.Boundary++
		}
		for i := first; i <= last; i++ {
			perShard[i] = append(perShard[i], r)
			stats.Placements++
		}
	}
	return perShard, stats
}

// Validate checks that a set of shard intervals tiles the line: in
// increasing order, each shard's Hi is the next shard's Lo, the first
// Lo is -Inf and the last Hi is +Inf. The router uses it to verify a
// fleet's -stripe configuration covers every reference point exactly
// once before serving traffic.
func Validate(intervals []Interval) error {
	if len(intervals) == 0 {
		return fmt.Errorf("shard: no intervals")
	}
	if !math.IsInf(float64(intervals[0].Lo), -1) {
		return fmt.Errorf("shard: first interval %s does not extend to -Inf", intervals[0])
	}
	for i, iv := range intervals {
		if !(iv.Lo < iv.Hi) {
			return fmt.Errorf("shard: interval %d (%s) is empty", i, iv)
		}
		if i > 0 && intervals[i-1].Hi != iv.Lo {
			return fmt.Errorf("shard: intervals %d (%s) and %d (%s) do not abut",
				i-1, intervals[i-1], i, iv)
		}
	}
	last := intervals[len(intervals)-1]
	if !math.IsInf(float64(last.Hi), 1) {
		return fmt.Errorf("shard: last interval %s does not extend to +Inf", last)
	}
	return nil
}
