package shard_test

import (
	"context"
	"testing"

	"unijoin"
	"unijoin/client"
	"unijoin/internal/datagen"
	"unijoin/internal/shard"
)

// TestDistributedTraceTree is the acceptance test for distributed
// tracing: a traced join through client → router → 3 shards must
// yield, on the router's GET /v1/traces/{id}, one router.join tree
// with a scatter child per shard, each carrying that shard's
// server.join subtree with the partition/sweep/stream phases — and
// each shard must have recorded its own trace under the same request
// ID with the scatter leg's span ID as its parent.
func TestDistributedTraceTree(t *testing.T) {
	rels := map[string][]unijoin.Record{
		"a": datagen.Uniform(7, 1200, universe, 25),
		"b": datagen.Uniform(8, 900, universe, 25),
	}
	plan, err := shard.PlanFromBoundaries(universe, []unijoin.Coord{333, 666})
	if err != nil {
		t.Fatal(err)
	}
	cl, router, _ := startFleet(t, plan, []string{"a", "b"}, rels, true)
	ctx := client.WithRequestID(context.Background(), "e2e-trace-1")

	sum, err := cl.Join(ctx, client.JoinRequest{
		Left: "a", Right: "b", Algorithm: "PBSM", Trace: true,
	}, func(uint32, uint32) {})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Spans == nil || sum.Spans.Name != "router.join" {
		t.Fatalf("summary.spans = %+v, want a router.join tree", sum.Spans)
	}

	det, err := cl.TraceByID(ctx, "e2e-trace-1")
	if err != nil {
		t.Fatalf("router GET /v1/traces/{id}: %v", err)
	}
	root := det.Root
	if root.Name != "router.join" {
		t.Fatalf("root span = %q, want router.join", root.Name)
	}
	if len(root.Children) != 3 {
		t.Fatalf("root has %d scatter children, want one per shard (3)", len(root.Children))
	}
	// The root wraps the whole scatter, so it can be no shorter than
	// the summary's elapsed (the slowest shard) and should sit within
	// handler overhead of it.
	if root.DurationMillis < sum.ElapsedMillis-1 {
		t.Fatalf("router root %vms shorter than merged elapsed %vms", root.DurationMillis, sum.ElapsedMillis)
	}
	if root.DurationMillis-sum.ElapsedMillis > 500 {
		t.Fatalf("router root %vms vs elapsed %vms: more than 500ms of unexplained overhead",
			root.DurationMillis, sum.ElapsedMillis)
	}

	seenShards := map[string]bool{}
	scatterIDs := map[string]string{} // shard endpoint → scatter span ID
	for _, sc := range root.Children {
		if sc.Name != "scatter" {
			t.Fatalf("router child span = %q, want scatter", sc.Name)
		}
		ep := sc.Attrs["shard"]
		if ep == "" {
			t.Fatalf("scatter span %s has no shard attribute", sc.ID)
		}
		seenShards[ep] = true
		scatterIDs[ep] = sc.ID
		if len(sc.Children) != 1 || sc.Children[0].Name != "server.join" {
			t.Fatalf("scatter[%s] children = %+v, want one grafted server.join", ep, sc.Children)
		}
		phases := map[string]bool{}
		for _, p := range sc.Children[0].Children {
			phases[p.Name] = true
		}
		for _, want := range []string{"partition", "sweep", "stream"} {
			if !phases[want] {
				t.Fatalf("scatter[%s] server.join phases = %v, missing %q", ep, phases, want)
			}
		}
		// The grafted subtree is rebased onto the leg's start, so it
		// must start at or after the scatter span and fit inside the
		// router root's window (within rounding).
		if sc.Children[0].StartMillis < sc.StartMillis-1 {
			t.Fatalf("scatter[%s] grafted tree starts at %vms, before the leg's %vms",
				ep, sc.Children[0].StartMillis, sc.StartMillis)
		}
	}
	if len(seenShards) != 3 {
		t.Fatalf("scatter spans name %d distinct shards, want 3: %v", len(seenShards), seenShards)
	}

	// Cross-process linkage: each shard recorded the same request ID,
	// with the router's scatter span ID as its trace's parent.
	for i, ep := range router.Endpoints() {
		shardCl := client.New(ep, nil)
		sdet, err := shardCl.TraceByID(ctx, "e2e-trace-1")
		if err != nil {
			t.Fatalf("shard %d GET /v1/traces/{id}: %v", i, err)
		}
		if sdet.Root.Name != "server.join" {
			t.Fatalf("shard %d root = %q, want server.join", i, sdet.Root.Name)
		}
		if want := scatterIDs[ep]; sdet.ParentSpan != want {
			t.Fatalf("shard %d parent span = %q, want the router's scatter span %q", i, sdet.ParentSpan, want)
		}
	}
}

// TestRouterWorkloadMerge checks the fleet-stats workload merge: every
// shard sees every scattered query, so the front's histogram is the
// index-wise sum (3× a client's-eye count on a 3-shard fleet) with the
// distribution shape preserved, and the nested query counters sum.
func TestRouterWorkloadMerge(t *testing.T) {
	rels := map[string][]unijoin.Record{
		"a": datagen.Uniform(7, 600, universe, 25),
		"b": datagen.Uniform(8, 500, universe, 25),
	}
	plan, err := shard.PlanFromBoundaries(universe, []unijoin.Coord{333, 666})
	if err != nil {
		t.Fatal(err)
	}
	cl, _, _ := startFleet(t, plan, []string{"a", "b"}, rels, true)
	ctx := context.Background()

	// Two joins windowed into the first bucket (width 1000/32).
	win := &client.Rect{XLo: 1, YLo: 1, XHi: 20, YHi: 999}
	for i := 0; i < 2; i++ {
		if _, err := cl.JoinCount(ctx, client.JoinRequest{
			Left: "a", Right: "b", Algorithm: "PQ", Window: win,
		}); err != nil {
			t.Fatal(err)
		}
	}

	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	w := stats.Workload
	if w == nil {
		t.Fatal("router stats.workload missing")
	}
	// 2 windowed joins × 3 shards.
	if w.Windowed != 6 {
		t.Fatalf("merged windowed = %d, want 6 (2 joins × 3 shards)", w.Windowed)
	}
	if len(w.Buckets) == 0 || w.Buckets[0] != 6 {
		t.Fatalf("merged bucket 0 = %v, want 6 (buckets: %v)", w.Buckets, w.Buckets)
	}
	if got := w.Queries["a"]["PQ"]; got != 6 {
		t.Fatalf("merged a/PQ = %d, want 6", got)
	}
}
