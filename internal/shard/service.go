package shard

import (
	"context"
	"errors"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"unijoin/client"
	"unijoin/internal/httpapi"
	"unijoin/internal/obs"
	"unijoin/internal/wire"
)

// ServiceConfig configures a Service.
type ServiceConfig struct {
	// Router is the shard fleet to serve over. Required.
	Router *Router
	// Timeout is the router-side ceiling per join/window request
	// (a request's own timeout_ms may shorten it; shards additionally
	// apply their own ceilings). Zero means no ceiling.
	Timeout time.Duration
	// Logger receives one line per request; nil uses slog.Default().
	Logger *slog.Logger
	// Traces caps the in-memory ring of recent request traces served
	// on GET /v1/traces (0 = obs.DefaultTraceCapacity). Every routed
	// join and window records a span tree there — the root wraps the
	// whole scatter, with one child per shard leg.
	Traces int
	// SlowQuery, when positive, logs one Warn line with the scatter
	// breakdown for every join or window whose wall time reaches it.
	SlowQuery time.Duration
}

// Service is the HTTP front of a Router: it speaks exactly the
// sjserved API — the same six endpoints, the same NDJSON streams,
// the same wire types — so clients cannot tell a router from a single
// server, except that /v1/stats reports the fleet size. cmd/sjrouter
// runs one under an http.Server.
type Service struct {
	router  *Router
	timeout time.Duration
	log     *slog.Logger
	mux     *http.ServeMux
	traces  *obs.TraceStore
	slow    time.Duration

	// requests/latency/inFlight live in the router's registry, so one
	// /metrics serves both the service's request families and the
	// router's per-shard scatter families.
	requests *obs.CounterVec
	latency  *obs.HistogramVec
	inFlight *obs.Gauge

	// Binary-transport families, matching internal/server's: frames
	// and bytes written to negotiated frame streams, by frame type.
	// On a router most DATA frames are relays — counted here without
	// ever being decoded.
	frames     *obs.CounterVec // sj_frames_total{type}
	frameBytes *obs.CounterVec // sj_frame_bytes_total{type}
}

// NewService builds the HTTP layer over cfg.Router.
func NewService(cfg ServiceConfig) *Service {
	if cfg.Router == nil {
		panic("shard: ServiceConfig.Router is required")
	}
	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	reg := cfg.Router.Registry()
	s := &Service{
		router: cfg.Router, timeout: cfg.Timeout, log: log, mux: http.NewServeMux(),
		traces: obs.NewTraceStore(cfg.Traces), slow: cfg.SlowQuery,
		requests: reg.CounterVec("sj_requests_total",
			"HTTP requests served, by endpoint and status code.",
			"endpoint", "status"),
		latency: reg.HistogramVec("sj_request_seconds",
			"HTTP request wall time in seconds, by endpoint.",
			nil, "endpoint"),
		inFlight: reg.Gauge("sj_requests_in_flight",
			"Requests currently being served."),
		frames: reg.CounterVec("sj_frames_total",
			"Binary transport frames written, by frame type.",
			"type"),
		frameBytes: reg.CounterVec("sj_frame_bytes_total",
			"Binary transport bytes written (headers included), by frame type.",
			"type"),
	}
	s.mux.Handle("GET /metrics", reg.Handler())
	s.mux.Handle("GET /v1/healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.Handle("GET /v1/relations", s.instrument("relations", s.handleRelations))
	s.mux.Handle("GET /v1/stats", s.instrument("stats", s.handleStats))
	s.mux.Handle("GET /v1/traces", s.instrument("traces", httpapi.TracesHandler(s.traces)))
	s.mux.Handle("GET /v1/traces/{id}", s.instrument("traces", httpapi.TraceByIDHandler(s.traces)))
	s.mux.Handle("POST /v1/join", s.instrument("join", s.handleJoin))
	s.mux.Handle("POST /v1/window", s.instrument("window", s.handleWindow))
	s.mux.Handle("POST /v1/relations/{relation}/records", s.instrument("append", s.handleAppend))
	s.mux.Handle("/", s.instrument("notfound", func(w http.ResponseWriter, r *http.Request) {
		httpapi.WriteError(w, &client.APIError{
			Status: http.StatusNotFound, Code: client.CodeNotFound,
			Message: "no such endpoint: " + r.Method + " " + r.URL.Path,
		})
	}))
	return s
}

// Handler returns the service's HTTP handler.
func (s *Service) Handler() http.Handler { return s.mux }

// instrument is the logging + metrics middleware, mirroring
// internal/server's: it ensures a request ID, propagates it to every
// downstream shard call through the context (the client package sends
// it as X-Request-Id), records the per-endpoint counters and latency,
// and logs one line with the endpoint, status, wall time, and request
// ID — so one grep follows a query through router and shards alike.
func (s *Service) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := httpapi.EnsureRequestID(r)
		w.Header().Set(httpapi.RequestIDHeader, rid)
		s.inFlight.Add(1)
		defer s.inFlight.Add(-1)
		rec := &httpapi.StatusRecorder{ResponseWriter: w}
		h(rec, r.WithContext(client.WithRequestID(r.Context(), rid)))
		status := rec.Status()
		elapsed := time.Since(start)
		s.requests.With(endpoint, strconv.Itoa(status)).Inc()
		s.latency.With(endpoint).Observe(elapsed.Seconds())
		s.log.Info("request",
			"endpoint", endpoint,
			"method", r.Method,
			"path", r.URL.Path,
			"status", status,
			"elapsed", elapsed.Round(time.Microsecond).String(),
			"request_id", rid,
		)
	})
}

// handleHealthz reports healthy only when every shard is: the router
// is up exactly when the fleet can answer queries, which is what an
// orchestrator's probe needs to know.
func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if err := s.router.Health(r.Context()); err != nil {
		httpapi.WriteError(w, &client.APIError{
			Status: http.StatusServiceUnavailable, Code: client.CodeUnavailable,
			Message: err.Error(),
		})
		return
	}
	httpapi.WriteJSON(w, map[string]string{"status": "ok"})
}

func (s *Service) handleRelations(w http.ResponseWriter, r *http.Request) {
	rels, err := s.router.Relations(r.Context())
	if err != nil {
		httpapi.WriteError(w, apiErrorFor(err))
		return
	}
	httpapi.WriteJSON(w, rels)
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	stats, err := s.router.Stats(r.Context())
	if err != nil {
		httpapi.WriteError(w, apiErrorFor(err))
		return
	}
	httpapi.WriteJSON(w, stats)
}

func (s *Service) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req client.JoinRequest
	if apiErr := httpapi.DecodeBody(w, r, &req); apiErr != nil {
		httpapi.WriteError(w, apiErr)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMillis)
	defer cancel()
	ct := s.router.newCallTrace()
	start := time.Now()

	if wire.Negotiates(r) {
		fw := s.newFrameWriter(w)
		defer fw.Close()
		var onFrame func([]byte)
		if !req.CountOnly {
			onFrame = fw.Relay
		}
		sum, err := s.router.joinFrames(ctx, req, onFrame, ct)
		if err != nil {
			s.finishErrorFrames(fw, err)
			return
		}
		s.finishJoinTrace(r, req, sum, start, ct)
		fw.WriteSummary(sum)
		fw.End()
		return
	}

	lw := httpapi.NewLineWriter(w)
	defer lw.Close()
	var onBatch func([][2]uint32)
	if !req.CountOnly {
		onBatch = func(batch [][2]uint32) {
			lw.WriteLine(client.JoinLine{Pairs: batch})
		}
	}
	sum, err := s.router.join(ctx, req, onBatch, ct)
	if err != nil {
		s.finishError(lw, err, func(e *client.APIError) any { return client.JoinLine{Error: e} })
		return
	}
	s.finishJoinTrace(r, req, sum, start, ct)
	lw.WriteLine(client.JoinLine{Summary: sum})
}

// finishJoinTrace closes out a routed join's span tree — the root
// wraps the whole scatter, one child per shard leg with that shard's
// phases grafted underneath — records it, and attaches it to the
// summary when the request asked for a trace.
func (s *Service) finishJoinTrace(r *http.Request, req client.JoinRequest, sum *client.JoinSummary, start time.Time, ct *callTrace) {
	root := &obs.Span{
		ID: obs.NewSpanID(), Name: "router.join",
		Start: start, Duration: time.Since(start),
	}
	root.SetAttr("left", req.Left).SetAttr("right", req.Right).
		SetAttr("algorithm", sum.Algorithm)
	ct.attach(root)
	s.recordTrace(r, "join", root)
	if req.Trace {
		sum.Spans = httpapi.SpanDTO(root)
	}
}

func (s *Service) handleWindow(w http.ResponseWriter, r *http.Request) {
	var req client.WindowRequest
	if apiErr := httpapi.DecodeBody(w, r, &req); apiErr != nil {
		httpapi.WriteError(w, apiErr)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMillis)
	defer cancel()
	ct := s.router.newCallTrace()
	start := time.Now()

	if wire.Negotiates(r) {
		fw := s.newFrameWriter(w)
		defer fw.Close()
		var onFrame func([]byte)
		if !req.CountOnly {
			onFrame = fw.Relay
		}
		sum, err := s.router.windowFrames(ctx, req, onFrame, ct)
		if err != nil {
			s.finishErrorFrames(fw, err)
			return
		}
		s.finishWindowTrace(r, req, start, ct)
		fw.WriteSummary(sum)
		fw.End()
		return
	}

	lw := httpapi.NewLineWriter(w)
	defer lw.Close()
	var onBatch func([]client.RecordOut)
	if !req.CountOnly {
		onBatch = func(batch []client.RecordOut) {
			lw.WriteLine(client.WindowLine{Records: batch})
		}
	}
	sum, err := s.router.window(ctx, req, onBatch, ct)
	if err != nil {
		s.finishError(lw, err, func(e *client.APIError) any { return client.WindowLine{Error: e} })
		return
	}
	s.finishWindowTrace(r, req, start, ct)
	lw.WriteLine(client.WindowLine{Summary: sum})
}

// finishWindowTrace mirrors finishJoinTrace for window queries. The
// window wire summary carries no span tree, so the trace is reachable
// only through GET /v1/traces on the router.
func (s *Service) finishWindowTrace(r *http.Request, req client.WindowRequest, start time.Time, ct *callTrace) {
	root := &obs.Span{
		ID: obs.NewSpanID(), Name: "router.window",
		Start: start, Duration: time.Since(start),
	}
	root.SetAttr("relation", req.Relation)
	ct.attach(root)
	s.recordTrace(r, "window", root)
}

// maxAppendBodyBytes mirrors internal/server's append body cap.
const maxAppendBodyBytes = 256 << 20

// handleAppend serves the append endpoint with sjserved's exact wire
// contract, fanning the records out by stripe ownership so the fleet
// absorbs the write the way a single process would.
func (s *Service) handleAppend(w http.ResponseWriter, r *http.Request) {
	recs, err := client.ParseRecords(r.Header.Get("Content-Type"),
		http.MaxBytesReader(w, r.Body, maxAppendBodyBytes))
	if err != nil {
		httpapi.WriteError(w, &client.APIError{
			Status: http.StatusBadRequest, Code: client.CodeBadRequest,
			Message: err.Error(),
		})
		return
	}
	ctx, cancel := s.requestContext(r, 0)
	defer cancel()
	sum, aerr := s.router.Append(ctx, r.PathValue("relation"), recs)
	if aerr != nil {
		httpapi.WriteError(w, apiErrorFor(aerr))
		return
	}
	httpapi.WriteJSON(w, sum)
}

// requestContext narrows the request context by the service timeout
// and the request body's own timeout, if any.
func (s *Service) requestContext(r *http.Request, timeoutMillis int64) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	timeout := s.timeout
	if t := time.Duration(timeoutMillis) * time.Millisecond; timeoutMillis > 0 && (timeout <= 0 || t < timeout) {
		timeout = t
	}
	if timeout > 0 {
		return context.WithTimeout(ctx, timeout)
	}
	return context.WithCancel(ctx)
}

// recordTrace stores a routed request's span tree in the trace ring,
// keyed by the request ID (the same ID the shards key their own
// traces under, so one ID follows the query through every process),
// and emits the slow-query line when the root crosses the threshold.
func (s *Service) recordTrace(r *http.Request, kind string, root *obs.Span) {
	rid := client.RequestIDFrom(r.Context())
	if rid == "" { // not under the instrument middleware (tests)
		rid = obs.NewSpanID()
	}
	s.traces.Add(&obs.Trace{
		ID:         rid,
		Kind:       kind,
		ParentSpan: httpapi.ParentSpan(r),
		Root:       root,
	})
	if s.slow > 0 && root.Duration >= s.slow {
		s.log.Warn("slow query",
			"kind", kind,
			"request_id", rid,
			"elapsed", root.Duration.Round(time.Microsecond).String(),
			"threshold", s.slow.String(),
			"breakdown", root.Breakdown(),
		)
	}
}

// finishError reports a failed scatter: as an HTTP status when
// nothing has streamed yet, or as a terminal error line mid-stream.
func (s *Service) finishError(lw *httpapi.LineWriter, err error, wrap func(*client.APIError) any) {
	apiErr := apiErrorFor(err)
	if !lw.Started() {
		httpapi.WriteError(lw.ResponseWriter(), apiErr)
		return
	}
	lw.WriteLine(wrap(apiErr))
}

// newFrameWriter wraps a response writer for frame streaming with the
// service's frame metrics attached.
func (s *Service) newFrameWriter(w http.ResponseWriter) *httpapi.FrameWriter {
	return httpapi.NewFrameWriter(w, func(t wire.Type, frames, bytes int64) {
		s.frames.With(t.String()).Add(frames)
		s.frameBytes.With(t.String()).Add(bytes)
	})
}

// finishErrorFrames reports a failed scatter on the binary transport:
// an HTTP status while nothing has streamed, or a well-formed ERROR
// frame plus END after DATA frames have already been relayed — the
// mid-stream shard-failure contract a decoding client depends on.
func (s *Service) finishErrorFrames(fw *httpapi.FrameWriter, err error) {
	apiErr := apiErrorFor(err)
	if !fw.Started() {
		httpapi.WriteError(fw.ResponseWriter(), apiErr)
		return
	}
	fw.WriteError(apiErr)
	fw.End()
}

// apiErrorFor classifies a router error for the wire: a shard's own
// *APIError keeps its status and code (with the shard identified in
// the message), cancellations map to 504, and anything else — an
// unreachable shard, a transport failure — to 502 unavailable.
func apiErrorFor(err error) *client.APIError {
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		return &client.APIError{Status: apiErr.Status, Code: apiErr.Code, Message: err.Error()}
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return &client.APIError{
			Status: http.StatusGatewayTimeout, Code: client.CodeCanceled,
			Message: err.Error(),
		}
	}
	return &client.APIError{
		Status: http.StatusBadGateway, Code: client.CodeUnavailable,
		Message: err.Error(),
	}
}
