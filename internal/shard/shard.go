// Package shard scales the query service across processes: it cuts a
// catalog into K stripe shards along x and routes queries over the
// shard fleet, merging per-shard streams and accounting into single
// responses that are bit-for-bit equivalent to a single process run.
//
// The unit of sharding is the same vertical stripe the parallel
// engine (internal/parallel) sweeps concurrently: boundaries are
// quantiles of sampled record x-centers, so skewed inputs still
// produce balanced shards. Sharding reuses the engine's two rules:
//
//   - Record placement: a shard loads every record whose x-interval
//     overlaps its stripe. Records contained in one stripe land on
//     exactly one shard; boundary-crossing records are replicated
//     into each shard they overlap (Plan.Assign reports how many).
//   - Pair ownership: a join pair is reported only by the shard whose
//     half-open interval [lo, hi) contains the pair's reference point
//     — the lower-x corner of the rectangle intersection, max of the
//     two left edges. Both rectangles contain that point, so the
//     owning shard is guaranteed to hold both records and find the
//     pair; every other shard that finds it drops it. Window queries
//     use the record's own XLo the same way. The merged result set is
//     therefore exact and duplicate-free with no cross-shard
//     coordination, for any join algorithm the shard runs.
//
// Plan computes and describes the stripes; Interval is one shard's
// ownership range (sjserved's -stripe flag); Router scatters a
// request to K sjserved shard endpoints and gathers their NDJSON
// streams; Service is the HTTP front that makes a Router a drop-in
// replacement for a single sjserved (cmd/sjrouter wraps it).
package shard

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"unijoin/internal/geom"
)

// Interval is one shard's half-open ownership range [Lo, Hi) on the
// x-axis, with -Inf/+Inf sentinels on the outer shards so the
// intervals of a plan tile the whole line. It decides three questions
// for a shard: which records to load, which records a window query
// reports, and which join pairs to report.
type Interval struct {
	Lo, Hi geom.Coord
}

// Everything is the interval of an unsharded process: it loads and
// owns all records and all pairs.
func Everything() Interval {
	return Interval{Lo: geom.Coord(math.Inf(-1)), Hi: geom.Coord(math.Inf(1))}
}

// Unbounded reports whether the interval is (-Inf, +Inf), i.e. the
// process is not restricted to a stripe.
func (iv Interval) Unbounded() bool {
	return math.IsInf(float64(iv.Lo), -1) && math.IsInf(float64(iv.Hi), 1)
}

// Contains reports whether x falls in [Lo, Hi).
func (iv Interval) Contains(x geom.Coord) bool { return x >= iv.Lo && x < iv.Hi }

// Loads reports whether a shard with this interval must keep the
// record: its x-interval overlaps the stripe, so some pair or window
// answer owned here may involve it.
func (iv Interval) Loads(r geom.Rect) bool { return r.XHi >= iv.Lo && r.XLo < iv.Hi }

// OwnsRecord reports whether this shard reports the record in window
// (selection) queries: exactly one shard of a plan contains a
// record's left edge, and that shard is guaranteed to have loaded it.
func (iv Interval) OwnsRecord(r geom.Rect) bool { return iv.Contains(r.XLo) }

// OwnsPair reports whether this shard reports the join pair of two
// rectangles with the given left edges: the reference point — the
// larger of the two — falls in the interval. Exactly one shard of a
// plan owns each pair, and ownership implies both records overlap the
// stripe and were loaded.
func (iv Interval) OwnsPair(aXLo, bXLo geom.Coord) bool {
	ref := aXLo
	if bXLo > ref {
		ref = bXLo
	}
	return iv.Contains(ref)
}

// Slice returns the records of recs a shard with this interval loads,
// in input order. The unbounded interval returns recs itself.
func (iv Interval) Slice(recs []geom.Record) []geom.Record {
	if iv.Unbounded() {
		return recs
	}
	out := make([]geom.Record, 0, len(recs))
	for _, r := range recs {
		if iv.Loads(r.Rect) {
			out = append(out, r)
		}
	}
	return out
}

// ParseInterval parses the "lo:hi" syntax of sjserved's -stripe flag.
// Either side may be empty for an unbounded edge shard: ":250" is the
// first stripe, "700:" the last, "250:700" an inner one.
func ParseInterval(s string) (Interval, error) {
	loStr, hiStr, ok := strings.Cut(s, ":")
	if !ok {
		return Interval{}, fmt.Errorf("shard: interval %q: want lo:hi (either side may be empty)", s)
	}
	iv := Everything()
	if strings.TrimSpace(loStr) != "" {
		f, err := strconv.ParseFloat(strings.TrimSpace(loStr), 32)
		if err != nil {
			return Interval{}, fmt.Errorf("shard: interval %q: bad lower bound: %w", s, err)
		}
		iv.Lo = geom.Coord(f)
	}
	if strings.TrimSpace(hiStr) != "" {
		f, err := strconv.ParseFloat(strings.TrimSpace(hiStr), 32)
		if err != nil {
			return Interval{}, fmt.Errorf("shard: interval %q: bad upper bound: %w", s, err)
		}
		iv.Hi = geom.Coord(f)
	}
	if !(iv.Lo < iv.Hi) {
		return Interval{}, fmt.Errorf("shard: interval %q: lower bound must be below upper", s)
	}
	return iv, nil
}

// String formats the interval in the syntax ParseInterval accepts.
func (iv Interval) String() string {
	var lo, hi string
	if !math.IsInf(float64(iv.Lo), -1) {
		lo = strconv.FormatFloat(float64(iv.Lo), 'g', -1, 32)
	}
	if !math.IsInf(float64(iv.Hi), 1) {
		hi = strconv.FormatFloat(float64(iv.Hi), 'g', -1, 32)
	}
	return lo + ":" + hi
}
