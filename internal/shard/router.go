package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"unijoin/client"
	"unijoin/internal/geom"
	"unijoin/internal/obs"
)

// Router fans queries out to a fleet of sjserved shard endpoints and
// gathers the results: join and window streams are merged as shard
// batches arrive, and per-shard summaries are summed into one
// response. Because each shard filters its output by its ownership
// interval, the merged pair and record sets are exact and
// duplicate-free — the distributed run returns precisely the
// single-process answer, for every join algorithm. A Router is safe
// for concurrent use.
type Router struct {
	endpoints []string
	clients   []*client.Client
	obs       routerObs

	// stripeMu guards stripeIvs, each shard's ownership interval,
	// fetched from the fleet on the first append (a shard's -stripe is
	// fixed for its lifetime, so one fetch serves every append).
	stripeMu  sync.Mutex
	stripeIvs []Interval
}

// routerObs is the router's view of shard health, recorded around
// every scatter call. The per-shard EWMA feeds both the
// sj_shard_latency_ewma_ms gauge and the latency column of
// /v1/stats's shard table — the signal a future rebalancer or
// latency-aware planner would read.
type routerObs struct {
	reg      *obs.Registry
	latency  *obs.HistogramVec // sj_shard_scatter_seconds{shard}
	errors   *obs.CounterVec   // sj_shard_errors_total{shard}
	inFlight *obs.GaugeVec     // sj_shard_in_flight{shard}
	ewmaMS   *obs.GaugeVec     // sj_shard_latency_ewma_ms{shard}
	ewma     *obs.EWMASet
}

func newRouterObs() routerObs {
	reg := obs.NewRegistry()
	return routerObs{
		reg: reg,
		latency: reg.HistogramVec("sj_shard_scatter_seconds",
			"Scatter call wall time in seconds, by shard endpoint.",
			nil, "shard"),
		errors: reg.CounterVec("sj_shard_errors_total",
			"Failed scatter calls, by shard endpoint.",
			"shard"),
		inFlight: reg.GaugeVec("sj_shard_in_flight",
			"Scatter calls currently outstanding, by shard endpoint.",
			"shard"),
		ewmaMS: reg.GaugeVec("sj_shard_latency_ewma_ms",
			"Smoothed scatter latency in milliseconds, by shard endpoint.",
			"shard"),
		ewma: obs.NewEWMASet(obs.DefaultAlpha),
	}
}

// observe records one scatter call against a shard.
func (o *routerObs) observe(endpoint string, elapsed time.Duration, err error) {
	sec := elapsed.Seconds()
	o.latency.With(endpoint).Observe(sec)
	if err != nil {
		o.errors.With(endpoint).Inc()
		return
	}
	o.ewma.Observe(endpoint, sec*1000)
	o.ewmaMS.With(endpoint).Set(o.ewma.Value(endpoint))
}

// NewRouter builds a router over the given shard base URLs (at least
// one). httpClient may be nil for http.DefaultClient; per-call
// contexts govern cancellation either way.
func NewRouter(endpoints []string, httpClient *http.Client) (*Router, error) {
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("shard: router needs at least one shard endpoint")
	}
	r := &Router{endpoints: append([]string(nil), endpoints...), obs: newRouterObs()}
	for _, ep := range r.endpoints {
		r.clients = append(r.clients, client.New(ep, httpClient))
	}
	return r, nil
}

// Registry exposes the router's metric registry so the serving layer
// (internal/shard.Service) can add its own request families and serve
// one /metrics for the whole process.
func (r *Router) Registry() *obs.Registry { return r.obs.reg }

// Shards returns the number of downstream shard endpoints.
func (r *Router) Shards() int { return len(r.clients) }

// Endpoints returns the shard base URLs in configuration order.
func (r *Router) Endpoints() []string { return append([]string(nil), r.endpoints...) }

// scatter runs fn once per shard concurrently, canceling the
// remaining shards as soon as one fails, and returns the root
// failure: the first error that is not itself a cancellation, so the
// shard that broke the fan-out is reported rather than the shards it
// took down.
func (r *Router) scatter(ctx context.Context, fn func(ctx context.Context, i int, cl *client.Client) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, len(r.clients))
	var wg sync.WaitGroup
	for i, cl := range r.clients {
		wg.Add(1)
		go func(i int, cl *client.Client) {
			defer wg.Done()
			ep := r.endpoints[i]
			r.obs.inFlight.With(ep).Add(1)
			start := time.Now()
			err := fn(ctx, i, cl)
			r.obs.inFlight.With(ep).Add(-1)
			r.obs.observe(ep, time.Since(start), err)
			if err != nil {
				errs[i] = fmt.Errorf("shard %d (%s): %w", i, ep, err)
				cancel()
			}
		}(i, cl)
	}
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, client.ErrCanceled) {
			return err
		}
	}
	return firstErr
}

// Health checks every shard's liveness probe, returning nil only when
// the whole fleet is up.
func (r *Router) Health(ctx context.Context) error {
	return r.scatter(ctx, func(ctx context.Context, i int, cl *client.Client) error {
		return cl.Health(ctx)
	})
}

// Verify health-checks the fleet and validates its sharding: every
// shard must be reachable, and with more than one shard each must
// report a -stripe interval, with the intervals tiling the x-axis —
// otherwise the fleet would drop or double-count pairs. It returns
// each shard's stats (in endpoint order) for logging.
func (r *Router) Verify(ctx context.Context) ([]client.Stats, error) {
	stats := make([]client.Stats, len(r.clients))
	err := r.scatter(ctx, func(ctx context.Context, i int, cl *client.Client) error {
		s, err := cl.Stats(ctx)
		if err != nil {
			return err
		}
		stats[i] = *s
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(r.clients) == 1 {
		// A single shard must serve everything: a lone bounded stripe
		// (say, a scale-down that dropped the other -shard flags)
		// would silently answer with a subset of the data.
		if iv := FromStripe(stats[0].Stripe); !iv.Unbounded() {
			return nil, fmt.Errorf("shard: single shard %s serves only stripe %s; a one-shard fleet must serve everything",
				r.endpoints[0], iv)
		}
		return stats, nil
	}
	intervals := make([]Interval, len(stats))
	for i, s := range stats {
		if s.Stripe == nil {
			return nil, fmt.Errorf("shard: %d shards configured but shard %d (%s) serves no -stripe; its full catalog would double-count pairs",
				len(stats), i, r.endpoints[i])
		}
		intervals[i] = FromStripe(s.Stripe)
	}
	sort.Slice(intervals, func(a, b int) bool { return intervals[a].Lo < intervals[b].Lo })
	if err := Validate(intervals); err != nil {
		return nil, err
	}
	return stats, nil
}

// Join scatters the join to every shard and merges their streams.
// onBatch (which may be nil) receives pair batches as they arrive
// from any shard, serialized — batches from different shards
// interleave, so cross-shard arrival order is not deterministic, but
// the merged set and the summed count are exact. The summary sums
// Pairs and the per-shard record counts (boundary-crossing records
// count once per shard that loaded them) and reports the slowest
// shard's elapsed time.
func (r *Router) Join(ctx context.Context, req client.JoinRequest, onBatch func(pairs [][2]uint32)) (*client.JoinSummary, error) {
	return r.join(ctx, req, onBatch, nil)
}

// join is Join with optional per-leg tracing (ct may be nil).
func (r *Router) join(ctx context.Context, req client.JoinRequest, onBatch func(pairs [][2]uint32), ct *callTrace) (*client.JoinSummary, error) {
	var mu sync.Mutex
	sums := make([]*client.JoinSummary, len(r.clients))
	err := r.scatter(ctx, r.traced(ct, func(ctx context.Context, i int, cl *client.Client) error {
		var cb func([][2]uint32)
		if onBatch != nil {
			cb = func(batch [][2]uint32) {
				mu.Lock()
				defer mu.Unlock()
				onBatch(batch)
			}
		}
		s, err := cl.JoinBatches(ctx, req, cb)
		if err != nil {
			return err
		}
		sums[i] = s
		if ct != nil {
			ct.calls[i].Spans = s.Spans
		}
		return nil
	}))
	if err != nil {
		return nil, err
	}
	return mergeJoinSummaries(sums), nil
}

// JoinFrames is Join on the binary transport's relay path: each
// shard's DATA frames are handed to onFrame as their exact wire bytes
// — the router never decodes or re-encodes a pair; only the terminal
// SUMMARY/ERROR frames are parsed for merging. Frames from different
// shards interleave (serialized, one whole frame at a time), and a
// shard that only speaks NDJSON has its batches re-framed inside the
// client call, so the output is a well-formed frame stream either
// way.
func (r *Router) JoinFrames(ctx context.Context, req client.JoinRequest, onFrame func(raw []byte)) (*client.JoinSummary, error) {
	return r.joinFrames(ctx, req, onFrame, nil)
}

// joinFrames is JoinFrames with optional per-leg tracing.
func (r *Router) joinFrames(ctx context.Context, req client.JoinRequest, onFrame func(raw []byte), ct *callTrace) (*client.JoinSummary, error) {
	var mu sync.Mutex
	sums := make([]*client.JoinSummary, len(r.clients))
	err := r.scatter(ctx, r.traced(ct, func(ctx context.Context, i int, cl *client.Client) error {
		var cb func([]byte)
		if onFrame != nil {
			cb = func(raw []byte) {
				mu.Lock()
				defer mu.Unlock()
				onFrame(raw)
			}
		}
		s, err := cl.JoinRawFrames(ctx, req, cb)
		if err != nil {
			return err
		}
		sums[i] = s
		if ct != nil {
			ct.calls[i].Spans = s.Spans
		}
		return nil
	}))
	if err != nil {
		return nil, err
	}
	return mergeJoinSummaries(sums), nil
}

// mergeJoinSummaries sums the per-shard summaries: Pairs and record
// counts add (boundary-crossing records count once per shard that
// loaded them), the elapsed time is the slowest shard's, and traces
// merge per phase by maximum.
func mergeJoinSummaries(sums []*client.JoinSummary) *client.JoinSummary {
	merged := *sums[0]
	// A shard's span tree describes that shard alone; the serving
	// layer replaces it with the router's own tree (scatter legs with
	// the shard trees grafted underneath), so shard 0's must not leak.
	merged.Spans = nil
	if merged.Trace != nil {
		// Clone: the merge below mutates the trace, which must not
		// alias the first shard's summary.
		t := *merged.Trace
		merged.Trace = &t
	}
	for _, s := range sums[1:] {
		merged.Pairs += s.Pairs
		merged.LeftRecords += s.LeftRecords
		merged.RightRecords += s.RightRecords
		if s.ElapsedMillis > merged.ElapsedMillis {
			merged.ElapsedMillis = s.ElapsedMillis
		}
		merged.Trace = mergeTraces(merged.Trace, s.Trace)
	}
	return &merged
}

// mergeTraces combines per-shard phase traces the way ElapsedMillis
// merges: per phase, the slowest shard. The shards run concurrently,
// so the maximum — not the sum — is what the client actually waited.
func mergeTraces(a, b *client.PhaseTrace) *client.PhaseTrace {
	if b == nil {
		return a
	}
	if a == nil {
		t := *b
		return &t
	}
	a.PartitionMillis = math.Max(a.PartitionMillis, b.PartitionMillis)
	a.SweepMillis = math.Max(a.SweepMillis, b.SweepMillis)
	a.StreamMillis = math.Max(a.StreamMillis, b.StreamMillis)
	return a
}

// Window scatters the window query and merges the record streams,
// mirroring Join: batches interleave across shards, counts sum
// exactly, Indexed reports whether every shard answered through an
// R-tree, and the elapsed time is the slowest shard's.
func (r *Router) Window(ctx context.Context, req client.WindowRequest, onBatch func([]client.RecordOut)) (*client.WindowSummary, error) {
	return r.window(ctx, req, onBatch, nil)
}

// window is Window with optional per-leg tracing.
func (r *Router) window(ctx context.Context, req client.WindowRequest, onBatch func([]client.RecordOut), ct *callTrace) (*client.WindowSummary, error) {
	var mu sync.Mutex
	sums := make([]*client.WindowSummary, len(r.clients))
	err := r.scatter(ctx, r.traced(ct, func(ctx context.Context, i int, cl *client.Client) error {
		var cb func([]client.RecordOut)
		if onBatch != nil {
			cb = func(batch []client.RecordOut) {
				mu.Lock()
				defer mu.Unlock()
				onBatch(batch)
			}
		}
		s, err := cl.WindowBatches(ctx, req, cb)
		if err != nil {
			return err
		}
		sums[i] = s
		return nil
	}))
	if err != nil {
		return nil, err
	}
	return mergeWindowSummaries(sums), nil
}

// WindowFrames is Window on the relay path, mirroring JoinFrames with
// RECORDS frames.
func (r *Router) WindowFrames(ctx context.Context, req client.WindowRequest, onFrame func(raw []byte)) (*client.WindowSummary, error) {
	return r.windowFrames(ctx, req, onFrame, nil)
}

// windowFrames is WindowFrames with optional per-leg tracing.
func (r *Router) windowFrames(ctx context.Context, req client.WindowRequest, onFrame func(raw []byte), ct *callTrace) (*client.WindowSummary, error) {
	var mu sync.Mutex
	sums := make([]*client.WindowSummary, len(r.clients))
	err := r.scatter(ctx, r.traced(ct, func(ctx context.Context, i int, cl *client.Client) error {
		var cb func([]byte)
		if onFrame != nil {
			cb = func(raw []byte) {
				mu.Lock()
				defer mu.Unlock()
				onFrame(raw)
			}
		}
		s, err := cl.WindowRawFrames(ctx, req, cb)
		if err != nil {
			return err
		}
		sums[i] = s
		return nil
	}))
	if err != nil {
		return nil, err
	}
	return mergeWindowSummaries(sums), nil
}

// mergeWindowSummaries sums the per-shard summaries: record counts
// add, Indexed requires every shard indexed, the elapsed time is the
// slowest shard's.
func mergeWindowSummaries(sums []*client.WindowSummary) *client.WindowSummary {
	merged := *sums[0]
	for _, s := range sums[1:] {
		merged.Records += s.Records
		merged.Indexed = merged.Indexed && s.Indexed
		if s.ElapsedMillis > merged.ElapsedMillis {
			merged.ElapsedMillis = s.ElapsedMillis
		}
	}
	return &merged
}

// stripes returns each shard's ownership interval in endpoint order,
// fetching the fleet's stripe metadata once and caching it.
func (r *Router) stripes(ctx context.Context) ([]Interval, error) {
	r.stripeMu.Lock()
	defer r.stripeMu.Unlock()
	if r.stripeIvs != nil {
		return r.stripeIvs, nil
	}
	stats := make([]client.Stats, len(r.clients))
	err := r.scatter(ctx, func(ctx context.Context, i int, cl *client.Client) error {
		s, err := cl.Stats(ctx)
		if err != nil {
			return err
		}
		stats[i] = *s
		return nil
	})
	if err != nil {
		return nil, err
	}
	ivs := make([]Interval, len(stats))
	for i, s := range stats {
		ivs[i] = FromStripe(s.Stripe)
	}
	r.stripeIvs = ivs
	return ivs, nil
}

// Append fans an append out across the fleet: each record goes to
// every shard whose stripe its rectangle overlaps — the same rule
// sjserved -stripe uses to slice a relation at load, so the fleet's
// state after the append is exactly what a fresh fleet loading the
// grown relation would hold, and joins and window queries keep
// returning the single-process answer. Every shard is posted (an
// empty batch is a no-op that still reports the shard's totals), and
// the merged summary sums Records and DeltaRecords across shards,
// takes the maximum Epoch, and reports Appended as the number of
// input records placed.
func (r *Router) Append(ctx context.Context, relation string, recs []client.RecordIn) (*client.AppendSummary, error) {
	ivs, err := r.stripes(ctx)
	if err != nil {
		return nil, err
	}
	batches := make([][]client.RecordIn, len(ivs))
	for i := range batches {
		batches[i] = make([]client.RecordIn, 0, len(recs)/len(ivs)+1)
	}
	for _, rec := range recs {
		rect := geom.NewRect(
			geom.Coord(rec.Rect.XLo), geom.Coord(rec.Rect.YLo),
			geom.Coord(rec.Rect.XHi), geom.Coord(rec.Rect.YHi),
		)
		if !rect.Valid() {
			return nil, &client.APIError{
				Status: http.StatusBadRequest, Code: client.CodeBadRequest,
				Message: fmt.Sprintf("record %d has an invalid rectangle", rec.ID),
			}
		}
		for i, iv := range ivs {
			if iv.Loads(rect) {
				batches[i] = append(batches[i], rec)
			}
		}
	}
	sums := make([]*client.AppendSummary, len(r.clients))
	err = r.scatter(ctx, func(ctx context.Context, i int, cl *client.Client) error {
		s, err := cl.AppendRecords(ctx, relation, batches[i])
		if err != nil {
			return err
		}
		sums[i] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	merged := &client.AppendSummary{
		Relation: relation,
		Appended: int64(len(recs)),
		Shards:   len(sums),
	}
	for _, s := range sums {
		merged.Records += s.Records
		merged.DeltaRecords += s.DeltaRecords
		if s.Epoch > merged.Epoch {
			merged.Epoch = s.Epoch
		}
		merged.Compacted = merged.Compacted || s.Compacted
	}
	return merged, nil
}

// Relations merges the shards' catalogs by name: record and byte
// counts sum across shards (replicated boundary records count once
// per holding shard), Indexed requires every shard's slice indexed,
// the MBR is the union of the shard slices, and Shards counts how
// many shards hold the relation.
func (r *Router) Relations(ctx context.Context) ([]client.RelationInfo, error) {
	lists := make([][]client.RelationInfo, len(r.clients))
	err := r.scatter(ctx, func(ctx context.Context, i int, cl *client.Client) error {
		l, err := cl.Relations(ctx)
		if err != nil {
			return err
		}
		lists[i] = l
		return nil
	})
	if err != nil {
		return nil, err
	}
	byName := make(map[string]*client.RelationInfo)
	var names []string
	for _, list := range lists {
		for _, info := range list {
			m, ok := byName[info.Name]
			if !ok {
				names = append(names, info.Name)
				merged := info
				merged.Stripe = nil
				merged.Shards = 1
				byName[info.Name] = &merged
				continue
			}
			m.Records += info.Records
			m.DataBytes += info.DataBytes
			m.IndexBytes += info.IndexBytes
			m.Indexed = m.Indexed && info.Indexed
			m.MBR = unionRects(m.MBR, info.MBR)
			m.Shards++
		}
	}
	sort.Strings(names)
	out := make([]client.RelationInfo, 0, len(names))
	for _, name := range names {
		out = append(out, *byName[name])
	}
	return out, nil
}

// Stats aggregates the fleet's counters: request, join, window,
// error, and streaming counters sum; Relations is the largest shard
// catalog; UptimeSeconds is the youngest shard's (how long the whole
// fleet has been up); Shards is the fleet size.
func (r *Router) Stats(ctx context.Context) (*client.Stats, error) {
	stats := make([]client.Stats, len(r.clients))
	err := r.scatter(ctx, func(ctx context.Context, i int, cl *client.Client) error {
		s, err := cl.Stats(ctx)
		if err != nil {
			return err
		}
		stats[i] = *s
		return nil
	})
	if err != nil {
		return nil, err
	}
	agg := client.Stats{Shards: len(stats), UptimeSeconds: math.Inf(1)}
	for i, s := range stats {
		if s.UptimeSeconds < agg.UptimeSeconds {
			agg.UptimeSeconds = s.UptimeSeconds
		}
		if s.Relations > agg.Relations {
			agg.Relations = s.Relations
		}
		agg.Requests += s.Requests
		agg.InFlight += s.InFlight
		agg.Joins += s.Joins
		agg.Windows += s.Windows
		agg.Errors += s.Errors
		agg.Canceled += s.Canceled
		agg.PairsStreamed += s.PairsStreamed
		agg.RecordsStreamed += s.RecordsStreamed
		agg.Appends += s.Appends
		agg.RecordsIngested += s.RecordsIngested
		agg.Compactions += s.Compactions
		agg.DeltaRecords += s.DeltaRecords
		// Per-algorithm EWMAs merge by max — the fleet's join latency
		// is its slowest shard's, as in the summary merge.
		for alg, v := range s.JoinLatencyEWMAMillis {
			if agg.JoinLatencyEWMAMillis == nil {
				agg.JoinLatencyEWMAMillis = make(map[string]float64)
			}
			agg.JoinLatencyEWMAMillis[alg] = math.Max(agg.JoinLatencyEWMAMillis[alg], v)
		}
		agg.Workload = mergeWorkloads(agg.Workload, s.Workload)
		ep := r.endpoints[i]
		agg.ShardStats = append(agg.ShardStats, client.ShardStat{
			Endpoint:          ep,
			Stripe:            s.Stripe,
			Requests:          s.Requests,
			InFlight:          s.InFlight,
			Errors:            s.Errors,
			ScatterRequests:   r.obs.latency.With(ep).Count(),
			ScatterErrors:     r.obs.errors.With(ep).Value(),
			LatencyEWMAMillis: r.obs.ewma.Value(ep),
		})
	}
	return &agg, nil
}

// mergeWorkloads sums per-shard workload snapshots into the fleet
// view. Every shard of a fleet sees every scattered query, so the
// fleet's counts are K× a client's-eye count — but the shape of the
// histogram, which is what the rebalancer reads, is exact. Histogram
// buckets sum index-wise only when the shards agree on bounds and
// resolution (sjserved derives both from -region, so a healthy fleet
// always matches); a mismatched shard contributes its scalar counters
// but is dropped from the bucket sum rather than misaligned into it.
func mergeWorkloads(a, b *client.WorkloadStats) *client.WorkloadStats {
	if b == nil {
		return a
	}
	if a == nil {
		// Clone: later merge steps mutate a in place, which must not
		// reach back into the first shard's decoded stats.
		c := *b
		c.Buckets = append([]int64(nil), b.Buckets...)
		c.Queries = make(map[string]map[string]int64, len(b.Queries))
		for rel, m := range b.Queries {
			inner := make(map[string]int64, len(m))
			for alg, n := range m {
				inner[alg] = n
			}
			c.Queries[rel] = inner
		}
		return &c
	}
	if a.XLo == b.XLo && a.XHi == b.XHi && len(a.Buckets) == len(b.Buckets) {
		for i := range a.Buckets {
			a.Buckets[i] += b.Buckets[i]
		}
	}
	a.Windowed += b.Windowed
	a.Unwindowed += b.Unwindowed
	for rel, m := range b.Queries {
		if a.Queries == nil {
			a.Queries = make(map[string]map[string]int64)
		}
		inner := a.Queries[rel]
		if inner == nil {
			inner = make(map[string]int64, len(m))
			a.Queries[rel] = inner
		}
		for alg, n := range m {
			inner[alg] += n
		}
	}
	return a
}

// ToStripe converts an interval to its wire form (nil bounds for the
// infinite sentinels).
func ToStripe(iv Interval) *client.Stripe {
	s := &client.Stripe{}
	if !math.IsInf(float64(iv.Lo), -1) {
		lo := float64(iv.Lo)
		s.Lo = &lo
	}
	if !math.IsInf(float64(iv.Hi), 1) {
		hi := float64(iv.Hi)
		s.Hi = &hi
	}
	return s
}

// FromStripe converts a wire stripe back to an interval.
func FromStripe(s *client.Stripe) Interval {
	iv := Everything()
	if s == nil {
		return iv
	}
	if s.Lo != nil {
		iv.Lo = geom.Coord(*s.Lo)
	}
	if s.Hi != nil {
		iv.Hi = geom.Coord(*s.Hi)
	}
	return iv
}

// unionRects unions two wire rectangles, treating the zero rectangle
// as empty (the wire form of an empty relation's invalid MBR).
func unionRects(a, b client.Rect) client.Rect {
	if a == (client.Rect{}) {
		return b
	}
	if b == (client.Rect{}) {
		return a
	}
	return client.Rect{
		XLo: math.Min(a.XLo, b.XLo), YLo: math.Min(a.YLo, b.YLo),
		XHi: math.Max(a.XHi, b.XHi), YHi: math.Max(a.YHi, b.YHi),
	}
}
