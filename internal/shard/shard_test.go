package shard

import (
	"math"
	"reflect"
	"testing"

	"unijoin/internal/datagen"
	"unijoin/internal/geom"
)

var universe = geom.NewRect(0, 0, 1000, 1000)

func TestParseIntervalRoundTrip(t *testing.T) {
	cases := []struct {
		in     string
		lo, hi float64
	}{
		{":250", math.Inf(-1), 250},
		{"250:700", 250, 700},
		{"700:", 700, math.Inf(1)},
		{":", math.Inf(-1), math.Inf(1)},
		{"-10.5:0.25", -10.5, 0.25},
	}
	for _, c := range cases {
		iv, err := ParseInterval(c.in)
		if err != nil {
			t.Fatalf("ParseInterval(%q): %v", c.in, err)
		}
		if float64(iv.Lo) != c.lo || float64(iv.Hi) != c.hi {
			t.Fatalf("ParseInterval(%q) = [%v, %v), want [%v, %v)", c.in, iv.Lo, iv.Hi, c.lo, c.hi)
		}
		back, err := ParseInterval(iv.String())
		if err != nil || back != iv {
			t.Fatalf("round trip %q -> %q -> %v (err %v)", c.in, iv.String(), back, err)
		}
	}
	for _, bad := range []string{"", "250", "700:250", "250:250", "x:1"} {
		if _, err := ParseInterval(bad); err == nil {
			t.Fatalf("ParseInterval(%q) accepted", bad)
		}
	}
}

func TestIntervalOwnership(t *testing.T) {
	iv := Interval{Lo: 250, Hi: 700}
	// Loading is by overlap; record ownership by left edge; pair
	// ownership by reference point. All half-open at Hi.
	rect := func(xlo, xhi geom.Coord) geom.Rect { return geom.Rect{XLo: xlo, YLo: 0, XHi: xhi, YHi: 1} }
	if !iv.Loads(rect(100, 250)) || !iv.Loads(rect(699, 800)) || iv.Loads(rect(700, 800)) || iv.Loads(rect(0, 249)) {
		t.Fatal("Loads overlap rule wrong")
	}
	if !iv.OwnsRecord(rect(250, 300)) || iv.OwnsRecord(rect(700, 700)) || iv.OwnsRecord(rect(100, 600)) {
		t.Fatal("OwnsRecord left-edge rule wrong")
	}
	if !iv.OwnsPair(100, 250) || !iv.OwnsPair(300, 260) || iv.OwnsPair(100, 700) || iv.OwnsPair(100, 240) {
		t.Fatal("OwnsPair reference-point rule wrong")
	}
	if !Everything().Unbounded() || iv.Unbounded() {
		t.Fatal("Unbounded wrong")
	}
}

// TestPlanPartitionsExactly checks the sharding invariants on skewed
// data: every record is loaded by exactly the shards its x-interval
// overlaps, each record is owned by exactly one shard (which also
// loads it), each possible reference point is owned by exactly one
// shard, and Plan.Assign agrees with per-shard Interval.Slice.
func TestPlanPartitionsExactly(t *testing.T) {
	terr := datagen.NewTerrain(5, universe, 10)
	recs := datagen.Roads(terr, 6, 4000, datagen.RoadParams{})
	for _, k := range []int{1, 2, 4, 7} {
		p := NewPlan(universe, k, recs)
		K := p.Shards()
		intervals := make([]Interval, K)
		for i := range intervals {
			intervals[i] = p.Interval(i)
		}
		if err := Validate(intervals); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		perShard, stats := p.Assign(recs)
		if stats.Input != int64(len(recs)) || stats.Local+stats.Boundary != stats.Input {
			t.Fatalf("k=%d: stats %+v inconsistent with %d records", k, stats, len(recs))
		}
		var placements int64
		for i, iv := range intervals {
			sliced := iv.Slice(recs)
			if !reflect.DeepEqual(perShard[i], sliced) && !(len(perShard[i]) == 0 && len(sliced) == 0) {
				t.Fatalf("k=%d shard %d: Assign gave %d records, Slice gave %d",
					k, i, len(perShard[i]), len(sliced))
			}
			placements += int64(len(perShard[i]))
		}
		if placements != stats.Placements {
			t.Fatalf("k=%d: %d placements, stats say %d", k, placements, stats.Placements)
		}
		for _, r := range recs {
			owners := 0
			for _, iv := range intervals {
				if iv.OwnsRecord(r.Rect) {
					owners++
					if !iv.Loads(r.Rect) {
						t.Fatalf("k=%d: shard owns record %d without loading it", k, r.ID)
					}
				}
			}
			if owners != 1 {
				t.Fatalf("k=%d: record %d owned by %d shards", k, r.ID, owners)
			}
		}
	}
}

func TestValidateRejectsBrokenFleets(t *testing.T) {
	inf := geom.Coord(math.Inf(1))
	ok := []Interval{{Lo: -inf, Hi: 250}, {Lo: 250, Hi: 700}, {Lo: 700, Hi: inf}}
	if err := Validate(ok); err != nil {
		t.Fatal(err)
	}
	bad := [][]Interval{
		{},
		{{Lo: 0, Hi: 250}, {Lo: 250, Hi: inf}}, // first not -Inf
		{{Lo: -inf, Hi: 250}, {Lo: 250, Hi: 700}}, // last not +Inf
		{{Lo: -inf, Hi: 250}, {Lo: 300, Hi: inf}}, // gap
		{{Lo: -inf, Hi: 250}, {Lo: 200, Hi: inf}}, // overlap
	}
	for i, ivs := range bad {
		if err := Validate(ivs); err == nil {
			t.Fatalf("case %d: broken fleet accepted", i)
		}
	}
}

func TestPlanFromBoundaries(t *testing.T) {
	p, err := PlanFromBoundaries(universe, []geom.Coord{250, 700})
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", p.Shards())
	}
	if iv := p.Interval(1); iv.Lo != 250 || iv.Hi != 700 {
		t.Fatalf("Interval(1) = %v", iv)
	}
	if _, err := PlanFromBoundaries(universe, []geom.Coord{700, 250}); err == nil {
		t.Fatal("decreasing boundaries accepted")
	}
}
