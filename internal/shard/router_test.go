package shard_test

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net/http/httptest"
	"testing"

	"unijoin"
	"unijoin/client"
	"unijoin/internal/datagen"
	"unijoin/internal/server"
	"unijoin/internal/shard"
)

var universe = unijoin.NewRect(0, 0, 1000, 1000)

// allAlgorithms is every join strategy the service accepts; the
// sharding contract must hold for each one.
var allAlgorithms = []string{"PQ", "SSSJ", "PBSM", "ST", "auto", "BFRJ", "parallel"}

func discard() *slog.Logger { return slog.New(slog.NewTextHandler(io.Discard, nil)) }

// startShard boots one sjserved-equivalent shard holding the slices
// of the given relations its interval loads.
func startShard(t *testing.T, iv shard.Interval, names []string, rels map[string][]unijoin.Record, index bool) string {
	t.Helper()
	ws := unijoin.NewWorkspace()
	ws.SetUniverse(universe)
	cat := unijoin.NewCatalogOn(ws)
	for _, name := range names {
		if _, err := cat.Load(name, iv.Slice(rels[name]), index); err != nil {
			t.Fatalf("loading %s: %v", name, err)
		}
	}
	// An unbounded interval models a server started without -stripe
	// (it owns everything); a bounded one enables the shard filters.
	cfg := server.Config{Catalog: cat, Logger: discard()}
	if !iv.Unbounded() {
		cfg.Stripe = &iv
	}
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// startFleet shards the relations across the plan's stripes, fronts
// them with a router service, and returns a client speaking to it —
// the full path a production client takes: client → sjrouter →
// scatter → K × sjserved → gather.
func startFleet(t *testing.T, plan *shard.Plan, names []string, rels map[string][]unijoin.Record, index bool) (*client.Client, *shard.Router, string) {
	t.Helper()
	urls := make([]string, plan.Shards())
	for i := range urls {
		urls[i] = startShard(t, plan.Interval(i), names, rels, index)
	}
	router, err := shard.NewRouter(urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := router.Verify(context.Background()); err != nil {
		t.Fatalf("fleet verification: %v", err)
	}
	svc := shard.NewService(shard.ServiceConfig{Router: router, Logger: discard()})
	front := httptest.NewServer(svc.Handler())
	t.Cleanup(front.Close)
	return client.New(front.URL, nil), router, front.URL
}

// brute computes the reference pair set independently of every join
// implementation under test.
func brute(a, b []unijoin.Record, win *unijoin.Rect) map[unijoin.Pair]bool {
	out := map[unijoin.Pair]bool{}
	for _, ra := range a {
		if win != nil && !ra.Rect.Intersects(*win) {
			continue
		}
		for _, rb := range b {
			if win != nil && !rb.Rect.Intersects(*win) {
				continue
			}
			if ra.Rect.Intersects(rb.Rect) {
				out[unijoin.Pair{Left: ra.ID, Right: rb.ID}] = true
			}
		}
	}
	return out
}

// adversarial builds two relations dense in the worst cases of the
// ownership rules: zero-width records sitting exactly on shard
// boundaries, records whose left or right edge coincides with a
// boundary, duplicate rectangles under distinct IDs, and records
// spanning several stripes — plus uniform filler so local pairs
// exist too.
func adversarial(bounds []unijoin.Coord) (a, b []unijoin.Record) {
	var id uint32
	add := func(dst []unijoin.Record, x1, y1, x2, y2 unijoin.Coord) []unijoin.Record {
		id++
		return append(dst, unijoin.Record{Rect: unijoin.NewRect(x1, y1, x2, y2), ID: id})
	}
	for _, bd := range bounds {
		for rep := 0; rep < 2; rep++ { // duplicates under distinct IDs
			a = add(a, bd, 10, bd, 990)      // zero-width on the boundary
			a = add(a, bd-3, 100, bd+3, 500) // crossing
			a = add(a, bd-5, 200, bd, 600)   // right edge on the boundary
			a = add(a, bd, 300, bd+5, 700)   // left edge on the boundary
			b = add(b, bd, 20, bd, 980)
			b = add(b, bd-2, 150, bd+2, 450)
			b = add(b, bd-7, 250, bd, 650)
			b = add(b, bd, 350, bd+7, 750)
		}
	}
	// A record spanning every stripe meets everything horizontally.
	a = add(a, 0, 400, 1000, 420)
	b = add(b, 0, 410, 1000, 430)
	for i, r := range datagen.Uniform(41, 600, universe, 30) {
		r.ID = id + 1 + uint32(i)
		a = append(a, r)
	}
	id += 601
	for i, r := range datagen.Uniform(42, 500, universe, 30) {
		r.ID = id + 1 + uint32(i)
		b = append(b, r)
	}
	return a, b
}

// TestRouterJoinEqualsSingleProcess is the sharding correctness
// property: for every algorithm and shard count, a join (and window
// query) executed through the router over K striped sjserved shards
// returns exactly the pair set — duplicate-free — and count of the
// single-process run, on uniform, clustered, and boundary-adversarial
// inputs, windowed and unwindowed.
func TestRouterJoinEqualsSingleProcess(t *testing.T) {
	terr := datagen.NewTerrain(31, universe, 8)
	fixedBounds := []unijoin.Coord{140, 320, 500, 680, 810, 930}
	advA, advB := adversarial(fixedBounds)
	cases := []struct {
		name string
		a, b []unijoin.Record
		// fixed, when set, overrides the quantile planner with
		// hand-picked boundaries the adversarial records sit on.
		fixed []unijoin.Coord
	}{
		{name: "uniform", a: datagen.Uniform(21, 2000, universe, 25), b: datagen.Uniform(22, 1500, universe, 25)},
		{name: "clustered",
			a: datagen.Roads(terr, 32, 2000, datagen.RoadParams{}),
			b: datagen.Hydro(terr, 33, 1200, datagen.HydroParams{})},
		{name: "adversarial", a: advA, b: advB, fixed: fixedBounds},
	}
	win := unijoin.NewRect(100, 100, 450, 450)
	winDTO := client.Rect{XLo: 100, YLo: 100, XHi: 450, YHi: 450}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rels := map[string][]unijoin.Record{"a": tc.a, "b": tc.b}
			names := []string{"a", "b"}
			wantAll := brute(tc.a, tc.b, nil)
			wantWin := brute(tc.a, tc.b, &win)
			wantRecs := map[uint32]bool{}
			for _, r := range tc.a {
				if r.Rect.Intersects(win) {
					wantRecs[r.ID] = true
				}
			}

			for _, k := range []int{1, 2, 4, 7} {
				var plan *shard.Plan
				if tc.fixed != nil {
					var err error
					plan, err = shard.PlanFromBoundaries(universe, tc.fixed[:k-1])
					if err != nil {
						t.Fatal(err)
					}
				} else {
					plan = shard.NewPlan(universe, k, tc.a, tc.b)
				}
				cl, _, _ := startFleet(t, plan, names, rels, true)
				ctx := context.Background()

				for _, alg := range allAlgorithms {
					req := client.JoinRequest{Left: "a", Right: "b", Algorithm: alg}
					sum, err := cl.JoinCount(ctx, req)
					if err != nil {
						t.Fatalf("k=%d %s count: %v", k, alg, err)
					}
					if sum.Pairs != int64(len(wantAll)) {
						t.Fatalf("k=%d %s: routed count %d != single-process %d",
							k, alg, sum.Pairs, len(wantAll))
					}

					got := map[unijoin.Pair]bool{}
					dups := 0
					sum, err = cl.Join(ctx, req, func(l, r uint32) {
						p := unijoin.Pair{Left: l, Right: r}
						if got[p] {
							dups++
						}
						got[p] = true
					})
					if err != nil {
						t.Fatalf("k=%d %s stream: %v", k, alg, err)
					}
					if dups != 0 {
						t.Fatalf("k=%d %s: %d duplicate pairs in routed stream", k, alg, dups)
					}
					if len(got) != len(wantAll) || int64(len(got)) != sum.Pairs {
						t.Fatalf("k=%d %s: streamed %d pairs (summary %d), want %d",
							k, alg, len(got), sum.Pairs, len(wantAll))
					}
					for p := range got {
						if !wantAll[p] {
							t.Fatalf("k=%d %s: spurious pair %v", k, alg, p)
						}
					}

					wsum, err := cl.JoinCount(ctx, client.JoinRequest{
						Left: "a", Right: "b", Algorithm: alg, Window: &winDTO,
					})
					if err != nil {
						t.Fatalf("k=%d %s windowed: %v", k, alg, err)
					}
					if wsum.Pairs != int64(len(wantWin)) {
						t.Fatalf("k=%d %s: routed windowed count %d != single-process %d",
							k, alg, wsum.Pairs, len(wantWin))
					}
				}

				// The selection counterpart: window queries dedup
				// replicated boundary records by left-edge ownership.
				gotRecs := map[uint32]bool{}
				recDups := 0
				rsum, err := cl.Window(ctx, client.WindowRequest{Relation: "a", Window: &winDTO},
					func(r client.RecordOut) {
						if gotRecs[r.ID] {
							recDups++
						}
						gotRecs[r.ID] = true
					})
				if err != nil {
					t.Fatalf("k=%d window: %v", k, err)
				}
				if recDups != 0 {
					t.Fatalf("k=%d: %d duplicate records in routed window stream", k, recDups)
				}
				if len(gotRecs) != len(wantRecs) || rsum.Records != int64(len(wantRecs)) {
					t.Fatalf("k=%d: routed window %d records (summary %d), want %d",
						k, len(gotRecs), rsum.Records, len(wantRecs))
				}
				for id := range gotRecs {
					if !wantRecs[id] {
						t.Fatalf("k=%d: spurious window record %d", k, id)
					}
				}
			}
		})
	}
}

// TestRouterMetadataAndErrors covers the router's merged metadata
// endpoints and its typed error propagation.
func TestRouterMetadataAndErrors(t *testing.T) {
	a := datagen.Uniform(51, 1200, universe, 25)
	b := datagen.Uniform(52, 900, universe, 25)
	rels := map[string][]unijoin.Record{"a": a, "b": b}
	names := []string{"a", "b"}
	plan := shard.NewPlan(universe, 3, a, b)
	cl, router, _ := startFleet(t, plan, names, rels, false) // no indexes
	ctx := context.Background()

	infos, err := cl.Relations(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("relations: got %d, want 2", len(infos))
	}
	for _, info := range infos {
		if info.Shards != plan.Shards() {
			t.Fatalf("relation %s: Shards = %d, want %d", info.Name, info.Shards, plan.Shards())
		}
		if info.Records < int64(len(rels[info.Name])) {
			t.Fatalf("relation %s: merged records %d < input %d (shards lost records)",
				info.Name, info.Records, len(rels[info.Name]))
		}
	}
	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shards != plan.Shards() {
		t.Fatalf("stats.Shards = %d, want %d", stats.Shards, plan.Shards())
	}

	// Typed errors surface through the router: unknown relation is
	// ErrNotFound, an index-requiring algorithm on unindexed shards
	// is ErrNeedsIndex.
	if _, err := cl.JoinCount(ctx, client.JoinRequest{Left: "a", Right: "nope"}); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("unknown relation: got %v, want ErrNotFound", err)
	}
	if _, err := cl.JoinCount(ctx, client.JoinRequest{Left: "a", Right: "b", Algorithm: "ST"}); !errors.Is(err, client.ErrNeedsIndex) {
		t.Fatalf("ST without indexes: got %v, want ErrNeedsIndex", err)
	}

	// A fleet of >1 shards where one serves no stripe must be
	// refused: it would double-count pairs.
	full := startShard(t, shard.Everything(), names, rels, false)
	bad, err := shard.NewRouter([]string{router.Endpoints()[0], full}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Verify(ctx); err == nil {
		t.Fatal("fleet with an unstriped shard passed verification")
	}

	// A one-shard fleet whose shard serves a bounded stripe would
	// answer with a subset of the data — also refused.
	lone, err := shard.NewRouter(router.Endpoints()[:1], nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lone.Verify(ctx); err == nil {
		t.Fatal("single bounded-stripe shard passed verification")
	}
}
