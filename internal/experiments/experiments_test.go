package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"unijoin/internal/tiger"
)

// tinyConfig keeps experiment smoke tests fast.
func tinyConfig() Config {
	return Config{
		Tiger: tiger.Config{Scale: 0.0005, Seed: 1997, Clusters: 20},
		Sets:  []string{"NJ", "NY"},
	}
}

func TestTable1Shape(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 3 {
		t.Fatalf("Table 1 must have 3 machines, got %d", len(tab.Rows))
	}
	if tab.Rows[0][1] != "50" || tab.Rows[2][1] != "500" {
		t.Fatalf("CPU columns wrong: %v", tab.Rows)
	}
	if !strings.Contains(tab.String(), "Cheetah") {
		t.Fatal("disk models missing from Table 1")
	}
}

func TestPrepareBuildsConsistentEnv(t *testing.T) {
	cfg := tinyConfig()
	env, err := Prepare(cfg, tiger.NJ)
	if err != nil {
		t.Fatal(err)
	}
	if env.RoadsTree.NumRecords() == 0 || env.HydroTree.NumRecords() == 0 {
		t.Fatal("empty relations")
	}
	if env.BuildIO.Total() == 0 {
		t.Fatal("bulk loading must cost I/O")
	}
	// Options must reset counters.
	_ = env.Options()
	if env.Store.Counters().Total() != 0 {
		t.Fatal("Options must reset store counters")
	}
}

func TestTable2OutputsWithinBand(t *testing.T) {
	tab, err := Table2(context.Background(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		r, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatalf("bad ratio cell %q", row[len(row)-1])
		}
		if r < 0.3 || r > 3 {
			t.Fatalf("%s: output ratio %v outside band", row[0], r)
		}
	}
}

func TestTable3MemoryStaysSmall(t *testing.T) {
	// Table3 itself enforces the memory bound; just run it.
	if _, err := Table3(context.Background(), tinyConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestTable4PQOptimal(t *testing.T) {
	tab, err := Table4(context.Background(), tinyConfig())
	if err != nil {
		t.Fatal(err) // Table4 errors if PQ is not exactly optimal
	}
	for _, row := range tab.Rows {
		if row[3] != "1.00" {
			t.Fatalf("PQ avg requests %s != 1.00", row[3])
		}
	}
}

func TestFig2And3Shapes(t *testing.T) {
	cfg := tinyConfig()
	f2, err := Fig2(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 sets x 3 machines x 2 algorithms.
	if len(f2.Rows) != 12 {
		t.Fatalf("fig2 rows = %d", len(f2.Rows))
	}
	f3, err := Fig3(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 sets x 3 machines x 4 algorithms.
	if len(f3.Rows) != 24 {
		t.Fatalf("fig3 rows = %d", len(f3.Rows))
	}
}

func TestSelectiveCrossesOver(t *testing.T) {
	// DISK1 at 1/500 scale has enough leaves (~35 in the road tree)
	// for the random-access pattern of the index path to express.
	cfg := Config{
		Tiger: tiger.Config{Scale: 0.002, Seed: 1997, Clusters: 40},
		Sets:  []string{"DISK1"},
	}
	tab, err := Selective(context.Background(), cfg, "DISK1")
	if err != nil {
		t.Fatal(err)
	}
	// The index must win at the smallest window and lose at 100%,
	// and the cost model must flip from index to sort somewhere near
	// its threshold (the paper's 60% rule).
	first := tab.Rows[0]
	last := tab.Rows[len(tab.Rows)-1]
	if first[5] != "index" {
		t.Fatalf("smallest window winner = %s, want index", first[5])
	}
	if last[5] != "sort" {
		t.Fatalf("full window winner = %s, want sort", last[5])
	}
	if first[6] != "index" || last[6] != "sort" {
		t.Fatalf("model must also flip: first=%s last=%s", first[6], last[6])
	}
}

func TestRegistryRunsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry is slow")
	}
	cfg := tinyConfig()
	var sb strings.Builder
	if err := RunAll(context.Background(), cfg, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, id := range IDs {
		if !strings.Contains(out, "== "+id+":") {
			t.Fatalf("output missing experiment %s", id)
		}
	}
}

func TestOneIndexStrategiesAgree(t *testing.T) {
	// OneIndex itself errors if any strategy's pair count diverges.
	cfg := tinyConfig()
	tab, err := OneIndex(context.Background(), cfg, "NY")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 strategies", len(tab.Rows))
	}
}

func TestBFRJCompareApproachesLowerBound(t *testing.T) {
	// Needs enough tree pages for the level-wise global ordering to
	// matter; 1/100 scale gives ~200.
	cfg := Config{
		Tiger: tiger.Config{Scale: 0.01, Seed: 1997, Clusters: 40},
		Sets:  []string{"DISK1"},
	}
	tab, err := BFRJCompare(context.Background(), cfg, "DISK1")
	if err != nil {
		t.Fatal(err)
	}
	// At the largest pool, both columns must read 1.00.
	last := tab.Rows[len(tab.Rows)-1]
	if last[2] != "1.00" || last[4] != "1.00" {
		t.Fatalf("full pool should be optimal for both: %v", last)
	}
	// At the smallest pool, BFRJ must be closer to optimal than ST.
	first := tab.Rows[0]
	if !(first[4] < first[2]) {
		t.Fatalf("BFRJ avg %s should be below ST avg %s at a small pool", first[4], first[2])
	}
}

func TestRegistryUnknownID(t *testing.T) {
	if err := Run(context.Background(), "nope", tinyConfig(), &strings.Builder{}); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestAblationSweepAgreesOnPairs(t *testing.T) {
	// AblationSweep itself verifies pair equality between structures.
	if _, err := AblationSweep(context.Background(), tinyConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestAblationPoolMonotone(t *testing.T) {
	cfg := tinyConfig()
	tab, err := AblationSTBufferPool(context.Background(), cfg, "NY")
	if err != nil {
		t.Fatal(err)
	}
	// Requests must not increase as the pool grows.
	prev := int64(1 << 62)
	for _, row := range tab.Rows {
		v, err := strconv.ParseInt(row[1], 10, 64)
		if err != nil {
			t.Fatalf("bad requests cell %q", row[1])
		}
		if v > prev {
			t.Fatalf("requests increased with pool size: %d after %d", v, prev)
		}
		prev = v
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{ID: "x", Title: "t", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddNote("n=%d", 7)
	out := tab.String()
	for _, want := range []string{"== x: t ==", "a", "bb", "note: n=7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}
