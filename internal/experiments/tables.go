package experiments

import (
	"context"
	"fmt"

	"unijoin/internal/core"
	"unijoin/internal/geom"
	"unijoin/internal/iosim"
	"unijoin/internal/rtree"
	"unijoin/internal/tiger"
)

// Table1 reproduces Table 1: the hardware configurations. It is a
// transcription check — the constants drive everything else.
func Table1() *Table {
	t := &Table{
		ID:     "table1",
		Title:  "Hardware configurations (Table 1)",
		Header: []string{"Workstation", "CPU MHz", "Disk", "Size GB", "Buffer KB", "Read ms", "Peak MB/s"},
	}
	for _, m := range iosim.Machines {
		t.AddRow(m.Name,
			fmt.Sprintf("%d", m.CPUMHz),
			m.Disk.Model,
			fmt.Sprintf("%.1f", m.Disk.SizeGB),
			fmt.Sprintf("%d", m.Disk.OnDiskBufferKB),
			fmt.Sprintf("%.1f", m.Disk.AvgAccessMs),
			fmt.Sprintf("%.1f", m.Disk.PeakMBps))
	}
	t.AddNote("rand/seq read cost ratios at 8 KB pages: %.1fx, %.1fx, %.1fx",
		rs(iosim.Machine1), rs(iosim.Machine2), rs(iosim.Machine3))
	return t
}

func rs(m iosim.Machine) float64 {
	return float64(m.Disk.RandReadTime(m.PageSize)) / float64(m.Disk.SeqReadTime(m.PageSize))
}

// Table2 reproduces Table 2: per data set, object counts, data and
// R-tree sizes, and join output cardinality — measured on the
// synthetic sets next to the paper's values scaled by the configured
// factor.
func Table2(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:    "table2",
		Title: fmt.Sprintf("Data sets at scale %g (Table 2)", cfg.Tiger.Scale),
		Header: []string{"Set", "Roads", "Hydro", "RoadMB", "HydroMB",
			"RTreeRdMB", "RTreeHyMB", "Output", "Paper*scale", "Out ratio"},
	}
	err := cfg.forEach(func(e *Env) error {
		o := e.Options()
		res, err := core.SSSJ(ctx, o, e.RoadsFile, e.HydroFile)
		if err != nil {
			return err
		}
		paperOut := float64(e.Spec.PaperOutputPairs) * cfg.Tiger.Scale
		t.AddRow(e.Spec.Name,
			fmt.Sprintf("%d", e.RoadsTree.NumRecords()),
			fmt.Sprintf("%d", e.HydroTree.NumRecords()),
			mb(e.RoadsFile.Size()),
			mb(e.HydroFile.Size()),
			mb(e.RoadsTree.SizeBytes()),
			mb(e.HydroTree.SizeBytes()),
			fmt.Sprintf("%d", res.Pairs),
			fmt.Sprintf("%.0f", paperOut),
			ratio(float64(res.Pairs), paperOut))
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddNote("R-tree size tracks data size within ~8%% as in the paper (packed nodes)")
	return t, nil
}

// Table3 reproduces Table 3: the maximal memory usage of the PQ join —
// priority queues plus leaf buffers, and the sweep structure —
// verifying everything stays a tiny fraction of the data set.
func Table3(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:    "table3",
		Title: "Maximal memory usage of the PQ join in MB (Table 3)",
		Header: []string{"Set", "PriorityQ MB", "Sweep MB", "Total MB",
			"Data MB", "PQ % of data"},
	}
	err := cfg.forEach(func(e *Env) error {
		o := e.Options()
		res, err := core.PQ(ctx, o, core.TreeInput(e.RoadsTree), core.TreeInput(e.HydroTree))
		if err != nil {
			return err
		}
		dataBytes := e.RoadsFile.Size() + e.HydroFile.Size()
		pqPct := 100 * float64(res.ScannerMaxBytes) / float64(dataBytes)
		t.AddRow(e.Spec.Name,
			mb(int64(res.ScannerMaxBytes)),
			mb(int64(res.SweepMaxBytes)),
			mb(int64(res.ScannerMaxBytes+res.SweepMaxBytes)),
			mb(dataBytes),
			fmt.Sprintf("%.2f%%", pqPct))
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddNote("paper: priority queue always < 1%% of the data set; at reduced scale the leaf buffers")
	t.AddNote("dominate (few hundred leaves instead of ~100k), so the fraction shrinks as scale grows")
	return t, nil
}

// Table4 reproduces Table 4: pages requested from disk while joining,
// for PQ and ST, against the lower bound (the number of index pages).
func Table4(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:    "table4",
		Title: "Pages requested during joining (Table 4)",
		Header: []string{"Set", "LowerBound", "PQ total", "PQ avg",
			"ST total", "ST avg", "ST logical"},
	}
	err := cfg.forEach(func(e *Env) error {
		lower := int64(e.RoadsTree.NumNodes() + e.HydroTree.NumNodes())

		o := e.Options()
		pq, err := core.PQ(ctx, o, core.TreeInput(e.RoadsTree), core.TreeInput(e.HydroTree))
		if err != nil {
			return err
		}
		o = e.Options()
		st, err := core.ST(ctx, o, e.RoadsTree, e.HydroTree)
		if err != nil {
			return err
		}
		t.AddRow(e.Spec.Name,
			fmt.Sprintf("%d", lower),
			fmt.Sprintf("%d", pq.PageRequests),
			fmt.Sprintf("%.2f", float64(pq.PageRequests)/float64(lower)),
			fmt.Sprintf("%d", st.PageRequests),
			fmt.Sprintf("%.2f", float64(st.PageRequests)/float64(lower)),
			fmt.Sprintf("%d", st.LogicalRequests))
		if pq.PageRequests != lower {
			return fmt.Errorf("PQ page requests %d != lower bound %d", pq.PageRequests, lower)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddNote("PQ is exactly optimal (avg 1.00); ST exceeds the bound once the trees outgrow the buffer pool")
	return t, nil
}

// joinForFigure runs one algorithm on an env and returns the result.
func joinForFigure(ctx context.Context, e *Env, alg string) (core.Result, error) {
	o := e.Options()
	switch alg {
	case "SJ":
		return core.SSSJ(ctx, o, e.RoadsFile, e.HydroFile)
	case "PB":
		return core.PBSM(ctx, o, e.RoadsFile, e.HydroFile)
	case "PQ":
		return core.PQ(ctx, o, core.TreeInput(e.RoadsTree), core.TreeInput(e.HydroTree))
	case "ST":
		return core.ST(ctx, o, e.RoadsTree, e.HydroTree)
	default:
		return core.Result{}, fmt.Errorf("unknown algorithm %q", alg)
	}
}

// Fig2 reproduces Figure 2: estimated versus observed join costs for
// the two index-based algorithms on all three machines. Estimated
// charges every page request the average read time; observed prices
// sequential and random accesses separately.
func Fig2(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:    "fig2",
		Title: "Estimated vs observed cost of PQ and ST, seconds (Figure 2)",
		Header: []string{"Machine", "Set", "Alg", "CPU", "IO est", "IO obs",
			"Total est", "Total obs"},
	}
	type cell struct {
		alg string
		res core.Result
	}
	err := cfg.forEach(func(e *Env) error {
		var cells []cell
		for _, alg := range []string{"PQ", "ST"} {
			res, err := joinForFigure(ctx, e, alg)
			if err != nil {
				return err
			}
			cells = append(cells, cell{alg, res})
		}
		for _, m := range iosim.Machines {
			for _, c := range cells {
				t.AddRow(m.Name, e.Spec.Name, c.alg,
					secs(c.res.CPUTime(m)),
					secs(c.res.EstimatedIOTime(m)),
					secs(c.res.ObservedIOTime(m)),
					secs(c.res.EstimatedTotal(m)),
					secs(c.res.ObservedTotal(m)))
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddNote("estimated times make PQ and ST look close; observed times favour ST's layout-friendly DFS (Fig 2 d-f)")
	return t, nil
}

// Fig3 reproduces Figure 3: observed total cost of all four algorithms
// on all three machines.
func Fig3(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:     "fig3",
		Title:  "Observed join costs of all algorithms, seconds (Figure 3)",
		Header: []string{"Machine", "Set", "Alg", "CPU", "IO obs", "Total", "Pages"},
	}
	type cell struct {
		alg string
		res core.Result
	}
	err := cfg.forEach(func(e *Env) error {
		var cells []cell
		for _, alg := range []string{"SJ", "PB", "PQ", "ST"} {
			res, err := joinForFigure(ctx, e, alg)
			if err != nil {
				return err
			}
			cells = append(cells, cell{alg, res})
		}
		for _, m := range iosim.Machines {
			for _, c := range cells {
				t.AddRow(m.Name, e.Spec.Name, c.alg,
					secs(c.res.CPUTime(m)),
					secs(c.res.ObservedIOTime(m)),
					secs(c.res.ObservedTotal(m)),
					fmt.Sprintf("%d", c.res.IO.Total()))
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddNote("SSSJ moves the most pages yet usually wins on total time (sequential I/O); cf. Figure 3")
	return t, nil
}

// storeReader returns the uncached page reader for an env's store.
func storeReader(e *Env) rtree.StoreReader { return rtree.StoreReader{Store: e.Store} }

// Selective reproduces the Section 6.3 discussion: joining a localized
// window of the hydro relation against the full road relation, sweeping
// the window size so the touched-leaf fraction crosses the cost-model
// threshold. For each fraction it reports the observed cost of the
// windowed index join (PQ restricted) and the full sort join (SSSJ),
// and what the planner would choose on Machine 1.
func Selective(ctx context.Context, cfg Config, set string) (*Table, error) {
	spec, err := tiger.SpecByName(set)
	if err != nil {
		return nil, err
	}
	env, err := Prepare(cfg, spec)
	if err != nil {
		return nil, err
	}
	planner := core.Planner{Machine: iosim.Machine1}
	t := &Table{
		ID:    "sel",
		Title: fmt.Sprintf("Selective join on %s: index vs sort I/O as selectivity grows (§6.3)", spec.Name),
		Header: []string{"Window %", "Leaf frac", "PQ IO rand s", "PQ IO obs s", "SSSJ IO s",
			"Winner", "Model says", "Threshold"},
	}
	region := spec.Region
	machine := iosim.Machine1
	for _, pct := range []float64{0.02, 0.05, 0.10, 0.20, 0.35, 0.50, 0.70, 1.0} {
		w := geom.NewRect(region.XLo, region.YLo,
			region.XLo+geom.Coord(float64(region.Width())*pct),
			region.YLo+geom.Coord(float64(region.Height())*pct))
		if pct >= 1 {
			w = region
		}

		// True touched-leaf fraction of the road tree.
		touched, err := env.RoadsTree.CountLeavesIntersecting(
			storeReader(env), w)
		if err != nil {
			return nil, err
		}
		frac := float64(touched) / float64(env.RoadsTree.NumLeaves())

		// Index path: PQ with both scanners windowed.
		o := env.Options()
		o.Window = &w
		o.RestrictScanners = true
		idx, err := core.PQ(ctx, o, core.TreeInput(env.RoadsTree), core.TreeInput(env.HydroTree))
		if err != nil {
			return nil, err
		}
		// Sort path: SSSJ still sorts both full relations (the paper's
		// point: it cannot exploit locality), sweeping only the window.
		o = env.Options()
		o.Window = &w
		sj, err := sssjWindowed(ctx, o, env, w)
		if err != nil {
			return nil, err
		}

		// The Section 6.3 model prices I/O only, and its index-side term
		// is "one random read per touched page" — so the winner column
		// uses that pricing (EstimatedIOTime). The observed column shows
		// what drive caching actually recovers: it shifts the break-even
		// upward, which is the conservative direction for the planner
		// (an index chosen by the model only gets cheaper).
		idxRand := idx.EstimatedIOTime(machine)
		idxObs := idx.ObservedIOTime(machine)
		sjTime := sj.ObservedIOTime(machine)
		winner := "index"
		if sjTime < idxRand {
			winner = "sort"
		}
		model := "sort"
		if frac < planner.Threshold() {
			model = "index"
		}
		t.AddRow(fmt.Sprintf("%.0f%%", pct*100),
			fmt.Sprintf("%.2f", frac),
			secs(idxRand), secs(idxObs), secs(sjTime), winner, model,
			fmt.Sprintf("%.2f", planner.Threshold()))
	}
	t.AddNote("model threshold on Machine 1 is ~0.6 of the leaves, the paper's 60%% rule")
	t.AddNote("winner prices index reads as random (the model's assumption); observed PQ I/O is lower")
	return t, nil
}

// sssjWindowed runs SSSJ on the full relations — the sort path cannot
// exploit the window's locality (the paper's point in §6.3), so it
// pays the complete sort-and-sweep regardless of selectivity.
func sssjWindowed(ctx context.Context, o core.Options, env *Env, w geom.Rect) (core.Result, error) {
	_ = w // semantics identical; only the reported pairs differ
	o.Emit = nil
	return core.SSSJ(ctx, o, env.RoadsFile, env.HydroFile)
}
