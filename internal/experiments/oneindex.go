package experiments

import (
	"context"
	"fmt"

	"unijoin/internal/core"
	"unijoin/internal/iosim"
)

// OneIndex compares the strategies for the case Section 2 of the paper
// surveys — "only one of the relations has an index" — on one data
// set: the roads are indexed, the hydro relation is a plain stream.
//
//   - PQ         — the paper's unified answer: traverse the index in
//     sorted order, sort the other side, sweep (no index built).
//   - SeededST   — Lo and Ravishankar [21]: build a seeded tree over
//     the non-indexed side from the existing index, then run the
//     synchronized traversal of [8].
//   - INL        — indexed nested loop: probe the index once per
//     stream record.
//   - SSSJ       — ignore the index entirely and sort both sides.
//
// All four produce identical pair sets (tested); the table shows what
// they pay for it.
func OneIndex(ctx context.Context, cfg Config, set string) (*Table, error) {
	env, err := prepareOne(cfg, set)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "oneindex",
		Title: fmt.Sprintf("One-index join strategies on %s (roads indexed, hydro a stream)", set),
		Header: []string{"Strategy", "Pairs", "Reads", "Writes", "IdxReqs",
			"M1 s", "M2 s", "M3 s"},
	}
	m := iosim.Machines
	var firstPairs int64
	add := func(name string, res core.Result, err error) error {
		if err != nil {
			return err
		}
		if firstPairs == 0 {
			firstPairs = res.Pairs
		} else if res.Pairs != firstPairs {
			return fmt.Errorf("%s produced %d pairs, others %d", name, res.Pairs, firstPairs)
		}
		t.AddRow(name,
			fmt.Sprintf("%d", res.Pairs),
			fmt.Sprintf("%d", res.IO.Reads()),
			fmt.Sprintf("%d", res.IO.Writes()),
			fmt.Sprintf("%d", res.PageRequests),
			secs(res.ObservedTotal(m[0])),
			secs(res.ObservedTotal(m[1])),
			secs(res.ObservedTotal(m[2])))
		return nil
	}

	o := env.Options()
	res, err := core.PQ(ctx, o, core.TreeInput(env.RoadsTree), core.FileInput(env.HydroFile))
	if err := add("PQ (unified)", res, err); err != nil {
		return nil, err
	}
	o = env.Options()
	res, err = core.SeededTreeJoin(ctx, o, env.RoadsTree, env.HydroFile)
	if err := add("Seeded tree + ST", res, err); err != nil {
		return nil, err
	}
	o = env.Options()
	res, err = core.INL(ctx, o, env.RoadsTree, env.HydroFile)
	if err := add("Indexed nested loop", res, err); err != nil {
		return nil, err
	}
	o = env.Options()
	res, err = core.SSSJ(ctx, o, env.RoadsFile, env.HydroFile)
	if err := add("SSSJ (ignore index)", res, err); err != nil {
		return nil, err
	}
	t.AddNote("PQ needs only a sort of the stream side; the seeded tree pays a full index build first")
	return t, nil
}

// BFRJCompare contrasts the depth-first ST with the breadth-first BFRJ
// of Huang, Jing and Rundensteiner [16], which the paper cites for
// "approximately the same CPU time as ST while performing an almost
// optimal number of I/O operations": page requests at several pool
// sizes, with the lower bound for reference.
func BFRJCompare(ctx context.Context, cfg Config, set string) (*Table, error) {
	env, err := prepareOne(cfg, set)
	if err != nil {
		return nil, err
	}
	lower := int64(env.RoadsTree.NumNodes() + env.HydroTree.NumNodes())
	t := &Table{
		ID:     "bfrj",
		Title:  fmt.Sprintf("ST vs BFRJ page requests on %s (lower bound %d)", set, lower),
		Header: []string{"Pool pages", "ST reqs", "ST avg", "BFRJ reqs", "BFRJ avg", "IJI KB"},
	}
	for _, frac := range []float64{0.05, 0.15, 0.5, 1.0} {
		poolBytes := int(float64(lower) * frac * float64(env.Store.PageSize()))
		if poolBytes < env.Store.PageSize() {
			poolBytes = env.Store.PageSize()
		}
		o := env.Options()
		o.BufferPoolBytes = poolBytes
		st, err := core.ST(ctx, o, env.RoadsTree, env.HydroTree)
		if err != nil {
			return nil, err
		}
		o = env.Options()
		o.BufferPoolBytes = poolBytes
		bf, err := core.BFRJ(ctx, o, env.RoadsTree, env.HydroTree)
		if err != nil {
			return nil, err
		}
		if st.Pairs != bf.Pairs {
			return nil, fmt.Errorf("ST and BFRJ disagree: %d vs %d pairs", st.Pairs, bf.Pairs)
		}
		t.AddRow(fmt.Sprintf("%d", poolBytes/env.Store.PageSize()),
			fmt.Sprintf("%d", st.PageRequests),
			fmt.Sprintf("%.2f", float64(st.PageRequests)/float64(lower)),
			fmt.Sprintf("%d", bf.PageRequests),
			fmt.Sprintf("%.2f", float64(bf.PageRequests)/float64(lower)),
			fmt.Sprintf("%d", bf.ScannerMaxBytes/1024))
	}
	t.AddNote("[16]: breadth-first traversal with globally ordered accesses approaches the lower bound")
	return t, nil
}
