package experiments

import (
	"context"
	"fmt"
	"io"
)

// defaultAblationSet is the data set used by single-set experiments:
// large enough that the trees outgrow the scaled buffer pool.
const defaultAblationSet = "DISK1"

// IDs lists every experiment the registry can run, in DESIGN.md order.
var IDs = []string{
	"table1", "table2", "table3", "table4", "fig2", "fig3", "sel",
	"oneindex", "bfrj",
	"abl-sweep", "abl-pool", "abl-pack", "abl-tiles", "abl-leafstream", "abl-layout",
	"wallclock", "transport",
}

// Run executes one experiment by id and prints its table to w.
func Run(ctx context.Context, id string, cfg Config, w io.Writer) error {
	t, err := RunTable(ctx, id, cfg)
	if err != nil {
		return err
	}
	t.Fprint(w)
	return nil
}

// RunTable builds the table for one experiment id.
func RunTable(ctx context.Context, id string, cfg Config) (*Table, error) {
	switch id {
	case "table1":
		return Table1(), nil
	case "table2":
		return Table2(ctx, cfg)
	case "table3":
		return Table3(ctx, cfg)
	case "table4":
		return Table4(ctx, cfg)
	case "fig2":
		return Fig2(ctx, cfg)
	case "fig3":
		return Fig3(ctx, cfg)
	case "sel":
		return Selective(ctx, cfg, selSet(cfg))
	case "oneindex":
		return OneIndex(ctx, cfg, selSet(cfg))
	case "bfrj":
		return BFRJCompare(ctx, cfg, selSet(cfg))
	case "abl-sweep":
		return AblationSweep(ctx, cfg)
	case "abl-pool":
		return AblationSTBufferPool(ctx, cfg, selSet(cfg))
	case "abl-pack":
		return AblationPacking(ctx, cfg, selSet(cfg))
	case "abl-tiles":
		return AblationPBSMTiles(ctx, cfg, selSet(cfg))
	case "abl-leafstream":
		return AblationPQLeafStreaming(ctx, cfg, selSet(cfg))
	case "abl-layout":
		return AblationLayout(ctx, cfg, selSet(cfg))
	case "wallclock":
		return Wallclock(ctx, cfg, 0) // 0: scale to GOMAXPROCS
	case "transport":
		return Transport(ctx, cfg)
	default:
		return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs)
	}
}

// selSet picks the single-set experiments' data set: the largest
// configured set, so the buffer pool is genuinely undersized.
func selSet(cfg Config) string {
	if len(cfg.Sets) > 0 {
		return cfg.Sets[len(cfg.Sets)-1]
	}
	return defaultAblationSet
}

// RunAll executes every experiment in order.
func RunAll(ctx context.Context, cfg Config, w io.Writer) error {
	for _, id := range IDs {
		if err := Run(ctx, id, cfg, w); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
	}
	return nil
}
