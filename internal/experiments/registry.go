package experiments

import (
	"fmt"
	"io"
)

// defaultAblationSet is the data set used by single-set experiments:
// large enough that the trees outgrow the scaled buffer pool.
const defaultAblationSet = "DISK1"

// IDs lists every experiment the registry can run, in DESIGN.md order.
var IDs = []string{
	"table1", "table2", "table3", "table4", "fig2", "fig3", "sel",
	"oneindex", "bfrj",
	"abl-sweep", "abl-pool", "abl-pack", "abl-tiles", "abl-leafstream", "abl-layout",
	"wallclock",
}

// Run executes one experiment by id and prints its table to w.
func Run(id string, cfg Config, w io.Writer) error {
	t, err := RunTable(id, cfg)
	if err != nil {
		return err
	}
	t.Fprint(w)
	return nil
}

// RunTable builds the table for one experiment id.
func RunTable(id string, cfg Config) (*Table, error) {
	switch id {
	case "table1":
		return Table1(), nil
	case "table2":
		return Table2(cfg)
	case "table3":
		return Table3(cfg)
	case "table4":
		return Table4(cfg)
	case "fig2":
		return Fig2(cfg)
	case "fig3":
		return Fig3(cfg)
	case "sel":
		return Selective(cfg, selSet(cfg))
	case "oneindex":
		return OneIndex(cfg, selSet(cfg))
	case "bfrj":
		return BFRJCompare(cfg, selSet(cfg))
	case "abl-sweep":
		return AblationSweep(cfg)
	case "abl-pool":
		return AblationSTBufferPool(cfg, selSet(cfg))
	case "abl-pack":
		return AblationPacking(cfg, selSet(cfg))
	case "abl-tiles":
		return AblationPBSMTiles(cfg, selSet(cfg))
	case "abl-leafstream":
		return AblationPQLeafStreaming(cfg, selSet(cfg))
	case "abl-layout":
		return AblationLayout(cfg, selSet(cfg))
	case "wallclock":
		return Wallclock(cfg, 0) // 0: scale to GOMAXPROCS
	default:
		return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs)
	}
}

// selSet picks the single-set experiments' data set: the largest
// configured set, so the buffer pool is genuinely undersized.
func selSet(cfg Config) string {
	if len(cfg.Sets) > 0 {
		return cfg.Sets[len(cfg.Sets)-1]
	}
	return defaultAblationSet
}

// RunAll executes every experiment in order.
func RunAll(cfg Config, w io.Writer) error {
	for _, id := range IDs {
		if err := Run(id, cfg, w); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
	}
	return nil
}
