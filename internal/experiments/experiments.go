// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 6) on the synthetic TIGER-like data sets
// and the simulated machines. Each experiment returns a Table that the
// sjbench command prints and the repository benchmarks exercise; the
// EXPERIMENTS.md file records paper-vs-measured values produced by
// this package.
//
// Experiment identifiers follow DESIGN.md: table1, table2, table3,
// table4, fig2, fig3, sel, plus the ablations.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"unijoin/internal/core"
	"unijoin/internal/geom"
	"unijoin/internal/iosim"
	"unijoin/internal/rtree"
	"unijoin/internal/stream"
	"unijoin/internal/tiger"
)

// Config selects the data scale and which data sets to run.
type Config struct {
	Tiger tiger.Config
	// Sets is the list of data set names; empty means all six.
	Sets []string
	// SkipLargest drops data sets above this index when > 0 (quick
	// runs use the first 2-3 sets).
	SkipLargest int
	// Window, when set, restricts the wall-clock experiment's joins
	// to this rectangle (sjbench -window); the paper-reproduction
	// tables are defined over the full data sets and ignore it.
	Window *geom.Rect
	// Transports selects the stream encodings the transport
	// experiment measures (sjbench -transport); empty means all of
	// TransportModes.
	Transports []string
}

// DefaultConfig runs all six data sets at 1/100 scale.
func DefaultConfig() Config {
	return Config{Tiger: tiger.DefaultConfig()}
}

// QuickConfig runs the three smallest data sets at 1/500 scale; it is
// what the unit tests and -short benchmarks use.
func QuickConfig() Config {
	return Config{
		Tiger: tiger.Config{Scale: 0.002, Seed: 1997, Clusters: 40},
		Sets:  []string{"NJ", "NY", "DISK1"},
	}
}

// specs resolves the configured data sets.
func (c Config) specs() ([]tiger.Spec, error) {
	if len(c.Sets) == 0 {
		return tiger.Specs, nil
	}
	var out []tiger.Spec
	for _, name := range c.Sets {
		s, err := tiger.SpecByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Env is one data set prepared on its own simulated disk: record
// streams for both relations plus bulk-loaded R-trees, with the build
// cost recorded separately from join costs.
type Env struct {
	Spec      tiger.Spec
	Cfg       Config
	Store     *iosim.Store
	RoadsFile *iosim.File
	HydroFile *iosim.File
	RoadsTree *rtree.Tree
	HydroTree *rtree.Tree
	BuildIO   iosim.Counters
	BuildCPU  time.Duration
}

// Prepare generates one data set and builds its files and indexes.
func Prepare(cfg Config, spec tiger.Spec) (*Env, error) {
	store := iosim.NewStore(iosim.DefaultPageSize)
	roads, hydro := cfg.Tiger.Generate(spec)
	rf, err := stream.WriteAll(store, stream.Records, roads)
	if err != nil {
		return nil, err
	}
	hf, err := stream.WriteAll(store, stream.Records, hydro)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	before := store.Counters()
	opts := rtree.DefaultBuildOptions()
	opts.SortMemory = cfg.Tiger.MemoryBytes()
	rt, err := rtree.Build(store, rf, spec.Region, opts)
	if err != nil {
		return nil, err
	}
	ht, err := rtree.Build(store, hf, spec.Region, opts)
	if err != nil {
		return nil, err
	}
	return &Env{
		Spec: spec, Cfg: cfg, Store: store,
		RoadsFile: rf, HydroFile: hf, RoadsTree: rt, HydroTree: ht,
		BuildIO: store.Counters().Sub(before), BuildCPU: time.Since(start),
	}, nil
}

// Options returns join options with the scaled memory budgets; the
// store counters are reset so each join is measured from cold.
func (e *Env) Options() core.Options {
	e.Store.ResetCounters()
	return core.Options{
		Store:           e.Store,
		Universe:        e.Spec.Region,
		MemoryBytes:     e.Cfg.Tiger.MemoryBytes(),
		BufferPoolBytes: e.Cfg.Tiger.BufferPoolBytes(),
	}
}

// forEach prepares each configured data set and invokes fn.
func (c Config) forEach(fn func(*Env) error) error {
	specs, err := c.specs()
	if err != nil {
		return err
	}
	if c.SkipLargest > 0 && len(specs) > c.SkipLargest {
		specs = specs[:c.SkipLargest]
	}
	for _, s := range specs {
		env, err := Prepare(c, s)
		if err != nil {
			return fmt.Errorf("prepare %s: %w", s.Name, err)
		}
		if err := fn(env); err != nil {
			return fmt.Errorf("%s: %w", s.Name, err)
		}
	}
	return nil
}

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			if i == 0 {
				b.WriteString(c + strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad) + c)
			}
		}
		fmt.Fprintln(w, "  "+b.String())
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String implements fmt.Stringer.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// FprintJSONL renders the table as NDJSON, one self-describing object
// per row — the machine-readable form behind sjbench -json, meant to
// be appended to a benchmark trajectory and diffed across commits.
// Keys are the header labels lowercased with spaces and slashes
// folded to underscores; purely numeric cells become JSON numbers.
func (t *Table) FprintJSONL(w io.Writer) error {
	keys := make([]string, len(t.Header))
	for i, h := range t.Header {
		keys[i] = jsonKey(h)
	}
	enc := json.NewEncoder(w)
	for _, row := range t.Rows {
		obj := make(map[string]any, len(row)+1)
		obj["experiment"] = t.ID
		for i, cell := range row {
			if i >= len(keys) {
				break
			}
			obj[keys[i]] = jsonCell(cell)
		}
		if err := enc.Encode(obj); err != nil {
			return err
		}
	}
	return nil
}

// jsonKey folds a header label to a stable JSON field name.
func jsonKey(h string) string {
	k := strings.ToLower(h)
	for _, cut := range []string{" ", "/", "-"} {
		k = strings.ReplaceAll(k, cut, "_")
	}
	return strings.Trim(k, "_")
}

// jsonCell parses a formatted cell back to a number when it is one.
func jsonCell(c string) any {
	if n, err := strconv.ParseInt(c, 10, 64); err == nil {
		return n
	}
	if f, err := strconv.ParseFloat(c, 64); err == nil {
		return f
	}
	return c
}

// mb formats a byte count in MB with two decimals.
func mb(b int64) string { return fmt.Sprintf("%.2f", float64(b)/(1<<20)) }

// secs formats a duration in seconds with two decimals.
func secs(d time.Duration) string { return fmt.Sprintf("%.2f", d.Seconds()) }

// rerr formats a measured/paper ratio.
func ratio(measured, paper float64) string {
	if paper == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", measured/paper)
}
