package experiments

import (
	"context"
	"fmt"
	"time"

	"unijoin/internal/core"
	"unijoin/internal/geom"
	"unijoin/internal/iosim"
	"unijoin/internal/rtree"
	"unijoin/internal/stream"
	"unijoin/internal/tiger"
)

// AblationSweep compares Striped-Sweep against Forward-Sweep inside
// the SSSJ kernel — the 2-5x claim of Arge et al. [4] that motivated
// adopting Striped-Sweep for SSSJ and PQ.
func AblationSweep(ctx context.Context, cfg Config) (*Table, error) {
	t := &Table{
		ID:     "abl-sweep",
		Title:  "Striped-Sweep vs Forward-Sweep in SSSJ (claim of [4]: 2-5x)",
		Header: []string{"Set", "Striped cmps", "Forward cmps", "Speedup", "Striped ms", "Forward ms"},
	}
	err := cfg.forEach(func(e *Env) error {
		o := e.Options()
		striped, err := core.SSSJ(ctx, o, e.RoadsFile, e.HydroFile)
		if err != nil {
			return err
		}
		o = e.Options()
		o.UseForwardSweep = true
		forward, err := core.SSSJ(ctx, o, e.RoadsFile, e.HydroFile)
		if err != nil {
			return err
		}
		if striped.Pairs != forward.Pairs {
			return fmt.Errorf("pair counts differ: %d vs %d", striped.Pairs, forward.Pairs)
		}
		t.AddRow(e.Spec.Name,
			fmt.Sprintf("%d", striped.Sweep.Comparisons),
			fmt.Sprintf("%d", forward.Sweep.Comparisons),
			fmt.Sprintf("%.1fx", float64(forward.Sweep.Comparisons)/float64(max64(1, striped.Sweep.Comparisons))),
			ms(striped.HostCPU), ms(forward.HostCPU))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// AblationSTBufferPool sweeps ST's buffer pool size, reproducing the
// Table 4 transition: pools that hold both trees give near-optimal
// page requests; small pools cause rereads.
func AblationSTBufferPool(ctx context.Context, cfg Config, set string) (*Table, error) {
	env, err := prepareOne(cfg, set)
	if err != nil {
		return nil, err
	}
	lower := int64(env.RoadsTree.NumNodes() + env.HydroTree.NumNodes())
	t := &Table{
		ID:     "abl-pool",
		Title:  fmt.Sprintf("ST page requests vs buffer pool size on %s (lower bound %d)", set, lower),
		Header: []string{"Pool pages", "Requests", "Avg/node", "Hits", "Logical"},
	}
	treeBytes := (int(lower)) * env.Store.PageSize()
	for _, frac := range []float64{0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0} {
		poolBytes := int(float64(treeBytes) * frac)
		if poolBytes < env.Store.PageSize() {
			poolBytes = env.Store.PageSize()
		}
		o := env.Options()
		o.BufferPoolBytes = poolBytes
		res, err := core.ST(ctx, o, env.RoadsTree, env.HydroTree)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", poolBytes/env.Store.PageSize()),
			fmt.Sprintf("%d", res.PageRequests),
			fmt.Sprintf("%.2f", float64(res.PageRequests)/float64(lower)),
			fmt.Sprintf("%d", res.LogicalRequests-res.PageRequests),
			fmt.Sprintf("%d", res.LogicalRequests))
	}
	t.AddNote("pool >= both trees -> requests <= lower bound (NJ/NY rows of Table 4)")
	return t, nil
}

// AblationPacking compares the paper's 75%-fill/20%-slack packing with
// 100% packing, following the DeWitt et al. recommendation quoted in
// Section 3.3: full packing causes overlap and more index I/O for
// queries and joins.
func AblationPacking(ctx context.Context, cfg Config, set string) (*Table, error) {
	spec, err := specOf(cfg, set)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "abl-pack",
		Title:  fmt.Sprintf("R-tree packing policy on %s: 75%%+20%% slack vs full", set),
		Header: []string{"Policy", "Leaves", "Packing", "ST requests", "ST pairs"},
	}
	for _, full := range []bool{false, true} {
		store := iosim.NewStore(iosim.DefaultPageSize)
		roads, hydro := cfg.Tiger.Generate(spec)
		env := &Env{Spec: spec, Cfg: cfg, Store: store}
		var err error
		if env.RoadsFile, err = writeRecords(store, roads); err != nil {
			return nil, err
		}
		if env.HydroFile, err = writeRecords(store, hydro); err != nil {
			return nil, err
		}
		opts := rtree.DefaultBuildOptions()
		opts.PackFull = full
		if env.RoadsTree, err = rtree.Build(store, env.RoadsFile, spec.Region, opts); err != nil {
			return nil, err
		}
		if env.HydroTree, err = rtree.Build(store, env.HydroFile, spec.Region, opts); err != nil {
			return nil, err
		}
		o := env.Options()
		res, err := core.ST(ctx, o, env.RoadsTree, env.HydroTree)
		if err != nil {
			return nil, err
		}
		name := "75%+20%"
		if full {
			name = "100%"
		}
		t.AddRow(name,
			fmt.Sprintf("%d", env.RoadsTree.NumLeaves()+env.HydroTree.NumLeaves()),
			fmt.Sprintf("%.0f%%", 100*(env.RoadsTree.PackingRatio()+env.HydroTree.PackingRatio())/2),
			fmt.Sprintf("%d", res.PageRequests),
			fmt.Sprintf("%d", res.Pairs))
	}
	return t, nil
}

// AblationPBSMTiles reproduces the paper's tuning note (Section 3.2):
// 32x32 tiles (Patel and DeWitt's original) overflow partitions on
// clustered data, 128x128 does not.
func AblationPBSMTiles(ctx context.Context, cfg Config, set string) (*Table, error) {
	env, err := prepareOne(cfg, set)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "abl-tiles",
		Title:  fmt.Sprintf("PBSM tile resolution on %s", set),
		Header: []string{"Tiles", "Partitions", "MaxPart KB", "Mem KB", "Overflowed", "Swap pages", "Replication"},
	}
	for _, tiles := range []int{8, 32, 128} {
		o := env.Options()
		o.PBSMTilesPerAxis = tiles
		res, err := core.PBSM(ctx, o, env.RoadsFile, env.HydroFile)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%dx%d", tiles, tiles),
			fmt.Sprintf("%d", res.PBSM.Partitions),
			fmt.Sprintf("%d", res.PBSM.MaxPartitionBytes/1024),
			fmt.Sprintf("%d", o.MemoryBytes/1024),
			fmt.Sprintf("%d", res.PBSM.OverflowedParts),
			fmt.Sprintf("%d", res.PBSM.SwapPages),
			fmt.Sprintf("%.2f", res.PBSM.Replication))
	}
	t.AddNote("the paper moved from 32x32 to 128x128 after observing overfull partitions")
	return t, nil
}

// AblationPQLeafStreaming quantifies the Section 4 optimization of
// keeping leaf rectangles out of the priority queue: same output, much
// smaller queue and faster extraction.
func AblationPQLeafStreaming(ctx context.Context, cfg Config, set string) (*Table, error) {
	env, err := prepareOne(cfg, set)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "abl-leafstream",
		Title:  fmt.Sprintf("PQ leaf-streaming optimization on %s roads", set),
		Header: []string{"Variant", "Max queue+buffers KB", "Extract ms", "Records"},
	}
	for _, naive := range []bool{false, true} {
		env.Store.ResetCounters()
		var sc *rtree.SortedScanner
		if naive {
			sc = env.RoadsTree.NaiveScanner(rtree.StoreReader{Store: env.Store})
		} else {
			sc = env.RoadsTree.Scanner(rtree.StoreReader{Store: env.Store})
		}
		start := time.Now()
		var n int64
		for {
			_, ok, err := sc.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			n++
		}
		name := "leaf-streaming (paper)"
		if naive {
			name = "naive (all rects in queue)"
		}
		t.AddRow(name,
			fmt.Sprintf("%d", sc.MaxBytes()/1024),
			ms(time.Since(start)),
			fmt.Sprintf("%d", n))
	}
	return t, nil
}

// AblationLayout reproduces the Section 6.2 layout discussion: ST on a
// bulk-loaded (sibling-contiguous) layout performs significant
// sequential I/O; the same trees with pages shuffled — modelling an
// index degraded by updates — lose that advantage. PQ's random access
// pattern is layout-insensitive.
func AblationLayout(ctx context.Context, cfg Config, set string) (*Table, error) {
	env, err := prepareOne(cfg, set)
	if err != nil {
		return nil, err
	}
	shuffledRoads, err := rtree.ShuffleLayout(env.RoadsTree, 1)
	if err != nil {
		return nil, err
	}
	shuffledHydro, err := rtree.ShuffleLayout(env.HydroTree, 2)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "abl-layout",
		Title:  fmt.Sprintf("Index layout sensitivity on %s (observed I/O, Machine 3)", set),
		Header: []string{"Alg", "Layout", "SeqReads", "RandReads", "IO obs s"},
	}
	m := iosim.Machine3
	runST := func(label string, a, b *rtree.Tree) error {
		o := env.Options()
		res, err := core.ST(ctx, o, a, b)
		if err != nil {
			return err
		}
		t.AddRow("ST", label,
			fmt.Sprintf("%d", res.IO.SeqReads),
			fmt.Sprintf("%d", res.IO.RandReads),
			secs(res.ObservedIOTime(m)))
		return nil
	}
	runPQ := func(label string, a, b *rtree.Tree) error {
		o := env.Options()
		res, err := core.PQ(ctx, o, core.TreeInput(a), core.TreeInput(b))
		if err != nil {
			return err
		}
		t.AddRow("PQ", label,
			fmt.Sprintf("%d", res.IO.SeqReads),
			fmt.Sprintf("%d", res.IO.RandReads),
			secs(res.ObservedIOTime(m)))
		return nil
	}
	if err := runST("bulk-loaded", env.RoadsTree, env.HydroTree); err != nil {
		return nil, err
	}
	if err := runST("shuffled", shuffledRoads, shuffledHydro); err != nil {
		return nil, err
	}
	if err := runPQ("bulk-loaded", env.RoadsTree, env.HydroTree); err != nil {
		return nil, err
	}
	if err := runPQ("shuffled", shuffledRoads, shuffledHydro); err != nil {
		return nil, err
	}
	t.AddNote("ST loses its sequential runs on a shuffled layout; PQ is random either way (§6.2)")
	return t, nil
}

// helpers

func writeRecords(store *iosim.Store, recs []geom.Record) (*iosim.File, error) {
	return stream.WriteAll(store, stream.Records, recs)
}

func prepareOne(cfg Config, set string) (*Env, error) {
	spec, err := specOf(cfg, set)
	if err != nil {
		return nil, err
	}
	return Prepare(cfg, spec)
}

func specOf(cfg Config, set string) (tiger.Spec, error) {
	return tiger.SpecByName(set)
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
