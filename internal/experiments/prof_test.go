package experiments

import (
	"context"
	"testing"

	"unijoin/internal/core"
	"unijoin/internal/tiger"
)

// BenchmarkProfSSSJ isolates a single SSSJ join on DISK1 for
// profiling the sort-and-sweep hot path (`-cpuprofile`).
func BenchmarkProfSSSJ(b *testing.B) {
	cfg := Config{Tiger: tiger.Config{Scale: 0.002, Seed: 1997, Clusters: 40}}
	env, err := Prepare(cfg, tiger.Disk1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := env.Options()
		if _, err := core.SSSJ(context.Background(), o, env.RoadsFile, env.HydroFile); err != nil {
			b.Fatal(err)
		}
	}
}
