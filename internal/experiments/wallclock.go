package experiments

import (
	"context"
	"fmt"
	"runtime"

	"unijoin/internal/datagen"
	"unijoin/internal/geom"
	"unijoin/internal/parallel"
)

// wallclockRepeats is how many times each configuration is run; the
// fastest run is reported, the usual way to suppress scheduler noise
// in wall-clock microbenchmarks.
const wallclockRepeats = 3

// wallclockWorkloads builds the in-memory record sets the wall-clock
// experiment joins, sized by the configured scale: at sjbench's
// default 0.01 the uniform workload is the 100k-record set the
// benchmark trajectory tracks, and the TIGER-like workload matches the
// clustered shape of the paper's data.
func wallclockWorkloads(cfg Config) []struct {
	Name     string
	Universe geom.Rect
	A, B     []geom.Record
} {
	n := int(10_000_000 * cfg.Tiger.Scale)
	if n < 2000 {
		n = 2000
	}
	u := geom.NewRect(0, 0, 100_000, 100_000)
	terr := datagen.NewTerrain(cfg.Tiger.Seed, u, cfg.Tiger.Clusters)
	return []struct {
		Name     string
		Universe geom.Rect
		A, B     []geom.Record
	}{
		{
			Name:     "uniform",
			Universe: u,
			A:        datagen.Uniform(cfg.Tiger.Seed, n, u, 40),
			B:        datagen.Uniform(cfg.Tiger.Seed+1, n, u, 40),
		},
		{
			Name:     "tiger-like",
			Universe: u,
			A:        datagen.Roads(terr, cfg.Tiger.Seed+2, n, datagen.RoadParams{}),
			B:        datagen.Hydro(terr, cfg.Tiger.Seed+3, n*3/5, datagen.HydroParams{}),
		},
	}
}

// bestOf runs one join configuration wallclockRepeats times and keeps
// the fastest report, the same selection policy for the serial
// baseline and every parallel row.
func bestOf(ctx context.Context, join func(ctx context.Context, a, b []geom.Record, o parallel.Options) (parallel.Report, error),
	a, b []geom.Record, o parallel.Options) (parallel.Report, error) {
	var best parallel.Report
	for i := 0; i < wallclockRepeats; i++ {
		rep, err := join(ctx, a, b, o)
		if err != nil {
			return parallel.Report{}, err
		}
		if i == 0 || rep.Wall < best.Wall {
			best = rep
		}
	}
	return best, nil
}

// Wallclock measures the parallel in-memory engine in real time — the
// benchmark path that is not simulated: a serial sort-and-sweep
// baseline, then the partition-parallel engine at 1, 2, 4, ...
// workers up to maxWorkers, on a uniform and a TIGER-like workload.
// Speedups are relative to the serial baseline of the same workload;
// pair counts are cross-checked against it.
func Wallclock(ctx context.Context, cfg Config, maxWorkers int) (*Table, error) {
	if maxWorkers < 1 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}
	t := &Table{
		ID: "wallclock",
		Title: fmt.Sprintf("Parallel in-memory engine, wall-clock (GOMAXPROCS=%d)",
			runtime.GOMAXPROCS(0)),
		Header: []string{"Workload", "Records", "Mode", "Workers", "Parts",
			"Wall ms", "Part ms", "Sweep ms", "Pairs", "Repl",
			"Local frac", "NoTest frac", "Speedup"},
	}
	for _, wl := range wallclockWorkloads(cfg) {
		o := parallel.Options{Universe: wl.Universe, Window: cfg.Window}
		serial, err := bestOf(ctx, parallel.Serial, wl.A, wl.B, o)
		if err != nil {
			return nil, err
		}
		recs := fmt.Sprintf("%d+%d", len(wl.A), len(wl.B))
		t.AddRow(wl.Name, recs, "serial", "1", "1",
			ms(serial.Wall), ms(serial.PartitionWall), ms(serial.SweepWall),
			fmt.Sprintf("%d", serial.Pairs), "1.000",
			fmt.Sprintf("%.3f", serial.LocalFraction()),
			fmt.Sprintf("%.3f", serial.NoTestFraction()),
			"1.00")
		for _, workers := range workerLadder(maxWorkers) {
			o.Workers = workers
			rep, err := bestOf(ctx, parallel.Join, wl.A, wl.B, o)
			if err != nil {
				return nil, err
			}
			if rep.Pairs != serial.Pairs {
				return nil, fmt.Errorf("experiments: wallclock %s: parallel %d pairs, serial %d",
					wl.Name, rep.Pairs, serial.Pairs)
			}
			t.AddRow(wl.Name, recs, "parallel",
				fmt.Sprintf("%d", rep.Workers),
				fmt.Sprintf("%d", rep.Partitions),
				ms(rep.Wall), ms(rep.PartitionWall), ms(rep.SweepWall),
				fmt.Sprintf("%d", rep.Pairs),
				fmt.Sprintf("%.3f", rep.Replication),
				fmt.Sprintf("%.3f", rep.LocalFraction()),
				fmt.Sprintf("%.3f", rep.NoTestFraction()),
				fmt.Sprintf("%.2f", rep.Speedup(serial)))
		}
	}
	t.AddNote("best of %d runs; speedup is serial wall / parallel wall on this host", wallclockRepeats)
	t.AddNote("Part ms is the chunked parallel distribution prefix (filter + two-layer classify)")
	t.AddNote("Local/NoTest frac: stripe-local records and pairs emitted without the reference-point test")
	t.AddNote("pair counts cross-checked against the serial sweep on every row")
	return t, nil
}

// workerLadder returns the worker counts to measure: powers of two up
// to max, always ending at max itself.
func workerLadder(max int) []int {
	var out []int
	for w := 1; w < max; w *= 2 {
		out = append(out, w)
	}
	return append(out, max)
}
