package experiments

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http/httptest"
	"time"

	"unijoin"
	"unijoin/client"
	"unijoin/internal/datagen"
	"unijoin/internal/server"
	"unijoin/internal/shard"
)

// TransportModes are the stream encodings the transport experiment
// compares: the default NDJSON text protocol and the negotiated
// internal/wire binary framing.
var TransportModes = []string{"ndjson", "binary"}

// transportRepeats is the best-of count per measured cell, the same
// noise-suppression policy as the wall-clock experiment.
const transportRepeats = 3

// transportShards is the fleet width of the routed path: a router
// fronting this many striped sjserved processes.
const transportShards = 3

// transportTiers are the three pair-volume tiers. Record extent is
// fixed, so tripling the record counts grows the output roughly 9x
// per tier — the stream volume is the variable under test, not the
// join itself.
var transportTiers = []struct {
	Name        string
	Left, Right int
}{
	{"small", 2_000, 1_500},
	{"medium", 6_000, 4_500},
	{"large", 18_000, 13_000},
}

// transportUniverse matches the shard test fixtures: a 1000x1000
// universe with extent-25 uniform records yields a dense join.
var transportUniverse = unijoin.NewRect(0, 0, 1000, 1000)

// transportCatalog loads the given slices of both relations into a
// fresh indexed catalog.
func transportCatalog(iv *shard.Interval, a, b []unijoin.Record) (*unijoin.Catalog, error) {
	ws := unijoin.NewWorkspace()
	ws.SetUniverse(transportUniverse)
	cat := unijoin.NewCatalogOn(ws)
	for _, rel := range []struct {
		name string
		recs []unijoin.Record
	}{{"a", a}, {"b", b}} {
		recs := rel.recs
		if iv != nil {
			recs = iv.Slice(recs)
		}
		if _, err := cat.Load(rel.name, recs, true); err != nil {
			return nil, err
		}
	}
	return cat, nil
}

// transportServers boots the two serving topologies for one tier: a
// single direct sjserved and a router fronting transportShards striped
// shards, all in-process. The returned stop function tears every
// listener down.
func transportServers(a, b []unijoin.Record) (direct, routed string, stop func(), err error) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	var servers []*httptest.Server
	stop = func() {
		for _, ts := range servers {
			ts.Close()
		}
	}

	cat, err := transportCatalog(nil, a, b)
	if err != nil {
		return "", "", stop, err
	}
	ds := httptest.NewServer(server.New(server.Config{Catalog: cat, Logger: logger}).Handler())
	servers = append(servers, ds)

	plan := shard.NewPlan(transportUniverse, transportShards, a, b)
	urls := make([]string, plan.Shards())
	for i := range urls {
		iv := plan.Interval(i)
		scat, cerr := transportCatalog(&iv, a, b)
		if cerr != nil {
			return "", "", stop, cerr
		}
		ss := httptest.NewServer(server.New(server.Config{Catalog: scat, Logger: logger, Stripe: &iv}).Handler())
		servers = append(servers, ss)
		urls[i] = ss.URL
	}
	router, err := shard.NewRouter(urls, nil)
	if err != nil {
		return "", "", stop, err
	}
	fs := httptest.NewServer(shard.NewService(shard.ServiceConfig{Router: router, Logger: logger}).Handler())
	servers = append(servers, fs)
	return ds.URL, fs.URL, stop, nil
}

// transportJoin streams one full join through cl and returns the pair
// count and the client-observed wall time — connection, decode, and
// callback included, which is the end-to-end latency a caller sees.
func transportJoin(ctx context.Context, cl *client.Client) (int64, time.Duration, error) {
	start := time.Now()
	var streamed int64
	sum, err := cl.Join(ctx, client.JoinRequest{Left: "a", Right: "b", Algorithm: "PQ"},
		func(uint32, uint32) { streamed++ })
	if err != nil {
		return 0, 0, err
	}
	if streamed != sum.Pairs {
		return 0, 0, fmt.Errorf("streamed %d pairs, summary says %d", streamed, sum.Pairs)
	}
	return sum.Pairs, time.Since(start), nil
}

// bestTransportRun keeps the fastest of transportRepeats full joins.
func bestTransportRun(ctx context.Context, cl *client.Client) (int64, time.Duration, error) {
	var pairs int64
	var best time.Duration
	for i := 0; i < transportRepeats; i++ {
		p, d, err := transportJoin(ctx, cl)
		if err != nil {
			return 0, 0, err
		}
		if i == 0 || d < best {
			best = d
		}
		pairs = p
	}
	return pairs, best, nil
}

// Transport measures end-to-end join latency under both stream
// encodings, against a direct server and through a router relay, at
// three pair-volume tiers. Pair counts are cross-checked across every
// cell of a tier, so the table doubles as a transport-parity check.
func Transport(ctx context.Context, cfg Config) (*Table, error) {
	modes := cfg.Transports
	if len(modes) == 0 {
		modes = TransportModes
	}
	t := &Table{
		ID: "transport",
		Title: fmt.Sprintf("Stream transport latency, direct vs %d-shard router (best of %d)",
			transportShards, transportRepeats),
		Header: []string{"Tier", "Records", "Pairs", "Transport",
			"Direct ms", "Router ms", "Router/Direct"},
	}
	for _, tier := range transportTiers {
		a := datagen.Uniform(cfg.Tiger.Seed, tier.Left, transportUniverse, 25)
		b := datagen.Uniform(cfg.Tiger.Seed+1, tier.Right, transportUniverse, 25)
		directURL, routedURL, stop, err := transportServers(a, b)
		if err != nil {
			stop()
			return nil, err
		}

		var wantPairs int64 = -1
		for _, mode := range modes {
			newClient := func(url string) *client.Client {
				cl := client.New(url, nil)
				cl.PreferBinary = mode == "binary"
				return cl
			}
			directPairs, directTime, err := bestTransportRun(ctx, newClient(directURL))
			if err != nil {
				stop()
				return nil, fmt.Errorf("transport %s/%s direct: %w", tier.Name, mode, err)
			}
			routedPairs, routedTime, err := bestTransportRun(ctx, newClient(routedURL))
			if err != nil {
				stop()
				return nil, fmt.Errorf("transport %s/%s routed: %w", tier.Name, mode, err)
			}
			if directPairs != routedPairs {
				stop()
				return nil, fmt.Errorf("transport %s/%s: direct %d pairs, routed %d",
					tier.Name, mode, directPairs, routedPairs)
			}
			if wantPairs >= 0 && directPairs != wantPairs {
				stop()
				return nil, fmt.Errorf("transport %s: %s streamed %d pairs, previous mode %d",
					tier.Name, mode, directPairs, wantPairs)
			}
			wantPairs = directPairs
			t.AddRow(tier.Name,
				fmt.Sprintf("%d+%d", tier.Left, tier.Right),
				fmt.Sprintf("%d", directPairs),
				mode,
				ms(directTime),
				ms(routedTime),
				fmt.Sprintf("%.2f", float64(routedTime)/float64(directTime)))
		}
		stop()
	}
	t.AddNote("latency is client-observed wall time for a full PQ join stream, connection and decode included")
	t.AddNote("pair counts cross-checked across transports and topologies on every tier")
	return t, nil
}
