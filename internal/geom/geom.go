// Package geom provides the planar geometry primitives used throughout
// unijoin: points, axis-parallel rectangles (MBRs — minimal bounding
// rectangles), the 20-byte on-disk record format from the paper, and the
// Hilbert space-filling curve used for R-tree bulk loading.
//
// The paper (Arge et al., EDBT 2000, Section 5.3) stores each MBR as a
// 20-byte record: four 4-byte corner coordinates plus a 4-byte object ID.
// This package keeps that exact layout so simulated data, index, and
// output sizes line up with Table 2 of the paper.
package geom

import (
	"fmt"
	"math"
)

// Coord is the coordinate type used for all geometry. The paper uses
// 4-byte coordinates; float32 matches the 16-bytes-per-rectangle layout.
type Coord = float32

// Point is a location in the plane.
type Point struct {
	X, Y Coord
}

// Rect is a closed, axis-parallel rectangle [XLo,XHi] x [YLo,YHi].
// A Rect is valid when XLo <= XHi and YLo <= YHi; degenerate (zero
// width or height) rectangles are valid and represent points/segments.
type Rect struct {
	XLo, YLo, XHi, YHi Coord
}

// NewRect returns the rectangle with the given corners, swapping
// coordinates as needed so the result is valid.
func NewRect(x1, y1, x2, y2 Coord) Rect {
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return Rect{XLo: x1, YLo: y1, XHi: x2, YHi: y2}
}

// RectFromPoints returns the MBR of two points.
func RectFromPoints(p, q Point) Rect {
	return NewRect(p.X, p.Y, q.X, q.Y)
}

// Valid reports whether r is a well-formed rectangle (lo <= hi on both
// axes). NaN coordinates make a rectangle invalid.
func (r Rect) Valid() bool {
	return r.XLo <= r.XHi && r.YLo <= r.YHi
}

// Intersects reports whether r and s share at least one point.
// Touching edges count as intersecting, matching the filter-step
// semantics of the paper (candidate pairs are verified exactly in the
// refinement step, so the filter must not miss boundary contacts).
func (r Rect) Intersects(s Rect) bool {
	return r.XLo <= s.XHi && s.XLo <= r.XHi &&
		r.YLo <= s.YHi && s.YLo <= r.YHi
}

// IntersectsX reports whether the x-projections of r and s overlap.
// The plane-sweep kernels use this after the sweep line has already
// established y-overlap.
func (r Rect) IntersectsX(s Rect) bool {
	return r.XLo <= s.XHi && s.XLo <= r.XHi
}

// Contains reports whether r fully contains s.
func (r Rect) Contains(s Rect) bool {
	return r.XLo <= s.XLo && s.XHi <= r.XHi &&
		r.YLo <= s.YLo && s.YHi <= r.YHi
}

// ContainsPoint reports whether the point p lies in r (boundary
// inclusive).
func (r Rect) ContainsPoint(p Point) bool {
	return r.XLo <= p.X && p.X <= r.XHi && r.YLo <= p.Y && p.Y <= r.YHi
}

// Intersection returns the common region of r and s. The boolean is
// false when the rectangles are disjoint, in which case the returned
// rectangle is the zero value.
func (r Rect) Intersection(s Rect) (Rect, bool) {
	out := Rect{
		XLo: maxc(r.XLo, s.XLo),
		YLo: maxc(r.YLo, s.YLo),
		XHi: minc(r.XHi, s.XHi),
		YHi: minc(r.YHi, s.YHi),
	}
	if !out.Valid() {
		return Rect{}, false
	}
	return out, true
}

// Union returns the MBR of r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		XLo: minc(r.XLo, s.XLo),
		YLo: minc(r.YLo, s.YLo),
		XHi: maxc(r.XHi, s.XHi),
		YHi: maxc(r.YHi, s.YHi),
	}
}

// Area returns the area of r in float64 to avoid float32 overflow on
// large universes.
func (r Rect) Area() float64 {
	return float64(r.XHi-r.XLo) * float64(r.YHi-r.YLo)
}

// Width returns the x extent of r.
func (r Rect) Width() Coord { return r.XHi - r.XLo }

// Height returns the y extent of r.
func (r Rect) Height() Coord { return r.YHi - r.YLo }

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{X: r.XLo + (r.XHi-r.XLo)/2, Y: r.YLo + (r.YHi-r.YLo)/2}
}

// Margin returns half the perimeter of r (the R*-tree margin measure).
func (r Rect) Margin() float64 {
	return float64(r.XHi-r.XLo) + float64(r.YHi-r.YLo)
}

// EnlargementArea returns the area increase of r if grown to include s.
func (r Rect) EnlargementArea(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g]x[%g,%g]", r.XLo, r.XHi, r.YLo, r.YHi)
}

// EmptyRect returns the identity element for Union: a rectangle that is
// invalid on its own but yields s for EmptyRect().Union(s).
func EmptyRect() Rect {
	inf := Coord(math.Inf(1))
	return Rect{XLo: inf, YLo: inf, XHi: -inf, YHi: -inf}
}

// UnionAll returns the MBR of all rectangles in rs, or EmptyRect() when
// rs is empty.
func UnionAll(rs []Rect) Rect {
	u := EmptyRect()
	for _, r := range rs {
		u = u.Union(r)
	}
	return u
}

func minc(a, b Coord) Coord {
	if a < b {
		return a
	}
	return b
}

func maxc(a, b Coord) Coord {
	if a > b {
		return a
	}
	return b
}
