package geom

import (
	"encoding/binary"
	"fmt"
	"math"
)

// ID identifies a spatial object within one relation. IDs are assigned
// by the data generator and are unique per relation, not globally.
type ID = uint32

// RecordSize is the on-disk size of one MBR record: four float32
// coordinates (16 bytes) plus a 4-byte ID, exactly as in Section 5.3 of
// the paper ("Each MBR occupies 20 bytes").
const RecordSize = 20

// PairSize is the on-disk size of one join output item: "each output
// item is a pair of IDs corresponding to overlapping MBRs" (8 bytes).
const PairSize = 8

// Record is one spatial object in MBR approximation: the bounding
// rectangle together with the object's ID.
type Record struct {
	Rect Rect
	ID   ID
	// Local is the two-layer partitioning tag of the parallel engine:
	// set on a partition's private copy of a record whose x-interval
	// lies entirely inside that partition's stripe. A pair with a
	// Local member can be generated in exactly one stripe, so the
	// sweep emits it without the reference-point ownership test. The
	// tag is transient, in-memory state — it is not part of the
	// 20-byte on-disk format and does not round-trip through
	// EncodeRecord/DecodeRecord.
	Local bool
}

// Pair is one join result: the IDs of two intersecting MBRs, left from
// relation R and right from relation S.
type Pair struct {
	Left, Right ID
}

// EncodeRecord writes r into dst, which must be at least RecordSize
// bytes, and returns RecordSize. The layout is little-endian:
// xlo, ylo, xhi, yhi (float32 each), then the ID (uint32).
func EncodeRecord(dst []byte, r Record) int {
	_ = dst[RecordSize-1] // bounds check hint
	binary.LittleEndian.PutUint32(dst[0:], math.Float32bits(r.Rect.XLo))
	binary.LittleEndian.PutUint32(dst[4:], math.Float32bits(r.Rect.YLo))
	binary.LittleEndian.PutUint32(dst[8:], math.Float32bits(r.Rect.XHi))
	binary.LittleEndian.PutUint32(dst[12:], math.Float32bits(r.Rect.YHi))
	binary.LittleEndian.PutUint32(dst[16:], r.ID)
	return RecordSize
}

// DecodeRecord reads a Record from src, which must hold at least
// RecordSize bytes.
func DecodeRecord(src []byte) Record {
	_ = src[RecordSize-1]
	return Record{
		Rect: Rect{
			XLo: math.Float32frombits(binary.LittleEndian.Uint32(src[0:])),
			YLo: math.Float32frombits(binary.LittleEndian.Uint32(src[4:])),
			XHi: math.Float32frombits(binary.LittleEndian.Uint32(src[8:])),
			YHi: math.Float32frombits(binary.LittleEndian.Uint32(src[12:])),
		},
		ID: binary.LittleEndian.Uint32(src[16:]),
	}
}

// EncodePair writes p into dst (at least PairSize bytes) and returns
// PairSize.
func EncodePair(dst []byte, p Pair) int {
	_ = dst[PairSize-1]
	binary.LittleEndian.PutUint32(dst[0:], p.Left)
	binary.LittleEndian.PutUint32(dst[4:], p.Right)
	return PairSize
}

// DecodePair reads a Pair from src (at least PairSize bytes).
func DecodePair(src []byte) Pair {
	_ = src[PairSize-1]
	return Pair{
		Left:  binary.LittleEndian.Uint32(src[0:]),
		Right: binary.LittleEndian.Uint32(src[4:]),
	}
}

// String implements fmt.Stringer.
func (p Pair) String() string { return fmt.Sprintf("(%d,%d)", p.Left, p.Right) }

// ByLowerY orders records by the lower y-coordinate of their MBR, the
// sort order used by the plane sweep in SSSJ and by the PQ index
// adapter. Ties are broken by ID to make sorting deterministic.
func ByLowerY(a, b Record) int {
	switch {
	case a.Rect.YLo < b.Rect.YLo:
		return -1
	case a.Rect.YLo > b.Rect.YLo:
		return 1
	case a.ID < b.ID:
		return -1
	case a.ID > b.ID:
		return 1
	default:
		return 0
	}
}

// PairLess orders pairs lexicographically; used to canonicalize result
// sets in tests and to deduplicate output when needed.
func PairLess(a, b Pair) bool {
	if a.Left != b.Left {
		return a.Left < b.Left
	}
	return a.Right < b.Right
}
