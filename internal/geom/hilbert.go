package geom

// Hilbert space-filling curve. The paper bulk-loads its R-trees with
// the Hilbert heuristic of Kamel and Faloutsos [17]: data rectangles
// are sorted by the Hilbert value of their center point and packed into
// leaves in that order. The curve preserves locality, so consecutive
// leaves cover nearby regions and sibling nodes end up adjacent on
// disk — the layout property Section 6.2 of the paper shows matters so
// much for ST's sequential I/O.

// HilbertOrder is the resolution of the discrete grid onto which
// centers are snapped before computing curve positions: the curve
// visits 2^HilbertOrder x 2^HilbertOrder cells. 16 bits per axis gives
// a 32-bit curve index, plenty below the fanout*leaves scale used here.
const HilbertOrder = 16

// hilbertSide is the grid resolution per axis.
const hilbertSide = 1 << HilbertOrder

// HilbertD2XY converts a distance d along the Hilbert curve of order
// HilbertOrder into grid coordinates. Exported for tests and for
// generating curve-ordered workloads.
func HilbertD2XY(d uint64) (x, y uint32) {
	var rx, ry uint64
	t := d
	for s := uint64(1); s < hilbertSide; s *= 2 {
		rx = 1 & (t / 2)
		ry = 1 & (t ^ rx)
		x64, y64 := hilbertRot(s, uint64(x), uint64(y), rx, ry)
		x, y = uint32(x64), uint32(y64)
		x += uint32(s * rx)
		y += uint32(s * ry)
		t /= 4
	}
	return x, y
}

// HilbertXY2D converts grid coordinates (x, y), each in
// [0, 2^HilbertOrder), into the distance along the Hilbert curve.
func HilbertXY2D(x, y uint32) uint64 {
	var d uint64
	xx, yy := uint64(x), uint64(y)
	for s := uint64(hilbertSide / 2); s > 0; s /= 2 {
		var rx, ry uint64
		if xx&s > 0 {
			rx = 1
		}
		if yy&s > 0 {
			ry = 1
		}
		d += s * s * ((3 * rx) ^ ry)
		xx, yy = hilbertRot(s, xx, yy, rx, ry)
	}
	return d
}

// hilbertRot rotates/flips a quadrant appropriately.
func hilbertRot(n, x, y, rx, ry uint64) (uint64, uint64) {
	if ry == 0 {
		if rx == 1 {
			x = n - 1 - x
			y = n - 1 - y
		}
		x, y = y, x
	}
	return x, y
}

// HilbertValue maps a point inside universe to its position on the
// Hilbert curve laid over the universe. Points outside the universe are
// clamped to its boundary. A degenerate universe (zero width or height)
// maps everything onto one axis of the grid.
func HilbertValue(p Point, universe Rect) uint64 {
	gx := gridCoord(p.X, universe.XLo, universe.XHi)
	gy := gridCoord(p.Y, universe.YLo, universe.YHi)
	return HilbertXY2D(gx, gy)
}

// gridCoord maps v in [lo, hi] to [0, hilbertSide-1], clamping.
func gridCoord(v, lo, hi Coord) uint32 {
	if hi <= lo {
		return 0
	}
	f := float64(v-lo) / float64(hi-lo)
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	g := uint32(f * (hilbertSide - 1))
	return g
}
