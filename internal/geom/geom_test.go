package geom

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(5, 7, 1, 2)
	want := Rect{XLo: 1, YLo: 2, XHi: 5, YHi: 7}
	if r != want {
		t.Fatalf("NewRect = %v, want %v", r, want)
	}
	if !r.Valid() {
		t.Fatalf("normalized rect should be valid")
	}
}

func TestIntersectsBasic(t *testing.T) {
	a := NewRect(0, 0, 10, 10)
	cases := []struct {
		name string
		b    Rect
		want bool
	}{
		{"contained", NewRect(2, 2, 3, 3), true},
		{"overlap corner", NewRect(8, 8, 12, 12), true},
		{"touch edge", NewRect(10, 0, 20, 10), true},
		{"touch corner", NewRect(10, 10, 20, 20), true},
		{"disjoint right", NewRect(11, 0, 20, 10), false},
		{"disjoint above", NewRect(0, 11, 10, 20), false},
		{"identical", a, true},
		{"degenerate point inside", NewRect(5, 5, 5, 5), true},
		{"degenerate point outside", NewRect(15, 5, 15, 5), false},
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("%s: a.Intersects(%v) = %v, want %v", c.name, c.b, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("%s: symmetric Intersects mismatch", c.name)
		}
	}
}

func TestIntersectionAgreesWithIntersects(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float32) bool {
		a := NewRect(ax, ay, ax+abs32(aw), ay+abs32(ah))
		b := NewRect(bx, by, bx+abs32(bw), by+abs32(bh))
		_, ok := a.Intersection(b)
		return ok == a.Intersects(b)
	}
	cfg := &quick.Config{MaxCount: 2000, Values: smallFloatValues(8)}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectionIsContainedInBoth(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float32) bool {
		a := NewRect(ax, ay, ax+abs32(aw), ay+abs32(ah))
		b := NewRect(bx, by, bx+abs32(bw), by+abs32(bh))
		in, ok := a.Intersection(b)
		if !ok {
			return true
		}
		return a.Contains(in) && b.Contains(in)
	}
	cfg := &quick.Config{MaxCount: 2000, Values: smallFloatValues(8)}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestUnionContainsBoth(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float32) bool {
		a := NewRect(ax, ay, ax+abs32(aw), ay+abs32(ah))
		b := NewRect(bx, by, bx+abs32(bw), by+abs32(bh))
		u := a.Union(b)
		return u.Contains(a) && u.Contains(b)
	}
	cfg := &quick.Config{MaxCount: 2000, Values: smallFloatValues(8)}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyRectIsUnionIdentity(t *testing.T) {
	r := NewRect(3, 4, 5, 6)
	if got := EmptyRect().Union(r); got != r {
		t.Fatalf("EmptyRect().Union(%v) = %v", r, got)
	}
	if EmptyRect().Valid() {
		t.Fatal("EmptyRect should be invalid on its own")
	}
}

func TestUnionAll(t *testing.T) {
	rs := []Rect{NewRect(0, 0, 1, 1), NewRect(5, 5, 6, 6), NewRect(-2, 3, 0, 4)}
	got := UnionAll(rs)
	want := Rect{XLo: -2, YLo: 0, XHi: 6, YHi: 6}
	if got != want {
		t.Fatalf("UnionAll = %v, want %v", got, want)
	}
	if UnionAll(nil).Valid() {
		t.Fatal("UnionAll(nil) should be the empty rect")
	}
}

func TestAreaAndDims(t *testing.T) {
	r := NewRect(1, 2, 4, 7)
	if got := r.Area(); got != 15 {
		t.Fatalf("Area = %v, want 15", got)
	}
	if r.Width() != 3 || r.Height() != 5 {
		t.Fatalf("dims = %v x %v", r.Width(), r.Height())
	}
	if got := r.Margin(); got != 8 {
		t.Fatalf("Margin = %v, want 8", got)
	}
	c := r.Center()
	if c.X != 2.5 || c.Y != 4.5 {
		t.Fatalf("Center = %v", c)
	}
}

func TestEnlargementArea(t *testing.T) {
	r := NewRect(0, 0, 2, 2)
	if got := r.EnlargementArea(NewRect(1, 1, 2, 2)); got != 0 {
		t.Fatalf("contained enlargement = %v, want 0", got)
	}
	if got := r.EnlargementArea(NewRect(0, 0, 4, 2)); got != 4 {
		t.Fatalf("enlargement = %v, want 4", got)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	f := func(xlo, ylo, xhi, yhi float32, id uint32) bool {
		rec := Record{Rect: Rect{XLo: xlo, YLo: ylo, XHi: xhi, YHi: yhi}, ID: id}
		var buf [RecordSize]byte
		if n := EncodeRecord(buf[:], rec); n != RecordSize {
			return false
		}
		return DecodeRecord(buf[:]) == rec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestPairRoundTrip(t *testing.T) {
	f := func(l, r uint32) bool {
		p := Pair{Left: l, Right: r}
		var buf [PairSize]byte
		if n := EncodePair(buf[:], p); n != PairSize {
			return false
		}
		return DecodePair(buf[:]) == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestByLowerYOrdering(t *testing.T) {
	a := Record{Rect: NewRect(0, 1, 1, 2), ID: 7}
	b := Record{Rect: NewRect(0, 2, 1, 3), ID: 3}
	if ByLowerY(a, b) >= 0 {
		t.Fatal("a should sort before b")
	}
	if ByLowerY(b, a) <= 0 {
		t.Fatal("b should sort after a")
	}
	// Tie on y: broken by ID.
	c := Record{Rect: NewRect(5, 1, 6, 9), ID: 9}
	if ByLowerY(a, c) >= 0 {
		t.Fatal("tie should break by ID")
	}
	if ByLowerY(a, a) != 0 {
		t.Fatal("identical records should compare equal")
	}
}

func TestPairLess(t *testing.T) {
	if !PairLess(Pair{1, 5}, Pair{2, 0}) {
		t.Fatal("left component dominates")
	}
	if !PairLess(Pair{1, 5}, Pair{1, 6}) {
		t.Fatal("right component breaks ties")
	}
	if PairLess(Pair{1, 5}, Pair{1, 5}) {
		t.Fatal("equal pairs are not less")
	}
}

func TestHilbertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		x := uint32(rng.Intn(hilbertSide))
		y := uint32(rng.Intn(hilbertSide))
		d := HilbertXY2D(x, y)
		gx, gy := HilbertD2XY(d)
		if gx != x || gy != y {
			t.Fatalf("round trip (%d,%d) -> %d -> (%d,%d)", x, y, d, gx, gy)
		}
	}
}

func TestHilbertCurveIsContinuous(t *testing.T) {
	// Consecutive curve positions must be grid neighbors (Manhattan
	// distance 1) — the locality property bulk loading relies on.
	const n = 1 << 12 // check a prefix of the curve
	px, py := HilbertD2XY(0)
	for d := uint64(1); d < n; d++ {
		x, y := HilbertD2XY(d)
		dist := absDiff(x, px) + absDiff(y, py)
		if dist != 1 {
			t.Fatalf("curve jump at d=%d: (%d,%d) -> (%d,%d)", d, px, py, x, y)
		}
		px, py = x, y
	}
}

func TestHilbertValueClamps(t *testing.T) {
	u := NewRect(0, 0, 100, 100)
	inside := HilbertValue(Point{X: 50, Y: 50}, u)
	if inside == 0 && HilbertValue(Point{X: 99, Y: 99}, u) == 0 {
		t.Fatal("distinct interior points should not all collapse to 0")
	}
	// Outside points clamp instead of wrapping.
	lo := HilbertValue(Point{X: -10, Y: -10}, u)
	if lo != HilbertValue(Point{X: 0, Y: 0}, u) {
		t.Fatalf("clamped low corner mismatch: %d", lo)
	}
	hi := HilbertValue(Point{X: 200, Y: 200}, u)
	if hi != HilbertValue(Point{X: 100, Y: 100}, u) {
		t.Fatalf("clamped high corner mismatch: %d", hi)
	}
}

func TestHilbertValueDegenerateUniverse(t *testing.T) {
	u := NewRect(5, 0, 5, 100) // zero width
	v := HilbertValue(Point{X: 5, Y: 50}, u)
	_ = v                       // must not panic or divide by zero
	u2 := NewRect(0, 7, 100, 7) // zero height
	_ = HilbertValue(Point{X: 50, Y: 7}, u2)
}

func TestHilbertLocality(t *testing.T) {
	// Points close in the plane should on average be closer on the
	// curve than far-apart points. This is statistical, so use fixed
	// seed and generous margins.
	u := NewRect(0, 0, 1, 1)
	rng := rand.New(rand.NewSource(7))
	var nearSum, farSum float64
	const trials = 2000
	for i := 0; i < trials; i++ {
		x := rng.Float32()
		y := rng.Float32()
		base := HilbertValue(Point{X: x, Y: y}, u)
		near := HilbertValue(Point{X: x + 0.001, Y: y}, u)
		far := HilbertValue(Point{X: 1 - x, Y: 1 - y}, u)
		nearSum += absDiff64(base, near)
		farSum += absDiff64(base, far)
	}
	if nearSum >= farSum {
		t.Fatalf("expected locality: nearSum=%g farSum=%g", nearSum, farSum)
	}
}

// smallFloatValues generates n float32 arguments in a modest range so
// that float32 arithmetic in the properties stays exact enough.
func smallFloatValues(n int) func(args []reflect.Value, rng *rand.Rand) {
	return func(args []reflect.Value, rng *rand.Rand) {
		for i := 0; i < n; i++ {
			args[i] = reflect.ValueOf(float32(rng.Intn(2000)-1000) / 4)
		}
	}
}

func abs32(v float32) float32 {
	return float32(math.Abs(float64(v)))
}

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

func absDiff64(a, b uint64) float64 {
	if a > b {
		return float64(a - b)
	}
	return float64(b - a)
}
