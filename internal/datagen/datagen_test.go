package datagen

import (
	"math"
	"math/rand"
	"testing"

	"unijoin/internal/geom"
)

func region() geom.Rect { return geom.NewRect(0, 0, 1000, 500) }

func TestTerrainDeterministic(t *testing.T) {
	a := NewTerrain(7, region(), 20)
	b := NewTerrain(7, region(), 20)
	rngA := rand.New(rand.NewSource(1))
	rngB := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if a.Sample(rngA) != b.Sample(rngB) {
			t.Fatal("same seed must give same terrain samples")
		}
	}
}

func TestTerrainSamplesStayInRegion(t *testing.T) {
	terr := NewTerrain(3, region(), 10)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		p := terr.Sample(rng)
		if !region().ContainsPoint(p) {
			t.Fatalf("sample %v outside region", p)
		}
	}
}

func TestTerrainIsClustered(t *testing.T) {
	// Samples should concentrate: the occupied fraction of a coarse
	// grid must be well below uniform coverage.
	terr := NewTerrain(4, region(), 10)
	rng := rand.New(rand.NewSource(3))
	const cells = 32
	occupied := map[int]bool{}
	for i := 0; i < 3000; i++ {
		p := terr.Sample(rng)
		cx := int(float64(p.X) / 1000 * cells)
		cy := int(float64(p.Y) / 500 * cells)
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		occupied[cy*cells+cx] = true
	}
	frac := float64(len(occupied)) / (cells * cells)
	if frac > 0.8 {
		t.Fatalf("samples occupy %.0f%% of cells; not clustered", frac*100)
	}
}

func TestRoadsShape(t *testing.T) {
	terr := NewTerrain(5, region(), 15)
	recs := Roads(terr, 6, 2000, RoadParams{})
	if len(recs) != 2000 {
		t.Fatalf("count = %d", len(recs))
	}
	ids := map[uint32]bool{}
	var thin int
	minDim := math.Min(float64(region().Width()), float64(region().Height()))
	for _, r := range recs {
		if !r.Rect.Valid() {
			t.Fatalf("invalid rect %v", r.Rect)
		}
		if ids[r.ID] {
			t.Fatalf("duplicate id %d", r.ID)
		}
		ids[r.ID] = true
		w, h := float64(r.Rect.Width()), float64(r.Rect.Height())
		if w > minDim/2 || h > minDim/2 {
			t.Fatalf("road too large: %v", r.Rect)
		}
		if w < 1e-9*minDim || h < 1e-9*minDim {
			// Degenerate dims are fine (thin roads), nothing to check.
			continue
		}
		ratio := math.Max(w, h) / math.Min(w, h)
		if ratio > 3 {
			thin++
		}
	}
	// The majority of roads should be thin, axis-leaning segments.
	if thin < len(recs)/2 {
		t.Fatalf("only %d of %d roads are thin", thin, len(recs))
	}
}

func TestHydroShape(t *testing.T) {
	terr := NewTerrain(7, region(), 15)
	recs := Hydro(terr, 8, 1500, HydroParams{})
	if len(recs) != 1500 {
		t.Fatalf("count = %d", len(recs))
	}
	ids := map[uint32]bool{}
	for _, r := range recs {
		if !r.Rect.Valid() {
			t.Fatalf("invalid rect %v", r.Rect)
		}
		if ids[r.ID] {
			t.Fatalf("duplicate id %d", r.ID)
		}
		ids[r.ID] = true
	}
	// Hydro features are larger on average than road segments.
	roads := Roads(terr, 9, 1500, RoadParams{})
	avgArea := func(rs []geom.Record) float64 {
		var sum float64
		for _, r := range rs {
			sum += r.Rect.Area()
		}
		return sum / float64(len(rs))
	}
	if avgArea(recs) <= avgArea(roads) {
		t.Fatal("hydro features should be larger than road segments")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	terr := NewTerrain(10, region(), 12)
	a := Roads(terr, 11, 500, RoadParams{})
	b := Roads(NewTerrain(10, region(), 12), 11, 500, RoadParams{})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("roads not deterministic")
		}
	}
	ha := Hydro(terr, 12, 300, HydroParams{})
	hb := Hydro(NewTerrain(10, region(), 12), 12, 300, HydroParams{})
	for i := range ha {
		if ha[i] != hb[i] {
			t.Fatal("hydro not deterministic")
		}
	}
}

func TestRoadsAndHydroShareGeography(t *testing.T) {
	// Both classes sample the same terrain, so their occupied regions
	// must overlap substantially — the property that makes synthetic
	// joins produce output like Table 2.
	terr := NewTerrain(13, region(), 10)
	roads := Roads(terr, 14, 3000, RoadParams{})
	hydro := Hydro(terr, 15, 1000, HydroParams{})
	const cells = 16
	occR := map[int]bool{}
	occH := map[int]bool{}
	cellOf := func(r geom.Rect) int {
		cx := int(float64(r.XLo) / 1000 * cells)
		cy := int(float64(r.YLo) / 500 * cells)
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return cy*cells + cx
	}
	for _, r := range roads {
		occR[cellOf(r.Rect)] = true
	}
	for _, h := range hydro {
		occH[cellOf(h.Rect)] = true
	}
	shared := 0
	for c := range occH {
		if occR[c] {
			shared++
		}
	}
	if float64(shared) < 0.6*float64(len(occH)) {
		t.Fatalf("only %d of %d hydro cells shared with roads", shared, len(occH))
	}
}

func TestUniform(t *testing.T) {
	recs := Uniform(16, 1000, region(), 25)
	if len(recs) != 1000 {
		t.Fatalf("count = %d", len(recs))
	}
	for _, r := range recs {
		if r.Rect.XLo < 0 || r.Rect.YLo < 0 {
			t.Fatalf("out of region: %v", r.Rect)
		}
		if float64(r.Rect.Width()) > 25 || float64(r.Rect.Height()) > 25 {
			t.Fatalf("extent too large: %v", r.Rect)
		}
	}
	again := Uniform(16, 1000, region(), 25)
	for i := range recs {
		if recs[i] != again[i] {
			t.Fatal("uniform not deterministic")
		}
	}
}

func TestTerrainMinimumClusters(t *testing.T) {
	terr := NewTerrain(1, region(), 0) // clamped to 1
	rng := rand.New(rand.NewSource(1))
	p := terr.Sample(rng)
	if !region().ContainsPoint(p) {
		t.Fatal("degenerate terrain sample outside region")
	}
	if terr.Region() != region() {
		t.Fatal("region accessor broken")
	}
}
