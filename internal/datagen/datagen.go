// Package datagen synthesizes spatial data with the statistical shape
// of the TIGER/Line 97 extracts used in the paper (Section 5.3): "road"
// features — millions of short, thin, axis-leaning segments clustered
// around populated places — and "hydro" features — fewer, larger,
// spatially correlated rectangles from rivers and lakes.
//
// The real TIGER CD-ROMs are unavailable here, so the generators
// reproduce the properties the paper's conclusions rest on:
//
//   - heavy spatial clustering (cities/metro areas) shared between the
//     road and hydro relations, so joins produce output of the same
//     order as the road count, as in Table 2;
//   - small individual extents relative to the universe, so the
//     square-root rule holds and sweep structures stay tiny (Table 3);
//   - deterministic generation from a seed, so every experiment is
//     reproducible.
//
// A Terrain is a seeded mixture of population clusters over a region;
// both feature classes sample locations from the same terrain, which is
// what makes them spatially correlated.
package datagen

import (
	"math"
	"math/rand"

	"unijoin/internal/geom"
)

// Terrain is a population model: Gaussian clusters (cities) over a
// region plus a uniform rural background. Roads and hydro generated
// from the same terrain cluster in the same places.
type Terrain struct {
	region   geom.Rect
	centers  []geom.Point
	sigmas   []float64
	weights  []float64 // cumulative, normalized
	ruralPct float64   // fraction of samples drawn uniformly
}

// NewTerrain builds a terrain with the given number of clusters,
// deterministically from the seed.
func NewTerrain(seed int64, region geom.Rect, clusters int) *Terrain {
	if clusters < 1 {
		clusters = 1
	}
	rng := rand.New(rand.NewSource(seed))
	t := &Terrain{region: region, ruralPct: 0.15}
	raw := make([]float64, clusters)
	var sum float64
	minDim := math.Min(float64(region.Width()), float64(region.Height()))
	for i := 0; i < clusters; i++ {
		t.centers = append(t.centers, geom.Point{
			X: region.XLo + geom.Coord(rng.Float64())*region.Width(),
			Y: region.YLo + geom.Coord(rng.Float64())*region.Height(),
		})
		// City sizes follow a heavy-tailed (Zipf-like) weight profile.
		w := 1.0 / float64(i+1)
		raw[i] = w
		sum += w
		t.sigmas = append(t.sigmas, minDim*(0.01+0.04*rng.Float64()))
	}
	cum := 0.0
	for i := range raw {
		cum += raw[i] / sum
		t.weights = append(t.weights, cum)
	}
	return t
}

// Region returns the terrain's region.
func (t *Terrain) Region() geom.Rect { return t.region }

// Sample draws one location: usually near a cluster center, sometimes
// uniform rural background, always clamped inside the region.
func (t *Terrain) Sample(rng *rand.Rand) geom.Point {
	if rng.Float64() < t.ruralPct {
		return geom.Point{
			X: t.region.XLo + geom.Coord(rng.Float64())*t.region.Width(),
			Y: t.region.YLo + geom.Coord(rng.Float64())*t.region.Height(),
		}
	}
	u := rng.Float64()
	k := 0
	for k < len(t.weights)-1 && t.weights[k] < u {
		k++
	}
	p := geom.Point{
		X: t.centers[k].X + geom.Coord(rng.NormFloat64()*t.sigmas[k]),
		Y: t.centers[k].Y + geom.Coord(rng.NormFloat64()*t.sigmas[k]),
	}
	return t.clamp(p)
}

func (t *Terrain) clamp(p geom.Point) geom.Point {
	if p.X < t.region.XLo {
		p.X = t.region.XLo
	}
	if p.X > t.region.XHi {
		p.X = t.region.XHi
	}
	if p.Y < t.region.YLo {
		p.Y = t.region.YLo
	}
	if p.Y > t.region.YHi {
		p.Y = t.region.YHi
	}
	return p
}

// RoadParams tunes road generation. Zero values take defaults.
type RoadParams struct {
	// MeanLen is the mean segment length as a fraction of the smaller
	// region dimension. Default 0.004 (city blocks at country scale).
	MeanLen float64
	// Thickness is the cross-axis extent as a fraction of MeanLen.
	// Default 0.05: TIGER road MBRs are nearly degenerate.
	Thickness float64
}

// Roads generates n road-segment MBRs over the terrain: thin,
// axis-leaning rectangles (streets mostly run along the grid) whose
// density follows the population clusters. IDs are 0..n-1.
func Roads(t *Terrain, seed int64, n int, p RoadParams) []geom.Record {
	if p.MeanLen == 0 {
		p.MeanLen = 0.004
	}
	if p.Thickness == 0 {
		p.Thickness = 0.05
	}
	rng := rand.New(rand.NewSource(seed))
	minDim := math.Min(float64(t.region.Width()), float64(t.region.Height()))
	meanLen := p.MeanLen * minDim
	recs := make([]geom.Record, n)
	for i := 0; i < n; i++ {
		c := t.Sample(rng)
		length := rng.ExpFloat64() * meanLen
		if length > 20*meanLen {
			length = 20 * meanLen
		}
		thick := length * p.Thickness
		// Streets follow the grid with occasional diagonals.
		var w, h float64
		switch rng.Intn(5) {
		case 0, 1: // east-west
			w, h = length, thick
		case 2, 3: // north-south
			w, h = thick, length
		default: // diagonal-ish
			w = length * (0.3 + 0.7*rng.Float64())
			h = length * (0.3 + 0.7*rng.Float64())
		}
		recs[i] = geom.Record{
			Rect: geom.NewRect(c.X, c.Y, c.X+geom.Coord(w), c.Y+geom.Coord(h)),
			ID:   uint32(i),
		}
	}
	return recs
}

// HydroParams tunes hydro generation. Zero values take defaults.
type HydroParams struct {
	// RiverFrac is the fraction of features that are river segments
	// (elongated chains); the rest are lakes. Default 0.7.
	RiverFrac float64
	// MeanSize is the mean lake extent as a fraction of the smaller
	// region dimension. Default 0.008 (hydro features are larger than
	// road segments).
	MeanSize float64
}

// Hydro generates n hydrographic MBRs over the terrain: river segment
// chains near population (settlements grew on rivers) and scattered
// lakes. IDs are 0..n-1.
func Hydro(t *Terrain, seed int64, n int, p HydroParams) []geom.Record {
	if p.RiverFrac == 0 {
		p.RiverFrac = 0.7
	}
	if p.MeanSize == 0 {
		p.MeanSize = 0.008
	}
	rng := rand.New(rand.NewSource(seed))
	minDim := math.Min(float64(t.region.Width()), float64(t.region.Height()))
	mean := p.MeanSize * minDim
	recs := make([]geom.Record, 0, n)
	id := uint32(0)
	for len(recs) < n {
		c := t.Sample(rng)
		if rng.Float64() < p.RiverFrac {
			// A river: a random walk of elongated segment MBRs.
			segs := 3 + rng.Intn(10)
			x, y := float64(c.X), float64(c.Y)
			dirX := rng.NormFloat64()
			dirY := rng.NormFloat64()
			norm := math.Hypot(dirX, dirY)
			if norm == 0 {
				dirX, dirY, norm = 1, 0, 1
			}
			dirX, dirY = dirX/norm, dirY/norm
			for s := 0; s < segs && len(recs) < n; s++ {
				segLen := (0.5 + rng.Float64()) * mean * 2
				nx := x + dirX*segLen
				ny := y + dirY*segLen
				recs = append(recs, geom.Record{
					Rect: geom.NewRect(geom.Coord(x), geom.Coord(y), geom.Coord(nx), geom.Coord(ny)),
					ID:   id,
				})
				id++
				x, y = nx, ny
				// Meander.
				dirX += rng.NormFloat64() * 0.3
				dirY += rng.NormFloat64() * 0.3
				norm = math.Hypot(dirX, dirY)
				if norm == 0 {
					norm = 1
				}
				dirX, dirY = dirX/norm, dirY/norm
			}
		} else {
			// A lake: a squarish blob.
			w := rng.ExpFloat64() * mean
			h := w * (0.5 + rng.Float64())
			recs = append(recs, geom.Record{
				Rect: geom.NewRect(c.X, c.Y, c.X+geom.Coord(w), c.Y+geom.Coord(h)),
				ID:   id,
			})
			id++
		}
	}
	return recs
}

// Uniform generates n rectangles uniformly over region with extents up
// to maxExt, a synthetic baseline workload for tests and ablations.
func Uniform(seed int64, n int, region geom.Rect, maxExt float64) []geom.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]geom.Record, n)
	for i := range recs {
		x := float64(region.XLo) + rng.Float64()*float64(region.Width())
		y := float64(region.YLo) + rng.Float64()*float64(region.Height())
		recs[i] = geom.Record{
			Rect: geom.NewRect(geom.Coord(x), geom.Coord(y),
				geom.Coord(x+rng.Float64()*maxExt), geom.Coord(y+rng.Float64()*maxExt)),
			ID: uint32(i),
		}
	}
	return recs
}
