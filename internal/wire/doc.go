// Package wire is the binary pair-stream transport: a dependency-free,
// length-prefixed framing protocol for spatial-join results, built on
// the paper's 20-byte record format (Arge et al. §5.3, internal/geom).
// It replaces NDJSON on the serving hot path — negotiated per request
// via "Accept: application/x-sj-frames" — so a router can relay a
// shard's result stream to the client without decoding a single entry.
//
// # Frame layout
//
// Every frame is a 12-byte little-endian header followed by a payload:
//
//	offset  size  field
//	0       2     magic "SJ" (0x53 0x4A)
//	2       1     version (currently 1)
//	3       1     frame type (see below)
//	4       4     payload length N (uint32 LE, at most MaxPayload)
//	8       4     CRC-32 (IEEE) of the payload bytes
//	12      N     payload
//
// Frame types and their payloads:
//
//	type     value  payload
//	PAIRS    1      N/8 join pairs, each 8 bytes: left ID, right ID
//	                (uint32 LE each) — geom.EncodePair's layout
//	RECORDS  2      N/20 records, each 20 bytes: xlo, ylo, xhi, yhi
//	                (float32 LE each), then the ID (uint32 LE) —
//	                geom.EncodeRecord's layout, the paper's on-disk atom
//	SUMMARY  3      one JSON object: the stream's terminal summary
//	                (client.JoinSummary or client.WindowSummary)
//	ERROR    4      one JSON object: client.APIError
//	END      5      empty — the stream's clean-termination mark
//
// # Stream grammar
//
// A response stream is zero or more data frames (PAIRS for joins,
// RECORDS for window queries), then exactly one SUMMARY or ERROR
// frame, then END:
//
//	stream := data* (SUMMARY | ERROR) END
//
// A stream that stops before END was truncated (a crashed peer, a cut
// connection); Decoder reports that as ErrTruncated. An ERROR frame
// after data frames is the binary form of the NDJSON path's
// trailing-error contract: results already streamed are valid, the
// query did not finish.
//
// # Integrity: end-to-end, not hop-by-hop
//
// The CRC covers the payload and is verified where the payload is
// parsed — at the client for data frames, at each hop for SUMMARY and
// ERROR frames (the only frames a router must read to merge shard
// responses). A relaying router passes data frames through as opaque
// bytes, checksum and all (Scanner validates just the 12-byte header
// to find frame boundaries), so corruption anywhere between shard and
// client is still caught, and the router's per-pair cost is a copy.
//
// # Bounds
//
// Payloads are capped at MaxPayload (1 MiB). Decoder and Scanner
// reject larger length fields before allocating, so a corrupt or
// hostile length cannot balloon memory; both also reject unknown
// magic, versions, and frame types with typed errors that all match
// ErrCorrupt under errors.Is.
package wire
