package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"unijoin/internal/geom"
)

// ErrCorrupt is the class every malformed-stream error matches under
// errors.Is: bad magic, unsupported version, unknown frame type,
// oversized or misaligned payloads, checksum mismatches, truncation.
// The serving layers map it to the API's internal-error class
// (client.ErrInternal) — a corrupt stream is a broken peer, not a bad
// request.
var ErrCorrupt = errors.New("wire: corrupt frame stream")

// The concrete corruption errors, each matching ErrCorrupt.
var (
	ErrBadMagic   = fmt.Errorf("%w: bad magic", ErrCorrupt)
	ErrBadVersion = fmt.Errorf("%w: unsupported version", ErrCorrupt)
	ErrBadType    = fmt.Errorf("%w: unknown frame type", ErrCorrupt)
	ErrTooLarge   = fmt.Errorf("%w: payload length exceeds MaxPayload", ErrCorrupt)
	ErrChecksum   = fmt.Errorf("%w: payload checksum mismatch", ErrCorrupt)
	ErrTruncated  = fmt.Errorf("%w: truncated frame", ErrCorrupt)
	ErrMisaligned = fmt.Errorf("%w: payload size not a multiple of the entry size", ErrCorrupt)
)

// parseHeader validates the fixed header fields and returns the frame
// type and payload length. It never reads past HeaderSize bytes.
func parseHeader(hdr []byte) (Type, int, error) {
	if hdr[0] != Magic0 || hdr[1] != Magic1 {
		return 0, 0, ErrBadMagic
	}
	if hdr[OffVersion] != Version {
		return 0, 0, fmt.Errorf("%w: got %d, speak %d", ErrBadVersion, hdr[OffVersion], Version)
	}
	t := Type(hdr[OffType])
	if !t.valid() {
		return 0, 0, fmt.Errorf("%w: %d", ErrBadType, hdr[OffType])
	}
	n := binary.LittleEndian.Uint32(hdr[OffLen:])
	if n > MaxPayload {
		return 0, 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	return t, int(n), nil
}

// Frame is one decoded frame. Payload aliases the decoder's internal
// buffer and is valid only until the next call to Next.
type Frame struct {
	Type    Type
	Payload []byte
}

// Pairs appends the frame's packed join pairs to dst and returns the
// extended slice. The frame must be a PAIRS frame.
func (f Frame) Pairs(dst [][2]uint32) ([][2]uint32, error) {
	if f.Type != TypePairs {
		return dst, fmt.Errorf("%w: Pairs on a %s frame", ErrBadType, f.Type)
	}
	if len(f.Payload)%PairSize != 0 {
		return dst, fmt.Errorf("%w: %d bytes in a pairs frame", ErrMisaligned, len(f.Payload))
	}
	for off := 0; off < len(f.Payload); off += PairSize {
		dst = append(dst, [2]uint32{
			binary.LittleEndian.Uint32(f.Payload[off:]),
			binary.LittleEndian.Uint32(f.Payload[off+4:]),
		})
	}
	return dst, nil
}

// Records appends the frame's packed 20-byte records to dst and
// returns the extended slice. The frame must be a RECORDS frame.
func (f Frame) Records(dst []geom.Record) ([]geom.Record, error) {
	if f.Type != TypeRecords {
		return dst, fmt.Errorf("%w: Records on a %s frame", ErrBadType, f.Type)
	}
	if len(f.Payload)%RecordSize != 0 {
		return dst, fmt.Errorf("%w: %d bytes in a records frame", ErrMisaligned, len(f.Payload))
	}
	for off := 0; off < len(f.Payload); off += RecordSize {
		dst = append(dst, geom.DecodeRecord(f.Payload[off:]))
	}
	return dst, nil
}

// Decoder reads and fully validates a frame stream: header checks,
// payload bounds, and the CRC of every payload. It is the consuming
// end of the transport — clients decode through it; a relaying router
// uses Scanner instead and leaves payloads opaque.
type Decoder struct {
	r   io.Reader
	buf []byte
}

// NewDecoder returns a decoder reading from r.
func NewDecoder(r io.Reader) *Decoder { return &Decoder{r: r} }

// Next reads one frame. io.EOF is returned untouched at a clean frame
// boundary; a stream that stops mid-frame returns ErrTruncated. The
// returned frame's payload is valid only until the next call.
func (d *Decoder) Next() (Frame, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("%w: mid-header: %v", ErrTruncated, err)
	}
	t, n, err := parseHeader(hdr[:])
	if err != nil {
		return Frame{}, err
	}
	if cap(d.buf) < n {
		// n is already proven ≤ MaxPayload, so a hostile length field
		// cannot make this allocation balloon.
		d.buf = make([]byte, n)
	}
	d.buf = d.buf[:n]
	if _, err := io.ReadFull(d.r, d.buf); err != nil {
		return Frame{}, fmt.Errorf("%w: mid-payload: %v", ErrTruncated, err)
	}
	if got, want := crc32.ChecksumIEEE(d.buf), binary.LittleEndian.Uint32(hdr[OffCRC:]); got != want {
		return Frame{}, fmt.Errorf("%w: got %08x, header says %08x", ErrChecksum, got, want)
	}
	return Frame{Type: t, Payload: d.buf}, nil
}

// Scanner reads whole raw frames without touching their payloads: it
// validates only the 12-byte header (magic, version, type, length
// bound) to find frame boundaries, then hands back the frame's exact
// bytes, header included. This is the router's zero-decode relay path
// — the payload CRC passes through unverified and unmodified, so the
// client's end-to-end check still guards the whole journey while the
// router's per-pair cost is a memcpy.
type Scanner struct {
	r   io.Reader
	buf []byte
}

// NewScanner returns a scanner reading from r.
func NewScanner(r io.Reader) *Scanner { return &Scanner{r: r} }

// Next reads one raw frame. The returned bytes (header + payload) are
// valid only until the next call. io.EOF is returned at a clean frame
// boundary; mid-frame streams end with ErrTruncated.
func (s *Scanner) Next() (Type, []byte, error) {
	if cap(s.buf) < HeaderSize {
		s.buf = make([]byte, 0, 4096)
	}
	s.buf = s.buf[:HeaderSize]
	if _, err := io.ReadFull(s.r, s.buf); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: mid-header: %v", ErrTruncated, err)
	}
	t, n, err := parseHeader(s.buf)
	if err != nil {
		return 0, nil, err
	}
	if cap(s.buf) < HeaderSize+n {
		grown := make([]byte, HeaderSize+n)
		copy(grown, s.buf[:HeaderSize])
		s.buf = grown
	}
	s.buf = s.buf[:HeaderSize+n]
	if _, err := io.ReadFull(s.r, s.buf[HeaderSize:]); err != nil {
		return 0, nil, fmt.Errorf("%w: mid-payload: %v", ErrTruncated, err)
	}
	return t, s.buf, nil
}

// Verify checks a raw frame's payload CRC against its header — the
// spot check a router applies to the few frames it actually parses
// (SUMMARY, ERROR) while relaying everything else unread.
func Verify(raw []byte) error {
	if len(raw) < HeaderSize {
		return ErrTruncated
	}
	if got, want := crc32.ChecksumIEEE(raw[HeaderSize:]), binary.LittleEndian.Uint32(raw[OffCRC:]); got != want {
		return fmt.Errorf("%w: got %08x, header says %08x", ErrChecksum, got, want)
	}
	return nil
}
