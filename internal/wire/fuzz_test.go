package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzDecoder is the decoder's robustness harness: arbitrary bytes
// must never panic, never allocate past the MaxPayload bound, and
// either decode cleanly or fail with an error matching ErrCorrupt.
// The committed seed corpus (testdata/fuzz/FuzzDecoder) covers a valid
// stream, each corruption class, and boundary payload sizes; run
//
//	go test -fuzz FuzzDecoder ./internal/wire
//
// to explore further.
func FuzzDecoder(f *testing.F) {
	// A well-formed stream: pairs, summary, end.
	valid := AppendFrame(nil, TypePairs, []byte{1, 0, 0, 0, 2, 0, 0, 0})
	valid = AppendFrame(valid, TypeSummary, []byte(`{"pairs":1}`))
	valid = AppendFrame(valid, TypeEnd, nil)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{Magic0})                                              // mid-magic truncation
	f.Add(valid[:HeaderSize-1])                                        // mid-header truncation
	f.Add(valid[:HeaderSize+3])                                        // mid-payload truncation
	f.Add(append([]byte{'X'}, valid...))                               // leading garbage
	f.Add([]byte{Magic0, Magic1, 9, 1, 0, 0, 0, 0, 0, 0, 0, 0})        // bad version
	f.Add([]byte{Magic0, Magic1, Version, 77, 0, 0, 0, 0, 0, 0, 0, 0}) // bad type
	// Maximal length field: 0xFFFFFFFF — must be rejected, not allocated.
	f.Add([]byte{Magic0, Magic1, Version, 1, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(bytes.NewReader(data))
		var pairs [][2]uint32
		for i := 0; i < 1<<12; i++ { // frame-count bound, not a byte bound
			frame, err := dec.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("decoder error outside the ErrCorrupt class: %v", err)
				}
				return
			}
			if len(frame.Payload) > MaxPayload {
				t.Fatalf("decoder surfaced a %d-byte payload past MaxPayload", len(frame.Payload))
			}
			switch frame.Type {
			case TypePairs:
				if pairs, err = frame.Pairs(pairs[:0]); err != nil && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("Pairs error outside ErrCorrupt: %v", err)
				}
			case TypeRecords:
				if _, err := frame.Records(nil); err != nil && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("Records error outside ErrCorrupt: %v", err)
				}
			}
		}

		// The scanner must be exactly as robust, and what it accepts
		// must round-trip verbatim.
		sc := NewScanner(bytes.NewReader(data))
		for i := 0; i < 1<<12; i++ {
			_, raw, err := sc.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("scanner error outside the ErrCorrupt class: %v", err)
				}
				return
			}
			if len(raw) > HeaderSize+MaxPayload {
				t.Fatalf("scanner surfaced a %d-byte frame past the bound", len(raw))
			}
		}
	})
}
