package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"strings"
	"sync"

	"unijoin/internal/geom"
)

// Frame-format constants; see doc.go for the full layout.
const (
	// Magic0 and Magic1 open every frame ("SJ").
	Magic0 = 0x53
	Magic1 = 0x4A
	// Version is the protocol version this package speaks.
	Version = 1
	// HeaderSize is the fixed frame header length in bytes.
	HeaderSize = 12
	// Header field offsets: magic (2 bytes), version, type, payload
	// length (uint32 LE), payload CRC32 (uint32 LE). Indexing raw
	// header bytes goes through these so the layout has one
	// definition (the framealign analyzer enforces it).
	OffVersion = 2
	OffType    = 3
	OffLen     = 4
	OffCRC     = 8
	// MaxPayload caps one frame's payload. A decoder rejects larger
	// length fields before allocating anything.
	MaxPayload = 1 << 20
	// PairSize and RecordSize are the packed entry sizes inside PAIRS
	// and RECORDS payloads — the paper's on-disk atoms.
	PairSize   = geom.PairSize
	RecordSize = geom.RecordSize
)

// ContentType is the negotiated media type of a frame stream: a
// client sends it in Accept, a frame-speaking server echoes it in
// Content-Type (an NDJSON-only server ignores it, which is the
// fallback signal).
const ContentType = "application/x-sj-frames"

// Type identifies what a frame's payload carries.
type Type byte

// The frame types.
const (
	TypePairs   Type = 1 // packed 8-byte join pairs
	TypeRecords Type = 2 // packed 20-byte records
	TypeSummary Type = 3 // JSON terminal summary
	TypeError   Type = 4 // JSON client.APIError
	TypeEnd     Type = 5 // empty clean-termination mark
)

// String names a frame type, as used for metric labels.
func (t Type) String() string {
	switch t {
	case TypePairs:
		return "pairs"
	case TypeRecords:
		return "records"
	case TypeSummary:
		return "summary"
	case TypeError:
		return "error"
	case TypeEnd:
		return "end"
	default:
		return fmt.Sprintf("unknown(%d)", byte(t))
	}
}

// valid reports whether t is a known frame type.
func (t Type) valid() bool { return t >= TypePairs && t <= TypeEnd }

// Negotiates reports whether an HTTP request asked for the binary
// frame transport: its Accept header lists the frame media type.
// NDJSON stays the default for every request that doesn't.
func Negotiates(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), ContentType)
}

// IsFrameResponse reports whether a response's Content-Type says the
// body is a frame stream — how a negotiating client tells a
// frame-speaking server from an old NDJSON-only one that ignored the
// Accept header.
func IsFrameResponse(contentType string) bool {
	return strings.Contains(contentType, ContentType)
}

// PutHeader writes the 12-byte header for a frame of type t carrying
// payload into dst, which must be at least HeaderSize bytes.
func PutHeader(dst []byte, t Type, payload []byte) {
	_ = dst[HeaderSize-1]
	dst[0] = Magic0
	dst[1] = Magic1
	dst[OffVersion] = Version
	dst[OffType] = byte(t)
	binary.LittleEndian.PutUint32(dst[OffLen:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[OffCRC:], crc32.ChecksumIEEE(payload))
}

// AppendFrame appends one whole frame (header + payload) to dst and
// returns the extended slice.
func AppendFrame(dst []byte, t Type, payload []byte) []byte {
	var hdr [HeaderSize]byte
	PutHeader(hdr[:], t, payload)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// frameBuf is a poolable scratch buffer (a pointer type, so pool
// round-trips don't box a slice header on every Put).
type frameBuf struct{ b []byte }

// bufPool recycles encoder scratch buffers across streams, so a
// long-lived server's frame writing settles at zero allocations per
// frame.
var bufPool = sync.Pool{New: func() any { return &frameBuf{b: make([]byte, 0, 4096)} }}

// Encoder writes a frame stream to w. It is not safe for concurrent
// use; one encoder serves one response stream. Close returns its
// scratch buffer to a pool — an encoder must not be used after Close.
type Encoder struct {
	w  io.Writer
	fb *frameBuf
}

// NewEncoder returns an encoder writing frames to w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: w, fb: bufPool.Get().(*frameBuf)}
}

// Close releases the encoder's scratch buffer.
func (e *Encoder) Close() {
	if e.fb != nil {
		e.fb.b = e.fb.b[:0]
		bufPool.Put(e.fb)
		e.fb = nil
	}
}

// scratch returns the encoder's reset scratch buffer, re-acquiring one
// if the encoder was used after Close.
func (e *Encoder) scratch() []byte {
	if e.fb == nil {
		e.fb = bufPool.Get().(*frameBuf)
	}
	return e.fb.b[:0]
}

// writeFrame assembles header + payload in the scratch buffer and
// writes it with a single Write call, so a frame is never split
// across two writes (one flush per frame downstream).
func (e *Encoder) writeFrame(t Type, payload []byte) error {
	buf := AppendFrame(e.scratch(), t, payload)
	e.fb.b = buf
	_, err := e.w.Write(buf)
	return err
}

// WritePairs emits one PAIRS frame carrying the batch. Batches larger
// than MaxPayload/PairSize entries are split across frames.
func (e *Encoder) WritePairs(pairs [][2]uint32) error {
	const maxPer = MaxPayload / PairSize
	for len(pairs) > 0 {
		n := min(len(pairs), maxPer)
		buf := e.scratch()
		var hdr [HeaderSize]byte
		buf = append(buf, hdr[:]...) // reserve; filled after packing
		for _, p := range pairs[:n] {
			var cell [PairSize]byte
			geom.EncodePair(cell[:], geom.Pair{Left: p[0], Right: p[1]})
			buf = append(buf, cell[:]...)
		}
		PutHeader(buf[:HeaderSize], TypePairs, buf[HeaderSize:])
		e.fb.b = buf
		if _, err := e.w.Write(buf); err != nil {
			return err
		}
		pairs = pairs[n:]
	}
	return nil
}

// WriteRecords emits one RECORDS frame carrying the batch in the
// 20-byte on-disk layout, splitting oversized batches as WritePairs
// does.
func (e *Encoder) WriteRecords(recs []geom.Record) error {
	const maxPer = MaxPayload / RecordSize
	for len(recs) > 0 {
		n := min(len(recs), maxPer)
		buf := e.scratch()
		var hdr [HeaderSize]byte
		buf = append(buf, hdr[:]...)
		for _, rec := range recs[:n] {
			var cell [RecordSize]byte
			geom.EncodeRecord(cell[:], rec)
			buf = append(buf, cell[:]...)
		}
		PutHeader(buf[:HeaderSize], TypeRecords, buf[HeaderSize:])
		e.fb.b = buf
		if _, err := e.w.Write(buf); err != nil {
			return err
		}
		recs = recs[n:]
	}
	return nil
}

// WriteJSON emits one SUMMARY or ERROR frame whose payload is v
// marshaled as JSON.
func (e *Encoder) WriteJSON(t Type, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return e.writeFrame(t, payload)
}

// WriteEnd emits the END frame.
func (e *Encoder) WriteEnd() error { return e.writeFrame(TypeEnd, nil) }

// WriteRaw writes an already-framed byte sequence through unmodified —
// the router's relay path. The caller vouches that raw is one whole
// frame (Scanner.Next returns exactly that).
func (e *Encoder) WriteRaw(raw []byte) error {
	_, err := e.w.Write(raw)
	return err
}
