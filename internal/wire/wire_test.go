package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"unijoin/internal/geom"
)

// encodeStream writes a full stream (pairs, summary, end) and returns
// the raw bytes.
func encodeStream(t *testing.T, pairs [][2]uint32, summary any) []byte {
	t.Helper()
	var b bytes.Buffer
	enc := NewEncoder(&b)
	defer enc.Close()
	if err := enc.WritePairs(pairs); err != nil {
		t.Fatal(err)
	}
	if err := enc.WriteJSON(TypeSummary, summary); err != nil {
		t.Fatal(err)
	}
	if err := enc.WriteEnd(); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func TestPairsRoundTrip(t *testing.T) {
	pairs := [][2]uint32{{1, 2}, {3, 4}, {0xFFFFFFFF, 0}, {7, 7}}
	raw := encodeStream(t, pairs, map[string]int{"pairs": 4})

	dec := NewDecoder(bytes.NewReader(raw))
	f, err := dec.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != TypePairs {
		t.Fatalf("first frame type = %v, want pairs", f.Type)
	}
	got, err := f.Pairs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pairs) {
		t.Fatalf("decoded %d pairs, want %d", len(got), len(pairs))
	}
	for i := range pairs {
		if got[i] != pairs[i] {
			t.Fatalf("pair %d = %v, want %v", i, got[i], pairs[i])
		}
	}
	if f, err = dec.Next(); err != nil || f.Type != TypeSummary {
		t.Fatalf("second frame = %v, %v; want summary", f.Type, err)
	}
	if f, err = dec.Next(); err != nil || f.Type != TypeEnd {
		t.Fatalf("third frame = %v, %v; want end", f.Type, err)
	}
	if _, err = dec.Next(); err != io.EOF {
		t.Fatalf("after end: %v, want io.EOF", err)
	}
}

func TestRecordsRoundTrip(t *testing.T) {
	recs := []geom.Record{
		{Rect: geom.NewRect(1, 2, 3, 4), ID: 9},
		{Rect: geom.NewRect(-5, -6, -1, 0), ID: 0xFFFFFFFF},
	}
	var b bytes.Buffer
	enc := NewEncoder(&b)
	defer enc.Close()
	if err := enc.WriteRecords(recs); err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(&b)
	f, err := dec.Next()
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Records(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Rect != recs[i].Rect || got[i].ID != recs[i].ID {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

// TestLargeBatchSplits checks batches beyond MaxPayload split across
// frames without losing entries.
func TestLargeBatchSplits(t *testing.T) {
	n := MaxPayload/PairSize + 100
	pairs := make([][2]uint32, n)
	for i := range pairs {
		pairs[i] = [2]uint32{uint32(i), uint32(i * 2)}
	}
	var b bytes.Buffer
	enc := NewEncoder(&b)
	defer enc.Close()
	if err := enc.WritePairs(pairs); err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(&b)
	var got [][2]uint32
	frames := 0
	for {
		f, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		frames++
		if got, err = f.Pairs(got); err != nil {
			t.Fatal(err)
		}
	}
	if frames < 2 {
		t.Fatalf("oversized batch produced %d frames, want ≥ 2", frames)
	}
	if len(got) != n {
		t.Fatalf("decoded %d pairs, want %d", len(got), n)
	}
	for i := range got {
		if got[i] != pairs[i] {
			t.Fatalf("pair %d = %v, want %v", i, got[i], pairs[i])
		}
	}
}

// corrupt returns raw with one byte altered at off.
func corrupt(raw []byte, off int, b byte) []byte {
	out := append([]byte(nil), raw...)
	out[off] = b
	return out
}

func TestDecoderTypedErrors(t *testing.T) {
	raw := encodeStream(t, [][2]uint32{{1, 2}}, map[string]int{"n": 1})
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"bad magic", corrupt(raw, 0, 'X'), ErrBadMagic},
		{"bad version", corrupt(raw, 2, 99), ErrBadVersion},
		{"bad type", corrupt(raw, 3, 200), ErrBadType},
		{"zero type", corrupt(raw, 3, 0), ErrBadType},
		{"flipped payload", corrupt(raw, HeaderSize, raw[HeaderSize]^0xFF), ErrChecksum},
		{"flipped crc", corrupt(raw, 8, raw[8]^0xFF), ErrChecksum},
		{"mid header", raw[:HeaderSize-3], ErrTruncated},
		{"mid payload", raw[:HeaderSize+4], ErrTruncated},
	}
	// An oversized length field must be rejected before any allocation.
	big := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(big[4:], MaxPayload+1)
	cases = append(cases, struct {
		name string
		in   []byte
		want error
	}{"oversized length", big, ErrTooLarge})

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewDecoder(bytes.NewReader(tc.in)).Next()
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%v does not match ErrCorrupt", err)
			}
		})
	}
}

func TestMisalignedPayload(t *testing.T) {
	raw := AppendFrame(nil, TypePairs, []byte{1, 2, 3}) // 3 % 8 != 0
	dec := NewDecoder(bytes.NewReader(raw))
	f, err := dec.Next()
	if err != nil {
		t.Fatal(err) // framing itself is fine
	}
	if _, err := f.Pairs(nil); !errors.Is(err, ErrMisaligned) {
		t.Fatalf("got %v, want ErrMisaligned", err)
	}
}

// TestScannerRelaysBytesVerbatim is the zero-decode property at the
// package level: the scanner hands back the exact frame bytes —
// including a deliberately wrong CRC, which a decoding path would
// reject — so a relay built on it cannot be re-encoding.
func TestScannerRelaysBytesVerbatim(t *testing.T) {
	payload := []byte{1, 0, 0, 0, 2, 0, 0, 0}
	frame := AppendFrame(nil, TypePairs, payload)
	frame[8] ^= 0xA5 // break the CRC: decode would fail, relay must not care
	stream := append(append([]byte(nil), frame...), AppendFrame(nil, TypeEnd, nil)...)

	sc := NewScanner(bytes.NewReader(stream))
	typ, raw, err := sc.Next()
	if err != nil {
		t.Fatalf("scanner rejected a frame with a bad payload CRC: %v", err)
	}
	if typ != TypePairs {
		t.Fatalf("type = %v, want pairs", typ)
	}
	if !bytes.Equal(raw, frame) {
		t.Fatalf("scanner modified the frame:\n got %x\nwant %x", raw, frame)
	}
	if err := Verify(raw); !errors.Is(err, ErrChecksum) {
		t.Fatalf("Verify on the corrupt frame: %v, want ErrChecksum", err)
	}
	if typ, _, err = sc.Next(); err != nil || typ != TypeEnd {
		t.Fatalf("second frame = %v, %v; want end", typ, err)
	}
	if _, _, err = sc.Next(); err != io.EOF {
		t.Fatalf("after end: %v, want io.EOF", err)
	}

	// The decoder, by contrast, must reject the same stream.
	if _, err := NewDecoder(bytes.NewReader(stream)).Next(); !errors.Is(err, ErrChecksum) {
		t.Fatalf("decoder accepted a corrupt payload: %v", err)
	}
}

func TestNegotiation(t *testing.T) {
	if !IsFrameResponse(ContentType) || IsFrameResponse("application/x-ndjson") {
		t.Fatal("IsFrameResponse misclassifies")
	}
}

func BenchmarkWritePairs(b *testing.B) {
	pairs := make([][2]uint32, 1024)
	for i := range pairs {
		pairs[i] = [2]uint32{uint32(i), uint32(i + 1)}
	}
	enc := NewEncoder(io.Discard)
	defer enc.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.WritePairs(pairs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodePairs(b *testing.B) {
	pairs := make([][2]uint32, 1024)
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.WritePairs(pairs); err != nil {
		b.Fatal(err)
	}
	enc.Close()
	raw := buf.Bytes()
	dst := make([][2]uint32, 0, 1024)
	rd := bytes.NewReader(raw)
	dec := NewDecoder(rd)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(raw)
		f, err := dec.Next()
		if err != nil {
			b.Fatal(err)
		}
		if dst, err = f.Pairs(dst[:0]); err != nil {
			b.Fatal(err)
		}
	}
}
