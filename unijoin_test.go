package unijoin

import (
	"context"
	"sort"
	"testing"

	"unijoin/internal/datagen"
)

func demoRecords(seed int64, n int, u Rect) []Record {
	return datagen.Uniform(seed, n, u, 40)
}

func demoWorkspace(t *testing.T) (*Workspace, *Relation, *Relation, []Record, []Record) {
	t.Helper()
	u := NewRect(0, 0, 1000, 1000)
	ws := NewWorkspace()
	ws.SetUniverse(u)
	ra := demoRecords(1, 700, u)
	rb := demoRecords(2, 500, u)
	a, err := ws.AddNamedRelation("A", ra)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ws.AddNamedRelation("B", rb)
	if err != nil {
		t.Fatal(err)
	}
	return ws, a, b, ra, rb
}

func brute(a, b []Record) map[Pair]bool {
	out := map[Pair]bool{}
	for _, ra := range a {
		for _, rb := range b {
			if ra.Rect.Intersects(rb.Rect) {
				out[Pair{Left: ra.ID, Right: rb.ID}] = true
			}
		}
	}
	return out
}

func TestWorkspaceJoinAllAlgorithms(t *testing.T) {
	ws, a, b, ra, rb := demoWorkspace(t)
	if err := a.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if err := b.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	want := brute(ra, rb)
	for _, alg := range []Algorithm{AlgPQ, AlgSSSJ, AlgPBSM, AlgST, AlgAuto, AlgBFRJ} {
		t.Run(alg.String(), func(t *testing.T) {
			got := map[Pair]bool{}
			res, err := ws.Join(alg, a, b, &JoinOptions{Emit: func(p Pair) { got[p] = true }})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) || res.Pairs != int64(len(want)) {
				t.Fatalf("%v: %d pairs, want %d", alg, len(got), len(want))
			}
			for p := range want {
				if !got[p] {
					t.Fatalf("%v: missing %v", alg, p)
				}
			}
			if alg == AlgAuto && res.Decision == nil {
				t.Fatal("auto join must report its decision")
			}
		})
	}
}

func TestWorkspaceSTRequiresIndexes(t *testing.T) {
	ws, a, b, _, _ := demoWorkspace(t)
	if _, err := ws.Join(AlgST, a, b, nil); err == nil {
		t.Fatal("ST without indexes must error")
	}
	if err := a.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if _, err := ws.Join(AlgST, a, b, nil); err == nil {
		t.Fatal("ST with one index must error")
	}
}

func TestWorkspacePQWorksUnindexed(t *testing.T) {
	ws, a, b, ra, rb := demoWorkspace(t)
	res, err := ws.Join(AlgPQ, a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs != int64(len(brute(ra, rb))) {
		t.Fatalf("pairs = %d", res.Pairs)
	}
	// Index one side only: the unified join must still work.
	if err := a.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	res2, err := ws.Join(AlgPQ, a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Pairs != res.Pairs {
		t.Fatalf("mixed-input PQ disagrees: %d vs %d", res2.Pairs, res.Pairs)
	}
	if res2.PageRequests == 0 {
		t.Fatal("indexed side should be read through the scanner")
	}
}

func TestRelationAccessors(t *testing.T) {
	ws, a, _, ra, _ := demoWorkspace(t)
	if a.Name() != "A" || a.Len() != int64(len(ra)) {
		t.Fatalf("accessors: %s %d", a.Name(), a.Len())
	}
	if a.Indexed() || a.IndexBytes() != 0 || a.IndexNodes() != 0 {
		t.Fatal("relation should start unindexed")
	}
	if a.DataBytes() != int64(len(ra)*20) {
		t.Fatalf("data bytes = %d", a.DataBytes())
	}
	if !a.MBR().Valid() {
		t.Fatal("MBR invalid")
	}
	if err := a.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if !a.Indexed() || a.IndexBytes() == 0 || a.IndexNodes() == 0 {
		t.Fatal("index accessors broken")
	}
	_ = ws
}

func TestWorkspaceMultiwayJoin(t *testing.T) {
	u := NewRect(0, 0, 300, 300)
	ws := NewWorkspace()
	ws.SetUniverse(u)
	ra := demoRecords(10, 150, u)
	rb := demoRecords(11, 150, u)
	rc := demoRecords(12, 150, u)
	a, _ := ws.AddRelation(ra)
	b, _ := ws.AddRelation(rb)
	c, _ := ws.AddRelation(rc)

	want := 0
	for _, x := range ra {
		for _, y := range rb {
			in, ok := x.Rect.Intersection(y.Rect)
			if !ok {
				continue
			}
			for _, z := range rc {
				if in.Intersects(z.Rect) {
					want++
				}
			}
		}
	}
	var got int
	res, err := ws.MultiwayJoin(context.Background(), []*Relation{a, b, c}, nil, func(ids []ID) { got++ })
	if err != nil {
		t.Fatal(err)
	}
	if got != want || res.Tuples != int64(want) {
		t.Fatalf("triples = %d, want %d", got, want)
	}
	if _, err := ws.MultiwayJoin(context.Background(), []*Relation{a}, nil, nil); err == nil {
		t.Fatal("single relation must error")
	}
}

func TestWorkspacePlan(t *testing.T) {
	u := NewRect(0, 0, 1000, 1000)
	ws := NewWorkspace()
	ws.SetUniverse(u)
	big, _ := ws.AddRelation(demoRecords(20, 8000, u))
	small, _ := ws.AddRelation(demoRecords(21, 150, NewRect(0, 0, 90, 90)))
	if err := big.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	d, err := ws.Plan(context.Background(), Machine1, big, small, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !d.UseIndexA {
		t.Fatalf("selective plan should use the big index: %v", d)
	}
}

func TestWindowOption(t *testing.T) {
	ws, a, b, ra, rb := demoWorkspace(t)
	w := NewRect(0, 0, 200, 200)
	want := 0
	for _, x := range ra {
		if !x.Rect.Intersects(w) {
			continue
		}
		for _, y := range rb {
			if y.Rect.Intersects(w) && x.Rect.Intersects(y.Rect) {
				want++
			}
		}
	}
	res, err := ws.Join(AlgPQ, a, b, &JoinOptions{Window: &w})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs != int64(want) {
		t.Fatalf("windowed pairs = %d, want %d", res.Pairs, want)
	}
}

func TestAlgorithmStrings(t *testing.T) {
	names := map[Algorithm]string{
		AlgPQ: "PQ", AlgSSSJ: "SSSJ", AlgPBSM: "PBSM", AlgST: "ST",
		AlgAuto: "auto", AlgBFRJ: "BFRJ",
	}
	for alg, want := range names {
		if alg.String() != want {
			t.Fatalf("%d: %s != %s", alg, alg.String(), want)
		}
	}
	if Algorithm(99).String() == "" {
		t.Fatal("unknown algorithm should still format")
	}
	if _, err := demoWorkspaceJoinUnknown(); err == nil {
		t.Fatal("unknown algorithm must error")
	}
}

func demoWorkspaceJoinUnknown() (JoinResult, error) {
	ws := NewWorkspace()
	a, _ := ws.AddRelation([]Record{{Rect: NewRect(0, 0, 1, 1), ID: 1}})
	b, _ := ws.AddRelation([]Record{{Rect: NewRect(0, 0, 1, 1), ID: 2}})
	return ws.Join(Algorithm(99), a, b, nil)
}

func TestCostReportsOrdering(t *testing.T) {
	ws, a, b, _, _ := demoWorkspace(t)
	if err := a.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if err := b.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	res, err := ws.Join(AlgPQ, a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	var times []float64
	for _, m := range Machines {
		times = append(times, res.ObservedTotal(m).Seconds())
	}
	if len(times) != 3 {
		t.Fatal("expected three machines")
	}
	sorted := append([]float64(nil), times...)
	sort.Float64s(sorted)
	// Machine 1 (50 MHz) must be the slowest overall.
	if times[0] != sorted[2] {
		t.Fatalf("machine 1 should be slowest: %v", times)
	}
}
