package unijoin

import (
	"context"
	"fmt"

	"unijoin/internal/core"
	"unijoin/internal/geom"
	"unijoin/internal/ingest"
	"unijoin/internal/iosim"
	"unijoin/internal/rtree"
	"unijoin/internal/stream"
)

// windowPollEvery is how many records a window scan processes between
// context polls; cancellation latency is bounded by this many record
// tests (or one R-tree node).
const windowPollEvery = 4096

// WindowQuery reports every record of the relation whose MBR
// intersects win, the selection counterpart of a join's Window option
// and the second query class the query service exposes. It returns
// the number of matching records; emit (optional) receives each one.
//
// An indexed relation answers through its R-tree, descending only
// into subtrees that intersect win; a non-indexed relation scans its
// record stream. Both paths charge their page accesses to the
// workspace's counters as usual, poll ctx (canceling it aborts the
// query with ErrCanceled), and report matches in a deterministic
// order — but the two orders differ, so callers that need a canonical
// order must sort.
func (r *Relation) WindowQuery(ctx context.Context, win Rect, emit func(Record)) (int64, error) {
	if r == nil || r.log == nil {
		return 0, fmt.Errorf("%w: window query", ErrNilRelation)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Pin the version once: the scan or traversal below runs wholly
	// against it, so concurrent appends are invisible to this query.
	return windowQueryVersion(ctx, r.snapshot(), win, emit)
}

// WindowQuery is Relation.WindowQuery answered from the pinned
// version, so a handler can report the window result and the
// relation's properties from one epoch.
func (p PinnedView) WindowQuery(ctx context.Context, win Rect, emit func(Record)) (int64, error) {
	if p.v == nil {
		return 0, fmt.Errorf("%w: window query", ErrNilRelation)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return windowQueryVersion(ctx, p.v, win, emit)
}

// windowQueryVersion runs the window selection against one pinned
// version.
func windowQueryVersion(ctx context.Context, v *ingest.Version, win Rect, emit func(Record)) (int64, error) {
	if !win.Valid() || !v.MBR.Valid() || !win.Intersects(v.MBR) {
		return 0, nil
	}
	if v.Tree != nil {
		return windowTree(ctx, v.Tree, win, emit)
	}
	return windowScan(ctx, v.File, win, emit)
}

// windowTree answers through the R-tree's cancellable traversal,
// counting matches as they stream by.
func windowTree(ctx context.Context, t *rtree.Tree, win geom.Rect, emit func(Record)) (int64, error) {
	var count int64
	err := t.QueryCtx(ctx, rtree.StoreReader{Store: t.Store()}, win, func(rec geom.Record) {
		count++
		if emit != nil {
			emit(rec)
		}
	})
	return count, core.WrapCanceled(err)
}

// windowScan filters a sequential scan of the record stream.
func windowScan(ctx context.Context, f *iosim.File, win geom.Rect, emit func(Record)) (int64, error) {
	rd := stream.NewReader(f, stream.Records)
	var count, seen int64
	for {
		if seen%windowPollEvery == 0 {
			if err := ctx.Err(); err != nil {
				return count, core.WrapCanceled(err)
			}
		}
		rec, ok, err := rd.Next()
		if err != nil {
			return count, err
		}
		if !ok {
			return count, nil
		}
		seen++
		if rec.Rect.Intersects(win) {
			count++
			if emit != nil {
				emit(rec)
			}
		}
	}
}
