module unijoin

go 1.24
