// Command sjlint vets the spatial-join engine against the invariants
// its PRs established: epoch-snapshot pinning, pooled-buffer
// discipline, binary frame layout, typed error sentinels, and bounded
// metric label cardinality. Run `sjlint -list` for the analyzer
// roster; `sjlint -json` emits NDJSON for machine consumption.
//
// It lives in its own module (unijoin/tools) so the engine module
// stays dependency-free; from this directory,
//
//	go run ./cmd/sjlint ./...
//
// analyzes the enclosing engine module.
package main

import (
	"os"

	"unijoin/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
