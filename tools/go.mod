module unijoin/tools

go 1.24

require unijoin v0.0.0

replace unijoin => ../
