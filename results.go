package unijoin

import (
	"iter"

	"unijoin/internal/core"
	"unijoin/internal/parallel"
)

// JoinResult is the accounting of one join: pair count, I/O and
// memory statistics, and per-machine cost reports.
type JoinResult struct {
	core.Result
	// Decision is set for AlgAuto: what the planner chose and why.
	Decision *core.Decision
}

// ParallelResult extends JoinResult with the parallel engine's
// wall-clock report: partition/worker breakdown, replication factor,
// and per-phase times. It is returned by the deprecated ParallelJoin
// wrapper; the Query API reports the same data in Results.Parallel.
type ParallelResult struct {
	JoinResult
	// Parallel is the engine's full report (wall-clock phases,
	// per-worker statistics, replication).
	Parallel parallel.Report
}

// Results is the outcome of Query.Run: the full JoinResult accounting
// (promoted, so res.IO, res.HostCPU, res.ObservedTotal(m), ... read as
// before) plus streaming-friendly access to the result pairs.
//
// The embedded pair *count* is shadowed by the Pairs iterator method;
// read it as Count() (or res.JoinResult.Pairs).
type Results struct {
	JoinResult

	// Parallel is the parallel engine's wall-clock report, set only
	// when the query ran AlgParallel.
	Parallel *parallel.Report

	collected bool
	pairs     []Pair
}

// Count returns the number of result pairs — the quantity the paper's
// tables report. It is always set, whether or not pairs were
// collected or streamed.
func (r *Results) Count() int64 { return r.JoinResult.Pairs }

// Collected reports whether the query buffered its result pairs for
// iteration with Pairs. Queries run with Emit, EmitBatch, or
// CountOnly stream or drop their pairs instead and yield an empty
// iterator.
func (r *Results) Collected() bool { return r.collected }

// Pairs returns a range-over-func iterator over the result pairs, in
// the deterministic order the join reported them:
//
//	res, _ := ws.Query(a, b).Run(ctx)
//	for p := range res.Pairs() {
//		fmt.Println(p.Left, p.Right)
//	}
//
// Pairs are available when the query collected them (the default when
// no Emit/EmitBatch callback and no CountOnly option was given); see
// Collected.
func (r *Results) Pairs() iter.Seq[Pair] {
	return func(yield func(Pair) bool) {
		for _, p := range r.pairs {
			if !yield(p) {
				return
			}
		}
	}
}

// PairSlice returns the collected pairs as a slice (nil when the
// query did not collect). The slice is owned by the Results; callers
// must not modify it.
func (r *Results) PairSlice() []Pair { return r.pairs }
