package unijoin

import (
	"fmt"
	"sort"
	"sync"
)

// Catalog is a named set of relations sharing one Workspace, the
// resident state of a long-lived query process: relations are loaded
// (and optionally indexed) once, then joined or window-queried many
// times without rebuilding anything. A Catalog is safe for concurrent
// use — lookups and queries proceed under a read lock while loads and
// drops are single-writer — so any number of requests may join
// cataloged relations at once.
//
// Because every relation lives on the catalog's one simulated disk,
// any two of them can be joined directly with Workspace.Query. The
// shared disk also means the workspace's I/O counters accumulate
// across concurrent queries; per-query counter deltas are only exact
// when queries run one at a time (see iosim.Store).
type Catalog struct {
	ws *Workspace

	mu   sync.RWMutex
	rels map[string]*Relation
	// loading reserves names whose Load is in flight, so the write
	// lock never has to be held across a record write + index build.
	loading map[string]struct{}
}

// NewCatalog creates an empty catalog on a fresh workspace.
func NewCatalog() *Catalog {
	return NewCatalogOn(NewWorkspace())
}

// NewCatalogOn creates an empty catalog on an existing workspace
// (useful when the universe has been fixed with SetUniverse first).
func NewCatalogOn(ws *Workspace) *Catalog {
	return &Catalog{
		ws:      ws,
		rels:    make(map[string]*Relation),
		loading: make(map[string]struct{}),
	}
}

// Workspace returns the workspace all cataloged relations live on.
// Use it to build queries over relations obtained with Get.
func (c *Catalog) Workspace() *Workspace { return c.ws }

// Load writes recs to the catalog's workspace as a new relation named
// name, building its R-tree first when index is set, and publishes it
// atomically: concurrent readers see either no relation or the fully
// loaded (and indexed) one, never a partial state. The name must be
// non-empty and not already present (or mid-load). The write lock is
// held only to reserve the name and to publish the result — not
// across the record write and index build — so a large load never
// stalls concurrent lookups and queries.
func (c *Catalog) Load(name string, recs []Record, index bool) (*Relation, error) {
	if name == "" {
		return nil, fmt.Errorf("unijoin: catalog relation needs a name")
	}
	c.mu.Lock()
	_, exists := c.rels[name]
	if _, inFlight := c.loading[name]; exists || inFlight {
		c.mu.Unlock()
		return nil, fmt.Errorf("unijoin: relation %q already in catalog", name)
	}
	c.loading[name] = struct{}{}
	c.mu.Unlock()

	r, err := c.ws.AddNamedRelation(name, recs)
	if err == nil && index {
		if ierr := r.BuildIndex(); ierr != nil {
			// Unpublished relation: hand its record pages back to the
			// shared disk so repeated failed loads don't grow it.
			r.log.ReleaseInitial()
			err = ierr
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.loading, name)
	if err != nil {
		return nil, err
	}
	c.rels[name] = r
	return r, nil
}

// Get returns the named relation, or false if it is not cataloged.
func (c *Catalog) Get(name string) (*Relation, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.rels[name]
	return r, ok
}

// Names returns the cataloged relation names in sorted order.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.rels))
	for name := range c.rels {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of cataloged relations.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.rels)
}

// Drop removes the named relation from the catalog, reporting whether
// it was present. The relation's pages stay allocated on the shared
// disk (outstanding queries may still be scanning them); a dropped
// name can be reloaded immediately.
func (c *Catalog) Drop(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.rels[name]
	delete(c.rels, name)
	return ok
}
